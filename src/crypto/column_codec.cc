#include "crypto/column_codec.h"

#include <algorithm>
#include <string>
#include <utility>

namespace mpq {

namespace {

Status NoMaterial(uint64_t key_id, const char* op) {
  return Status::NotFound("column codec for key " + std::to_string(key_id) +
                          " holds only the public modulus: cannot " + op);
}

}  // namespace

ColumnCodec::ColumnCodec(const KeyMaterial& km)
    : has_material_(true), key_id_(km.key_id), km_(km), sum_(km.paillier.n) {}

ColumnCodec::ColumnCodec(uint64_t key_id, uint64_t public_modulus)
    : key_id_(key_id), sum_(public_modulus) {
  km_.key_id = key_id;
  km_.paillier.n = public_modulus;
}

Status ColumnCodec::EncryptSpan(const ColumnData& src, size_t begin,
                                size_t end, EncScheme scheme,
                                uint64_t nonce_base, EncValue* out) const {
  if (!has_material_) return NoMaterial(key_id_, "encrypt");
  // Paillier over a plain int64 vector encodes and exponentiates straight
  // from the typed span — no Cell/Value materialization per row.
  if (scheme == EncScheme::kPaillier && src.rep() == ColumnRep::kInt64 &&
      !src.has_nulls()) {
    const int64_t* v = src.i64().data();
    const PaillierPrecomp* pre =
        km_.hom_precomp != nullptr && km_.hom_precomp->valid()
            ? km_.hom_precomp.get()
            : nullptr;
    for (size_t r = begin; r < end; ++r) {
      uint64_t m = PaillierEncodeSigned(km_.paillier, v[r]);
      uint64_t nonce = (nonce_base + r) | 1;  // same blinding as EncryptValue
      uint128 c = pre != nullptr ? pre->Encrypt(m, nonce)
                                 : PaillierEncrypt(km_.paillier, m, nonce);
      EncValue& ev = out[r - begin];
      ev.scheme = scheme;
      ev.key_id = key_id_;
      ev.blob = PaillierCipherToBytes(c);
      ev.aux = 1;
    }
    return Status::OK();
  }
  for (size_t r = begin; r < end; ++r) {
    Cell cell = src.GetCell(r);
    MPQ_ASSIGN_OR_RETURN(
        out[r - begin],
        EncryptValue(cell.plain(), scheme, key_id_, km_, nonce_base + r));
  }
  return Status::OK();
}

Status ColumnCodec::DecryptSpan(const ColumnData& src, size_t begin,
                                size_t end, DataType type, bool hom_avg,
                                Cell* out) const {
  if (!has_material_) return NoMaterial(key_id_, "decrypt");
  for (size_t r = begin; r < end; ++r) {
    Cell& slot = out[r - begin];
    if (src.IsNull(r)) {
      slot = Cell(Value::Null());
      continue;
    }
    if (src.rep() != ColumnRep::kEnc) {
      Cell cell = src.GetCell(r);
      if (cell.is_plain()) {  // plaintext inside a ciphertext column
        slot = std::move(cell);
        continue;
      }
    }
    const EncValue& ev = src.EncAt(r);
    MPQ_ASSIGN_OR_RETURN(Value v, DecryptValue(ev, km_, type));
    if (hom_avg) {
      slot = Cell(Value(v.AsDouble() /
                        static_cast<double>(std::max<int64_t>(ev.aux, 1))));
    } else {
      slot = Cell(std::move(v));
    }
  }
  return Status::OK();
}

Result<uint128> ColumnCodec::FoldRows(const ColumnData& col,
                                      const uint32_t* rows, size_t n) {
  // Stage the ciphertexts contiguously, then fold with one batch
  // accumulation: domain entry, n reductions, domain exit.
  scratch_.clear();
  scratch_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    MPQ_ASSIGN_OR_RETURN(uint128 c,
                         PaillierCipherFromBytes(col.EncAt(rows[i]).blob));
    scratch_.push_back(c);
  }
  sum_.Reset();
  sum_.AccumulateMany(scratch_.data(), scratch_.size());
  return sum_.Finalize();
}

}  // namespace mpq

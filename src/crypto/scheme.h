// Encryption scheme taxonomy (Sec 6 of the paper).
//
// The authorization model is deliberately scheme-agnostic; the query
// optimizer picks, per attribute, the strongest scheme supporting the
// operations executed on its ciphertexts:
//   kRandom        — no operation needed on ciphertexts (storage only);
//   kDeterministic — equality comparisons, grouping, equi-joins;
//   kOpe           — order comparisons (implies equality support);
//   kPaillier      — additive aggregation (sum/avg).

#ifndef MPQ_CRYPTO_SCHEME_H_
#define MPQ_CRYPTO_SCHEME_H_

#include <cstdint>

namespace mpq {

enum class EncScheme : uint8_t {
  kRandom = 0,
  kDeterministic = 1,
  kOpe = 2,
  kPaillier = 3,
};

const char* EncSchemeName(EncScheme s);

/// Relative per-value cpu cost of encryption/decryption, in microseconds,
/// following common published benchmarks (AES-class symmetric ~0.1us; OPE a
/// few us; Paillier in the hundreds of us). Used by the economic cost model.
double EncSchemeCpuMicros(EncScheme s);

/// Ciphertext size in bytes for a value of `plain_bytes` plaintext bytes.
/// Captures the size inflation the paper accounts for.
double EncSchemeCiphertextBytes(EncScheme s, double plain_bytes);

}  // namespace mpq

#endif  // MPQ_CRYPTO_SCHEME_H_

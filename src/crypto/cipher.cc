#include "crypto/cipher.h"

#include <cstring>

#include "common/rng.h"
#include "crypto/scheme.h"

namespace mpq {

const char* EncSchemeName(EncScheme s) {
  switch (s) {
    case EncScheme::kRandom:
      return "RND";
    case EncScheme::kDeterministic:
      return "DET";
    case EncScheme::kOpe:
      return "OPE";
    case EncScheme::kPaillier:
      return "HOM";
  }
  return "?";
}

double EncSchemeCpuMicros(EncScheme s) {
  switch (s) {
    case EncScheme::kRandom:
      return 0.1;
    case EncScheme::kDeterministic:
      return 0.1;
    case EncScheme::kOpe:
      return 3.0;
    case EncScheme::kPaillier:
      return 250.0;
  }
  return 0.1;
}

double EncSchemeCiphertextBytes(EncScheme s, double plain_bytes) {
  switch (s) {
    case EncScheme::kRandom:
    case EncScheme::kDeterministic:
      return plain_bytes + 8.0;  // nonce prefix
    case EncScheme::kOpe:
      return 16.0;
    case EncScheme::kPaillier:
      return 24.0;  // 16-byte ciphertext + 8-byte auxiliary counter
  }
  return plain_bytes;
}

namespace {

void Keystream(uint64_t key, uint64_t nonce, size_t len, std::string* out) {
  out->resize(len);
  uint64_t state = SplitMix64(key ^ SplitMix64(nonce));
  size_t i = 0;
  while (i < len) {
    state = SplitMix64(state);
    uint64_t block = state;
    size_t chunk = std::min<size_t>(8, len - i);
    std::memcpy(out->data() + i, &block, chunk);
    i += chunk;
  }
}

uint64_t PrfNonce(uint64_t key, const std::string& plaintext) {
  uint64_t h = SplitMix64(key ^ 0xdeadbeefcafef00dull);
  for (unsigned char c : plaintext) h = SplitMix64(h ^ c);
  return h;
}

}  // namespace

std::string SymEncrypt(uint64_t key, uint64_t nonce,
                       const std::string& plaintext) {
  std::string out;
  out.resize(8 + plaintext.size());
  std::memcpy(out.data(), &nonce, 8);
  std::string ks;
  Keystream(key, nonce, plaintext.size(), &ks);
  for (size_t i = 0; i < plaintext.size(); ++i) {
    out[8 + i] = static_cast<char>(plaintext[i] ^ ks[i]);
  }
  return out;
}

std::string DetEncrypt(uint64_t key, const std::string& plaintext) {
  return SymEncrypt(key, PrfNonce(key, plaintext), plaintext);
}

std::string RndEncrypt(uint64_t key, uint64_t fresh_nonce,
                       const std::string& plaintext) {
  return SymEncrypt(key, fresh_nonce, plaintext);
}

Result<std::string> SymDecrypt(uint64_t key, const std::string& ciphertext) {
  if (ciphertext.size() < 8) {
    return Status::InvalidArgument("ciphertext too short");
  }
  uint64_t nonce;
  std::memcpy(&nonce, ciphertext.data(), 8);
  size_t len = ciphertext.size() - 8;
  std::string ks;
  Keystream(key, nonce, len, &ks);
  std::string out;
  out.resize(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<char>(ciphertext[8 + i] ^ ks[i]);
  }
  return out;
}

}  // namespace mpq

// Key material and per-subject keyrings.
//
// One KeyMaterial bundle exists per query-plan key (Def 6.1 cluster); it
// carries sub-keys for each scheme so the optimizer may pick schemes per
// attribute without re-running key agreement. KeyRings model the selective
// distribution of keys to the subjects performing encryption/decryption.

#ifndef MPQ_CRYPTO_KEYRING_H_
#define MPQ_CRYPTO_KEYRING_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "crypto/paillier.h"

namespace mpq {

/// Scheme-specific sub-keys derived from one logical key.
struct KeyMaterial {
  uint64_t key_id = 0;
  uint64_t sym = 0;   ///< Symmetric key (DET/RND).
  uint64_t ope = 0;   ///< OPE key.
  PaillierKey paillier;
  /// Per-key Paillier precomputation (CRT + Montgomery + fixed-exponent
  /// window schedules), shared by every copy of this material. Optional:
  /// encryption/decryption fall back to the schoolbook path when absent,
  /// with bit-identical results either way.
  std::shared_ptr<const PaillierPrecomp> hom_precomp;
};

/// Deterministically derives the material for (seed, key_id).
KeyMaterial MakeKeyMaterial(uint64_t seed, uint64_t key_id);

/// The set of keys held by one subject.
class KeyRing {
 public:
  void Add(const KeyMaterial& km) { keys_[km.key_id] = km; }
  bool Has(uint64_t key_id) const { return keys_.count(key_id) > 0; }

  /// Fails with kNotFound when the subject was not distributed this key —
  /// the enforcement property the paper's key distribution relies on.
  Result<KeyMaterial> Get(uint64_t key_id) const;

  /// Borrowed view of the material, or nullptr when not distributed. Valid
  /// while the ring holds the key; prefer this over Get on hot paths (no
  /// KeyMaterial copy per lookup).
  const KeyMaterial* Find(uint64_t key_id) const {
    auto it = keys_.find(key_id);
    return it == keys_.end() ? nullptr : &it->second;
  }

  size_t size() const { return keys_.size(); }

 private:
  std::unordered_map<uint64_t, KeyMaterial> keys_;
};

}  // namespace mpq

#endif  // MPQ_CRYPTO_KEYRING_H_

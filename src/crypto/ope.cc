#include "crypto/ope.h"

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "crypto/paillier.h"  // uint128

namespace mpq {

namespace {

uint16_t Prf16(uint64_t key, int64_t x) {
  return static_cast<uint16_t>(
      SplitMix64(key ^ SplitMix64(static_cast<uint64_t>(x))) & 0xffff);
}

std::string ToBigEndian(uint128 v) {
  std::string out;
  out.resize(16);
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return out;
}

uint128 FromBigEndian(const std::string& bytes) {
  uint128 v = 0;
  for (char c : bytes) {
    v = (v << 8) | static_cast<unsigned char>(c);
  }
  return v;
}

}  // namespace

std::string OpeEncryptInt(uint64_t key, int64_t x) {
  // Shift to an unsigned, order-preserving offset.
  uint64_t offset = static_cast<uint64_t>(x) ^ (uint64_t{1} << 63);
  uint128 y = (static_cast<uint128>(offset) << 16) | Prf16(key, x);
  return ToBigEndian(y);
}

Result<int64_t> OpeDecryptInt(uint64_t key, const std::string& ct) {
  if (ct.size() != 16) {
    return Status::InvalidArgument("bad OPE ciphertext size");
  }
  uint128 y = FromBigEndian(ct);
  uint64_t offset = static_cast<uint64_t>(y >> 16);
  int64_t x = static_cast<int64_t>(offset ^ (uint64_t{1} << 63));
  // Integrity: pad must match.
  if (Prf16(key, x) != static_cast<uint16_t>(y & 0xffff)) {
    return Status::InvalidArgument("OPE ciphertext/key mismatch");
  }
  return x;
}

Result<std::string> OpeEncryptValue(uint64_t key, const Value& v) {
  if (v.is_int()) return OpeEncryptInt(key, v.AsInt());
  if (v.is_double()) {
    double scaled = v.AsDouble() * static_cast<double>(kFixedPointScale);
    return OpeEncryptInt(key, static_cast<int64_t>(std::llround(scaled)));
  }
  return Status::Unsupported("OPE supports numeric values only");
}

Result<Value> OpeDecryptValue(uint64_t key, const std::string& ct,
                              DataType type) {
  MPQ_ASSIGN_OR_RETURN(int64_t x, OpeDecryptInt(key, ct));
  switch (type) {
    case DataType::kInt64:
      return Value(x);
    case DataType::kDouble:
      return Value(static_cast<double>(x) /
                   static_cast<double>(kFixedPointScale));
    case DataType::kString:
      return Status::Unsupported("OPE supports numeric values only");
  }
  return Status::Internal("unreachable");
}

}  // namespace mpq

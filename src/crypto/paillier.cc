#include "crypto/paillier.h"

#include <cstring>

#include "common/rng.h"

namespace mpq {

namespace {

/// (a * b) mod m for 128-bit operands via double-and-add.
uint128 MulMod(uint128 a, uint128 b, uint128 m) {
  a %= m;
  uint128 result = 0;
  while (b > 0) {
    if (b & 1) {
      result += a;
      if (result >= m) result -= m;
    }
    a <<= 1;
    if (a >= m) a -= m;
    b >>= 1;
  }
  return result;
}

uint128 PowMod(uint128 base, uint128 exp, uint128 m) {
  uint128 result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Modular inverse via extended Euclid; returns 0 when not invertible.
uint64_t InvMod(uint64_t a, uint64_t m) {
  int64_t t = 0, new_t = 1;
  int64_t r = static_cast<int64_t>(m), new_r = static_cast<int64_t>(a % m);
  while (new_r != 0) {
    int64_t q = r / new_r;
    int64_t tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (r > 1) return 0;
  if (t < 0) t += static_cast<int64_t>(m);
  return static_cast<uint64_t>(t);
}

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t d : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    if (n % d == 0) return n == d;
  }
  // Deterministic Miller-Rabin for 64-bit with the standard witness set.
  uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  for (uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    uint128 x = PowMod(a % n, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 0; i < s - 1; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

uint64_t NextPrime(uint64_t start) {
  uint64_t n = start | 1;
  while (!IsPrime(n)) n += 2;
  return n;
}

uint64_t Lcm(uint64_t a, uint64_t b) { return a / Gcd(a, b) * b; }

}  // namespace

PaillierKey PaillierKeyGen(uint64_t seed) {
  Rng rng(seed);
  PaillierKey key;
  // 31-bit primes so n < 2^62 and n^2 < 2^124 fits uint128 comfortably.
  for (;;) {
    key.p = NextPrime((rng.Next() % (1ull << 30)) + (1ull << 30));
    key.q = NextPrime((rng.Next() % (1ull << 30)) + (1ull << 30));
    if (key.p == key.q) continue;
    key.n = key.p * key.q;
    key.lambda = Lcm(key.p - 1, key.q - 1);
    key.mu = InvMod(key.lambda % key.n, key.n);
    if (key.mu != 0) break;
  }
  return key;
}

uint128 PaillierEncrypt(const PaillierKey& key, uint64_t m, uint64_t rand) {
  uint128 n2 = key.n2();
  // r must be coprime with n.
  uint64_t r = rand % key.n;
  while (r == 0 || Gcd(r, key.n) != 1) r = (r + 1) % key.n;
  // g^m mod n^2 with g = n+1 simplifies to (1 + m·n) mod n^2.
  uint128 gm = (1 + MulMod(static_cast<uint128>(m), key.n, n2)) % n2;
  uint128 rn = PowMod(r, key.n, n2);
  return MulMod(gm, rn, n2);
}

Result<uint64_t> PaillierDecrypt(const PaillierKey& key, uint128 c) {
  uint128 n2 = key.n2();
  if (c == 0 || c >= n2) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  uint128 x = PowMod(c, key.lambda, n2);
  // L(x) = (x - 1) / n.
  uint128 l = (x - 1) / key.n;
  uint64_t m = static_cast<uint64_t>(
      MulMod(l, static_cast<uint128>(key.mu), static_cast<uint128>(key.n)));
  return m;
}

uint128 PaillierAdd(uint64_t n, uint128 c1, uint128 c2) {
  uint128 n2 = static_cast<uint128>(n) * n;
  return MulMod(c1, c2, n2);
}

uint64_t PaillierEncodeSigned(const PaillierKey& key, int64_t v) {
  if (v >= 0) return static_cast<uint64_t>(v) % key.n;
  return key.n - (static_cast<uint64_t>(-v) % key.n);
}

int64_t PaillierDecodeSigned(const PaillierKey& key, uint64_t m) {
  if (m > key.n / 2) return -static_cast<int64_t>(key.n - m);
  return static_cast<int64_t>(m);
}

// ------------------------------------------------------------ fast paths ---

void Mont64::Init(uint64_t modulus) {
  m = modulus;
  // Newton–Hensel inversion of the odd modulus mod 2^64: the seed m is
  // correct to 3 bits (m·m ≡ 1 mod 8), each step doubles the precision.
  uint64_t inv = m;
  for (int i = 0; i < 5; ++i) inv *= 2 - m * inv;
  neg_inv = ~inv + 1;
  uint64_t r = ~uint64_t{0} % m + 1;  // 2^64 mod m (m odd, so never 0)
  r2 = static_cast<uint64_t>(static_cast<uint128>(r) * r % m);
}

WindowSchedule WindowSchedule::For(uint64_t e) {
  WindowSchedule sched;
  int i = 63;
  while (((e >> i) & 1) == 0) --i;
  bool first = true;
  int pending = 0;
  while (i >= 0) {
    if (((e >> i) & 1) == 0) {
      ++pending;
      --i;
      continue;
    }
    // Longest window of <= 4 bits ending in a set bit.
    int j = i - 3 < 0 ? 0 : i - 3;
    while (((e >> j) & 1) == 0) ++j;
    int width = i - j + 1;
    auto digit = static_cast<uint64_t>((e >> j) & ((1ull << width) - 1));
    WindowSchedule::Op op;
    op.squares = first ? 0 : static_cast<uint8_t>(pending + width);
    op.mul = static_cast<int8_t>(digit >> 1);
    sched.ops.push_back(op);
    first = false;
    pending = 0;
    i = j - 1;
  }
  if (pending > 0) {
    WindowSchedule::Op op;
    op.squares = static_cast<uint8_t>(pending);
    sched.ops.push_back(op);
  }
  return sched;
}

namespace {

/// base^e mod mc.m, driving `sched` (the window schedule of e) over a
/// per-call table of the first eight odd powers of the base.
uint64_t WindowPow(const Mont64& mc, uint64_t base,
                   const WindowSchedule& sched) {
  uint64_t t[8];
  t[0] = mc.ToMont(base);
  uint64_t b2 = mc.Mul(t[0], t[0]);
  for (int k = 1; k < 8; ++k) t[k] = mc.Mul(t[k - 1], b2);
  uint64_t acc = t[sched.ops[0].mul];
  for (size_t k = 1; k < sched.ops.size(); ++k) {
    const WindowSchedule::Op& op = sched.ops[k];
    for (int s = 0; s < op.squares; ++s) acc = mc.Mul(acc, acc);
    if (op.mul >= 0) acc = mc.Mul(acc, t[op.mul]);
  }
  return mc.FromMont(acc);
}

uint64_t MulMod64(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(static_cast<uint128>(a) * b % m);
}

}  // namespace

PaillierPrecomp::PaillierPrecomp(const PaillierKey& key) : key_(key) {
  // Mont64 needs p², q² < 2^63, i.e. factors <= floor(sqrt(2^63)).
  constexpr uint64_t kMaxFactor = 3037000499ull;
  if (key.p < 2 || key.q < 2 || key.p == key.q || key.n != key.p * key.q ||
      key.lambda == 0 || key.p > kMaxFactor || key.q > kMaxFactor) {
    return;  // no usable private factors: callers fall back to PowMod
  }
  n2_ = key.n2();
  p2_.Init(key.p * key.p);
  q2_.Init(key.q * key.q);
  q2_inv_p2_ = InvMod(q2_.m % p2_.m, p2_.m);
  if (q2_inv_p2_ == 0) return;
  n_sched_ = WindowSchedule::For(key.n);
  lambda_sched_ = WindowSchedule::For(key.lambda);
  valid_ = true;
}

uint128 PaillierPrecomp::CrtPow(uint128 base,
                                const WindowSchedule& sched) const {
  uint64_t xp = WindowPow(p2_, static_cast<uint64_t>(base % p2_.m), sched);
  uint64_t xq = WindowPow(q2_, static_cast<uint64_t>(base % q2_.m), sched);
  // Garner recombination: x = xq + q²·((xp - xq)·(q²)^{-1} mod p²).
  uint64_t d = xp + p2_.m - xq % p2_.m;
  if (d >= p2_.m) d -= p2_.m;
  uint64_t h = MulMod64(d, q2_inv_p2_, p2_.m);
  return static_cast<uint128>(q2_.m) * h + xq;
}

uint128 PaillierPrecomp::PowN(uint64_t base) const {
  return CrtPow(base, n_sched_);
}

uint128 PaillierPrecomp::Encrypt(uint64_t m, uint64_t rand) const {
  // Identical blinding derivation to PaillierEncrypt.
  uint64_t r = rand % key_.n;
  while (r == 0 || Gcd(r, key_.n) != 1) r = (r + 1) % key_.n;
  uint128 gm = (1 + static_cast<uint128>(m) * key_.n % n2_) % n2_;
  // gm·r^n mod n², with the exponentiation and the final multiplication
  // both folded through the CRT legs.
  uint64_t rp = WindowPow(p2_, r % p2_.m, n_sched_);
  uint64_t rq = WindowPow(q2_, r % q2_.m, n_sched_);
  uint64_t cp = MulMod64(static_cast<uint64_t>(gm % p2_.m), rp, p2_.m);
  uint64_t cq = MulMod64(static_cast<uint64_t>(gm % q2_.m), rq, q2_.m);
  uint64_t d = cp + p2_.m - cq % p2_.m;
  if (d >= p2_.m) d -= p2_.m;
  uint64_t h = MulMod64(d, q2_inv_p2_, p2_.m);
  return static_cast<uint128>(q2_.m) * h + cq;
}

Result<uint64_t> PaillierPrecomp::Decrypt(uint128 c) const {
  if (c == 0 || c >= n2_) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  uint128 x = CrtPow(c, lambda_sched_);
  uint128 l = (x - 1) / key_.n;
  // MulMod (not a plain 128-bit product) so even degenerate non-coprime
  // ciphertexts, where l exceeds 64 bits, decode identically to PowMod.
  return static_cast<uint64_t>(
      MulMod(l, static_cast<uint128>(key_.mu), static_cast<uint128>(key_.n)));
}

PaillierSumCtx::PaillierSumCtx(uint64_t n) : n_(n) {
  m_ = static_cast<uint128>(n) * n;
  if ((static_cast<uint64_t>(m_) & 1) == 0 || m_ <= 2) return;
  uint64_t m0 = static_cast<uint64_t>(m_);
  uint64_t inv = m0;
  for (int i = 0; i < 5; ++i) inv *= 2 - m0 * inv;
  neg_inv_ = ~inv + 1;
  // R² mod m (R = 2^128) by 256 modular doublings; m < 2^124 keeps every
  // doubling inside uint128.
  uint128 x = 1 % m_;
  for (int i = 0; i < 256; ++i) {
    x <<= 1;
    if (x >= m_) x -= m_;
  }
  r2_ = x;
  mont_ = true;
}

void PaillierSumCtx::Accumulate(uint128 c) {
  if (!mont_) {  // degenerate modulus: schoolbook chain, like Add()
    acc_ = count_ == 0 ? c : PaillierAdd(n_, acc_, c);
    ++count_;
    return;
  }
  // Each *plain* operand costs exactly one reduction: MontMul multiplies by
  // the operand and divides by R, so after k operands the accumulator holds
  // ∏cᵢ·R^(2-k) — Finalize repays the R-exponent deficit in O(log k).
  // Operands need no pre-reduction: acc < m keeps every intermediate
  // product below m·R, which is all Redc requires, and the multiplication
  // reduces raw operands implicitly.
  acc_ = count_ == 0 ? MontMul(c, r2_) : MontMul(acc_, c);
  ++count_;
}

void PaillierSumCtx::AccumulateMany(const uint128* c, size_t n) {
  if (n == 0) return;
  if (!mont_) {
    for (size_t i = 0; i < n; ++i) Accumulate(c[i]);
    return;
  }
  size_t i = 0;
  uint128 acc = acc_;
  if (count_ == 0) acc = MontMul(c[i++], r2_);
  for (; i < n; ++i) acc = MontMul(acc, c[i]);
  acc_ = acc;
  count_ += n;
}

uint128 PaillierSumCtx::Finalize() const {
  if (!mont_ || count_ == 0) return acc_;
  // After k = count_ operands the accumulator holds P·R^(2-k) mod m, where
  // P is the canonical product: the first operand entered the Montgomery
  // domain (exponent 1) and each of the k-1 plain multiplications divided
  // by R. One final MontMul against R^(k-1) mod m — Montgomery-
  // exponentiated in O(log k), with r2_ as the Montgomery form of R —
  // yields P exactly, bit-identical to the eager Add chain.
  if (count_ == 1) return MontMul(acc_, 1);
  uint128 z = MontMul(r2_, 1);  // R mod m, the Montgomery form of 1
  uint128 base = r2_;           // Montgomery form of R
  size_t e = count_ - 2;        // z holds the Montgomery form of R^(e_done)
  while (e > 0) {
    if (e & 1) z = MontMul(z, base);
    base = MontMul(base, base);
    e >>= 1;
  }
  return MontMul(acc_, z);
}

uint128 PaillierSumCtx::Redc(uint64_t t[4]) const {
  uint64_t m0 = static_cast<uint64_t>(m_);
  uint64_t m1 = static_cast<uint64_t>(m_ >> 64);
  for (int i = 0; i < 2; ++i) {
    uint64_t u = t[0] * neg_inv_;
    uint128 c = static_cast<uint128>(u) * m0 + t[0];  // low limb becomes 0
    uint64_t carry = static_cast<uint64_t>(c >> 64);
    c = static_cast<uint128>(u) * m1 + t[1] + carry;
    t[0] = static_cast<uint64_t>(c);
    carry = static_cast<uint64_t>(c >> 64);
    c = static_cast<uint128>(t[2]) + carry;
    t[1] = static_cast<uint64_t>(c);
    t[2] = t[3] + static_cast<uint64_t>(c >> 64);
    t[3] = 0;
  }
  uint128 res = static_cast<uint128>(t[1]) << 64 | t[0];
  // t[2] is zero here: REDC of T < m·R yields a value < 2m < 2^125.
  if (res >= m_) res -= m_;
  return res;
}

uint128 PaillierSumCtx::MontMul(uint128 a, uint128 b) const {
  auto a0 = static_cast<uint64_t>(a), a1 = static_cast<uint64_t>(a >> 64);
  auto b0 = static_cast<uint64_t>(b), b1 = static_cast<uint64_t>(b >> 64);
  uint128 p00 = static_cast<uint128>(a0) * b0;
  uint128 p01 = static_cast<uint128>(a0) * b1;
  uint128 p10 = static_cast<uint128>(a1) * b0;
  uint128 p11 = static_cast<uint128>(a1) * b1;
  uint64_t t[4];
  t[0] = static_cast<uint64_t>(p00);
  uint128 mid = (p00 >> 64) + static_cast<uint64_t>(p01) +
                static_cast<uint64_t>(p10);
  t[1] = static_cast<uint64_t>(mid);
  uint128 mid2 = (mid >> 64) + (p01 >> 64) + (p10 >> 64) +
                 static_cast<uint64_t>(p11);
  t[2] = static_cast<uint64_t>(mid2);
  t[3] = static_cast<uint64_t>((mid2 >> 64) + (p11 >> 64));
  return Redc(t);
}

uint128 PaillierSumCtx::Add(uint128 c1, uint128 c2) const {
  if (!mont_) {
    return PaillierAdd(n_, c1, c2);  // degenerate modulus: schoolbook path
  }
  uint128 a = c1 % m_;
  uint128 b = c2 % m_;
  return MontMul(MontMul(a, b), r2_);
}

std::string PaillierCipherToBytes(uint128 c) {
  std::string out;
  out.resize(16);
  std::memcpy(out.data(), &c, 16);
  return out;
}

Result<uint128> PaillierCipherFromBytes(const std::string& bytes) {
  if (bytes.size() < 16) return Status::InvalidArgument("bad Paillier bytes");
  uint128 c;
  std::memcpy(&c, bytes.data(), 16);
  return c;
}

}  // namespace mpq

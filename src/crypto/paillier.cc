#include "crypto/paillier.h"

#include <cstring>

#include "common/rng.h"

namespace mpq {

namespace {

/// (a * b) mod m for 128-bit operands via double-and-add.
uint128 MulMod(uint128 a, uint128 b, uint128 m) {
  a %= m;
  uint128 result = 0;
  while (b > 0) {
    if (b & 1) {
      result += a;
      if (result >= m) result -= m;
    }
    a <<= 1;
    if (a >= m) a -= m;
    b >>= 1;
  }
  return result;
}

uint128 PowMod(uint128 base, uint128 exp, uint128 m) {
  uint128 result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Modular inverse via extended Euclid; returns 0 when not invertible.
uint64_t InvMod(uint64_t a, uint64_t m) {
  int64_t t = 0, new_t = 1;
  int64_t r = static_cast<int64_t>(m), new_r = static_cast<int64_t>(a % m);
  while (new_r != 0) {
    int64_t q = r / new_r;
    int64_t tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (r > 1) return 0;
  if (t < 0) t += static_cast<int64_t>(m);
  return static_cast<uint64_t>(t);
}

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t d : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    if (n % d == 0) return n == d;
  }
  // Deterministic Miller-Rabin for 64-bit with the standard witness set.
  uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  for (uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    uint128 x = PowMod(a % n, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 0; i < s - 1; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

uint64_t NextPrime(uint64_t start) {
  uint64_t n = start | 1;
  while (!IsPrime(n)) n += 2;
  return n;
}

uint64_t Lcm(uint64_t a, uint64_t b) { return a / Gcd(a, b) * b; }

}  // namespace

PaillierKey PaillierKeyGen(uint64_t seed) {
  Rng rng(seed);
  PaillierKey key;
  // 31-bit primes so n < 2^62 and n^2 < 2^124 fits uint128 comfortably.
  for (;;) {
    key.p = NextPrime((rng.Next() % (1ull << 30)) + (1ull << 30));
    key.q = NextPrime((rng.Next() % (1ull << 30)) + (1ull << 30));
    if (key.p == key.q) continue;
    key.n = key.p * key.q;
    key.lambda = Lcm(key.p - 1, key.q - 1);
    key.mu = InvMod(key.lambda % key.n, key.n);
    if (key.mu != 0) break;
  }
  return key;
}

uint128 PaillierEncrypt(const PaillierKey& key, uint64_t m, uint64_t rand) {
  uint128 n2 = key.n2();
  // r must be coprime with n.
  uint64_t r = rand % key.n;
  while (r == 0 || Gcd(r, key.n) != 1) r = (r + 1) % key.n;
  // g^m mod n^2 with g = n+1 simplifies to (1 + m·n) mod n^2.
  uint128 gm = (1 + MulMod(static_cast<uint128>(m), key.n, n2)) % n2;
  uint128 rn = PowMod(r, key.n, n2);
  return MulMod(gm, rn, n2);
}

Result<uint64_t> PaillierDecrypt(const PaillierKey& key, uint128 c) {
  uint128 n2 = key.n2();
  if (c == 0 || c >= n2) {
    return Status::InvalidArgument("ciphertext out of range");
  }
  uint128 x = PowMod(c, key.lambda, n2);
  // L(x) = (x - 1) / n.
  uint128 l = (x - 1) / key.n;
  uint64_t m = static_cast<uint64_t>(
      MulMod(l, static_cast<uint128>(key.mu), static_cast<uint128>(key.n)));
  return m;
}

uint128 PaillierAdd(uint64_t n, uint128 c1, uint128 c2) {
  uint128 n2 = static_cast<uint128>(n) * n;
  return MulMod(c1, c2, n2);
}

uint64_t PaillierEncodeSigned(const PaillierKey& key, int64_t v) {
  if (v >= 0) return static_cast<uint64_t>(v) % key.n;
  return key.n - (static_cast<uint64_t>(-v) % key.n);
}

int64_t PaillierDecodeSigned(const PaillierKey& key, uint64_t m) {
  if (m > key.n / 2) return -static_cast<int64_t>(key.n - m);
  return static_cast<int64_t>(m);
}

std::string PaillierCipherToBytes(uint128 c) {
  std::string out;
  out.resize(16);
  std::memcpy(out.data(), &c, 16);
  return out;
}

Result<uint128> PaillierCipherFromBytes(const std::string& bytes) {
  if (bytes.size() < 16) return Status::InvalidArgument("bad Paillier bytes");
  uint128 c;
  std::memcpy(&c, bytes.data(), 16);
  return c;
}

}  // namespace mpq

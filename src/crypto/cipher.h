// Symmetric cipher used for the kRandom and kDeterministic schemes.
//
// A keystream cipher built on splitmix64: ciphertext = nonce || (plaintext ⊕
// keystream(key, nonce)). Deterministic mode derives the nonce as a PRF of
// the plaintext, so equal plaintexts under the same key yield equal
// ciphertexts (equality-preserving); randomized mode draws a fresh nonce.
//
// This is a functional simulation adequate for reproducing the paper's
// system behaviour (see DESIGN.md §2); it is NOT cryptographically strong.

#ifndef MPQ_CRYPTO_CIPHER_H_
#define MPQ_CRYPTO_CIPHER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace mpq {

/// Encrypts `plaintext` with `key`. `nonce` must be unique per call for
/// randomized encryption, or PRF-derived for deterministic encryption.
/// Layout: 8-byte little-endian nonce, then the XOR-masked plaintext.
std::string SymEncrypt(uint64_t key, uint64_t nonce,
                       const std::string& plaintext);

/// Deterministic encryption: nonce = PRF(key, plaintext).
std::string DetEncrypt(uint64_t key, const std::string& plaintext);

/// Randomized encryption with caller-provided nonce source.
std::string RndEncrypt(uint64_t key, uint64_t fresh_nonce,
                       const std::string& plaintext);

/// Inverts SymEncrypt/DetEncrypt/RndEncrypt.
Result<std::string> SymDecrypt(uint64_t key, const std::string& ciphertext);

}  // namespace mpq

#endif  // MPQ_CRYPTO_CIPHER_H_

#include "crypto/keyring.h"

#include "common/rng.h"
#include "common/str_util.h"

namespace mpq {

KeyMaterial MakeKeyMaterial(uint64_t seed, uint64_t key_id) {
  KeyMaterial km;
  km.key_id = key_id;
  uint64_t base = SplitMix64(seed ^ SplitMix64(key_id * 0x9e37u + 17));
  km.sym = SplitMix64(base ^ 1);
  km.ope = SplitMix64(base ^ 2);
  km.paillier = PaillierKeyGen(base ^ 3);
  km.hom_precomp = std::make_shared<const PaillierPrecomp>(km.paillier);
  return km;
}

Result<KeyMaterial> KeyRing::Get(uint64_t key_id) const {
  auto it = keys_.find(key_id);
  if (it == keys_.end()) {
    return Status::NotFound(
        StrFormat("key %llu was not distributed to this subject",
                  static_cast<unsigned long long>(key_id)));
  }
  return it->second;
}

}  // namespace mpq

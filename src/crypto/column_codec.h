// Column-level crypto codec: one resolved (key material, Montgomery
// context) bundle that encrypts, decrypts, or homomorphically folds whole
// ColumnData spans. This replaced the ad-hoc per-cell-array entry points
// (EncryptCellBatch/DecryptCellBatch, since deleted) and the call-site
// PaillierSumCtx plumbing: key material and the per-key hom_precomp are
// resolved once when the codec is built, and every span operation touches
// each ciphertext exactly once, contiguously.
//
// A codec comes in two strengths. Built from full KeyMaterial it supports
// every operation. Built from only a public Paillier modulus it supports
// homomorphic folding but refuses to encrypt or decrypt — which is exactly
// the paper's untrusted-provider property: aggregation over ciphertexts
// needs no private key, so the engine can hand a fold-only codec to a
// provider that was never distributed the key.

#ifndef MPQ_CRYPTO_COLUMN_CODEC_H_
#define MPQ_CRYPTO_COLUMN_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/enc_value.h"
#include "crypto/keyring.h"
#include "exec/column.h"

namespace mpq {

class ColumnCodec {
 public:
  /// Full-strength codec: encrypt, decrypt, and fold under `km`.
  explicit ColumnCodec(const KeyMaterial& km);

  /// Fold-only codec from public knowledge: homomorphic addition over
  /// ciphertexts of `key_id` whose Paillier modulus is `public_modulus`.
  /// EncryptSpan/DecryptSpan fail with kNotFound.
  ColumnCodec(uint64_t key_id, uint64_t public_modulus);

  uint64_t key_id() const { return key_id_; }
  /// True when the codec holds full key material (can encrypt/decrypt).
  bool has_material() const { return has_material_; }

  /// Encrypts plaintext rows [begin, end) of `src` under `scheme`, writing
  /// the `end - begin` ciphertexts to `out[0..)`. Row r draws nonce
  /// `nonce_base + r` (absolute row index), so spans may be encrypted in
  /// any batch partition — including concurrently, the method is const and
  /// thread-safe — without changing a single output bit.
  Status EncryptSpan(const ColumnData& src, size_t begin, size_t end,
                     EncScheme scheme, uint64_t nonce_base,
                     EncValue* out) const;

  /// Decrypts rows [begin, end) of `src` into `out[0..end - begin)`: NULL
  /// rows become null cells, plaintext rows pass through untouched,
  /// ciphertext rows decrypt with `type` guiding numeric decoding. When
  /// `hom_avg` is set the ciphertexts hold Paillier sums whose `aux`
  /// counter is the divisor, and the plaintext written is the divided
  /// double. Const and thread-safe.
  Status DecryptSpan(const ColumnData& src, size_t begin, size_t end,
                     DataType type, bool hom_avg, Cell* out) const;

  /// Eager pairwise homomorphic addition: == PaillierAdd on the public n.
  /// Const and thread-safe.
  uint128 HomAdd(uint128 c1, uint128 c2) const { return sum_.Add(c1, c2); }

  /// Lazy fold: the homomorphic sum of the `n` Paillier ciphertexts of
  /// `col` at row indices `rows[0..n)`, as the canonical product residue —
  /// bit-identical to a HomAdd chain over the same rows. The ciphertexts
  /// are staged contiguously and folded with one batch Montgomery
  /// accumulation (one reduction per operand). Callers validate scheme and
  /// key id; this folds whatever blobs the rows hold. NOT thread-safe: the
  /// fold reuses one accumulation context across calls.
  Result<uint128> FoldRows(const ColumnData& col, const uint32_t* rows,
                           size_t n);

 private:
  bool has_material_ = false;
  uint64_t key_id_ = 0;
  KeyMaterial km_;
  PaillierSumCtx sum_;
  std::vector<uint128> scratch_;  ///< FoldRows operand staging.
};

}  // namespace mpq

#endif  // MPQ_CRYPTO_COLUMN_CODEC_H_

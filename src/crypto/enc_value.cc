#include "crypto/enc_value.h"

#include <algorithm>
#include <cmath>

#include "crypto/cipher.h"
#include "crypto/ope.h"

namespace mpq {

std::string EncValue::ToString() const {
  std::string out = "<";
  out += EncSchemeName(scheme);
  out += ":k";
  out += std::to_string(key_id);
  out += ":";
  static const char kHex[] = "0123456789abcdef";
  size_t n = std::min<size_t>(blob.size(), 6);
  for (size_t i = 0; i < n; ++i) {
    unsigned char c = static_cast<unsigned char>(blob[i]);
    out += kHex[c >> 4];
    out += kHex[c & 0xf];
  }
  out += "…>";
  return out;
}

Result<EncValue> EncryptValue(const Value& v, EncScheme scheme, uint64_t key_id,
                              const KeyMaterial& keys, uint64_t fresh_nonce) {
  EncValue ev;
  ev.scheme = scheme;
  ev.key_id = key_id;
  switch (scheme) {
    case EncScheme::kRandom:
      ev.blob = RndEncrypt(keys.sym, fresh_nonce, v.Serialize());
      return ev;
    case EncScheme::kDeterministic:
      ev.blob = DetEncrypt(keys.sym, v.Serialize());
      return ev;
    case EncScheme::kOpe: {
      MPQ_ASSIGN_OR_RETURN(ev.blob, OpeEncryptValue(keys.ope, v));
      return ev;
    }
    case EncScheme::kPaillier: {
      int64_t m;
      if (v.is_int()) {
        m = v.AsInt();
      } else if (v.is_double()) {
        m = static_cast<int64_t>(
            std::llround(v.AsDouble() * static_cast<double>(kFixedPointScale)));
      } else {
        return Status::Unsupported("Paillier supports numeric values only");
      }
      uint64_t encoded = PaillierEncodeSigned(keys.paillier, m);
      uint128 c = keys.hom_precomp != nullptr && keys.hom_precomp->valid()
                      ? keys.hom_precomp->Encrypt(encoded, fresh_nonce | 1)
                      : PaillierEncrypt(keys.paillier, encoded,
                                        fresh_nonce | 1);
      ev.blob = PaillierCipherToBytes(c);
      return ev;
    }
  }
  return Status::Internal("unreachable scheme");
}

Result<Value> DecryptValue(const EncValue& ev, const KeyMaterial& keys,
                           DataType type) {
  switch (ev.scheme) {
    case EncScheme::kRandom:
    case EncScheme::kDeterministic: {
      MPQ_ASSIGN_OR_RETURN(std::string plain, SymDecrypt(keys.sym, ev.blob));
      return Value::Deserialize(plain);
    }
    case EncScheme::kOpe:
      return OpeDecryptValue(keys.ope, ev.blob, type);
    case EncScheme::kPaillier: {
      MPQ_ASSIGN_OR_RETURN(uint128 c, PaillierCipherFromBytes(ev.blob));
      bool fast = keys.hom_precomp != nullptr && keys.hom_precomp->valid();
      MPQ_ASSIGN_OR_RETURN(uint64_t m,
                           fast ? keys.hom_precomp->Decrypt(c)
                                : PaillierDecrypt(keys.paillier, c));
      int64_t decoded = PaillierDecodeSigned(keys.paillier, m);
      if (type == DataType::kDouble) {
        return Value(static_cast<double>(decoded) /
                     static_cast<double>(kFixedPointScale));
      }
      return Value(decoded);
    }
  }
  return Status::Internal("unreachable scheme");
}

Result<bool> CompareCells(CmpOp op, const Cell& a, const Cell& b) {
  if (a.is_plain() && b.is_plain()) {
    return EvalCmp(op, a.plain(), b.plain());
  }
  if (a.is_plain() != b.is_plain()) {
    return Status::Unsupported(
        "cannot compare a plaintext cell with an encrypted cell");
  }
  const EncValue& ea = a.enc();
  const EncValue& eb = b.enc();
  if (ea.scheme != eb.scheme || ea.key_id != eb.key_id) {
    return Status::Unsupported(
        "cannot compare ciphertexts under different schemes or keys");
  }
  switch (ea.scheme) {
    case EncScheme::kDeterministic: {
      if (op == CmpOp::kEq) return ea.blob == eb.blob;
      if (op == CmpOp::kNe) return ea.blob != eb.blob;
      return Status::Unsupported(
          "deterministic ciphertexts support only equality comparison");
    }
    case EncScheme::kOpe: {
      int c = ea.blob.compare(eb.blob);
      switch (op) {
        case CmpOp::kEq:
          return c == 0;
        case CmpOp::kNe:
          return c != 0;
        case CmpOp::kLt:
          return c < 0;
        case CmpOp::kLe:
          return c <= 0;
        case CmpOp::kGt:
          return c > 0;
        case CmpOp::kGe:
          return c >= 0;
      }
      return Status::Internal("unreachable");
    }
    case EncScheme::kRandom:
      return Status::Unsupported("randomized ciphertexts are not comparable");
    case EncScheme::kPaillier:
      return Status::Unsupported("Paillier ciphertexts are not comparable");
  }
  return Status::Internal("unreachable scheme");
}

Result<std::string> CellGroupKey(const Cell& c) {
  if (c.is_plain()) return c.plain().Serialize();
  const EncValue& ev = c.enc();
  if (ev.scheme == EncScheme::kDeterministic || ev.scheme == EncScheme::kOpe) {
    return ev.blob;
  }
  return Status::Unsupported(
      "RND/HOM ciphertexts cannot serve as grouping or join keys");
}

}  // namespace mpq

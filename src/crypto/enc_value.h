// Encrypted cells and the plaintext-or-encrypted Cell type flowing through
// the execution engine.

#ifndef MPQ_CRYPTO_ENC_VALUE_H_
#define MPQ_CRYPTO_ENC_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "algebra/expr.h"
#include "common/status.h"
#include "common/value.h"
#include "crypto/keyring.h"
#include "crypto/scheme.h"

namespace mpq {

/// An encrypted cell value.
struct EncValue {
  EncScheme scheme = EncScheme::kRandom;
  uint64_t key_id = 0;
  std::string blob;
  /// Auxiliary plaintext counter: number of values homomorphically summed
  /// into a Paillier ciphertext (1 for a freshly encrypted value). Carried in
  /// the clear so avg can divide after decryption; counts are not protected
  /// by the authorization model (they are count(*)-level information).
  int64_t aux = 1;

  size_t ByteSize() const { return blob.size() + 8; }
  std::string ToString() const;

  bool operator==(const EncValue& o) const {
    return scheme == o.scheme && key_id == o.key_id && blob == o.blob &&
           aux == o.aux;
  }
};

/// A cell: plaintext Value or EncValue.
class Cell {
 public:
  Cell() : v_(Value()) {}
  Cell(Value v) : v_(std::move(v)) {}          // NOLINT
  Cell(EncValue v) : v_(std::move(v)) {}       // NOLINT

  bool is_plain() const { return std::holds_alternative<Value>(v_); }
  bool is_encrypted() const { return !is_plain(); }

  const Value& plain() const { return std::get<Value>(v_); }
  const EncValue& enc() const { return std::get<EncValue>(v_); }
  /// Mutable views, for callers that move a cell's payload out.
  Value& plain_mut() { return std::get<Value>(v_); }
  EncValue& enc_mut() { return std::get<EncValue>(v_); }

  size_t ByteSize() const {
    return is_plain() ? plain().ByteSize() : enc().ByteSize();
  }
  std::string ToString() const {
    return is_plain() ? plain().ToString() : enc().ToString();
  }

 private:
  std::variant<Value, EncValue> v_;
};

/// Encrypts `v` under `scheme` with key `key_id` from `keys`. `fresh_nonce`
/// feeds randomized encryption (and Paillier blinding).
Result<EncValue> EncryptValue(const Value& v, EncScheme scheme, uint64_t key_id,
                              const KeyMaterial& keys, uint64_t fresh_nonce);

/// Decrypts an EncValue; `type` guides numeric decoding. For Paillier cells
/// this returns the (decoded) homomorphic sum; callers divide by `aux` when
/// the cell represents an average.
Result<Value> DecryptValue(const EncValue& ev, const KeyMaterial& keys,
                           DataType type);

/// Evaluates `a op b` over two cells. Plaintext pairs compare as Values;
/// DET ciphertexts support =/<>, OPE ciphertexts all comparisons (same key
/// required). Everything else is kUnsupported.
Result<bool> CompareCells(CmpOp op, const Cell& a, const Cell& b);

/// Grouping/join key bytes for a cell (canonical for plaintext, blob for
/// deterministic and OPE ciphertexts; kUnsupported for RND/HOM, which are not
/// comparable).
Result<std::string> CellGroupKey(const Cell& c);

}  // namespace mpq

#endif  // MPQ_CRYPTO_ENC_VALUE_H_

// Order-preserving encryption for numeric values.
//
// Encodes x as the 128-bit value (offset(x) << 16) | PRF16(key, x): the high
// bits carry the order, the low bits a keyed pseudo-random pad, so ciphertext
// comparison (as big-endian bytes) matches plaintext order while equal
// plaintexts under the same key still encrypt deterministically (OPE supports
// both order and equality comparisons). Doubles are mapped through a
// fixed-point scaling. Strings are not supported (range predicates over
// strings fall back to plaintext execution; see DerivePlaintextNeeds).

#ifndef MPQ_CRYPTO_OPE_H_
#define MPQ_CRYPTO_OPE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/value.h"

namespace mpq {

/// Fixed-point scale for doubles under OPE and Paillier.
inline constexpr int64_t kFixedPointScale = 10000;

/// Encrypts an int64. Ciphertext is a 16-byte big-endian string whose
/// lexicographic order equals the plaintext numeric order.
std::string OpeEncryptInt(uint64_t key, int64_t x);

/// Inverts OpeEncryptInt.
Result<int64_t> OpeDecryptInt(uint64_t key, const std::string& ct);

/// Encrypts a numeric Value (int64 or double via fixed-point).
Result<std::string> OpeEncryptValue(uint64_t key, const Value& v);

/// Decrypts to a Value of the given type.
Result<Value> OpeDecryptValue(uint64_t key, const std::string& ct,
                              DataType type);

}  // namespace mpq

#endif  // MPQ_CRYPTO_OPE_H_

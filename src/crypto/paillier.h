// Paillier additively homomorphic cryptosystem over a small (64-bit) modulus.
//
// A real Paillier implementation (keygen, Enc, Dec, homomorphic addition)
// sized so ciphertext arithmetic fits in unsigned __int128. Supports the
// paper's encrypted sum/avg aggregation. Small-modulus keys are NOT secure;
// they reproduce system behaviour, not cryptographic strength (DESIGN.md §2).

#ifndef MPQ_CRYPTO_PAILLIER_H_
#define MPQ_CRYPTO_PAILLIER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mpq {

using uint128 = unsigned __int128;

/// A Paillier key pair. n = p·q with 31-bit primes p, q; g = n + 1.
struct PaillierKey {
  uint64_t n = 0;        ///< Public modulus.
  uint64_t p = 0;        ///< Secret prime.
  uint64_t q = 0;        ///< Secret prime.
  uint64_t lambda = 0;   ///< lcm(p-1, q-1).
  uint64_t mu = 0;       ///< lambda^{-1} mod n.

  uint128 n2() const { return static_cast<uint128>(n) * n; }
};

/// Deterministically generates a key pair from `seed` (distinct seeds yield
/// distinct keys; generation is reproducible for tests).
PaillierKey PaillierKeyGen(uint64_t seed);

/// Encrypts message m ∈ [0, n). `rand` supplies the blinding randomness.
uint128 PaillierEncrypt(const PaillierKey& key, uint64_t m, uint64_t rand);

/// Decrypts a ciphertext.
Result<uint64_t> PaillierDecrypt(const PaillierKey& key, uint128 c);

/// Homomorphic addition: Dec(PaillierAdd(n, c1, c2)) = m1 + m2 mod n.
/// Requires only the public modulus — an untrusted provider can aggregate
/// ciphertexts without holding the private key.
uint128 PaillierAdd(uint64_t n, uint128 c1, uint128 c2);

/// Encodes a signed value into [0, n) (two's-complement style around n/2).
uint64_t PaillierEncodeSigned(const PaillierKey& key, int64_t v);

/// Inverse of PaillierEncodeSigned.
int64_t PaillierDecodeSigned(const PaillierKey& key, uint64_t m);

/// Serializes a ciphertext to 16 little-endian bytes (and back).
std::string PaillierCipherToBytes(uint128 c);
Result<uint128> PaillierCipherFromBytes(const std::string& bytes);

// ------------------------------------------------------------ fast paths ---
//
// The schoolbook PowMod above runs a 128-step double-and-add MulMod per
// squaring — hundreds of loop iterations per modular multiplication. The
// contexts below precompute, once per key, everything the hot paths reuse:
// Montgomery domains (reduction without division), the CRT split of n² into
// p²·q² (64-bit arithmetic instead of 128-bit), and the sliding-window
// multiplication schedules of the key's two fixed exponents (n for the
// blinding factor r^n of encryption, λ for decryption). All of it is pure
// precomputation of mathematically identical operations: every ciphertext
// and plaintext byte produced equals the schoolbook path bit-for-bit, which
// the frozen KATs in tests/crypto_test.cc pin.

/// A 64-bit Montgomery domain over an odd modulus < 2^63.
struct Mont64 {
  uint64_t m = 0;        ///< Modulus.
  uint64_t neg_inv = 0;  ///< -m^{-1} mod 2^64.
  uint64_t r2 = 0;       ///< R² mod m, R = 2^64.

  void Init(uint64_t modulus);
  /// Montgomery product a·b·R^{-1} mod m (operands in Montgomery form).
  uint64_t Mul(uint64_t a, uint64_t b) const {
    uint128 t = static_cast<uint128>(a) * b;
    uint64_t u = static_cast<uint64_t>(t) * neg_inv;
    uint128 s = t + static_cast<uint128>(u) * m;
    auto res = static_cast<uint64_t>(s >> 64);
    return res >= m ? res - m : res;
  }
  uint64_t ToMont(uint64_t x) const { return Mul(x % m, r2); }
  uint64_t FromMont(uint64_t x) const { return Mul(x, 1); }
};

/// The precomputed sliding-window multiplication schedule of one fixed
/// exponent: squarings interleaved with multiplications by odd powers
/// base^1, base^3, …, base^15 of the (per-call) base.
struct WindowSchedule {
  struct Op {
    uint8_t squares = 0;  ///< Squarings to apply before the multiply.
    int8_t mul = -1;      ///< Odd-power index ((digit-1)/2), or -1 for none.
  };
  std::vector<Op> ops;  ///< ops[0].mul seeds the accumulator (no squares).

  /// Builds the schedule of exponent `e` >= 1 (4-bit windows).
  static WindowSchedule For(uint64_t e);
};

/// Per-key precomputation for encryption/decryption: CRT-split
/// exponentiation over p² and q² in Montgomery form, driven by the window
/// schedules of the fixed exponents n and λ. Requires the private factors;
/// `valid()` is false for a key holding only the public modulus, and
/// callers then fall back to the schoolbook path.
class PaillierPrecomp {
 public:
  explicit PaillierPrecomp(const PaillierKey& key);

  bool valid() const { return valid_; }

  /// Enc(m) with blinding randomness `rand` — bit-identical to
  /// PaillierEncrypt(key, m, rand).
  uint128 Encrypt(uint64_t m, uint64_t rand) const;

  /// Dec(c) — bit-identical to PaillierDecrypt(key, c).
  Result<uint64_t> Decrypt(uint128 c) const;

  /// base^n mod n² (the encryption blinding exponentiation), exposed for
  /// equivalence tests.
  uint128 PowN(uint64_t base) const;

 private:
  /// base^e mod p²·q² via per-prime window exponentiation + CRT combine.
  uint128 CrtPow(uint128 base, const WindowSchedule& sched) const;

  bool valid_ = false;
  PaillierKey key_;
  uint128 n2_ = 0;
  Mont64 p2_, q2_;
  uint64_t q2_inv_p2_ = 0;  ///< (q²)^{-1} mod p².
  WindowSchedule n_sched_, lambda_sched_;
};

/// Montgomery context over the public n² for homomorphic addition — the
/// group-by hot path adds one ciphertext per row, and this replaces each
/// 128-step MulMod ladder with carry-propagated Montgomery reductions.
/// Needs only the public modulus, like PaillierAdd (whose outputs it
/// reproduces bit-for-bit).
///
/// Two usage shapes:
///  - Add(): stateless pairwise addition, const and thread-safe.
///  - The reusable accumulation lifecycle — Reset(), then Accumulate /
///    AccumulateMany over any number of ciphertexts, then Finalize(). Every
///    operand costs a single Montgomery reduction where an Add() chain pays
///    two reductions plus two 128-bit divisions; the accumulated R-exponent
///    deficit is repaid once at Finalize() in O(log k) multiplications.
///    Finalize() returns the canonical residue ∏cᵢ mod n², bit-identical to
///    the Add() chain over the same operands. One context serves any number
///    of folds (Reset() clears the accumulator, never the constants), but
///    the lifecycle is stateful: not safe for concurrent folds on one
///    context.
class PaillierSumCtx {
 public:
  explicit PaillierSumCtx(uint64_t n);

  uint64_t n() const { return n_; }

  /// Homomorphic addition: == PaillierAdd(n, c1, c2).
  uint128 Add(uint128 c1, uint128 c2) const;

  /// Clears the accumulator for a new fold (precomputed constants persist).
  void Reset() {
    acc_ = 0;
    count_ = 0;
  }
  /// Folds one ciphertext into the accumulator.
  void Accumulate(uint128 c);
  /// Batch multi-operand accumulation over a contiguous ciphertext span:
  /// one Montgomery reduction per operand, no per-operand domain exits.
  void AccumulateMany(const uint128* c, size_t n);
  /// The canonical homomorphic sum of everything accumulated since Reset()
  /// (0 when nothing was). Leaves the accumulator intact: more operands may
  /// be accumulated and finalized again.
  uint128 Finalize() const;
  /// Operands folded since the last Reset().
  size_t accumulated() const { return count_; }

 private:
  /// T·R^{-1} mod m for the 256-bit T in `t` (little-endian limbs).
  uint128 Redc(uint64_t t[4]) const;
  uint128 MontMul(uint128 a, uint128 b) const;

  uint64_t n_ = 0;
  uint128 m_ = 0;         ///< n².
  uint64_t neg_inv_ = 0;  ///< -m^{-1} mod 2^64.
  uint128 r2_ = 0;        ///< R² mod m, R = 2^128.
  bool mont_ = false;     ///< Montgomery constants usable (odd m_ > 2).
  uint128 acc_ = 0;       ///< Fold accumulator: ∏cᵢ·R^(2-count_) mod m.
  size_t count_ = 0;      ///< Operands since Reset().
};

}  // namespace mpq

#endif  // MPQ_CRYPTO_PAILLIER_H_

// Paillier additively homomorphic cryptosystem over a small (64-bit) modulus.
//
// A real Paillier implementation (keygen, Enc, Dec, homomorphic addition)
// sized so ciphertext arithmetic fits in unsigned __int128. Supports the
// paper's encrypted sum/avg aggregation. Small-modulus keys are NOT secure;
// they reproduce system behaviour, not cryptographic strength (DESIGN.md §2).

#ifndef MPQ_CRYPTO_PAILLIER_H_
#define MPQ_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace mpq {

using uint128 = unsigned __int128;

/// A Paillier key pair. n = p·q with 31-bit primes p, q; g = n + 1.
struct PaillierKey {
  uint64_t n = 0;        ///< Public modulus.
  uint64_t p = 0;        ///< Secret prime.
  uint64_t q = 0;        ///< Secret prime.
  uint64_t lambda = 0;   ///< lcm(p-1, q-1).
  uint64_t mu = 0;       ///< lambda^{-1} mod n.

  uint128 n2() const { return static_cast<uint128>(n) * n; }
};

/// Deterministically generates a key pair from `seed` (distinct seeds yield
/// distinct keys; generation is reproducible for tests).
PaillierKey PaillierKeyGen(uint64_t seed);

/// Encrypts message m ∈ [0, n). `rand` supplies the blinding randomness.
uint128 PaillierEncrypt(const PaillierKey& key, uint64_t m, uint64_t rand);

/// Decrypts a ciphertext.
Result<uint64_t> PaillierDecrypt(const PaillierKey& key, uint128 c);

/// Homomorphic addition: Dec(PaillierAdd(n, c1, c2)) = m1 + m2 mod n.
/// Requires only the public modulus — an untrusted provider can aggregate
/// ciphertexts without holding the private key.
uint128 PaillierAdd(uint64_t n, uint128 c1, uint128 c2);

/// Encodes a signed value into [0, n) (two's-complement style around n/2).
uint64_t PaillierEncodeSigned(const PaillierKey& key, int64_t v);

/// Inverse of PaillierEncodeSigned.
int64_t PaillierDecodeSigned(const PaillierKey& key, uint64_t m);

/// Serializes a ciphertext to 16 little-endian bytes (and back).
std::string PaillierCipherToBytes(uint128 c);
Result<uint128> PaillierCipherFromBytes(const std::string& bytes);

}  // namespace mpq

#endif  // MPQ_CRYPTO_PAILLIER_H_

#include "net/pricing.h"

namespace mpq {

PricingTable PricingTable::PaperDefaults(const SubjectRegistry& subjects,
                                         double provider_cpu_usd_per_hour) {
  PricingTable table;
  PriceList provider;
  provider.cpu_usd_per_hour = provider_cpu_usd_per_hour;
  table.SetDefault(provider);
  for (const Subject& s : subjects.subjects()) {
    PriceList p = provider;
    switch (s.kind) {
      case SubjectKind::kUser:
        p.cpu_usd_per_hour = provider_cpu_usd_per_hour * 10.0;
        break;
      case SubjectKind::kAuthority:
        p.cpu_usd_per_hour = provider_cpu_usd_per_hour * 3.0;
        break;
      case SubjectKind::kProvider:
        break;
    }
    table.Set(s.id, p);
  }
  return table;
}

}  // namespace mpq

#include "net/topology.h"

#include <algorithm>

namespace mpq {

void Topology::SetLink(SubjectId a, SubjectId b, double bps) {
  links_[{std::min(a, b), std::max(a, b)}] = bps;
}

double Topology::BandwidthBps(SubjectId a, SubjectId b) const {
  auto it = links_.find({std::min(a, b), std::max(a, b)});
  return it == links_.end() ? default_bps_ : it->second;
}

Topology Topology::PaperDefaults(const SubjectRegistry& subjects) {
  Topology t;
  t.SetDefault(10e9);
  for (const Subject& u : subjects.subjects()) {
    if (u.kind != SubjectKind::kUser) continue;
    for (const Subject& other : subjects.subjects()) {
      if (other.id == u.id) continue;
      t.SetLink(u.id, other.id, 100e6);
    }
  }
  return t;
}

}  // namespace mpq

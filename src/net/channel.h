// Fragment channels: the mailboxes distributed fragment tasks communicate
// through. Every plan node owns one Channel; the tasks executing its operand
// subtrees Send their result tables into it (each into a fixed operand slot)
// and the node's own task Recvs them once all operands arrived.
//
// Channels carry the payload; SimNet (simnet.h) decides whether and when a
// given send succeeds. Keeping the two separate means the runtime's dispatch
// logic is written once against Send/Recv and every network condition —
// ideal, slow, lossy, or partitioned — is a SimNet configuration.

#ifndef MPQ_NET_CHANNEL_H_
#define MPQ_NET_CHANNEL_H_

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "authz/subject.h"
#include "exec/table.h"

namespace mpq {

/// One fragment-to-fragment message.
struct Envelope {
  int slot = 0;        ///< Operand position at the receiving node.
  int from_node = -1;  ///< Plan node id of the sender (the dispatch step).
  SubjectId from = kInvalidSubject;
  Table payload;
  /// Simulated seconds the delivery took (latency + serialization + injected
  /// delays, summed over retries). Zero on an ideal network.
  double virtual_s = 0;
};

/// A multi-producer single-consumer mailbox with one slot per operand.
/// Send never blocks; Recv blocks until the slot is filled (TryRecv polls).
/// A node's task is only scheduled after every operand delivered, so in the
/// runtime Recv never actually waits — the blocking form exists for direct
/// use in tests and future pull-based consumers.
class Channel {
 public:
  explicit Channel(size_t num_slots = 0) : slots_(num_slots) {}

  /// Number of operand slots.
  size_t size() const { return slots_.size(); }

  /// Delivers `e` into its slot. A second send to an occupied slot replaces
  /// the previous payload (retransmission after failover).
  void Send(Envelope e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      size_t slot = static_cast<size_t>(e.slot);
      if (slot >= slots_.size()) slots_.resize(slot + 1);
      slots_[slot] = std::move(e);
    }
    cv_.notify_all();
  }

  /// Takes the envelope of `slot` if present.
  std::optional<Envelope> TryRecv(int slot) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t s = static_cast<size_t>(slot);
    if (s >= slots_.size() || !slots_[s].has_value()) return std::nullopt;
    std::optional<Envelope> out = std::move(slots_[s]);
    slots_[s].reset();
    return out;
  }

  /// Blocks until `slot` is filled, then takes its envelope.
  Envelope Recv(int slot) {
    std::unique_lock<std::mutex> lock(mu_);
    size_t s = static_cast<size_t>(slot);
    cv_.wait(lock, [&] {
      return s < slots_.size() && slots_[s].has_value();
    });
    Envelope out = std::move(*slots_[s]);
    slots_[s].reset();
    return out;
  }

  /// Envelopes currently waiting.
  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& s : slots_) {
      if (s.has_value()) n++;
    }
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::optional<Envelope>> slots_;
};

}  // namespace mpq

#endif  // MPQ_NET_CHANNEL_H_

// Network topology: pairwise bandwidth between subjects. The paper's
// configuration connects authorities and providers with 10 Gbps links and
// the client with a 100 Mbps link.

#ifndef MPQ_NET_TOPOLOGY_H_
#define MPQ_NET_TOPOLOGY_H_

#include <map>
#include <utility>

#include "authz/subject.h"

namespace mpq {

/// Symmetric bandwidth matrix with a default.
class Topology {
 public:
  /// Default link speed (bits per second).
  void SetDefault(double bps) { default_bps_ = bps; }

  /// Sets the (symmetric) bandwidth between two subjects.
  void SetLink(SubjectId a, SubjectId b, double bps);

  double BandwidthBps(SubjectId a, SubjectId b) const;

  /// Paper configuration: 10 Gbps between authorities/providers, 100 Mbps
  /// from every subject to the user.
  static Topology PaperDefaults(const SubjectRegistry& subjects);

 private:
  double default_bps_ = 10e9;
  std::map<std::pair<SubjectId, SubjectId>, double> links_;
};

}  // namespace mpq

#endif  // MPQ_NET_TOPOLOGY_H_

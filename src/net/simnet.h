// SimNet: a simulated multi-provider network. Each subject-pair link has
// latency and bandwidth; a seeded fault plan injects message drops, extra
// delays, and provider crashes at chosen dispatch steps. The distributed
// runtime routes every assignee-crossing fragment edge through Deliver, so
// slow, lossy and partially-down networks are exercised by configuration —
// no real sockets, no real sleeps.
//
// Determinism: every fault decision is a PRF of (seed, from, to, dispatch
// step, attempt). The dispatch step is the sending plan node's id, which is
// independent of scheduling order, so the same fault plan produces the same
// drops and crashes at any thread count — the property the fault-matrix and
// differential tests rely on.
//
// Time is virtual: Deliver *accounts* the seconds a transfer would take
// (latency + bytes/bandwidth + injected delay, summed over retries) instead
// of sleeping them. Deadline budgets compare against this virtual time.

#ifndef MPQ_NET_SIMNET_H_
#define MPQ_NET_SIMNET_H_

#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "authz/subject.h"
#include "common/status.h"
#include "net/topology.h"
#include "obs/clock.h"

namespace mpq {

/// Delivery parameters of one (symmetric) link.
struct LinkParams {
  double latency_s = 0;      ///< One-way propagation delay.
  double bandwidth_bps = 0;  ///< Bits per second; 0 = infinite.
};

/// Per-edge delivery policy the runtime applies to every fragment transfer.
struct NetPolicy {
  /// Send attempts per fragment edge before the peer is declared dead.
  int max_attempts = 3;
  /// Virtual-seconds budget per fragment edge (all attempts); 0 = unlimited.
  /// Exceeding it is treated like retry exhaustion: the peer is suspected
  /// dead and failover machinery takes over.
  double fragment_deadline_s = 0;
};

/// Seeded fault-injection plan.
struct FaultPlan {
  uint64_t seed = 1;
  /// Per-attempt message drop probability (PRF of seed/edge/step/attempt).
  double drop_prob = 0;
  /// Per-attempt probability of an extra `delay_s` of virtual latency.
  double delay_prob = 0;
  double delay_s = 0;
  /// subject → plan-node id: the subject crashes the moment it begins that
  /// dispatch step (BeginStep). It stays down until Restore.
  std::map<SubjectId, int> crash_at_step;
};

/// Outcome of one successful Deliver.
struct DeliveryReport {
  int attempts = 1;
  double virtual_s = 0;       ///< All attempts, including dropped ones.
  uint64_t wasted_bytes = 0;  ///< Bytes of dropped attempts (retransferred).
};

/// Aggregate counters (monotonic; survive Restore).
struct SimNetStats {
  uint64_t messages = 0;         ///< Successful deliveries.
  uint64_t bytes_delivered = 0;
  uint64_t drops = 0;            ///< Dropped attempts.
  uint64_t retries = 0;          ///< Attempts after the first.
  uint64_t wasted_bytes = 0;     ///< Bytes of dropped attempts.
  uint64_t crashes = 0;          ///< Crash triggers fired.
  uint64_t refused = 0;          ///< Sends refused because a peer was down.
  double virtual_s_total = 0;    ///< Sum of per-delivery virtual seconds.
};

/// The simulated network. Thread-safe; one instance is shared by a runtime,
/// its failover machinery and the serving layer.
class SimNet {
 public:
  /// `subjects` (borrowed, may be null) tells the net which subjects are
  /// cloud providers — the only kind the failover machinery may exclude.
  /// Without a registry every suspected peer is marked down.
  explicit SimNet(const SubjectRegistry* subjects = nullptr)
      : subjects_(subjects) {}

  void SetDefaultLink(LinkParams p) {
    std::lock_guard<std::mutex> lock(mu_);
    default_link_ = p;
  }
  void SetLink(SubjectId a, SubjectId b, LinkParams p);
  LinkParams Link(SubjectId a, SubjectId b) const;

  /// Configures links to mirror `topo`'s bandwidths with a uniform latency.
  void ConfigureFromTopology(const Topology& topo,
                             const SubjectRegistry& subjects,
                             double latency_s = 0);

  void SetFaultPlan(FaultPlan plan) {
    std::lock_guard<std::mutex> lock(mu_);
    faults_ = std::move(plan);
  }

  bool Alive(SubjectId s) const;
  /// Marks `s` down (operator action / detected failure).
  void Crash(SubjectId s);
  void Restore(SubjectId s);
  void RestoreAll();
  std::vector<SubjectId> DownSubjects() const;

  /// Monotone counter advanced by every liveness change (crash, suspicion,
  /// restore). The serving layer folds it into plan-cache keys, so a plan
  /// built around a down provider stops being served the moment the
  /// provider recovers (and vice versa) instead of outliving the outage.
  uint64_t liveness_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return liveness_epoch_;
  }

  /// Called when `s` begins executing dispatch step `node_id`; fires the
  /// fault plan's scheduled crash. Returns kUnavailable when `s` is (now)
  /// down.
  Status BeginStep(SubjectId s, int node_id);

  /// Simulates the delivery of `bytes` from `from` to `to` for dispatch step
  /// `step`, applying link timing and the fault plan under `policy`'s retry
  /// and deadline budget. On retry exhaustion or deadline overrun, the peer
  /// (the receiver when excludable, else the sender) is marked down and
  /// kUnavailable is returned; sends touching an already-down subject fail
  /// immediately.
  Result<DeliveryReport> Deliver(SubjectId from, SubjectId to, uint64_t bytes,
                                 int step, const NetPolicy& policy);

  SimNetStats GetStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// The net's accumulated virtual time as nanoseconds (the monotone sum of
  /// per-delivery virtual seconds). SimNetClock reads this so spans of a
  /// simulated run are stamped in virtual — not wall — time.
  uint64_t VirtualNowNs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint64_t>(stats_.virtual_s_total * 1e9);
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = SimNetStats{};
  }

 private:
  /// True when the fault plan drops attempt `attempt` of (from→to, step).
  bool DropsAttempt(SubjectId from, SubjectId to, int step, int attempt) const;
  bool DelaysAttempt(SubjectId from, SubjectId to, int step,
                     int attempt) const;
  /// A subject the failover machinery may exclude (a cloud provider).
  bool Excludable(SubjectId s) const;
  /// Picks the peer to blame for a dead edge and marks it down. Requires
  /// mu_ held.
  SubjectId SuspectLocked(SubjectId from, SubjectId to);

  const SubjectRegistry* subjects_;
  mutable std::mutex mu_;
  LinkParams default_link_;                                // guarded by mu_
  std::map<std::pair<SubjectId, SubjectId>, LinkParams> links_;  // by mu_
  FaultPlan faults_;                                       // guarded by mu_
  std::set<SubjectId> down_;                               // guarded by mu_
  uint64_t liveness_epoch_ = 1;                            // guarded by mu_
  SimNetStats stats_;                                      // guarded by mu_
};

/// TraceClock over a SimNet's virtual time: span timestamps advance only
/// when simulated transfers account virtual seconds, so a trace of a
/// simulated run reads in the same time base as its deadline budgets. The
/// net must outlive the clock.
class SimNetClock : public TraceClock {
 public:
  explicit SimNetClock(const SimNet* net) : net_(net) {}
  uint64_t NowNs() const override { return net_->VirtualNowNs(); }

 private:
  const SimNet* net_;
};

}  // namespace mpq

#endif  // MPQ_NET_SIMNET_H_

// Per-subject price lists (Sec 7): cloud providers charge for cpu time,
// local i/o and network i/o; users and data authorities are modeled as
// more expensive computation sites (10× and 3× provider cpu price in the
// paper's experiments).

#ifndef MPQ_NET_PRICING_H_
#define MPQ_NET_PRICING_H_

#include <unordered_map>

#include "authz/subject.h"

namespace mpq {

/// Prices for one subject.
struct PriceList {
  double cpu_usd_per_hour = 0.05;  ///< Per cpu-hour of processing.
  double io_usd_per_gb = 0.0002;   ///< Local i/o, per GB touched.
  double net_usd_per_gb = 0.001;   ///< Network egress, per GB sent
                                   ///< (intra-cloud / peered rates).
};

/// Price book for all subjects of a scenario.
class PricingTable {
 public:
  /// Default prices applied to subjects without an explicit entry.
  void SetDefault(PriceList p) { default_ = p; }
  void Set(SubjectId s, PriceList p) { prices_[s] = p; }

  const PriceList& Get(SubjectId s) const {
    auto it = prices_.find(s);
    return it == prices_.end() ? default_ : it->second;
  }

  /// Convenience: provider-baseline prices with the paper's multipliers for
  /// users (10× cpu) and data authorities (3× cpu).
  static PricingTable PaperDefaults(const SubjectRegistry& subjects,
                                    double provider_cpu_usd_per_hour = 0.05);

 private:
  PriceList default_;
  std::unordered_map<SubjectId, PriceList> prices_;
};

}  // namespace mpq

#endif  // MPQ_NET_PRICING_H_

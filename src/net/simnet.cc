#include "net/simnet.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"

namespace mpq {

namespace {

/// PRF in [0, 1) of one (edge, step, attempt) fault decision. `salt` keeps
/// the drop and delay streams independent.
double FaultRoll(uint64_t seed, SubjectId from, SubjectId to, int step,
                 int attempt, uint64_t salt) {
  uint64_t h = SplitMix64(seed ^ salt);
  h = SplitMix64(h ^ (static_cast<uint64_t>(from) + 1) * 0x9e3779b97f4a7c15ull);
  h = SplitMix64(h ^ (static_cast<uint64_t>(to) + 1) * 0xbf58476d1ce4e5b9ull);
  h = SplitMix64(h ^ (static_cast<uint64_t>(step) + 1) * 0x94d049bb133111ebull);
  h = SplitMix64(h ^ (static_cast<uint64_t>(attempt) + 1));
  return static_cast<double>(h >> 11) * (1.0 / (1ull << 53));
}

}  // namespace

void SimNet::SetLink(SubjectId a, SubjectId b, LinkParams p) {
  std::lock_guard<std::mutex> lock(mu_);
  links_[{std::min(a, b), std::max(a, b)}] = p;
}

LinkParams SimNet::Link(SubjectId a, SubjectId b) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find({std::min(a, b), std::max(a, b)});
  return it == links_.end() ? default_link_ : it->second;
}

void SimNet::ConfigureFromTopology(const Topology& topo,
                                   const SubjectRegistry& subjects,
                                   double latency_s) {
  for (const Subject& a : subjects.subjects()) {
    for (const Subject& b : subjects.subjects()) {
      if (a.id >= b.id) continue;
      SetLink(a.id, b.id,
              LinkParams{latency_s, topo.BandwidthBps(a.id, b.id)});
    }
  }
  SetDefaultLink(LinkParams{latency_s, 0});
}

bool SimNet::Alive(SubjectId s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_.find(s) == down_.end();
}

void SimNet::Crash(SubjectId s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_.insert(s).second) {
    stats_.crashes++;
    liveness_epoch_++;
  }
}

void SimNet::Restore(SubjectId s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_.erase(s) > 0) liveness_epoch_++;
}

void SimNet::RestoreAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!down_.empty()) liveness_epoch_++;
  down_.clear();
}

std::vector<SubjectId> SimNet::DownSubjects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SubjectId>(down_.begin(), down_.end());
}

bool SimNet::Excludable(SubjectId s) const {
  if (subjects_ == nullptr) return true;
  return s < subjects_->size() &&
         subjects_->Get(s).kind == SubjectKind::kProvider;
}

SubjectId SimNet::SuspectLocked(SubjectId from, SubjectId to) {
  // The coordinator observes a fragment that never arrives; it blames the
  // receiver when the receiver is excludable (the sender can vouch for its
  // own liveness), else the sender, else nobody (an authority or the user
  // cannot be routed around — the failure is terminal).
  SubjectId suspect = kInvalidSubject;
  if (Excludable(to)) {
    suspect = to;
  } else if (Excludable(from)) {
    suspect = from;
  }
  if (suspect != kInvalidSubject && down_.insert(suspect).second) {
    stats_.crashes++;
    liveness_epoch_++;
  }
  return suspect;
}

Status SimNet::BeginStep(SubjectId s, int node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto crash = faults_.crash_at_step.find(s);
  if (crash != faults_.crash_at_step.end() && crash->second == node_id) {
    if (down_.insert(s).second) {
      stats_.crashes++;
      liveness_epoch_++;
    }
  }
  if (down_.find(s) != down_.end()) {
    return Status::Unavailable(StrFormat(
        "subject %u is down at step %d", static_cast<unsigned>(s), node_id));
  }
  return Status::OK();
}

bool SimNet::DropsAttempt(SubjectId from, SubjectId to, int step,
                          int attempt) const {
  return FaultRoll(faults_.seed, from, to, step, attempt,
                   0x6d726f70736e6574ull) < faults_.drop_prob;
}

bool SimNet::DelaysAttempt(SubjectId from, SubjectId to, int step,
                           int attempt) const {
  return faults_.delay_prob > 0 &&
         FaultRoll(faults_.seed, from, to, step, attempt,
                   0x64656c61796e6574ull) < faults_.delay_prob;
}

Result<DeliveryReport> SimNet::Deliver(SubjectId from, SubjectId to,
                                       uint64_t bytes, int step,
                                       const NetPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down_.find(from) != down_.end() || down_.find(to) != down_.end()) {
    stats_.refused++;
    SubjectId dead = down_.find(to) != down_.end() ? to : from;
    return Status::Unavailable(
        StrFormat("subject %u is down; cannot deliver step %d",
                  static_cast<unsigned>(dead), step));
  }

  auto link_it = links_.find({std::min(from, to), std::max(from, to)});
  const LinkParams& link =
      link_it == links_.end() ? default_link_ : link_it->second;
  double per_attempt_s = link.latency_s;
  if (link.bandwidth_bps > 0) {
    per_attempt_s += static_cast<double>(bytes) * 8.0 / link.bandwidth_bps;
  }

  DeliveryReport report;
  int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    double attempt_s = per_attempt_s;
    if (DelaysAttempt(from, to, step, attempt)) attempt_s += faults_.delay_s;
    report.virtual_s += attempt_s;
    report.attempts = attempt + 1;
    if (attempt > 0) stats_.retries++;

    if (policy.fragment_deadline_s > 0 &&
        report.virtual_s > policy.fragment_deadline_s) {
      // Budget blown: the edge is too slow to be useful — same treatment as
      // a dead peer, so the failover machinery can route around it.
      stats_.virtual_s_total += report.virtual_s;
      SubjectId suspect = SuspectLocked(from, to);
      return Status::Unavailable(StrFormat(
          "fragment deadline (%.3fs) exceeded on edge %u->%u at step %d%s",
          policy.fragment_deadline_s, static_cast<unsigned>(from),
          static_cast<unsigned>(to), step,
          suspect == kInvalidSubject ? "; no excludable peer" : ""));
    }

    if (DropsAttempt(from, to, step, attempt)) {
      stats_.drops++;
      report.wasted_bytes += bytes;
      continue;
    }

    stats_.messages++;
    stats_.bytes_delivered += bytes;
    stats_.wasted_bytes += report.wasted_bytes;
    stats_.virtual_s_total += report.virtual_s;
    return report;
  }

  // Every attempt dropped: suspect a peer and hand control to failover.
  stats_.wasted_bytes += report.wasted_bytes;
  stats_.virtual_s_total += report.virtual_s;
  SubjectId suspect = SuspectLocked(from, to);
  return Status::Unavailable(
      StrFormat("%d/%d attempts dropped on edge %u->%u at step %d%s",
                report.attempts, max_attempts, static_cast<unsigned>(from),
                static_cast<unsigned>(to), step,
                suspect == kInvalidSubject ? "; no excludable peer" : ""));
}

}  // namespace mpq

// Dense bitset over interned attribute ids.
//
// Profiles and authorization views are unions/intersections/differences of
// attribute sets; AttrSet makes those O(words) operations. The set grows
// lazily, so sets created against different universe sizes interoperate.

#ifndef MPQ_COMMON_ATTR_SET_H_
#define MPQ_COMMON_ATTR_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/attr.h"

namespace mpq {

/// A set of attribute ids backed by a growable bitset.
class AttrSet {
 public:
  AttrSet() = default;
  AttrSet(std::initializer_list<AttrId> ids);

  /// Inserts `id`. Returns true when the set changed.
  bool Insert(AttrId id);
  /// Removes `id`. Returns true when the set changed.
  bool Erase(AttrId id);
  bool Contains(AttrId id) const;

  void InsertAll(const AttrSet& other);
  void EraseAll(const AttrSet& other);

  bool empty() const;
  size_t size() const;
  void clear() { words_.clear(); }

  /// True when every element of this set is in `other`.
  bool IsSubsetOf(const AttrSet& other) const;
  bool Intersects(const AttrSet& other) const;

  AttrSet Union(const AttrSet& other) const;
  AttrSet Intersect(const AttrSet& other) const;
  /// Elements of this set not in `other`.
  AttrSet Difference(const AttrSet& other) const;

  bool operator==(const AttrSet& other) const;
  bool operator!=(const AttrSet& other) const { return !(*this == other); }

  /// Elements in ascending id order.
  std::vector<AttrId> ToVector() const;

  /// Concatenated attribute names ("SDT" style when names are single chars,
  /// comma-separated otherwise), in ascending id order.
  std::string ToString(const AttrRegistry& reg) const;

  /// Iterates elements in ascending order, invoking `fn(AttrId)`.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(static_cast<AttrId>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  /// Builds a set from a range of AttrIds.
  template <typename It>
  static AttrSet FromRange(It begin, It end) {
    AttrSet s;
    for (It it = begin; it != end; ++it) s.Insert(*it);
    return s;
  }

 private:
  void EnsureWord(size_t w);
  void Shrink();

  std::vector<uint64_t> words_;
};

}  // namespace mpq

#endif  // MPQ_COMMON_ATTR_SET_H_

#include "common/attr.h"

#include <cassert>

namespace mpq {

AttrId AttrRegistry::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

AttrId AttrRegistry::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidAttr : it->second;
}

const std::string& AttrRegistry::Name(AttrId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace mpq

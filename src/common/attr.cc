#include "common/attr.h"

#include <cassert>
#include <mutex>

namespace mpq {

AttrRegistry::AttrRegistry(const AttrRegistry& other) {
  std::shared_lock<std::shared_mutex> lock(other.mu_);
  ids_ = other.ids_;
  names_ = other.names_;
}

AttrRegistry& AttrRegistry::operator=(const AttrRegistry& other) {
  if (this == &other) return *this;
  AttrRegistry copy(other);
  *this = std::move(copy);
  return *this;
}

AttrRegistry::AttrRegistry(AttrRegistry&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  ids_ = std::move(other.ids_);
  names_ = std::move(other.names_);
}

AttrRegistry& AttrRegistry::operator=(AttrRegistry&& other) noexcept {
  if (this == &other) return *this;
  std::unique_lock<std::shared_mutex> mine(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> theirs(other.mu_, std::defer_lock);
  std::lock(mine, theirs);
  ids_ = std::move(other.ids_);
  names_ = std::move(other.names_);
  return *this;
}

AttrId AttrRegistry::Intern(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(name);  // re-check: lost the race to another interner
  if (it != ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

AttrId AttrRegistry::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidAttr : it->second;
}

const std::string& AttrRegistry::Name(AttrId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  assert(id < names_.size());
  // Deque element references are stable under push_back, so the reference
  // outlives the lock even with concurrent interning.
  return names_[id];
}

size_t AttrRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

}  // namespace mpq

// Global attribute registry.
//
// The paper's model treats attributes as globally named objects (S, B, D, T of
// Hosp; C, P of Ins). Authorizations, profiles and equivalence sets all refer
// to attributes across relations, so the library interns every attribute name
// into a process-wide dense id space; AttrSet bitsets and DisjointSet
// structures are keyed by those dense ids.

#ifndef MPQ_COMMON_ATTR_H_
#define MPQ_COMMON_ATTR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mpq {

/// Dense identifier of an interned attribute.
using AttrId = uint32_t;

inline constexpr AttrId kInvalidAttr = static_cast<AttrId>(-1);

/// Interns attribute names into dense ids. One registry per "universe"
/// (typically one per scenario or test).
///
/// Thread-safe: Intern/Find/Name/size may be called concurrently — the
/// binder interns synthetic aggregate-output attributes (count(*) aliases)
/// while serving threads plan other statements against the same registry.
/// Names live in a deque, so references returned by Name stay valid across
/// concurrent growth.
class AttrRegistry {
 public:
  AttrRegistry() = default;
  AttrRegistry(const AttrRegistry& other);
  AttrRegistry& operator=(const AttrRegistry& other);
  AttrRegistry(AttrRegistry&& other) noexcept;
  AttrRegistry& operator=(AttrRegistry&& other) noexcept;

  /// Interns `name`, returning its id (existing or new).
  AttrId Intern(const std::string& name);

  /// Looks up an existing attribute. Returns kInvalidAttr when absent.
  /// Heterogeneous: a string_view (or literal) probes without constructing
  /// a std::string.
  AttrId Find(std::string_view name) const;

  /// Name of `id`. Precondition: id was returned by this registry.
  const std::string& Name(AttrId id) const;

  /// Number of interned attributes (== universe size for AttrSet).
  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  /// Transparent comparator: lookups take string_view without a copy.
  std::map<std::string, AttrId, std::less<>> ids_;
  std::deque<std::string> names_;
};

}  // namespace mpq

#endif  // MPQ_COMMON_ATTR_H_

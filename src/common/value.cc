#include "common/value.h"

#include <cstring>
#include <sstream>

namespace mpq {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

namespace {

int TypeTag(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_int() || v.is_double()) return 1;
  return 2;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ta = TypeTag(*this), tb = TypeTag(other);
  if (ta != tb) return ta < tb ? -1 : 1;
  if (is_null()) return 0;
  if (ta == 1) {
    double a = AsDouble(), b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::Serialize() const {
  std::string out;
  if (is_null()) {
    out.push_back('N');
  } else if (is_int()) {
    out.push_back('I');
    int64_t v = AsInt();
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  } else if (is_double()) {
    out.push_back('D');
    double v = std::get<double>(v_);
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  } else {
    out.push_back('S');
    out.append(AsString());
  }
  return out;
}

Result<Value> Value::Deserialize(const std::string& bytes) {
  if (bytes.empty()) return Status::InvalidArgument("empty value bytes");
  char tag = bytes[0];
  switch (tag) {
    case 'N':
      return Value::Null();
    case 'I': {
      if (bytes.size() != 1 + sizeof(int64_t))
        return Status::InvalidArgument("bad int64 value bytes");
      int64_t v;
      std::memcpy(&v, bytes.data() + 1, sizeof(v));
      return Value(v);
    }
    case 'D': {
      if (bytes.size() != 1 + sizeof(double))
        return Status::InvalidArgument("bad double value bytes");
      double v;
      std::memcpy(&v, bytes.data() + 1, sizeof(v));
      return Value(v);
    }
    case 'S':
      return Value(bytes.substr(1));
    default:
      return Status::InvalidArgument("unknown value tag");
  }
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    std::ostringstream os;
    os << std::get<double>(v_);
    return os.str();
  }
  return "'" + AsString() + "'";
}

size_t Value::ByteSize() const {
  if (is_null()) return 1;
  if (is_int()) return 8;
  if (is_double()) return 8;
  return AsString().size() + 4;
}

uint64_t Value::Hash() const {
  // FNV-1a over the canonical serialization.
  std::string bytes = Serialize();
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace mpq

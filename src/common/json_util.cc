#include "common/json_util.h"

#include <cmath>
#include <cstdio>

#include "common/str_util.h"

namespace mpq {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  out_ += ShortestRoundTripDouble(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::TakeString() {
  pending_key_ = false;
  needs_comma_.clear();
  return std::move(out_);
}

}  // namespace mpq

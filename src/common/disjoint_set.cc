#include "common/disjoint_set.h"

#include <algorithm>
#include <map>

namespace mpq {

AttrId DisjointSet::Find(AttrId a) const {
  auto it = parent_.find(a);
  if (it == parent_.end()) return kInvalidAttr;
  AttrId root = a;
  while (parent_.at(root) != root) root = parent_.at(root);
  // Path compression.
  while (parent_.at(a) != root) {
    AttrId next = parent_.at(a);
    parent_[a] = root;
    a = next;
  }
  return root;
}

void DisjointSet::Union(AttrId a, AttrId b) {
  if (parent_.find(a) == parent_.end()) parent_[a] = a;
  if (parent_.find(b) == parent_.end()) parent_[b] = b;
  AttrId ra = Find(a), rb = Find(b);
  if (ra == rb) return;
  // Deterministic: smaller id becomes root.
  if (ra > rb) std::swap(ra, rb);
  parent_[rb] = ra;
}

void DisjointSet::UnionAll(const AttrSet& attrs) {
  if (attrs.size() < 2) return;
  std::vector<AttrId> ids = attrs.ToVector();
  for (size_t i = 1; i < ids.size(); ++i) Union(ids[0], ids[i]);
}

void DisjointSet::Merge(const DisjointSet& other) {
  for (const AttrSet& cls : other.Classes()) UnionAll(cls);
}

bool DisjointSet::Same(AttrId a, AttrId b) const {
  AttrId ra = Find(a);
  if (ra == kInvalidAttr) return false;
  return ra == Find(b);
}

bool DisjointSet::IsMember(AttrId a) const {
  return parent_.find(a) != parent_.end();
}

AttrSet DisjointSet::ClassOf(AttrId a) const {
  AttrSet out;
  AttrId ra = Find(a);
  if (ra == kInvalidAttr) return out;
  for (const auto& [member, _] : parent_) {
    if (Find(member) == ra) out.Insert(member);
  }
  return out;
}

std::vector<AttrSet> DisjointSet::Classes() const {
  std::map<AttrId, AttrSet> by_root;  // ordered for determinism
  for (const auto& [member, _] : parent_) {
    by_root[Find(member)].Insert(member);
  }
  std::vector<AttrSet> out;
  out.reserve(by_root.size());
  for (auto& [root, cls] : by_root) out.push_back(std::move(cls));
  return out;
}

AttrSet DisjointSet::AllMembers() const {
  AttrSet out;
  for (const auto& [member, _] : parent_) out.Insert(member);
  return out;
}

bool DisjointSet::operator==(const DisjointSet& other) const {
  return Classes() == other.Classes();
}

}  // namespace mpq

#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace mpq {

namespace {
/// Index of the worker the current thread is, or SIZE_MAX off-pool. Set once
/// per worker thread at startup; identifies the deque Submit should use.
thread_local size_t tls_worker_id = SIZE_MAX;

/// State shared between a ParallelFor caller and its helper tasks. Helpers
/// hold it via shared_ptr, so a helper that only gets scheduled after the
/// caller returned still finds valid (already exhausted) state.
struct ForState {
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t error_chunk = SIZE_MAX;  // guarded by mu
  Status error;                   // guarded by mu
};

/// Claims chunks until none remain. `fn` belongs to the calling frame: the
/// caller passes its own argument, helpers pass their private copy.
void RunChunks(const std::shared_ptr<ForState>& s,
               const std::function<Status(size_t, size_t)>& fn) {
  for (;;) {
    size_t c = s->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= s->num_chunks) return;
    // Every chunk runs even after a failure elsewhere: that keeps the
    // reported error (lowest failing chunk) deterministic across thread
    // counts, and errors terminate the whole query anyway.
    size_t begin = c * s->grain;
    Status st = fn(begin, std::min(begin + s->grain, s->n));
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(s->mu);
      if (c < s->error_chunk) {
        s->error_chunk = c;
        s->error = std::move(st);
      }
    }
    if (s->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        s->num_chunks) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->cv.notify_all();
      return;
    }
  }
}
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  accepting_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Drain: a task accepted during shutdown (e.g. submitted by a worker that
  // was mid-task when stop_ was set) may still sit in a queue after the
  // workers exited. Close each queue under its mutex — any Submit racing the
  // drain then rejects instead of stranding work — and run the leftovers on
  // this thread, so every accepted task executes exactly once. Tasks that
  // re-submit during the drain land in a not-yet-closed queue (and get
  // drained in turn) or are rejected; either way nothing dangles.
  for (auto& q : queues_) {
    std::deque<std::function<void()>> leftover;
    {
      std::lock_guard<std::mutex> lock(q->mu);
      q->closed = true;
      leftover.swap(q->tasks);
    }
    for (auto& task : leftover) task();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return true;
  }
  if (!accepting_.load(std::memory_order_acquire)) return false;
  size_t q = tls_worker_id;
  if (q >= queues_.size()) {
    q = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    if (queues_[q]->closed) return false;
    queues_[q]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_one();
  return true;
}

bool ThreadPool::PopTask(size_t preferred, std::function<void()>* out) {
  size_t n = queues_.size();
  if (n == 0) return false;
  // Own queue LIFO first, then steal FIFO round-robin from siblings.
  if (preferred < n) {
    std::lock_guard<std::mutex> lock(queues_[preferred]->mu);
    if (!queues_[preferred]->tasks.empty()) {
      *out = std::move(queues_[preferred]->tasks.back());
      queues_[preferred]->tasks.pop_back();
      return true;
    }
  }
  size_t start = preferred < n ? preferred + 1 : 0;
  for (size_t k = 0; k < n; ++k) {
    size_t i = (start + k) % n;
    if (i == preferred) continue;
    std::lock_guard<std::mutex> lock(queues_[i]->mu);
    if (!queues_[i]->tasks.empty()) {
      *out = std::move(queues_[i]->tasks.front());
      queues_[i]->tasks.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  if (!PopTask(tls_worker_id, &task)) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t id) {
  tls_worker_id = id;
  for (;;) {
    std::function<void()> task;
    if (PopTask(id, &task)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (stop_) return;
    if (pending_.load(std::memory_order_acquire) > 0) continue;
    wake_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const std::function<Status(size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  size_t num_chunks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->size() == 0 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t begin = c * grain;
      MPQ_RETURN_NOT_OK(fn(begin, std::min(begin + grain, n)));
    }
    return Status::OK();
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = num_chunks;

  // Each helper owns a copy of `fn`, so one scheduled after the caller
  // already returned (every chunk claimed) is still safe: it finds the chunk
  // counter exhausted and exits without invoking its copy.
  size_t num_helpers = std::min(pool->size(), num_chunks - 1);
  for (size_t i = 0; i < num_helpers; ++i) {
    pool->Submit([state, fn] { RunChunks(state, fn); });
  }

  RunChunks(state, fn);

  // All chunks are claimed; wait for helpers still finishing theirs, running
  // other queued pool work meanwhile (keeps nested ParallelFor/Submit from
  // ever deadlocking). The timed wait covers the race between a final
  // completion and this thread going to sleep.
  while (state->chunks_done.load(std::memory_order_acquire) < num_chunks) {
    if (pool->TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return state->chunks_done.load(std::memory_order_acquire) >= num_chunks;
    });
  }

  std::lock_guard<std::mutex> lock(state->mu);
  return state->error_chunk == SIZE_MAX ? Status::OK() : state->error;
}

}  // namespace mpq

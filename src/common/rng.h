// Deterministic PRNG (splitmix64 / xoshiro-style) used across the library so
// data generation, randomized encryption nonces and random-plan tests are
// reproducible without std::random_device.

#ifndef MPQ_COMMON_RNG_H_
#define MPQ_COMMON_RNG_H_

#include <cstdint>

namespace mpq {

/// splitmix64 single-step mixer; good avalanche, used as PRF core.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Small deterministic PRNG with a 64-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    return SplitMix64(state_);
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo +
           static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / (1ull << 53)); }

  /// Bernoulli with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace mpq

#endif  // MPQ_COMMON_RNG_H_

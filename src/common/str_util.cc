#include "common/str_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mpq {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    vsnprintf(out.data(), out.size(), fmt, ap2);
    out.resize(static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

std::string ShortestRoundTripDouble(double v) {
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double parsed;
    if (std::sscanf(buf, "%lf", &parsed) == 1 && parsed == v) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace mpq

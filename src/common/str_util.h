// Small string helpers used by printers, the SQL lexer and dispatch.

#ifndef MPQ_COMMON_STR_UTIL_H_
#define MPQ_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace mpq {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// ASCII lower-casing.
std::string ToLower(const std::string& s);

/// ASCII upper-casing.
std::string ToUpper(const std::string& s);

/// Trims ASCII whitespace at both ends.
std::string Trim(const std::string& s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Shortest printf-%g rendering of a finite double that parses back to
/// exactly `v` (canonical cache keys, JSON output).
std::string ShortestRoundTripDouble(double v);

}  // namespace mpq

#endif  // MPQ_COMMON_STR_UTIL_H_

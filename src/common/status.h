// Status / Result error-handling primitives, in the style of Arrow/RocksDB.
//
// Library code never throws across the public API boundary: fallible
// operations return a Status (no payload) or a Result<T> (payload or error).

#ifndef MPQ_COMMON_STATUS_H_
#define MPQ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace mpq {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad plan, bad SQL, bad policy).
  kNotFound,          ///< Missing attribute/relation/subject/key.
  kAlreadyExists,     ///< Duplicate registration.
  kUnauthorized,      ///< An authorization check failed (Def 4.1 / 4.2).
  kUnsupported,       ///< Operation not representable (e.g. scheme mismatch).
  kInternal,          ///< Invariant violation inside the library.
  kUnavailable,       ///< A subject or link is down; retry/failover may help.
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value without payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unauthorized(std::string msg) {
    return Status(StatusCode::kUnauthorized, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit conversion from a non-OK status (error).
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK Status from an expression.
#define MPQ_RETURN_NOT_OK(expr)                       \
  do {                                                \
    ::mpq::Status _st = (expr);                       \
    if (!_st.ok()) return _st;                        \
  } while (false)

/// Evaluates a Result expression, assigning its value or propagating error.
#define MPQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define MPQ_CONCAT_INNER(a, b) a##b
#define MPQ_CONCAT(a, b) MPQ_CONCAT_INNER(a, b)

#define MPQ_ASSIGN_OR_RETURN(lhs, rexpr) \
  MPQ_ASSIGN_OR_RETURN_IMPL(MPQ_CONCAT(_mpq_result_, __LINE__), lhs, rexpr)

}  // namespace mpq

#endif  // MPQ_COMMON_STATUS_H_

// A small work-stealing thread pool plus a deterministic ParallelFor.
//
// Each worker owns a deque: it pops its own work LIFO (cache locality) and
// steals FIFO from siblings when empty. Threads that must block on pool work
// (ParallelFor callers, future waiters) never idle — they run queued tasks
// while waiting, which makes nested submission from inside pool tasks
// deadlock-free at any pool size.
//
// ParallelFor partitions [0, n) into fixed-size chunks that do NOT depend on
// the number of threads, so any per-chunk computation merged in chunk order
// yields bit-identical results at 1, 2, or N threads.

#ifndef MPQ_COMMON_THREAD_POOL_H_
#define MPQ_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace mpq {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 makes every Submit run inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `task`. From a worker thread, pushes onto that worker's own
  /// deque (stolen by siblings when they run dry); otherwise round-robins.
  /// With zero workers the task runs inline. Returns whether the task was
  /// accepted: once destruction begins, Submit rejects (returns false)
  /// instead of enqueueing work that would never run — every task Submit
  /// accepted is guaranteed to execute, even those enqueued by in-flight
  /// workers during shutdown (the destructor drains stragglers inline).
  bool Submit(std::function<void()> task);

  /// Runs one queued task on the calling thread, if any. Returns whether a
  /// task was run. Blocking waiters call this in a loop to keep making
  /// progress instead of idling.
  bool TryRunOneTask();

 private:
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
    /// Set (under `mu`) by the destructor right before it drains this queue;
    /// a Submit that lost the race to the drain sees it and rejects instead
    /// of stranding a task in a queue nothing will ever pop again.
    bool closed = false;
  };

  void WorkerLoop(size_t id);
  bool PopTask(size_t preferred, std::function<void()>* out);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;  // guarded by wake_mu_
  /// Fast-path shutdown gate checked by Submit before touching any queue.
  std::atomic<bool> accepting_{true};
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};
};

/// Runs `fn(begin, end)` over [0, n) in chunks of `grain` indices, spreading
/// chunks across the pool; the calling thread participates. Chunk boundaries
/// depend only on `n` and `grain` — never on pool size — so merging per-chunk
/// results in chunk order is deterministic across thread counts. On error the
/// Status of the lowest-index failing chunk is returned. Runs inline when
/// `pool` is null, has no workers, or n fits in one chunk.
Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const std::function<Status(size_t, size_t)>& fn);

}  // namespace mpq

#endif  // MPQ_COMMON_THREAD_POOL_H_

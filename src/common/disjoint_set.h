// Disjoint-set (union-find) over attribute ids, with set enumeration.
//
// Implements the R≃ component of a relation profile (Def 3.1): the closure of
// the equivalence relationship among attributes connected in a computation.
// Only attributes that participate in at least one equivalence appear in a
// set; isolated attributes are not members (matching the paper, where R≃
// holds only non-trivial equivalence sets).

#ifndef MPQ_COMMON_DISJOINT_SET_H_
#define MPQ_COMMON_DISJOINT_SET_H_

#include <unordered_map>
#include <vector>

#include "common/attr.h"
#include "common/attr_set.h"

namespace mpq {

/// Union-find over AttrIds tracking non-trivial equivalence classes.
class DisjointSet {
 public:
  DisjointSet() = default;

  /// Merges the classes of `a` and `b` (adding them as members if new).
  void Union(AttrId a, AttrId b);

  /// Merges all attributes of `attrs` into one class (paper's R≃ ∪ A).
  /// No-op when `attrs` has fewer than two elements.
  void UnionAll(const AttrSet& attrs);

  /// Merges every class of `other` into this structure (R≃_i ∪ R≃_j).
  void Merge(const DisjointSet& other);

  /// True when `a` and `b` are in the same class. An attribute that was
  /// never unioned is in no class, so Same(a, a) is false for non-members.
  bool Same(AttrId a, AttrId b) const;

  /// True when `a` participates in some equivalence class.
  bool IsMember(AttrId a) const;

  /// The class containing `a` (empty set when `a` is not a member).
  AttrSet ClassOf(AttrId a) const;

  /// All equivalence classes (each with >= 2 members), in a deterministic
  /// order (sorted by smallest member id).
  std::vector<AttrSet> Classes() const;

  /// Union of all members across classes.
  AttrSet AllMembers() const;

  bool empty() const { return parent_.empty(); }

  bool operator==(const DisjointSet& other) const;

 private:
  AttrId Find(AttrId a) const;

  // parent_ maps member -> parent; roots map to themselves.
  mutable std::unordered_map<AttrId, AttrId> parent_;
};

}  // namespace mpq

#endif  // MPQ_COMMON_DISJOINT_SET_H_

#include "common/flat_hash.h"

namespace mpq {

size_t FlatHashIndex::CapacityFor(size_t n) {
  size_t cap = kMinCapacity;
  while (n * 8 > cap * 7) cap <<= 1;
  return cap;
}

void FlatHashIndex::Reserve(size_t n) {
  size_t cap = CapacityFor(n);
  if (cap > slots_.size()) Rehash(cap);
}

void FlatHashIndex::Clear() {
  for (Slot& s : slots_) s = Slot{};
  size_ = 0;
}

void FlatHashIndex::Rehash(size_t new_capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  mask_ = new_capacity - 1;
  for (const Slot& s : old) {
    if (s.id == kNotFound) continue;
    size_t i = s.hash & mask_;
    while (slots_[i].id != kNotFound) i = (i + 1) & mask_;
    slots_[i] = s;
  }
}

}  // namespace mpq

// Open-addressing hash primitives for the execution-engine hot paths.
//
// FlatHashIndex is a linear-probing, power-of-two-capacity index mapping a
// cached 64-bit hash plus a caller-supplied equality predicate to a dense
// uint32 id. Keys and payloads live in caller-owned parallel arrays (typed
// vectors, arenas), so the table itself is one flat slot array with no
// per-entry allocation — probes touch a single contiguous cache line run,
// unlike std::unordered_map's node-per-entry layout. Deletion compacts the
// probe chain by backward shifting, never with tombstones, so probe
// distances stay short no matter how many erases a workload performs.
//
// Determinism: ids are assigned by the caller in insertion order, and probe
// order depends only on the inserted (hash, id) sequence — identical across
// runs and thread counts for identical insertion sequences.

#ifndef MPQ_COMMON_FLAT_HASH_H_
#define MPQ_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mpq {

/// SplitMix64 finalizer: a full-avalanche mix of one 64-bit word, so that
/// power-of-two masking of the result indexes uniformly.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Folds one word into a running hash (boost-style combine over the mixed
/// word; order-sensitive).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (HashMix64(v) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

/// FNV-1a over a byte range, avalanched for power-of-two masking.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return HashMix64(h);
}

inline uint64_t HashBytes(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Hash of a fixed-width word sequence (the typed key-code rows of the
/// join/group-by engine).
inline uint64_t HashWords(const uint64_t* w, size_t n) {
  uint64_t h = 0x8f3b0d6f29b5f6a1ull ^ (n * 0x9e3779b97f4a7c15ull);
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, w[i]);
  return h;
}

/// The index: cached hashes + dense caller-owned ids, linear probing over a
/// power-of-two slot array at a 7/8 maximum load factor.
class FlatHashIndex {
 public:
  /// Absent-entry marker returned by Find (and the internal empty-slot id).
  static constexpr uint32_t kNotFound = 0xffffffffu;

  FlatHashIndex() { Rehash(kMinCapacity); }
  explicit FlatHashIndex(size_t expected) { Rehash(CapacityFor(expected)); }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

  /// Grows the slot array so `n` entries fit without rehashing.
  void Reserve(size_t n);

  /// Removes every entry (capacity is retained).
  void Clear();

  /// The id stored under (`hash`, `eq`), or kNotFound. `eq(id)` is consulted
  /// only for ids whose cached hash equals `hash`.
  template <typename Eq>
  uint32_t Find(uint64_t hash, const Eq& eq) const {
    size_t i = hash & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.id == kNotFound) return kNotFound;
      if (s.hash == hash && eq(s.id)) return s.id;
      i = (i + 1) & mask_;
    }
  }

  /// The id stored under (`hash`, `eq`); when absent, `insert()` is invoked
  /// once to append the key to the caller's arrays and its returned id is
  /// recorded and returned. (By construction new ids are handed out in
  /// insertion order when the caller returns its array size.)
  template <typename Eq, typename Insert>
  uint32_t FindOrInsert(uint64_t hash, const Eq& eq, const Insert& insert) {
    if ((size_ + 1) * 8 > slots_.size() * 7) Rehash(slots_.size() * 2);
    size_t i = hash & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.id == kNotFound) {
        uint32_t id = insert();
        s.hash = hash;
        s.id = id;
        size_++;
        return id;
      }
      if (s.hash == hash && eq(s.id)) return s.id;
      i = (i + 1) & mask_;
    }
  }

  /// Drops the entry under (`hash`, `eq`) by backward-shifting the rest of
  /// its probe chain over the hole — no tombstone is ever left behind, so a
  /// table that saw N erases probes exactly like one that never held those
  /// keys. Returns whether an entry was dropped. (The caller reclaims its
  /// own id slot; the index only forgets the mapping.)
  template <typename Eq>
  bool Erase(uint64_t hash, const Eq& eq) {
    size_t hole = hash & mask_;
    for (;;) {
      const Slot& s = slots_[hole];
      if (s.id == kNotFound) return false;
      if (s.hash == hash && eq(s.id)) break;
      hole = (hole + 1) & mask_;
    }
    size_t j = (hole + 1) & mask_;
    while (slots_[j].id != kNotFound) {
      // An entry may move into the hole iff the hole lies on its probe path,
      // i.e. its home slot is cyclically at or before the hole.
      size_t home = slots_[j].hash & mask_;
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].id = kNotFound;
    size_--;
    return true;
  }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t id = kNotFound;
  };

  static constexpr size_t kMinCapacity = 16;

  /// Smallest power-of-two capacity keeping `n` entries under 7/8 load.
  static size_t CapacityFor(size_t n);

  /// Re-buckets every entry into a fresh array of `new_capacity` slots
  /// (a power of two) using the cached hashes — keys are never touched.
  void Rehash(size_t new_capacity);

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Append-only byte storage with stable offsets: one contiguous buffer
/// addressed by (offset, length) spans, replacing per-key std::string
/// allocations in the byte-keyed hash paths.
class ByteArena {
 public:
  /// Appends `n` bytes and returns their offset.
  size_t Append(const char* data, size_t n) {
    size_t off = buf_.size();
    buf_.append(data, n);
    return off;
  }
  size_t Append(std::string_view bytes) {
    return Append(bytes.data(), bytes.size());
  }

  std::string_view View(size_t offset, size_t n) const {
    return std::string_view(buf_.data() + offset, n);
  }

  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::string buf_;
};

}  // namespace mpq

#endif  // MPQ_COMMON_FLAT_HASH_H_

// Plaintext value model shared by the execution engine and the crypto layer.

#ifndef MPQ_COMMON_VALUE_H_
#define MPQ_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace mpq {

/// Column data types supported by the engine.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeName(DataType t);

/// A plaintext cell: NULL, int64, double, or string.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(AsInt());
    return std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Three-way comparison. NULLs sort first; numeric types compare
  /// numerically across int/double; comparing a number to a string compares
  /// type tags (deterministic total order).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Canonical byte serialization (used by ciphers and hashing).
  std::string Serialize() const;

  /// Inverse of Serialize.
  static Result<Value> Deserialize(const std::string& bytes);

  /// Human-readable rendering.
  std::string ToString() const;

  /// Approximate in-memory size in bytes (for cost accounting).
  size_t ByteSize() const;

  /// 64-bit hash of the canonical serialization.
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace mpq

#endif  // MPQ_COMMON_VALUE_H_

// Minimal JSON writer: enough to dump metrics structs and benchmark results
// as machine-readable files without an external dependency. Comma placement
// is handled automatically; numbers render round-trippably.

#ifndef MPQ_COMMON_JSON_UTIL_H_
#define MPQ_COMMON_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mpq {

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string JsonEscape(const std::string& s);

/// Streaming writer building a JSON document in memory.
///
///   JsonWriter w;
///   w.BeginObject().Key("hits").UInt(3);
///   w.Key("p50_ms").Double(0.21).EndObject();
///   std::string doc = w.TakeString();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The finished document. The writer is left empty.
  std::string TakeString();

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: whether a value was already emitted (a
  /// comma is needed before the next one).
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace mpq

#endif  // MPQ_COMMON_JSON_UTIL_H_

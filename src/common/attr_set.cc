#include "common/attr_set.h"

#include <algorithm>

namespace mpq {

AttrSet::AttrSet(std::initializer_list<AttrId> ids) {
  for (AttrId id : ids) Insert(id);
}

void AttrSet::EnsureWord(size_t w) {
  if (words_.size() <= w) words_.resize(w + 1, 0);
}

void AttrSet::Shrink() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

bool AttrSet::Insert(AttrId id) {
  size_t w = id / 64;
  uint64_t mask = uint64_t{1} << (id % 64);
  EnsureWord(w);
  bool changed = (words_[w] & mask) == 0;
  words_[w] |= mask;
  return changed;
}

bool AttrSet::Erase(AttrId id) {
  size_t w = id / 64;
  if (w >= words_.size()) return false;
  uint64_t mask = uint64_t{1} << (id % 64);
  bool changed = (words_[w] & mask) != 0;
  words_[w] &= ~mask;
  if (changed) Shrink();
  return changed;
}

bool AttrSet::Contains(AttrId id) const {
  size_t w = id / 64;
  if (w >= words_.size()) return false;
  return (words_[w] >> (id % 64)) & 1;
}

void AttrSet::InsertAll(const AttrSet& other) {
  EnsureWord(other.words_.empty() ? 0 : other.words_.size() - 1);
  for (size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
}

void AttrSet::EraseAll(const AttrSet& other) {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) words_[i] &= ~other.words_[i];
  Shrink();
}

bool AttrSet::empty() const {
  for (uint64_t w : words_)
    if (w != 0) return false;
  return true;
}

size_t AttrSet::size() const {
  size_t n = 0;
  for (uint64_t w : words_) n += __builtin_popcountll(w);
  return n;
}

bool AttrSet::IsSubsetOf(const AttrSet& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t o = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ~o) != 0) return false;
  }
  return true;
}

bool AttrSet::Intersects(const AttrSet& other) const {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  AttrSet out = *this;
  out.InsertAll(other);
  return out;
}

AttrSet AttrSet::Intersect(const AttrSet& other) const {
  AttrSet out;
  size_t n = std::min(words_.size(), other.words_.size());
  out.words_.resize(n);
  for (size_t i = 0; i < n; ++i) out.words_[i] = words_[i] & other.words_[i];
  out.Shrink();
  return out;
}

AttrSet AttrSet::Difference(const AttrSet& other) const {
  AttrSet out = *this;
  out.EraseAll(other);
  return out;
}

bool AttrSet::operator==(const AttrSet& other) const {
  size_t n = std::max(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

std::vector<AttrId> AttrSet::ToVector() const {
  std::vector<AttrId> out;
  out.reserve(size());
  ForEach([&](AttrId id) { out.push_back(id); });
  return out;
}

std::string AttrSet::ToString(const AttrRegistry& reg) const {
  std::vector<AttrId> ids = ToVector();
  bool all_single = true;
  for (AttrId id : ids) {
    if (reg.Name(id).size() != 1) {
      all_single = false;
      break;
    }
  }
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!all_single && i > 0) out += ",";
    out += reg.Name(ids[i]);
  }
  return out;
}

}  // namespace mpq

#include "extend/extend.h"

#include <cassert>

#include "algebra/plan_builder.h"
#include "common/str_util.h"
#include "profile/propagate.h"

namespace mpq {

namespace {

/// Attributes that executing `n` adds to the implicit component of its result
/// (Fig 2): attr-value selection operands and grouping attributes.
AttrSet ImplicitMaking(const PlanNode* n) {
  AttrSet out;
  switch (n->kind) {
    case OpKind::kSelect:
    case OpKind::kJoin:
      for (const Predicate& p : n->predicates) {
        if (!p.rhs_is_attr) out.Insert(p.lhs);
      }
      break;
    case OpKind::kGroupBy:
      out = n->group_by;
      break;
    default:
      break;
  }
  return out;
}

/// Attributes an operator reads: predicate attributes, grouping attributes,
/// aggregate inputs, udf inputs.
AttrSet OpAttrs(const PlanNode* n) {
  AttrSet out = PredicatesAttrs(n->predicates);
  out.InsertAll(n->group_by);
  for (const Aggregate& a : n->aggregates) {
    if (a.attr != kInvalidAttr) out.Insert(a.attr);
  }
  out.InsertAll(n->udf_inputs);
  return out;
}

/// Copies every field of `n` except children and profile.
PlanPtr CloneShallow(const PlanNode* n) {
  auto out = std::make_unique<PlanNode>();
  out->kind = n->kind;
  out->id = n->id;
  out->rel = n->rel;
  out->attrs = n->attrs;
  out->predicates = n->predicates;
  out->group_by = n->group_by;
  out->aggregates = n->aggregates;
  out->udf_inputs = n->udf_inputs;
  out->udf_output = n->udf_output;
  out->udf_name = n->udf_name;
  out->needs_plaintext = n->needs_plaintext;
  return out;
}

struct BuildCtx {
  const Policy* policy;
  const Catalog* catalog;
  const Assignment* full_lambda;
  // Per original node id: union of E_{λ(x)} over proper ancestors x (plus the
  // final recipient's E for the root's chain when one is given).
  std::unordered_map<int, AttrSet> anc_enc;
  Assignment out_assign;
  AttrSet enc_attrs;
};

void ComputeAncestorEnc(const PlanNode* n, const AttrSet& inherited,
                        BuildCtx* ctx) {
  ctx->anc_enc[n->id] = inherited;
  AttrSet down = inherited;
  down.InsertAll(ctx->policy->EncView(ctx->full_lambda->at(n->id)));
  for (const auto& c : n->children) ComputeAncestorEnc(c.get(), down, ctx);
}

struct BuiltSubtree {
  PlanPtr plan;
  RelationProfile profile;
};

Result<BuiltSubtree> BuildRec(const PlanNode* n, BuildCtx* ctx) {
  const Catalog& catalog = *ctx->catalog;
  SubjectId sn = ctx->full_lambda->at(n->id);
  ctx->out_assign[n->id] = sn;

  if (n->is_leaf()) {
    BuiltSubtree out;
    out.plan = CloneShallow(n);
    out.profile = RelationProfile::ForBase(catalog.Get(n->rel).schema.Attrs());
    out.plan->profile = out.profile;
    return out;
  }

  std::vector<PlanPtr> subs;
  std::vector<RelationProfile> profs;
  for (size_t i = 0; i < n->num_children(); ++i) {
    MPQ_ASSIGN_OR_RETURN(BuiltSubtree sub, BuildRec(n->child(i), ctx));
    subs.push_back(std::move(sub.plan));
    profs.push_back(std::move(sub.profile));
  }

  // Def 5.4(i)/(ii): per-edge decryption and encryption sets.
  const AttrSet es_n = ctx->policy->EncView(sn);
  std::vector<AttrSet> dec_sets(n->num_children());
  std::vector<AttrSet> enc_sets(n->num_children());
  for (size_t i = 0; i < n->num_children(); ++i) {
    AttrSet ap = PlaintextNeededFromChild(n, profs[i].Visible());
    // Greedy decrypt-at-operator (the paper's footnote 2): when the assignee
    // is plaintext-authorized for an operand attribute its operator reads,
    // decrypt it and run on plaintext — upstream encryption can then use a
    // cheap storage scheme instead of an operation-capable one. Blocked for
    // attributes the operator turns implicit while some ancestor assignee
    // may only see them encrypted (that would leak plaintext implicitly and
    // is exactly what the Def 5.4(ii) A-term encrypts against).
    AttrSet blocked =
        ImplicitMaking(n).Intersect(ctx->anc_enc.at(n->child(i)->id));
    // Close the blocked set over comparison partners: a pair must stay
    // uniformly encrypted, so a blocked attribute blocks its partners.
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Predicate& p : n->predicates) {
        if (!p.rhs_is_attr) continue;
        if (blocked.Contains(p.lhs) && blocked.Insert(p.rhs_attr)) grew = true;
        if (blocked.Contains(p.rhs_attr) && blocked.Insert(p.lhs)) grew = true;
      }
    }
    AttrSet greedy = OpAttrs(n)
                         .Intersect(ctx->policy->PlainView(sn))
                         .Intersect(profs[i].ve);
    greedy.EraseAll(blocked);
    ap.InsertAll(greedy);
    dec_sets[i] = ap.Intersect(profs[i].ve);
    // (E_{S_n} ∪ (implicit-making ∩ ancestor-E)) ∩ Rvp of the child result.
    AttrSet enc = es_n;
    enc.InsertAll(
        ImplicitMaking(n).Intersect(ctx->anc_enc.at(n->child(i)->id)));
    enc_sets[i] = enc.Intersect(profs[i].vp);
    if (enc_sets[i].Intersects(ap)) {
      return Status::Internal(StrFormat(
          "node %d: assignee needs plaintext over attributes it must not see; "
          "λ is not drawn from the candidate sets",
          n->id));
    }
  }

  // Executability closure: attributes compared by a condition (and inputs of
  // an encrypted-capable udf) must end up uniformly encrypted or plaintext.
  auto child_of = [&](AttrId a) -> int {
    for (size_t i = 0; i < profs.size(); ++i) {
      if (profs[i].Visible().Contains(a)) return static_cast<int>(i);
    }
    return -1;
  };
  auto is_enc_form = [&](AttrId a, int i) {
    bool enc = profs[static_cast<size_t>(i)].ve.Contains(a) ||
               enc_sets[static_cast<size_t>(i)].Contains(a);
    return enc && !dec_sets[static_cast<size_t>(i)].Contains(a);
  };
  auto force_enc = [&](AttrId a, int i) -> Status {
    if (dec_sets[static_cast<size_t>(i)].Contains(a)) {
      return Status::Internal(StrFormat(
          "node %d: attribute must be both plaintext and encrypted", n->id));
    }
    if (profs[static_cast<size_t>(i)].vp.Contains(a)) {
      enc_sets[static_cast<size_t>(i)].Insert(a);
    }
    return Status::OK();
  };
  bool changed = true;
  while (changed) {
    changed = false;
    if (n->kind == OpKind::kSelect || n->kind == OpKind::kJoin) {
      for (const Predicate& p : n->predicates) {
        if (!p.rhs_is_attr) continue;
        int ci = child_of(p.lhs), cj = child_of(p.rhs_attr);
        if (ci < 0 || cj < 0) continue;
        bool ei = is_enc_form(p.lhs, ci), ej = is_enc_form(p.rhs_attr, cj);
        if (ei == ej) continue;
        MPQ_RETURN_NOT_OK(ei ? force_enc(p.rhs_attr, cj)
                             : force_enc(p.lhs, ci));
        changed = true;
      }
    }
    if (n->kind == OpKind::kUdf &&
        !n->udf_inputs.IsSubsetOf(n->needs_plaintext)) {
      bool any_enc = false;
      n->udf_inputs.ForEach([&](AttrId a) {
        int ci = child_of(a);
        if (ci >= 0 && is_enc_form(a, ci)) any_enc = true;
      });
      if (any_enc) {
        std::vector<AttrId> to_force;
        n->udf_inputs.ForEach([&](AttrId a) {
          int ci = child_of(a);
          if (ci >= 0 && !is_enc_form(a, ci)) to_force.push_back(a);
        });
        for (AttrId a : to_force) {
          MPQ_RETURN_NOT_OK(force_enc(a, child_of(a)));
          changed = true;
        }
      }
    }
  }

  // Assemble the edge: child → encrypt (complements the child, its subject)
  // → decrypt (complements n, assigned to S_n) → n.
  auto new_node = CloneShallow(n);
  for (size_t i = 0; i < n->num_children(); ++i) {
    PlanPtr sub = std::move(subs[i]);
    RelationProfile prof = profs[i];
    if (!enc_sets[i].empty()) {
      SubjectId child_subject = ctx->out_assign.at(n->child(i)->id);
      sub = Encrypt(std::move(sub), enc_sets[i]);
      sub->id = -1;
      ctx->enc_attrs.InsertAll(enc_sets[i]);
      MPQ_ASSIGN_OR_RETURN(
          prof,
          PropagateProfile(sub.get(), prof, {}, catalog, {.strict = true}));
      sub->profile = prof;
      // New node ids are assigned later; stash the subject in the (unused)
      // udf_name field until ids exist, then move it into the assignment.
      sub->udf_name = std::to_string(child_subject);
    }
    if (!dec_sets[i].empty()) {
      sub = Decrypt(std::move(sub), dec_sets[i]);
      sub->id = -1;
      MPQ_ASSIGN_OR_RETURN(
          prof,
          PropagateProfile(sub.get(), prof, {}, catalog, {.strict = true}));
      sub->profile = prof;
      sub->udf_name = std::to_string(sn);  // stash subject
    }
    new_node->children.push_back(std::move(sub));
    profs[i] = prof;
  }

  BuiltSubtree out;
  static const RelationProfile kEmpty;
  MPQ_ASSIGN_OR_RETURN(
      out.profile,
      PropagateProfile(new_node.get(), profs.size() > 0 ? profs[0] : kEmpty,
                       profs.size() > 1 ? profs[1] : kEmpty, catalog,
                       {.strict = true}));
  new_node->profile = out.profile;
  out.plan = std::move(new_node);
  return out;
}

}  // namespace

Result<ExtendedPlan> BuildMinimallyExtendedPlan(
    const PlanNode* root, const Assignment& lambda, const Policy& policy,
    std::optional<SubjectId> final_recipient) {
  const Catalog& catalog = policy.catalog();

  // Complete λ over leaves and validate it against the candidate sets.
  MPQ_ASSIGN_OR_RETURN(CandidatePlan cp, ComputeCandidates(root, policy));
  Assignment full_lambda;
  int max_id = 0;
  for (const PlanNode* n : PostOrder(root)) {
    max_id = std::max(max_id, n->id);
    if (n->is_leaf()) {
      full_lambda[n->id] = catalog.Get(n->rel).owner;
      continue;
    }
    auto it = lambda.find(n->id);
    if (it == lambda.end()) {
      return Status::InvalidArgument(
          StrFormat("assignment missing for node %d", n->id));
    }
    if (!cp.at(n->id).candidates.Contains(it->second)) {
      return Status::Unauthorized(StrFormat(
          "subject %s is not a candidate for node %d (Def 5.3)",
          policy.subjects().Name(it->second).c_str(), n->id));
    }
    full_lambda[n->id] = it->second;
  }

  BuildCtx ctx;
  ctx.policy = &policy;
  ctx.catalog = &catalog;
  ctx.full_lambda = &full_lambda;
  AttrSet root_inherited;
  if (final_recipient.has_value()) {
    root_inherited = policy.EncView(*final_recipient);
  }
  ComputeAncestorEnc(root, root_inherited, &ctx);

  MPQ_ASSIGN_OR_RETURN(BuiltSubtree built, BuildRec(root, &ctx));

  // Delivery to the final recipient: encrypt what the recipient must not see
  // plaintext, decrypt (at the recipient) what it may read.
  PlanPtr plan = std::move(built.plan);
  RelationProfile prof = built.profile;
  if (final_recipient.has_value()) {
    SubjectId rec = *final_recipient;
    AttrSet enc = policy.EncView(rec).Intersect(prof.vp);
    if (!enc.empty()) {
      SubjectId root_subject = full_lambda.at(root->id);
      plan = Encrypt(std::move(plan), enc);
      plan->id = -1;
      plan->udf_name = std::to_string(root_subject);
      ctx.enc_attrs.InsertAll(enc);
      MPQ_ASSIGN_OR_RETURN(
          prof, PropagateProfile(plan.get(), built.profile, {}, catalog,
                                 {.strict = true}));
      plan->profile = prof;
    }
    AttrSet dec = prof.ve.Intersect(policy.PlainView(rec));
    if (!dec.empty()) {
      RelationProfile before = prof;
      plan = Decrypt(std::move(plan), dec);
      plan->id = -1;
      plan->udf_name = std::to_string(rec);
      MPQ_ASSIGN_OR_RETURN(prof, PropagateProfile(plan.get(), before, {},
                                                  catalog, {.strict = true}));
      plan->profile = prof;
    }
  }

  // Assign fresh ids to injected nodes and record their subjects (stashed in
  // udf_name during construction).
  ExtendedPlan ext;
  ext.assignment = std::move(ctx.out_assign);
  int next_id = max_id + 1;
  for (PlanNode* n : PostOrder(plan.get())) {
    if (n->id != -1) continue;
    n->id = next_id++;
    assert(n->kind == OpKind::kEncrypt || n->kind == OpKind::kDecrypt);
    ext.assignment[n->id] =
        static_cast<SubjectId>(std::stoul(n->udf_name));
    n->udf_name.clear();
  }
  ext.plan = std::move(plan);
  ext.encrypted_attrs = ctx.enc_attrs;

  MPQ_RETURN_NOT_OK(ValidatePlan(ext.plan.get(), catalog));
  MPQ_RETURN_NOT_OK(AnnotatePlan(ext.plan.get(), catalog, {.strict = true}));
  return ext;
}

Status VerifyAuthorizedAssignment(const ExtendedPlan& ext,
                                  const Policy& policy) {
  for (const PlanNode* n : PostOrder(ext.plan.get())) {
    if (n->is_leaf()) continue;
    auto it = ext.assignment.find(n->id);
    if (it == ext.assignment.end()) {
      return Status::Internal(
          StrFormat("extended plan node %d has no assignee", n->id));
    }
    std::vector<const RelationProfile*> operands;
    operands.reserve(n->num_children());
    for (size_t i = 0; i < n->num_children(); ++i) {
      operands.push_back(&n->child(i)->profile);
    }
    Status st = policy.CheckAssignee(it->second, n->profile, operands);
    if (!st.ok()) {
      return Status::Unauthorized(StrFormat(
          "node %d (%s) assigned to %s: %s", n->id, OpKindName(n->kind),
          policy.subjects().Name(it->second).c_str(), st.message().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace mpq

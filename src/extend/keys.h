// Query plan keys (Def 6.1): clusters the attributes involved in encryption
// operations by the equivalence sets of the root profile — attributes that
// were compared in some condition must share an encryption key — and records
// which subjects must receive each key.

#ifndef MPQ_EXTEND_KEYS_H_
#define MPQ_EXTEND_KEYS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "candidates/candidates.h"
#include "extend/extend.h"

namespace mpq {

/// One key of K_T and the subjects it is distributed to.
struct KeyGroup {
  uint64_t key_id = 0;   ///< Stable identifier (1-based, deterministic).
  AttrSet attrs;         ///< The attribute cluster A sharing this key.
  SubjectSet holders;    ///< Subjects performing enc/dec over these attrs.
};

/// The key set K_T for an extended plan.
struct PlanKeys {
  std::vector<KeyGroup> groups;

  /// Group covering `a`, or nullptr.
  const KeyGroup* GroupOf(AttrId a) const;

  std::string ToString(const Catalog& catalog,
                       const SubjectRegistry& subjects) const;
};

/// Derives K_T per Def 6.1: Ak (attributes involved in encryption operations)
/// is partitioned by the root profile's equivalence classes; attributes in no
/// class become singletons. Holders are the assignees of the encryption and
/// decryption operations touching each cluster.
PlanKeys DeriveQueryPlanKeys(const ExtendedPlan& ext);

}  // namespace mpq

#endif  // MPQ_EXTEND_KEYS_H_

#include "extend/keys.h"

namespace mpq {

const KeyGroup* PlanKeys::GroupOf(AttrId a) const {
  for (const KeyGroup& g : groups) {
    if (g.attrs.Contains(a)) return &g;
  }
  return nullptr;
}

std::string PlanKeys::ToString(const Catalog& catalog,
                               const SubjectRegistry& subjects) const {
  std::string out;
  for (const KeyGroup& g : groups) {
    out += "k";
    out += g.attrs.ToString(catalog.attrs());
    out += " -> {";
    bool first = true;
    g.holders.ForEach([&](AttrId s) {
      if (!first) out += ",";
      first = false;
      out += subjects.Name(static_cast<SubjectId>(s));
    });
    out += "}\n";
  }
  return out;
}

PlanKeys DeriveQueryPlanKeys(const ExtendedPlan& ext) {
  PlanKeys keys;
  const AttrSet& ak = ext.encrypted_attrs;
  const RelationProfile& root_profile = ext.plan->profile;

  // Clusters: Ak ∩ Aj for each root equivalence class Aj, plus singletons
  // for encrypted attributes in no class.
  AttrSet covered;
  for (const AttrSet& cls : root_profile.eq.Classes()) {
    AttrSet inter = ak.Intersect(cls);
    if (inter.empty()) continue;
    KeyGroup g;
    g.key_id = keys.groups.size() + 1;
    g.attrs = inter;
    keys.groups.push_back(std::move(g));
    covered.InsertAll(inter);
  }
  ak.Difference(covered).ForEach([&](AttrId a) {
    KeyGroup g;
    g.key_id = keys.groups.size() + 1;
    g.attrs.Insert(a);
    keys.groups.push_back(std::move(g));
  });

  // Holders: assignees of enc/dec operations touching each cluster.
  for (const PlanNode* n : PostOrder(ext.plan.get())) {
    if (n->kind != OpKind::kEncrypt && n->kind != OpKind::kDecrypt) continue;
    SubjectId s = ext.assignment.at(n->id);
    for (KeyGroup& g : keys.groups) {
      if (g.attrs.Intersects(n->attrs)) g.holders.Insert(s);
    }
  }
  return keys;
}

}  // namespace mpq

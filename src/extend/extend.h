// Minimally extended authorized query plans (Def 5.4).
//
// Given a plan T and an assignment λ drawn from the candidate sets Λ, builds
// the extended plan T' that injects encryption and decryption operations so
// that λ is an authorized assignment (Thm 5.3(i)) while encrypting a minimal
// set of attributes (Thm 5.3(ii)):
//   (i)  before each operation, decrypt the operand attributes the operation
//        requires in plaintext;
//   (ii) after each operation n with parent n_o assigned to S_o, encrypt
//        (E_{S_o} ∩ Rvp) ∪ A, with A the attributes that n_o turns implicit
//        and that some ancestor assignee may only see encrypted.
// On top of the paper's formula, a small fix-point closure keeps compared
// attribute pairs (and udf inputs) uniformly encrypted so every operation in
// T' stays executable (see DESIGN.md §5).

#ifndef MPQ_EXTEND_EXTEND_H_
#define MPQ_EXTEND_EXTEND_H_

#include <optional>
#include <unordered_map>

#include "algebra/plan.h"
#include "authz/policy.h"
#include "candidates/candidates.h"
#include "common/status.h"

namespace mpq {

/// An assignment λ: node id → executing subject. Leaf (base-relation) nodes
/// are implicitly assigned to their owning data authority and may be omitted.
using Assignment = std::unordered_map<int, SubjectId>;

/// Result of plan extension.
struct ExtendedPlan {
  /// The extended tree. Original nodes keep their ids; injected
  /// encryption/decryption nodes receive fresh ids. Profiles are annotated.
  PlanPtr plan;
  /// λ extended to every node of `plan` (enc/dec operations are assigned to
  /// the subject of the operation they complement; leaves to their owner).
  Assignment assignment;
  /// Union of all attributes involved in encryption operations (Ak of
  /// Def 6.1).
  AttrSet encrypted_attrs;
};

/// Builds the minimally extended authorized plan for `root` under `lambda`.
///
/// `final_recipient`: subject receiving the query result (normally the user);
/// when set, attributes still encrypted at the root are decrypted by a final
/// operation assigned to the recipient, and the recipient's encrypted-only
/// attributes are never left plaintext at the root.
///
/// Fails with kUnauthorized when `lambda` picks a non-candidate (checked
/// against a fresh candidate computation) and with kInternal if the produced
/// plan fails validation — which would indicate a bug, per Thm 5.3(i).
Result<ExtendedPlan> BuildMinimallyExtendedPlan(
    const PlanNode* root, const Assignment& lambda, const Policy& policy,
    std::optional<SubjectId> final_recipient = std::nullopt);

/// Verifies that `lambda` is an authorized assignment for the (annotated)
/// extended plan per Def 4.2: every assignee is authorized for its operands
/// and its result. Used by tests of Theorem 5.3(i).
Status VerifyAuthorizedAssignment(const ExtendedPlan& ext,
                                  const Policy& policy);

}  // namespace mpq

#endif  // MPQ_EXTEND_EXTEND_H_

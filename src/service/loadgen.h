// Open-loop load generation over virtual time.
//
// Closed-loop benchmarking (N clients, each waiting for its response before
// sending again) understates tail latency under overload: a slow response
// delays the *next* request, so the generator backs off exactly when a real
// user population would not (coordinated omission). This harness instead
// simulates an open system as discrete events on a virtual clock: thousands
// of sessions arrive on a heavy-tailed (lognormal) schedule that does not
// care how the service is doing, a fixed number of virtual servers execute
// them, and requests beyond the wait-queue cap are shed. Each admitted
// request is executed for real (serially, so measured service times are
// undistorted by oversubscription of the host) and charged its measured
// service time on the virtual clock — queueing, shedding, and saturation
// dynamics then come out of the simulation exactly, even on a 1-core host.

#ifndef MPQ_SERVICE_LOADGEN_H_
#define MPQ_SERVICE_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "service/query_service.h"

namespace mpq {

/// Knobs of one open-loop run.
struct LoadGenConfig {
  /// Simulated sessions (arrivals). Each draws one statement round-robin.
  size_t sessions = 1000;
  /// Mean inter-arrival gap (virtual seconds). Offered load is
  /// 1/mean_interarrival_s queries per virtual second.
  double mean_interarrival_s = 0.001;
  /// Lognormal shape of the inter-arrival gaps (heavy tail). The scale is
  /// derived so the mean stays mean_interarrival_s.
  double sigma = 1.5;
  /// Virtual servers: requests executing concurrently in simulated time.
  size_t servers = 8;
  /// Arrivals willing to wait when all servers are busy; beyond this the
  /// request is shed. 0 means shed whenever every server is busy.
  size_t queue_cap = 64;
  uint64_t seed = 17;
  /// When false, encrypted cells compare by length only — required for
  /// crash scenarios, where failover re-derives fresh keys per attempt so
  /// ciphertext bytes legitimately differ from the reference run.
  bool strict_enc_compare = true;
  /// Called after every real execution with the number completed so far —
  /// crash scenarios use it to re-arm faults between queries.
  std::function<void(size_t)> on_progress;
};

/// What came out of a run. Latencies are virtual seconds (arrival → last
/// morsel of the response), converted to ms here.
struct LoadGenReport {
  size_t offered = 0;    ///< Arrivals generated.
  size_t completed = 0;  ///< Executed to an OK, result-checked response.
  size_t shed = 0;       ///< Rejected at the queue cap.
  size_t errors = 0;     ///< Executions returning non-OK.
  size_t mismatches = 0;  ///< Responses differing from the reference result.
  double virtual_duration_s = 0;  ///< First arrival → last completion.
  double throughput_qps = 0;      ///< completed / virtual_duration_s.
  double shed_rate = 0;           ///< shed / offered.
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
  double hit_rate = 0;     ///< Plan-cache hit rate over the run's lookups.
  uint64_t failovers = 0;  ///< Provider-crash recoveries during the run.
};

/// Runs `config.sessions` simulated arrivals against `service` under
/// `session`'s identity, cycling through `statements`. Every completed
/// response is compared cell-by-cell against a reference response obtained
/// up front for the same statement; mismatches are counted, never fatal.
/// Deterministic in (config, service state): the virtual schedule derives
/// from `config.seed` alone.
Result<LoadGenReport> RunOpenLoopLoad(
    QueryService* service, const Session& session,
    const std::vector<std::string>& statements, const LoadGenConfig& config);

}  // namespace mpq

#endif  // MPQ_SERVICE_LOADGEN_H_

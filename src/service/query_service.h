// QueryService: the concurrent multi-tenant serving front half of the whole
// pipeline — SQL in, authorized minimum-cost distributed execution out.
//
// The expensive front half (parse → bind → authorize → candidate enumeration
// → assignment optimization → key derivation) runs once per distinct
// (statement, subject, catalog version, policy epoch) and is memoized in a
// mutex-striped LRU cache; repeated queries pay only distributed execution.
//
// Safety invariant: a cached plan never executes under a policy it was not
// authorized against. The cache key embeds the policy epoch and catalog
// version observed when the request started; any Grant/Revoke or schema
// change advances the epoch/version, so every request beginning after the
// mutation returns misses the stale entry and re-plans (stale entries become
// unreachable and age out of the LRU). tests/service_test.cc proves this.

#ifndef MPQ_SERVICE_QUERY_SERVICE_H_
#define MPQ_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "assign/assignment.h"
#include "authz/policy.h"
#include "common/thread_pool.h"
#include "exec/distributed.h"
#include "net/pricing.h"
#include "net/simnet.h"
#include "net/topology.h"
#include "exec/table_store.h"
#include "exec/write_executor.h"
#include "obs/explain.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "service/metrics.h"
#include "service/sharded_cache.h"
#include "sql/ast.h"

namespace mpq {

struct FailoverOutcome;

/// Serving knobs.
struct ServiceConfig {
  size_t cache_shards = 8;               ///< Mutex stripes of the plan cache.
  size_t cache_capacity_per_shard = 32;  ///< LRU entries per stripe.
  /// Admission control: maximum concurrent Executes.
  size_t max_in_flight = 256;
  /// Load shedding for the async path: ExecuteAsync rejects (kUnavailable)
  /// when in-flight plus queued-but-unstarted queries reach this depth, so
  /// an overloaded service fails fast instead of growing an unbounded
  /// backlog. 0 means 2 * max_in_flight. Synchronous Execute still blocks
  /// on admission instead of shedding.
  size_t max_queue_depth = 0;
  size_t exec_threads = 0;  ///< Workers of the shared pool (0 = inline).
  size_t batch_size = 1024;  ///< Rows per executor batch.
  uint64_t key_seed = 2025;           ///< Base seed for per-plan key material.
  SchemeCaps caps;                    ///< Encrypted-execution capabilities.
  /// Simulated network (borrowed; may be null = ideal fabric). With a net
  /// attached, fragment transfers obey its links and fault plan, and a
  /// provider failure mid-query triggers the retry-on-failover path: the
  /// service re-plans around the down subjects (under the *current* policy),
  /// executes the minimum-cost authorized alternative, and retires the
  /// stale cache entry.
  SimNet* net = nullptr;
  NetPolicy net_policy;      ///< Per-edge retry/deadline budget.
  size_t max_failovers = 2;  ///< Re-plan attempts per Execute.
  /// Tracing (off by default — Executes then pay one predictable branch).
  /// When enabled, every `trace.sample_every`-th Execute records a full
  /// QueryTrace; EXPLAIN ANALYZE always traces regardless.
  TraceConfig trace;
  /// Borrowed sink finished traces are delivered to; null = sampled traces
  /// are dropped (EXPLAIN ANALYZE still works — it holds its own trace).
  TraceSink* trace_sink = nullptr;
  /// Borrowed span clock; null = wall time. Pass a SimNetClock to stamp
  /// spans in the net's virtual time base.
  const TraceClock* trace_clock = nullptr;
  /// Executes at least this slow (seconds) enter the slow-query log.
  double slow_query_s = 0.1;
  /// Versioned table storage (borrowed; may be null = static tables only).
  /// With a store attached, every Execute pins the store's current Snapshot
  /// up front and reads exclusively from it: a write committing mid-query
  /// is invisible to in-flight requests, and the snapshot id joins the plan
  /// cache key, so a cached plan never serves rows from a superseded
  /// snapshot. Store-managed relations shadow LoadTable registrations.
  TableStore* store = nullptr;
};

/// How a request's plan was obtained.
enum class CacheOutcome { kHit, kMiss };

/// Per-query serving statistics, returned with every response.
struct QueryStats {
  double total_s = 0;   ///< End-to-end Execute latency (incl. admission wait).
  double plan_s = 0;    ///< Cache lookup + (on miss) the whole front half.
  double exec_s = 0;    ///< Distributed execution.
  CacheOutcome cache = CacheOutcome::kMiss;
  uint64_t policy_epoch = 0;     ///< Epoch the plan is authorized against.
  uint64_t catalog_version = 0;  ///< Catalog version the plan is bound against.
  uint64_t snapshot_id = 0;      ///< Store snapshot the query read (0 = none).
  size_t result_rows = 0;
  uint64_t transfer_bytes = 0;   ///< Bytes crossing assignee boundaries.
  size_t num_messages = 0;
  double planned_cost_usd = 0;   ///< The optimizer's exact plan cost.
  size_t failovers = 0;          ///< Re-plans needed to produce the result.
  /// Bytes moved by abandoned attempts and transferred again on recovery.
  uint64_t retransfer_bytes = 0;
  double net_virtual_s = 0;      ///< Simulated network seconds of the run.
  /// Wall seconds from first failure to recovered result (0 without one).
  double failover_latency_s = 0;
};

/// A query result plus its serving stats.
struct QueryResponse {
  Table table;
  QueryStats stats;
  /// The run's trace when this Execute was sampled (null otherwise).
  std::shared_ptr<const QueryTrace> trace;
};

/// A prepared statement: canonicalized text plus the parsed AST, so repeated
/// Executes skip lexing/parsing entirely. Cheap to copy; valid for the
/// lifetime of the service that produced it.
struct StatementHandle {
  uint64_t id = 0;
  std::string normalized_sql;
  std::shared_ptr<const AstSelect> ast;
};

/// An authenticated serving session. The subject identity carried here flows
/// into authorization: plans are optimized and checked with this subject as
/// the query issuer and result recipient.
class Session {
 public:
  Session() = default;

  SubjectId subject() const { return subject_; }
  uint64_t id() const { return id_; }

 private:
  friend class QueryService;
  Session(SubjectId subject, uint64_t id) : subject_(subject), id_(id) {}

  SubjectId subject_ = kInvalidSubject;
  uint64_t id_ = 0;
};

/// A query admitted to the async path: a future over its QueryResponse,
/// completed when the query's last morsel finishes. Handles are obtained
/// from QueryService::ExecuteAsync and share ownership of the backing state
/// with the service's task, so they may be dropped or kept freely (they
/// must not outlive the service itself). All methods are thread-safe.
class AsyncQuery {
 public:
  AsyncQuery(const AsyncQuery&) = delete;
  AsyncQuery& operator=(const AsyncQuery&) = delete;

  /// True once the result (or a cancellation) is available.
  bool Done() const;

  /// Cancels the query iff execution has not started — no morsel of it has
  /// run and none will. Returns whether this call cancelled it; once
  /// running, cancellation fails and the query completes normally. After a
  /// successful Cancel, Wait returns kUnavailable.
  bool Cancel();

  /// Blocks until the result is available and returns it, executing queued
  /// pool work while waiting (safe to call from inside pool tasks).
  const Result<QueryResponse>& Wait();

 private:
  friend class QueryService;
  enum class State { kQueued, kRunning, kDone, kCancelled };

  explicit AsyncQuery(ThreadPool* pool) : pool_(pool) {}

  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kQueued;  // guarded by mu_
  Result<QueryResponse> result_ =
      Status::Internal("async query still pending");  // guarded by mu_
  ThreadPool* pool_;
};

/// The serving subsystem. All methods are safe to call concurrently; the
/// referenced catalog/subjects/policy/pricing/topology must outlive the
/// service (the policy may be mutated concurrently — that is the point of
/// the epoch machinery).
class QueryService {
 public:
  QueryService(const Catalog* catalog, const SubjectRegistry* subjects,
               const Policy* policy, const PricingTable* prices,
               const Topology* topology, ServiceConfig config = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers the data of a base relation (borrowed; the caller keeps it
  /// alive and unchanged while the service runs). Safe to call concurrently
  /// with Execute; plans cached before the call keep serving from the
  /// tables they were built against.
  void LoadTable(RelId rel, const Table* data);

  /// Opens a session for a registered subject.
  Result<Session> OpenSession(SubjectId subject);
  Result<Session> OpenSession(const std::string& subject_name);

  /// Validates and canonicalizes `sql` into a reusable handle. Does not
  /// touch authorization — that happens per Execute, per session.
  Result<StatementHandle> Prepare(const std::string& sql);

  /// Executes a prepared statement under `session`'s identity.
  Result<QueryResponse> Execute(const StatementHandle& stmt,
                                const Session& session);

  /// One-shot convenience: normalize + (cached) plan + execute.
  Result<QueryResponse> ExecuteSql(const std::string& sql,
                                   const Session& session);

  /// Submits a prepared statement for execution without parking the caller:
  /// the returned handle completes when the query's last morsel finishes.
  /// Sheds (kUnavailable, nothing enqueued) when in-flight plus queued
  /// queries have reached `max_queue_depth`. The async path produces a
  /// QueryResponse bit-identical to the synchronous one and counts in the
  /// same metrics.
  Result<std::shared_ptr<AsyncQuery>> ExecuteAsync(const StatementHandle& stmt,
                                                   const Session& session);

  /// One-shot async convenience: normalize + submit.
  Result<std::shared_ptr<AsyncQuery>> ExecuteSqlAsync(const std::string& sql,
                                                      const Session& session);

  /// Executes an INSERT / UPDATE / DELETE under `session`'s identity.
  /// Requires an attached TableStore; the statement commits atomically as
  /// one snapshot publication (in-flight reads keep their pinned snapshot)
  /// and the subject needs plaintext visibility over every attribute the
  /// statement writes or its filter reads.
  Result<WriteResult> ExecuteWrite(const std::string& sql,
                                   const Session& session);

  // MRV hotspot counters (exec/mrv.h), exposed as atomic counter updates
  // that never serialize on one record or on the store's writer lock.
  // Authorization mirrors the write rule: the session subject needs
  // plaintext visibility over the counter's value attribute.

  /// Detaches the cell (`value_col` of the row where `key_col` == `key`)
  /// of relation `rel_name` into an MRV counter with `num_records` records.
  Status CounterAttach(const std::string& rel_name,
                       const std::string& key_col, int64_t key,
                       const std::string& value_col, size_t num_records,
                       const Session& session);
  Status CounterAdd(const std::string& rel_name, const std::string& value_col,
                    int64_t key, int64_t delta, const Session& session);
  /// Fails (leaving the counter unchanged) when it holds less than `delta`.
  Status CounterSub(const std::string& rel_name, const std::string& value_col,
                    int64_t key, int64_t delta, const Session& session);
  Result<int64_t> CounterTotal(const std::string& rel_name,
                               const std::string& value_col, int64_t key,
                               const Session& session) const;

  /// Folds every counter into its table cell and publishes new snapshots —
  /// the point where counter updates become visible to queries.
  Status FlushCounters();

  /// EXPLAIN ANALYZE: executes `stmt` with tracing forced on (regardless of
  /// the sampling config) and renders the annotated plan with observed
  /// rows/time per operator and predicted-vs-observed bytes per
  /// assignee-crossing edge. The execution is a real one — it hits the plan
  /// cache, counts in the metrics, and can fail over.
  Result<ExplainAnalyzeReport> ExplainAnalyze(const StatementHandle& stmt,
                                              const Session& session);
  Result<ExplainAnalyzeReport> ExplainAnalyzeSql(const std::string& sql,
                                                 const Session& session);

  /// Point-in-time counters and latency percentiles.
  ServiceMetrics Metrics() const;

  /// Metrics as a JSON object.
  std::string MetricsJson() const;

  /// Prometheus-style text exposition of the unified registry: latency
  /// summaries, serving counters, cache state, and per-operator counters.
  std::string MetricsText() const { return registry_.TextExposition(); }

  /// The unified registry (for registering extra collectors in embedders).
  MetricsRegistry* registry() { return &registry_; }

  /// Slow queries observed so far, keyed by normalized-SQL digest.
  const SlowQueryLog& slow_queries() const { return slow_log_; }

  /// Entries currently cached (for tests).
  size_t CacheEntries() const { return cache_.GetStats().entries; }

  /// Drops every cached plan (metrics survive).
  void InvalidateCache() { cache_.Clear(); }

  const ServiceConfig& config() const { return config_; }
  ThreadPool* pool() { return pool_.get(); }
  /// The process-wide morsel scheduler every cached plan enqueues on (null
  /// when the service runs inline, i.e. exec_threads == 0).
  MorselScheduler* morsels() { return morsels_.get(); }
  /// The process-wide shared-scan manager (always present; for tests).
  SharedScanManager* shared_scans() { return &shared_scans_; }

 private:
  /// The borrowed probe form of a plan-cache key: a string_view over the
  /// caller's normalized SQL. Every lookup goes through this type, so a
  /// cache hit never copies the statement text; the owned PlanCacheKey is
  /// constructed only when a plan is actually inserted.
  struct PlanCacheKeyRef {
    std::string_view normalized_sql;
    SubjectId subject = kInvalidSubject;
    uint64_t catalog_version = 0;
    uint64_t policy_epoch = 0;
    /// SimNet::liveness_epoch at request start (0 without a net): a plan
    /// built around a down provider stops being served once liveness
    /// changes, instead of outliving the outage.
    uint64_t net_epoch = 0;
    /// TableStore snapshot id at request start (0 without a store): a
    /// cached plan's runtime borrows tables of one snapshot, so any write
    /// publication moves new requests past the stale entry.
    uint64_t snapshot_epoch = 0;
  };
  struct PlanCacheKey {
    std::string normalized_sql;
    SubjectId subject = kInvalidSubject;
    uint64_t catalog_version = 0;
    uint64_t policy_epoch = 0;
    uint64_t net_epoch = 0;
    uint64_t snapshot_epoch = 0;

    PlanCacheKey() = default;
    explicit PlanCacheKey(const PlanCacheKeyRef& ref)
        : normalized_sql(ref.normalized_sql),
          subject(ref.subject),
          catalog_version(ref.catalog_version),
          policy_epoch(ref.policy_epoch),
          net_epoch(ref.net_epoch),
          snapshot_epoch(ref.snapshot_epoch) {}

    bool operator==(const PlanCacheKeyRef& o) const {
      return subject == o.subject && catalog_version == o.catalog_version &&
             policy_epoch == o.policy_epoch && net_epoch == o.net_epoch &&
             snapshot_epoch == o.snapshot_epoch &&
             normalized_sql == o.normalized_sql;
    }
  };
  /// Hashes the owned and the borrowed key form identically.
  struct PlanCacheKeyHash {
    size_t operator()(const PlanCacheKeyRef& k) const;
    size_t operator()(const PlanCacheKey& k) const;
  };

  /// One memoized front-half result: the authorized minimum-cost extended
  /// plan and a runtime ready to execute it (tables borrowed, keys
  /// distributed, crypto plan installed). Immutable after construction
  /// except the runtime's atomic nonce sequence — concurrent Run is safe.
  struct PreparedPlan {
    PlanPtr bound_plan;  ///< Keeps original nodes alive for the extended tree.
    AssignmentResult assignment;
    PlanKeys keys;
    std::unique_ptr<DistributedRuntime> runtime;
    /// Pins the store snapshot the runtime's table references point into —
    /// a later publication can never free tables under a cached plan.
    std::shared_ptr<const Snapshot> snapshot;
    uint64_t policy_epoch = 0;
    uint64_t catalog_version = 0;
    /// Cost-model estimates over the extended plan (refined schemes), keyed
    /// by node id — what EXPLAIN ANALYZE compares observed bytes against.
    std::unordered_map<int, NodeEstimate> estimates;
  };

  /// Execution detail EXPLAIN ANALYZE needs beyond the response: the plan
  /// that ran, its trace, and — when the run was recovered — the failover
  /// outcome holding the alternative assignment.
  struct ExecDetail {
    std::shared_ptr<PreparedPlan> entry;
    std::shared_ptr<QueryTrace> trace;
    std::shared_ptr<FailoverOutcome> recovered;
  };

  /// RAII admission-control slot; blocks in the constructor until the
  /// in-flight count drops below the configured cap.
  class AdmissionSlot;

  /// `preadmitted`: the caller already claimed an admission slot via
  /// TryClaimSlot(); the execution adopts (and releases) it instead of
  /// blocking for one.
  Result<QueryResponse> ExecuteInternal(const std::string& normalized_sql,
                                        const AstSelect* ast,
                                        const Session& session,
                                        bool force_trace = false,
                                        ExecDetail* detail = nullptr,
                                        bool preadmitted = false);
  /// Runs (or requeues) one async query's pool task. Pool workers never
  /// block on admission — see the comment in the implementation.
  void RunAsyncTask(std::shared_ptr<AsyncQuery> query,
                    std::shared_ptr<const std::string> sql,
                    std::shared_ptr<const AstSelect> ast, const Session& sess);
  /// Claims an admission slot iff one is free (never blocks).
  bool TryClaimSlot();
  /// Releases a slot claimed by TryClaimSlot when ExecuteInternal never got
  /// to adopt it (e.g. the query was cancelled first).
  void ReleaseSlot();
  Result<ExplainAnalyzeReport> ExplainAnalyzeInternal(
      const std::string& normalized_sql, const AstSelect* ast,
      const Session& session);
  Result<std::shared_ptr<PreparedPlan>> BuildPreparedPlan(
      const std::string& normalized_sql, const AstSelect* ast,
      SubjectId subject, uint64_t policy_epoch, uint64_t catalog_version,
      std::shared_ptr<const Snapshot> snapshot, QueryTrace* trace,
      uint64_t trace_parent);
  /// Resolves a (relation, column) pair for the counter APIs and checks the
  /// session subject's plaintext visibility over the column's attribute.
  Result<std::pair<RelId, int>> ResolveCounterColumn(
      const std::string& rel_name, const std::string& value_col,
      const Session& session) const;

  const Catalog* catalog_;
  const SubjectRegistry* subjects_;
  const Policy* policy_;
  const PricingTable* prices_;
  const Topology* topology_;
  ServiceConfig config_;

  mutable std::mutex tables_mu_;
  std::map<RelId, const Table*> tables_;  // guarded by tables_mu_
  std::unique_ptr<ThreadPool> pool_;
  /// The global morsel queue (over pool_) every cached plan's runtime and
  /// every failover runtime enqueues on — one task pool for all concurrent
  /// queries. Null when the service executes inline.
  std::unique_ptr<MorselScheduler> morsels_;
  /// Coalesces concurrent same-snapshot base scans across queries.
  SharedScanManager shared_scans_;
  ShardedLruCache<PlanCacheKey, PreparedPlan, PlanCacheKeyHash> cache_;

  // Admission control.
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t in_flight_ = 0;          // guarded by admission_mu_
  size_t in_flight_peak_ = 0;     // guarded by admission_mu_
  uint64_t admission_waits_ = 0;  // guarded by admission_mu_
  /// Async queries accepted but not yet running (their pool task has not
  /// started). in_flight_ + async_queued_ is the shed-decision depth.
  size_t async_queued_ = 0;       // guarded by admission_mu_
  size_t queue_depth_peak_ = 0;   // guarded by admission_mu_

  // Metrics.
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> rows_returned_{0};
  std::atomic<uint64_t> transfer_bytes_{0};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> failover_retransfer_bytes_{0};
  std::atomic<uint64_t> sheds_{0};          ///< Async submissions rejected.
  std::atomic<uint64_t> async_queries_{0};  ///< Async submissions accepted.
  std::atomic<uint64_t> cancelled_{0};      ///< Cancelled before execution.
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> write_errors_{0};
  std::atomic<uint64_t> rows_written_{0};
  /// mutable: CounterTotal is a logically-const read but still counts.
  mutable std::atomic<uint64_t> counter_ops_{0};
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> next_statement_id_{1};
  /// Per-operator timing/row counters, shared by every runtime this service
  /// builds (cached plans included).
  OpProfile op_profile_;
  /// The unified registry. The latency histograms live in it (stable
  /// pointers resolved once in the constructor); counters the service keeps
  /// as plain atomics surface through a collector instead of being
  /// duplicated into registry instruments.
  MetricsRegistry registry_;
  LatencyHistogram* latency_total_;
  LatencyHistogram* latency_hit_;
  LatencyHistogram* latency_miss_;
  LatencyHistogram* latency_failover_;
  Tracer tracer_;
  SlowQueryLog slow_log_;
};

}  // namespace mpq

#endif  // MPQ_SERVICE_QUERY_SERVICE_H_

#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "candidates/candidates.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "exec/failover.h"
#include "extend/keys.h"
#include "common/flat_hash.h"
#include "profile/propagate.h"
#include "sql/binder.h"
#include "sql/normalize.h"
#include "sql/parser.h"

namespace mpq {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

size_t QueryService::PlanCacheKeyHash::operator()(
    const PlanCacheKeyRef& k) const {
  uint64_t h = HashBytes(k.normalized_sql);
  h = SplitMix64(h ^ (static_cast<uint64_t>(k.subject) + 1) *
                         0x9e3779b97f4a7c15ull);
  h = SplitMix64(h ^ k.catalog_version * 0xbf58476d1ce4e5b9ull);
  h = SplitMix64(h ^ k.policy_epoch * 0x94d049bb133111ebull);
  h = SplitMix64(h ^ k.net_epoch * 0xd6e8feb86659fd93ull);
  h = SplitMix64(h ^ k.snapshot_epoch * 0xa0761d6478bd642full);
  return static_cast<size_t>(h);
}

size_t QueryService::PlanCacheKeyHash::operator()(const PlanCacheKey& k) const {
  return operator()(PlanCacheKeyRef{k.normalized_sql, k.subject,
                                    k.catalog_version, k.policy_epoch,
                                    k.net_epoch, k.snapshot_epoch});
}

/// Blocks until the in-flight count drops below the cap, then holds a slot
/// for the lifetime of the enclosing Execute.
class QueryService::AdmissionSlot {
 public:
  /// `adopt` takes over a slot the caller already claimed via
  /// TryClaimSlot() — the constructor then only binds the release.
  explicit AdmissionSlot(QueryService* service, bool adopt = false)
      : service_(service) {
    if (adopt) return;
    std::unique_lock<std::mutex> lock(service_->admission_mu_);
    size_t cap = std::max<size_t>(1, service_->config_.max_in_flight);
    if (service_->in_flight_ >= cap) {
      service_->admission_waits_++;
      service_->admission_cv_.wait(
          lock, [&] { return service_->in_flight_ < cap; });
    }
    service_->in_flight_++;
    service_->in_flight_peak_ =
        std::max(service_->in_flight_peak_, service_->in_flight_);
  }

  ~AdmissionSlot() {
    {
      std::lock_guard<std::mutex> lock(service_->admission_mu_);
      service_->in_flight_--;
    }
    service_->admission_cv_.notify_one();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  QueryService* service_;
};

QueryService::QueryService(const Catalog* catalog,
                           const SubjectRegistry* subjects,
                           const Policy* policy, const PricingTable* prices,
                           const Topology* topology, ServiceConfig config)
    : catalog_(catalog),
      subjects_(subjects),
      policy_(policy),
      prices_(prices),
      topology_(topology),
      config_(config),
      cache_(config.cache_shards, config.cache_capacity_per_shard),
      latency_total_(registry_.GetHistogram("mpq_query_latency_seconds",
                                            "End-to-end Execute latency",
                                            "outcome=\"total\"")),
      latency_hit_(registry_.GetHistogram("mpq_query_latency_seconds",
                                          "End-to-end Execute latency",
                                          "outcome=\"hit\"")),
      latency_miss_(registry_.GetHistogram("mpq_query_latency_seconds",
                                           "End-to-end Execute latency",
                                           "outcome=\"miss\"")),
      latency_failover_(registry_.GetHistogram(
          "mpq_failover_latency_seconds",
          "Failure detection to recovered result", "")),
      tracer_(config.trace, config.trace_clock, config.trace_sink),
      slow_log_(config.slow_query_s) {
  if (config_.exec_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.exec_threads);
    morsels_ = std::make_unique<MorselScheduler>(pool_.get());
  }
  // Counters the service already keeps (atomics, cache stats, op profile)
  // surface through one collector — a single source of truth instead of
  // double-counting into registry instruments.
  registry_.AddCollector([this](std::string* out) {
    ServiceMetrics m = Metrics();
    auto counter = [out](const char* name, const char* help, uint64_t v) {
      out->append(StrFormat("# HELP %s %s\n# TYPE %s counter\n%s %llu\n",
                            name, help, name, name,
                            static_cast<unsigned long long>(v)));
    };
    counter("mpq_queries_total", "Executes that reached execution",
            m.queries);
    counter("mpq_errors_total", "Executes returning non-OK", m.errors);
    counter("mpq_cache_hits_total", "Plan cache hits", m.cache_hits);
    counter("mpq_cache_misses_total", "Plan cache misses", m.cache_misses);
    counter("mpq_cache_evictions_total", "Plan cache evictions",
            m.cache_evictions);
    counter("mpq_rows_returned_total", "Result rows delivered",
            m.rows_returned);
    counter("mpq_transfer_bytes_total", "Bytes crossing assignee boundaries",
            m.transfer_bytes);
    counter("mpq_messages_total", "Fragment messages delivered", m.messages);
    counter("mpq_admission_waits_total", "Executes that blocked on admission",
            m.admission_waits);
    counter("mpq_failovers_total", "Re-plans after provider failures",
            m.failovers);
    counter("mpq_failover_retransfer_bytes_total",
            "Bytes moved again by recovery plans",
            m.failover_retransfer_bytes);
    counter("mpq_writes_total", "Write statements attempted", m.writes);
    counter("mpq_write_errors_total", "Write statements returning non-OK",
            m.write_errors);
    counter("mpq_rows_written_total", "Rows inserted/updated/deleted",
            m.rows_written);
    counter("mpq_counter_ops_total", "MRV counter API calls", m.counter_ops);
    counter("mpq_async_queries_total", "Async submissions accepted",
            m.async_queries);
    counter("mpq_sheds_total", "Async submissions rejected at the queue cap",
            m.sheds);
    counter("mpq_cancelled_total", "Async queries cancelled before execution",
            m.cancelled);
    counter("mpq_morsels_executed_total", "Morsel tasks run by the scheduler",
            m.morsels_executed);
    counter("mpq_shared_scan_leads_total",
            "Scans that started a shared claim loop", m.scan_leads);
    counter("mpq_shared_scan_attaches_total",
            "Scans that attached to an in-flight scan", m.scan_attaches);
    counter("mpq_shared_scan_shared_batches_total",
            "Batch reads that served two or more queries",
            m.scan_shared_batches);
    out->append(StrFormat(
        "# HELP mpq_morsel_queue_depth Morsels registered but not yet run\n"
        "# TYPE mpq_morsel_queue_depth gauge\nmpq_morsel_queue_depth %llu\n",
        static_cast<unsigned long long>(m.morsel_queue_depth)));
    out->append(StrFormat(
        "# HELP mpq_queue_depth_peak Peak in-flight plus queued queries\n"
        "# TYPE mpq_queue_depth_peak gauge\nmpq_queue_depth_peak %llu\n",
        static_cast<unsigned long long>(m.queue_depth_peak)));
    out->append(StrFormat(
        "# HELP mpq_snapshot_epoch Current table store snapshot id\n"
        "# TYPE mpq_snapshot_epoch gauge\nmpq_snapshot_epoch %llu\n",
        static_cast<unsigned long long>(m.snapshot_epoch)));
    out->append(StrFormat(
        "# HELP mpq_cache_entries Plans currently cached\n"
        "# TYPE mpq_cache_entries gauge\nmpq_cache_entries %llu\n",
        static_cast<unsigned long long>(m.cache_entries)));
    // Per-operator engine counters, one labelled series per operator kind.
    const char* kOpHeader =
        "# HELP mpq_op_calls_total Operator executions\n"
        "# TYPE mpq_op_calls_total counter\n"
        "# HELP mpq_op_ns_total Wall nanoseconds inside operators\n"
        "# TYPE mpq_op_ns_total counter\n"
        "# HELP mpq_op_rows_in_total Operand rows consumed\n"
        "# TYPE mpq_op_rows_in_total counter\n"
        "# HELP mpq_op_rows_out_total Result rows produced\n"
        "# TYPE mpq_op_rows_out_total counter\n"
        "# HELP mpq_op_arena_bytes_total Operator scratch arena bytes\n"
        "# TYPE mpq_op_arena_bytes_total counter\n"
        "# HELP mpq_op_hom_folds_total Paillier ciphertexts folded\n"
        "# TYPE mpq_op_hom_folds_total counter\n"
        "# HELP mpq_op_morsels_total Morsel tasks enqueued per operator\n"
        "# TYPE mpq_op_morsels_total counter\n";
    out->append(kOpHeader);
    for (size_t k = 0; k < kNumOpKinds; ++k) {
      const OpCounterSnapshot& c = m.ops.ops[k];
      if (c.calls == 0) continue;
      const char* op = OpKindName(static_cast<OpKind>(k));
      auto series = [&](const char* name, uint64_t v) {
        out->append(StrFormat("%s{op=\"%s\"} %llu\n", name, op,
                              static_cast<unsigned long long>(v)));
      };
      series("mpq_op_calls_total", c.calls);
      series("mpq_op_ns_total", c.ns);
      series("mpq_op_rows_in_total", c.rows_in);
      series("mpq_op_rows_out_total", c.rows_out);
      series("mpq_op_arena_bytes_total", c.arena_bytes);
      series("mpq_op_hom_folds_total", c.hom_folds);
      series("mpq_op_morsels_total", c.morsels);
    }
  });
}

QueryService::~QueryService() = default;

void QueryService::LoadTable(RelId rel, const Table* data) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_[rel] = data;
}

Result<Session> QueryService::OpenSession(SubjectId subject) {
  if (subject == kInvalidSubject || subject >= subjects_->size()) {
    return Status::NotFound("cannot open session for unknown subject");
  }
  return Session(subject, next_session_id_.fetch_add(1));
}

Result<Session> QueryService::OpenSession(const std::string& subject_name) {
  SubjectId subject = subjects_->Find(subject_name);
  if (subject == kInvalidSubject) {
    return Status::NotFound("cannot open session for unknown subject: " +
                            subject_name);
  }
  return OpenSession(subject);
}

Result<StatementHandle> QueryService::Prepare(const std::string& sql) {
  MPQ_ASSIGN_OR_RETURN(std::string normalized, NormalizeSql(sql));
  MPQ_ASSIGN_OR_RETURN(AstSelect ast, ParseSelect(normalized));
  StatementHandle handle;
  handle.id = next_statement_id_.fetch_add(1);
  handle.normalized_sql = std::move(normalized);
  handle.ast = std::make_shared<const AstSelect>(std::move(ast));
  return handle;
}

Result<QueryResponse> QueryService::Execute(const StatementHandle& stmt,
                                            const Session& session) {
  if (stmt.normalized_sql.empty()) {
    return Status::InvalidArgument("execute of an empty statement handle");
  }
  return ExecuteInternal(stmt.normalized_sql, stmt.ast.get(), session);
}

Result<QueryResponse> QueryService::ExecuteSql(const std::string& sql,
                                               const Session& session) {
  MPQ_ASSIGN_OR_RETURN(std::string normalized, NormalizeSql(sql));
  // Parsing is deferred: a warm cache serves the query from the normalized
  // text alone.
  return ExecuteInternal(normalized, nullptr, session);
}

bool AsyncQuery::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kDone || state_ == State::kCancelled;
}

bool AsyncQuery::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kQueued) return false;
  state_ = State::kCancelled;
  result_ = Status::Unavailable("query cancelled before execution");
  cv_.notify_all();
  return true;
}

const Result<QueryResponse>& AsyncQuery::Wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (state_ == State::kDone || state_ == State::kCancelled) {
        return result_;
      }
    }
    // Help drain the pool instead of idling — a caller inside a pool task
    // may be the thread our query's morsels are queued behind.
    if (pool_ != nullptr && pool_->TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return state_ == State::kDone || state_ == State::kCancelled;
    });
    if (state_ == State::kDone || state_ == State::kCancelled) return result_;
  }
}

Result<std::shared_ptr<AsyncQuery>> QueryService::ExecuteAsync(
    const StatementHandle& stmt, const Session& session) {
  if (stmt.normalized_sql.empty()) {
    return Status::InvalidArgument("execute of an empty statement handle");
  }
  // Queue-depth-aware admission: shed at submission time when the backlog
  // (running + queued) has reached the cap, so overload turns into fast
  // kUnavailable rejections instead of unbounded queue growth.
  size_t cap = config_.max_queue_depth != 0
                   ? config_.max_queue_depth
                   : 2 * std::max<size_t>(1, config_.max_in_flight);
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (in_flight_ + async_queued_ >= cap) {
      sheds_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("service overloaded: request shed");
    }
    ++async_queued_;
    queue_depth_peak_ =
        std::max(queue_depth_peak_, in_flight_ + async_queued_);
  }
  async_queries_.fetch_add(1, std::memory_order_relaxed);

  auto query = std::shared_ptr<AsyncQuery>(new AsyncQuery(pool_.get()));
  // The task owns copies of everything it touches: the handle may be
  // destroyed and the submitting thread gone by the time a worker runs it.
  auto sql = std::make_shared<const std::string>(stmt.normalized_sql);
  std::shared_ptr<const AstSelect> ast = stmt.ast;
  Session sess = session;
  auto task = [this, query, sql, ast, sess] {
    RunAsyncTask(query, sql, ast, sess);
  };
  // Run inline when there is no pool or the pool is shutting down — the
  // handle then completes before ExecuteAsync returns.
  if (pool_ == nullptr || pool_->size() == 0 || !pool_->Submit(task)) task();
  return query;
}

void QueryService::RunAsyncTask(std::shared_ptr<AsyncQuery> query,
                                std::shared_ptr<const std::string> sql,
                                std::shared_ptr<const AstSelect> ast,
                                const Session& sess) {
  // A pool worker must NEVER park inside AdmissionSlot: waiters all over the
  // engine (fragment DAG drains, ParallelFor) help by inlining queued pool
  // tasks, so an async task can start nested under a query that already
  // holds a slot — let it block there and a handful of nested starts park
  // every thread under a suspended slot-holder (deadlock). Instead, when the
  // service is at max_in_flight, requeue behind the other queued work and
  // let this thread get back to finishing the queries that hold the slots.
  bool admitted = TryClaimSlot();
  if (!admitted && pool_ != nullptr && pool_->size() > 0) {
    if (pool_->Submit([this, query, sql, ast, sess] {
          RunAsyncTask(query, sql, ast, sess);
        })) {
      std::this_thread::yield();  // give slot holders the core back
      return;
    }
    // Submit rejected (pool shutting down): fall through and run here,
    // blocking on admission like the synchronous path — this thread is
    // draining the queue inline, it holds no slot.
  }
  bool cancelled = false;
  {
    std::lock_guard<std::mutex> lock(query->mu_);
    if (query->state_ == AsyncQuery::State::kCancelled) {
      cancelled = true;
    } else {
      query->state_ = AsyncQuery::State::kRunning;
    }
  }
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --async_queued_;
  }
  if (cancelled) {
    if (admitted) ReleaseSlot();
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Result<QueryResponse> r =
      ExecuteInternal(*sql, ast.get(), sess, /*force_trace=*/false,
                      /*detail=*/nullptr, /*preadmitted=*/admitted);
  std::lock_guard<std::mutex> lock(query->mu_);
  query->result_ = std::move(r);
  query->state_ = AsyncQuery::State::kDone;
  query->cv_.notify_all();
}

bool QueryService::TryClaimSlot() {
  std::lock_guard<std::mutex> lock(admission_mu_);
  if (in_flight_ >= std::max<size_t>(1, config_.max_in_flight)) return false;
  in_flight_++;
  in_flight_peak_ = std::max(in_flight_peak_, in_flight_);
  return true;
}

void QueryService::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    in_flight_--;
  }
  admission_cv_.notify_one();
}

Result<std::shared_ptr<AsyncQuery>> QueryService::ExecuteSqlAsync(
    const std::string& sql, const Session& session) {
  MPQ_ASSIGN_OR_RETURN(StatementHandle stmt, Prepare(sql));
  return ExecuteAsync(stmt, session);
}

Result<WriteResult> QueryService::ExecuteWrite(const std::string& sql,
                                               const Session& session) {
  if (config_.store == nullptr) {
    return Status::InvalidArgument(
        "ExecuteWrite requires a TableStore attached to the service");
  }
  if (session.subject() == kInvalidSubject ||
      session.subject() >= subjects_->size()) {
    return Status::InvalidArgument("write without a valid session");
  }
  MPQ_ASSIGN_OR_RETURN(std::string normalized, NormalizeSql(sql));
  const uint64_t statement_digest = HashBytes(normalized);
  std::shared_ptr<QueryTrace> trace =
      tracer_.MaybeStart(session.id(), statement_digest);
  Span root = trace != nullptr
                  ? trace->StartSpan("write", "write", /*parent=*/0,
                                     /*node_id=*/-1,
                                     static_cast<int>(session.subject()))
                  : Span();
  writes_.fetch_add(1, std::memory_order_relaxed);
  auto fail = [&](const Status& st) -> Status {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    if (root) {
      root.AnnStr("error", st.ToString());
      root.End();
    }
    if (trace != nullptr) tracer_.Finish(trace);
    return st;
  };
  auto parsed = ParseStatement(normalized);
  if (!parsed.ok()) return fail(parsed.status());
  if (parsed->kind == StatementKind::kSelect) {
    return fail(Status::InvalidArgument(
        "ExecuteWrite got a SELECT statement; use Execute"));
  }
  auto bound = BindWrite(*parsed, *catalog_);
  if (!bound.ok()) return fail(bound.status());
  WriteExecutor writer(policy_, config_.store);
  auto result = writer.Execute(*bound, session.subject());
  if (!result.ok()) return fail(result.status());
  rows_written_.fetch_add(result->rows_affected, std::memory_order_relaxed);
  if (root) {
    root.AnnInt("rows_affected",
                static_cast<int64_t>(result->rows_affected));
    root.AnnInt("snapshot_id", static_cast<int64_t>(result->snapshot_id));
    root.End();
  }
  if (trace != nullptr) tracer_.Finish(trace);
  return result;
}

Result<std::pair<RelId, int>> QueryService::ResolveCounterColumn(
    const std::string& rel_name, const std::string& value_col,
    const Session& session) const {
  if (config_.store == nullptr) {
    return Status::InvalidArgument(
        "counter APIs require a TableStore attached to the service");
  }
  if (session.subject() == kInvalidSubject ||
      session.subject() >= subjects_->size()) {
    return Status::InvalidArgument("counter op without a valid session");
  }
  RelId rel = catalog_->FindRelation(rel_name);
  if (rel == kInvalidRel) {
    return Status::NotFound("unknown relation: " + rel_name);
  }
  const Schema& schema = catalog_->Get(rel).schema;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const Column& c = schema.columns()[i];
    if (c.name != value_col) continue;
    // Counter updates write the attribute's plaintext value: same
    // authorization surface as an UPDATE of that column.
    AttrSet needed;
    needed.Insert(c.attr);
    if (!needed.IsSubsetOf(policy_->PlainView(session.subject()))) {
      return Status::Unauthorized(StrFormat(
          "%s is not authorized to update counter column [%s]",
          subjects_->Name(session.subject()).c_str(),
          needed.ToString(catalog_->attrs()).c_str()));
    }
    return std::make_pair(rel, static_cast<int>(i));
  }
  return Status::NotFound(
      StrFormat("relation %s has no column %s", rel_name.c_str(),
                value_col.c_str()));
}

Status QueryService::CounterAttach(const std::string& rel_name,
                                   const std::string& key_col, int64_t key,
                                   const std::string& value_col,
                                   size_t num_records,
                                   const Session& session) {
  MPQ_ASSIGN_OR_RETURN(auto target,
                       ResolveCounterColumn(rel_name, value_col, session));
  const Schema& schema = catalog_->Get(target.first).schema;
  int key_idx = -1;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (schema.columns()[i].name == key_col) {
      key_idx = static_cast<int>(i);
      break;
    }
  }
  if (key_idx < 0) {
    return Status::NotFound(
        StrFormat("relation %s has no column %s", rel_name.c_str(),
                  key_col.c_str()));
  }
  counter_ops_.fetch_add(1, std::memory_order_relaxed);
  return config_.store->MrvAttach(target.first, key_idx, key, target.second,
                                  num_records);
}

Status QueryService::CounterAdd(const std::string& rel_name,
                                const std::string& value_col, int64_t key,
                                int64_t delta, const Session& session) {
  MPQ_ASSIGN_OR_RETURN(auto target,
                       ResolveCounterColumn(rel_name, value_col, session));
  counter_ops_.fetch_add(1, std::memory_order_relaxed);
  return config_.store->MrvAdd(target.first, target.second, key, delta);
}

Status QueryService::CounterSub(const std::string& rel_name,
                                const std::string& value_col, int64_t key,
                                int64_t delta, const Session& session) {
  MPQ_ASSIGN_OR_RETURN(auto target,
                       ResolveCounterColumn(rel_name, value_col, session));
  counter_ops_.fetch_add(1, std::memory_order_relaxed);
  return config_.store->MrvSub(target.first, target.second, key, delta);
}

Result<int64_t> QueryService::CounterTotal(const std::string& rel_name,
                                           const std::string& value_col,
                                           int64_t key,
                                           const Session& session) const {
  MPQ_ASSIGN_OR_RETURN(auto target,
                       ResolveCounterColumn(rel_name, value_col, session));
  counter_ops_.fetch_add(1, std::memory_order_relaxed);
  return config_.store->MrvTotal(target.first, target.second, key);
}

Status QueryService::FlushCounters() {
  if (config_.store == nullptr) {
    return Status::InvalidArgument(
        "counter APIs require a TableStore attached to the service");
  }
  return config_.store->FlushCounters();
}

Result<std::shared_ptr<QueryService::PreparedPlan>>
QueryService::BuildPreparedPlan(const std::string& normalized_sql,
                                const AstSelect* ast, SubjectId subject,
                                uint64_t policy_epoch,
                                uint64_t catalog_version,
                                std::shared_ptr<const Snapshot> snapshot,
                                QueryTrace* trace, uint64_t trace_parent) {
  AstSelect parsed;
  if (ast == nullptr) {
    Span parse = trace != nullptr
                     ? trace->StartSpan("parse", "plan", trace_parent)
                     : Span();
    MPQ_ASSIGN_OR_RETURN(parsed, ParseSelect(normalized_sql));
    ast = &parsed;
  }

  auto entry = std::make_shared<PreparedPlan>();
  entry->policy_epoch = policy_epoch;
  entry->catalog_version = catalog_version;

  // Bind + profile annotation.
  Span bind = trace != nullptr ? trace->StartSpan("bind", "plan", trace_parent)
                               : Span();
  MPQ_ASSIGN_OR_RETURN(entry->bound_plan, BindSelect(*ast, *catalog_));
  MPQ_RETURN_NOT_OK(
      DerivePlaintextNeeds(entry->bound_plan.get(), *catalog_, config_.caps));
  MPQ_RETURN_NOT_OK(AnnotatePlan(entry->bound_plan.get(), *catalog_));
  bind.End();

  // The session subject receives the result: it needs at least encrypted
  // visibility over every result attribute (the extension layer encrypts
  // the recipient's encrypted-only attributes before delivery). Checking
  // here turns "no authorized delivery exists" into a crisp kUnauthorized
  // instead of a downstream optimizer failure.
  const RelationProfile& root_profile = entry->bound_plan->profile;
  AttrSet result_attrs;
  root_profile.vp.Union(root_profile.ve).ForEach([&](AttrId a) {
    // Derived outputs (count(*), aliases) belong to no relation and are not
    // grantable; their inputs are authorization-checked where computed.
    if (catalog_->RelationOf(a) != kInvalidRel) result_attrs.Insert(a);
  });
  AttrSet recipient_view =
      policy_->PlainView(subject).Union(policy_->EncView(subject));
  if (!result_attrs.IsSubsetOf(recipient_view)) {
    AttrSet missing = result_attrs.Difference(recipient_view);
    return Status::Unauthorized(StrFormat(
        "%s is not authorized to receive the query result: no visibility "
        "over [%s]",
        subjects_->Name(subject).c_str(),
        missing.ToString(catalog_->attrs()).c_str()));
  }

  // Candidates + minimum-cost authorized assignment, routing around any
  // subject the network currently reports down.
  SubjectSet excluded;
  if (config_.net != nullptr) {
    for (SubjectId s : config_.net->DownSubjects()) excluded.Insert(s);
  }
  Span candidates = trace != nullptr
                        ? trace->StartSpan("candidates", "plan", trace_parent)
                        : Span();
  MPQ_ASSIGN_OR_RETURN(
      CandidatePlan cp,
      ComputeCandidates(entry->bound_plan.get(), *policy_,
                        /*require_nonempty=*/true,
                        excluded.empty() ? nullptr : &excluded));
  candidates.End();
  Span assign = trace != nullptr
                    ? trace->StartSpan("assign", "plan", trace_parent)
                    : Span();
  SchemeMap schemes =
      AnalyzeSchemes(entry->bound_plan.get(), *catalog_, config_.caps);
  CostModel cost_model(catalog_, prices_, topology_, &schemes);
  AssignmentOptimizer optimizer(policy_, &cost_model);
  MPQ_ASSIGN_OR_RETURN(
      entry->assignment,
      optimizer.Optimize(entry->bound_plan.get(), cp, subject));
  // Defense in depth: never cache a plan that does not verify under the
  // policy state it will be keyed by.
  MPQ_RETURN_NOT_OK(
      VerifyAuthorizedAssignment(entry->assignment.extended, *policy_));
  // The estimates the optimizer priced transfers with, re-derived over the
  // extended plan under the refined schemes — what EXPLAIN ANALYZE holds
  // observed bytes against.
  CostModel refined_model(catalog_, prices_, topology_,
                          &entry->assignment.refined_schemes);
  entry->estimates =
      refined_model.EstimatePlan(entry->assignment.extended.plan.get());
  if (assign) {
    assign.AnnDouble("cost_usd", entry->assignment.exact_cost.total_usd());
    assign.End();
  }

  // Keys + a runtime ready for repeated concurrent execution.
  Span keys = trace != nullptr ? trace->StartSpan("keys", "plan", trace_parent)
                               : Span();
  entry->keys = DeriveQueryPlanKeys(entry->assignment.extended);
  entry->runtime = std::make_unique<DistributedRuntime>(catalog_, subjects_);
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (const auto& [rel, table] : tables_) {
      entry->runtime->LoadTableRef(rel, table);
    }
  }
  // Store-managed relations shadow static registrations: the runtime reads
  // the pinned snapshot's version, and the PreparedPlan keeps the snapshot
  // alive for as long as the cache may serve this plan.
  if (snapshot != nullptr) {
    for (const auto& [rel, table] : snapshot->tables) {
      entry->runtime->LoadTableRef(rel, table.get());
    }
    // Cold (segment-backed) relations decode on first touch; the memoized
    // table lives as long as the pinned snapshot.
    for (const auto& [rel, seg] : snapshot->cold) {
      (void)seg;
      const Table* t = snapshot->Get(rel);
      if (t != nullptr) entry->runtime->LoadTableRef(rel, t);
    }
    entry->snapshot = std::move(snapshot);
  }
  uint64_t seed = SplitMix64(config_.key_seed ^
                             std::hash<std::string>{}(normalized_sql));
  seed = SplitMix64(seed ^
                    (static_cast<uint64_t>(subject) + 1) * 0x100000001b3ull ^
                    policy_epoch);
  entry->runtime->DistributeKeys(entry->keys, subject, seed);
  entry->runtime->SetCryptoPlan(
      MakeCryptoPlan(entry->assignment.refined_schemes, entry->keys));
  entry->runtime->SetThreadPool(pool_.get());
  entry->runtime->SetMorselScheduler(morsels_.get());
  entry->runtime->SetSharedScans(&shared_scans_);
  entry->runtime->SetBatchSize(config_.batch_size);
  entry->runtime->SetNetwork(config_.net);
  entry->runtime->SetNetPolicy(config_.net_policy);
  entry->runtime->SetOpProfile(&op_profile_);
  keys.End();
  return entry;
}

Result<QueryResponse> QueryService::ExecuteInternal(
    const std::string& normalized_sql, const AstSelect* ast,
    const Session& session, bool force_trace, ExecDetail* detail,
    bool preadmitted) {
  auto t0 = Clock::now();
  if (session.subject() == kInvalidSubject ||
      session.subject() >= subjects_->size()) {
    if (preadmitted) ReleaseSlot();
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("execute without a valid session");
  }
  AdmissionSlot slot(this, /*adopt=*/preadmitted);
  queries_.fetch_add(1, std::memory_order_relaxed);

  // Tracing is observation-only: nothing below reads `trace`, so a traced
  // run is bit-identical to an untraced one. Off is the common case and
  // costs one predictable branch here plus null-checks on the span sites.
  const uint64_t statement_digest = HashBytes(normalized_sql);
  std::shared_ptr<QueryTrace> trace =
      force_trace ? tracer_.Start(session.id(), statement_digest)
                  : tracer_.MaybeStart(session.id(), statement_digest);
  Span root = trace != nullptr
                  ? trace->StartSpan("query", "exec", /*parent=*/0,
                                     /*node_id=*/-1,
                                     static_cast<int>(session.subject()))
                  : Span();
  const uint64_t root_span = root.id();

  // The epoch/version pair is read once, up front: every request that starts
  // after a policy or schema mutation returns is keyed past the stale
  // entries, which therefore can never serve it. The key is a borrowed view
  // of the caller's normalized SQL — a cache hit copies no statement text.
  // Pin the store snapshot once, up front: everything this request reads
  // comes from this one immutable version, and the id keys the cache so a
  // write publication retires plans built over the superseded snapshot.
  std::shared_ptr<const Snapshot> snapshot =
      config_.store != nullptr ? config_.store->Current() : nullptr;

  PlanCacheKeyRef key;
  key.normalized_sql = normalized_sql;
  key.subject = session.subject();
  key.catalog_version = catalog_->version();
  key.policy_epoch = policy_->epoch();
  key.net_epoch = config_.net != nullptr ? config_.net->liveness_epoch() : 0;
  key.snapshot_epoch = snapshot != nullptr ? snapshot->id : 0;

  Span probe = trace != nullptr
                   ? trace->StartSpan("cache_probe", "cache", root_span)
                   : Span();
  std::shared_ptr<PreparedPlan> entry = cache_.Get(key);
  CacheOutcome outcome = entry ? CacheOutcome::kHit : CacheOutcome::kMiss;
  if (probe) {
    probe.AnnStr("outcome", outcome == CacheOutcome::kHit ? "hit" : "miss");
    probe.End();
  }
  if (entry == nullptr) {
    auto built =
        BuildPreparedPlan(normalized_sql, ast, session.subject(),
                          key.policy_epoch, key.catalog_version, snapshot,
                          trace.get(), root_span);
    if (!built.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (root) root.AnnStr("error", built.status().ToString());
      return built.status();
    }
    if (policy_->epoch() == key.policy_epoch &&
        catalog_->version() == key.catalog_version &&
        (config_.net == nullptr ||
         config_.net->liveness_epoch() == key.net_epoch) &&
        (config_.store == nullptr ||
         config_.store->snapshot_epoch() == key.snapshot_epoch)) {
      entry = cache_.PutIfAbsent(key, std::move(*built));
    } else {
      // The policy, schema, or network liveness moved while we were
      // planning; the plan is fine for this in-flight request (concurrent
      // with the mutation) but must not be memoized under a key it might
      // no longer be right for.
      entry = std::move(*built);
    }
  }
  double plan_s = SecondsSince(t0);

  auto t1 = Clock::now();
  uint64_t delivered_before =
      config_.net != nullptr ? config_.net->GetStats().bytes_delivered : 0;
  Result<DistributedResult> run = entry->runtime->Run(
      entry->assignment.extended, session.subject(), trace.get(), root_span);

  // Retry-on-failover: a provider died under the cached plan. Retire the
  // entry (the next request re-plans around the down subjects) and recover
  // this request through the minimum-cost authorized alternative assignment
  // — chosen and verified under the *current* policy, never the one the
  // stale plan was built against.
  size_t failovers = 0;
  uint64_t retransfer_bytes = 0;
  double failover_latency_s = 0;
  double planned_cost_usd = entry->assignment.exact_cost.total_usd();
  uint64_t plan_epoch = entry->policy_epoch;
  uint64_t plan_catalog_version = entry->catalog_version;
  if (!run.ok() && run.status().code() == StatusCode::kUnavailable &&
      config_.net != nullptr && config_.max_failovers > 0) {
    cache_.Erase(key);
    // Delta of the shared net counter: under concurrent traffic on the same
    // SimNet this is aggregate attribution, not exact per-request bytes
    // (the failed Run's own accounting does not survive its error).
    retransfer_bytes =
        config_.net->GetStats().bytes_delivered - delivered_before;
    FailoverConfig fc;
    fc.caps = config_.caps;
    fc.key_seed = SplitMix64(config_.key_seed ^ 0xfa170fe3ull ^
                             std::hash<std::string>{}(normalized_sql));
    fc.max_failovers = config_.max_failovers;
    fc.net_policy = config_.net_policy;
    fc.pool = pool_.get();
    fc.morsels = morsels_.get();
    fc.shared_scans = &shared_scans_;
    fc.batch_size = config_.batch_size;
    fc.op_profile = &op_profile_;
    fc.trace = trace.get();
    fc.trace_parent = root_span;
    FailoverExecutor failover(catalog_, subjects_, policy_, prices_,
                              topology_, config_.net, fc);
    {
      std::lock_guard<std::mutex> lock(tables_mu_);
      for (const auto& [rel, table] : tables_) {
        failover.LoadTable(rel, table);
      }
    }
    // The recovery reads the same pinned snapshot the failed run did.
    if (entry->snapshot != nullptr) {
      for (const auto& [rel, table] : entry->snapshot->tables) {
        failover.LoadTable(rel, table.get());
      }
      for (const auto& [rel, seg] : entry->snapshot->cold) {
        (void)seg;
        const Table* t = entry->snapshot->Get(rel);
        if (t != nullptr) failover.LoadTable(rel, t);
      }
    }
    Result<FailoverOutcome> recovered =
        failover.Recover(entry->bound_plan.get(), session.subject());
    if (recovered.ok()) {
      auto outcome_ptr =
          std::make_shared<FailoverOutcome>(std::move(*recovered));
      failovers = outcome_ptr->failovers;
      retransfer_bytes += outcome_ptr->retransfer_bytes;
      failover_latency_s = outcome_ptr->failover_latency_s;
      planned_cost_usd = outcome_ptr->assignment.exact_cost.total_usd();
      plan_epoch = policy_->epoch();
      plan_catalog_version = catalog_->version();
      failovers_.fetch_add(failovers, std::memory_order_relaxed);
      failover_retransfer_bytes_.fetch_add(retransfer_bytes,
                                           std::memory_order_relaxed);
      latency_failover_->Record(failover_latency_s);
      // The result moves out; the outcome keeps the recovered assignment
      // alive for EXPLAIN ANALYZE's predicted-vs-observed rendering.
      run = std::move(outcome_ptr->result);
      if (detail != nullptr) detail->recovered = std::move(outcome_ptr);
    } else {
      run = recovered.status();
    }
  }

  if (!run.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (root) root.AnnStr("error", run.status().ToString());
    return run.status();
  }
  double exec_s = SecondsSince(t1);
  double total_s = SecondsSince(t0);

  rows_returned_.fetch_add(run->result.num_rows(), std::memory_order_relaxed);
  transfer_bytes_.fetch_add(run->total_transfer_bytes,
                            std::memory_order_relaxed);
  messages_.fetch_add(run->num_messages, std::memory_order_relaxed);
  latency_total_->Record(total_s);
  (outcome == CacheOutcome::kHit ? latency_hit_ : latency_miss_)
      ->Record(total_s);
  slow_log_.Record(statement_digest, normalized_sql, total_s,
                   trace != nullptr ? trace->trace_id() : 0);

  if (root) {
    root.AnnInt("rows", static_cast<int64_t>(run->result.num_rows()));
    root.AnnStr("cache", outcome == CacheOutcome::kHit ? "hit" : "miss");
    root.End();
  }
  if (trace != nullptr) {
    if (detail != nullptr) {
      detail->entry = entry;
      detail->trace = trace;
    }
    tracer_.Finish(trace);
  }

  QueryResponse response;
  response.trace = trace;
  response.table = std::move(run->result);
  response.stats.total_s = total_s;
  response.stats.plan_s = plan_s;
  response.stats.exec_s = exec_s;
  response.stats.cache = outcome;
  response.stats.policy_epoch = plan_epoch;
  response.stats.catalog_version = plan_catalog_version;
  response.stats.snapshot_id = key.snapshot_epoch;
  response.stats.result_rows = response.table.num_rows();
  response.stats.transfer_bytes = run->total_transfer_bytes;
  response.stats.num_messages = run->num_messages;
  response.stats.planned_cost_usd = planned_cost_usd;
  response.stats.failovers = failovers;
  response.stats.retransfer_bytes = retransfer_bytes;
  response.stats.net_virtual_s = run->net.virtual_s;
  response.stats.failover_latency_s = failover_latency_s;
  return response;
}

Result<ExplainAnalyzeReport> QueryService::ExplainAnalyzeInternal(
    const std::string& normalized_sql, const AstSelect* ast,
    const Session& session) {
  ExecDetail detail;
  MPQ_ASSIGN_OR_RETURN(QueryResponse resp,
                       ExecuteInternal(normalized_sql, ast, session,
                                       /*force_trace=*/true, &detail));
  if (detail.trace == nullptr || detail.entry == nullptr) {
    return Status::Internal("explain analyze produced no trace");
  }
  // A recovered query reports against the plan that actually ran — the
  // failover's alternative assignment — with estimates re-derived under its
  // refined schemes, not the abandoned cached plan's.
  if (detail.recovered != nullptr) {
    CostModel model(catalog_, prices_, topology_,
                    &detail.recovered->assignment.refined_schemes);
    auto estimates =
        model.EstimatePlan(detail.recovered->assignment.extended.plan.get());
    return RenderExplainAnalyze(detail.recovered->assignment.extended,
                                *catalog_, *subjects_, session.subject(),
                                *detail.trace, estimates);
  }
  return RenderExplainAnalyze(detail.entry->assignment.extended, *catalog_,
                              *subjects_, session.subject(), *detail.trace,
                              detail.entry->estimates);
}

Result<ExplainAnalyzeReport> QueryService::ExplainAnalyze(
    const StatementHandle& stmt, const Session& session) {
  if (stmt.normalized_sql.empty()) {
    return Status::InvalidArgument(
        "explain analyze of an empty statement handle");
  }
  return ExplainAnalyzeInternal(stmt.normalized_sql, stmt.ast.get(), session);
}

Result<ExplainAnalyzeReport> QueryService::ExplainAnalyzeSql(
    const std::string& sql, const Session& session) {
  MPQ_ASSIGN_OR_RETURN(std::string normalized, NormalizeSql(sql));
  return ExplainAnalyzeInternal(normalized, nullptr, session);
}

ServiceMetrics QueryService::Metrics() const {
  ServiceMetrics m;
  m.queries = queries_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  auto cache_stats = cache_.GetStats();
  m.cache_hits = cache_stats.hits;
  m.cache_misses = cache_stats.misses;
  m.cache_insertions = cache_stats.insertions;
  m.cache_evictions = cache_stats.evictions;
  m.cache_entries = cache_stats.entries;
  uint64_t lookups = cache_stats.hits + cache_stats.misses;
  m.hit_rate = lookups == 0
                   ? 0
                   : static_cast<double>(cache_stats.hits) /
                         static_cast<double>(lookups);
  m.rows_returned = rows_returned_.load(std::memory_order_relaxed);
  m.transfer_bytes = transfer_bytes_.load(std::memory_order_relaxed);
  m.messages = messages_.load(std::memory_order_relaxed);
  m.failovers = failovers_.load(std::memory_order_relaxed);
  m.failover_retransfer_bytes =
      failover_retransfer_bytes_.load(std::memory_order_relaxed);
  m.writes = writes_.load(std::memory_order_relaxed);
  m.write_errors = write_errors_.load(std::memory_order_relaxed);
  m.rows_written = rows_written_.load(std::memory_order_relaxed);
  m.counter_ops = counter_ops_.load(std::memory_order_relaxed);
  m.snapshot_epoch =
      config_.store != nullptr ? config_.store->snapshot_epoch() : 0;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    m.admission_waits = admission_waits_;
    m.in_flight_peak = in_flight_peak_;
    m.queue_depth_peak = queue_depth_peak_;
  }
  m.async_queries = async_queries_.load(std::memory_order_relaxed);
  m.sheds = sheds_.load(std::memory_order_relaxed);
  m.cancelled = cancelled_.load(std::memory_order_relaxed);
  if (morsels_ != nullptr) {
    m.morsels_executed = morsels_->morsels_executed();
    m.morsel_queue_depth = morsels_->morsels_pending();
  }
  m.scan_leads = shared_scans_.leads();
  m.scan_attaches = shared_scans_.attaches();
  m.scan_shared_batches = shared_scans_.shared_batches();
  m.total_p50_ms = latency_total_->Quantile(0.50) * 1e3;
  m.total_p95_ms = latency_total_->Quantile(0.95) * 1e3;
  m.total_p99_ms = latency_total_->Quantile(0.99) * 1e3;
  m.hit_p50_ms = latency_hit_->Quantile(0.50) * 1e3;
  m.hit_p95_ms = latency_hit_->Quantile(0.95) * 1e3;
  m.hit_p99_ms = latency_hit_->Quantile(0.99) * 1e3;
  m.miss_p50_ms = latency_miss_->Quantile(0.50) * 1e3;
  m.miss_p95_ms = latency_miss_->Quantile(0.95) * 1e3;
  m.miss_p99_ms = latency_miss_->Quantile(0.99) * 1e3;
  m.failover_p50_ms = latency_failover_->Quantile(0.50) * 1e3;
  m.failover_p95_ms = latency_failover_->Quantile(0.95) * 1e3;
  m.failover_p99_ms = latency_failover_->Quantile(0.99) * 1e3;
  m.ops = op_profile_.Snapshot();
  return m;
}

std::string QueryService::MetricsJson() const { return Metrics().ToJson(); }

}  // namespace mpq

#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "candidates/candidates.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "exec/failover.h"
#include "extend/keys.h"
#include "common/flat_hash.h"
#include "profile/propagate.h"
#include "sql/binder.h"
#include "sql/normalize.h"
#include "sql/parser.h"

namespace mpq {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

size_t QueryService::PlanCacheKeyHash::operator()(
    const PlanCacheKeyRef& k) const {
  uint64_t h = HashBytes(k.normalized_sql);
  h = SplitMix64(h ^ (static_cast<uint64_t>(k.subject) + 1) *
                         0x9e3779b97f4a7c15ull);
  h = SplitMix64(h ^ k.catalog_version * 0xbf58476d1ce4e5b9ull);
  h = SplitMix64(h ^ k.policy_epoch * 0x94d049bb133111ebull);
  h = SplitMix64(h ^ k.net_epoch * 0xd6e8feb86659fd93ull);
  return static_cast<size_t>(h);
}

size_t QueryService::PlanCacheKeyHash::operator()(const PlanCacheKey& k) const {
  return operator()(PlanCacheKeyRef{k.normalized_sql, k.subject,
                                    k.catalog_version, k.policy_epoch,
                                    k.net_epoch});
}

/// Blocks until the in-flight count drops below the cap, then holds a slot
/// for the lifetime of the enclosing Execute.
class QueryService::AdmissionSlot {
 public:
  explicit AdmissionSlot(QueryService* service) : service_(service) {
    std::unique_lock<std::mutex> lock(service_->admission_mu_);
    size_t cap = std::max<size_t>(1, service_->config_.max_in_flight);
    if (service_->in_flight_ >= cap) {
      service_->admission_waits_++;
      service_->admission_cv_.wait(
          lock, [&] { return service_->in_flight_ < cap; });
    }
    service_->in_flight_++;
    service_->in_flight_peak_ =
        std::max(service_->in_flight_peak_, service_->in_flight_);
  }

  ~AdmissionSlot() {
    {
      std::lock_guard<std::mutex> lock(service_->admission_mu_);
      service_->in_flight_--;
    }
    service_->admission_cv_.notify_one();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  QueryService* service_;
};

QueryService::QueryService(const Catalog* catalog,
                           const SubjectRegistry* subjects,
                           const Policy* policy, const PricingTable* prices,
                           const Topology* topology, ServiceConfig config)
    : catalog_(catalog),
      subjects_(subjects),
      policy_(policy),
      prices_(prices),
      topology_(topology),
      config_(config),
      cache_(config.cache_shards, config.cache_capacity_per_shard) {
  if (config_.exec_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.exec_threads);
  }
}

QueryService::~QueryService() = default;

void QueryService::LoadTable(RelId rel, const Table* data) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_[rel] = data;
}

Result<Session> QueryService::OpenSession(SubjectId subject) {
  if (subject == kInvalidSubject || subject >= subjects_->size()) {
    return Status::NotFound("cannot open session for unknown subject");
  }
  return Session(subject, next_session_id_.fetch_add(1));
}

Result<Session> QueryService::OpenSession(const std::string& subject_name) {
  SubjectId subject = subjects_->Find(subject_name);
  if (subject == kInvalidSubject) {
    return Status::NotFound("cannot open session for unknown subject: " +
                            subject_name);
  }
  return OpenSession(subject);
}

Result<StatementHandle> QueryService::Prepare(const std::string& sql) {
  MPQ_ASSIGN_OR_RETURN(std::string normalized, NormalizeSql(sql));
  MPQ_ASSIGN_OR_RETURN(AstSelect ast, ParseSelect(normalized));
  StatementHandle handle;
  handle.id = next_statement_id_.fetch_add(1);
  handle.normalized_sql = std::move(normalized);
  handle.ast = std::make_shared<const AstSelect>(std::move(ast));
  return handle;
}

Result<QueryResponse> QueryService::Execute(const StatementHandle& stmt,
                                            const Session& session) {
  if (stmt.normalized_sql.empty()) {
    return Status::InvalidArgument("execute of an empty statement handle");
  }
  return ExecuteInternal(stmt.normalized_sql, stmt.ast.get(), session);
}

Result<QueryResponse> QueryService::ExecuteSql(const std::string& sql,
                                               const Session& session) {
  MPQ_ASSIGN_OR_RETURN(std::string normalized, NormalizeSql(sql));
  // Parsing is deferred: a warm cache serves the query from the normalized
  // text alone.
  return ExecuteInternal(normalized, nullptr, session);
}

Result<std::shared_ptr<QueryService::PreparedPlan>>
QueryService::BuildPreparedPlan(const std::string& normalized_sql,
                                const AstSelect* ast, SubjectId subject,
                                uint64_t policy_epoch,
                                uint64_t catalog_version) {
  AstSelect parsed;
  if (ast == nullptr) {
    MPQ_ASSIGN_OR_RETURN(parsed, ParseSelect(normalized_sql));
    ast = &parsed;
  }

  auto entry = std::make_shared<PreparedPlan>();
  entry->policy_epoch = policy_epoch;
  entry->catalog_version = catalog_version;

  // Bind + profile annotation.
  MPQ_ASSIGN_OR_RETURN(entry->bound_plan, BindSelect(*ast, *catalog_));
  MPQ_RETURN_NOT_OK(
      DerivePlaintextNeeds(entry->bound_plan.get(), *catalog_, config_.caps));
  MPQ_RETURN_NOT_OK(AnnotatePlan(entry->bound_plan.get(), *catalog_));

  // The session subject receives the result: it needs at least encrypted
  // visibility over every result attribute (the extension layer encrypts
  // the recipient's encrypted-only attributes before delivery). Checking
  // here turns "no authorized delivery exists" into a crisp kUnauthorized
  // instead of a downstream optimizer failure.
  const RelationProfile& root_profile = entry->bound_plan->profile;
  AttrSet result_attrs;
  root_profile.vp.Union(root_profile.ve).ForEach([&](AttrId a) {
    // Derived outputs (count(*), aliases) belong to no relation and are not
    // grantable; their inputs are authorization-checked where computed.
    if (catalog_->RelationOf(a) != kInvalidRel) result_attrs.Insert(a);
  });
  AttrSet recipient_view =
      policy_->PlainView(subject).Union(policy_->EncView(subject));
  if (!result_attrs.IsSubsetOf(recipient_view)) {
    AttrSet missing = result_attrs.Difference(recipient_view);
    return Status::Unauthorized(StrFormat(
        "%s is not authorized to receive the query result: no visibility "
        "over [%s]",
        subjects_->Name(subject).c_str(),
        missing.ToString(catalog_->attrs()).c_str()));
  }

  // Candidates + minimum-cost authorized assignment, routing around any
  // subject the network currently reports down.
  SubjectSet excluded;
  if (config_.net != nullptr) {
    for (SubjectId s : config_.net->DownSubjects()) excluded.Insert(s);
  }
  MPQ_ASSIGN_OR_RETURN(
      CandidatePlan cp,
      ComputeCandidates(entry->bound_plan.get(), *policy_,
                        /*require_nonempty=*/true,
                        excluded.empty() ? nullptr : &excluded));
  SchemeMap schemes =
      AnalyzeSchemes(entry->bound_plan.get(), *catalog_, config_.caps);
  CostModel cost_model(catalog_, prices_, topology_, &schemes);
  AssignmentOptimizer optimizer(policy_, &cost_model);
  MPQ_ASSIGN_OR_RETURN(
      entry->assignment,
      optimizer.Optimize(entry->bound_plan.get(), cp, subject));
  // Defense in depth: never cache a plan that does not verify under the
  // policy state it will be keyed by.
  MPQ_RETURN_NOT_OK(
      VerifyAuthorizedAssignment(entry->assignment.extended, *policy_));

  // Keys + a runtime ready for repeated concurrent execution.
  entry->keys = DeriveQueryPlanKeys(entry->assignment.extended);
  entry->runtime = std::make_unique<DistributedRuntime>(catalog_, subjects_);
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (const auto& [rel, table] : tables_) {
      entry->runtime->LoadTableRef(rel, table);
    }
  }
  uint64_t seed = SplitMix64(config_.key_seed ^
                             std::hash<std::string>{}(normalized_sql));
  seed = SplitMix64(seed ^
                    (static_cast<uint64_t>(subject) + 1) * 0x100000001b3ull ^
                    policy_epoch);
  entry->runtime->DistributeKeys(entry->keys, subject, seed);
  entry->runtime->SetCryptoPlan(
      MakeCryptoPlan(entry->assignment.refined_schemes, entry->keys));
  entry->runtime->SetThreadPool(pool_.get());
  entry->runtime->SetBatchSize(config_.batch_size);
  entry->runtime->SetNetwork(config_.net);
  entry->runtime->SetNetPolicy(config_.net_policy);
  entry->runtime->SetOpProfile(&op_profile_);
  return entry;
}

Result<QueryResponse> QueryService::ExecuteInternal(
    const std::string& normalized_sql, const AstSelect* ast,
    const Session& session) {
  auto t0 = Clock::now();
  if (session.subject() == kInvalidSubject ||
      session.subject() >= subjects_->size()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("execute without a valid session");
  }
  AdmissionSlot slot(this);
  queries_.fetch_add(1, std::memory_order_relaxed);

  // The epoch/version pair is read once, up front: every request that starts
  // after a policy or schema mutation returns is keyed past the stale
  // entries, which therefore can never serve it. The key is a borrowed view
  // of the caller's normalized SQL — a cache hit copies no statement text.
  PlanCacheKeyRef key;
  key.normalized_sql = normalized_sql;
  key.subject = session.subject();
  key.catalog_version = catalog_->version();
  key.policy_epoch = policy_->epoch();
  key.net_epoch = config_.net != nullptr ? config_.net->liveness_epoch() : 0;

  std::shared_ptr<PreparedPlan> entry = cache_.Get(key);
  CacheOutcome outcome = entry ? CacheOutcome::kHit : CacheOutcome::kMiss;
  if (entry == nullptr) {
    auto built = BuildPreparedPlan(normalized_sql, ast, session.subject(),
                                   key.policy_epoch, key.catalog_version);
    if (!built.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return built.status();
    }
    if (policy_->epoch() == key.policy_epoch &&
        catalog_->version() == key.catalog_version &&
        (config_.net == nullptr ||
         config_.net->liveness_epoch() == key.net_epoch)) {
      entry = cache_.PutIfAbsent(key, std::move(*built));
    } else {
      // The policy, schema, or network liveness moved while we were
      // planning; the plan is fine for this in-flight request (concurrent
      // with the mutation) but must not be memoized under a key it might
      // no longer be right for.
      entry = std::move(*built);
    }
  }
  double plan_s = SecondsSince(t0);

  auto t1 = Clock::now();
  uint64_t delivered_before =
      config_.net != nullptr ? config_.net->GetStats().bytes_delivered : 0;
  Result<DistributedResult> run =
      entry->runtime->Run(entry->assignment.extended, session.subject());

  // Retry-on-failover: a provider died under the cached plan. Retire the
  // entry (the next request re-plans around the down subjects) and recover
  // this request through the minimum-cost authorized alternative assignment
  // — chosen and verified under the *current* policy, never the one the
  // stale plan was built against.
  size_t failovers = 0;
  uint64_t retransfer_bytes = 0;
  double planned_cost_usd = entry->assignment.exact_cost.total_usd();
  uint64_t plan_epoch = entry->policy_epoch;
  uint64_t plan_catalog_version = entry->catalog_version;
  if (!run.ok() && run.status().code() == StatusCode::kUnavailable &&
      config_.net != nullptr && config_.max_failovers > 0) {
    cache_.Erase(key);
    // Delta of the shared net counter: under concurrent traffic on the same
    // SimNet this is aggregate attribution, not exact per-request bytes
    // (the failed Run's own accounting does not survive its error).
    retransfer_bytes =
        config_.net->GetStats().bytes_delivered - delivered_before;
    FailoverConfig fc;
    fc.caps = config_.caps;
    fc.key_seed = SplitMix64(config_.key_seed ^ 0xfa170fe3ull ^
                             std::hash<std::string>{}(normalized_sql));
    fc.max_failovers = config_.max_failovers;
    fc.net_policy = config_.net_policy;
    fc.pool = pool_.get();
    fc.batch_size = config_.batch_size;
    fc.op_profile = &op_profile_;
    FailoverExecutor failover(catalog_, subjects_, policy_, prices_,
                              topology_, config_.net, fc);
    {
      std::lock_guard<std::mutex> lock(tables_mu_);
      for (const auto& [rel, table] : tables_) {
        failover.LoadTable(rel, table);
      }
    }
    Result<FailoverOutcome> recovered =
        failover.Recover(entry->bound_plan.get(), session.subject());
    if (recovered.ok()) {
      failovers = recovered->failovers;
      retransfer_bytes += recovered->retransfer_bytes;
      planned_cost_usd = recovered->assignment.exact_cost.total_usd();
      plan_epoch = policy_->epoch();
      plan_catalog_version = catalog_->version();
      failovers_.fetch_add(failovers, std::memory_order_relaxed);
      failover_retransfer_bytes_.fetch_add(retransfer_bytes,
                                           std::memory_order_relaxed);
      latency_failover_.Record(recovered->failover_latency_s);
      run = std::move(recovered->result);
    } else {
      run = recovered.status();
    }
  }

  if (!run.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return run.status();
  }
  double exec_s = SecondsSince(t1);
  double total_s = SecondsSince(t0);

  rows_returned_.fetch_add(run->result.num_rows(), std::memory_order_relaxed);
  transfer_bytes_.fetch_add(run->total_transfer_bytes,
                            std::memory_order_relaxed);
  messages_.fetch_add(run->num_messages, std::memory_order_relaxed);
  latency_total_.Record(total_s);
  (outcome == CacheOutcome::kHit ? latency_hit_ : latency_miss_)
      .Record(total_s);

  QueryResponse response;
  response.table = std::move(run->result);
  response.stats.total_s = total_s;
  response.stats.plan_s = plan_s;
  response.stats.exec_s = exec_s;
  response.stats.cache = outcome;
  response.stats.policy_epoch = plan_epoch;
  response.stats.catalog_version = plan_catalog_version;
  response.stats.result_rows = response.table.num_rows();
  response.stats.transfer_bytes = run->total_transfer_bytes;
  response.stats.num_messages = run->num_messages;
  response.stats.planned_cost_usd = planned_cost_usd;
  response.stats.failovers = failovers;
  response.stats.retransfer_bytes = retransfer_bytes;
  response.stats.net_virtual_s = run->net.virtual_s;
  return response;
}

ServiceMetrics QueryService::Metrics() const {
  ServiceMetrics m;
  m.queries = queries_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  auto cache_stats = cache_.GetStats();
  m.cache_hits = cache_stats.hits;
  m.cache_misses = cache_stats.misses;
  m.cache_insertions = cache_stats.insertions;
  m.cache_evictions = cache_stats.evictions;
  m.cache_entries = cache_stats.entries;
  uint64_t lookups = cache_stats.hits + cache_stats.misses;
  m.hit_rate = lookups == 0
                   ? 0
                   : static_cast<double>(cache_stats.hits) /
                         static_cast<double>(lookups);
  m.rows_returned = rows_returned_.load(std::memory_order_relaxed);
  m.transfer_bytes = transfer_bytes_.load(std::memory_order_relaxed);
  m.messages = messages_.load(std::memory_order_relaxed);
  m.failovers = failovers_.load(std::memory_order_relaxed);
  m.failover_retransfer_bytes =
      failover_retransfer_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    m.admission_waits = admission_waits_;
    m.in_flight_peak = in_flight_peak_;
  }
  m.total_p50_ms = latency_total_.Quantile(0.50) * 1e3;
  m.total_p95_ms = latency_total_.Quantile(0.95) * 1e3;
  m.total_p99_ms = latency_total_.Quantile(0.99) * 1e3;
  m.hit_p50_ms = latency_hit_.Quantile(0.50) * 1e3;
  m.hit_p95_ms = latency_hit_.Quantile(0.95) * 1e3;
  m.hit_p99_ms = latency_hit_.Quantile(0.99) * 1e3;
  m.miss_p50_ms = latency_miss_.Quantile(0.50) * 1e3;
  m.miss_p95_ms = latency_miss_.Quantile(0.95) * 1e3;
  m.miss_p99_ms = latency_miss_.Quantile(0.99) * 1e3;
  m.failover_p50_ms = latency_failover_.Quantile(0.50) * 1e3;
  m.failover_p95_ms = latency_failover_.Quantile(0.95) * 1e3;
  m.failover_p99_ms = latency_failover_.Quantile(0.99) * 1e3;
  m.ops = op_profile_.Snapshot();
  return m;
}

std::string QueryService::MetricsJson() const { return Metrics().ToJson(); }

}  // namespace mpq

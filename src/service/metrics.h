// Serving metrics: lock-free log-bucketed latency histograms (p50/p95/p99),
// cache and admission counters, and a JSON dump for dashboards and the
// benchmark harness.

#ifndef MPQ_SERVICE_METRICS_H_
#define MPQ_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "profile/op_stats.h"

namespace mpq {

/// Fixed-bucket latency histogram over [10 ns, ~86 s), eight log-spaced
/// sub-buckets per octave (≤ ~9% relative quantile error). The range starts
/// far below a microsecond so sub-millisecond warm-cache hits land in real
/// buckets instead of the underflow bucket — tests/service_test.cc pins
/// this resolution. Record is a single relaxed atomic increment, safe from
/// any number of threads.
class LatencyHistogram {
 public:
  void Record(double seconds);

  /// Estimated quantile in seconds (`p` in [0, 1]); 0 when empty. Linear
  /// interpolation inside the winning bucket.
  double Quantile(double p) const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  static constexpr size_t kSubBuckets = 8;   ///< per octave
  static constexpr size_t kOctaves = 33;     ///< 10 ns << 33 ≈ 86 s
  static constexpr size_t kBuckets = kSubBuckets * kOctaves + 2;  // ± overflow

  static size_t BucketOf(double seconds);
  static double BucketLowerBound(size_t bucket);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
};

/// A point-in-time snapshot of a QueryService's counters (plain values,
/// safe to copy around).
struct ServiceMetrics {
  uint64_t queries = 0;        ///< Execute calls that reached execution.
  uint64_t errors = 0;         ///< Execute calls returning non-OK.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_insertions = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  uint64_t rows_returned = 0;
  uint64_t transfer_bytes = 0;
  uint64_t messages = 0;
  /// Executes that blocked on the in-flight cap.
  uint64_t admission_waits = 0;
  size_t in_flight_peak = 0;
  double hit_rate = 0;  ///< hits / (hits + misses), 0 when idle.

  // Failover accounting (queries recovered via an alternative authorized
  // assignment after a provider failure).
  uint64_t failovers = 0;
  uint64_t failover_retransfer_bytes = 0;

  // End-to-end Execute latency, split by cache outcome (milliseconds).
  double total_p50_ms = 0, total_p95_ms = 0, total_p99_ms = 0;
  double hit_p50_ms = 0, hit_p95_ms = 0, hit_p99_ms = 0;
  double miss_p50_ms = 0, miss_p95_ms = 0, miss_p99_ms = 0;
  // Added latency of recovered queries: failure detection → recovered
  // result (milliseconds).
  double failover_p50_ms = 0, failover_p95_ms = 0, failover_p99_ms = 0;

  /// Per-operator engine counters (filter/join/groupby/encrypt/… wall
  /// nanoseconds and row volumes) aggregated over every query this service
  /// executed — the observable for hot-path regressions in serving.
  OpProfileSnapshot ops;

  /// One-line-per-field JSON object.
  std::string ToJson() const;
};

}  // namespace mpq

#endif  // MPQ_SERVICE_METRICS_H_

// Serving metrics: lock-free log-bucketed latency histograms (p50/p95/p99),
// cache and admission counters, and a JSON dump for dashboards and the
// benchmark harness.

#ifndef MPQ_SERVICE_METRICS_H_
#define MPQ_SERVICE_METRICS_H_

#include <cstdint>
#include <string>

// LatencyHistogram lives in the unified metrics registry now
// (obs/metrics_registry.h); this include keeps the historical spelling
// `service/metrics.h` working for existing users of the histogram.
#include "obs/metrics_registry.h"
#include "profile/op_stats.h"

namespace mpq {

/// A point-in-time snapshot of a QueryService's counters (plain values,
/// safe to copy around).
struct ServiceMetrics {
  uint64_t queries = 0;        ///< Execute calls that reached execution.
  uint64_t errors = 0;         ///< Execute calls returning non-OK.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_insertions = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  uint64_t rows_returned = 0;
  uint64_t transfer_bytes = 0;
  uint64_t messages = 0;
  /// Executes that blocked on the in-flight cap.
  uint64_t admission_waits = 0;
  size_t in_flight_peak = 0;
  double hit_rate = 0;  ///< hits / (hits + misses), 0 when idle.

  // Async serving path (ExecuteAsync) and morsel scheduling.
  uint64_t async_queries = 0;  ///< Async submissions accepted.
  uint64_t sheds = 0;          ///< Async submissions rejected at the cap.
  uint64_t cancelled = 0;      ///< Async queries cancelled before running.
  size_t queue_depth_peak = 0;  ///< Peak in-flight + queued async queries.
  uint64_t morsels_executed = 0;   ///< Morsel tasks run by the scheduler.
  uint64_t morsel_queue_depth = 0;  ///< Morsels registered, not yet run.

  // Inter-query shared scans (same-snapshot base-scan coalescing).
  uint64_t scan_leads = 0;     ///< Scans that started a shared claim loop.
  uint64_t scan_attaches = 0;  ///< Scans that joined one in flight.
  uint64_t scan_shared_batches = 0;  ///< Batch reads serving >= 2 queries.

  // Failover accounting (queries recovered via an alternative authorized
  // assignment after a provider failure).
  uint64_t failovers = 0;
  uint64_t failover_retransfer_bytes = 0;

  // Write path (ExecuteWrite + MRV counter APIs).
  uint64_t writes = 0;        ///< Write statements attempted.
  uint64_t write_errors = 0;  ///< Write statements returning non-OK.
  uint64_t rows_written = 0;  ///< Rows inserted/updated/deleted.
  uint64_t counter_ops = 0;   ///< MRV counter API calls.
  uint64_t snapshot_epoch = 0;  ///< Current store snapshot id (0 = no store).

  // End-to-end Execute latency, split by cache outcome (milliseconds).
  double total_p50_ms = 0, total_p95_ms = 0, total_p99_ms = 0;
  double hit_p50_ms = 0, hit_p95_ms = 0, hit_p99_ms = 0;
  double miss_p50_ms = 0, miss_p95_ms = 0, miss_p99_ms = 0;
  // Added latency of recovered queries: failure detection → recovered
  // result (milliseconds).
  double failover_p50_ms = 0, failover_p95_ms = 0, failover_p99_ms = 0;

  /// Per-operator engine counters (filter/join/groupby/encrypt/… wall
  /// nanoseconds and row volumes) aggregated over every query this service
  /// executed — the observable for hot-path regressions in serving.
  OpProfileSnapshot ops;

  /// One-line-per-field JSON object.
  std::string ToJson() const;
};

}  // namespace mpq

#endif  // MPQ_SERVICE_METRICS_H_

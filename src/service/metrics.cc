#include "service/metrics.h"

#include "common/json_util.h"

namespace mpq {

std::string ServiceMetrics::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Key("queries")
      .UInt(queries)
      .Key("errors")
      .UInt(errors)
      .Key("cache_hits")
      .UInt(cache_hits)
      .Key("cache_misses")
      .UInt(cache_misses)
      .Key("cache_insertions")
      .UInt(cache_insertions)
      .Key("cache_evictions")
      .UInt(cache_evictions)
      .Key("cache_entries")
      .UInt(cache_entries)
      .Key("hit_rate")
      .Double(hit_rate)
      .Key("rows_returned")
      .UInt(rows_returned)
      .Key("transfer_bytes")
      .UInt(transfer_bytes)
      .Key("messages")
      .UInt(messages)
      .Key("admission_waits")
      .UInt(admission_waits)
      .Key("in_flight_peak")
      .UInt(in_flight_peak)
      .Key("failovers")
      .UInt(failovers)
      .Key("failover_retransfer_bytes")
      .UInt(failover_retransfer_bytes)
      .Key("total_p50_ms")
      .Double(total_p50_ms)
      .Key("total_p95_ms")
      .Double(total_p95_ms)
      .Key("total_p99_ms")
      .Double(total_p99_ms)
      .Key("hit_p50_ms")
      .Double(hit_p50_ms)
      .Key("hit_p95_ms")
      .Double(hit_p95_ms)
      .Key("hit_p99_ms")
      .Double(hit_p99_ms)
      .Key("miss_p50_ms")
      .Double(miss_p50_ms)
      .Key("miss_p95_ms")
      .Double(miss_p95_ms)
      .Key("miss_p99_ms")
      .Double(miss_p99_ms)
      .Key("failover_p50_ms")
      .Double(failover_p50_ms)
      .Key("failover_p95_ms")
      .Double(failover_p95_ms)
      .Key("failover_p99_ms")
      .Double(failover_p99_ms)
      .Key("ops");
  ops.WriteJson(&w);
  w.EndObject();
  return w.TakeString();
}

}  // namespace mpq

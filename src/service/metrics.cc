#include "service/metrics.h"

#include <cmath>

#include "common/json_util.h"

namespace mpq {

namespace {
constexpr double kMinLatencyS = 1e-8;  // bucket 1 lower bound
}  // namespace

size_t LatencyHistogram::BucketOf(double seconds) {
  if (!(seconds > kMinLatencyS)) return 0;  // underflow (also NaN)
  double octaves = std::log2(seconds / kMinLatencyS);
  auto idx = static_cast<size_t>(octaves * kSubBuckets);
  if (idx >= kSubBuckets * kOctaves) return kBuckets - 1;  // overflow
  return idx + 1;
}

double LatencyHistogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return kMinLatencyS *
         std::exp2(static_cast<double>(bucket - 1) / kSubBuckets);
}

void LatencyHistogram::Record(double seconds) {
  buckets_[BucketOf(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double p) const {
  uint64_t total = 0;
  std::array<uint64_t, kBuckets> snap;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the target observation (1-based, ceil).
  auto rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (snap[i] == 0) continue;
    if (seen + snap[i] >= rank) {
      double lo = BucketLowerBound(i);
      double hi = i + 1 < kBuckets ? BucketLowerBound(i + 1) : lo * 2;
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(snap[i]);
      return lo + (hi - lo) * frac;
    }
    seen += snap[i];
  }
  return BucketLowerBound(kBuckets - 1);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

std::string ServiceMetrics::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Key("queries")
      .UInt(queries)
      .Key("errors")
      .UInt(errors)
      .Key("cache_hits")
      .UInt(cache_hits)
      .Key("cache_misses")
      .UInt(cache_misses)
      .Key("cache_insertions")
      .UInt(cache_insertions)
      .Key("cache_evictions")
      .UInt(cache_evictions)
      .Key("cache_entries")
      .UInt(cache_entries)
      .Key("hit_rate")
      .Double(hit_rate)
      .Key("rows_returned")
      .UInt(rows_returned)
      .Key("transfer_bytes")
      .UInt(transfer_bytes)
      .Key("messages")
      .UInt(messages)
      .Key("admission_waits")
      .UInt(admission_waits)
      .Key("in_flight_peak")
      .UInt(in_flight_peak)
      .Key("failovers")
      .UInt(failovers)
      .Key("failover_retransfer_bytes")
      .UInt(failover_retransfer_bytes)
      .Key("total_p50_ms")
      .Double(total_p50_ms)
      .Key("total_p95_ms")
      .Double(total_p95_ms)
      .Key("total_p99_ms")
      .Double(total_p99_ms)
      .Key("hit_p50_ms")
      .Double(hit_p50_ms)
      .Key("hit_p95_ms")
      .Double(hit_p95_ms)
      .Key("hit_p99_ms")
      .Double(hit_p99_ms)
      .Key("miss_p50_ms")
      .Double(miss_p50_ms)
      .Key("miss_p95_ms")
      .Double(miss_p95_ms)
      .Key("miss_p99_ms")
      .Double(miss_p99_ms)
      .Key("failover_p50_ms")
      .Double(failover_p50_ms)
      .Key("failover_p95_ms")
      .Double(failover_p95_ms)
      .Key("failover_p99_ms")
      .Double(failover_p99_ms)
      .Key("ops");
  ops.WriteJson(&w);
  w.EndObject();
  return w.TakeString();
}

}  // namespace mpq

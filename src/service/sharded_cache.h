// A mutex-striped LRU cache: the key space is hashed over N independent
// shards so concurrent sessions touching different statements never contend
// on one lock. Values are shared_ptrs — a hit stays valid for the caller
// even if the entry is evicted a microsecond later.
//
// Each shard is a FlatHashIndex over an entry slab with an intrusive LRU
// list: no per-entry node allocation, no rehash-time key moves, and —
// because the index is keyed by cached hash + equality predicate — probes
// are heterogeneous: a lookup type carrying string_views (e.g. the serving
// layer's PlanCacheKeyRef) probes without ever constructing an owned Key;
// the owned Key is built exactly once, on actual insertion.

#ifndef MPQ_SERVICE_SHARDED_CACHE_H_
#define MPQ_SERVICE_SHARDED_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/flat_hash.h"

namespace mpq {

/// `Hash` must accept both Key and any probe type Q used with Get/
/// PutIfAbsent/Erase, hashing them consistently (Hash{}(q) == Hash{}(k)
/// whenever q == k); Q must be ==-comparable against Key and Key must be
/// constructible from Q.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  /// `num_shards` mutex-striped shards of `capacity_per_shard` LRU entries
  /// each. Both are clamped to at least 1.
  ShardedLruCache(size_t num_shards, size_t capacity_per_shard)
      : capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
    if (num_shards == 0) num_shards = 1;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// The cached value, moved to most-recently-used; nullptr on miss.
  template <typename Q>
  std::shared_ptr<Value> Get(const Q& query) {
    uint64_t hash = Hash{}(query);
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    uint32_t id = FindEntry(shard, hash, query);
    if (id == FlatHashIndex::kNotFound) {
      shard.misses++;
      return nullptr;
    }
    shard.hits++;
    MoveToFront(shard, id);
    return shard.slab[id].value;
  }

  /// Inserts `value` unless an entry equal to `query` is already present;
  /// returns the entry now cached (the existing one on a lost race). The
  /// owned Key is constructed from `query` only when actually inserting.
  /// Evicts the least-recently-used entry of the shard when over capacity.
  template <typename Q>
  std::shared_ptr<Value> PutIfAbsent(const Q& query,
                                     std::shared_ptr<Value> value) {
    uint64_t hash = Hash{}(query);
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    bool inserted = false;
    uint32_t id = shard.index.FindOrInsert(
        hash,
        [&](uint32_t candidate) { return shard.slab[candidate].key == query; },
        [&] {
          uint32_t slot = AcquireSlot(shard);
          Entry& e = shard.slab[slot];
          e.key = Key(query);
          e.value = std::move(value);
          e.hash = hash;
          inserted = true;
          return slot;
        });
    MoveToFront(shard, id);
    if (!inserted) return shard.slab[id].value;
    shard.insertions++;
    shard.entries++;
    if (shard.entries > capacity_) EvictTail(shard);
    return shard.slab[id].value;
  }

  /// Drops the entry equal to `query`, if any; returns whether one was
  /// dropped. The serving layer uses this to retire a plan whose assignee
  /// died — the next request re-plans around the down subjects.
  template <typename Q>
  bool Erase(const Q& query) {
    uint64_t hash = Hash{}(query);
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    uint32_t id = FindEntry(shard, hash, query);
    if (id == FlatHashIndex::kNotFound) return false;
    shard.index.Erase(hash,
                      [&](uint32_t candidate) { return candidate == id; });
    Detach(shard, id);
    ReleaseSlot(shard, id);
    shard.entries--;
    return true;
  }

  /// Drops every entry (stat counters survive).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->index.Clear();
      shard->slab.clear();
      shard->free.clear();
      shard->head = shard->tail = kNil;
      shard->entries = 0;
    }
  }

  /// Aggregated counters across shards.
  Stats GetStats() const {
    Stats out;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      out.hits += shard->hits;
      out.misses += shard->misses;
      out.insertions += shard->insertions;
      out.evictions += shard->evictions;
      out.entries += shard->entries;
    }
    return out;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Entry {
    Key key{};
    std::shared_ptr<Value> value;
    uint64_t hash = 0;
    uint32_t prev = kNil;  ///< Towards the MRU head.
    uint32_t next = kNil;  ///< Towards the LRU tail.
  };

  struct Shard {
    mutable std::mutex mu;
    FlatHashIndex index;
    std::vector<Entry> slab;
    std::vector<uint32_t> free;  ///< Recyclable slab slots.
    uint32_t head = kNil;        ///< Most recently used.
    uint32_t tail = kNil;        ///< Least recently used.
    size_t entries = 0;
    uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  };

  template <typename Q>
  static uint32_t FindEntry(Shard& shard, uint64_t hash, const Q& query) {
    return shard.index.Find(hash, [&](uint32_t candidate) {
      return shard.slab[candidate].key == query;
    });
  }

  /// Unlinks entry `id` from the LRU list.
  static void Detach(Shard& shard, uint32_t id) {
    Entry& e = shard.slab[id];
    if (e.prev != kNil) {
      shard.slab[e.prev].next = e.next;
    } else if (shard.head == id) {
      shard.head = e.next;
    }
    if (e.next != kNil) {
      shard.slab[e.next].prev = e.prev;
    } else if (shard.tail == id) {
      shard.tail = e.prev;
    }
    e.prev = e.next = kNil;
  }

  /// Makes entry `id` the MRU head (detaching it first if linked).
  static void MoveToFront(Shard& shard, uint32_t id) {
    if (shard.head == id) return;
    Detach(shard, id);
    Entry& e = shard.slab[id];
    e.next = shard.head;
    if (shard.head != kNil) shard.slab[shard.head].prev = id;
    shard.head = id;
    if (shard.tail == kNil) shard.tail = id;
  }

  static uint32_t AcquireSlot(Shard& shard) {
    if (!shard.free.empty()) {
      uint32_t slot = shard.free.back();
      shard.free.pop_back();
      return slot;
    }
    shard.slab.emplace_back();
    return static_cast<uint32_t>(shard.slab.size() - 1);
  }

  static void ReleaseSlot(Shard& shard, uint32_t id) {
    shard.slab[id] = Entry{};
    shard.free.push_back(id);
  }

  void EvictTail(Shard& shard) {
    uint32_t victim = shard.tail;
    if (victim == kNil) return;
    shard.index.Erase(shard.slab[victim].hash,
                      [&](uint32_t candidate) { return candidate == victim; });
    Detach(shard, victim);
    ReleaseSlot(shard, victim);
    shard.entries--;
    shard.evictions++;
  }

  Shard& ShardFor(uint64_t hash) {
    // Re-mix before striping: Hash may be weak (std::hash<int> is the
    // identity), and the in-shard index masks the raw hash's low bits, so
    // shard choice must come from decorrelated bits either way.
    return *shards_[HashMix64(hash ^ 0x5ca1ab1e) % shards_.size()];
  }

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mpq

#endif  // MPQ_SERVICE_SHARDED_CACHE_H_

// A mutex-striped LRU cache: the key space is hashed over N independent
// shards so concurrent sessions touching different statements never contend
// on one lock. Values are shared_ptrs — a hit stays valid for the caller even
// if the entry is evicted a microsecond later.

#ifndef MPQ_SERVICE_SHARDED_CACHE_H_
#define MPQ_SERVICE_SHARDED_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mpq {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  /// `num_shards` mutex-striped shards of `capacity_per_shard` LRU entries
  /// each. Both are clamped to at least 1.
  ShardedLruCache(size_t num_shards, size_t capacity_per_shard)
      : capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
    if (num_shards == 0) num_shards = 1;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// The cached value, moved to most-recently-used; nullptr on miss.
  std::shared_ptr<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      shard.misses++;
      return nullptr;
    }
    shard.hits++;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Inserts `value` unless `key` is already present; returns the entry now
  /// cached under `key` (the existing one on a lost race). Evicts the
  /// least-recently-used entry of the shard when over capacity.
  std::shared_ptr<Value> PutIfAbsent(const Key& key,
                                     std::shared_ptr<Value> value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    shard.insertions++;
    if (shard.lru.size() > capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      shard.evictions++;
    }
    return shard.lru.front().second;
  }

  /// Drops the entry under `key`, if any; returns whether one was dropped.
  /// The serving layer uses this to retire a plan whose assignee died —
  /// the next request re-plans around the down subjects.
  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  /// Drops every entry (stat counters survive).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  /// Aggregated counters across shards.
  Stats GetStats() const {
    Stats out;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      out.hits += shard->hits;
      out.misses += shard->misses;
      out.insertions += shard->insertions;
      out.evictions += shard->evictions;
      out.entries += shard->lru.size();
    }
    return out;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<Key, std::shared_ptr<Value>>> lru;
    std::unordered_map<Key,
                       typename std::list<std::pair<
                           Key, std::shared_ptr<Value>>>::iterator,
                       Hash>
        index;
    uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mpq

#endif  // MPQ_SERVICE_SHARDED_CACHE_H_

#include "service/loadgen.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/rng.h"

namespace mpq {

namespace {

/// Cells equal under the comparison policy: plaintext always byte-exact;
/// ciphertexts byte-exact when strict, length-only otherwise (failover
/// re-keys attempts, so recovered ciphertexts differ byte-wise from the
/// reference while still decrypting to the same plaintext).
bool CellsMatch(const Cell& a, const Cell& b, bool strict_enc) {
  if (a.is_plain() != b.is_plain()) return false;
  if (a.is_plain()) return a.plain() == b.plain();
  if (strict_enc) return a.enc() == b.enc();
  return a.enc().scheme == b.enc().scheme &&
         a.enc().blob.size() == b.enc().blob.size();
}

bool TablesMatch(const Table& a, const Table& b, bool strict_enc) {
  if (a.num_columns() != b.num_columns() || a.num_rows() != b.num_rows()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.columns()[c].attr != b.columns()[c].attr ||
        a.columns()[c].encrypted != b.columns()[c].encrypted) {
      return false;
    }
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!CellsMatch(a.row(r)[c], b.row(r)[c], strict_enc)) return false;
    }
  }
  return true;
}

/// One request waiting for a virtual server.
struct Waiting {
  double arrival_s = 0;
  size_t stmt = 0;
};

/// One request occupying a virtual server until `completion_s`.
struct InService {
  double completion_s = 0;
  bool operator>(const InService& o) const {
    return completion_s > o.completion_s;
  }
};

double Percentile(std::vector<double>* sorted_into, double q) {
  if (sorted_into->empty()) return 0;
  std::sort(sorted_into->begin(), sorted_into->end());
  size_t idx = static_cast<size_t>(q * (sorted_into->size() - 1) + 0.5);
  return (*sorted_into)[std::min(idx, sorted_into->size() - 1)];
}

}  // namespace

Result<LoadGenReport> RunOpenLoopLoad(
    QueryService* service, const Session& session,
    const std::vector<std::string>& statements, const LoadGenConfig& config) {
  if (statements.empty()) {
    return Status::InvalidArgument("open-loop load needs >= 1 statement");
  }
  LoadGenReport report;

  // Reference responses, one per statement: the correctness baseline every
  // simulated response is compared against. Repeated service executions of
  // one statement are byte-stable (deterministic nonce derivation; proven
  // by the warm-hit identity tests), so reference comparison is exact
  // unless a crash scenario re-keys (strict_enc_compare = false then).
  std::vector<Table> references;
  references.reserve(statements.size());
  for (const std::string& sql : statements) {
    MPQ_ASSIGN_OR_RETURN(QueryResponse ref, service->ExecuteSql(sql, session));
    references.push_back(std::move(ref.table));
  }

  ServiceMetrics before = service->Metrics();

  // The arrival schedule: lognormal gaps with E[gap] = mean_interarrival_s
  // (mu = ln(mean) - sigma^2/2), drawn via Box-Muller from the repo Rng so
  // the whole schedule is a pure function of the seed.
  Rng rng(SplitMix64(config.seed ^ 0x10adC0deull));
  double sigma = config.sigma;
  double mu = std::log(std::max(1e-12, config.mean_interarrival_s)) -
              sigma * sigma / 2;
  std::vector<double> arrivals;
  arrivals.reserve(config.sessions);
  double t = 0;
  for (size_t i = 0; i < config.sessions; ++i) {
    double u1 = std::max(1e-12, rng.NextDouble());
    double u2 = rng.NextDouble();
    double z = std::sqrt(-2 * std::log(u1)) *
               std::cos(2 * 3.14159265358979323846 * u2);
    t += std::exp(mu + sigma * z);
    arrivals.push_back(t);
  }
  report.offered = arrivals.size();

  // Executes one request for real and charges its measured service time to
  // the virtual clock. Service time = engine wall time + simulated network
  // seconds: the host-measured part is undistorted because requests run
  // serially here, concurrency exists only in virtual time.
  std::vector<double> latencies;
  latencies.reserve(arrivals.size());
  size_t executed = 0;
  auto run_one = [&](size_t stmt, double start_s, double arrival_s,
                     std::priority_queue<InService, std::vector<InService>,
                                         std::greater<InService>>* busy) {
    Result<QueryResponse> r =
        service->ExecuteSql(statements[stmt % statements.size()], session);
    ++executed;
    if (config.on_progress) config.on_progress(executed);
    if (!r.ok()) {
      ++report.errors;
      busy->push(InService{start_s});  // server freed immediately
      return;
    }
    if (!TablesMatch(r->table, references[stmt % statements.size()],
                     config.strict_enc_compare)) {
      ++report.mismatches;
    }
    double service_s = r->stats.total_s + r->stats.net_virtual_s;
    double completion = start_s + service_s;
    latencies.push_back(completion - arrival_s);
    ++report.completed;
    busy->push(InService{completion});
  };

  std::priority_queue<InService, std::vector<InService>,
                      std::greater<InService>>
      busy;
  std::deque<Waiting> waitq;
  double last_completion = 0;

  // Frees every server that finished by `now`, back-filling from the wait
  // queue; freed-then-refilled servers may free again before `now`, hence
  // the loop over the heap top.
  auto advance_to = [&](double now) {
    while (!busy.empty() && busy.top().completion_s <= now) {
      double freed_at = busy.top().completion_s;
      last_completion = std::max(last_completion, freed_at);
      busy.pop();
      if (!waitq.empty()) {
        Waiting w = waitq.front();
        waitq.pop_front();
        run_one(w.stmt, freed_at, w.arrival_s, &busy);
      }
    }
  };

  for (size_t i = 0; i < arrivals.size(); ++i) {
    advance_to(arrivals[i]);
    if (busy.size() < config.servers) {
      run_one(i, arrivals[i], arrivals[i], &busy);
    } else if (waitq.size() < config.queue_cap) {
      waitq.push_back(Waiting{arrivals[i], i});
    } else {
      ++report.shed;
    }
  }
  // Drain: no more arrivals; let the servers finish the backlog.
  while (!busy.empty()) {
    advance_to(busy.top().completion_s);
  }

  ServiceMetrics after = service->Metrics();
  uint64_t lookups = (after.cache_hits + after.cache_misses) -
                     (before.cache_hits + before.cache_misses);
  report.hit_rate =
      lookups == 0 ? 0
                   : static_cast<double>(after.cache_hits - before.cache_hits) /
                         static_cast<double>(lookups);
  report.failovers = after.failovers - before.failovers;

  report.virtual_duration_s =
      std::max(last_completion, arrivals.empty() ? 0 : arrivals.back());
  if (report.virtual_duration_s > 0) {
    report.throughput_qps =
        static_cast<double>(report.completed) / report.virtual_duration_s;
  }
  if (report.offered > 0) {
    report.shed_rate =
        static_cast<double>(report.shed) / static_cast<double>(report.offered);
  }
  report.p50_ms = Percentile(&latencies, 0.50) * 1e3;
  report.p99_ms = Percentile(&latencies, 0.99) * 1e3;
  report.p999_ms = Percentile(&latencies, 0.999) * 1e3;
  return report;
}

}  // namespace mpq

// Lexer for the supported SQL dialect:
//   SELECT ... FROM R [JOIN S ON ...]* [WHERE ...] [GROUP BY ...] [HAVING ...]

#ifndef MPQ_SQL_LEXER_H_
#define MPQ_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mpq {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kComma,
  kLParen,
  kRParen,
  kStar,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kKeyword,  // SELECT, FROM, WHERE, JOIN, ON, GROUP, BY, HAVING, AND, AS
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // identifier / keyword (upper-cased) / string literal
  double number = 0;
  bool number_is_int = false;
  int64_t int_value = 0;
  size_t pos = 0;       // offset in the input, for error messages
};

/// Tokenizes `sql`. Keywords are recognized case-insensitively and reported
/// upper-case in Token::text.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace mpq

#endif  // MPQ_SQL_LEXER_H_

// Binder: resolves a parsed SELECT against the catalog and produces a query
// plan with the paper's classical optimization conventions — projections
// pushed into the leaves, single-relation selections pushed below joins,
// left-deep join order following the FROM clause.

#ifndef MPQ_SQL_BINDER_H_
#define MPQ_SQL_BINDER_H_

#include "algebra/plan.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"

namespace mpq {

/// Binds `ast` to a validated plan (ids assigned).
Result<PlanPtr> BindSelect(const AstSelect& ast, const Catalog& catalog);

/// Convenience: parse + bind.
Result<PlanPtr> PlanFromSql(const std::string& sql, const Catalog& catalog);

/// One bound write filter term, evaluated row-at-a-time by the write
/// executor (conjunction semantics, same comparison rules as Value::Compare;
/// NULL never satisfies a predicate).
struct BoundWritePredicate {
  int col = -1;  ///< column index in the target relation
  CmpOp op = CmpOp::kEq;
  bool rhs_is_column = false;
  int rhs_col = -1;  ///< valid when rhs_is_column
  Value rhs;         ///< valid otherwise
};

/// A bound INSERT / UPDATE / DELETE against one base relation, ready for
/// exec/write_executor.h. Literal types are validated against the schema at
/// bind time (int literals widen to double columns).
struct BoundWrite {
  StatementKind kind = StatementKind::kInsert;
  RelId rel = kInvalidRel;
  /// kInsert: full-width rows in schema column order (absent columns NULL).
  std::vector<std::vector<Value>> rows;
  /// kUpdate: (column index, new value) assignments.
  std::vector<std::pair<int, Value>> sets;
  /// kUpdate / kDelete filter; empty = every row.
  std::vector<BoundWritePredicate> where;
  /// Attributes the statement writes (insert/delete: the whole schema;
  /// update: the SET columns) — the authorization surface.
  AttrSet written;
  /// Attributes the filter reads.
  AttrSet read;
};

/// Binds a parsed write statement against the catalog. `ast.kind` must not
/// be kSelect.
Result<BoundWrite> BindWrite(const AstStatement& ast, const Catalog& catalog);

}  // namespace mpq

#endif  // MPQ_SQL_BINDER_H_

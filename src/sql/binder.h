// Binder: resolves a parsed SELECT against the catalog and produces a query
// plan with the paper's classical optimization conventions — projections
// pushed into the leaves, single-relation selections pushed below joins,
// left-deep join order following the FROM clause.

#ifndef MPQ_SQL_BINDER_H_
#define MPQ_SQL_BINDER_H_

#include "algebra/plan.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"

namespace mpq {

/// Binds `ast` to a validated plan (ids assigned).
Result<PlanPtr> BindSelect(const AstSelect& ast, const Catalog& catalog);

/// Convenience: parse + bind.
Result<PlanPtr> PlanFromSql(const std::string& sql, const Catalog& catalog);

}  // namespace mpq

#endif  // MPQ_SQL_BINDER_H_

#include "sql/parser.h"

#include "common/str_util.h"
#include "sql/lexer.h"

namespace mpq {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<AstStatement> ParseAny() {
    AstStatement out;
    if (Peek().kind == TokKind::kKeyword && Peek().text == "INSERT") {
      out.kind = StatementKind::kInsert;
      MPQ_ASSIGN_OR_RETURN(out.insert, ParseInsert());
      return out;
    }
    if (Peek().kind == TokKind::kKeyword && Peek().text == "UPDATE") {
      out.kind = StatementKind::kUpdate;
      MPQ_ASSIGN_OR_RETURN(out.update, ParseUpdate());
      return out;
    }
    if (Peek().kind == TokKind::kKeyword && Peek().text == "DELETE") {
      out.kind = StatementKind::kDelete;
      MPQ_ASSIGN_OR_RETURN(out.del, ParseDelete());
      return out;
    }
    out.kind = StatementKind::kSelect;
    MPQ_ASSIGN_OR_RETURN(out.select, Parse());
    return out;
  }

  Result<AstSelect> Parse() {
    AstSelect out;
    MPQ_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    MPQ_RETURN_NOT_OK(ParseSelectList(&out.items));
    MPQ_RETURN_NOT_OK(ExpectKeyword("FROM"));
    MPQ_RETURN_NOT_OK(ParseTables(&out.tables));
    if (AcceptKeyword("WHERE")) {
      MPQ_RETURN_NOT_OK(ParsePredicates(&out.where));
    }
    if (AcceptKeyword("GROUP")) {
      MPQ_RETURN_NOT_OK(ExpectKeyword("BY"));
      MPQ_RETURN_NOT_OK(ParseColumnList(&out.group_by));
    }
    if (AcceptKeyword("HAVING")) {
      MPQ_RETURN_NOT_OK(ParsePredicates(&out.having));
    }
    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input after statement");
    }
    return out;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  const Token& Next() { return toks_[pos_++]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Err("expected " + kw);
    }
    return Status::OK();
  }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("parse error at offset %zu: %s", Peek().pos, what.c_str()));
  }

  static bool IsAggKeyword(const Token& t, AggFunc* f) {
    if (t.kind != TokKind::kKeyword) return false;
    if (t.text == "AVG") *f = AggFunc::kAvg;
    else if (t.text == "SUM") *f = AggFunc::kSum;
    else if (t.text == "MIN") *f = AggFunc::kMin;
    else if (t.text == "MAX") *f = AggFunc::kMax;
    else if (t.text == "COUNT") *f = AggFunc::kCount;
    else return false;
    return true;
  }

  Status ParseSelectList(std::vector<AstSelectItem>* items) {
    for (;;) {
      AstSelectItem item;
      AggFunc f;
      if (IsAggKeyword(Peek(), &f)) {
        Next();
        item.is_aggregate = true;
        item.func = f;
        if (Peek().kind != TokKind::kLParen) return Err("expected (");
        Next();
        if (Peek().kind == TokKind::kStar) {
          if (f != AggFunc::kCount) return Err("only count(*) is allowed");
          item.count_star = true;
          item.func = AggFunc::kCountStar;
          Next();
        } else if (Peek().kind == TokKind::kIdent) {
          item.column = Next().text;
        } else {
          return Err("expected column in aggregate");
        }
        if (Peek().kind != TokKind::kRParen) return Err("expected )");
        Next();
      } else if (Peek().kind == TokKind::kIdent) {
        item.column = Next().text;
      } else {
        return Err("expected select item");
      }
      if (AcceptKeyword("AS")) {
        if (Peek().kind != TokKind::kIdent) return Err("expected alias");
        item.alias = Next().text;
      }
      items->push_back(std::move(item));
      if (Peek().kind != TokKind::kComma) break;
      Next();
    }
    return Status::OK();
  }

  Status ParseTables(std::vector<AstTable>* tables) {
    AstTable first;
    if (Peek().kind != TokKind::kIdent) return Err("expected table name");
    first.name = Next().text;
    tables->push_back(std::move(first));
    while (AcceptKeyword("JOIN")) {
      AstTable t;
      if (Peek().kind != TokKind::kIdent) return Err("expected table name");
      t.name = Next().text;
      MPQ_RETURN_NOT_OK(ExpectKeyword("ON"));
      MPQ_RETURN_NOT_OK(ParsePredicates(&t.on));
      tables->push_back(std::move(t));
    }
    return Status::OK();
  }

  Status ParseColumnList(std::vector<std::string>* cols) {
    for (;;) {
      if (Peek().kind != TokKind::kIdent) return Err("expected column");
      cols->push_back(Next().text);
      if (Peek().kind != TokKind::kComma) break;
      Next();
    }
    return Status::OK();
  }

  Result<CmpOp> ParseOp() {
    switch (Peek().kind) {
      case TokKind::kEq:
        Next();
        return CmpOp::kEq;
      case TokKind::kNe:
        Next();
        return CmpOp::kNe;
      case TokKind::kLt:
        Next();
        return CmpOp::kLt;
      case TokKind::kLe:
        Next();
        return CmpOp::kLe;
      case TokKind::kGt:
        Next();
        return CmpOp::kGt;
      case TokKind::kGe:
        Next();
        return CmpOp::kGe;
      default:
        return Err("expected comparison operator");
    }
  }

  Status ParsePredicates(std::vector<AstPredicate>* preds) {
    for (;;) {
      AstPredicate p;
      // LHS must be a column (optionally an aggregate call like avg(P),
      // which we resolve to its output column name).
      AggFunc f;
      if (IsAggKeyword(Peek(), &f)) {
        Next();
        if (Peek().kind != TokKind::kLParen) return Err("expected (");
        Next();
        if (Peek().kind == TokKind::kStar) {
          Next();
        } else if (Peek().kind == TokKind::kIdent) {
          p.lhs = Next().text;
        } else {
          return Err("expected column in aggregate");
        }
        if (Peek().kind != TokKind::kRParen) return Err("expected )");
        Next();
      } else if (Peek().kind == TokKind::kIdent) {
        p.lhs = Next().text;
      } else {
        return Err("expected column on predicate lhs");
      }
      MPQ_ASSIGN_OR_RETURN(p.op, ParseOp());
      switch (Peek().kind) {
        case TokKind::kIdent:
          p.rhs_is_column = true;
          p.rhs_column = Next().text;
          break;
        case TokKind::kNumber: {
          const Token& t = Next();
          p.rhs_value = t.number_is_int ? Value(t.int_value) : Value(t.number);
          break;
        }
        case TokKind::kString:
          p.rhs_value = Value(Next().text);
          break;
        default:
          return Err("expected predicate rhs");
      }
      preds->push_back(std::move(p));
      if (!AcceptKeyword("AND")) break;
    }
    return Status::OK();
  }

  /// A literal: number, string, or NULL.
  Result<Value> ParseLiteral() {
    switch (Peek().kind) {
      case TokKind::kNumber: {
        const Token& t = Next();
        return t.number_is_int ? Value(t.int_value) : Value(t.number);
      }
      case TokKind::kString:
        return Value(Next().text);
      case TokKind::kKeyword:
        if (Peek().text == "NULL") {
          Next();
          return Value::Null();
        }
        [[fallthrough]];
      default:
        return Err("expected literal value");
    }
  }

  Status ExpectEnd() {
    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input after statement");
    }
    return Status::OK();
  }

  Result<AstInsert> ParseInsert() {
    AstInsert out;
    MPQ_RETURN_NOT_OK(ExpectKeyword("INSERT"));
    MPQ_RETURN_NOT_OK(ExpectKeyword("INTO"));
    if (Peek().kind != TokKind::kIdent) return Err("expected table name");
    out.table = Next().text;
    if (Peek().kind == TokKind::kLParen) {
      Next();
      MPQ_RETURN_NOT_OK(ParseColumnList(&out.columns));
      if (Peek().kind != TokKind::kRParen) return Err("expected )");
      Next();
    }
    MPQ_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    for (;;) {
      if (Peek().kind != TokKind::kLParen) return Err("expected (");
      Next();
      std::vector<Value> row;
      for (;;) {
        MPQ_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        row.push_back(std::move(v));
        if (Peek().kind != TokKind::kComma) break;
        Next();
      }
      if (Peek().kind != TokKind::kRParen) return Err("expected )");
      Next();
      out.rows.push_back(std::move(row));
      if (Peek().kind != TokKind::kComma) break;
      Next();
    }
    MPQ_RETURN_NOT_OK(ExpectEnd());
    return out;
  }

  Result<AstUpdate> ParseUpdate() {
    AstUpdate out;
    MPQ_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    if (Peek().kind != TokKind::kIdent) return Err("expected table name");
    out.table = Next().text;
    MPQ_RETURN_NOT_OK(ExpectKeyword("SET"));
    for (;;) {
      if (Peek().kind != TokKind::kIdent) return Err("expected column");
      std::string col = Next().text;
      if (Peek().kind != TokKind::kEq) return Err("expected =");
      Next();
      MPQ_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      out.sets.emplace_back(std::move(col), std::move(v));
      if (Peek().kind != TokKind::kComma) break;
      Next();
    }
    if (AcceptKeyword("WHERE")) {
      MPQ_RETURN_NOT_OK(ParsePredicates(&out.where));
    }
    MPQ_RETURN_NOT_OK(ExpectEnd());
    return out;
  }

  Result<AstDelete> ParseDelete() {
    AstDelete out;
    MPQ_RETURN_NOT_OK(ExpectKeyword("DELETE"));
    MPQ_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (Peek().kind != TokKind::kIdent) return Err("expected table name");
    out.table = Next().text;
    if (AcceptKeyword("WHERE")) {
      MPQ_RETURN_NOT_OK(ParsePredicates(&out.where));
    }
    MPQ_RETURN_NOT_OK(ExpectEnd());
    return out;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<AstSelect> ParseSelect(const std::string& sql) {
  MPQ_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(sql));
  Parser parser(std::move(toks));
  return parser.Parse();
}

Result<AstStatement> ParseStatement(const std::string& sql) {
  MPQ_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(sql));
  Parser parser(std::move(toks));
  return parser.ParseAny();
}

}  // namespace mpq

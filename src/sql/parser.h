// Recursive-descent parser for the supported SQL dialect:
//   SELECT item[, item]* FROM t [JOIN t ON preds]* [WHERE preds]
//   [GROUP BY cols] [HAVING preds]
//   INSERT INTO t [(c, ...)] VALUES (v, ...)[, (v, ...)]*
//   UPDATE t SET c = v[, c = v]* [WHERE preds]
//   DELETE FROM t [WHERE preds]

#ifndef MPQ_SQL_PARSER_H_
#define MPQ_SQL_PARSER_H_

#include "common/status.h"
#include "sql/ast.h"

namespace mpq {

/// Parses `sql` into an AstSelect.
Result<AstSelect> ParseSelect(const std::string& sql);

/// Parses any supported statement (SELECT / INSERT / UPDATE / DELETE).
Result<AstStatement> ParseStatement(const std::string& sql);

}  // namespace mpq

#endif  // MPQ_SQL_PARSER_H_

// Recursive-descent parser for the supported SQL dialect:
//   SELECT item[, item]* FROM t [JOIN t ON preds]* [WHERE preds]
//   [GROUP BY cols] [HAVING preds]

#ifndef MPQ_SQL_PARSER_H_
#define MPQ_SQL_PARSER_H_

#include "common/status.h"
#include "sql/ast.h"

namespace mpq {

/// Parses `sql` into an AstSelect.
Result<AstSelect> ParseSelect(const std::string& sql);

}  // namespace mpq

#endif  // MPQ_SQL_PARSER_H_

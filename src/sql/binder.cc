#include "sql/binder.h"

#include <algorithm>

#include "algebra/plan_builder.h"
#include "common/str_util.h"
#include "sql/parser.h"

namespace mpq {

namespace {

Result<AttrId> ResolveColumn(const std::string& name, const Catalog& catalog) {
  AttrId a = catalog.attrs().Find(name);
  if (a == kInvalidAttr) {
    return Status::NotFound("unknown column: " + name);
  }
  return a;
}

Result<Predicate> ResolvePredicate(const AstPredicate& p,
                                   const Catalog& catalog) {
  MPQ_ASSIGN_OR_RETURN(AttrId lhs, ResolveColumn(p.lhs, catalog));
  if (p.rhs_is_column) {
    MPQ_ASSIGN_OR_RETURN(AttrId rhs, ResolveColumn(p.rhs_column, catalog));
    return Predicate::AttrAttr(lhs, p.op, rhs);
  }
  return Predicate::AttrValue(lhs, p.op, p.rhs_value);
}

}  // namespace

Result<PlanPtr> BindSelect(const AstSelect& ast, const Catalog& catalog) {
  if (ast.tables.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }

  // Resolve relations.
  std::vector<RelId> rels;
  for (const AstTable& t : ast.tables) {
    RelId r = catalog.FindRelation(t.name);
    if (r == kInvalidRel) {
      return Status::NotFound("unknown relation: " + t.name);
    }
    rels.push_back(r);
  }

  // Resolve predicates.
  std::vector<Predicate> where;
  for (const AstPredicate& p : ast.where) {
    MPQ_ASSIGN_OR_RETURN(Predicate pred, ResolvePredicate(p, catalog));
    where.push_back(std::move(pred));
  }
  std::vector<std::vector<Predicate>> on(ast.tables.size());
  for (size_t i = 1; i < ast.tables.size(); ++i) {
    for (const AstPredicate& p : ast.tables[i].on) {
      MPQ_ASSIGN_OR_RETURN(Predicate pred, ResolvePredicate(p, catalog));
      on[i].push_back(std::move(pred));
    }
  }

  // Collect every referenced attribute (for projection push-down).
  AttrSet needed;
  std::vector<AttrId> group_attrs;
  std::vector<Aggregate> aggregates;
  AttrSet select_plain;
  for (const AstSelectItem& item : ast.items) {
    if (item.is_aggregate) {
      if (item.func == AggFunc::kCountStar) {
        // count(*) needs a synthetic output attribute.
        std::string alias = item.alias.empty() ? "cnt" : item.alias;
        AttrId out = catalog.attrs().Find(alias);
        if (out == kInvalidAttr) {
          // The catalog's registry is shared and mutable through attrs();
          // interning here keeps synthetic aggregate outputs consistent.
          out = const_cast<Catalog&>(catalog).attrs().Intern(alias);
        }
        aggregates.push_back(Aggregate::CountStar(out));
        continue;
      }
      MPQ_ASSIGN_OR_RETURN(AttrId a, ResolveColumn(item.column, catalog));
      needed.Insert(a);
      aggregates.push_back(Aggregate::Make(item.func, a));
    } else {
      MPQ_ASSIGN_OR_RETURN(AttrId a, ResolveColumn(item.column, catalog));
      needed.Insert(a);
      select_plain.Insert(a);
    }
  }
  for (const std::string& g : ast.group_by) {
    MPQ_ASSIGN_OR_RETURN(AttrId a, ResolveColumn(g, catalog));
    needed.Insert(a);
    group_attrs.push_back(a);
  }
  for (const Predicate& p : where) needed.InsertAll(p.Attrs());
  for (const auto& preds : on) {
    for (const Predicate& p : preds) needed.InsertAll(p.Attrs());
  }
  std::vector<Predicate> having;
  for (const AstPredicate& p : ast.having) {
    MPQ_ASSIGN_OR_RETURN(Predicate pred, ResolvePredicate(p, catalog));
    // Having predicates reference grouping columns or aggregate outputs,
    // which carry the aggregated attribute's name.
    having.push_back(std::move(pred));
  }

  // Partition WHERE into single-relation predicates (pushed below the joins)
  // and cross-relation ones (applied at the top join as a selection).
  std::vector<std::vector<Predicate>> local(ast.tables.size());
  std::vector<Predicate> cross;
  for (Predicate& p : where) {
    int home = -1;
    bool single = true;
    AttrSet attrs = p.Attrs();
    for (size_t t = 0; t < rels.size(); ++t) {
      AttrSet rel_attrs = catalog.Get(rels[t]).schema.Attrs();
      if (attrs.Intersects(rel_attrs)) {
        if (home < 0) {
          home = static_cast<int>(t);
        } else {
          single = false;
        }
      }
    }
    if (single && home >= 0) {
      local[static_cast<size_t>(home)].push_back(std::move(p));
    } else {
      cross.push_back(std::move(p));
    }
  }

  // Build per-table subtrees: Base → π(needed) → σ(local).
  std::vector<PlanPtr> subtrees;
  for (size_t t = 0; t < rels.size(); ++t) {
    PlanPtr node = Base(rels[t]);
    AttrSet rel_attrs = catalog.Get(rels[t]).schema.Attrs();
    AttrSet keep = rel_attrs.Intersect(needed);
    if (keep.empty()) keep = rel_attrs;  // relation used positionally only
    if (keep != rel_attrs) {
      node = Project(std::move(node), keep);
    }
    if (!local[t].empty()) {
      node = Select(std::move(node), std::move(local[t]));
    }
    subtrees.push_back(std::move(node));
  }

  // Left-deep joins in FROM order.
  PlanPtr plan = std::move(subtrees[0]);
  for (size_t t = 1; t < subtrees.size(); ++t) {
    if (on[t].empty()) {
      plan = Cartesian(std::move(plan), std::move(subtrees[t]));
    } else {
      plan = Join(std::move(plan), std::move(subtrees[t]), std::move(on[t]));
    }
  }
  if (!cross.empty()) {
    plan = Select(std::move(plan), std::move(cross));
  }

  // Grouping and aggregation.
  if (!aggregates.empty() || !group_attrs.empty()) {
    AttrSet ga = AttrSet::FromRange(group_attrs.begin(), group_attrs.end());
    plan = GroupBy(std::move(plan), ga, std::move(aggregates));
  }
  if (!having.empty()) {
    plan = Select(std::move(plan), std::move(having));
  }

  // Final projection when the select list is narrower than what flows out.
  if (!select_plain.empty() && ast.group_by.empty() &&
      std::none_of(ast.items.begin(), ast.items.end(),
                   [](const AstSelectItem& i) { return i.is_aggregate; })) {
    AttrSet visible = VisibleAttrs(plan.get(), catalog);
    if (select_plain != visible) {
      plan = Project(std::move(plan), select_plain);
    }
  }

  return FinishPlan(std::move(plan), catalog);
}

Result<PlanPtr> PlanFromSql(const std::string& sql, const Catalog& catalog) {
  MPQ_ASSIGN_OR_RETURN(AstSelect ast, ParseSelect(sql));
  return BindSelect(ast, catalog);
}

namespace {

/// Column index of `name` within `def`'s schema (names resolve through the
/// global attribute registry, then must belong to the target relation).
Result<int> ResolveWriteColumn(const std::string& name,
                               const RelationDef& def,
                               const Catalog& catalog) {
  AttrId a = catalog.attrs().Find(name);
  int idx = a == kInvalidAttr ? -1 : def.schema.IndexOf(a);
  if (idx < 0) {
    return Status::NotFound(StrFormat("unknown column %s in relation %s",
                                      name.c_str(), def.name.c_str()));
  }
  return idx;
}

/// Checks a literal against a column's type, widening int literals for
/// double columns. NULL passes any type.
Result<Value> CoerceLiteral(Value v, const Column& col) {
  if (v.is_null()) return v;
  switch (col.type) {
    case DataType::kInt64:
      if (v.is_int()) return v;
      break;
    case DataType::kDouble:
      if (v.is_double()) return v;
      if (v.is_int()) return Value(static_cast<double>(v.AsInt()));
      break;
    case DataType::kString:
      if (v.is_string()) return v;
      break;
  }
  return Status::InvalidArgument(
      StrFormat("value %s does not fit column %s (%s)",
                v.ToString().c_str(), col.name.c_str(),
                DataTypeName(col.type)));
}

Result<std::vector<BoundWritePredicate>> BindWritePredicates(
    const std::vector<AstPredicate>& preds, const RelationDef& def,
    const Catalog& catalog, AttrSet* read) {
  std::vector<BoundWritePredicate> out;
  for (const AstPredicate& p : preds) {
    BoundWritePredicate bp;
    MPQ_ASSIGN_OR_RETURN(bp.col, ResolveWriteColumn(p.lhs, def, catalog));
    bp.op = p.op;
    read->Insert(def.schema.columns()[bp.col].attr);
    if (p.rhs_is_column) {
      bp.rhs_is_column = true;
      MPQ_ASSIGN_OR_RETURN(bp.rhs_col,
                           ResolveWriteColumn(p.rhs_column, def, catalog));
      read->Insert(def.schema.columns()[bp.rhs_col].attr);
    } else {
      MPQ_ASSIGN_OR_RETURN(
          bp.rhs, CoerceLiteral(p.rhs_value, def.schema.columns()[bp.col]));
    }
    out.push_back(std::move(bp));
  }
  return out;
}

}  // namespace

Result<BoundWrite> BindWrite(const AstStatement& ast, const Catalog& catalog) {
  const std::string* table = nullptr;
  switch (ast.kind) {
    case StatementKind::kInsert:
      table = &ast.insert.table;
      break;
    case StatementKind::kUpdate:
      table = &ast.update.table;
      break;
    case StatementKind::kDelete:
      table = &ast.del.table;
      break;
    case StatementKind::kSelect:
      return Status::InvalidArgument("BindWrite of a SELECT statement");
  }
  RelId rel = catalog.FindRelation(*table);
  if (rel == kInvalidRel) {
    return Status::NotFound("unknown relation: " + *table);
  }
  const RelationDef& def = catalog.Get(rel);
  const std::vector<Column>& cols = def.schema.columns();

  BoundWrite out;
  out.kind = ast.kind;
  out.rel = rel;
  switch (ast.kind) {
    case StatementKind::kInsert: {
      // Map the statement's column list (or schema order) to column indices.
      std::vector<int> targets;
      if (ast.insert.columns.empty()) {
        for (size_t i = 0; i < cols.size(); ++i) {
          targets.push_back(static_cast<int>(i));
        }
      } else {
        std::vector<bool> seen(cols.size(), false);
        for (const std::string& c : ast.insert.columns) {
          MPQ_ASSIGN_OR_RETURN(int idx, ResolveWriteColumn(c, def, catalog));
          if (seen[static_cast<size_t>(idx)]) {
            return Status::InvalidArgument("duplicate insert column: " + c);
          }
          seen[static_cast<size_t>(idx)] = true;
          targets.push_back(idx);
        }
      }
      for (const std::vector<Value>& row : ast.insert.rows) {
        if (row.size() != targets.size()) {
          return Status::InvalidArgument(StrFormat(
              "insert row has %zu values for %zu columns", row.size(),
              targets.size()));
        }
        std::vector<Value> full(cols.size());  // defaults to NULL
        for (size_t i = 0; i < targets.size(); ++i) {
          size_t idx = static_cast<size_t>(targets[i]);
          MPQ_ASSIGN_OR_RETURN(full[idx], CoerceLiteral(row[i], cols[idx]));
        }
        out.rows.push_back(std::move(full));
      }
      // An insert materializes whole rows: every schema attribute is written
      // (absent columns as NULL).
      out.written = def.schema.Attrs();
      break;
    }
    case StatementKind::kUpdate: {
      std::vector<bool> seen(cols.size(), false);
      for (const auto& [col_name, v] : ast.update.sets) {
        MPQ_ASSIGN_OR_RETURN(int idx,
                             ResolveWriteColumn(col_name, def, catalog));
        if (seen[static_cast<size_t>(idx)]) {
          return Status::InvalidArgument("duplicate update column: " +
                                         col_name);
        }
        seen[static_cast<size_t>(idx)] = true;
        size_t i = static_cast<size_t>(idx);
        MPQ_ASSIGN_OR_RETURN(Value coerced, CoerceLiteral(v, cols[i]));
        out.sets.emplace_back(idx, std::move(coerced));
        out.written.Insert(cols[i].attr);
      }
      MPQ_ASSIGN_OR_RETURN(
          out.where,
          BindWritePredicates(ast.update.where, def, catalog, &out.read));
      break;
    }
    case StatementKind::kDelete: {
      MPQ_ASSIGN_OR_RETURN(
          out.where,
          BindWritePredicates(ast.del.where, def, catalog, &out.read));
      // A delete destroys whole rows: the whole schema is the write surface.
      out.written = def.schema.Attrs();
      break;
    }
    case StatementKind::kSelect:
      break;  // unreachable
  }
  return out;
}

}  // namespace mpq

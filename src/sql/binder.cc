#include "sql/binder.h"

#include <algorithm>

#include "algebra/plan_builder.h"
#include "common/str_util.h"
#include "sql/parser.h"

namespace mpq {

namespace {

Result<AttrId> ResolveColumn(const std::string& name, const Catalog& catalog) {
  AttrId a = catalog.attrs().Find(name);
  if (a == kInvalidAttr) {
    return Status::NotFound("unknown column: " + name);
  }
  return a;
}

Result<Predicate> ResolvePredicate(const AstPredicate& p,
                                   const Catalog& catalog) {
  MPQ_ASSIGN_OR_RETURN(AttrId lhs, ResolveColumn(p.lhs, catalog));
  if (p.rhs_is_column) {
    MPQ_ASSIGN_OR_RETURN(AttrId rhs, ResolveColumn(p.rhs_column, catalog));
    return Predicate::AttrAttr(lhs, p.op, rhs);
  }
  return Predicate::AttrValue(lhs, p.op, p.rhs_value);
}

}  // namespace

Result<PlanPtr> BindSelect(const AstSelect& ast, const Catalog& catalog) {
  if (ast.tables.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }

  // Resolve relations.
  std::vector<RelId> rels;
  for (const AstTable& t : ast.tables) {
    RelId r = catalog.FindRelation(t.name);
    if (r == kInvalidRel) {
      return Status::NotFound("unknown relation: " + t.name);
    }
    rels.push_back(r);
  }

  // Resolve predicates.
  std::vector<Predicate> where;
  for (const AstPredicate& p : ast.where) {
    MPQ_ASSIGN_OR_RETURN(Predicate pred, ResolvePredicate(p, catalog));
    where.push_back(std::move(pred));
  }
  std::vector<std::vector<Predicate>> on(ast.tables.size());
  for (size_t i = 1; i < ast.tables.size(); ++i) {
    for (const AstPredicate& p : ast.tables[i].on) {
      MPQ_ASSIGN_OR_RETURN(Predicate pred, ResolvePredicate(p, catalog));
      on[i].push_back(std::move(pred));
    }
  }

  // Collect every referenced attribute (for projection push-down).
  AttrSet needed;
  std::vector<AttrId> group_attrs;
  std::vector<Aggregate> aggregates;
  AttrSet select_plain;
  for (const AstSelectItem& item : ast.items) {
    if (item.is_aggregate) {
      if (item.func == AggFunc::kCountStar) {
        // count(*) needs a synthetic output attribute.
        std::string alias = item.alias.empty() ? "cnt" : item.alias;
        AttrId out = catalog.attrs().Find(alias);
        if (out == kInvalidAttr) {
          // The catalog's registry is shared and mutable through attrs();
          // interning here keeps synthetic aggregate outputs consistent.
          out = const_cast<Catalog&>(catalog).attrs().Intern(alias);
        }
        aggregates.push_back(Aggregate::CountStar(out));
        continue;
      }
      MPQ_ASSIGN_OR_RETURN(AttrId a, ResolveColumn(item.column, catalog));
      needed.Insert(a);
      aggregates.push_back(Aggregate::Make(item.func, a));
    } else {
      MPQ_ASSIGN_OR_RETURN(AttrId a, ResolveColumn(item.column, catalog));
      needed.Insert(a);
      select_plain.Insert(a);
    }
  }
  for (const std::string& g : ast.group_by) {
    MPQ_ASSIGN_OR_RETURN(AttrId a, ResolveColumn(g, catalog));
    needed.Insert(a);
    group_attrs.push_back(a);
  }
  for (const Predicate& p : where) needed.InsertAll(p.Attrs());
  for (const auto& preds : on) {
    for (const Predicate& p : preds) needed.InsertAll(p.Attrs());
  }
  std::vector<Predicate> having;
  for (const AstPredicate& p : ast.having) {
    MPQ_ASSIGN_OR_RETURN(Predicate pred, ResolvePredicate(p, catalog));
    // Having predicates reference grouping columns or aggregate outputs,
    // which carry the aggregated attribute's name.
    having.push_back(std::move(pred));
  }

  // Partition WHERE into single-relation predicates (pushed below the joins)
  // and cross-relation ones (applied at the top join as a selection).
  std::vector<std::vector<Predicate>> local(ast.tables.size());
  std::vector<Predicate> cross;
  for (Predicate& p : where) {
    int home = -1;
    bool single = true;
    AttrSet attrs = p.Attrs();
    for (size_t t = 0; t < rels.size(); ++t) {
      AttrSet rel_attrs = catalog.Get(rels[t]).schema.Attrs();
      if (attrs.Intersects(rel_attrs)) {
        if (home < 0) {
          home = static_cast<int>(t);
        } else {
          single = false;
        }
      }
    }
    if (single && home >= 0) {
      local[static_cast<size_t>(home)].push_back(std::move(p));
    } else {
      cross.push_back(std::move(p));
    }
  }

  // Build per-table subtrees: Base → π(needed) → σ(local).
  std::vector<PlanPtr> subtrees;
  for (size_t t = 0; t < rels.size(); ++t) {
    PlanPtr node = Base(rels[t]);
    AttrSet rel_attrs = catalog.Get(rels[t]).schema.Attrs();
    AttrSet keep = rel_attrs.Intersect(needed);
    if (keep.empty()) keep = rel_attrs;  // relation used positionally only
    if (keep != rel_attrs) {
      node = Project(std::move(node), keep);
    }
    if (!local[t].empty()) {
      node = Select(std::move(node), std::move(local[t]));
    }
    subtrees.push_back(std::move(node));
  }

  // Left-deep joins in FROM order.
  PlanPtr plan = std::move(subtrees[0]);
  for (size_t t = 1; t < subtrees.size(); ++t) {
    if (on[t].empty()) {
      plan = Cartesian(std::move(plan), std::move(subtrees[t]));
    } else {
      plan = Join(std::move(plan), std::move(subtrees[t]), std::move(on[t]));
    }
  }
  if (!cross.empty()) {
    plan = Select(std::move(plan), std::move(cross));
  }

  // Grouping and aggregation.
  if (!aggregates.empty() || !group_attrs.empty()) {
    AttrSet ga = AttrSet::FromRange(group_attrs.begin(), group_attrs.end());
    plan = GroupBy(std::move(plan), ga, std::move(aggregates));
  }
  if (!having.empty()) {
    plan = Select(std::move(plan), std::move(having));
  }

  // Final projection when the select list is narrower than what flows out.
  if (!select_plain.empty() && ast.group_by.empty() &&
      std::none_of(ast.items.begin(), ast.items.end(),
                   [](const AstSelectItem& i) { return i.is_aggregate; })) {
    AttrSet visible = VisibleAttrs(plan.get(), catalog);
    if (select_plain != visible) {
      plan = Project(std::move(plan), select_plain);
    }
  }

  return FinishPlan(std::move(plan), catalog);
}

Result<PlanPtr> PlanFromSql(const std::string& sql, const Catalog& catalog) {
  MPQ_ASSIGN_OR_RETURN(AstSelect ast, ParseSelect(sql));
  return BindSelect(ast, catalog);
}

}  // namespace mpq

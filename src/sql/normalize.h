// SQL text canonicalization for plan-cache keys: two queries that differ only
// in whitespace, keyword case, or numeric spelling normalize to the same
// string, so they share one cached plan.

#ifndef MPQ_SQL_NORMALIZE_H_
#define MPQ_SQL_NORMALIZE_H_

#include <string>

#include "common/status.h"

namespace mpq {

/// Canonical single-line rendering of `sql`: tokens separated by single
/// spaces, keywords upper-cased, numbers in shortest round-trip form,
/// identifier case preserved (the binder resolves names case-sensitively).
/// Fails when `sql` does not lex.
Result<std::string> NormalizeSql(const std::string& sql);

}  // namespace mpq

#endif  // MPQ_SQL_NORMALIZE_H_

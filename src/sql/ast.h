// AST for the supported SQL dialect.

#ifndef MPQ_SQL_AST_H_
#define MPQ_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/value.h"

namespace mpq {

/// A select-list item: a bare column or an aggregate call.
struct AstSelectItem {
  bool is_aggregate = false;
  AggFunc func = AggFunc::kSum;  // valid when is_aggregate
  bool count_star = false;
  std::string column;            // input column (empty for count(*))
  std::string alias;             // optional AS name
};

/// One basic predicate, unresolved.
struct AstPredicate {
  std::string lhs;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_column = false;
  std::string rhs_column;
  Value rhs_value;
};

/// One FROM/JOIN element.
struct AstTable {
  std::string name;
  std::vector<AstPredicate> on;  // join condition (empty for the first table)
};

/// A parsed SELECT statement.
struct AstSelect {
  std::vector<AstSelectItem> items;
  std::vector<AstTable> tables;
  std::vector<AstPredicate> where;
  std::vector<std::string> group_by;
  std::vector<AstPredicate> having;
};

/// INSERT INTO t [(c, ...)] VALUES (v, ...)[, (v, ...)]*. Values are
/// literals or NULL; omitted columns receive NULL.
struct AstInsert {
  std::string table;
  std::vector<std::string> columns;  ///< empty = schema order, all columns
  std::vector<std::vector<Value>> rows;
};

/// UPDATE t SET c = v [, c = v]* [WHERE preds]. Set values are literals or
/// NULL; in-place arithmetic on contended cells goes through the MRV
/// counter API instead (exec/mrv.h).
struct AstUpdate {
  std::string table;
  std::vector<std::pair<std::string, Value>> sets;
  std::vector<AstPredicate> where;
};

/// DELETE FROM t [WHERE preds].
struct AstDelete {
  std::string table;
  std::vector<AstPredicate> where;
};

/// Kind tag of a parsed statement.
enum class StatementKind { kSelect, kInsert, kUpdate, kDelete };

/// Any parsed statement; `kind` selects the active member.
struct AstStatement {
  StatementKind kind = StatementKind::kSelect;
  AstSelect select;
  AstInsert insert;
  AstUpdate update;
  AstDelete del;
};

}  // namespace mpq

#endif  // MPQ_SQL_AST_H_

// AST for the supported SQL dialect.

#ifndef MPQ_SQL_AST_H_
#define MPQ_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/value.h"

namespace mpq {

/// A select-list item: a bare column or an aggregate call.
struct AstSelectItem {
  bool is_aggregate = false;
  AggFunc func = AggFunc::kSum;  // valid when is_aggregate
  bool count_star = false;
  std::string column;            // input column (empty for count(*))
  std::string alias;             // optional AS name
};

/// One basic predicate, unresolved.
struct AstPredicate {
  std::string lhs;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_column = false;
  std::string rhs_column;
  Value rhs_value;
};

/// One FROM/JOIN element.
struct AstTable {
  std::string name;
  std::vector<AstPredicate> on;  // join condition (empty for the first table)
};

/// A parsed SELECT statement.
struct AstSelect {
  std::vector<AstSelectItem> items;
  std::vector<AstTable> tables;
  std::vector<AstPredicate> where;
  std::vector<std::string> group_by;
  std::vector<AstPredicate> having;
};

}  // namespace mpq

#endif  // MPQ_SQL_AST_H_

#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "common/str_util.h"

namespace mpq {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kw = {
      "SELECT", "FROM",   "WHERE",  "JOIN",   "ON",     "GROUP",
      "BY",     "HAVING", "AND",    "AS",     "AVG",    "SUM",
      "MIN",    "MAX",    "COUNT",  "INSERT", "INTO",   "VALUES",
      "UPDATE", "SET",    "DELETE", "NULL"};
  return kw;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string up = ToUpper(word);
      if (Keywords().count(up) > 0) {
        t.kind = TokKind::kKeyword;
        t.text = up;
      } else {
        t.kind = TokKind::kIdent;
        t.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool is_int = true;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') is_int = false;
        ++j;
      }
      std::string num = sql.substr(i, j - i);
      t.kind = TokKind::kNumber;
      // strtod/strtoll instead of stod/stoll: library code never throws
      // across the public API boundary, and untrusted serving-path SQL must
      // not be able to abort the process with an oversized literal.
      errno = 0;
      t.number = std::strtod(num.c_str(), nullptr);
      if (errno == ERANGE || !std::isfinite(t.number)) {
        return Status::InvalidArgument(
            StrFormat("numeric literal out of range at offset %zu", i));
      }
      t.number_is_int = is_int;
      if (is_int) {
        errno = 0;
        long long v = std::strtoll(num.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument(
              StrFormat("integer literal out of range at offset %zu", i));
        }
        t.int_value = v;
      }
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && sql[j] != '\'') ++j;
      if (j >= n) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", i));
      }
      t.kind = TokKind::kString;
      t.text = sql.substr(i + 1, j - i - 1);
      i = j + 1;
    } else {
      switch (c) {
        case ',':
          t.kind = TokKind::kComma;
          ++i;
          break;
        case '(':
          t.kind = TokKind::kLParen;
          ++i;
          break;
        case ')':
          t.kind = TokKind::kRParen;
          ++i;
          break;
        case '*':
          t.kind = TokKind::kStar;
          ++i;
          break;
        case '=':
          t.kind = TokKind::kEq;
          ++i;
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '>') {
            t.kind = TokKind::kNe;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '=') {
            t.kind = TokKind::kLe;
            i += 2;
          } else {
            t.kind = TokKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            t.kind = TokKind::kGe;
            i += 2;
          } else {
            t.kind = TokKind::kGt;
            ++i;
          }
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            t.kind = TokKind::kNe;
            i += 2;
            break;
          }
          [[fallthrough]];
        default:
          return Status::InvalidArgument(
              StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.pos = n;
  out.push_back(end);
  return out;
}

}  // namespace mpq

#include "sql/normalize.h"

#include <cmath>
#include <cstdio>

#include "sql/lexer.h"

namespace mpq {

namespace {

/// Shortest plain-decimal ("%f", never exponent form) rendering that parses
/// back to exactly `v`. The lexer's number scanner accepts only digits and
/// '.', so the normalized text must avoid "1e+20"-style spellings or it
/// would not re-lex.
std::string RenderDecimal(double v) {
  char buf[400];  // %f of extreme doubles: ~310 integer + precision digits
  for (int prec = 1; prec <= 350; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    double parsed;
    if (std::sscanf(buf, "%lf", &parsed) == 1 && parsed == v) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17f", v);
  return buf;
}

std::string RenderNumber(const Token& t) {
  if (t.number_is_int) return std::to_string(t.int_value);
  // Keep the double-ness visible ("100.0", not "100"): the normalized text
  // must re-lex to the same token type, or normalization would change the
  // statement's semantics. nearbyint (not an int64 cast) keeps the integral
  // test defined for huge literals.
  if (t.number == std::nearbyint(t.number)) {
    char buf[400];
    std::snprintf(buf, sizeof(buf), "%.1f", t.number);
    return buf;
  }
  return RenderDecimal(t.number);
}

const char* RenderPunct(TokKind kind) {
  switch (kind) {
    case TokKind::kComma:
      return ",";
    case TokKind::kLParen:
      return "(";
    case TokKind::kRParen:
      return ")";
    case TokKind::kStar:
      return "*";
    case TokKind::kEq:
      return "=";
    case TokKind::kNe:
      return "<>";
    case TokKind::kLt:
      return "<";
    case TokKind::kLe:
      return "<=";
    case TokKind::kGt:
      return ">";
    case TokKind::kGe:
      return ">=";
    default:
      return "";
  }
}

}  // namespace

Result<std::string> NormalizeSql(const std::string& sql) {
  MPQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  std::string out;
  out.reserve(sql.size());
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kEnd) break;
    if (!out.empty()) out += ' ';
    switch (t.kind) {
      case TokKind::kIdent:
      case TokKind::kKeyword:
        out += t.text;  // keywords arrive upper-cased from the lexer
        break;
      case TokKind::kNumber:
        out += RenderNumber(t);
        break;
      case TokKind::kString:
        out += '\'';
        out += t.text;  // the dialect has no escapes inside literals
        out += '\'';
        break;
      default:
        out += RenderPunct(t.kind);
    }
  }
  return out;
}

}  // namespace mpq

// Per-operator execution counters: wall time and row volumes of every
// relational operator kind, aggregated across all engine invocations that
// share one OpProfile. Recording is four relaxed atomic adds per operator
// call (operators process whole tables, so the overhead is noise); the
// serving layer surfaces a snapshot in its JSON metrics so a hot-path
// regression in, say, the join probe is visible per operator instead of
// buried in end-to-end latency.

#ifndef MPQ_PROFILE_OP_STATS_H_
#define MPQ_PROFILE_OP_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "algebra/plan.h"

namespace mpq {

class JsonWriter;

/// Plain-value counters of one operator kind.
struct OpCounterSnapshot {
  uint64_t calls = 0;
  uint64_t ns = 0;        ///< Wall nanoseconds inside the operator.
  uint64_t rows_in = 0;   ///< Operand rows consumed.
  uint64_t rows_out = 0;  ///< Result rows produced.
  /// Bytes of operator-private scratch arenas (group-by aggregate states and
  /// key arenas); 0 for operators without one.
  uint64_t arena_bytes = 0;
  /// Paillier ciphertexts folded by lazy homomorphic aggregation.
  uint64_t hom_folds = 0;
  /// Morsel tasks this operator kind enqueued on the scheduler.
  uint64_t morsels = 0;
};

/// A copyable point-in-time snapshot over every operator kind.
struct OpProfileSnapshot {
  std::array<OpCounterSnapshot, kNumOpKinds> ops;

  const OpCounterSnapshot& of(OpKind k) const {
    return ops[static_cast<size_t>(k)];
  }

  /// Writes {"base":{"calls":...,"ns":...,"rows_in":...,"rows_out":...},...}
  /// as the next value of `w`; kinds with zero calls are omitted.
  void WriteJson(JsonWriter* w) const;

  /// The WriteJson object as a standalone document.
  std::string ToJson() const;
};

/// The live counters. Thread-safe: Record may be called from any number of
/// engine threads concurrently with Snapshot.
class OpProfile {
 public:
  void Record(OpKind kind, uint64_t ns, uint64_t rows_in, uint64_t rows_out);
  /// Adds operator-detail counters (arena footprint, homomorphic fold
  /// volume) to `kind` — called by operators that have them, on top of the
  /// Record every execution gets.
  void RecordDetail(OpKind kind, uint64_t arena_bytes, uint64_t hom_folds);
  /// Adds `n` morsels to `kind` — called once per parallel operator loop
  /// with the loop's morsel count.
  void RecordMorsels(OpKind kind, uint64_t n);
  /// Adds every counter of `snap` — used to fold a fragment-local profile
  /// into a shared one after the fragment's span was annotated from it.
  void Merge(const OpProfileSnapshot& snap);
  OpProfileSnapshot Snapshot() const;
  void Reset();

 private:
  struct Counter {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> rows_in{0};
    std::atomic<uint64_t> rows_out{0};
    std::atomic<uint64_t> arena_bytes{0};
    std::atomic<uint64_t> hom_folds{0};
    std::atomic<uint64_t> morsels{0};
  };
  std::array<Counter, kNumOpKinds> ops_;
};

}  // namespace mpq

#endif  // MPQ_PROFILE_OP_STATS_H_

// Profile propagation (Fig 2): computes the relation profile of every node of
// a query plan bottom-up from the base-relation profiles.

#ifndef MPQ_PROFILE_PROPAGATE_H_
#define MPQ_PROFILE_PROPAGATE_H_

#include "algebra/plan.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "profile/profile.h"

namespace mpq {

/// Options for profile annotation.
struct PropagateOptions {
  /// When true, enforce the paper's executability constraints while
  /// propagating: attributes compared by a condition must be uniformly
  /// visible (both plaintext or both encrypted) in the operand, encryption
  /// must target visible plaintext attributes, and decryption visible
  /// encrypted ones. When false, profiles are computed permissively (useful
  /// for exploratory tooling).
  bool strict = true;
};

/// Computes the profile produced by applying `node`'s operator to operand
/// profiles `left` (and `right` for binary operators; ignored otherwise).
Result<RelationProfile> PropagateProfile(const PlanNode* node,
                                         const RelationProfile& left,
                                         const RelationProfile& right,
                                         const Catalog& catalog,
                                         const PropagateOptions& opts = {});

/// Annotates every node of the plan with its profile (stored in
/// PlanNode::profile), bottom-up. Base relations get ForBase profiles.
Status AnnotatePlan(PlanNode* root, const Catalog& catalog,
                    const PropagateOptions& opts = {});

/// Verifies Theorem 3.1 on an annotated plan: for every node x and descendant
/// y, (i) y's profile attributes survive in x's, and (ii) every equivalence
/// set of y is contained in one of x's. Returns the first violation.
Status CheckProfileMonotonicity(const PlanNode* root, const Catalog& catalog);

}  // namespace mpq

#endif  // MPQ_PROFILE_PROPAGATE_H_

#include "profile/op_stats.h"

#include "common/json_util.h"

namespace mpq {

void OpProfile::Record(OpKind kind, uint64_t ns, uint64_t rows_in,
                       uint64_t rows_out) {
  Counter& c = ops_[static_cast<size_t>(kind)];
  c.calls.fetch_add(1, std::memory_order_relaxed);
  c.ns.fetch_add(ns, std::memory_order_relaxed);
  c.rows_in.fetch_add(rows_in, std::memory_order_relaxed);
  c.rows_out.fetch_add(rows_out, std::memory_order_relaxed);
}

void OpProfile::RecordDetail(OpKind kind, uint64_t arena_bytes,
                             uint64_t hom_folds) {
  Counter& c = ops_[static_cast<size_t>(kind)];
  c.arena_bytes.fetch_add(arena_bytes, std::memory_order_relaxed);
  c.hom_folds.fetch_add(hom_folds, std::memory_order_relaxed);
}

void OpProfile::RecordMorsels(OpKind kind, uint64_t n) {
  ops_[static_cast<size_t>(kind)].morsels.fetch_add(n,
                                                    std::memory_order_relaxed);
}

void OpProfile::Merge(const OpProfileSnapshot& snap) {
  for (size_t i = 0; i < kNumOpKinds; ++i) {
    const OpCounterSnapshot& s = snap.ops[i];
    if (s.calls == 0 && s.arena_bytes == 0 && s.hom_folds == 0 &&
        s.morsels == 0) {
      continue;
    }
    Counter& c = ops_[i];
    c.calls.fetch_add(s.calls, std::memory_order_relaxed);
    c.ns.fetch_add(s.ns, std::memory_order_relaxed);
    c.rows_in.fetch_add(s.rows_in, std::memory_order_relaxed);
    c.rows_out.fetch_add(s.rows_out, std::memory_order_relaxed);
    c.arena_bytes.fetch_add(s.arena_bytes, std::memory_order_relaxed);
    c.hom_folds.fetch_add(s.hom_folds, std::memory_order_relaxed);
    c.morsels.fetch_add(s.morsels, std::memory_order_relaxed);
  }
}

OpProfileSnapshot OpProfile::Snapshot() const {
  OpProfileSnapshot snap;
  for (size_t i = 0; i < kNumOpKinds; ++i) {
    snap.ops[i].calls = ops_[i].calls.load(std::memory_order_relaxed);
    snap.ops[i].ns = ops_[i].ns.load(std::memory_order_relaxed);
    snap.ops[i].rows_in = ops_[i].rows_in.load(std::memory_order_relaxed);
    snap.ops[i].rows_out = ops_[i].rows_out.load(std::memory_order_relaxed);
    snap.ops[i].arena_bytes =
        ops_[i].arena_bytes.load(std::memory_order_relaxed);
    snap.ops[i].hom_folds = ops_[i].hom_folds.load(std::memory_order_relaxed);
    snap.ops[i].morsels = ops_[i].morsels.load(std::memory_order_relaxed);
  }
  return snap;
}

void OpProfile::Reset() {
  for (Counter& c : ops_) {
    c.calls.store(0, std::memory_order_relaxed);
    c.ns.store(0, std::memory_order_relaxed);
    c.rows_in.store(0, std::memory_order_relaxed);
    c.rows_out.store(0, std::memory_order_relaxed);
    c.arena_bytes.store(0, std::memory_order_relaxed);
    c.hom_folds.store(0, std::memory_order_relaxed);
    c.morsels.store(0, std::memory_order_relaxed);
  }
}

void OpProfileSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  for (size_t i = 0; i < kNumOpKinds; ++i) {
    const OpCounterSnapshot& c = ops[i];
    if (c.calls == 0) continue;
    w->Key(OpKindName(static_cast<OpKind>(i)));
    w->BeginObject()
        .Key("calls")
        .UInt(c.calls)
        .Key("ns")
        .UInt(c.ns)
        .Key("rows_in")
        .UInt(c.rows_in)
        .Key("rows_out")
        .UInt(c.rows_out);
    if (c.arena_bytes != 0) w->Key("arena_bytes").UInt(c.arena_bytes);
    if (c.hom_folds != 0) w->Key("hom_folds").UInt(c.hom_folds);
    if (c.morsels != 0) w->Key("morsels").UInt(c.morsels);
    w->EndObject();
  }
  w->EndObject();
}

std::string OpProfileSnapshot::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

}  // namespace mpq

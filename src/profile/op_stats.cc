#include "profile/op_stats.h"

#include "common/json_util.h"

namespace mpq {

void OpProfile::Record(OpKind kind, uint64_t ns, uint64_t rows_in,
                       uint64_t rows_out) {
  Counter& c = ops_[static_cast<size_t>(kind)];
  c.calls.fetch_add(1, std::memory_order_relaxed);
  c.ns.fetch_add(ns, std::memory_order_relaxed);
  c.rows_in.fetch_add(rows_in, std::memory_order_relaxed);
  c.rows_out.fetch_add(rows_out, std::memory_order_relaxed);
}

OpProfileSnapshot OpProfile::Snapshot() const {
  OpProfileSnapshot snap;
  for (size_t i = 0; i < kNumOpKinds; ++i) {
    snap.ops[i].calls = ops_[i].calls.load(std::memory_order_relaxed);
    snap.ops[i].ns = ops_[i].ns.load(std::memory_order_relaxed);
    snap.ops[i].rows_in = ops_[i].rows_in.load(std::memory_order_relaxed);
    snap.ops[i].rows_out = ops_[i].rows_out.load(std::memory_order_relaxed);
  }
  return snap;
}

void OpProfile::Reset() {
  for (Counter& c : ops_) {
    c.calls.store(0, std::memory_order_relaxed);
    c.ns.store(0, std::memory_order_relaxed);
    c.rows_in.store(0, std::memory_order_relaxed);
    c.rows_out.store(0, std::memory_order_relaxed);
  }
}

void OpProfileSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  for (size_t i = 0; i < kNumOpKinds; ++i) {
    const OpCounterSnapshot& c = ops[i];
    if (c.calls == 0) continue;
    w->Key(OpKindName(static_cast<OpKind>(i)));
    w->BeginObject()
        .Key("calls")
        .UInt(c.calls)
        .Key("ns")
        .UInt(c.ns)
        .Key("rows_in")
        .UInt(c.rows_in)
        .Key("rows_out")
        .UInt(c.rows_out)
        .EndObject();
  }
  w->EndObject();
}

std::string OpProfileSnapshot::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.TakeString();
}

}  // namespace mpq

#include "profile/profile.h"

namespace mpq {

RelationProfile RelationProfile::ForBase(const AttrSet& schema_attrs) {
  RelationProfile p;
  p.vp = schema_attrs;
  return p;
}

AttrSet RelationProfile::AllAttrs() const {
  AttrSet out = vp;
  out.InsertAll(ve);
  out.InsertAll(ip);
  out.InsertAll(ie);
  out.InsertAll(eq.AllMembers());
  return out;
}

AttrSet RelationProfile::Visible() const { return vp.Union(ve); }

AttrSet RelationProfile::Implicit() const { return ip.Union(ie); }

bool RelationProfile::operator==(const RelationProfile& other) const {
  return vp == other.vp && ve == other.ve && ip == other.ip &&
         ie == other.ie && eq == other.eq;
}

std::string RelationProfile::ToString(const AttrRegistry& reg) const {
  std::string out = "v:";
  out += vp.ToString(reg);
  if (!ve.empty()) {
    out += "[";
    out += ve.ToString(reg);
    out += "]";
  }
  out += " i:";
  out += ip.ToString(reg);
  if (!ie.empty()) {
    out += "[";
    out += ie.ToString(reg);
    out += "]";
  }
  out += " eq:";
  bool first = true;
  for (const AttrSet& cls : eq.Classes()) {
    if (!first) out += ",";
    first = false;
    out += "{";
    out += cls.ToString(reg);
    out += "}";
  }
  return out;
}

}  // namespace mpq

// Relation profiles (Def 3.1): the informative content of a base or derived
// relation, as the 5-tuple [Rvp, Rve, Rip, Rie, R≃].

#ifndef MPQ_PROFILE_PROFILE_H_
#define MPQ_PROFILE_PROFILE_H_

#include <string>

#include "common/attr.h"
#include "common/attr_set.h"
#include "common/disjoint_set.h"

namespace mpq {

/// The profile of a relation.
///
/// - `vp` / `ve`: attributes visible in the schema, plaintext / encrypted.
/// - `ip` / `ie`: implicit attributes (leaked by selections, grouping, udfs),
///   plaintext / encrypted.
/// - `eq`: closure of the equivalence relationship among attributes connected
///   by comparisons in the computation.
struct RelationProfile {
  AttrSet vp;
  AttrSet ve;
  AttrSet ip;
  AttrSet ie;
  DisjointSet eq;

  /// Profile of a base relation: all attributes visible plaintext, nothing
  /// implicit, no equivalences (paper, Sec 3.2).
  static RelationProfile ForBase(const AttrSet& schema_attrs);

  /// All attributes appearing anywhere in the profile, including equivalence
  /// members (the set bounded by Theorem 3.1(i)).
  AttrSet AllAttrs() const;

  /// Visible attributes vp ∪ ve (== the relation's schema).
  AttrSet Visible() const;

  /// Implicit attributes ip ∪ ie.
  AttrSet Implicit() const;

  bool operator==(const RelationProfile& other) const;
  bool operator!=(const RelationProfile& other) const {
    return !(*this == other);
  }

  /// "v:SDT|CP i:D ≃:{SC}" rendering (encrypted parts bracketed).
  std::string ToString(const AttrRegistry& reg) const;
};

}  // namespace mpq

#endif  // MPQ_PROFILE_PROFILE_H_

#include "profile/propagate.h"

#include "common/str_util.h"

namespace mpq {

namespace {

/// Checks the executability constraint on a compared attribute pair: both
/// plaintext or both encrypted in the operand profile.
Status CheckUniformPair(const RelationProfile& in, AttrId a, AttrId b,
                        const AttrRegistry& reg) {
  bool a_plain = in.vp.Contains(a), b_plain = in.vp.Contains(b);
  bool a_enc = in.ve.Contains(a), b_enc = in.ve.Contains(b);
  if ((a_plain && b_plain) || (a_enc && b_enc)) return Status::OK();
  return Status::Unsupported(StrFormat(
      "condition compares %s and %s with non-uniform visibility",
      reg.Name(a).c_str(), reg.Name(b).c_str()));
}

RelationProfile PropagateSelect(const PlanNode* node, RelationProfile p) {
  for (const Predicate& pred : node->predicates) {
    if (pred.rhs_is_attr) {
      AttrSet pair{pred.lhs, pred.rhs_attr};
      p.eq.UnionAll(pair);
    } else {
      // a op value: a becomes implicit, in the form it is visible.
      if (p.vp.Contains(pred.lhs)) p.ip.Insert(pred.lhs);
      if (p.ve.Contains(pred.lhs)) p.ie.Insert(pred.lhs);
    }
  }
  return p;
}

}  // namespace

Result<RelationProfile> PropagateProfile(const PlanNode* node,
                                         const RelationProfile& left,
                                         const RelationProfile& right,
                                         const Catalog& catalog,
                                         const PropagateOptions& opts) {
  const AttrRegistry& reg = catalog.attrs();
  switch (node->kind) {
    case OpKind::kBase:
      return RelationProfile::ForBase(catalog.Get(node->rel).schema.Attrs());

    case OpKind::kProject: {
      RelationProfile p = left;
      p.vp = left.vp.Intersect(node->attrs);
      p.ve = left.ve.Intersect(node->attrs);
      return p;
    }

    case OpKind::kSelect: {
      if (opts.strict) {
        for (const Predicate& pred : node->predicates) {
          if (pred.rhs_is_attr) {
            MPQ_RETURN_NOT_OK(
                CheckUniformPair(left, pred.lhs, pred.rhs_attr, reg));
          }
        }
      }
      return PropagateSelect(node, left);
    }

    case OpKind::kCartesian: {
      RelationProfile p;
      p.vp = left.vp.Union(right.vp);
      p.ve = left.ve.Union(right.ve);
      p.ip = left.ip.Union(right.ip);
      p.ie = left.ie.Union(right.ie);
      p.eq = left.eq;
      p.eq.Merge(right.eq);
      return p;
    }

    case OpKind::kJoin: {
      // ⋈ ≡ σ_C(Rl × Rr): union profiles, then apply the condition.
      RelationProfile p;
      p.vp = left.vp.Union(right.vp);
      p.ve = left.ve.Union(right.ve);
      p.ip = left.ip.Union(right.ip);
      p.ie = left.ie.Union(right.ie);
      p.eq = left.eq;
      p.eq.Merge(right.eq);
      if (opts.strict) {
        for (const Predicate& pred : node->predicates) {
          MPQ_RETURN_NOT_OK(CheckUniformPair(p, pred.lhs, pred.rhs_attr, reg));
        }
      }
      return PropagateSelect(node, std::move(p));
    }

    case OpKind::kGroupBy: {
      // Visible: grouping attributes and aggregate inputs/outputs only.
      AttrSet kept = node->group_by;
      for (const Aggregate& a : node->aggregates) {
        if (a.func != AggFunc::kCountStar) kept.Insert(a.attr);
      }
      RelationProfile p = left;
      p.vp = left.vp.Intersect(kept);
      p.ve = left.ve.Intersect(kept);
      // Grouping leaks the grouped attributes (like an equality selection
      // with unknown value): add A to the implicit component.
      p.ip.InsertAll(left.vp.Intersect(node->group_by));
      p.ie.InsertAll(left.ve.Intersect(node->group_by));
      // count(*) and count(a) outputs are plaintext counters regardless of
      // the input's form (cardinalities are not value-protected; cf. the
      // plaintext auxiliary counter carried by homomorphic averages).
      for (const Aggregate& a : node->aggregates) {
        if (a.func == AggFunc::kCountStar) {
          p.vp.Insert(a.out_attr);
        } else if (a.func == AggFunc::kCount) {
          p.ve.Erase(a.out_attr);
          p.vp.Insert(a.out_attr);
        }
      }
      return p;
    }

    case OpKind::kUdf: {
      if (opts.strict) {
        // Udf inputs must be uniformly visible (all plaintext or all enc).
        bool all_plain = node->udf_inputs.IsSubsetOf(left.vp);
        bool all_enc = node->udf_inputs.IsSubsetOf(left.ve);
        if (!all_plain && !all_enc) {
          return Status::Unsupported(StrFormat(
              "udf %s inputs have non-uniform visibility",
              node->udf_name.c_str()));
        }
      }
      RelationProfile p = left;
      AttrSet dropped = node->udf_inputs;
      dropped.Erase(node->udf_output);
      p.vp = left.vp.Difference(dropped);
      p.ve = left.ve.Difference(dropped);
      p.eq.UnionAll(node->udf_inputs);
      return p;
    }

    case OpKind::kEncrypt: {
      if (opts.strict && !node->attrs.IsSubsetOf(left.vp)) {
        AttrSet missing = node->attrs.Difference(left.vp);
        return Status::InvalidArgument(StrFormat(
            "encrypt targets non-plaintext attributes [%s]",
            missing.ToString(reg).c_str()));
      }
      RelationProfile p = left;
      p.vp = left.vp.Difference(node->attrs);
      p.ve = left.ve.Union(node->attrs.Intersect(left.vp));
      if (!opts.strict) p.ve = left.ve.Union(node->attrs);
      return p;
    }

    case OpKind::kDecrypt: {
      if (opts.strict && !node->attrs.IsSubsetOf(left.ve)) {
        AttrSet missing = node->attrs.Difference(left.ve);
        return Status::InvalidArgument(StrFormat(
            "decrypt targets non-encrypted attributes [%s]",
            missing.ToString(reg).c_str()));
      }
      RelationProfile p = left;
      p.vp = left.vp.Union(node->attrs.Intersect(left.ve));
      if (!opts.strict) p.vp = left.vp.Union(node->attrs);
      p.ve = left.ve.Difference(node->attrs);
      return p;
    }
  }
  return Status::Internal("unreachable operator kind");
}

Status AnnotatePlan(PlanNode* root, const Catalog& catalog,
                    const PropagateOptions& opts) {
  for (PlanNode* n : PostOrder(root)) {
    static const RelationProfile kEmpty;
    const RelationProfile& l =
        n->num_children() > 0 ? n->child(0)->profile : kEmpty;
    const RelationProfile& r =
        n->num_children() > 1 ? n->child(1)->profile : kEmpty;
    MPQ_ASSIGN_OR_RETURN(n->profile, PropagateProfile(n, l, r, catalog, opts));
  }
  return Status::OK();
}

namespace {

Status CheckPair(const PlanNode* anc, const PlanNode* desc,
                 const AttrRegistry& reg) {
  // (i) attribute survival.
  AttrSet desc_all = desc->profile.AllAttrs();
  AttrSet anc_all = anc->profile.AllAttrs();
  if (!desc_all.IsSubsetOf(anc_all)) {
    AttrSet lost = desc_all.Difference(anc_all);
    return Status::Internal(StrFormat(
        "Theorem 3.1(i) violated between nodes %d and %d: attributes [%s] "
        "disappeared",
        anc->id, desc->id, lost.ToString(reg).c_str()));
  }
  // (ii) equivalence-set containment.
  for (const AttrSet& cls : desc->profile.eq.Classes()) {
    bool contained = false;
    for (const AttrSet& anc_cls : anc->profile.eq.Classes()) {
      if (cls.IsSubsetOf(anc_cls)) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      return Status::Internal(StrFormat(
          "Theorem 3.1(ii) violated between nodes %d and %d: class [%s] not "
          "contained in any ancestor class",
          anc->id, desc->id, cls.ToString(reg).c_str()));
    }
  }
  return Status::OK();
}

Status CheckRec(const PlanNode* anc, const PlanNode* sub,
                const AttrRegistry& reg) {
  for (const auto& c : sub->children) {
    // Paper convention (Sec 1): a leaf is "the projection of a source
    // relation" — the base node under a leaf projection is part of the leaf
    // box, so attributes the projection drops are not profile losses.
    bool leaf_projection =
        c->kind == OpKind::kBase && sub->kind == OpKind::kProject;
    if (!leaf_projection) {
      MPQ_RETURN_NOT_OK(CheckPair(anc, c.get(), reg));
    }
    MPQ_RETURN_NOT_OK(CheckRec(anc, c.get(), reg));
  }
  return Status::OK();
}

}  // namespace

Status CheckProfileMonotonicity(const PlanNode* root, const Catalog& catalog) {
  const AttrRegistry& reg = catalog.attrs();
  for (const PlanNode* n : PostOrder(root)) {
    MPQ_RETURN_NOT_OK(CheckRec(n, n, reg));
  }
  return Status::OK();
}

}  // namespace mpq

#include "obs/trace.h"

#include <algorithm>

#include "common/flat_hash.h"
#include "common/json_util.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace mpq {

namespace {

std::string HexId(uint64_t id) {
  return StrFormat("0x%016llx", static_cast<unsigned long long>(id));
}

/// Deterministic span id: a PRF of what the span *is*, never of when or
/// where it ran.
uint64_t SpanIdOf(uint64_t trace_id, const std::string& name, int node_id,
                  uint64_t salt, uint64_t parent) {
  uint64_t h = trace_id;
  h = SplitMix64(h ^ HashBytes(name));
  h = SplitMix64(h ^ (static_cast<uint64_t>(node_id) + 2) *
                         0x9e3779b97f4a7c15ull);
  h = SplitMix64(h ^ (salt + 1) * 0xbf58476d1ce4e5b9ull);
  h = SplitMix64(h ^ parent);
  return h | 1;  // never 0 ("no parent")
}

}  // namespace

uint64_t MakeTraceId(uint64_t session_id, uint64_t statement_digest,
                     uint64_t attempt) {
  uint64_t h = SplitMix64(session_id ^ 0x0b5e84d5a308d3f1ull);
  h = SplitMix64(h ^ statement_digest);
  h = SplitMix64(h ^ (attempt + 1) * 0x94d049bb133111ebull);
  return h | 1;
}

void Span::AnnInt(const char* key, int64_t v) {
  if (trace_ == nullptr) return;
  SpanArg a;
  a.key = key;
  a.kind = SpanArg::Kind::kInt;
  a.i = v;
  rec_.args.push_back(std::move(a));
}

void Span::AnnDouble(const char* key, double v) {
  if (trace_ == nullptr) return;
  SpanArg a;
  a.key = key;
  a.kind = SpanArg::Kind::kDouble;
  a.d = v;
  rec_.args.push_back(std::move(a));
}

void Span::AnnStr(const char* key, std::string v) {
  if (trace_ == nullptr) return;
  SpanArg a;
  a.key = key;
  a.kind = SpanArg::Kind::kStr;
  a.s = std::move(v);
  rec_.args.push_back(std::move(a));
}

void Span::End() {
  if (trace_ == nullptr) return;
  QueryTrace* t = trace_;
  trace_ = nullptr;
  rec_.end_ns = t->clock()->NowNs();
  t->Commit(std::move(rec_));
}

Span QueryTrace::StartSpan(std::string name, std::string cat, uint64_t parent,
                           int node_id, int track, uint64_t salt) {
  SpanRecord rec;
  rec.span_id = SpanIdOf(trace_id_, name, node_id, salt, parent);
  rec.parent_id = parent;
  rec.start_ns = clock_->NowNs();
  rec.name = std::move(name);
  rec.cat = std::move(cat);
  rec.node_id = node_id;
  rec.track = track;
  return Span(this, std::move(rec));
}

void QueryTrace::Commit(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

std::vector<SpanRecord> QueryTrace::Spans() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  return out;
}

void QueryTrace::WriteChromeEvents(JsonWriter* w, int pid) const {
  for (const SpanRecord& s : Spans()) {
    w->BeginObject()
        .Key("name")
        .String(s.name)
        .Key("cat")
        .String(s.cat)
        .Key("ph")
        .String("X")
        .Key("ts")
        .Double(static_cast<double>(s.start_ns) / 1e3)
        .Key("dur")
        .Double(static_cast<double>(s.end_ns - s.start_ns) / 1e3)
        .Key("pid")
        .Int(pid)
        .Key("tid")
        .Int(s.track)
        .Key("args");
    w->BeginObject()
        .Key("trace_id")
        .String(HexId(trace_id_))
        .Key("span_id")
        .String(HexId(s.span_id))
        .Key("parent_id")
        .String(HexId(s.parent_id));
    if (s.node_id >= 0) w->Key("node").Int(s.node_id);
    for (const SpanArg& a : s.args) {
      w->Key(a.key);
      switch (a.kind) {
        case SpanArg::Kind::kInt:
          w->Int(a.i);
          break;
        case SpanArg::Kind::kDouble:
          w->Double(a.d);
          break;
        case SpanArg::Kind::kStr:
          w->String(a.s);
          break;
      }
    }
    w->EndObject();  // args
    w->EndObject();  // event
  }
}

std::string QueryTrace::ToChromeJson() const {
  JsonWriter w;
  w.BeginObject().Key("traceEvents").BeginArray();
  WriteChromeEvents(&w, /*pid=*/0);
  w.EndArray().EndObject();
  return w.TakeString();
}

void TraceSink::Add(std::shared_ptr<const QueryTrace> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(std::move(trace));
  while (capacity_ > 0 && traces_.size() > capacity_) traces_.pop_front();
}

std::vector<std::shared_ptr<const QueryTrace>> TraceSink::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::shared_ptr<const QueryTrace>>(traces_.begin(),
                                                        traces_.end());
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::string TraceSink::ToChromeJson() const {
  JsonWriter w;
  w.BeginObject().Key("traceEvents").BeginArray();
  int pid = 0;
  for (const auto& t : Traces()) {
    t->WriteChromeEvents(&w, pid++);
  }
  w.EndArray().EndObject();
  return w.TakeString();
}

std::shared_ptr<QueryTrace> Tracer::MaybeStart(uint64_t session_id,
                                               uint64_t statement_digest,
                                               uint64_t attempt) {
  if (!config_.enabled) return nullptr;
  uint64_t n = started_.fetch_add(1, std::memory_order_relaxed);
  if (config_.sample_every > 1 && n % config_.sample_every != 0) {
    return nullptr;
  }
  return Start(session_id, statement_digest, attempt);
}

std::shared_ptr<QueryTrace> Tracer::Start(uint64_t session_id,
                                          uint64_t statement_digest,
                                          uint64_t attempt) const {
  return std::make_shared<QueryTrace>(
      MakeTraceId(session_id, statement_digest, attempt), clock_);
}

void Tracer::Finish(std::shared_ptr<const QueryTrace> trace) {
  if (sink_ != nullptr && trace != nullptr) sink_->Add(std::move(trace));
}

}  // namespace mpq

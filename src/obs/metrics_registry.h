// Unified metrics registry: named counters, gauges and latency histograms
// with a Prometheus-style text exposition. The serving layer's histograms
// (LatencyHistogram, re-homed here from service/metrics.h) and counters all
// surface through one TextExposition(), alongside free-form collectors for
// subsystems that keep their own state (the plan cache, per-operator
// profiles). Instrument handles are stable pointers — callers resolve a
// metric once and update it with relaxed atomics, no lock on the hot path.

#ifndef MPQ_OBS_METRICS_REGISTRY_H_
#define MPQ_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mpq {

/// Monotone counter. Updates are relaxed atomic adds.
class MetricCounter {
 public:
  void Inc(uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins gauge.
class MetricGauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-bucket latency histogram over [10 ns, ~86 s), eight log-spaced
/// sub-buckets per octave (≤ ~9% relative quantile error). The range starts
/// far below a microsecond so sub-millisecond warm-cache hits land in real
/// buckets instead of the underflow bucket — tests/service_test.cc pins
/// this resolution. Record is a pair of relaxed atomic adds, safe from any
/// number of threads.
class LatencyHistogram {
 public:
  void Record(double seconds);

  /// Estimated quantile in seconds (`p` in [0, 1]); 0 when empty. Linear
  /// interpolation inside the winning bucket.
  double Quantile(double p) const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Sum of recorded values in seconds (nanosecond resolution) — the
  /// exposition's `_sum` series.
  double SumSeconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e9;
  }

  void Reset();

 private:
  static constexpr size_t kSubBuckets = 8;   ///< per octave
  static constexpr size_t kOctaves = 33;     ///< 10 ns << 33 ≈ 86 s
  static constexpr size_t kBuckets = kSubBuckets * kOctaves + 2;  // ± overflow

  static size_t BucketOf(double seconds);
  static double BucketLowerBound(size_t bucket);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

/// The registry. Get* registers on first use and returns the existing
/// instrument on every later call with the same (name, labels); the pointer
/// stays valid for the registry's lifetime. Registration takes a lock;
/// instrument updates never do.
class MetricsRegistry {
 public:
  /// `labels` is the literal label body, e.g. `op="join"` (empty = none).
  MetricCounter* GetCounter(const std::string& name, const std::string& help,
                            const std::string& labels = "");
  MetricGauge* GetGauge(const std::string& name, const std::string& help,
                        const std::string& labels = "");
  /// Histograms expose as Prometheus summaries: quantile series + _sum +
  /// _count.
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels = "");

  /// Registers a callback that appends exposition lines (HELP/TYPE included,
  /// newline-terminated) — for subsystems whose state lives elsewhere.
  void AddCollector(std::function<void(std::string*)> collector);

  /// The full Prometheus text exposition: families sorted by name, then
  /// collector output in registration order.
  std::string TextExposition() const;

 private:
  template <typename T>
  struct Family {
    std::string help;
    std::map<std::string, std::unique_ptr<T>> series;  // by label body
  };

  mutable std::mutex mu_;
  std::map<std::string, Family<MetricCounter>> counters_;    // by mu_
  std::map<std::string, Family<MetricGauge>> gauges_;        // by mu_
  std::map<std::string, Family<LatencyHistogram>> histos_;   // by mu_
  std::vector<std::function<void(std::string*)>> collectors_;  // by mu_
};

}  // namespace mpq

#endif  // MPQ_OBS_METRICS_REGISTRY_H_

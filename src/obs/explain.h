// EXPLAIN ANALYZE: re-renders a plan with per-node observed execution
// detail (rows, wall/virtual time) and, for every assignee-crossing edge,
// the cost model's *predicted* bytes next to the *observed* bytes-on-wire —
// calibration error is a first-class output, not something to eyeball.
//
// The renderer is a pure function of (extended plan, trace, estimates): it
// reads the spans a traced run recorded (exec/distributed.cc, "op"/"net"
// categories) and the estimates the optimizer priced the plan with, so the
// report shows exactly what the assignment decision was based on versus
// what the network delivered.

#ifndef MPQ_OBS_EXPLAIN_H_
#define MPQ_OBS_EXPLAIN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "assign/cost_model.h"
#include "extend/extend.h"
#include "obs/trace.h"

namespace mpq {

/// Predicted-vs-observed bytes of one assignee-crossing edge (the output of
/// `node_id` shipped from its assignee to its parent's assignee — or to the
/// user, for the root).
struct EdgeCalibration {
  int node_id = -1;
  std::string from;
  std::string to;
  double predicted_bytes = 0;   ///< Cost model estimate priced at plan time.
  uint64_t observed_bytes = 0;  ///< Bytes the (simulated) network moved.
  /// |predicted - observed| / max(observed, 1).
  double abs_rel_err = 0;
};

/// The EXPLAIN ANALYZE report of one traced execution.
struct ExplainAnalyzeReport {
  /// plan_printer rendering annotated with observed rows/time per node and
  /// predicted/observed bytes per crossing edge.
  std::string text;
  std::vector<EdgeCalibration> edges;
  /// Mean of edges[].abs_rel_err (0 when there are no crossing edges): the
  /// headline cost-model calibration number.
  double mean_abs_rel_err = 0;
  uint64_t total_transfer_bytes = 0;
  uint64_t num_messages = 0;
  /// Failover detail of this query (zero on a fault-free run): re-plan
  /// attempts, bytes the abandoned attempts moved, and seconds spent
  /// recovering — per-query attribution, not the aggregate counters.
  uint64_t failovers = 0;
  uint64_t retransfer_bytes = 0;
  double failover_latency_s = 0;

  /// Machine-readable form (text excluded; edges and totals included).
  std::string ToJson() const;
};

/// Builds the report for one traced run of `ext` delivered to `user`.
/// `estimates` must be EstimatePlan output over the *extended* plan (keyed
/// by node id) — the same estimates the optimizer priced transfers with.
ExplainAnalyzeReport RenderExplainAnalyze(
    const ExtendedPlan& ext, const Catalog& catalog,
    const SubjectRegistry& subjects, SubjectId user, const QueryTrace& trace,
    const std::unordered_map<int, NodeEstimate>& estimates);

}  // namespace mpq

#endif  // MPQ_OBS_EXPLAIN_H_

#include "obs/slow_query_log.h"

#include <algorithm>

#include "common/json_util.h"
#include "common/str_util.h"

namespace mpq {

void SlowQueryLog::Record(uint64_t digest, std::string_view normalized_sql,
                          double seconds, uint64_t trace_id) {
  if (!(seconds >= threshold_s_)) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) {
    if (capacity_ > 0 && entries_.size() >= capacity_) {
      // Evict the least-bad statement; the new one must beat it to enter.
      auto victim = entries_.begin();
      for (auto e = entries_.begin(); e != entries_.end(); ++e) {
        if (e->second.max_s < victim->second.max_s) victim = e;
      }
      if (victim->second.max_s >= seconds) return;
      entries_.erase(victim);
    }
    SlowQueryEntry e;
    e.digest = digest;
    e.normalized_sql = std::string(normalized_sql);
    it = entries_.emplace(digest, std::move(e)).first;
  }
  SlowQueryEntry& e = it->second;
  e.count++;
  e.last_s = seconds;
  e.total_s += seconds;
  if (seconds > e.max_s) {
    e.max_s = seconds;
    e.trace_id = trace_id;
  }
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::vector<SlowQueryEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [digest, e] : entries_) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              if (a.max_s != b.max_s) return a.max_s > b.max_s;
              return a.digest < b.digest;
            });
  return out;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string SlowQueryLog::ToJson() const {
  JsonWriter w;
  w.BeginObject().Key("threshold_s").Double(threshold_s_);
  w.Key("entries").BeginArray();
  for (const SlowQueryEntry& e : Entries()) {
    w.BeginObject()
        .Key("digest")
        .String(StrFormat("0x%016llx",
                          static_cast<unsigned long long>(e.digest)))
        .Key("sql")
        .String(e.normalized_sql)
        .Key("count")
        .UInt(e.count)
        .Key("max_s")
        .Double(e.max_s)
        .Key("last_s")
        .Double(e.last_s)
        .Key("total_s")
        .Double(e.total_s)
        .Key("trace_id")
        .String(StrFormat("0x%016llx",
                          static_cast<unsigned long long>(e.trace_id)))
        .EndObject();
  }
  w.EndArray().EndObject();
  return w.TakeString();
}

}  // namespace mpq

#include "obs/metrics_registry.h"

#include <cmath>

#include "common/str_util.h"

namespace mpq {

namespace {
constexpr double kMinLatencyS = 1e-8;  // bucket 1 lower bound

std::string SeriesName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

std::string QuantileSeries(const std::string& name, const std::string& labels,
                           const char* q) {
  if (labels.empty()) {
    return StrFormat("%s{quantile=\"%s\"}", name.c_str(), q);
  }
  return StrFormat("%s{%s,quantile=\"%s\"}", name.c_str(), labels.c_str(), q);
}

void AppendHeader(const std::string& name, const std::string& help,
                  const char* type, std::string* out) {
  out->append("# HELP " + name + " " + help + "\n");
  out->append("# TYPE " + name + " ");
  out->append(type);
  out->append("\n");
}

}  // namespace

size_t LatencyHistogram::BucketOf(double seconds) {
  if (!(seconds > kMinLatencyS)) return 0;  // underflow (also NaN)
  double octaves = std::log2(seconds / kMinLatencyS);
  auto idx = static_cast<size_t>(octaves * kSubBuckets);
  if (idx >= kSubBuckets * kOctaves) return kBuckets - 1;  // overflow
  size_t bucket = idx + 1;
  // log2 rounding can land a value sitting exactly on a bucket boundary one
  // bucket off in either direction (2^(k/8) recomputed through log2 is not
  // exact). Correct against the authoritative bounds so bucket b always
  // covers exactly [BucketLowerBound(b), BucketLowerBound(b + 1)).
  if (seconds < BucketLowerBound(bucket)) {
    --bucket;
  } else if (bucket + 1 < kBuckets &&
             seconds >= BucketLowerBound(bucket + 1)) {
    ++bucket;
  }
  return bucket;
}

double LatencyHistogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return kMinLatencyS *
         std::exp2(static_cast<double>(bucket - 1) / kSubBuckets);
}

void LatencyHistogram::Record(double seconds) {
  buckets_[BucketOf(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (seconds > 0 && std::isfinite(seconds)) {
    sum_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
  }
}

double LatencyHistogram::Quantile(double p) const {
  uint64_t total = 0;
  std::array<uint64_t, kBuckets> snap;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the target observation (1-based, ceil).
  auto rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (snap[i] == 0) continue;
    if (seen + snap[i] >= rank) {
      double lo = BucketLowerBound(i);
      double hi = i + 1 < kBuckets ? BucketLowerBound(i + 1) : lo * 2;
      // Place the rank-th observation at the midpoint of its within-bucket
      // slot ((rank - seen - 1/2) of snap[i] equal slices) instead of the
      // slot's upper edge: a single-sample bucket then reports its center
      // rather than its upper bound, and the estimate is unbiased for
      // uniformly spread observations.
      double frac = (static_cast<double>(rank - seen) - 0.5) /
                    static_cast<double>(snap[i]);
      return lo + (hi - lo) * frac;
    }
    seen += snap[i];
  }
  return BucketLowerBound(kBuckets - 1);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name,
                                           const std::string& help,
                                           const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family<MetricCounter>& fam = counters_[name];
  if (fam.help.empty()) fam.help = help;
  auto& slot = fam.series[labels];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name,
                                       const std::string& help,
                                       const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family<MetricGauge>& fam = gauges_[name];
  if (fam.help.empty()) fam.help = help;
  auto& slot = fam.series[labels];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help,
                                                const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family<LatencyHistogram>& fam = histos_[name];
  if (fam.help.empty()) fam.help = help;
  auto& slot = fam.series[labels];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::AddCollector(std::function<void(std::string*)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

std::string MetricsRegistry::TextExposition() const {
  std::string out;
  std::vector<std::function<void(std::string*)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, fam] : counters_) {
      AppendHeader(name, fam.help, "counter", &out);
      for (const auto& [labels, c] : fam.series) {
        out.append(StrFormat("%s %llu\n", SeriesName(name, labels).c_str(),
                             static_cast<unsigned long long>(c->Value())));
      }
    }
    for (const auto& [name, fam] : gauges_) {
      AppendHeader(name, fam.help, "gauge", &out);
      for (const auto& [labels, g] : fam.series) {
        out.append(StrFormat("%s %.17g\n", SeriesName(name, labels).c_str(),
                             g->Value()));
      }
    }
    for (const auto& [name, fam] : histos_) {
      AppendHeader(name, fam.help, "summary", &out);
      for (const auto& [labels, h] : fam.series) {
        out.append(StrFormat("%s %.9g\n",
                             QuantileSeries(name, labels, "0.5").c_str(),
                             h->Quantile(0.50)));
        out.append(StrFormat("%s %.9g\n",
                             QuantileSeries(name, labels, "0.95").c_str(),
                             h->Quantile(0.95)));
        out.append(StrFormat("%s %.9g\n",
                             QuantileSeries(name, labels, "0.99").c_str(),
                             h->Quantile(0.99)));
        out.append(StrFormat("%s %.9g\n",
                             SeriesName(name + "_sum", labels).c_str(),
                             h->SumSeconds()));
        out.append(StrFormat(
            "%s %llu\n", SeriesName(name + "_count", labels).c_str(),
            static_cast<unsigned long long>(h->Count())));
      }
    }
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn(&out);
  return out;
}

}  // namespace mpq

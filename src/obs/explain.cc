#include "obs/explain.h"

#include <algorithm>
#include <cmath>

#include "algebra/plan_printer.h"
#include "common/json_util.h"
#include "common/str_util.h"

namespace mpq {

namespace {

const SpanArg* FindArg(const SpanRecord& r, const char* key) {
  for (const SpanArg& a : r.args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

double ArgNum(const SpanRecord* r, const char* key, double fallback = 0) {
  if (r == nullptr) return fallback;
  const SpanArg* a = FindArg(*r, key);
  if (a == nullptr) return fallback;
  if (a->kind == SpanArg::Kind::kDouble) return a->d;
  if (a->kind == SpanArg::Kind::kInt) return static_cast<double>(a->i);
  return fallback;
}

/// Collects every assignee-crossing edge (child output shipped to the
/// parent's assignee; the root's output shipped to the user).
void CollectEdges(const PlanNode* n, SubjectId dst, const ExtendedPlan& ext,
                  const SubjectRegistry& subjects,
                  const std::unordered_map<int, NodeEstimate>& estimates,
                  const std::unordered_map<int, const SpanRecord*>& net_of,
                  std::vector<EdgeCalibration>* out) {
  auto it = ext.assignment.find(n->id);
  if (it != ext.assignment.end() && it->second != dst) {
    EdgeCalibration e;
    e.node_id = n->id;
    e.from = subjects.Name(it->second);
    e.to = subjects.Name(dst);
    auto est = estimates.find(n->id);
    e.predicted_bytes = est != estimates.end() ? est->second.bytes : 0;
    auto net = net_of.find(n->id);
    e.observed_bytes = static_cast<uint64_t>(
        ArgNum(net != net_of.end() ? net->second : nullptr, "bytes"));
    e.abs_rel_err =
        std::fabs(e.predicted_bytes - static_cast<double>(e.observed_bytes)) /
        std::max<double>(static_cast<double>(e.observed_bytes), 1.0);
    out->push_back(e);
  }
  SubjectId self = it != ext.assignment.end() ? it->second : dst;
  for (const auto& c : n->children) {
    CollectEdges(c.get(), self, ext, subjects, estimates, net_of, out);
  }
}

std::string PercentStr(double frac) {
  return StrFormat("%.1f%%", frac * 100.0);
}

}  // namespace

std::string ExplainAnalyzeReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("mean_abs_rel_err").Double(mean_abs_rel_err);
  w.Key("total_transfer_bytes").UInt(total_transfer_bytes);
  w.Key("num_messages").UInt(num_messages);
  w.Key("failovers").UInt(failovers);
  w.Key("retransfer_bytes").UInt(retransfer_bytes);
  w.Key("failover_latency_s").Double(failover_latency_s);
  w.Key("edges").BeginArray();
  for (const EdgeCalibration& e : edges) {
    w.BeginObject();
    w.Key("node").Int(e.node_id);
    w.Key("from").String(e.from);
    w.Key("to").String(e.to);
    w.Key("predicted_bytes").Double(e.predicted_bytes);
    w.Key("observed_bytes").UInt(e.observed_bytes);
    w.Key("abs_rel_err").Double(e.abs_rel_err);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

ExplainAnalyzeReport RenderExplainAnalyze(
    const ExtendedPlan& ext, const Catalog& catalog,
    const SubjectRegistry& subjects, SubjectId user, const QueryTrace& trace,
    const std::unordered_map<int, NodeEstimate>& estimates) {
  ExplainAnalyzeReport report;

  // Spans are sorted by start time, so on a failover the surviving (last)
  // attempt's spans win the per-node maps — the report describes the run
  // that actually produced the result.
  const std::vector<SpanRecord> spans = trace.Spans();
  std::unordered_map<int, const SpanRecord*> op_of;
  std::unordered_map<int, const SpanRecord*> net_of;
  const SpanRecord* dispatch = nullptr;
  const SpanRecord* last_failover = nullptr;
  for (const SpanRecord& r : spans) {
    if (r.cat == "op" && r.node_id >= 0) {
      op_of[r.node_id] = &r;
    } else if (r.cat == "net" && r.node_id >= 0) {
      net_of[r.node_id] = &r;
    } else if (r.cat == "exec" && r.name == "dispatch") {
      dispatch = &r;
    } else if (r.cat == "failover") {
      ++report.failovers;
      if (FindArg(r, "retransfer_bytes") != nullptr) last_failover = &r;
    }
  }
  report.total_transfer_bytes =
      static_cast<uint64_t>(ArgNum(dispatch, "transfer_bytes"));
  report.num_messages = static_cast<uint64_t>(ArgNum(dispatch, "messages"));
  report.retransfer_bytes =
      static_cast<uint64_t>(ArgNum(last_failover, "retransfer_bytes"));
  report.failover_latency_s = ArgNum(last_failover, "failover_latency_s");

  CollectEdges(ext.plan.get(), user, ext, subjects, estimates, net_of,
               &report.edges);
  double err_sum = 0;
  for (const EdgeCalibration& e : report.edges) err_sum += e.abs_rel_err;
  report.mean_abs_rel_err =
      report.edges.empty() ? 0 : err_sum / report.edges.size();

  std::unordered_map<int, const EdgeCalibration*> edge_of;
  for (const EdgeCalibration& e : report.edges) edge_of[e.node_id] = &e;

  PrintOptions opts;
  opts.assignment = &ext.assignment;
  opts.subjects = &subjects;
  opts.annotate = [&](const PlanNode* n) {
    std::string s;
    auto op = op_of.find(n->id);
    if (op != op_of.end()) {
      s += StrFormat(
          "[rows=%llu t=%.3fms",
          static_cast<unsigned long long>(ArgNum(op->second, "rows_out")),
          ArgNum(op->second, "wall_ns") / 1e6);
      auto morsels = static_cast<unsigned long long>(
          ArgNum(op->second, "morsels"));
      if (morsels > 0) s += StrFormat(" morsels=%llu", morsels);
      s += "]";
    }
    auto e = edge_of.find(n->id);
    if (e != edge_of.end()) {
      if (!s.empty()) s += " ";
      s += StrFormat(
          "[net %lluB, pred %.0fB, err %s]",
          static_cast<unsigned long long>(e->second->observed_bytes),
          e->second->predicted_bytes,
          PercentStr(e->second->abs_rel_err).c_str());
    }
    return s;
  };

  std::string text =
      StrFormat("EXPLAIN ANALYZE (trace 0x%016llx)\n",
                static_cast<unsigned long long>(trace.trace_id()));
  text += PrintPlan(ext.plan.get(), catalog, opts);
  text += StrFormat(
      "transfer: %llu bytes in %llu messages\n",
      static_cast<unsigned long long>(report.total_transfer_bytes),
      static_cast<unsigned long long>(report.num_messages));
  text += StrFormat("cost-model calibration: mean |pred-obs|/obs = %s over "
                    "%zu crossing edges\n",
                    PercentStr(report.mean_abs_rel_err).c_str(),
                    report.edges.size());
  if (report.failovers > 0) {
    text += StrFormat(
        "failover: %llu re-plans, %llu bytes retransferred, %.6fs recovery\n",
        static_cast<unsigned long long>(report.failovers),
        static_cast<unsigned long long>(report.retransfer_bytes),
        report.failover_latency_s);
  }
  report.text = std::move(text);
  return report;
}

}  // namespace mpq

// Span-based query tracing. One QueryTrace collects the spans of one
// Execute: parse/normalize, plan-cache probe, candidate enumeration,
// assignment optimization, per-fragment distributed dispatch (one span per
// assignee-crossing SimNet edge, annotated with bytes-on-wire and
// retry/crash counts), failover re-planning, and per-operator execution.
//
// Determinism: trace and span ids are PRFs of (session, statement digest,
// attempt) and of (trace id, span name, plan-node id, salt) respectively —
// never of scheduling order or addresses — so the same query produces the
// same ids at any thread count. Timestamps come from a pluggable TraceClock
// (wall time or SimNet virtual time) and are the only nondeterministic
// fields. Execution never reads the trace, so traced runs are bit-identical
// to untraced runs; the tracer is off by default and MaybeStart returns
// null before touching any shared state when disabled.

#ifndef MPQ_OBS_TRACE_H_
#define MPQ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace mpq {

class JsonWriter;

/// One key/value annotation of a span.
struct SpanArg {
  enum class Kind { kInt, kDouble, kStr };
  std::string key;
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double d = 0;
  std::string s;
};

/// A completed span.
struct SpanRecord {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = top-level.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::string name;
  std::string cat;   ///< "plan", "cache", "op", "frag", "net", "failover", …
  int node_id = -1;  ///< Plan node the span belongs to, -1 when none.
  int track = 0;     ///< Chrome tid; fragment spans use the assignee id.
  std::vector<SpanArg> args;
};

class QueryTrace;

/// RAII handle over an open span. Annotations accumulate locally (no lock);
/// End() — or destruction — stamps the end time and commits the record to
/// the owning trace. A default-constructed Span is inert: every method is a
/// no-op, which is how instrumented code stays branch-light when tracing is
/// off (pass a null trace, get inert spans).
class Span {
 public:
  Span() = default;
  Span(Span&& o) noexcept : trace_(o.trace_), rec_(std::move(o.rec_)) {
    o.trace_ = nullptr;
  }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      End();
      trace_ = o.trace_;
      rec_ = std::move(o.rec_);
      o.trace_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  explicit operator bool() const { return trace_ != nullptr; }
  /// The span's id (0 when inert) — pass as `parent` to child spans.
  uint64_t id() const { return trace_ != nullptr ? rec_.span_id : 0; }

  void AnnInt(const char* key, int64_t v);
  void AnnDouble(const char* key, double v);
  void AnnStr(const char* key, std::string v);

  /// Stamps the end time and commits; further calls are no-ops.
  void End();

 private:
  friend class QueryTrace;
  Span(QueryTrace* trace, SpanRecord rec)
      : trace_(trace), rec_(std::move(rec)) {}

  QueryTrace* trace_ = nullptr;
  SpanRecord rec_;
};

/// Deterministic trace id of (session, statement digest, attempt).
uint64_t MakeTraceId(uint64_t session_id, uint64_t statement_digest,
                     uint64_t attempt);

/// The spans of one traced query. Thread-safe: any number of engine threads
/// may open and commit spans concurrently.
class QueryTrace {
 public:
  QueryTrace(uint64_t trace_id, const TraceClock* clock)
      : trace_id_(trace_id),
        clock_(clock != nullptr ? clock : WallClock::Global()) {}

  uint64_t trace_id() const { return trace_id_; }
  const TraceClock* clock() const { return clock_; }

  /// Opens a span. `salt` disambiguates repeated (name, node) spans (e.g.
  /// the failover attempt number) so ids stay deterministic AND unique.
  Span StartSpan(std::string name, std::string cat, uint64_t parent = 0,
                 int node_id = -1, int track = 0, uint64_t salt = 0);

  /// Committed spans, sorted by (start_ns, span_id).
  std::vector<SpanRecord> Spans() const;

  /// Appends this trace's Chrome trace-event objects ("ph":"X") to an open
  /// JSON array in `w`; `pid` groups the trace in the viewer.
  void WriteChromeEvents(JsonWriter* w, int pid) const;

  /// A standalone chrome://tracing-loadable document:
  /// {"traceEvents":[...]}.
  std::string ToChromeJson() const;

 private:
  friend class Span;
  void Commit(SpanRecord rec);

  const uint64_t trace_id_;
  const TraceClock* clock_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;  // guarded by mu_
};

/// Tracing knobs.
struct TraceConfig {
  bool enabled = false;
  /// Trace every Nth started query (1 = all). Sampling decisions come from
  /// a private counter, never from the queries themselves.
  uint64_t sample_every = 1;
};

/// Bounded retention of finished traces (newest kept). Thread-safe.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 64) : capacity_(capacity) {}

  void Add(std::shared_ptr<const QueryTrace> trace);
  std::vector<std::shared_ptr<const QueryTrace>> Traces() const;
  size_t size() const;

  /// Every retained trace merged into one Chrome document, one pid per
  /// trace (oldest first).
  std::string ToChromeJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const QueryTrace>> traces_;  // guarded by mu_
};

/// Hands out QueryTraces per the sampling config. Near-zero overhead when
/// disabled: MaybeStart is one predictable branch.
class Tracer {
 public:
  Tracer() = default;
  Tracer(TraceConfig config, const TraceClock* clock, TraceSink* sink)
      : config_(config), clock_(clock), sink_(sink) {}

  bool enabled() const { return config_.enabled; }

  /// Null when disabled or sampled out; a fresh trace otherwise.
  std::shared_ptr<QueryTrace> MaybeStart(uint64_t session_id,
                                         uint64_t statement_digest,
                                         uint64_t attempt = 0);

  /// Always starts a trace (EXPLAIN ANALYZE forces tracing regardless of
  /// the sampling config).
  std::shared_ptr<QueryTrace> Start(uint64_t session_id,
                                    uint64_t statement_digest,
                                    uint64_t attempt = 0) const;

  /// Hands a finished trace to the sink (no-op without one).
  void Finish(std::shared_ptr<const QueryTrace> trace);

 private:
  TraceConfig config_;
  const TraceClock* clock_ = nullptr;
  TraceSink* sink_ = nullptr;
  std::atomic<uint64_t> started_{0};
};

}  // namespace mpq

#endif  // MPQ_OBS_TRACE_H_

// Pluggable trace clocks. Spans stamp their start/end through a TraceClock,
// so the same tracer serves wall-clock serving processes and SimNet runs
// whose only meaningful time is the network's accumulated *virtual* seconds
// (net/simnet.h exposes a SimNetClock over it). Clocks are read-only from
// the tracer's point of view and must be safe to read from many threads.

#ifndef MPQ_OBS_CLOCK_H_
#define MPQ_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mpq {

/// Timestamp source for spans. Implementations return monotone(ish)
/// nanoseconds from an arbitrary epoch; only differences are interpreted.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  virtual uint64_t NowNs() const = 0;
};

/// Wall time (steady_clock). The default when no clock is supplied.
class WallClock : public TraceClock {
 public:
  uint64_t NowNs() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// A process-wide instance (stateless, so sharing is free).
  static const WallClock* Global() {
    static const WallClock clock;
    return &clock;
  }
};

/// Manually advanced virtual time, for tests that pin span timestamps.
class VirtualClock : public TraceClock {
 public:
  uint64_t NowNs() const override {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void AdvanceNs(uint64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void SetNs(uint64_t ns) { now_ns_.store(ns, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_ns_{0};
};

}  // namespace mpq

#endif  // MPQ_OBS_CLOCK_H_

// Slow-query log keyed by normalized-SQL digest: one entry per distinct
// statement that ever exceeded the threshold, carrying occurrence counts,
// worst/last latencies, and the trace id of the slowest occurrence so a
// retained trace (obs/trace.h TraceSink) can be pulled up next to the log
// line. Bounded: when full, the entry with the smallest worst-case latency
// is evicted first.

#ifndef MPQ_OBS_SLOW_QUERY_LOG_H_
#define MPQ_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mpq {

/// One logged statement.
struct SlowQueryEntry {
  uint64_t digest = 0;         ///< HashBytes of the normalized SQL.
  std::string normalized_sql;
  uint64_t count = 0;          ///< Occurrences over the threshold.
  double max_s = 0;            ///< Slowest occurrence.
  double last_s = 0;           ///< Most recent occurrence.
  double total_s = 0;          ///< Sum over logged occurrences.
  uint64_t trace_id = 0;       ///< Trace of the slowest occurrence (0 = none).
};

/// Thread-safe bounded log.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(double threshold_s = 0.1, size_t capacity = 128)
      : threshold_s_(threshold_s), capacity_(capacity) {}

  double threshold_s() const { return threshold_s_; }

  /// Records one execution; ignored when under the threshold.
  void Record(uint64_t digest, std::string_view normalized_sql,
              double seconds, uint64_t trace_id = 0);

  /// Entries sorted by max_s descending (worst offender first).
  std::vector<SlowQueryEntry> Entries() const;

  size_t size() const;

  /// {"threshold_s":…,"entries":[{…},…]} with entries worst-first.
  std::string ToJson() const;

 private:
  const double threshold_s_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, SlowQueryEntry> entries_;  // guarded by mu_
};

}  // namespace mpq

#endif  // MPQ_OBS_SLOW_QUERY_LOG_H_

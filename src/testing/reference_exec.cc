#include "testing/reference_exec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <unordered_map>

#include "common/str_util.h"

namespace mpq {

namespace {

Status OracleUnsupported(const char* what) {
  return Status::Unsupported(
      StrFormat("row-path oracle: %s is not part of plaintext plans", what));
}

/// Row-major predicate evaluation: one bound predicate against one row.
struct OraclePredicate {
  CmpOp op;
  int lhs_col;
  int rhs_col = -1;
  Cell rhs_const;
};

Result<bool> EvalRow(const std::vector<OraclePredicate>& preds,
                     const std::vector<Cell>& row) {
  for (const OraclePredicate& p : preds) {
    const Cell& lhs = row[static_cast<size_t>(p.lhs_col)];
    const Cell& rhs =
        p.rhs_col >= 0 ? row[static_cast<size_t>(p.rhs_col)] : p.rhs_const;
    MPQ_ASSIGN_OR_RETURN(bool ok, CompareCells(p.op, lhs, rhs));
    if (!ok) return false;
  }
  return true;
}

std::vector<Cell> ConcatRow(const std::vector<Cell>& a,
                            const std::vector<Cell>& b) {
  std::vector<Cell> row = a;
  row.insert(row.end(), b.begin(), b.end());
  return row;
}

/// Row-major aggregation state, the pre-columnar accumulator.
struct OracleAggState {
  double sum = 0;
  bool sum_is_double = false;
  int64_t count = 0;
  Cell min_max;
  bool has_min_max = false;
};

Status OracleAccumulate(const Aggregate& agg, const Cell& cell,
                        OracleAggState* s) {
  switch (agg.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      s->count++;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (cell.is_encrypted()) return OracleUnsupported("ciphertext sum");
      const Value& v = cell.plain();
      if (v.is_null()) return Status::OK();
      if (v.is_string()) return OracleUnsupported("sum over strings");
      s->sum += v.AsDouble();
      if (v.is_double()) s->sum_is_double = true;
      s->count++;
      return Status::OK();
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      bool better;
      if (!s->has_min_max) {
        better = true;
      } else {
        CmpOp op = agg.func == AggFunc::kMin ? CmpOp::kLt : CmpOp::kGt;
        MPQ_ASSIGN_OR_RETURN(better, CompareCells(op, cell, s->min_max));
      }
      if (better) {
        s->min_max = cell;
        s->has_min_max = true;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable aggregate function");
}

/// Merges a later partial state into `dst`, in partial order — mirrors the
/// columnar engine's per-batch merge so double sums associate identically.
Status OracleMerge(const Aggregate& agg, OracleAggState src,
                   OracleAggState* dst) {
  switch (agg.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      dst->count += src.count;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg:
      dst->sum += src.sum;
      dst->sum_is_double = dst->sum_is_double || src.sum_is_double;
      dst->count += src.count;
      return Status::OK();
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (!src.has_min_max) return Status::OK();
      bool better;
      if (!dst->has_min_max) {
        better = true;
      } else {
        CmpOp op = agg.func == AggFunc::kMin ? CmpOp::kLt : CmpOp::kGt;
        MPQ_ASSIGN_OR_RETURN(better,
                             CompareCells(op, src.min_max, dst->min_max));
      }
      if (better) {
        dst->min_max = std::move(src.min_max);
        dst->has_min_max = true;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable aggregate function");
}

}  // namespace

int ReferenceExecutor::RowTable::ColIndex(AttrId attr) const {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].attr == attr) return static_cast<int>(i);
  }
  return -1;
}

void ReferenceExecutor::LoadTable(RelId rel, const Table* data) {
  RowTable t;
  t.cols = data->columns();
  t.rows.reserve(data->num_rows());
  for (size_t r = 0; r < data->num_rows(); ++r) {
    t.rows.push_back(data->row(r));
  }
  tables_[rel] = std::move(t);
}

Result<ReferenceExecutor::RowTable> ReferenceExecutor::Exec(
    const PlanNode* n) const {
  switch (n->kind) {
    case OpKind::kBase: {
      auto it = tables_.find(n->rel);
      if (it == tables_.end()) {
        return Status::NotFound(StrFormat(
            "no data loaded for relation %s",
            catalog_->Get(n->rel).name.c_str()));
      }
      return it->second;  // copy
    }

    case OpKind::kProject: {
      MPQ_ASSIGN_OR_RETURN(RowTable in, Exec(n->child(0)));
      std::vector<int> keep;
      RowTable out;
      for (size_t i = 0; i < in.cols.size(); ++i) {
        if (n->attrs.Contains(in.cols[i].attr)) {
          keep.push_back(static_cast<int>(i));
          out.cols.push_back(in.cols[i]);
        }
      }
      if (keep.size() != n->attrs.size()) {
        return Status::Internal("oracle: projection attribute missing");
      }
      out.rows.reserve(in.rows.size());
      for (const auto& row : in.rows) {
        std::vector<Cell> r;
        r.reserve(keep.size());
        for (int i : keep) r.push_back(row[static_cast<size_t>(i)]);
        out.rows.push_back(std::move(r));
      }
      return out;
    }

    case OpKind::kSelect: {
      MPQ_ASSIGN_OR_RETURN(RowTable in, Exec(n->child(0)));
      std::vector<OraclePredicate> preds;
      for (const Predicate& p : n->predicates) {
        OraclePredicate op;
        op.op = p.op;
        op.lhs_col = in.ColIndex(p.lhs);
        if (op.lhs_col < 0) {
          return Status::Internal("oracle: selection attribute missing");
        }
        if (p.rhs_is_attr) {
          op.rhs_col = in.ColIndex(p.rhs_attr);
          if (op.rhs_col < 0) {
            return Status::Internal("oracle: selection attribute missing");
          }
        } else {
          op.rhs_const = Cell(p.rhs_value);
        }
        preds.push_back(std::move(op));
      }
      RowTable out;
      out.cols = in.cols;
      for (auto& row : in.rows) {
        MPQ_ASSIGN_OR_RETURN(bool ok, EvalRow(preds, row));
        if (ok) out.rows.push_back(std::move(row));
      }
      return out;
    }

    case OpKind::kCartesian: {
      MPQ_ASSIGN_OR_RETURN(RowTable l, Exec(n->child(0)));
      MPQ_ASSIGN_OR_RETURN(RowTable r, Exec(n->child(1)));
      RowTable out;
      out.cols = l.cols;
      out.cols.insert(out.cols.end(), r.cols.begin(), r.cols.end());
      out.rows.reserve(l.rows.size() * r.rows.size());
      for (const auto& lr : l.rows) {
        for (const auto& rr : r.rows) {
          out.rows.push_back(ConcatRow(lr, rr));
        }
      }
      return out;
    }

    case OpKind::kJoin: {
      MPQ_ASSIGN_OR_RETURN(RowTable l, Exec(n->child(0)));
      MPQ_ASSIGN_OR_RETURN(RowTable r, Exec(n->child(1)));
      RowTable out;
      out.cols = l.cols;
      out.cols.insert(out.cols.end(), r.cols.begin(), r.cols.end());

      struct EqPair {
        int lcol;
        int rcol;
      };
      std::vector<EqPair> eq_pairs;
      std::vector<Predicate> residual;
      for (const Predicate& p : n->predicates) {
        if (p.rhs_is_attr && p.op == CmpOp::kEq) {
          int ll = l.ColIndex(p.lhs), rr = r.ColIndex(p.rhs_attr);
          if (ll >= 0 && rr >= 0) {
            eq_pairs.push_back({ll, rr});
            continue;
          }
          ll = l.ColIndex(p.rhs_attr);
          rr = r.ColIndex(p.lhs);
          if (ll >= 0 && rr >= 0) {
            eq_pairs.push_back({ll, rr});
            continue;
          }
        }
        residual.push_back(p);
      }
      std::vector<OraclePredicate> bound;
      for (const Predicate& p : eq_pairs.empty() ? n->predicates : residual) {
        OraclePredicate op;
        op.op = p.op;
        op.lhs_col = out.ColIndex(p.lhs);
        if (op.lhs_col < 0) {
          return Status::Internal("oracle: join attribute missing");
        }
        if (p.rhs_is_attr) {
          op.rhs_col = out.ColIndex(p.rhs_attr);
          if (op.rhs_col < 0) {
            return Status::Internal("oracle: join attribute missing");
          }
        } else {
          op.rhs_const = Cell(p.rhs_value);
        }
        bound.push_back(std::move(op));
      }

      if (!eq_pairs.empty()) {
        // Row-major hash join: build on the left, probe row-at-a-time.
        std::unordered_map<std::string, std::vector<size_t>> ht;
        ht.reserve(l.rows.size() * 2);
        for (size_t i = 0; i < l.rows.size(); ++i) {
          std::string key;
          for (const EqPair& ep : eq_pairs) {
            MPQ_ASSIGN_OR_RETURN(
                std::string k,
                CellGroupKey(l.rows[i][static_cast<size_t>(ep.lcol)]));
            key += k;
            // Length suffix, not a separator: concatenated keys can never
            // alias across column boundaries (mirrors the engine's
            // RowKeyBytes / typed-word equality).
            auto len = static_cast<uint32_t>(k.size());
            key.append(reinterpret_cast<const char*>(&len), sizeof(len));
          }
          ht[key].push_back(i);
        }
        std::string key;
        for (size_t j = 0; j < r.rows.size(); ++j) {
          key.clear();
          for (const EqPair& ep : eq_pairs) {
            MPQ_ASSIGN_OR_RETURN(
                std::string k,
                CellGroupKey(r.rows[j][static_cast<size_t>(ep.rcol)]));
            key += k;
            // Length suffix, not a separator: concatenated keys can never
            // alias across column boundaries (mirrors the engine's
            // RowKeyBytes / typed-word equality).
            auto len = static_cast<uint32_t>(k.size());
            key.append(reinterpret_cast<const char*>(&len), sizeof(len));
          }
          auto it = ht.find(key);
          if (it == ht.end()) continue;
          for (size_t i : it->second) {
            std::vector<Cell> row = ConcatRow(l.rows[i], r.rows[j]);
            MPQ_ASSIGN_OR_RETURN(bool ok, EvalRow(bound, row));
            if (ok) out.rows.push_back(std::move(row));
          }
        }
        return out;
      }
      for (const auto& lr : l.rows) {
        for (const auto& rr : r.rows) {
          std::vector<Cell> row = ConcatRow(lr, rr);
          MPQ_ASSIGN_OR_RETURN(bool ok, EvalRow(bound, row));
          if (ok) out.rows.push_back(std::move(row));
        }
      }
      return out;
    }

    case OpKind::kGroupBy: {
      MPQ_ASSIGN_OR_RETURN(RowTable in, Exec(n->child(0)));
      std::vector<int> group_cols;
      RowTable out;
      for (AttrId a : n->group_by.ToVector()) {
        int idx = in.ColIndex(a);
        if (idx < 0) {
          return Status::Internal("oracle: group-by attribute missing");
        }
        group_cols.push_back(idx);
        out.cols.push_back(in.cols[static_cast<size_t>(idx)]);
      }
      std::vector<int> agg_cols;
      for (const Aggregate& agg : n->aggregates) {
        ExecColumn col;
        if (agg.func == AggFunc::kCountStar) {
          agg_cols.push_back(-1);
          col.attr = agg.out_attr;
          col.name = catalog_->attrs().Name(agg.out_attr);
          col.type = DataType::kInt64;
          out.cols.push_back(col);
          continue;
        }
        int idx = in.ColIndex(agg.attr);
        if (idx < 0) {
          return Status::Internal("oracle: aggregate attribute missing");
        }
        agg_cols.push_back(idx);
        col = in.cols[static_cast<size_t>(idx)];
        col.attr = agg.out_attr;
        col.name = catalog_->attrs().Name(agg.out_attr);
        if (agg.func == AggFunc::kCount) {
          col.type = DataType::kInt64;
        } else if (agg.func == AggFunc::kAvg) {
          col.type = DataType::kDouble;
        }
        out.cols.push_back(col);
      }

      // Hash aggregation in first-occurrence order, folding partial states
      // per kDefaultBatchSize run of rows and merging runs in order (the
      // engine's floating-point association at its default batch size).
      std::unordered_map<std::string, size_t> group_of;
      std::vector<std::vector<Cell>> group_keys;
      std::vector<std::vector<OracleAggState>> states;
      size_t nrows = in.rows.size();
      size_t bs = Table::kDefaultBatchSize;
      for (size_t begin = 0; begin < nrows; begin += bs) {
        size_t end = std::min(begin + bs, nrows);
        std::unordered_map<std::string, size_t> local_of;
        std::vector<const std::string*> local_order;
        std::vector<std::vector<Cell>> local_keys;
        std::vector<std::vector<OracleAggState>> local_states;
        for (size_t r = begin; r < end; ++r) {
          std::string key;
          for (int gc : group_cols) {
            MPQ_ASSIGN_OR_RETURN(
                std::string k,
                CellGroupKey(in.rows[r][static_cast<size_t>(gc)]));
            key += k;
            // Length suffix, not a separator: concatenated keys can never
            // alias across column boundaries (mirrors the engine's
            // RowKeyBytes / typed-word equality).
            auto len = static_cast<uint32_t>(k.size());
            key.append(reinterpret_cast<const char*>(&len), sizeof(len));
          }
          auto [it, inserted] = local_of.try_emplace(std::move(key),
                                                     local_keys.size());
          if (inserted) {
            std::vector<Cell> gk;
            for (int gc : group_cols) {
              gk.push_back(in.rows[r][static_cast<size_t>(gc)]);
            }
            local_keys.push_back(std::move(gk));
            local_states.emplace_back(n->aggregates.size());
          }
          std::vector<OracleAggState>& st = local_states[it->second];
          for (size_t ai = 0; ai < n->aggregates.size(); ++ai) {
            const Aggregate& agg = n->aggregates[ai];
            if (agg.func == AggFunc::kCountStar) {
              st[ai].count++;
              continue;
            }
            MPQ_RETURN_NOT_OK(OracleAccumulate(
                agg, in.rows[r][static_cast<size_t>(agg_cols[ai])], &st[ai]));
          }
        }
        local_order.resize(local_keys.size());
        for (const auto& [key, idx] : local_of) local_order[idx] = &key;
        for (size_t g = 0; g < local_keys.size(); ++g) {
          auto [it, inserted] =
              group_of.try_emplace(*local_order[g], group_keys.size());
          if (inserted) {
            group_keys.push_back(std::move(local_keys[g]));
            states.push_back(std::move(local_states[g]));
            continue;
          }
          std::vector<OracleAggState>& dst = states[it->second];
          for (size_t ai = 0; ai < n->aggregates.size(); ++ai) {
            MPQ_RETURN_NOT_OK(OracleMerge(n->aggregates[ai],
                                          std::move(local_states[g][ai]),
                                          &dst[ai]));
          }
        }
      }

      for (size_t g = 0; g < group_keys.size(); ++g) {
        std::vector<Cell> row = group_keys[g];
        for (size_t ai = 0; ai < n->aggregates.size(); ++ai) {
          const Aggregate& agg = n->aggregates[ai];
          const OracleAggState& s = states[g][ai];
          switch (agg.func) {
            case AggFunc::kCountStar:
            case AggFunc::kCount:
              row.push_back(Cell(Value(s.count)));
              break;
            case AggFunc::kSum:
              if (s.sum_is_double) {
                row.push_back(Cell(Value(s.sum)));
              } else {
                row.push_back(
                    Cell(Value(static_cast<int64_t>(std::llround(s.sum)))));
              }
              break;
            case AggFunc::kAvg:
              row.push_back(Cell(Value(
                  s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0)));
              break;
            case AggFunc::kMin:
            case AggFunc::kMax:
              row.push_back(s.has_min_max ? s.min_max : Cell(Value::Null()));
              break;
          }
        }
        out.rows.push_back(std::move(row));
      }
      return out;
    }

    case OpKind::kUdf: {
      MPQ_ASSIGN_OR_RETURN(RowTable in, Exec(n->child(0)));
      std::vector<int> in_cols;
      for (AttrId a : n->udf_inputs.ToVector()) {
        int idx = in.ColIndex(a);
        if (idx < 0) return Status::Internal("oracle: udf input missing");
        in_cols.push_back(idx);
      }
      int out_src = in.ColIndex(n->udf_output);
      if (out_src < 0) return Status::Internal("oracle: udf output missing");
      RowTable out;
      std::vector<int> keep;
      for (size_t i = 0; i < in.cols.size(); ++i) {
        AttrId a = in.cols[i].attr;
        if (n->udf_inputs.Contains(a) && a != n->udf_output) continue;
        keep.push_back(static_cast<int>(i));
        out.cols.push_back(in.cols[i]);
      }
      out.rows.reserve(in.rows.size());
      for (const auto& row : in.rows) {
        std::vector<Cell> args;
        args.reserve(in_cols.size());
        for (int ic : in_cols) args.push_back(row[static_cast<size_t>(ic)]);
        MPQ_ASSIGN_OR_RETURN(Cell result, DefaultUdf(args));
        std::vector<Cell> r;
        r.reserve(keep.size());
        for (int i : keep) {
          r.push_back(i == out_src ? result : row[static_cast<size_t>(i)]);
        }
        out.rows.push_back(std::move(r));
      }
      if (!out.rows.empty()) {
        for (size_t i = 0; i < out.cols.size(); ++i) {
          if (out.cols[i].attr != n->udf_output) continue;
          const Cell& c = out.rows[0][i];
          if (c.is_plain() && !c.plain().is_string()) {
            out.cols[i].type = c.plain().is_double() ? DataType::kDouble
                                                     : DataType::kInt64;
          }
        }
      }
      return out;
    }

    case OpKind::kEncrypt:
      return OracleUnsupported("encrypt");
    case OpKind::kDecrypt:
      return OracleUnsupported("decrypt");
  }
  return Status::Internal("unreachable operator kind");
}

Result<Table> ReferenceExecutor::Run(const PlanNode* plan) const {
  MPQ_ASSIGN_OR_RETURN(RowTable rt, Exec(plan));
  Table out(std::move(rt.cols));
  out.ReserveRows(rt.rows.size());
  for (auto& row : rt.rows) out.AddRow(std::move(row));
  return out;
}

namespace {

std::string CanonicalCell(const Cell& cell) {
  if (cell.is_encrypted()) {
    // Ciphertext at a result boundary is a test failure in the making (the
    // oracle never produces one); render it distinctly rather than hiding
    // it.
    return "<enc:" + cell.enc().blob + ">";
  }
  const Value& v = cell.plain();
  if (v.is_null()) return "NULL";
  if (v.is_int()) return std::to_string(v.AsInt());
  if (v.is_double()) {
    // 17 significant digits round-trip any IEEE-754 double: equal renderings
    // iff bit-identical values (modulo -0.0/0.0, which no aggregate here
    // produces from identical inputs differently).
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    return buf;
  }
  return "'" + v.AsString() + "'";
}

}  // namespace

std::vector<std::string> CanonicalRows(const Table& t) {
  // Column permutation sorted by attribute id, so plans that emit the same
  // attributes in different physical order still canonicalize equal.
  std::vector<size_t> order(t.num_columns());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return t.columns()[a].attr < t.columns()[b].attr;
  });

  std::vector<std::string> rows;
  rows.reserve(t.num_rows() + 1);
  // Header row: the attribute ids themselves, so two results only compare
  // equal over the same schema.
  std::string header;
  for (size_t c : order) {
    header += "#" + std::to_string(t.columns()[c].attr) + "|";
  }
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string row;
    for (size_t c : order) {
      row += CanonicalCell(t.at(r, c));
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  rows.insert(rows.begin(), std::move(header));
  return rows;
}

}  // namespace mpq

#include "testing/reference_exec.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace mpq {

Result<Table> ReferenceExecutor::Run(const PlanNode* plan) const {
  static const KeyRing kNoKeys;
  static const CryptoPlan kNoCrypto;
  ExecContext ctx;
  ctx.catalog = catalog_;
  for (const auto& [rel, table] : tables_) ctx.base_tables[rel] = table;
  ctx.keyring = &kNoKeys;
  ctx.crypto = &kNoCrypto;
  return ExecutePlan(plan, &ctx);
}

namespace {

std::string CanonicalCell(const Cell& cell) {
  if (cell.is_encrypted()) {
    // Ciphertext at a result boundary is a test failure in the making (the
    // oracle never produces one); render it distinctly rather than hiding
    // it.
    return "<enc:" + cell.enc().blob + ">";
  }
  const Value& v = cell.plain();
  if (v.is_null()) return "NULL";
  if (v.is_int()) return std::to_string(v.AsInt());
  if (v.is_double()) {
    // 17 significant digits round-trip any IEEE-754 double: equal renderings
    // iff bit-identical values (modulo -0.0/0.0, which no aggregate here
    // produces from identical inputs differently).
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    return buf;
  }
  return "'" + v.AsString() + "'";
}

}  // namespace

std::vector<std::string> CanonicalRows(const Table& t) {
  // Column permutation sorted by attribute id, so plans that emit the same
  // attributes in different physical order still canonicalize equal.
  std::vector<size_t> order(t.num_columns());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return t.columns()[a].attr < t.columns()[b].attr;
  });

  std::vector<std::string> rows;
  rows.reserve(t.num_rows() + 1);
  // Header row: the attribute ids themselves, so two results only compare
  // equal over the same schema.
  std::string header;
  for (size_t c : order) {
    header += "#" + std::to_string(t.columns()[c].attr) + "|";
  }
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string row;
    for (size_t c : order) {
      row += CanonicalCell(t.row(r)[c]);
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  rows.insert(rows.begin(), std::move(header));
  return rows;
}

}  // namespace mpq

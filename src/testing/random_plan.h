// Random scenario generator for property-based tests: random catalogs,
// random authorizations and random well-formed query plans, used to exercise
// Theorems 3.1 / 5.1 / 5.2 / 5.3 over many instances.

#ifndef MPQ_TESTING_RANDOM_PLAN_H_
#define MPQ_TESTING_RANDOM_PLAN_H_

#include <map>
#include <memory>

#include "algebra/plan.h"
#include "assign/schemes.h"
#include "authz/policy.h"
#include "exec/table.h"

namespace mpq {

struct RandomPlanOptions {
  int num_relations = 3;
  int min_cols = 3;
  int max_cols = 5;
  int num_providers = 4;
  int num_extra_ops = 4;       ///< Selections/udfs sprinkled over the tree.
  bool allow_groupby = true;
  bool allow_udf = true;
  double provider_plain_prob = 0.35;  ///< Per-attribute P(plaintext grant).
  double provider_enc_prob = 0.45;    ///< Per-attribute P(encrypted grant).
};

/// A self-contained random scenario. Heap-held members keep addresses stable
/// across moves (Policy and plans hold pointers into them).
struct RandomScenario {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<SubjectRegistry> subjects;
  std::unique_ptr<Policy> policy;
  PlanPtr plan;  ///< Validated, needs_plaintext derived, profiles annotated.
  SubjectId user = kInvalidSubject;
};

/// Generates a scenario from `seed`. The querying user always holds full
/// plaintext grants (the paper requires users authorized for all query
/// inputs), so every generated plan has at least one feasible assignment.
Result<RandomScenario> MakeRandomScenario(uint64_t seed,
                                          const RandomPlanOptions& opts = {});

/// Random base-table contents for every relation of `sc`: `rows` rows per
/// relation, int columns drawn from [0, 40] (small domain so joins and
/// group-bys hit) and string columns from a 6-value vocabulary. Purely a
/// function of (`sc`, `seed`).
std::map<RelId, Table> MakeRandomData(const RandomScenario& sc, uint64_t seed,
                                      int rows = 30);

}  // namespace mpq

#endif  // MPQ_TESTING_RANDOM_PLAN_H_

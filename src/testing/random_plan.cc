#include "testing/random_plan.h"

#include <algorithm>

#include "algebra/plan_builder.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "profile/propagate.h"

namespace mpq {

namespace {

struct Subtree {
  PlanPtr plan;
  AttrSet visible;
};

/// Picks a uniformly random element of a set.
AttrId PickAttr(const AttrSet& s, Rng& rng) {
  std::vector<AttrId> v = s.ToVector();
  return v[rng.Uniform(v.size())];
}

CmpOp PickOp(Rng& rng, bool allow_range) {
  if (!allow_range || rng.Chance(0.6)) {
    return rng.Chance(0.85) ? CmpOp::kEq : CmpOp::kNe;
  }
  switch (rng.Uniform(4)) {
    case 0:
      return CmpOp::kLt;
    case 1:
      return CmpOp::kLe;
    case 2:
      return CmpOp::kGt;
    default:
      return CmpOp::kGe;
  }
}

}  // namespace

Result<RandomScenario> MakeRandomScenario(uint64_t seed,
                                          const RandomPlanOptions& opts) {
  Rng rng(seed);
  RandomScenario sc;
  sc.catalog = std::make_unique<Catalog>();
  sc.subjects = std::make_unique<SubjectRegistry>();

  MPQ_ASSIGN_OR_RETURN(sc.user,
                       sc.subjects->Register("U", SubjectKind::kUser));
  std::vector<SubjectId> authorities;
  for (int i = 0; i < opts.num_relations; ++i) {
    MPQ_ASSIGN_OR_RETURN(SubjectId a,
                         sc.subjects->Register("A" + std::to_string(i),
                                               SubjectKind::kAuthority));
    authorities.push_back(a);
  }
  std::vector<SubjectId> providers;
  for (int i = 0; i < opts.num_providers; ++i) {
    MPQ_ASSIGN_OR_RETURN(SubjectId p,
                         sc.subjects->Register("P" + std::to_string(i),
                                               SubjectKind::kProvider));
    providers.push_back(p);
  }

  // Relations R0(a0_0, a0_1, ...), all int columns (so comparisons are
  // always type-compatible) with one string column sometimes.
  for (int r = 0; r < opts.num_relations; ++r) {
    int ncols = static_cast<int>(
        rng.Range(opts.min_cols, std::max(opts.min_cols, opts.max_cols)));
    std::vector<std::pair<std::string, DataType>> cols;
    for (int c = 0; c < ncols; ++c) {
      DataType t = (c == ncols - 1 && rng.Chance(0.3)) ? DataType::kString
                                                       : DataType::kInt64;
      cols.emplace_back("a" + std::to_string(r) + "_" + std::to_string(c), t);
    }
    MPQ_ASSIGN_OR_RETURN(
        RelId rel, sc.catalog->AddRelation("R" + std::to_string(r), cols,
                                           authorities[static_cast<size_t>(r)],
                                           1000.0 * (r + 1)));
    (void)rel;
  }

  sc.policy = std::make_unique<Policy>(sc.catalog.get(), sc.subjects.get());
  for (const RelationDef& rel : sc.catalog->relations()) {
    AttrSet all = rel.schema.Attrs();
    MPQ_RETURN_NOT_OK(sc.policy->Grant(rel.id, rel.owner, all, {}));
    MPQ_RETURN_NOT_OK(sc.policy->Grant(rel.id, sc.user, all, {}));
    for (SubjectId p : providers) {
      AttrSet plain, enc;
      all.ForEach([&](AttrId a) {
        double roll = rng.NextDouble();
        if (roll < opts.provider_plain_prob) {
          plain.Insert(a);
        } else if (roll < opts.provider_plain_prob + opts.provider_enc_prob) {
          enc.Insert(a);
        }
      });
      if (!plain.empty() || !enc.empty()) {
        MPQ_RETURN_NOT_OK(sc.policy->Grant(rel.id, p, plain, enc));
      }
    }
  }

  // Build subtrees: each relation becomes a (possibly projected) leaf.
  std::vector<Subtree> forest;
  for (const RelationDef& rel : sc.catalog->relations()) {
    Subtree st;
    st.plan = Base(rel.id);
    st.visible = rel.schema.Attrs();
    // Projection pushed into the leaf (the paper's convention); keep at
    // least two attributes so joins/selections have material to work with.
    if (rng.Chance(0.4) && st.visible.size() > 2) {
      AttrSet keep;
      st.visible.ForEach([&](AttrId a) {
        if (keep.size() < 2 || rng.Chance(0.7)) keep.Insert(a);
      });
      st.plan = Project(std::move(st.plan), keep);
      st.visible = keep;
    }
    forest.push_back(std::move(st));
  }

  auto int_attrs = [&](const AttrSet& visible) {
    AttrSet out;
    visible.ForEach([&](AttrId a) {
      RelId r = sc.catalog->RelationOf(a);
      if (r != kInvalidRel &&
          sc.catalog->Get(r).schema.ColumnFor(a).type == DataType::kInt64) {
        out.Insert(a);
      }
    });
    return out;
  };

  // Join the forest into one tree.
  while (forest.size() > 1) {
    size_t i = rng.Uniform(forest.size());
    size_t j = rng.Uniform(forest.size() - 1);
    if (j >= i) ++j;
    Subtree l = std::move(forest[i]);
    Subtree r = std::move(forest[j]);
    forest.erase(forest.begin() + static_cast<long>(std::max(i, j)));
    forest.erase(forest.begin() + static_cast<long>(std::min(i, j)));

    AttrSet li = int_attrs(l.visible), ri = int_attrs(r.visible);
    Subtree merged;
    merged.visible = l.visible.Union(r.visible);
    if (!li.empty() && !ri.empty()) {
      std::vector<Predicate> preds = {Predicate::AttrAttr(
          PickAttr(li, rng), CmpOp::kEq, PickAttr(ri, rng))};
      merged.plan =
          Join(std::move(l.plan), std::move(r.plan), std::move(preds));
    } else {
      merged.plan = Cartesian(std::move(l.plan), std::move(r.plan));
    }
    forest.push_back(std::move(merged));
  }
  Subtree tree = std::move(forest[0]);

  // Sprinkle selections and udfs.
  for (int k = 0; k < opts.num_extra_ops; ++k) {
    double roll = rng.NextDouble();
    if (roll < 0.6) {
      AttrSet ints = int_attrs(tree.visible);
      if (ints.empty()) continue;
      AttrId a = PickAttr(ints, rng);
      if (rng.Chance(0.25) && ints.size() >= 2) {
        AttrId b = PickAttr(ints, rng);
        if (a == b) continue;
        tree.plan = Select(std::move(tree.plan),
                           {Predicate::AttrAttr(a, PickOp(rng, true), b)});
      } else {
        tree.plan = Select(
            std::move(tree.plan),
            {Predicate::AttrValue(a, PickOp(rng, true),
                                  Value(rng.Range(0, 100)))});
      }
    } else if (opts.allow_udf && roll < 0.75) {
      AttrSet ints = int_attrs(tree.visible);
      if (ints.size() < 2) continue;
      AttrSet inputs;
      AttrId out = PickAttr(ints, rng);
      inputs.Insert(out);
      inputs.Insert(PickAttr(ints, rng));
      // Plaintext-required udf: keeps encrypted execution value-equivalent
      // to plaintext execution in the equivalence property tests (an
      // encrypted-capable udf would produce ciphertext digests instead).
      tree.plan = Udf(std::move(tree.plan), "score", inputs, out);
      AttrSet dropped = inputs;
      dropped.Erase(out);
      tree.visible.EraseAll(dropped);
    }
  }

  // Optional top-level aggregation over everything visible (keeping the
  // paper's push-down discipline: nothing visible is unused).
  if (opts.allow_groupby && rng.Chance(0.5)) {
    AttrSet ints = int_attrs(tree.visible);
    if (!ints.empty()) {
      AttrId agg_attr = PickAttr(ints, rng);
      AttrSet groups = tree.visible;
      groups.Erase(agg_attr);
      if (!groups.empty()) {
        AggFunc f;
        switch (rng.Uniform(4)) {
          case 0:
            f = AggFunc::kSum;
            break;
          case 1:
            f = AggFunc::kAvg;
            break;
          case 2:
            f = AggFunc::kMin;
            break;
          default:
            f = AggFunc::kMax;
            break;
        }
        tree.plan = GroupBy(std::move(tree.plan), groups,
                            {Aggregate::Make(f, agg_attr)});
        if (rng.Chance(0.4)) {
          tree.plan = Select(std::move(tree.plan),
                             {Predicate::AttrValue(agg_attr, CmpOp::kGt,
                                                   Value(int64_t{10}))});
        }
      }
    }
  }

  MPQ_ASSIGN_OR_RETURN(sc.plan, FinishPlan(std::move(tree.plan), *sc.catalog));
  SchemeCaps caps;
  caps.det = rng.Chance(0.95);
  caps.ope = rng.Chance(0.8);
  caps.hom = rng.Chance(0.8);
  MPQ_RETURN_NOT_OK(DerivePlaintextNeeds(sc.plan.get(), *sc.catalog, caps));
  MPQ_RETURN_NOT_OK(AnnotatePlan(sc.plan.get(), *sc.catalog));
  return sc;
}

std::map<RelId, Table> MakeRandomData(const RandomScenario& sc, uint64_t seed,
                                      int rows) {
  Rng rng(seed);
  std::map<RelId, Table> data;
  for (const RelationDef& rel : sc.catalog->relations()) {
    Table t = MakeBaseTable(rel);
    for (int r = 0; r < rows; ++r) {
      std::vector<Cell> row;
      for (const Column& c : rel.schema.columns()) {
        if (c.type == DataType::kString) {
          row.push_back(Cell(Value("s" + std::to_string(rng.Range(0, 5)))));
        } else {
          row.push_back(Cell(Value(rng.Range(0, 40))));
        }
      }
      t.AddRow(std::move(row));
    }
    data.emplace(rel.id, std::move(t));
  }
  return data;
}

}  // namespace mpq

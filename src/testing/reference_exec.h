// Row-path oracle for layout-differential testing: an independent row-major
// interpreter of (pre-extension) plaintext plans, deliberately retaining the
// pre-columnar `vector<vector<Cell>>` execution style — row-at-a-time
// predicate evaluation, row-materializing joins, row-major hash aggregation.
// It shares no operator code with the columnar engine, so a bit-identical
// CanonicalRows comparison between the two is evidence about the columnar
// rewrite, not a tautology. Differential tests run the full
// distributed-encrypted pipeline (with and without injected faults) and the
// single-site columnar engine against this oracle.
//
// The oracle doubles as the "pre-PR row engine" baseline `bench_columnar`
// measures the columnar engine against.

#ifndef MPQ_TESTING_REFERENCE_EXEC_H_
#define MPQ_TESTING_REFERENCE_EXEC_H_

#include <map>
#include <string>
#include <vector>

#include "exec/executor.h"

namespace mpq {

/// The oracle. Base tables are copied into row-major form at load time, so
/// Run touches no columnar code at all.
class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const Catalog* catalog) : catalog_(catalog) {}

  void LoadTable(RelId rel, const Table* data);

  /// Plaintext single-site row-major execution of `plan`. Aggregation
  /// partial sums are folded per kDefaultBatchSize run of rows and merged
  /// in order — the same floating-point association the columnar engine
  /// uses at its default batch size — so double-valued aggregates are
  /// bit-identical, not merely close.
  Result<Table> Run(const PlanNode* plan) const;

 private:
  /// A row-major relation: the pre-columnar data layout.
  struct RowTable {
    std::vector<ExecColumn> cols;
    std::vector<std::vector<Cell>> rows;

    int ColIndex(AttrId attr) const;
  };

  Result<RowTable> Exec(const PlanNode* n) const;

  const Catalog* catalog_;
  std::map<RelId, RowTable> tables_;
};

/// Canonical order-insensitive rendering of a result table, the form
/// differential tests compare: columns sorted by attribute id, every cell
/// rendered bit-exactly (ints in full, doubles with 17 significant digits —
/// enough to round-trip IEEE-754), rows sorted lexicographically. Two tables
/// canonicalize equal iff they hold the same multiset of rows over the same
/// attributes; physical row order (which legitimately differs between a
/// hash-grouped ciphertext run and the plaintext oracle) does not matter.
std::vector<std::string> CanonicalRows(const Table& t);

}  // namespace mpq

#endif  // MPQ_TESTING_REFERENCE_EXEC_H_

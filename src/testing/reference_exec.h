// Single-site plaintext oracle for differential testing: executes the
// original (pre-extension) plan in one engine with no keys, no crypto plan
// and no thread pool — the simplest possible interpretation of the query.
// Differential tests run the full distributed-encrypted pipeline (with and
// without injected faults) and assert its result is equivalent to this
// oracle's.

#ifndef MPQ_TESTING_REFERENCE_EXEC_H_
#define MPQ_TESTING_REFERENCE_EXEC_H_

#include <map>
#include <string>
#include <vector>

#include "exec/executor.h"

namespace mpq {

/// The oracle. Base tables are borrowed; the caller keeps them alive.
class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const Catalog* catalog) : catalog_(catalog) {}

  void LoadTable(RelId rel, const Table* data) { tables_[rel] = data; }

  /// Plaintext single-site execution of `plan`.
  Result<Table> Run(const PlanNode* plan) const;

 private:
  const Catalog* catalog_;
  std::map<RelId, const Table*> tables_;
};

/// Canonical order-insensitive rendering of a result table, the form
/// differential tests compare: columns sorted by attribute id, every cell
/// rendered bit-exactly (ints in full, doubles with 17 significant digits —
/// enough to round-trip IEEE-754), rows sorted lexicographically. Two tables
/// canonicalize equal iff they hold the same multiset of rows over the same
/// attributes; physical row order (which legitimately differs between a
/// hash-grouped ciphertext run and the plaintext oracle) does not matter.
std::vector<std::string> CanonicalRows(const Table& t);

}  // namespace mpq

#endif  // MPQ_TESTING_REFERENCE_EXEC_H_

// Policy store and the authorization checks of Defs 4.1 / 4.2.
//
// Each data authority specifies authorizations independently per relation;
// the Policy class aggregates them into the overall per-subject views
// P_S / E_S used by the enforcement algorithms (Sec 4), resolving the `any`
// default per relation for subjects lacking an explicit rule.

#ifndef MPQ_AUTHZ_POLICY_H_
#define MPQ_AUTHZ_POLICY_H_

#include <map>
#include <optional>
#include <vector>

#include "authz/authorization.h"
#include "authz/subject.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "profile/profile.h"

namespace mpq {

/// Aggregated authorization state for a scenario.
class Policy {
 public:
  Policy(const Catalog* catalog, const SubjectRegistry* subjects)
      : catalog_(catalog), subjects_(subjects) {}

  /// Grants [plain, enc] -> subject on `rel`. Enforces Def 2.1: P ∩ E = ∅,
  /// P,E ⊆ attributes of rel, and at most one rule per (rel, subject).
  Status Grant(RelId rel, SubjectId subject, AttrSet plain, AttrSet enc);

  /// Grants the `any` default rule for `rel` (at most one per relation).
  Status GrantAny(RelId rel, AttrSet plain, AttrSet enc);

  /// The rule applying to (rel, subject): the explicit rule if present,
  /// otherwise the relation's `any` rule, otherwise nullopt (no visibility —
  /// closed policy).
  std::optional<Authorization> Effective(RelId rel, SubjectId subject) const;

  /// Overall view P_S: attributes the subject may see in plaintext, across
  /// all relations (Sec 4).
  AttrSet PlainView(SubjectId subject) const;

  /// Overall view E_S: attributes granted in encrypted form (not including
  /// the plaintext-granted ones).
  AttrSet EncView(SubjectId subject) const;

  /// Def 4.1: is `subject` authorized for a relation with `profile`?
  /// Returns OK, or kUnauthorized explaining the first failed condition.
  Status CheckAuthorized(SubjectId subject, const RelationProfile& profile) const;
  bool IsAuthorized(SubjectId subject, const RelationProfile& profile) const {
    return CheckAuthorized(subject, profile).ok();
  }

  /// Def 4.2: is `subject` an authorized assignee of a node producing
  /// `result` from operands `operands`?
  Status CheckAssignee(SubjectId subject, const RelationProfile& result,
                       const std::vector<const RelationProfile*>& operands) const;

  /// All authorizations, for display.
  std::vector<Authorization> AllRules() const;

  const Catalog& catalog() const { return *catalog_; }
  const SubjectRegistry& subjects() const { return *subjects_; }

 private:
  Status ValidateRule(RelId rel, const AttrSet& plain, const AttrSet& enc) const;
  void InvalidateViews();
  void EnsureViews() const;

  const Catalog* catalog_;
  const SubjectRegistry* subjects_;
  std::map<std::pair<RelId, SubjectId>, Authorization> explicit_;
  std::map<RelId, Authorization> any_;

  // Memoized overall views, one entry per subject id.
  mutable bool views_valid_ = false;
  mutable std::vector<AttrSet> plain_views_;
  mutable std::vector<AttrSet> enc_views_;
};

}  // namespace mpq

#endif  // MPQ_AUTHZ_POLICY_H_

// Policy store and the authorization checks of Defs 4.1 / 4.2.
//
// Each data authority specifies authorizations independently per relation;
// the Policy class aggregates them into the overall per-subject views
// P_S / E_S used by the enforcement algorithms (Sec 4), resolving the `any`
// default per relation for subjects lacking an explicit rule.
//
// Concurrency: a Policy may be read (Effective / views / checks) from many
// threads while another thread mutates it (Grant / Revoke). Every mutation
// advances a monotonically increasing *epoch*, published only after the rule
// change is visible — a reader that observes epoch e sees a policy state at
// least as new as the mutation that produced e, which is what lets serving
// layers key cached authorization decisions by epoch (see src/service/).

#ifndef MPQ_AUTHZ_POLICY_H_
#define MPQ_AUTHZ_POLICY_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "authz/authorization.h"
#include "authz/subject.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "profile/profile.h"

namespace mpq {

/// Aggregated authorization state for a scenario.
class Policy {
 public:
  Policy(const Catalog* catalog, const SubjectRegistry* subjects)
      : catalog_(catalog), subjects_(subjects) {}

  Policy(const Policy& other);
  Policy& operator=(const Policy& other);
  Policy(Policy&& other) noexcept;
  Policy& operator=(Policy&& other) noexcept;

  /// Grants [plain, enc] -> subject on `rel`. Enforces Def 2.1: P ∩ E = ∅,
  /// P,E ⊆ attributes of rel, and at most one rule per (rel, subject).
  Status Grant(RelId rel, SubjectId subject, AttrSet plain, AttrSet enc);

  /// Grants the `any` default rule for `rel` (at most one per relation).
  Status GrantAny(RelId rel, AttrSet plain, AttrSet enc);

  /// Removes the explicit rule of (rel, subject); the subject falls back to
  /// the relation's `any` rule, or to no visibility. kNotFound when absent.
  Status Revoke(RelId rel, SubjectId subject);

  /// Removes the `any` default rule of `rel`. kNotFound when absent.
  Status RevokeAny(RelId rel);

  /// Monotonically increasing policy version. Starts at 1; every successful
  /// Grant / GrantAny / Revoke / RevokeAny advances it *after* the mutation
  /// is visible, so any decision derived under an observed epoch is at least
  /// as old as the policy state behind that epoch — never newer-keyed.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// The rule applying to (rel, subject): the explicit rule if present,
  /// otherwise the relation's `any` rule, otherwise nullopt (no visibility —
  /// closed policy).
  std::optional<Authorization> Effective(RelId rel, SubjectId subject) const;

  /// Overall view P_S: attributes the subject may see in plaintext, across
  /// all relations (Sec 4).
  AttrSet PlainView(SubjectId subject) const;

  /// Overall view E_S: attributes granted in encrypted form (not including
  /// the plaintext-granted ones).
  AttrSet EncView(SubjectId subject) const;

  /// Def 4.1: is `subject` authorized for a relation with `profile`?
  /// Returns OK, or kUnauthorized explaining the first failed condition.
  Status CheckAuthorized(SubjectId subject,
                         const RelationProfile& profile) const;
  bool IsAuthorized(SubjectId subject, const RelationProfile& profile) const {
    return CheckAuthorized(subject, profile).ok();
  }

  /// Def 4.2: is `subject` an authorized assignee of a node producing
  /// `result` from operands `operands`?
  Status CheckAssignee(
      SubjectId subject, const RelationProfile& result,
      const std::vector<const RelationProfile*>& operands) const;

  /// All authorizations, for display.
  std::vector<Authorization> AllRules() const;

  const Catalog& catalog() const { return *catalog_; }
  const SubjectRegistry& subjects() const { return *subjects_; }

 private:
  /// Immutable memoized overall views, one entry per subject id. Rebuilt on
  /// demand and swapped atomically so readers never see a half-built vector.
  struct ViewSnapshot {
    std::vector<AttrSet> plain;
    std::vector<AttrSet> enc;
    /// Attributes belonging to some base relation — the domain of Def 4.1
    /// (derived outputs interned by the binder are not grantable).
    AttrSet grantable;
    /// Catalog size the snapshot was built against; a registered relation
    /// must invalidate `grantable`, or its attributes would be silently
    /// excluded from the Def 4.1 conditions (deny flipped to allow).
    size_t num_relations = 0;
  };

  Status ValidateRule(RelId rel, const AttrSet& plain,
                      const AttrSet& enc) const;
  void InvalidateViews();
  std::shared_ptr<const ViewSnapshot> Views() const;
  std::optional<Authorization> EffectiveLocked(RelId rel,
                                               SubjectId subject) const;

  const Catalog* catalog_;
  const SubjectRegistry* subjects_;

  /// Guards `explicit_` and `any_`. Lock order: `views_mu_` may be held when
  /// taking `mu_` shared (snapshot rebuild); never the reverse — mutators
  /// release `mu_` before invalidating the snapshot.
  mutable std::shared_mutex mu_;
  std::map<std::pair<RelId, SubjectId>, Authorization> explicit_;
  std::map<RelId, Authorization> any_;

  std::atomic<uint64_t> epoch_{1};

  mutable std::mutex views_mu_;
  mutable std::shared_ptr<const ViewSnapshot> views_;  // guarded by views_mu_
};

}  // namespace mpq

#endif  // MPQ_AUTHZ_POLICY_H_

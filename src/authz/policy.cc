#include "authz/policy.h"

#include "common/str_util.h"

namespace mpq {

Status Policy::ValidateRule(RelId rel, const AttrSet& plain,
                            const AttrSet& enc) const {
  if (rel == kInvalidRel || rel >= catalog_->num_relations()) {
    return Status::InvalidArgument("authorization on unknown relation");
  }
  if (plain.Intersects(enc)) {
    AttrSet both = plain.Intersect(enc);
    return Status::InvalidArgument(StrFormat(
        "Def 2.1 requires P ∩ E = ∅; overlapping attributes: [%s]",
        both.ToString(catalog_->attrs()).c_str()));
  }
  AttrSet rel_attrs = catalog_->Get(rel).schema.Attrs();
  AttrSet granted = plain.Union(enc);
  if (!granted.IsSubsetOf(rel_attrs)) {
    AttrSet foreign = granted.Difference(rel_attrs);
    return Status::InvalidArgument(StrFormat(
        "authorization grants attributes [%s] not in relation %s",
        foreign.ToString(catalog_->attrs()).c_str(),
        catalog_->Get(rel).name.c_str()));
  }
  return Status::OK();
}

void Policy::InvalidateViews() { views_valid_ = false; }

Status Policy::Grant(RelId rel, SubjectId subject, AttrSet plain, AttrSet enc) {
  MPQ_RETURN_NOT_OK(ValidateRule(rel, plain, enc));
  if (subject == kInvalidSubject || subject >= subjects_->size()) {
    return Status::InvalidArgument("authorization for unknown subject");
  }
  auto key = std::make_pair(rel, subject);
  if (explicit_.count(key) > 0) {
    return Status::AlreadyExists(StrFormat(
        "subject %s already holds an authorization on %s (the paper allows at "
        "most one per relation)",
        subjects_->Name(subject).c_str(), catalog_->Get(rel).name.c_str()));
  }
  Authorization a;
  a.rel = rel;
  a.subject = subject;
  a.plain = std::move(plain);
  a.enc = std::move(enc);
  explicit_.emplace(key, std::move(a));
  InvalidateViews();
  return Status::OK();
}

Status Policy::GrantAny(RelId rel, AttrSet plain, AttrSet enc) {
  MPQ_RETURN_NOT_OK(ValidateRule(rel, plain, enc));
  if (any_.count(rel) > 0) {
    return Status::AlreadyExists(StrFormat(
        "relation %s already has an `any` default authorization",
        catalog_->Get(rel).name.c_str()));
  }
  Authorization a;
  a.rel = rel;
  a.is_any = true;
  a.plain = std::move(plain);
  a.enc = std::move(enc);
  any_.emplace(rel, std::move(a));
  InvalidateViews();
  return Status::OK();
}

std::optional<Authorization> Policy::Effective(RelId rel,
                                               SubjectId subject) const {
  auto it = explicit_.find(std::make_pair(rel, subject));
  if (it != explicit_.end()) return it->second;
  auto any_it = any_.find(rel);
  if (any_it != any_.end()) return any_it->second;
  return std::nullopt;
}

void Policy::EnsureViews() const {
  // Rebuild when invalidated or when subjects were registered since the last
  // build (the registry is shared and may grow).
  if (views_valid_ && plain_views_.size() == subjects_->size()) return;
  size_t n = subjects_->size();
  plain_views_.assign(n, AttrSet{});
  enc_views_.assign(n, AttrSet{});
  for (SubjectId s = 0; s < n; ++s) {
    for (RelId r = 0; r < catalog_->num_relations(); ++r) {
      std::optional<Authorization> a = Effective(r, s);
      if (!a.has_value()) continue;
      plain_views_[s].InsertAll(a->plain);
      enc_views_[s].InsertAll(a->enc);
    }
  }
  views_valid_ = true;
}

AttrSet Policy::PlainView(SubjectId subject) const {
  EnsureViews();
  return subject < plain_views_.size() ? plain_views_[subject] : AttrSet{};
}

AttrSet Policy::EncView(SubjectId subject) const {
  EnsureViews();
  return subject < enc_views_.size() ? enc_views_[subject] : AttrSet{};
}

Status Policy::CheckAuthorized(SubjectId subject,
                               const RelationProfile& profile) const {
  EnsureViews();
  const AttrRegistry& reg = catalog_->attrs();
  const AttrSet& ps = plain_views_[subject];
  const AttrSet& es = enc_views_[subject];

  // Condition 1: Rvp ∪ Rip ⊆ P_S.
  AttrSet plain_needed = profile.vp.Union(profile.ip);
  if (!plain_needed.IsSubsetOf(ps)) {
    AttrSet missing = plain_needed.Difference(ps);
    return Status::Unauthorized(StrFormat(
        "%s lacks plaintext visibility over [%s] (Def 4.1, condition 1)",
        subjects_->Name(subject).c_str(), missing.ToString(reg).c_str()));
  }

  // Condition 2: Rve ∪ Rie ⊆ P_S ∪ E_S.
  AttrSet enc_needed = profile.ve.Union(profile.ie);
  AttrSet either = ps.Union(es);
  if (!enc_needed.IsSubsetOf(either)) {
    AttrSet missing = enc_needed.Difference(either);
    return Status::Unauthorized(StrFormat(
        "%s lacks (even encrypted) visibility over [%s] (Def 4.1, condition 2)",
        subjects_->Name(subject).c_str(), missing.ToString(reg).c_str()));
  }

  // Condition 3: every equivalence class uniformly visible: A ⊆ P_S or
  // A ⊆ E_S. Note the sets are the *specified* grants — a class mixing a
  // plaintext-granted and an encrypted-granted attribute fails (the paper's
  // insurance-company example).
  for (const AttrSet& cls : profile.eq.Classes()) {
    if (cls.IsSubsetOf(ps) || cls.IsSubsetOf(es)) continue;
    return Status::Unauthorized(StrFormat(
        "%s has non-uniform visibility over equivalent attributes {%s} "
        "(Def 4.1, condition 3)",
        subjects_->Name(subject).c_str(), cls.ToString(reg).c_str()));
  }
  return Status::OK();
}

Status Policy::CheckAssignee(
    SubjectId subject, const RelationProfile& result,
    const std::vector<const RelationProfile*>& operands) const {
  for (const RelationProfile* op : operands) {
    MPQ_RETURN_NOT_OK(CheckAuthorized(subject, *op));
  }
  return CheckAuthorized(subject, result);
}

std::vector<Authorization> Policy::AllRules() const {
  std::vector<Authorization> out;
  out.reserve(explicit_.size() + any_.size());
  for (const auto& [_, a] : explicit_) out.push_back(a);
  for (const auto& [_, a] : any_) out.push_back(a);
  return out;
}

}  // namespace mpq

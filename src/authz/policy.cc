#include "authz/policy.h"

#include <algorithm>

#include "common/str_util.h"

namespace mpq {

Policy::Policy(const Policy& other) {
  std::shared_lock<std::shared_mutex> lock(other.mu_);
  catalog_ = other.catalog_;
  subjects_ = other.subjects_;
  explicit_ = other.explicit_;
  any_ = other.any_;
  epoch_.store(other.epoch_.load(std::memory_order_acquire),
               std::memory_order_release);
}

Policy& Policy::operator=(const Policy& other) {
  if (this == &other) return *this;
  Policy copy(other);
  *this = std::move(copy);
  return *this;
}

Policy::Policy(Policy&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  catalog_ = other.catalog_;
  subjects_ = other.subjects_;
  explicit_ = std::move(other.explicit_);
  any_ = std::move(other.any_);
  epoch_.store(other.epoch_.load(std::memory_order_acquire),
               std::memory_order_release);
}

Policy& Policy::operator=(Policy&& other) noexcept {
  if (this == &other) return *this;
  {
    std::unique_lock<std::shared_mutex> mine(mu_, std::defer_lock);
    std::unique_lock<std::shared_mutex> theirs(other.mu_, std::defer_lock);
    std::lock(mine, theirs);
    catalog_ = other.catalog_;
    subjects_ = other.subjects_;
    explicit_ = std::move(other.explicit_);
    any_ = std::move(other.any_);
    // Assignment replaces the whole rule set out from under any reader that
    // keys cached decisions by this object's epoch. Publish an epoch
    // strictly above both histories so no stale key can match the new rules
    // (monotonicity also survives assignment from a younger policy).
    uint64_t mine_epoch = epoch_.load(std::memory_order_acquire);
    uint64_t theirs_epoch = other.epoch_.load(std::memory_order_acquire);
    epoch_.store(std::max(mine_epoch, theirs_epoch) + 1,
                 std::memory_order_release);
  }
  // After releasing mu_: views_mu_ is never acquired while holding mu_
  // (Views() takes them in the opposite order — see the lock-order comment).
  InvalidateViews();
  other.InvalidateViews();  // its memoized views describe the stolen rules
  return *this;
}

Status Policy::ValidateRule(RelId rel, const AttrSet& plain,
                            const AttrSet& enc) const {
  if (rel == kInvalidRel || rel >= catalog_->num_relations()) {
    return Status::InvalidArgument("authorization on unknown relation");
  }
  if (plain.Intersects(enc)) {
    AttrSet both = plain.Intersect(enc);
    return Status::InvalidArgument(StrFormat(
        "Def 2.1 requires P ∩ E = ∅; overlapping attributes: [%s]",
        both.ToString(catalog_->attrs()).c_str()));
  }
  AttrSet rel_attrs = catalog_->Get(rel).schema.Attrs();
  AttrSet granted = plain.Union(enc);
  if (!granted.IsSubsetOf(rel_attrs)) {
    AttrSet foreign = granted.Difference(rel_attrs);
    return Status::InvalidArgument(StrFormat(
        "authorization grants attributes [%s] not in relation %s",
        foreign.ToString(catalog_->attrs()).c_str(),
        catalog_->Get(rel).name.c_str()));
  }
  return Status::OK();
}

void Policy::InvalidateViews() {
  std::lock_guard<std::mutex> lock(views_mu_);
  views_.reset();
}

Status Policy::Grant(RelId rel, SubjectId subject, AttrSet plain, AttrSet enc) {
  MPQ_RETURN_NOT_OK(ValidateRule(rel, plain, enc));
  if (subject == kInvalidSubject || subject >= subjects_->size()) {
    return Status::InvalidArgument("authorization for unknown subject");
  }
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto key = std::make_pair(rel, subject);
    if (explicit_.count(key) > 0) {
      return Status::AlreadyExists(StrFormat(
          "subject %s already holds an authorization on %s (the paper allows "
          "at most one per relation)",
          subjects_->Name(subject).c_str(), catalog_->Get(rel).name.c_str()));
    }
    Authorization a;
    a.rel = rel;
    a.subject = subject;
    a.plain = std::move(plain);
    a.enc = std::move(enc);
    explicit_.emplace(key, std::move(a));
  }
  InvalidateViews();
  // Publish the new epoch only after the rule is visible: a reader observing
  // the bumped epoch is guaranteed to see the mutated rule set.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Policy::GrantAny(RelId rel, AttrSet plain, AttrSet enc) {
  MPQ_RETURN_NOT_OK(ValidateRule(rel, plain, enc));
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (any_.count(rel) > 0) {
      return Status::AlreadyExists(StrFormat(
          "relation %s already has an `any` default authorization",
          catalog_->Get(rel).name.c_str()));
    }
    Authorization a;
    a.rel = rel;
    a.is_any = true;
    a.plain = std::move(plain);
    a.enc = std::move(enc);
    any_.emplace(rel, std::move(a));
  }
  InvalidateViews();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Policy::Revoke(RelId rel, SubjectId subject) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (explicit_.erase(std::make_pair(rel, subject)) == 0) {
      return Status::NotFound(StrFormat(
          "no explicit authorization of subject %u on relation %u to revoke",
          subject, rel));
    }
  }
  InvalidateViews();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Policy::RevokeAny(RelId rel) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (any_.erase(rel) == 0) {
      return Status::NotFound(StrFormat(
          "no `any` default authorization on relation %u to revoke", rel));
    }
  }
  InvalidateViews();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

std::optional<Authorization> Policy::EffectiveLocked(RelId rel,
                                                     SubjectId subject) const {
  auto it = explicit_.find(std::make_pair(rel, subject));
  if (it != explicit_.end()) return it->second;
  auto any_it = any_.find(rel);
  if (any_it != any_.end()) return any_it->second;
  return std::nullopt;
}

std::optional<Authorization> Policy::Effective(RelId rel,
                                               SubjectId subject) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return EffectiveLocked(rel, subject);
}

std::shared_ptr<const Policy::ViewSnapshot> Policy::Views() const {
  std::lock_guard<std::mutex> views_lock(views_mu_);
  // Rebuild when invalidated or when subjects/relations were registered
  // since the last build (both registries are shared and may grow).
  if (views_ != nullptr && views_->plain.size() == subjects_->size() &&
      views_->num_relations == catalog_->num_relations()) {
    return views_;
  }
  auto snapshot = std::make_shared<ViewSnapshot>();
  size_t n = subjects_->size();
  snapshot->plain.assign(n, AttrSet{});
  snapshot->enc.assign(n, AttrSet{});
  snapshot->num_relations = catalog_->num_relations();
  for (RelId r = 0; r < catalog_->num_relations(); ++r) {
    snapshot->grantable.InsertAll(catalog_->Get(r).schema.Attrs());
  }
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (SubjectId s = 0; s < n; ++s) {
      for (RelId r = 0; r < catalog_->num_relations(); ++r) {
        std::optional<Authorization> a = EffectiveLocked(r, s);
        if (!a.has_value()) continue;
        snapshot->plain[s].InsertAll(a->plain);
        snapshot->enc[s].InsertAll(a->enc);
      }
    }
  }
  views_ = snapshot;
  return snapshot;
}

AttrSet Policy::PlainView(SubjectId subject) const {
  auto views = Views();
  return subject < views->plain.size() ? views->plain[subject] : AttrSet{};
}

AttrSet Policy::EncView(SubjectId subject) const {
  auto views = Views();
  return subject < views->enc.size() ? views->enc[subject] : AttrSet{};
}

Status Policy::CheckAuthorized(SubjectId subject,
                               const RelationProfile& profile) const {
  auto views = Views();
  const AttrRegistry& reg = catalog_->attrs();
  const AttrSet& ps = views->plain[subject];
  const AttrSet& es = views->enc[subject];

  // Def 4.1 ranges over grantable attributes: outputs the binder interns for
  // derived values (count(*) and aliased aggregates) belong to no base
  // relation, cannot appear in any rule, and are plaintext counters whose
  // *inputs* are checked at the node computing them (cf. the count comment
  // in profile propagation) — so they are excluded from the conditions.
  const AttrSet& grantable = views->grantable;

  // Condition 1: Rvp ∪ Rip ⊆ P_S.
  AttrSet plain_needed = profile.vp.Union(profile.ip).Intersect(grantable);
  if (!plain_needed.IsSubsetOf(ps)) {
    AttrSet missing = plain_needed.Difference(ps);
    return Status::Unauthorized(StrFormat(
        "%s lacks plaintext visibility over [%s] (Def 4.1, condition 1)",
        subjects_->Name(subject).c_str(), missing.ToString(reg).c_str()));
  }

  // Condition 2: Rve ∪ Rie ⊆ P_S ∪ E_S.
  AttrSet enc_needed = profile.ve.Union(profile.ie).Intersect(grantable);
  AttrSet either = ps.Union(es);
  if (!enc_needed.IsSubsetOf(either)) {
    AttrSet missing = enc_needed.Difference(either);
    return Status::Unauthorized(StrFormat(
        "%s lacks (even encrypted) visibility over [%s] (Def 4.1, condition 2)",
        subjects_->Name(subject).c_str(), missing.ToString(reg).c_str()));
  }

  // Condition 3: every equivalence class uniformly visible: A ⊆ P_S or
  // A ⊆ E_S. Note the sets are the *specified* grants — a class mixing a
  // plaintext-granted and an encrypted-granted attribute fails (the paper's
  // insurance-company example).
  for (const AttrSet& full_cls : profile.eq.Classes()) {
    AttrSet cls = full_cls.Intersect(grantable);
    if (cls.IsSubsetOf(ps) || cls.IsSubsetOf(es)) continue;
    return Status::Unauthorized(StrFormat(
        "%s has non-uniform visibility over equivalent attributes {%s} "
        "(Def 4.1, condition 3)",
        subjects_->Name(subject).c_str(), cls.ToString(reg).c_str()));
  }
  return Status::OK();
}

Status Policy::CheckAssignee(
    SubjectId subject, const RelationProfile& result,
    const std::vector<const RelationProfile*>& operands) const {
  for (const RelationProfile* op : operands) {
    MPQ_RETURN_NOT_OK(CheckAuthorized(subject, *op));
  }
  return CheckAuthorized(subject, result);
}

std::vector<Authorization> Policy::AllRules() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Authorization> out;
  out.reserve(explicit_.size() + any_.size());
  for (const auto& [_, a] : explicit_) out.push_back(a);
  for (const auto& [_, a] : any_) out.push_back(a);
  return out;
}

}  // namespace mpq

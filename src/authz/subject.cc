#include "authz/subject.h"

#include <cassert>

namespace mpq {

const char* SubjectKindName(SubjectKind k) {
  switch (k) {
    case SubjectKind::kUser:
      return "user";
    case SubjectKind::kAuthority:
      return "authority";
    case SubjectKind::kProvider:
      return "provider";
  }
  return "unknown";
}

Result<SubjectId> SubjectRegistry::Register(const std::string& name,
                                            SubjectKind kind) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("subject already registered: " + name);
  }
  SubjectId id = static_cast<SubjectId>(subjects_.size());
  subjects_.push_back(Subject{id, name, kind});
  by_name_.emplace(name, id);
  return id;
}

SubjectId SubjectRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidSubject : it->second;
}

const Subject& SubjectRegistry::Get(SubjectId id) const {
  assert(id < subjects_.size());
  return subjects_[id];
}

std::vector<SubjectId> SubjectRegistry::OfKind(SubjectKind kind) const {
  std::vector<SubjectId> out;
  for (const Subject& s : subjects_) {
    if (s.kind == kind) out.push_back(s.id);
  }
  return out;
}

}  // namespace mpq

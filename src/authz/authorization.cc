#include "authz/authorization.h"

namespace mpq {

std::string Authorization::ToString(const Catalog& catalog,
                                    const SubjectRegistry& subjects) const {
  std::string out = "[";
  out += plain.ToString(catalog.attrs());
  out += ",";
  out += enc.ToString(catalog.attrs());
  out += "]->";
  out += is_any ? "any" : subjects.Name(subject);
  out += " on ";
  out += catalog.Get(rel).name;
  return out;
}

}  // namespace mpq

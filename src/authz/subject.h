// Subjects of the authorization model (Sec 2): users, data authorities, and
// cloud providers, plus the distinguished default subject `any`.

#ifndef MPQ_AUTHZ_SUBJECT_H_
#define MPQ_AUTHZ_SUBJECT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace mpq {

/// Dense identifier of a registered subject.
using SubjectId = uint32_t;

inline constexpr SubjectId kInvalidSubject = static_cast<SubjectId>(-1);

/// Role of a subject; affects default pricing and trust expectations only —
/// the authorization semantics (Defs 2.1/4.1/4.2) are role-agnostic.
enum class SubjectKind {
  kUser,       ///< Issues queries; expected to hold plaintext-only grants.
  kAuthority,  ///< Controls one or more base relations.
  kProvider,   ///< Offers computation; may hold encrypted grants.
};

const char* SubjectKindName(SubjectKind k);

/// A registered subject.
struct Subject {
  SubjectId id = kInvalidSubject;
  std::string name;
  SubjectKind kind = SubjectKind::kProvider;
};

/// Registry of the subjects S known to a scenario. The `any` default of the
/// paper is not a registered subject: Policy expands `any` authorizations to
/// every subject lacking an explicit one.
class SubjectRegistry {
 public:
  SubjectRegistry() = default;

  /// Registers a subject. Fails with kAlreadyExists on duplicate name.
  Result<SubjectId> Register(const std::string& name, SubjectKind kind);

  /// Id of `name`, or kInvalidSubject.
  SubjectId Find(const std::string& name) const;

  const Subject& Get(SubjectId id) const;
  const std::string& Name(SubjectId id) const { return Get(id).name; }

  size_t size() const { return subjects_.size(); }
  const std::vector<Subject>& subjects() const { return subjects_; }

  /// Ids of all subjects with the given kind.
  std::vector<SubjectId> OfKind(SubjectKind kind) const;

 private:
  std::vector<Subject> subjects_;
  std::unordered_map<std::string, SubjectId> by_name_;
};

}  // namespace mpq

#endif  // MPQ_AUTHZ_SUBJECT_H_

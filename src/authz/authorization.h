// Authorizations (Def 2.1): rules [P,E] -> S granting subject S plaintext
// visibility over attributes P and encrypted visibility over attributes E of
// one relation. `S` may be the distinguished default `any`.

#ifndef MPQ_AUTHZ_AUTHORIZATION_H_
#define MPQ_AUTHZ_AUTHORIZATION_H_

#include <string>

#include "authz/subject.h"
#include "catalog/catalog.h"
#include "common/attr_set.h"

namespace mpq {

/// One authorization rule. `is_any` marks the default rule for a relation,
/// applying to every subject without an explicit rule (Sec 2).
struct Authorization {
  RelId rel = kInvalidRel;
  bool is_any = false;
  SubjectId subject = kInvalidSubject;  ///< Valid iff !is_any.
  AttrSet plain;                        ///< P: plaintext-visible attributes.
  AttrSet enc;                          ///< E: encrypted-visible attributes.

  /// "[SDT,B]→Y on Hosp" rendering.
  std::string ToString(const Catalog& catalog,
                       const SubjectRegistry& subjects) const;
};

}  // namespace mpq

#endif  // MPQ_AUTHZ_AUTHORIZATION_H_

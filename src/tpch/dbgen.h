// Deterministic in-memory TPC-H data generator.
//
// Preserves the standard inter-table cardinality ratios and referential
// integrity; value distributions are uniform over the shared vocabularies so
// the 22 query shapes select non-empty results at any scale.

#ifndef MPQ_TPCH_DBGEN_H_
#define MPQ_TPCH_DBGEN_H_

#include <map>

#include "exec/table.h"
#include "tpch/tpch_schema.h"

namespace mpq {

/// Generated database: one table per relation id.
struct TpchData {
  std::map<RelId, Table> tables;

  const Table& at(RelId rel) const { return tables.at(rel); }
};

/// Generates data at scale `data_sf` (1.0 == TPC-H SF1 cardinalities;
/// use small values like 0.001 for in-process execution).
TpchData GenerateTpch(const TpchEnv& env, double data_sf, uint64_t seed);

}  // namespace mpq

#endif  // MPQ_TPCH_DBGEN_H_

// Shared vocabularies between the TPC-H data generator and the query
// definitions, so that query constants select non-empty results.

#ifndef MPQ_TPCH_VOCAB_H_
#define MPQ_TPCH_VOCAB_H_

#include <string>
#include <vector>

namespace mpq::tpch {

inline const std::vector<std::string>& Regions() {
  static const std::vector<std::string> v = {"AFRICA", "AMERICA", "ASIA",
                                             "EUROPE", "MIDDLE EAST"};
  return v;
}

inline const std::vector<std::string>& Nations() {
  static const std::vector<std::string> v = {
      "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",       "EGYPT",
      "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",        "INDONESIA",
      "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",       "KENYA",
      "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",        "ROMANIA",
      "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
      "UNITED STATES"};
  return v;
}

inline const std::vector<std::string>& Segments() {
  static const std::vector<std::string> v = {"AUTOMOBILE", "BUILDING",
                                             "FURNITURE", "MACHINERY",
                                             "HOUSEHOLD"};
  return v;
}

inline const std::vector<std::string>& Priorities() {
  static const std::vector<std::string> v = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                             "4-NOT SPECIFIED", "5-LOW"};
  return v;
}

inline const std::vector<std::string>& Brands() {
  static const std::vector<std::string> v = {"Brand#11", "Brand#12",
                                             "Brand#23", "Brand#34",
                                             "Brand#45"};
  return v;
}

inline const std::vector<std::string>& Types() {
  static const std::vector<std::string> v = {
      "ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS", "MEDIUM POLISHED COPPER",
      "PROMO BURNISHED NICKEL", "SMALL PLATED TIN", "STANDARD POLISHED BRASS"};
  return v;
}

inline const std::vector<std::string>& Containers() {
  static const std::vector<std::string> v = {"SM CASE", "MED BOX", "LG DRUM",
                                             "JUMBO PKG", "WRAP BAG"};
  return v;
}

inline const std::vector<std::string>& ShipModes() {
  static const std::vector<std::string> v = {"AIR", "MAIL", "RAIL", "SHIP",
                                             "TRUCK", "FOB", "REG AIR"};
  return v;
}

inline const std::vector<std::string>& ReturnFlags() {
  static const std::vector<std::string> v = {"A", "N", "R"};
  return v;
}

inline const std::vector<std::string>& LineStatus() {
  static const std::vector<std::string> v = {"F", "O"};
  return v;
}

inline const std::vector<std::string>& OrderStatus() {
  static const std::vector<std::string> v = {"F", "O", "P"};
  return v;
}

/// Day-number range for dates (days since 1992-01-01; ~7 years).
inline constexpr int64_t kMinDate = 0;
inline constexpr int64_t kMaxDate = 2555;

}  // namespace mpq::tpch

#endif  // MPQ_TPCH_VOCAB_H_

#include "tpch/queries.h"

#include "algebra/plan_builder.h"
#include "tpch/vocab.h"

namespace mpq {

namespace {

using tpch::Brands;
using tpch::Containers;
using tpch::Nations;
using tpch::Regions;
using tpch::Segments;
using tpch::ShipModes;
using tpch::Types;

/// Leaf with projection pushed down (the paper's convention: a leaf is the
/// projection of a source relation).
PlanPtr Leaf(const PlanBuilder& b, const std::string& rel,
             const std::string& cols) {
  return Project(b.Rel(rel), b.Set(cols));
}

Aggregate Sum(const PlanBuilder& b, const std::string& a) {
  return Aggregate::Make(AggFunc::kSum, b.A(a));
}
Aggregate Avg(const PlanBuilder& b, const std::string& a) {
  return Aggregate::Make(AggFunc::kAvg, b.A(a));
}
Aggregate Min(const PlanBuilder& b, const std::string& a) {
  return Aggregate::Make(AggFunc::kMin, b.A(a));
}
Aggregate Max(const PlanBuilder& b, const std::string& a) {
  return Aggregate::Make(AggFunc::kMax, b.A(a));
}
Aggregate Count(const PlanBuilder& b, const std::string& a) {
  return Aggregate::Make(AggFunc::kCount, b.A(a));
}

Value S(const std::string& s) { return Value(s); }
Value I(int64_t v) { return Value(v); }
Value D(double v) { return Value(v); }

// Q1: pricing summary report.
PlanPtr Q1(const PlanBuilder& b) {
  PlanPtr p = Leaf(b, "lineitem",
                   "l_returnflag,l_linestatus,l_quantity,l_extendedprice,"
                   "l_discount,l_shipdate");
  p = Select(std::move(p), {b.Pv("l_shipdate", CmpOp::kLe, I(2451))});
  return GroupBy(std::move(p), b.Set("l_returnflag,l_linestatus"),
                 {Sum(b, "l_quantity"), Sum(b, "l_extendedprice"),
                  Avg(b, "l_discount")});
}

// Q2: minimum-cost supplier.
PlanPtr Q2(const PlanBuilder& b) {
  PlanPtr part = Select(Leaf(b, "part", "p_partkey,p_size,p_type"),
                        {b.Pv("p_size", CmpOp::kEq, I(15))});
  PlanPtr ps = Leaf(b, "partsupp", "ps_partkey,ps_suppkey,ps_supplycost");
  PlanPtr j1 = Join(std::move(part), std::move(ps),
                    {b.Pa("p_partkey", CmpOp::kEq, "ps_partkey")});
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_nationkey,s_acctbal");
  PlanPtr j2 = Join(std::move(j1), std::move(supp),
                    {b.Pa("ps_suppkey", CmpOp::kEq, "s_suppkey")});
  PlanPtr nat = Leaf(b, "nation", "n_nationkey,n_regionkey,n_name");
  PlanPtr j3 = Join(std::move(j2), std::move(nat),
                    {b.Pa("s_nationkey", CmpOp::kEq, "n_nationkey")});
  PlanPtr reg = Select(Leaf(b, "region", "r_regionkey,r_name"),
                       {b.Pv("r_name", CmpOp::kEq, S("EUROPE"))});
  PlanPtr j4 = Join(std::move(j3), std::move(reg),
                    {b.Pa("n_regionkey", CmpOp::kEq, "r_regionkey")});
  return GroupBy(std::move(j4), b.Set("n_name"),
                 {Min(b, "ps_supplycost"), Max(b, "s_acctbal")});
}

// Q3: shipping priority.
PlanPtr Q3(const PlanBuilder& b) {
  PlanPtr cust = Select(Leaf(b, "customer", "c_custkey,c_mktsegment"),
                        {b.Pv("c_mktsegment", CmpOp::kEq, S("BUILDING"))});
  PlanPtr ord = Select(
      Leaf(b, "orders", "o_orderkey,o_custkey,o_orderdate,o_shippriority"),
      {b.Pv("o_orderdate", CmpOp::kLt, I(1204))});
  PlanPtr j1 = Join(std::move(cust), std::move(ord),
                    {b.Pa("c_custkey", CmpOp::kEq, "o_custkey")});
  PlanPtr li =
      Select(Leaf(b, "lineitem", "l_orderkey,l_extendedprice,l_shipdate"),
             {b.Pv("l_shipdate", CmpOp::kGt, I(1204))});
  PlanPtr j2 = Join(std::move(j1), std::move(li),
                    {b.Pa("o_orderkey", CmpOp::kEq, "l_orderkey")});
  return GroupBy(std::move(j2), b.Set("o_orderkey,o_orderdate,o_shippriority"),
                 {Sum(b, "l_extendedprice")});
}

// Q4: order priority checking (EXISTS lowered to a join + date comparison).
PlanPtr Q4(const PlanBuilder& b) {
  PlanPtr ord =
      Select(Leaf(b, "orders", "o_orderkey,o_orderdate,o_orderpriority"),
             {b.Pv("o_orderdate", CmpOp::kGe, I(1000)),
              b.Pv("o_orderdate", CmpOp::kLt, I(1090))});
  PlanPtr li = Leaf(b, "lineitem", "l_orderkey,l_commitdate,l_receiptdate");
  PlanPtr j = Join(std::move(ord), std::move(li),
                   {b.Pa("o_orderkey", CmpOp::kEq, "l_orderkey")});
  j = Select(std::move(j),
             {b.Pa("l_commitdate", CmpOp::kLt, "l_receiptdate")});
  return GroupBy(std::move(j), b.Set("o_orderpriority"),
                 {Aggregate::CountStar(b.A("o_orderkey"))});
}

// Q5: local supplier volume.
PlanPtr Q5(const PlanBuilder& b) {
  PlanPtr cust = Leaf(b, "customer", "c_custkey,c_nationkey");
  PlanPtr ord = Select(Leaf(b, "orders", "o_orderkey,o_custkey,o_orderdate"),
                       {b.Pv("o_orderdate", CmpOp::kGe, I(730)),
                        b.Pv("o_orderdate", CmpOp::kLt, I(1095))});
  PlanPtr j1 = Join(std::move(cust), std::move(ord),
                    {b.Pa("c_custkey", CmpOp::kEq, "o_custkey")});
  PlanPtr li = Leaf(b, "lineitem", "l_orderkey,l_suppkey,l_extendedprice");
  PlanPtr j2 = Join(std::move(j1), std::move(li),
                    {b.Pa("o_orderkey", CmpOp::kEq, "l_orderkey")});
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_nationkey");
  PlanPtr j3 = Join(std::move(j2), std::move(supp),
                    {b.Pa("l_suppkey", CmpOp::kEq, "s_suppkey"),
                     b.Pa("c_nationkey", CmpOp::kEq, "s_nationkey")});
  PlanPtr nat = Leaf(b, "nation", "n_nationkey,n_regionkey,n_name");
  PlanPtr j4 = Join(std::move(j3), std::move(nat),
                    {b.Pa("s_nationkey", CmpOp::kEq, "n_nationkey")});
  PlanPtr reg = Select(Leaf(b, "region", "r_regionkey,r_name"),
                       {b.Pv("r_name", CmpOp::kEq, S("ASIA"))});
  PlanPtr j5 = Join(std::move(j4), std::move(reg),
                    {b.Pa("n_regionkey", CmpOp::kEq, "r_regionkey")});
  return GroupBy(std::move(j5), b.Set("n_name"), {Sum(b, "l_extendedprice")});
}

// Q6: forecasting revenue change.
PlanPtr Q6(const PlanBuilder& b) {
  PlanPtr li = Leaf(b, "lineitem",
                    "l_extendedprice,l_discount,l_quantity,l_shipdate");
  li = Select(std::move(li), {b.Pv("l_shipdate", CmpOp::kGe, I(730)),
                              b.Pv("l_shipdate", CmpOp::kLt, I(1095)),
                              b.Pv("l_discount", CmpOp::kGe, D(0.05)),
                              b.Pv("l_discount", CmpOp::kLe, D(0.07)),
                              b.Pv("l_quantity", CmpOp::kLt, D(24))});
  return GroupBy(std::move(li), {}, {Sum(b, "l_extendedprice")});
}

// Q7: volume shipping (one nation dimension; see DESIGN.md on aliases).
PlanPtr Q7(const PlanBuilder& b) {
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_nationkey");
  PlanPtr li = Select(
      Leaf(b, "lineitem", "l_orderkey,l_suppkey,l_extendedprice,l_shipdate"),
      {b.Pv("l_shipdate", CmpOp::kGe, I(1095)),
       b.Pv("l_shipdate", CmpOp::kLe, I(1825))});
  PlanPtr j1 = Join(std::move(supp), std::move(li),
                    {b.Pa("s_suppkey", CmpOp::kEq, "l_suppkey")});
  PlanPtr ord = Leaf(b, "orders", "o_orderkey,o_custkey");
  PlanPtr j2 = Join(std::move(j1), std::move(ord),
                    {b.Pa("l_orderkey", CmpOp::kEq, "o_orderkey")});
  PlanPtr cust = Leaf(b, "customer", "c_custkey,c_nationkey");
  PlanPtr j3 = Join(std::move(j2), std::move(cust),
                    {b.Pa("o_custkey", CmpOp::kEq, "c_custkey")});
  PlanPtr nat = Select(Leaf(b, "nation", "n_nationkey,n_name"),
                       {b.Pv("n_name", CmpOp::kEq, S("FRANCE"))});
  PlanPtr j4 = Join(std::move(j3), std::move(nat),
                    {b.Pa("s_nationkey", CmpOp::kEq, "n_nationkey")});
  return GroupBy(std::move(j4), b.Set("n_name"), {Sum(b, "l_extendedprice")});
}

// Q8: national market share.
PlanPtr Q8(const PlanBuilder& b) {
  PlanPtr part = Select(Leaf(b, "part", "p_partkey,p_type"),
                        {b.Pv("p_type", CmpOp::kEq,
                              S("ECONOMY ANODIZED STEEL"))});
  PlanPtr li = Leaf(b, "lineitem",
                    "l_orderkey,l_partkey,l_suppkey,l_extendedprice");
  PlanPtr j1 = Join(std::move(part), std::move(li),
                    {b.Pa("p_partkey", CmpOp::kEq, "l_partkey")});
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_nationkey");
  PlanPtr j2 = Join(std::move(j1), std::move(supp),
                    {b.Pa("l_suppkey", CmpOp::kEq, "s_suppkey")});
  PlanPtr ord = Select(Leaf(b, "orders", "o_orderkey,o_orderdate"),
                       {b.Pv("o_orderdate", CmpOp::kGe, I(1095)),
                        b.Pv("o_orderdate", CmpOp::kLe, I(1825))});
  PlanPtr j3 = Join(std::move(j2), std::move(ord),
                    {b.Pa("l_orderkey", CmpOp::kEq, "o_orderkey")});
  PlanPtr nat = Leaf(b, "nation", "n_nationkey,n_regionkey,n_name");
  PlanPtr j4 = Join(std::move(j3), std::move(nat),
                    {b.Pa("s_nationkey", CmpOp::kEq, "n_nationkey")});
  PlanPtr reg = Select(Leaf(b, "region", "r_regionkey,r_name"),
                       {b.Pv("r_name", CmpOp::kEq, S("AMERICA"))});
  PlanPtr j5 = Join(std::move(j4), std::move(reg),
                    {b.Pa("n_regionkey", CmpOp::kEq, "r_regionkey")});
  return GroupBy(std::move(j5), b.Set("n_name"), {Avg(b, "l_extendedprice")});
}

// Q9: product type profit measure.
PlanPtr Q9(const PlanBuilder& b) {
  PlanPtr part = Select(Leaf(b, "part", "p_partkey,p_type"),
                        {b.Pv("p_type", CmpOp::kEq, S("LARGE BRUSHED BRASS"))});
  PlanPtr ps = Leaf(b, "partsupp", "ps_partkey,ps_suppkey,ps_supplycost");
  PlanPtr j1 = Join(std::move(part), std::move(ps),
                    {b.Pa("p_partkey", CmpOp::kEq, "ps_partkey")});
  PlanPtr li = Leaf(b, "lineitem",
                    "l_orderkey,l_partkey,l_suppkey,l_extendedprice");
  PlanPtr j2 = Join(std::move(j1), std::move(li),
                    {b.Pa("ps_partkey", CmpOp::kEq, "l_partkey"),
                     b.Pa("ps_suppkey", CmpOp::kEq, "l_suppkey")});
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_nationkey");
  PlanPtr j3 = Join(std::move(j2), std::move(supp),
                    {b.Pa("l_suppkey", CmpOp::kEq, "s_suppkey")});
  PlanPtr nat = Leaf(b, "nation", "n_nationkey,n_name");
  PlanPtr j4 = Join(std::move(j3), std::move(nat),
                    {b.Pa("s_nationkey", CmpOp::kEq, "n_nationkey")});
  return GroupBy(std::move(j4), b.Set("n_name"),
                 {Sum(b, "l_extendedprice"), Sum(b, "ps_supplycost")});
}

// Q10: returned item reporting.
PlanPtr Q10(const PlanBuilder& b) {
  PlanPtr cust = Leaf(b, "customer", "c_custkey,c_name,c_acctbal,c_nationkey");
  PlanPtr ord = Select(Leaf(b, "orders", "o_orderkey,o_custkey,o_orderdate"),
                       {b.Pv("o_orderdate", CmpOp::kGe, I(640)),
                        b.Pv("o_orderdate", CmpOp::kLt, I(730))});
  PlanPtr j1 = Join(std::move(cust), std::move(ord),
                    {b.Pa("c_custkey", CmpOp::kEq, "o_custkey")});
  PlanPtr li =
      Select(Leaf(b, "lineitem", "l_orderkey,l_extendedprice,l_returnflag"),
             {b.Pv("l_returnflag", CmpOp::kEq, S("R"))});
  PlanPtr j2 = Join(std::move(j1), std::move(li),
                    {b.Pa("o_orderkey", CmpOp::kEq, "l_orderkey")});
  PlanPtr nat = Leaf(b, "nation", "n_nationkey,n_name");
  PlanPtr j3 = Join(std::move(j2), std::move(nat),
                    {b.Pa("c_nationkey", CmpOp::kEq, "n_nationkey")});
  return GroupBy(std::move(j3), b.Set("c_custkey,c_name,n_name"),
                 {Sum(b, "l_extendedprice")});
}

// Q11: important stock identification.
PlanPtr Q11(const PlanBuilder& b) {
  PlanPtr ps = Leaf(b, "partsupp", "ps_partkey,ps_suppkey,ps_supplycost");
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_nationkey");
  PlanPtr j1 = Join(std::move(ps), std::move(supp),
                    {b.Pa("ps_suppkey", CmpOp::kEq, "s_suppkey")});
  PlanPtr nat = Select(Leaf(b, "nation", "n_nationkey,n_name"),
                       {b.Pv("n_name", CmpOp::kEq, S("GERMANY"))});
  PlanPtr j2 = Join(std::move(j1), std::move(nat),
                    {b.Pa("s_nationkey", CmpOp::kEq, "n_nationkey")});
  PlanPtr g = GroupBy(std::move(j2), b.Set("ps_partkey"),
                      {Sum(b, "ps_supplycost")});
  return Select(std::move(g), {b.Pv("ps_supplycost", CmpOp::kGt, D(100.0))});
}

// Q12: shipping modes and order priority.
PlanPtr Q12(const PlanBuilder& b) {
  PlanPtr ord = Leaf(b, "orders", "o_orderkey,o_orderpriority");
  PlanPtr li = Select(
      Leaf(b, "lineitem",
           "l_orderkey,l_shipmode,l_commitdate,l_receiptdate"),
      {b.Pv("l_shipmode", CmpOp::kEq, S("MAIL")),
       b.Pv("l_receiptdate", CmpOp::kGe, I(730)),
       b.Pv("l_receiptdate", CmpOp::kLt, I(1095))});
  PlanPtr j = Join(std::move(ord), std::move(li),
                   {b.Pa("o_orderkey", CmpOp::kEq, "l_orderkey")});
  j = Select(std::move(j), {b.Pa("l_commitdate", CmpOp::kLt, "l_receiptdate")});
  return GroupBy(std::move(j), b.Set("l_shipmode"),
                 {Aggregate::CountStar(b.A("o_orderkey"))});
}

// Q13: customer distribution (two-level aggregation).
PlanPtr Q13(const PlanBuilder& b) {
  PlanPtr cust = Leaf(b, "customer", "c_custkey");
  PlanPtr ord = Leaf(b, "orders", "o_orderkey,o_custkey");
  PlanPtr j = Join(std::move(cust), std::move(ord),
                   {b.Pa("c_custkey", CmpOp::kEq, "o_custkey")});
  PlanPtr g1 = GroupBy(std::move(j), b.Set("c_custkey"),
                       {Count(b, "o_orderkey")});
  return GroupBy(std::move(g1), b.Set("o_orderkey"),
                 {Aggregate::CountStar(b.A("c_custkey"))});
}

// Q14: promotion effect.
PlanPtr Q14(const PlanBuilder& b) {
  PlanPtr li =
      Select(Leaf(b, "lineitem", "l_partkey,l_extendedprice,l_shipdate"),
             {b.Pv("l_shipdate", CmpOp::kGe, I(1000)),
              b.Pv("l_shipdate", CmpOp::kLt, I(1030))});
  PlanPtr part = Leaf(b, "part", "p_partkey,p_type");
  PlanPtr j = Join(std::move(li), std::move(part),
                   {b.Pa("l_partkey", CmpOp::kEq, "p_partkey")});
  return GroupBy(std::move(j), {}, {Sum(b, "l_extendedprice")});
}

// Q15: top supplier (revenue view lowered to an aggregation subtree).
PlanPtr Q15(const PlanBuilder& b) {
  PlanPtr li = Select(
      Leaf(b, "lineitem", "l_suppkey,l_extendedprice,l_shipdate"),
      {b.Pv("l_shipdate", CmpOp::kGe, I(1400)),
       b.Pv("l_shipdate", CmpOp::kLt, I(1490))});
  PlanPtr rev = GroupBy(std::move(li), b.Set("l_suppkey"),
                        {Sum(b, "l_extendedprice")});
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_name");
  PlanPtr j = Join(std::move(rev), std::move(supp),
                   {b.Pa("l_suppkey", CmpOp::kEq, "s_suppkey")});
  return GroupBy(std::move(j), b.Set("s_name"), {Max(b, "l_extendedprice")});
}

// Q16: parts/supplier relationship.
PlanPtr Q16(const PlanBuilder& b) {
  PlanPtr part = Select(Leaf(b, "part", "p_partkey,p_brand,p_type,p_size"),
                        {b.Pv("p_brand", CmpOp::kNe, S("Brand#45")),
                         b.Pv("p_size", CmpOp::kGe, I(1)),
                         b.Pv("p_size", CmpOp::kLe, I(15))});
  PlanPtr ps = Leaf(b, "partsupp", "ps_partkey,ps_suppkey");
  PlanPtr j = Join(std::move(part), std::move(ps),
                   {b.Pa("p_partkey", CmpOp::kEq, "ps_partkey")});
  return GroupBy(std::move(j), b.Set("p_brand,p_type,p_size"),
                 {Count(b, "ps_suppkey")});
}

// Q17: small-quantity-order revenue.
PlanPtr Q17(const PlanBuilder& b) {
  PlanPtr li = Leaf(b, "lineitem", "l_partkey,l_quantity,l_extendedprice");
  li = Select(std::move(li), {b.Pv("l_quantity", CmpOp::kLt, D(5))});
  PlanPtr part = Select(Leaf(b, "part", "p_partkey,p_brand,p_container"),
                        {b.Pv("p_brand", CmpOp::kEq, S("Brand#23")),
                         b.Pv("p_container", CmpOp::kEq, S("MED BOX"))});
  PlanPtr j = Join(std::move(li), std::move(part),
                   {b.Pa("l_partkey", CmpOp::kEq, "p_partkey")});
  return GroupBy(std::move(j), {}, {Avg(b, "l_extendedprice")});
}

// Q18: large volume customer.
PlanPtr Q18(const PlanBuilder& b) {
  PlanPtr cust = Leaf(b, "customer", "c_custkey,c_name");
  PlanPtr ord = Leaf(b, "orders", "o_orderkey,o_custkey,o_totalprice");
  PlanPtr j1 = Join(std::move(cust), std::move(ord),
                    {b.Pa("c_custkey", CmpOp::kEq, "o_custkey")});
  PlanPtr li = Leaf(b, "lineitem", "l_orderkey,l_quantity");
  PlanPtr j2 = Join(std::move(j1), std::move(li),
                    {b.Pa("o_orderkey", CmpOp::kEq, "l_orderkey")});
  PlanPtr g = GroupBy(std::move(j2), b.Set("c_name,o_orderkey,o_totalprice"),
                      {Sum(b, "l_quantity")});
  return Select(std::move(g), {b.Pv("l_quantity", CmpOp::kGt, D(30))});
}

// Q19: discounted revenue.
PlanPtr Q19(const PlanBuilder& b) {
  PlanPtr li = Select(
      Leaf(b, "lineitem",
           "l_partkey,l_quantity,l_extendedprice,l_shipmode"),
      {b.Pv("l_shipmode", CmpOp::kEq, S("AIR")),
       b.Pv("l_quantity", CmpOp::kGe, D(1)),
       b.Pv("l_quantity", CmpOp::kLe, D(30))});
  PlanPtr part = Select(Leaf(b, "part", "p_partkey,p_brand,p_container"),
                        {b.Pv("p_brand", CmpOp::kEq, S("Brand#12"))});
  PlanPtr j = Join(std::move(li), std::move(part),
                   {b.Pa("l_partkey", CmpOp::kEq, "p_partkey")});
  return GroupBy(std::move(j), {}, {Sum(b, "l_extendedprice")});
}

// Q20: potential part promotion.
PlanPtr Q20(const PlanBuilder& b) {
  PlanPtr ps = Select(Leaf(b, "partsupp", "ps_partkey,ps_suppkey,ps_availqty"),
                      {b.Pv("ps_availqty", CmpOp::kGt, I(100))});
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_name,s_nationkey");
  PlanPtr j1 = Join(std::move(ps), std::move(supp),
                    {b.Pa("ps_suppkey", CmpOp::kEq, "s_suppkey")});
  PlanPtr nat = Select(Leaf(b, "nation", "n_nationkey,n_name"),
                       {b.Pv("n_name", CmpOp::kEq, S("CANADA"))});
  PlanPtr j2 = Join(std::move(j1), std::move(nat),
                    {b.Pa("s_nationkey", CmpOp::kEq, "n_nationkey")});
  return GroupBy(std::move(j2), b.Set("s_name"),
                 {Aggregate::CountStar(b.A("ps_partkey"))});
}

// Q21: suppliers who kept orders waiting.
PlanPtr Q21(const PlanBuilder& b) {
  PlanPtr supp = Leaf(b, "supplier", "s_suppkey,s_name,s_nationkey");
  PlanPtr li = Leaf(b, "lineitem",
                    "l_orderkey,l_suppkey,l_commitdate,l_receiptdate");
  PlanPtr j1 = Join(std::move(supp), std::move(li),
                    {b.Pa("s_suppkey", CmpOp::kEq, "l_suppkey")});
  j1 = Select(std::move(j1),
              {b.Pa("l_receiptdate", CmpOp::kGt, "l_commitdate")});
  PlanPtr ord = Select(Leaf(b, "orders", "o_orderkey,o_orderstatus"),
                       {b.Pv("o_orderstatus", CmpOp::kEq, S("F"))});
  PlanPtr j2 = Join(std::move(j1), std::move(ord),
                    {b.Pa("l_orderkey", CmpOp::kEq, "o_orderkey")});
  PlanPtr nat = Select(Leaf(b, "nation", "n_nationkey,n_name"),
                       {b.Pv("n_name", CmpOp::kEq, S("SAUDI ARABIA"))});
  PlanPtr j3 = Join(std::move(j2), std::move(nat),
                    {b.Pa("s_nationkey", CmpOp::kEq, "n_nationkey")});
  return GroupBy(std::move(j3), b.Set("s_name"),
                 {Aggregate::CountStar(b.A("l_orderkey"))});
}

// Q22: global sales opportunity.
PlanPtr Q22(const PlanBuilder& b) {
  PlanPtr cust = Select(Leaf(b, "customer", "c_custkey,c_nationkey,c_acctbal"),
                        {b.Pv("c_acctbal", CmpOp::kGt, D(0.0))});
  PlanPtr nat = Leaf(b, "nation", "n_nationkey,n_name");
  PlanPtr j = Join(std::move(cust), std::move(nat),
                   {b.Pa("c_nationkey", CmpOp::kEq, "n_nationkey")});
  return GroupBy(std::move(j), b.Set("n_name"),
                 {Aggregate::CountStar(b.A("c_custkey")), Avg(b, "c_acctbal")});
}

}  // namespace

int NumTpchQueries() { return 22; }

Result<PlanPtr> BuildTpchQuery(int q, const TpchEnv& env) {
  PlanBuilder b(&env.catalog);
  PlanPtr plan;
  switch (q) {
    case 1: plan = Q1(b); break;
    case 2: plan = Q2(b); break;
    case 3: plan = Q3(b); break;
    case 4: plan = Q4(b); break;
    case 5: plan = Q5(b); break;
    case 6: plan = Q6(b); break;
    case 7: plan = Q7(b); break;
    case 8: plan = Q8(b); break;
    case 9: plan = Q9(b); break;
    case 10: plan = Q10(b); break;
    case 11: plan = Q11(b); break;
    case 12: plan = Q12(b); break;
    case 13: plan = Q13(b); break;
    case 14: plan = Q14(b); break;
    case 15: plan = Q15(b); break;
    case 16: plan = Q16(b); break;
    case 17: plan = Q17(b); break;
    case 18: plan = Q18(b); break;
    case 19: plan = Q19(b); break;
    case 20: plan = Q20(b); break;
    case 21: plan = Q21(b); break;
    case 22: plan = Q22(b); break;
    default:
      return Status::InvalidArgument("TPC-H query number must be in 1..22");
  }
  return FinishPlan(std::move(plan), env.catalog);
}

Result<PlanPtr> BuildUdfQuery(const TpchEnv& env) {
  PlanBuilder b(&env.catalog);
  PlanPtr li = Leaf(b, "lineitem",
                    "l_orderkey,l_quantity,l_extendedprice,l_discount");
  li = Select(std::move(li), {b.Pv("l_quantity", CmpOp::kGt, D(10))});
  // "enc_"-prefixed udf: evaluable over ciphertexts, so providers with only
  // encrypted visibility can still be delegated the expensive computation —
  // the Sec 7 observation on udf savings.
  li = Udf(std::move(li), "enc_risk_score",
           b.Set("l_quantity,l_extendedprice,l_discount"),
           b.A("l_extendedprice"));
  PlanPtr g = GroupBy(std::move(li), b.Set("l_orderkey"),
                      {Avg(b, "l_extendedprice")});
  return FinishPlan(std::move(g), env.catalog);
}

}  // namespace mpq

// The three authorization scenarios of the paper's evaluation (Sec 7):
//
//   UA      — only the querying user may access the base relations (beyond
//             each relation's own authority);
//   UAPenc  — cloud providers may additionally access every attribute of
//             every relation in encrypted form;
//   UAPmix  — half of the encrypted-only attributes become plaintext-visible
//             to providers.

#ifndef MPQ_TPCH_SCENARIOS_H_
#define MPQ_TPCH_SCENARIOS_H_

#include <memory>

#include "authz/policy.h"
#include "net/pricing.h"
#include "net/topology.h"
#include "tpch/tpch_schema.h"

namespace mpq {

enum class AuthScenario { kUA, kUAPenc, kUAPmix };

const char* AuthScenarioName(AuthScenario s);

/// Builds the policy for `scenario`. The returned Policy references the
/// environment's catalog and subject registry, which must outlive it.
Result<Policy> MakeScenarioPolicy(const TpchEnv& env, AuthScenario scenario);

/// Paper pricing and topology for the environment (user 10× / authority 3×
/// provider cpu price; slight price diversity across providers; 10 Gbps
/// provider links, 100 Mbps client link).
PricingTable MakeScenarioPricing(const TpchEnv& env);
Topology MakeScenarioTopology(const TpchEnv& env);

}  // namespace mpq

#endif  // MPQ_TPCH_SCENARIOS_H_

#include "tpch/scenarios.h"

namespace mpq {

const char* AuthScenarioName(AuthScenario s) {
  switch (s) {
    case AuthScenario::kUA:
      return "UA";
    case AuthScenario::kUAPenc:
      return "UAPenc";
    case AuthScenario::kUAPmix:
      return "UAPmix";
  }
  return "?";
}

Result<Policy> MakeScenarioPolicy(const TpchEnv& env, AuthScenario scenario) {
  Policy policy(&env.catalog, &env.subjects);
  for (const RelationDef& rel : env.catalog.relations()) {
    AttrSet all = rel.schema.Attrs();
    // The owning authority and the user see everything in plaintext.
    MPQ_RETURN_NOT_OK(policy.Grant(rel.id, rel.owner, all, {}));
    MPQ_RETURN_NOT_OK(policy.Grant(rel.id, env.user, all, {}));
    // The other authority gets nothing (closed policy) in all scenarios.
    if (scenario == AuthScenario::kUA) continue;

    for (SubjectId p : env.providers) {
      if (scenario == AuthScenario::kUAPenc) {
        MPQ_RETURN_NOT_OK(policy.Grant(rel.id, p, {}, all));
      } else {
        // UAPmix: half of the attributes become plaintext-visible. The
        // plaintext half starts from the key columns (so equi-join pairs
        // keep uniform visibility — a split that cuts a join pair in two
        // disqualifies providers via Def 4.1 condition 3, the paper's
        // counterintuitive example) and is padded with alternating non-key
        // columns up to half the schema.
        const auto& cols = rel.schema.columns();
        size_t half = (cols.size() + 1) / 2;
        AttrSet plain, enc;
        for (const Column& c : cols) {
          if (plain.size() < half &&
              c.name.find("key") != std::string::npos) {
            plain.Insert(c.attr);
          }
        }
        size_t parity = 0;
        for (const Column& c : cols) {
          if (plain.Contains(c.attr)) continue;
          if (plain.size() < half && parity++ % 2 == 0) {
            plain.Insert(c.attr);
          } else {
            enc.Insert(c.attr);
          }
        }
        MPQ_RETURN_NOT_OK(policy.Grant(rel.id, p, plain, enc));
      }
    }
  }
  return policy;
}

PricingTable MakeScenarioPricing(const TpchEnv& env) {
  PricingTable prices = PricingTable::PaperDefaults(env.subjects);
  // Slight provider diversity: later providers are marginally cheaper, so
  // cost-based assignment has something to choose between.
  for (size_t i = 0; i < env.providers.size(); ++i) {
    PriceList p = prices.Get(env.providers[i]);
    p.cpu_usd_per_hour *= 1.0 - 0.05 * static_cast<double>(i);
    prices.Set(env.providers[i], p);
  }
  return prices;
}

Topology MakeScenarioTopology(const TpchEnv& env) {
  return Topology::PaperDefaults(env.subjects);
}

}  // namespace mpq

#include "tpch/dbgen.h"

#include "common/rng.h"
#include "exec/executor.h"
#include "tpch/vocab.h"

namespace mpq {

namespace {

using namespace tpch;

Cell I(int64_t v) { return Cell(Value(v)); }
Cell D(double v) { return Cell(Value(v)); }
Cell S(std::string v) { return Cell(Value(std::move(v))); }

const std::string& Pick(const std::vector<std::string>& v, Rng& rng) {
  return v[rng.Uniform(v.size())];
}

double Money(Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.NextDouble();
}

}  // namespace

TpchData GenerateTpch(const TpchEnv& env, double data_sf, uint64_t seed) {
  Rng rng(seed);
  TpchData db;

  auto rows_for = [&](RelId rel) {
    return static_cast<int64_t>(TpchRows(env, rel, data_sf));
  };

  // region
  {
    Table t = MakeBaseTable(env.catalog.Get(env.region));
    for (size_t i = 0; i < Regions().size(); ++i) {
      t.AddRow({I(static_cast<int64_t>(i)), S(Regions()[i])});
    }
    db.tables.emplace(env.region, std::move(t));
  }

  // nation
  {
    Table t = MakeBaseTable(env.catalog.Get(env.nation));
    for (size_t i = 0; i < Nations().size(); ++i) {
      t.AddRow({I(static_cast<int64_t>(i)), S(Nations()[i]),
                I(static_cast<int64_t>(i % Regions().size()))});
    }
    db.tables.emplace(env.nation, std::move(t));
  }

  int64_t n_supp = rows_for(env.supplier);
  int64_t n_cust = rows_for(env.customer);
  int64_t n_part = rows_for(env.part);
  int64_t n_ps = rows_for(env.partsupp);
  int64_t n_ord = rows_for(env.orders);
  int64_t n_li = rows_for(env.lineitem);
  int64_t n_nation = static_cast<int64_t>(Nations().size());

  // supplier
  {
    Table t = MakeBaseTable(env.catalog.Get(env.supplier));
    for (int64_t k = 1; k <= n_supp; ++k) {
      t.AddRow({I(k), S("Supplier#" + std::to_string(k)),
                I(rng.Range(0, n_nation - 1)),
                D(Money(rng, -999, 9999))});
    }
    db.tables.emplace(env.supplier, std::move(t));
  }

  // customer
  {
    Table t = MakeBaseTable(env.catalog.Get(env.customer));
    for (int64_t k = 1; k <= n_cust; ++k) {
      t.AddRow({I(k), S("Customer#" + std::to_string(k)),
                I(rng.Range(0, n_nation - 1)), D(Money(rng, -999, 9999)),
                S(Pick(Segments(), rng))});
    }
    db.tables.emplace(env.customer, std::move(t));
  }

  // part
  {
    Table t = MakeBaseTable(env.catalog.Get(env.part));
    for (int64_t k = 1; k <= n_part; ++k) {
      t.AddRow({I(k), S("part#" + std::to_string(k)), S(Pick(Types(), rng)),
                I(rng.Range(1, 50)), S(Pick(Brands(), rng)),
                D(Money(rng, 900, 2000)), S(Pick(Containers(), rng))});
    }
    db.tables.emplace(env.part, std::move(t));
  }

  // partsupp
  {
    Table t = MakeBaseTable(env.catalog.Get(env.partsupp));
    for (int64_t k = 0; k < n_ps; ++k) {
      t.AddRow({I(1 + (k % n_part)), I(1 + rng.Range(0, n_supp - 1)),
                I(rng.Range(1, 9999)), D(Money(rng, 1, 1000))});
    }
    db.tables.emplace(env.partsupp, std::move(t));
  }

  // orders
  {
    Table t = MakeBaseTable(env.catalog.Get(env.orders));
    for (int64_t k = 1; k <= n_ord; ++k) {
      t.AddRow({I(k), I(1 + rng.Range(0, n_cust - 1)),
                S(Pick(OrderStatus(), rng)), D(Money(rng, 1000, 400000)),
                I(rng.Range(kMinDate, kMaxDate)), S(Pick(Priorities(), rng)),
                I(0)});
    }
    db.tables.emplace(env.orders, std::move(t));
  }

  // lineitem
  {
    Table t = MakeBaseTable(env.catalog.Get(env.lineitem));
    for (int64_t k = 0; k < n_li; ++k) {
      int64_t ship = rng.Range(kMinDate, kMaxDate);
      int64_t commit = ship + rng.Range(-30, 60);
      int64_t receipt = ship + rng.Range(1, 30);
      t.AddRow({I(1 + (k % n_ord)), I(1 + rng.Range(0, n_part - 1)),
                I(1 + rng.Range(0, n_supp - 1)), I(1 + (k % 7)),
                D(static_cast<double>(rng.Range(1, 50))),
                D(Money(rng, 900, 100000)),
                D(static_cast<double>(rng.Range(0, 10)) / 100.0),
                D(static_cast<double>(rng.Range(0, 8)) / 100.0),
                S(Pick(ReturnFlags(), rng)), S(Pick(LineStatus(), rng)),
                I(ship), I(commit), I(receipt), S(Pick(ShipModes(), rng))});
    }
    db.tables.emplace(env.lineitem, std::move(t));
  }

  return db;
}

}  // namespace mpq

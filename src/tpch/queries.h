// The 22 TPC-H query shapes in the paper's operator algebra.
//
// Each query keeps the standard join graph, predicate structure and
// aggregation shape; vendor SQL features outside the supported algebra
// (IN-lists, correlated subqueries, LIKE, EXISTS, computed expressions) are
// lowered to equivalent select/join/aggregate forms (see DESIGN.md §5).

#ifndef MPQ_TPCH_QUERIES_H_
#define MPQ_TPCH_QUERIES_H_

#include "algebra/plan.h"
#include "common/status.h"
#include "tpch/tpch_schema.h"

namespace mpq {

/// Number of TPC-H queries (22).
int NumTpchQueries();

/// Builds query `q` (1-based) against the environment's catalog. The plan is
/// validated with ids assigned.
Result<PlanPtr> BuildTpchQuery(int q, const TpchEnv& env);

/// A udf-extended analytics query (the paper's Sec 7 observation that udfs
/// amplify delegation savings): lineitem scan + selection + ml-style scoring
/// udf + aggregation. Not part of the 22; used by the udf ablation bench.
Result<PlanPtr> BuildUdfQuery(const TpchEnv& env);

}  // namespace mpq

#endif  // MPQ_TPCH_QUERIES_H_

#include "tpch/tpch_schema.h"

#include <cassert>
#include <cmath>

namespace mpq {

namespace {

double Rows(double per_sf, double sf, double min_rows) {
  return std::max(min_rows, std::round(per_sf * sf));
}

}  // namespace

TpchEnv MakeTpchEnv(double costing_sf, int num_providers) {
  TpchEnv env;
  env.user = *env.subjects.Register("U", SubjectKind::kUser);
  env.auth_cust = *env.subjects.Register("A_cust", SubjectKind::kAuthority);
  env.auth_supp = *env.subjects.Register("A_supp", SubjectKind::kAuthority);
  for (int i = 1; i <= num_providers; ++i) {
    env.providers.push_back(*env.subjects.Register(
        "P" + std::to_string(i), SubjectKind::kProvider));
  }

  using C = std::pair<std::string, DataType>;
  const DataType I = DataType::kInt64;
  const DataType D = DataType::kDouble;
  const DataType S = DataType::kString;
  double sf = costing_sf;

  env.region = *env.catalog.AddRelation(
      "region", {C{"r_regionkey", I}, C{"r_name", S}}, env.auth_supp, 5);
  env.nation = *env.catalog.AddRelation(
      "nation",
      {C{"n_nationkey", I}, C{"n_name", S}, C{"n_regionkey", I}},
      env.auth_supp, 25);
  env.supplier = *env.catalog.AddRelation(
      "supplier",
      {C{"s_suppkey", I}, C{"s_name", S}, C{"s_nationkey", I},
       C{"s_acctbal", D}},
      env.auth_supp, Rows(10000, sf, 10));
  env.customer = *env.catalog.AddRelation(
      "customer",
      {C{"c_custkey", I}, C{"c_name", S}, C{"c_nationkey", I},
       C{"c_acctbal", D}, C{"c_mktsegment", S}},
      env.auth_cust, Rows(150000, sf, 30));
  env.part = *env.catalog.AddRelation(
      "part",
      {C{"p_partkey", I}, C{"p_name", S}, C{"p_type", S}, C{"p_size", I},
       C{"p_brand", S}, C{"p_retailprice", D}, C{"p_container", S}},
      env.auth_supp, Rows(200000, sf, 40));
  env.partsupp = *env.catalog.AddRelation(
      "partsupp",
      {C{"ps_partkey", I}, C{"ps_suppkey", I}, C{"ps_availqty", I},
       C{"ps_supplycost", D}},
      env.auth_supp, Rows(800000, sf, 160));
  env.orders = *env.catalog.AddRelation(
      "orders",
      {C{"o_orderkey", I}, C{"o_custkey", I}, C{"o_orderstatus", S},
       C{"o_totalprice", D}, C{"o_orderdate", I}, C{"o_orderpriority", S},
       C{"o_shippriority", I}},
      env.auth_cust, Rows(1500000, sf, 50));
  // lineitem lives with the supplier/fulfillment authority: the customer
  // relationship (customer, orders) and the fulfillment record (lineitem,
  // supplier, part, ...) are controlled by different organizations, so the
  // order⋈lineitem joins at the heart of most TPC-H queries cross authority
  // boundaries — the multi-provider setting the paper evaluates.
  env.lineitem = *env.catalog.AddRelation(
      "lineitem",
      {C{"l_orderkey", I}, C{"l_partkey", I}, C{"l_suppkey", I},
       C{"l_linenumber", I}, C{"l_quantity", D}, C{"l_extendedprice", D},
       C{"l_discount", D}, C{"l_tax", D}, C{"l_returnflag", S},
       C{"l_linestatus", S}, C{"l_shipdate", I}, C{"l_commitdate", I},
       C{"l_receiptdate", I}, C{"l_shipmode", S}},
      env.auth_supp, Rows(6000000, sf, 200));
  return env;
}

double TpchRows(const TpchEnv& env, RelId rel, double sf) {
  if (rel == env.region) return 5;
  if (rel == env.nation) return 25;
  if (rel == env.supplier) return Rows(10000, sf, 10);
  if (rel == env.customer) return Rows(150000, sf, 30);
  if (rel == env.part) return Rows(200000, sf, 40);
  if (rel == env.partsupp) return Rows(800000, sf, 160);
  if (rel == env.orders) return Rows(1500000, sf, 50);
  if (rel == env.lineitem) return Rows(6000000, sf, 200);
  assert(false && "unknown TPC-H relation");
  return 0;
}

}  // namespace mpq

// TPC-H environment (Sec 7): the 8-table schema distributed between two data
// authorities, a querying user and a set of cloud providers.
//
// Column set is the standard TPC-H schema trimmed to the attributes our
// 22 query shapes reference; dates are day-numbers (int64) so that range
// predicates work under OPE.

#ifndef MPQ_TPCH_TPCH_SCHEMA_H_
#define MPQ_TPCH_TPCH_SCHEMA_H_

#include <vector>

#include "authz/subject.h"
#include "catalog/catalog.h"

namespace mpq {

/// A fully-populated TPC-H scenario environment.
struct TpchEnv {
  Catalog catalog;
  SubjectRegistry subjects;
  SubjectId user = kInvalidSubject;
  SubjectId auth_cust = kInvalidSubject;  ///< Authority 1: customer side.
  SubjectId auth_supp = kInvalidSubject;  ///< Authority 2: supplier side.
  std::vector<SubjectId> providers;

  RelId region = kInvalidRel, nation = kInvalidRel, supplier = kInvalidRel,
        customer = kInvalidRel, part = kInvalidRel, partsupp = kInvalidRel,
        orders = kInvalidRel, lineitem = kInvalidRel;
};

/// Builds the environment. `costing_sf` scales the base-row counts fed to the
/// cost model (1.0 == the paper's 1 GB configuration); `num_providers` cloud
/// providers named P1..Pk are registered.
TpchEnv MakeTpchEnv(double costing_sf = 1.0, int num_providers = 3);

/// Standard TPC-H cardinality at scale factor `sf` for each relation.
double TpchRows(const TpchEnv& env, RelId rel, double sf);

}  // namespace mpq

#endif  // MPQ_TPCH_TPCH_SCHEMA_H_

// Immutable compressed column segments: a versioned, Parquet-style at-rest
// format layered over the same column model as the wire format. One segment
// holds a row range of one table; every column gets a compressed page
// (RLE / frame-of-reference bit-packing for int64, dictionary + bit-packed
// codes for strings, raw pages for doubles and ciphertext blobs) plus a
// footer entry carrying its metadata, page extent, null count, and a
// min/max zone map over the non-null plaintext values. The footer is
// readable without touching any page, so scans consult zone maps first and
// skip whole segments that provably contain no qualifying row; a trailing
// checksum rejects torn or bit-flipped segments before any decode.
//
// Segments serve three roles: the spill format of the byte-budgeted
// out-of-core join/group-by paths, the compressed wire encoding of
// assignee-crossing transfers (bytes-on-wire reflect compressed sizes), and
// the at-rest form of cold TableStore relations (decoded lazily on first
// read).

#ifndef MPQ_STORAGE_SEGMENT_H_
#define MPQ_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/table.h"

namespace mpq {

/// Per-column statistics of one segment, read from the footer without
/// decoding the page. `min`/`max` cover only the non-null rows and are
/// populated only for plaintext typed columns (never for ciphertexts, the
/// kCell fallback, or a double column containing NaN); `has_range` says
/// whether they are meaningful.
struct SegmentZone {
  bool has_range = false;
  Value min;
  Value max;
  uint64_t null_count = 0;
  /// Rows of the segment (duplicated from the header for convenience).
  uint64_t num_rows = 0;
};

/// Encodes `t` as one compressed segment. Deterministic: the same table
/// always produces the same bytes, so segment frames (and their byte
/// counts) are identical at any thread count.
Result<std::string> EncodeSegment(const Table& t);

/// Conservative zone-map test: false only when NO row of the segment can
/// satisfy `op` against the constant `v` under the engine's comparison
/// semantics (EvalCmp: NULLs sort first, numerics compare as double,
/// number-vs-string by type tag). NULL rows are accounted for — they DO
/// match predicates where EvalCmp(op, NULL, v) holds.
bool ZoneMayMatch(const SegmentZone& z, CmpOp op, const Value& v);

/// Parses and validates a segment frame (magic, version, checksum, bounds,
/// enum ranges), exposing footer metadata cheaply; Decode() materializes
/// the table, bit-identical to the encoder's input.
class SegmentReader {
 public:
  /// Validates the frame and parses the footer. Any malformed input —
  /// truncation, bit flips, out-of-range offsets or enums — returns a
  /// Status; no page is touched yet.
  static Result<SegmentReader> Open(std::string bytes);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<ExecColumn>& columns() const { return columns_; }
  const SegmentZone& zone(size_t c) const { return zones_[c]; }
  /// Physical rep column `c` decodes into (what the encoder saw).
  ColumnRep rep(size_t c) const {
    return static_cast<ColumnRep>(entries_[c].rep);
  }
  /// Encoded frame size in bytes (the bytes-on-wire of this segment).
  size_t encoded_size() const { return bytes_.size(); }

  /// Decodes every column page into a table. The result round-trips: for a
  /// table built through the normal append paths,
  /// Decode(EncodeSegment(t)) serializes bit-identically to t.
  Result<Table> Decode() const;

 private:
  struct ColumnEntry {
    ExecColumn meta;
    uint8_t rep = 0;
    bool has_nulls = false;
    uint64_t page_offset = 0;
    uint64_t page_len = 0;
  };

  std::string bytes_;
  uint64_t num_rows_ = 0;
  std::vector<ExecColumn> columns_;
  std::vector<ColumnEntry> entries_;
  std::vector<SegmentZone> zones_;
};

/// A table published as a sequence of compressed segments (row-range
/// slices in order). Readers decode lazily: zone-map scans decode only the
/// segments that may hold qualifying rows; Materialize() decodes the whole
/// table once and caches it.
class SegmentedTable {
 public:
  /// Slices `t` into ceil(rows / rows_per_segment) segments (at least one,
  /// so the schema survives an empty table). `rows_per_segment` of zero
  /// means one segment.
  static Result<SegmentedTable> FromTable(const Table& t,
                                          size_t rows_per_segment);

  size_t num_segments() const { return segments_.size(); }
  const SegmentReader& segment(size_t i) const { return segments_[i]; }
  const std::vector<ExecColumn>& columns() const { return columns_; }
  size_t total_rows() const { return total_rows_; }

  /// Sum of encoded segment frame sizes.
  uint64_t encoded_bytes() const;

  /// Decodes and concatenates every segment (fresh table per call).
  Result<Table> Decode() const;

  /// Decode(), memoized: the first caller pays the decode, later callers
  /// share the cached table. Thread-safe.
  Result<const Table*> Materialize() const;

 private:
  struct Memo {
    std::mutex mu;
    std::unique_ptr<Table> table;
  };

  std::vector<ExecColumn> columns_;
  std::vector<SegmentReader> segments_;
  size_t total_rows_ = 0;
  std::shared_ptr<Memo> memo_ = std::make_shared<Memo>();
};

}  // namespace mpq

#endif  // MPQ_STORAGE_SEGMENT_H_

#include "storage/segment.h"

#include <algorithm>
#include <cstring>

#include "common/flat_hash.h"
#include "exec/column.h"

namespace mpq {

namespace {

constexpr char kMagic[4] = {'M', 'P', 'Q', 'S'};
constexpr uint8_t kVersion = 1;
/// Header: magic + version + u64 rows + u32 cols.
constexpr size_t kHeaderSize = 4 + 1 + 8 + 4;
/// Trailer: u64 footer offset + u64 checksum.
constexpr size_t kTrailerSize = 16;
/// Row-count sanity cap: a claimed count past this is corrupt, rejected
/// before any row-count-sized allocation (compressed pages legitimately
/// cost far less than a byte per row, so the wire format's
/// rows-vs-buffer-size bound does not apply here).
constexpr uint64_t kMaxSegmentRows = 1ull << 31;

// Int64 page kinds.
constexpr uint8_t kPageRaw = 0;
constexpr uint8_t kPageRle = 1;
constexpr uint8_t kPageFor = 2;  // frame-of-reference bit-packing

// String page encodings.
constexpr uint8_t kStringPlain = 0;
constexpr uint8_t kStringDict = 1;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutEnc(std::string* out, const EncValue& ev) {
  PutU8(out, static_cast<uint8_t>(ev.scheme));
  PutU64(out, ev.key_id);
  PutU64(out, static_cast<uint64_t>(ev.aux));
  PutBytes(out, ev.blob);
}

/// Bounds-checked reader over a byte range of the frame.
struct Reader {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool Take(void* dst, size_t n) {
    if (n > size - pos) return false;  // pos <= size always holds
    std::memcpy(dst, data + pos, n);
    pos += n;
    return true;
  }
  bool U8(uint8_t* v) { return Take(v, 1); }
  bool U32(uint32_t* v) { return Take(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Take(v, sizeof(*v)); }
  bool Bytes(std::string* s) {
    uint32_t n;
    if (!U32(&n) || n > size - pos) return false;
    s->assign(data + pos, n);
    pos += n;
    return true;
  }
  bool Enc(EncValue* ev) {
    uint8_t scheme;
    uint64_t aux;
    if (!U8(&scheme) || scheme > static_cast<uint8_t>(EncScheme::kPaillier) ||
        !U64(&ev->key_id) || !U64(&aux) || !Bytes(&ev->blob)) {
      return false;
    }
    ev->scheme = static_cast<EncScheme>(scheme);
    ev->aux = static_cast<int64_t>(aux);
    return true;
  }
};

Status Corrupt() {
  return Status::InvalidArgument("corrupt segment");
}

/// LSB-first bit packing: value i occupies stream bits
/// [i*width, (i+1)*width); stream bit b lives in byte b/8, bit b%8.
void PackBits(const uint64_t* vals, size_t n, uint8_t width,
              std::string* out) {
  if (width == 0) return;
  size_t nbytes = (n * width + 7) / 8;
  size_t start = out->size();
  out->append(nbytes, '\0');
  auto* bytes = reinterpret_cast<uint8_t*>(&(*out)[start]);
  size_t bit = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = width == 64 ? vals[i] : (vals[i] & ((1ull << width) - 1));
    size_t b = bit;
    while (v != 0 || b < bit + width) {
      if (b >= bit + width) break;
      bytes[b / 8] |= static_cast<uint8_t>((v & 1u) << (b % 8));
      v >>= 1;
      ++b;
    }
    bit += width;
  }
}

/// Inverse of PackBits over `n` values; the caller has bounds-checked that
/// `nbytes` bytes are available.
void UnpackBits(const uint8_t* bytes, size_t n, uint8_t width,
                uint64_t* out) {
  if (width == 0) {
    std::fill(out, out + n, 0);
    return;
  }
  size_t bit = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    for (uint8_t k = 0; k < width; ++k, ++bit) {
      v |= static_cast<uint64_t>((bytes[bit / 8] >> (bit % 8)) & 1u) << k;
    }
    out[i] = v;
  }
}

uint8_t BitsFor(uint64_t v) {
  uint8_t bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// Int64 page: the cheapest of raw, run-length, and frame-of-reference
/// bit-packing — a deterministic function of the values alone (ties prefer
/// the lower page kind).
void EncodeInt64Page(const std::vector<int64_t>& v, std::string* out) {
  size_t n = v.size();
  uint64_t raw_cost = 1 + 8 * static_cast<uint64_t>(n);

  size_t runs = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || v[i] != v[i - 1]) ++runs;
  }
  uint64_t rle_cost = 1 + 4 + 12 * static_cast<uint64_t>(runs);

  int64_t mn = 0, mx = 0;
  if (n > 0) {
    mn = *std::min_element(v.begin(), v.end());
    mx = *std::max_element(v.begin(), v.end());
  }
  uint64_t max_delta =
      static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
  uint8_t bw = BitsFor(max_delta);
  uint64_t for_cost =
      1 + 8 + 1 + (static_cast<uint64_t>(n) * bw + 7) / 8;

  if (n > 0 && rle_cost < raw_cost && rle_cost <= for_cost) {
    PutU8(out, kPageRle);
    PutU32(out, static_cast<uint32_t>(runs));
    for (size_t i = 0; i < n;) {
      size_t j = i + 1;
      while (j < n && v[j] == v[i]) ++j;
      PutU64(out, static_cast<uint64_t>(v[i]));
      PutU32(out, static_cast<uint32_t>(j - i));
      i = j;
    }
    return;
  }
  if (n > 0 && for_cost < raw_cost) {
    PutU8(out, kPageFor);
    PutU64(out, static_cast<uint64_t>(mn));
    PutU8(out, bw);
    std::vector<uint64_t> deltas(n);
    for (size_t i = 0; i < n; ++i) {
      deltas[i] = static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(mn);
    }
    PackBits(deltas.data(), n, bw, out);
    return;
  }
  PutU8(out, kPageRaw);
  out->append(reinterpret_cast<const char*>(v.data()), 8 * n);
}

Status DecodeInt64Page(Reader* r, uint64_t num_rows,
                       std::vector<int64_t>* out) {
  uint8_t kind;
  if (!r->U8(&kind)) return Corrupt();
  out->resize(num_rows);
  switch (kind) {
    case kPageRaw:
      if (!r->Take(out->data(), 8 * num_rows)) return Corrupt();
      return Status::OK();
    case kPageRle: {
      uint32_t runs;
      if (!r->U32(&runs)) return Corrupt();
      uint64_t i = 0;
      for (uint32_t k = 0; k < runs; ++k) {
        uint64_t value;
        uint32_t count;
        if (!r->U64(&value) || !r->U32(&count) || count == 0 ||
            count > num_rows - i) {
          return Corrupt();
        }
        std::fill(out->begin() + static_cast<long>(i),
                  out->begin() + static_cast<long>(i + count),
                  static_cast<int64_t>(value));
        i += count;
      }
      if (i != num_rows) return Corrupt();
      return Status::OK();
    }
    case kPageFor: {
      uint64_t base;
      uint8_t bw;
      if (!r->U64(&base) || !r->U8(&bw) || bw > 64) return Corrupt();
      size_t nbytes = (num_rows * bw + 7) / 8;
      if (nbytes > r->size - r->pos) return Corrupt();
      std::vector<uint64_t> deltas(num_rows);
      UnpackBits(reinterpret_cast<const uint8_t*>(r->data + r->pos),
                 num_rows, bw, deltas.data());
      r->pos += nbytes;
      for (uint64_t i = 0; i < num_rows; ++i) {
        (*out)[i] = static_cast<int64_t>(base + deltas[i]);
      }
      return Status::OK();
    }
    default:
      return Corrupt();
  }
}

/// String page: dictionary + bit-packed codes when strictly smaller than
/// the plain length-prefixed payload (deterministic, like the wire format's
/// dictionary decision).
Status EncodeStringPage(const ColumnData& d, std::string* out) {
  size_t n = d.size();
  ColumnDict dict(&d);
  std::vector<uint32_t> codes(n);
  MPQ_RETURN_NOT_OK(dict.EncodeRange(0, n, codes.data()));

  uint64_t plain_cost = 0;
  for (const std::string& s : d.str()) plain_cost += 4 + s.size();
  uint8_t code_bits =
      dict.size() == 0 ? 0 : BitsFor(static_cast<uint64_t>(dict.size() - 1));
  uint64_t dict_cost = 4 + 1 + (static_cast<uint64_t>(n) * code_bits + 7) / 8;
  for (uint32_t k = 0; k < dict.size(); ++k) {
    dict_cost += 4 + d.str()[dict.RepRow(k)].size();
  }

  if (dict_cost < plain_cost) {
    PutU8(out, kStringDict);
    PutU32(out, static_cast<uint32_t>(dict.size()));
    for (uint32_t k = 0; k < dict.size(); ++k) {
      PutBytes(out, d.str()[dict.RepRow(k)]);
    }
    PutU8(out, code_bits);
    std::vector<uint64_t> wide(codes.begin(), codes.end());
    PackBits(wide.data(), n, code_bits, out);
  } else {
    PutU8(out, kStringPlain);
    for (const std::string& s : d.str()) PutBytes(out, s);
  }
  return Status::OK();
}

/// Null mask bit-packing (1 = NULL), (rows + 7) / 8 bytes.
void EncodeNullMask(const ColumnData& d, std::string* out) {
  size_t n = d.size();
  size_t start = out->size();
  out->append((n + 7) / 8, '\0');
  auto* bytes = reinterpret_cast<uint8_t*>(&(*out)[start]);
  for (size_t i = 0; i < n; ++i) {
    if (d.IsNull(i)) bytes[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
}

bool CellIsNull(const Cell& c) {
  return c.is_plain() && c.plain().is_null();
}

/// Footer statistics for one column: null count always; min/max only over
/// plaintext typed reps with no NaN (zone maps must be a total-order bound
/// under Value::Compare, and NaN breaks that order).
SegmentZone ComputeZone(const ExecColumn& col, const ColumnData& d) {
  SegmentZone z;
  z.num_rows = d.size();
  if (d.rep() == ColumnRep::kCell) {
    for (const Cell& c : d.cells()) {
      if (CellIsNull(c)) ++z.null_count;
    }
    return z;
  }
  for (size_t i = 0; i < d.size(); ++i) {
    if (d.IsNull(i)) ++z.null_count;
  }
  if (col.encrypted || z.null_count == d.size()) return z;
  switch (d.rep()) {
    case ColumnRep::kInt64: {
      int64_t mn = 0, mx = 0;
      bool first = true;
      for (size_t i = 0; i < d.size(); ++i) {
        if (d.IsNull(i)) continue;
        int64_t v = d.i64()[i];
        if (first || v < mn) mn = v;
        if (first || v > mx) mx = v;
        first = false;
      }
      z.min = Value(mn);
      z.max = Value(mx);
      z.has_range = true;
      return z;
    }
    case ColumnRep::kDouble: {
      double mn = 0, mx = 0;
      bool first = true;
      for (size_t i = 0; i < d.size(); ++i) {
        if (d.IsNull(i)) continue;
        double v = d.f64()[i];
        if (v != v) return z;  // NaN: no usable range
        if (first || v < mn) mn = v;
        if (first || v > mx) mx = v;
        first = false;
      }
      z.min = Value(mn);
      z.max = Value(mx);
      z.has_range = true;
      return z;
    }
    case ColumnRep::kString: {
      const std::string* mn = nullptr;
      const std::string* mx = nullptr;
      for (size_t i = 0; i < d.size(); ++i) {
        if (d.IsNull(i)) continue;
        const std::string& v = d.str()[i];
        if (mn == nullptr || v < *mn) mn = &v;
        if (mx == nullptr || v > *mx) mx = &v;
      }
      z.min = Value(*mn);
      z.max = Value(*mx);
      z.has_range = true;
      return z;
    }
    default:
      return z;
  }
}

}  // namespace

Result<std::string> EncodeSegment(const Table& t) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU8(&out, kVersion);
  PutU64(&out, t.num_rows());
  PutU32(&out, static_cast<uint32_t>(t.num_columns()));

  struct Entry {
    uint64_t page_offset;
    uint64_t page_len;
    SegmentZone zone;
  };
  std::vector<Entry> entries;
  entries.reserve(t.num_columns());

  for (size_t c = 0; c < t.num_columns(); ++c) {
    const ColumnData& d = t.col(c);
    Entry e;
    e.page_offset = out.size();
    e.zone = ComputeZone(t.columns()[c], d);
    if (d.has_nulls()) EncodeNullMask(d, &out);
    switch (d.rep()) {
      case ColumnRep::kInt64:
        EncodeInt64Page(d.i64(), &out);
        break;
      case ColumnRep::kDouble:
        out.append(reinterpret_cast<const char*>(d.f64().data()),
                   8 * d.size());
        break;
      case ColumnRep::kString:
        MPQ_RETURN_NOT_OK(EncodeStringPage(d, &out));
        break;
      case ColumnRep::kEnc:
        for (const EncValue& ev : d.enc()) PutEnc(&out, ev);
        break;
      case ColumnRep::kCell:
        for (const Cell& cell : d.cells()) {
          PutU8(&out, cell.is_encrypted() ? 1 : 0);
          if (cell.is_encrypted()) {
            PutEnc(&out, cell.enc());
          } else {
            PutBytes(&out, cell.plain().Serialize());
          }
        }
        break;
    }
    e.page_len = out.size() - e.page_offset;
    entries.push_back(std::move(e));
  }

  uint64_t footer_offset = out.size();
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const ExecColumn& col = t.columns()[c];
    const ColumnData& d = t.col(c);
    const Entry& e = entries[c];
    PutU32(&out, col.attr);
    PutBytes(&out, col.name);
    PutU8(&out, static_cast<uint8_t>(col.type));
    PutU8(&out, col.encrypted ? 1 : 0);
    PutU8(&out, static_cast<uint8_t>(col.scheme));
    PutU64(&out, col.key_id);
    PutU8(&out, col.hom_avg ? 1 : 0);
    PutU8(&out, static_cast<uint8_t>(d.rep()));
    PutU8(&out, d.has_nulls() ? 1 : 0);
    PutU64(&out, e.page_offset);
    PutU64(&out, e.page_len);
    PutU64(&out, e.zone.null_count);
    PutU8(&out, e.zone.has_range ? 1 : 0);
    if (e.zone.has_range) {
      PutBytes(&out, e.zone.min.Serialize());
      PutBytes(&out, e.zone.max.Serialize());
    }
  }
  PutU64(&out, footer_offset);
  PutU64(&out, HashBytes(out.data(), out.size()));
  return out;
}

bool ZoneMayMatch(const SegmentZone& z, CmpOp op, const Value& v) {
  // NULL rows satisfy exactly the predicates EvalCmp(op, NULL, v) does
  // (NULLs sort before every non-null value in the engine's total order).
  if (z.null_count > 0 && EvalCmp(op, Value::Null(), v)) return true;
  if (z.null_count >= z.num_rows) return false;  // no non-null rows left
  if (!z.has_range) return true;                 // no stats: assume a match
  switch (op) {
    case CmpOp::kEq:
      return EvalCmp(CmpOp::kLe, z.min, v) && EvalCmp(CmpOp::kGe, z.max, v);
    case CmpOp::kNe:
      // Only an all-equal segment whose single value is v has no kNe row.
      return !(EvalCmp(CmpOp::kEq, z.min, v) &&
               EvalCmp(CmpOp::kEq, z.max, v));
    case CmpOp::kLt:
      return EvalCmp(CmpOp::kLt, z.min, v);
    case CmpOp::kLe:
      return EvalCmp(CmpOp::kLe, z.min, v);
    case CmpOp::kGt:
      return EvalCmp(CmpOp::kGt, z.max, v);
    case CmpOp::kGe:
      return EvalCmp(CmpOp::kGe, z.max, v);
  }
  return true;
}

Result<SegmentReader> SegmentReader::Open(std::string bytes) {
  SegmentReader sr;
  sr.bytes_ = std::move(bytes);
  const std::string& b = sr.bytes_;
  if (b.size() < kHeaderSize + kTrailerSize) return Corrupt();

  uint64_t stored_sum;
  std::memcpy(&stored_sum, b.data() + b.size() - 8, 8);
  if (HashBytes(b.data(), b.size() - 8) != stored_sum) return Corrupt();

  Reader r{b.data(), b.size() - kTrailerSize};
  char magic[4];
  uint8_t version;
  uint32_t num_cols;
  if (!r.Take(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 || !r.U8(&version) ||
      version != kVersion || !r.U64(&sr.num_rows_) || !r.U32(&num_cols)) {
    return Corrupt();
  }
  if (sr.num_rows_ > kMaxSegmentRows) return Corrupt();

  uint64_t footer_offset;
  std::memcpy(&footer_offset, b.data() + b.size() - 16, 8);
  if (footer_offset < kHeaderSize ||
      footer_offset > b.size() - kTrailerSize) {
    return Corrupt();
  }

  Reader f{b.data(), b.size() - kTrailerSize, footer_offset};
  for (uint32_t c = 0; c < num_cols; ++c) {
    ColumnEntry e;
    uint8_t type, encrypted, scheme, hom_avg, has_nulls, has_range;
    uint64_t null_count;
    if (!f.U32(&e.meta.attr) || !f.Bytes(&e.meta.name) || !f.U8(&type) ||
        type > static_cast<uint8_t>(DataType::kString) || !f.U8(&encrypted) ||
        !f.U8(&scheme) ||
        scheme > static_cast<uint8_t>(EncScheme::kPaillier) ||
        !f.U64(&e.meta.key_id) || !f.U8(&hom_avg) || !f.U8(&e.rep) ||
        e.rep > static_cast<uint8_t>(ColumnRep::kCell) || !f.U8(&has_nulls) ||
        !f.U64(&e.page_offset) || !f.U64(&e.page_len) ||
        !f.U64(&null_count) || !f.U8(&has_range)) {
      return Corrupt();
    }
    e.meta.type = static_cast<DataType>(type);
    e.meta.encrypted = encrypted != 0;
    e.meta.scheme = static_cast<EncScheme>(scheme);
    e.meta.hom_avg = hom_avg != 0;
    e.has_nulls = has_nulls != 0;
    if (e.page_offset < kHeaderSize || e.page_len > footer_offset ||
        e.page_offset > footer_offset - e.page_len) {
      return Corrupt();
    }
    if (null_count > sr.num_rows_) return Corrupt();
    SegmentZone z;
    z.null_count = null_count;
    z.num_rows = sr.num_rows_;
    if (has_range != 0) {
      std::string mn, mx;
      if (!f.Bytes(&mn) || !f.Bytes(&mx)) return Corrupt();
      Result<Value> vmin = Value::Deserialize(mn);
      Result<Value> vmax = Value::Deserialize(mx);
      if (!vmin.ok() || !vmax.ok()) return Corrupt();
      z.min = std::move(*vmin);
      z.max = std::move(*vmax);
      z.has_range = true;
    }
    sr.columns_.push_back(e.meta);
    sr.entries_.push_back(std::move(e));
    sr.zones_.push_back(std::move(z));
  }
  if (f.pos != b.size() - kTrailerSize) return Corrupt();
  return sr;
}

Result<Table> SegmentReader::Decode() const {
  Table t;
  uint64_t num_rows = num_rows_;
  for (size_t c = 0; c < entries_.size(); ++c) {
    const ColumnEntry& e = entries_[c];
    Reader r{bytes_.data() + e.page_offset, static_cast<size_t>(e.page_len)};
    std::vector<uint8_t> nulls;
    if (e.has_nulls) {
      size_t nbytes = (num_rows + 7) / 8;
      if (nbytes > r.size - r.pos) return Corrupt();
      nulls.resize(num_rows);
      const auto* mb = reinterpret_cast<const uint8_t*>(r.data + r.pos);
      for (uint64_t i = 0; i < num_rows; ++i) {
        nulls[i] = (mb[i / 8] >> (i % 8)) & 1u;
      }
      r.pos += nbytes;
    }
    auto row_null = [&](uint64_t i) { return e.has_nulls && nulls[i] != 0; };
    ColumnData d(static_cast<ColumnRep>(e.rep));
    d.Reserve(num_rows);
    switch (static_cast<ColumnRep>(e.rep)) {
      case ColumnRep::kInt64: {
        std::vector<int64_t> vals;
        MPQ_RETURN_NOT_OK(DecodeInt64Page(&r, num_rows, &vals));
        for (uint64_t i = 0; i < num_rows; ++i) {
          if (row_null(i)) {
            d.AppendNull();
          } else {
            d.AppendValue(Value(vals[i]));
          }
        }
        break;
      }
      case ColumnRep::kDouble:
        for (uint64_t i = 0; i < num_rows; ++i) {
          double v;
          if (!r.Take(&v, sizeof(v))) return Corrupt();
          if (row_null(i)) {
            d.AppendNull();
          } else {
            d.AppendValue(Value(v));
          }
        }
        break;
      case ColumnRep::kString: {
        uint8_t encoding;
        if (!r.U8(&encoding)) return Corrupt();
        if (encoding == kStringDict) {
          uint32_t num_values;
          if (!r.U32(&num_values) || num_values > e.page_len) return Corrupt();
          std::vector<std::string> values(num_values);
          for (uint32_t k = 0; k < num_values; ++k) {
            if (!r.Bytes(&values[k])) return Corrupt();
          }
          uint8_t code_bits;
          if (!r.U8(&code_bits) || code_bits > 32) return Corrupt();
          size_t nbytes = (num_rows * code_bits + 7) / 8;
          if (nbytes > r.size - r.pos) return Corrupt();
          std::vector<uint64_t> codes(num_rows);
          UnpackBits(reinterpret_cast<const uint8_t*>(r.data + r.pos),
                     num_rows, code_bits, codes.data());
          r.pos += nbytes;
          for (uint64_t i = 0; i < num_rows; ++i) {
            if (row_null(i)) {
              d.AppendNull();  // a null row's code is padding
            } else if (codes[i] >= num_values) {
              return Corrupt();
            } else {
              d.AppendValue(Value(values[codes[i]]));
            }
          }
        } else if (encoding == kStringPlain) {
          for (uint64_t i = 0; i < num_rows; ++i) {
            std::string s;
            if (!r.Bytes(&s)) return Corrupt();
            if (row_null(i)) {
              d.AppendNull();
            } else {
              d.AppendValue(Value(std::move(s)));
            }
          }
        } else {
          return Corrupt();
        }
        break;
      }
      case ColumnRep::kEnc:
        for (uint64_t i = 0; i < num_rows; ++i) {
          EncValue ev;
          if (!r.Enc(&ev)) return Corrupt();
          if (row_null(i)) {
            d.AppendNull();
          } else {
            d.Append(Cell(std::move(ev)));
          }
        }
        break;
      case ColumnRep::kCell:
        for (uint64_t i = 0; i < num_rows; ++i) {
          uint8_t is_enc;
          if (!r.U8(&is_enc)) return Corrupt();
          if (is_enc) {
            EncValue ev;
            if (!r.Enc(&ev)) return Corrupt();
            d.Append(Cell(std::move(ev)));
          } else {
            std::string s;
            if (!r.Bytes(&s)) return Corrupt();
            MPQ_ASSIGN_OR_RETURN(Value v, Value::Deserialize(s));
            d.Append(Cell(std::move(v)));
          }
        }
        break;
      default:
        return Corrupt();
    }
    if (r.pos != r.size || d.size() != num_rows) return Corrupt();
    t.AddColumn(columns_[c], std::move(d));
  }
  if (entries_.empty()) t.num_rows_ = num_rows;
  return t;
}

Result<SegmentedTable> SegmentedTable::FromTable(const Table& t,
                                                 size_t rows_per_segment) {
  if (rows_per_segment == 0) rows_per_segment = std::max<size_t>(t.num_rows(), 1);
  SegmentedTable st;
  st.columns_ = t.columns();
  st.total_rows_ = t.num_rows();
  size_t num_segments =
      std::max<size_t>(1, (t.num_rows() + rows_per_segment - 1) /
                              rows_per_segment);
  for (size_t s = 0; s < num_segments; ++s) {
    size_t begin = s * rows_per_segment;
    size_t end = std::min(begin + rows_per_segment, t.num_rows());
    Table slice;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      ColumnData part(t.col(c).rep());
      part.AppendRange(t.col(c), begin, end);
      slice.AddColumn(t.columns()[c], std::move(part));
    }
    if (t.num_columns() == 0) slice.num_rows_ = end - begin;
    MPQ_ASSIGN_OR_RETURN(std::string bytes, EncodeSegment(slice));
    MPQ_ASSIGN_OR_RETURN(SegmentReader sr, SegmentReader::Open(std::move(bytes)));
    st.segments_.push_back(std::move(sr));
  }
  return st;
}

uint64_t SegmentedTable::encoded_bytes() const {
  uint64_t total = 0;
  for (const SegmentReader& s : segments_) total += s.encoded_size();
  return total;
}

Result<Table> SegmentedTable::Decode() const {
  Table out;
  bool first = true;
  for (const SegmentReader& s : segments_) {
    MPQ_ASSIGN_OR_RETURN(Table part, s.Decode());
    if (first) {
      out = std::move(part);
      first = false;
      continue;
    }
    for (size_t c = 0; c < out.num_columns(); ++c) {
      out.col_mut(c).MoveAppend(std::move(part.col_mut(c)));
    }
    out.num_rows_ += part.num_rows();
  }
  return out;
}

Result<const Table*> SegmentedTable::Materialize() const {
  std::lock_guard<std::mutex> lock(memo_->mu);
  if (memo_->table == nullptr) {
    MPQ_ASSIGN_OR_RETURN(Table t, Decode());
    memo_->table = std::make_unique<Table>(std::move(t));
  }
  return memo_->table.get();
}

}  // namespace mpq

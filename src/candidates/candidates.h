// Assignment candidates (Def 5.3): for every operation of a query plan, the
// set of subjects that can be made authorized assignees by inserting suitable
// encryption/decryption operations (Thm 5.2).
//
// Candidates are computed in one post-order visit (Sec 6, step 1) over a
// "minimum-visibility cascade": each node's result profile is derived
// assuming its operands are the minimum required views of its children, so
// that encrypted execution possibilities propagate upward.

#ifndef MPQ_CANDIDATES_CANDIDATES_H_
#define MPQ_CANDIDATES_CANDIDATES_H_

#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "authz/policy.h"
#include "candidates/min_view.h"
#include "common/status.h"

namespace mpq {

/// Bitset over SubjectIds (same dense-id representation as AttrSet).
using SubjectSet = AttrSet;

/// Per-node candidate computation output.
struct NodeCandidates {
  /// Result profile assuming operands are minimum required views.
  RelationProfile cascade_profile;
  /// Minimum required view over each child, in child order.
  std::vector<RelationProfile> min_views;
  /// Candidate subjects (Def 5.3). For leaves: the owning data authority
  /// (leaves stay with their authority and are not assignable).
  SubjectSet candidates;
};

/// Candidate sets Λ for a whole plan, keyed by node id.
struct CandidatePlan {
  std::unordered_map<int, NodeCandidates> nodes;

  const NodeCandidates& at(int node_id) const { return nodes.at(node_id); }
};

/// Computes Λ for `root` (ids must be assigned). Fails when some operation's
/// plaintext requirements are internally inconsistent (e.g. a comparison pair
/// split across plaintext/encrypted in the minimum view) or when some
/// operation has an empty candidate set.
///
/// `require_nonempty`: when true (default), an operation with no candidate is
/// an error (the query cannot be executed under the policy); when false the
/// computation completes and the caller inspects the empty sets.
///
/// `excluded`: subjects that must not appear in any candidate set — the
/// failover machinery passes the providers the network marked down, so the
/// alternative assignment routes around them. Excluding a data authority
/// that owns a queried relation is kUnavailable (its leaf cannot move).
Result<CandidatePlan> ComputeCandidates(const PlanNode* root,
                                        const Policy& policy,
                                        bool require_nonempty = true,
                                        const SubjectSet* excluded = nullptr);

/// Verifies Theorem 5.1 on a computed candidate plan: for every non-leaf node
/// n whose children's visible plaintext is implicit in n's cascade profile,
/// Λ(ancestor) ⊆ Λ(n) for all ancestors. Returns the first violation.
Status CheckCandidateMonotonicity(const PlanNode* root,
                                  const CandidatePlan& cp);

}  // namespace mpq

#endif  // MPQ_CANDIDATES_CANDIDATES_H_

#include "candidates/min_view.h"

namespace mpq {

RelationProfile MinRequiredView(const RelationProfile& operand,
                                const AttrSet& plaintext_needed) {
  RelationProfile out = operand;
  AttrSet visible = operand.Visible();
  out.vp = visible.Intersect(plaintext_needed);
  out.ve = visible.Difference(plaintext_needed);
  return out;
}

AttrSet PlaintextNeededFromChild(const PlanNode* op,
                                 const AttrSet& child_visible) {
  AttrSet needed = op->needs_plaintext;
  if (op->kind == OpKind::kEncrypt) needed.InsertAll(op->attrs);
  return needed.Intersect(child_visible);
}

}  // namespace mpq

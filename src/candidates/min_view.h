// Minimum required views (Def 5.2): the profile of an operand in which every
// visible attribute not required in plaintext by the consuming operation is
// encrypted.

#ifndef MPQ_CANDIDATES_MIN_VIEW_H_
#define MPQ_CANDIDATES_MIN_VIEW_H_

#include "algebra/plan.h"
#include "common/attr_set.h"
#include "profile/profile.h"

namespace mpq {

/// Profile of decrypt(Ap, encrypt(Rvp \ Ap, R)) given R's profile:
/// visible attributes in `plaintext_needed` become plaintext, all other
/// visible attributes become encrypted; implicit attributes and equivalence
/// sets are untouched.
RelationProfile MinRequiredView(const RelationProfile& operand,
                                const AttrSet& plaintext_needed);

/// The attribute set Ap that operation `op` requires in plaintext from child
/// `child_visible` (the child's visible attributes): the operation's
/// `needs_plaintext` requirement, plus — for encryption operators — the
/// attributes being encrypted (one can only encrypt values one can read).
AttrSet PlaintextNeededFromChild(const PlanNode* op,
                                 const AttrSet& child_visible);

}  // namespace mpq

#endif  // MPQ_CANDIDATES_MIN_VIEW_H_

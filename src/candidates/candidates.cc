#include "candidates/candidates.h"

#include "common/str_util.h"
#include "profile/propagate.h"

namespace mpq {

Result<CandidatePlan> ComputeCandidates(const PlanNode* root,
                                        const Policy& policy,
                                        bool require_nonempty,
                                        const SubjectSet* excluded) {
  const Catalog& catalog = policy.catalog();
  const SubjectRegistry& subjects = policy.subjects();
  CandidatePlan cp;

  // A leaf executes at the relation's owner, unconditionally — an excluded
  // (down) authority therefore makes the query unavailable, not reroutable.
  auto check_authority_up = [&](const RelationDef& rel) -> Status {
    if (excluded != nullptr && excluded->Contains(rel.owner)) {
      return Status::Unavailable(StrFormat(
          "data authority of relation %s is down; its leaf cannot be "
          "reassigned",
          rel.name.c_str()));
    }
    return Status::OK();
  };

  for (const PlanNode* n : PostOrder(root)) {
    NodeCandidates nc;
    if (n->is_leaf()) {
      const RelationDef& rel = catalog.Get(n->rel);
      MPQ_RETURN_NOT_OK(check_authority_up(rel));
      nc.cascade_profile = RelationProfile::ForBase(rel.schema.Attrs());
      nc.candidates.Insert(rel.owner);
      cp.nodes.emplace(n->id, std::move(nc));
      continue;
    }

    // Paper convention (Sec 1): a leaf is "the projection of a source
    // relation". A projection directly over a base relation is part of the
    // leaf box — it executes at the data authority, never leaves it, and is
    // not an assignable operation (Fig 3/6 attach no candidates to leaves).
    if (n->kind == OpKind::kProject && n->child(0)->kind == OpKind::kBase) {
      const RelationDef& rel = catalog.Get(n->child(0)->rel);
      MPQ_RETURN_NOT_OK(check_authority_up(rel));
      nc.min_views.push_back(RelationProfile::ForBase(rel.schema.Attrs()));
      nc.cascade_profile = RelationProfile::ForBase(n->attrs);
      nc.candidates.Insert(rel.owner);
      cp.nodes.emplace(n->id, std::move(nc));
      continue;
    }

    // Minimum required views over the children (Def 5.2).
    for (size_t i = 0; i < n->num_children(); ++i) {
      const NodeCandidates& child_nc = cp.nodes.at(n->child(i)->id);
      AttrSet ap =
          PlaintextNeededFromChild(n, child_nc.cascade_profile.Visible());
      nc.min_views.push_back(MinRequiredView(child_nc.cascade_profile, ap));
    }

    // Result profile assuming the minimum required views as operands.
    static const RelationProfile kEmpty;
    const RelationProfile& l =
        nc.min_views.size() > 0 ? nc.min_views[0] : kEmpty;
    const RelationProfile& r =
        nc.min_views.size() > 1 ? nc.min_views[1] : kEmpty;
    MPQ_ASSIGN_OR_RETURN(nc.cascade_profile,
                         PropagateProfile(n, l, r, catalog, {.strict = true}));

    // Def 5.3: a subject is a candidate iff it is authorized for every
    // minimum required view and for the result (and is not excluded as
    // down).
    for (const Subject& s : subjects.subjects()) {
      if (excluded != nullptr && excluded->Contains(s.id)) continue;
      bool ok = true;
      for (const RelationProfile& mv : nc.min_views) {
        if (!policy.IsAuthorized(s.id, mv)) {
          ok = false;
          break;
        }
      }
      if (ok && policy.IsAuthorized(s.id, nc.cascade_profile)) {
        nc.candidates.Insert(s.id);
      }
    }

    if (require_nonempty && nc.candidates.empty()) {
      return Status::Unauthorized(StrFormat(
          "no subject is a candidate for node %d (%s); the query is not "
          "executable under the current policy",
          n->id, OpKindName(n->kind)));
    }
    cp.nodes.emplace(n->id, std::move(nc));
  }
  return cp;
}

namespace {

Status CheckDescendants(const PlanNode* anc, const PlanNode* sub,
                        const CandidatePlan& cp) {
  for (const auto& c : sub->children) {
    const PlanNode* child = c.get();
    if (!child->is_leaf()) {
      const NodeCandidates& child_nc = cp.at(child->id);
      // Theorem 5.1 precondition on the child node: the visible plaintext of
      // its children is contained in its implicit attributes (the operation
      // either runs on encrypted attributes or leaves an implicit trace).
      AttrSet child_children_vp;
      for (size_t i = 0; i < child->num_children(); ++i) {
        child_children_vp.InsertAll(child_nc.min_views[i].vp);
      }
      if (child_children_vp.IsSubsetOf(child_nc.cascade_profile.ip)) {
        const SubjectSet& anc_set = cp.at(anc->id).candidates;
        const SubjectSet& child_set = child_nc.candidates;
        if (!anc_set.IsSubsetOf(child_set)) {
          return Status::Internal(StrFormat(
              "Theorem 5.1 violated: Λ(node %d) ⊄ Λ(node %d)", anc->id,
              child->id));
        }
      }
    }
    MPQ_RETURN_NOT_OK(CheckDescendants(anc, child, cp));
  }
  return Status::OK();
}

}  // namespace

Status CheckCandidateMonotonicity(const PlanNode* root,
                                  const CandidatePlan& cp) {
  for (const PlanNode* n : PostOrder(root)) {
    if (n->is_leaf()) continue;
    MPQ_RETURN_NOT_OK(CheckDescendants(n, n, cp));
  }
  return Status::OK();
}

}  // namespace mpq

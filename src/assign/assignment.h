// Assignment of operations to candidates (Sec 6, step 2): a dynamic-
// programming optimizer minimizing economic cost over the candidate sets Λ,
// plus an exhaustive optimizer for cross-checking and exact costing of
// extended plans.

#ifndef MPQ_ASSIGN_ASSIGNMENT_H_
#define MPQ_ASSIGN_ASSIGNMENT_H_

#include <optional>

#include "assign/cost_model.h"
#include "candidates/candidates.h"
#include "extend/extend.h"

namespace mpq {

/// Output of the optimizer.
struct AssignmentResult {
  Assignment lambda;          ///< Chosen λ (internal nodes only).
  double dp_cost_usd = 0;     ///< DP objective value (approximate; see below).
  ExtendedPlan extended;      ///< Minimally extended plan for λ.
  /// Assignment-aware per-attribute schemes (RefineSchemesForPlan): what the
  /// execution layer should actually use, and what exact_cost was computed
  /// with.
  SchemeMap refined_schemes;
  CostBreakdown exact_cost;   ///< Exact cost of the extended plan.
};

/// Cost-based assignment over candidate sets.
///
/// The DP treats inter-node encryption edge-locally (encryption needed
/// between a child's assignee and its parent's assignee); the Def 5.4(ii)
/// ancestor term is then accounted exactly by re-costing the produced
/// minimally extended plan (DESIGN.md §5). OptimizeExhaustive enumerates all
/// of Λ's cross-product with exact extended-plan costing and is used to
/// validate the DP on small plans.
class AssignmentOptimizer {
 public:
  AssignmentOptimizer(const Policy* policy, const CostModel* cost_model)
      : policy_(policy), cost_model_(cost_model) {}

  /// Sec 7: economic cost is the objective, optionally subject to a maximum
  /// elapsed-time threshold. Unset = cost only.
  void SetElapsedThreshold(double max_elapsed_s) {
    max_elapsed_s_ = max_elapsed_s;
  }

  /// Minimizes estimated economic cost; the result is delivered to `user`.
  /// When an elapsed threshold is set and the cost-optimal plan violates it,
  /// falls back to exhaustive search over Λ for the cheapest plan within the
  /// threshold (kNotFound when none qualifies).
  Result<AssignmentResult> Optimize(const PlanNode* root,
                                    const CandidatePlan& cp,
                                    SubjectId user) const;

  /// Exhaustive search over λ ∈ Λ with exact costing (threshold-aware).
  /// Exponential; guarded by `max_combinations`.
  Result<AssignmentResult> OptimizeExhaustive(
      const PlanNode* root, const CandidatePlan& cp, SubjectId user,
      uint64_t max_combinations = 2'000'000) const;

 private:
  Result<AssignmentResult> FinishResult(const PlanNode* root,
                                        AssignmentResult result,
                                        SubjectId user) const;

  const Policy* policy_;
  const CostModel* cost_model_;
  double max_elapsed_s_ = 0;  // 0 = unconstrained
};

/// Exact cost of an extended plan: every node billed to its assignee, every
/// assignee-crossing edge billed as a transfer, the root shipped to `user`.
CostBreakdown CostExtendedPlan(const ExtendedPlan& ext,
                               const CostModel& cost_model, SubjectId user);

}  // namespace mpq

#endif  // MPQ_ASSIGN_ASSIGNMENT_H_

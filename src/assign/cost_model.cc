#include "assign/cost_model.h"

#include <algorithm>
#include <cmath>

namespace mpq {

namespace {

// Per-row cpu constants in microseconds, calibrated to a PostgreSQL-class
// disk-based engine (the paper feeds its cost model from the PostgreSQL
// optimizer's estimates). With these, cpu and network i/o are the two
// significant components, as Sec 7 expects.
constexpr double kScanMicros = 2.0;
constexpr double kSelectMicrosPerPred = 8.0;
constexpr double kJoinBuildMicros = 20.0;
constexpr double kJoinProbeMicros = 20.0;
constexpr double kJoinOutputMicros = 10.0;
constexpr double kGroupMicros = 32.0;
constexpr double kProjectMicros = 2.0;
constexpr double kUdfMicros = 500.0;  // udfs are computation-heavy (Sec 7)

constexpr double kEqValueSelectivity = 0.05;
constexpr double kRangeSelectivity = 0.33;
constexpr double kNeSelectivity = 0.9;
constexpr double kEqAttrSelectivity = 0.1;
constexpr double kGroupReduction = 0.1;

}  // namespace

double CostModel::AttrBytes(AttrId a, bool encrypted) const {
  RelId r = catalog_->RelationOf(a);
  double plain = 8.0;
  if (r != kInvalidRel &&
      catalog_->Get(r).schema.ColumnFor(a).type == DataType::kString) {
    plain = 16.0;
  }
  if (!encrypted) return plain;
  EncScheme s = EncScheme::kDeterministic;
  if (schemes_ != nullptr) {
    auto it = schemes_->find(a);
    if (it != schemes_->end()) s = it->second;
  }
  return EncSchemeCiphertextBytes(s, plain);
}

double CostModel::RowBytes(const AttrSet& visible,
                           const AttrSet& encrypted) const {
  double bytes = 0;
  visible.ForEach(
      [&](AttrId a) { bytes += AttrBytes(a, encrypted.Contains(a)); });
  return bytes;
}

double CostModel::ProfileBytes(const RelationProfile& p) const {
  double bytes = 0;
  p.vp.ForEach([&](AttrId a) { bytes += AttrBytes(a, false); });
  p.ve.ForEach([&](AttrId a) { bytes += AttrBytes(a, true); });
  return bytes;
}

double CostModel::EstimateRows(
    const PlanNode* n,
    const std::unordered_map<int, NodeEstimate>& done) const {
  auto child_rows = [&](size_t i) {
    return done.at(n->child(i)->id).rows;
  };
  switch (n->kind) {
    case OpKind::kBase:
      return std::max(1.0, catalog_->Get(n->rel).base_rows);
    case OpKind::kProject:
    case OpKind::kUdf:
    case OpKind::kEncrypt:
    case OpKind::kDecrypt:
      return child_rows(0);
    case OpKind::kSelect: {
      double rows = child_rows(0);
      for (const Predicate& p : n->predicates) {
        double sel;
        if (p.rhs_is_attr) {
          sel = p.op == CmpOp::kEq ? kEqAttrSelectivity : kRangeSelectivity;
        } else if (p.op == CmpOp::kEq) {
          sel = kEqValueSelectivity;
        } else if (p.op == CmpOp::kNe) {
          sel = kNeSelectivity;
        } else {
          sel = kRangeSelectivity;
        }
        rows *= sel;
      }
      return std::max(1.0, rows);
    }
    case OpKind::kCartesian:
      return std::max(1.0, child_rows(0) * child_rows(1));
    case OpKind::kJoin: {
      double l = child_rows(0), r = child_rows(1);
      // Foreign-key-style estimate for the first equality predicate; each
      // further predicate filters.
      double rows = l * r / std::max(1.0, std::max(l, r));
      for (size_t i = 1; i < n->predicates.size(); ++i) rows *= 0.8;
      return std::max(1.0, rows);
    }
    case OpKind::kGroupBy: {
      double rows = child_rows(0);
      if (n->group_by.empty()) return 1.0;  // global aggregate
      double groups = rows * kGroupReduction *
                      static_cast<double>(n->group_by.size());
      return std::max(1.0, std::min(rows, groups));
    }
  }
  return 1.0;
}

double CostModel::OpCpuMicros(
    const PlanNode* n, double out_rows,
    const std::vector<const NodeEstimate*>& children) const {
  auto in_rows = [&](size_t i) { return children[i]->rows; };
  switch (n->kind) {
    case OpKind::kBase:
      return out_rows * kScanMicros;
    case OpKind::kProject:
      return in_rows(0) * kProjectMicros;
    case OpKind::kSelect:
      return in_rows(0) * kSelectMicrosPerPred *
             static_cast<double>(n->predicates.size());
    case OpKind::kCartesian:
      return out_rows * kJoinOutputMicros;
    case OpKind::kJoin:
      return in_rows(0) * kJoinBuildMicros + in_rows(1) * kJoinProbeMicros +
             out_rows * kJoinOutputMicros;
    case OpKind::kGroupBy:
      return in_rows(0) * kGroupMicros *
             std::max<size_t>(1, n->aggregates.size());
    case OpKind::kUdf:
      return in_rows(0) * kUdfMicros;
    case OpKind::kEncrypt:
    case OpKind::kDecrypt: {
      double micros = 0;
      n->attrs.ForEach([&](AttrId a) {
        EncScheme s = EncScheme::kDeterministic;
        if (schemes_ != nullptr) {
          auto it = schemes_->find(a);
          if (it != schemes_->end()) s = it->second;
        }
        micros += EncSchemeCpuMicros(s);
      });
      return in_rows(0) * micros;
    }
  }
  return 0;
}

std::unordered_map<int, NodeEstimate> CostModel::EstimatePlan(
    const PlanNode* root) const {
  std::unordered_map<int, NodeEstimate> out;
  for (const PlanNode* n : PostOrder(root)) {
    NodeEstimate est;
    est.rows = EstimateRows(n, out);
    // Row width from the node's profile when annotated; otherwise from the
    // plaintext visible attributes.
    double width = ProfileBytes(n->profile);
    if (width <= 0) {
      AttrSet visible = VisibleAttrs(n, *catalog_);
      visible.ForEach([&](AttrId a) { width += AttrBytes(a, false); });
    }
    est.bytes = est.rows * width;
    std::vector<const NodeEstimate*> children;
    for (size_t i = 0; i < n->num_children(); ++i) {
      children.push_back(&out.at(n->child(i)->id));
    }
    est.cpu_micros = OpCpuMicros(n, est.rows, children);
    out.emplace(n->id, est);
  }
  return out;
}

CostBreakdown CostModel::NodeCost(
    const PlanNode* n, const NodeEstimate& est,
    const std::vector<const NodeEstimate*>& child_est, SubjectId s) const {
  const PriceList& p = prices_->Get(s);
  CostBreakdown out;
  out.cpu_usd = est.cpu_micros / 1e6 / 3600.0 * p.cpu_usd_per_hour;
  double io_bytes = est.bytes;
  for (const NodeEstimate* c : child_est) io_bytes += c->bytes;
  // Base relations are read from local storage.
  if (n->kind == OpKind::kBase) io_bytes += est.bytes;
  out.io_usd = io_bytes / 1e9 * p.io_usd_per_gb;
  out.elapsed_s = est.cpu_micros / 1e6;
  return out;
}

CostBreakdown CostModel::TransferCost(double bytes, SubjectId from,
                                      SubjectId to) const {
  CostBreakdown out;
  if (from == to || bytes <= 0) return out;
  out.net_usd = bytes / 1e9 * prices_->Get(from).net_usd_per_gb;
  out.elapsed_s = bytes * 8.0 / topology_->BandwidthBps(from, to);
  return out;
}

CostBreakdown CostModel::CpuCost(double cpu_micros, SubjectId s) const {
  CostBreakdown out;
  out.cpu_usd = cpu_micros / 1e6 / 3600.0 * prices_->Get(s).cpu_usd_per_hour;
  out.elapsed_s = cpu_micros / 1e6;
  return out;
}

CostBreakdown CostModel::CryptoCost(const AttrSet& attrs, double rows,
                                    SubjectId s) const {
  double micros = 0;
  attrs.ForEach([&](AttrId a) {
    EncScheme scheme = EncScheme::kDeterministic;
    if (schemes_ != nullptr) {
      auto it = schemes_->find(a);
      if (it != schemes_->end()) scheme = it->second;
    }
    micros += EncSchemeCpuMicros(scheme);
  });
  micros *= rows;
  CostBreakdown out;
  out.cpu_usd = micros / 1e6 / 3600.0 * prices_->Get(s).cpu_usd_per_hour;
  out.elapsed_s = micros / 1e6;
  return out;
}

}  // namespace mpq

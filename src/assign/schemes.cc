#include "assign/schemes.h"

#include "common/disjoint_set.h"

namespace mpq {

namespace {

/// Ops a cluster's ciphertexts would need to support.
struct ClusterOps {
  bool eq = false;       // equality predicates, grouping, equi-joins
  bool range = false;    // order predicates
  bool minmax = false;   // min/max aggregation
  bool hom = false;      // sum/avg aggregation
  bool has_string = false;
};

DataType AttrType(AttrId a, const Catalog& catalog) {
  RelId r = catalog.RelationOf(a);
  if (r == kInvalidRel) return DataType::kInt64;  // synthetic (count outputs)
  return catalog.Get(r).schema.ColumnFor(a).type;
}

/// Clusters attributes connected by attr-attr comparisons anywhere in the
/// plan (they must share key and scheme).
DisjointSet BuildClusters(const PlanNode* root) {
  DisjointSet ds;
  for (const PlanNode* n : PostOrder(root)) {
    for (const Predicate& p : n->predicates) {
      if (p.rhs_is_attr) ds.Union(p.lhs, p.rhs_attr);
    }
  }
  return ds;
}

AttrId ClusterRep(const DisjointSet& ds, AttrId a) {
  if (!ds.IsMember(a)) return a;
  // The smallest member is the deterministic representative.
  return ds.ClassOf(a).ToVector().front();
}

std::unordered_map<AttrId, ClusterOps> CollectOps(const PlanNode* root,
                                                  const Catalog& catalog,
                                                  const DisjointSet& ds) {
  std::unordered_map<AttrId, ClusterOps> ops;
  auto touch = [&](AttrId a) -> ClusterOps& {
    ClusterOps& co = ops[ClusterRep(ds, a)];
    if (AttrType(a, catalog) == DataType::kString) co.has_string = true;
    return co;
  };
  for (const PlanNode* n : PostOrder(root)) {
    for (const Predicate& p : n->predicates) {
      bool eq = IsEquality(p.op) || p.op == CmpOp::kNe;
      touch(p.lhs).eq |= eq;
      touch(p.lhs).range |= !eq;
      if (p.rhs_is_attr) {
        touch(p.rhs_attr).eq |= eq;
        touch(p.rhs_attr).range |= !eq;
      }
    }
    if (n->kind == OpKind::kGroupBy) {
      n->group_by.ForEach([&](AttrId a) { touch(a).eq = true; });
      for (const Aggregate& agg : n->aggregates) {
        if (agg.func == AggFunc::kSum || agg.func == AggFunc::kAvg) {
          touch(agg.attr).hom = true;
        } else if (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax) {
          touch(agg.attr).minmax = true;
        }
      }
    }
  }
  return ops;
}

/// The scheme a cluster gets; ops it cannot satisfy become plaintext needs.
EncScheme ResolveScheme(const ClusterOps& co, const SchemeCaps& caps) {
  bool numeric = !co.has_string;
  if (co.hom && caps.hom && numeric) return EncScheme::kPaillier;
  if ((co.range || co.minmax) && caps.ope && numeric) return EncScheme::kOpe;
  if ((co.eq || co.range || co.minmax) && caps.det) {
    return EncScheme::kDeterministic;
  }
  return EncScheme::kRandom;
}

bool SchemeSupports(EncScheme s, bool is_range_op) {
  switch (s) {
    case EncScheme::kOpe:
      return true;  // order implies equality
    case EncScheme::kDeterministic:
      return !is_range_op;
    case EncScheme::kRandom:
    case EncScheme::kPaillier:
      return false;
  }
  return false;
}

bool IsEncCapableUdf(const PlanNode* n, const SchemeCaps& caps) {
  return n->udf_name.rfind(caps.enc_udf_prefix, 0) == 0;
}

}  // namespace

SchemeMap AnalyzeSchemes(const PlanNode* root, const Catalog& catalog,
                         const SchemeCaps& caps) {
  DisjointSet ds = BuildClusters(root);
  auto ops = CollectOps(root, catalog, ds);
  SchemeMap out;
  // Every attribute mentioned anywhere gets a scheme; unmentioned attributes
  // default to RND at use sites via CryptoPlan's defaults.
  for (const PlanNode* n : PostOrder(root)) {
    AttrSet mentioned;
    if (n->kind == OpKind::kBase) {
      mentioned = catalog.Get(n->rel).schema.Attrs();
    }
    mentioned.InsertAll(PredicatesAttrs(n->predicates));
    mentioned.InsertAll(n->group_by);
    for (const Aggregate& agg : n->aggregates) {
      if (agg.attr != kInvalidAttr) mentioned.Insert(agg.attr);
      mentioned.Insert(agg.out_attr);
    }
    mentioned.InsertAll(n->udf_inputs);
    mentioned.ForEach([&](AttrId a) {
      AttrId rep = ClusterRep(ds, a);
      auto it = ops.find(rep);
      EncScheme s = it == ops.end() ? EncScheme::kRandom
                                    : ResolveScheme(it->second, caps);
      out[a] = s;
    });
  }
  return out;
}

Status DerivePlaintextNeeds(PlanNode* root, const Catalog& catalog,
                            const SchemeCaps& caps) {
  DisjointSet ds = BuildClusters(root);
  auto ops = CollectOps(root, catalog, ds);
  auto scheme_of = [&](AttrId a) {
    auto it = ops.find(ClusterRep(ds, a));
    return it == ops.end() ? EncScheme::kRandom
                           : ResolveScheme(it->second, caps);
  };

  for (PlanNode* n : PostOrder(root)) {
    AttrSet needs;
    for (const Predicate& p : n->predicates) {
      bool is_range = !IsEquality(p.op) && p.op != CmpOp::kNe;
      bool ok = SchemeSupports(scheme_of(p.lhs), is_range);
      if (p.rhs_is_attr) {
        ok = ok && SchemeSupports(scheme_of(p.rhs_attr), is_range);
      }
      if (!ok) {
        needs.InsertAll(p.Attrs());
      }
    }
    if (n->kind == OpKind::kGroupBy) {
      n->group_by.ForEach([&](AttrId a) {
        EncScheme s = scheme_of(a);
        if (s != EncScheme::kDeterministic && s != EncScheme::kOpe) {
          needs.Insert(a);
        }
      });
      for (const Aggregate& agg : n->aggregates) {
        switch (agg.func) {
          case AggFunc::kSum:
          case AggFunc::kAvg:
            if (scheme_of(agg.attr) != EncScheme::kPaillier) {
              needs.Insert(agg.attr);
            }
            break;
          case AggFunc::kMin:
          case AggFunc::kMax:
            if (scheme_of(agg.attr) != EncScheme::kOpe) {
              needs.Insert(agg.attr);
            }
            break;
          case AggFunc::kCount:
          case AggFunc::kCountStar:
            break;
        }
      }
    }
    if (n->kind == OpKind::kUdf && !IsEncCapableUdf(n, caps)) {
      needs.InsertAll(n->udf_inputs);
    }
    n->needs_plaintext = needs;
  }
  return Status::OK();
}

namespace {

EncScheme MaxScheme(EncScheme a, EncScheme b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

}  // namespace

SchemeMap RefineSchemesForPlan(const ExtendedPlan& ext,
                               const Catalog& catalog) {
  (void)catalog;
  SchemeMap out;
  ext.encrypted_attrs.ForEach(
      [&](AttrId a) { out[a] = EncScheme::kRandom; });

  auto require = [&](AttrId a, EncScheme s) {
    auto it = out.find(a);
    if (it != out.end()) it->second = MaxScheme(it->second, s);
  };

  for (const PlanNode* n : PostOrder(ext.plan.get())) {
    if (n->is_leaf()) continue;
    // Encrypted attributes of the operands this operator reads.
    AttrSet operand_enc;
    for (size_t i = 0; i < n->num_children(); ++i) {
      operand_enc.InsertAll(n->child(i)->profile.ve);
    }
    for (const Predicate& p : n->predicates) {
      bool is_range = !IsEquality(p.op) && p.op != CmpOp::kNe;
      EncScheme need = is_range ? EncScheme::kOpe : EncScheme::kDeterministic;
      if (operand_enc.Contains(p.lhs)) require(p.lhs, need);
      if (p.rhs_is_attr && operand_enc.Contains(p.rhs_attr)) {
        require(p.rhs_attr, need);
      }
    }
    n->group_by.ForEach([&](AttrId a) {
      if (operand_enc.Contains(a)) require(a, EncScheme::kDeterministic);
    });
    for (const Aggregate& agg : n->aggregates) {
      if (agg.attr == kInvalidAttr || !operand_enc.Contains(agg.attr)) continue;
      switch (agg.func) {
        case AggFunc::kSum:
        case AggFunc::kAvg:
          require(agg.attr, EncScheme::kPaillier);
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          require(agg.attr, EncScheme::kOpe);
          break;
        default:
          break;
      }
    }
    n->udf_inputs.ForEach([&](AttrId a) {
      if (operand_enc.Contains(a)) require(a, EncScheme::kDeterministic);
    });
  }

  // Unify within root equivalence classes (shared key ⇒ shared scheme).
  for (const AttrSet& cls : ext.plan->profile.eq.Classes()) {
    EncScheme strongest = EncScheme::kRandom;
    bool any = false;
    cls.ForEach([&](AttrId a) {
      auto it = out.find(a);
      if (it != out.end()) {
        strongest = MaxScheme(strongest, it->second);
        any = true;
      }
    });
    if (any) {
      cls.ForEach([&](AttrId a) {
        auto it = out.find(a);
        if (it != out.end()) it->second = strongest;
      });
    }
  }
  return out;
}

CryptoPlan MakeCryptoPlan(const SchemeMap& schemes, const PlanKeys& keys) {
  CryptoPlan cp;
  for (const auto& [attr, scheme] : schemes) cp.scheme_of[attr] = scheme;
  for (const KeyGroup& g : keys.groups) {
    g.attrs.ForEach([&](AttrId a) { cp.key_of[a] = g.key_id; });
  }
  return cp;
}

}  // namespace mpq

// Economic cost model (Sec 7): Cq = Σ_n (C_cpu + C_io + C_net_io), with
// per-node cardinality/size estimation and per-scheme crypto costs.

#ifndef MPQ_ASSIGN_COST_MODEL_H_
#define MPQ_ASSIGN_COST_MODEL_H_

#include <unordered_map>

#include "algebra/plan.h"
#include "assign/schemes.h"
#include "net/pricing.h"
#include "net/topology.h"

namespace mpq {

/// Estimated output of a plan node.
struct NodeEstimate {
  double rows = 0;        ///< Output cardinality.
  double bytes = 0;       ///< Output size (ciphertext inflation included).
  double cpu_micros = 0;  ///< Cpu time to execute the node (crypto included
                          ///< for encrypt/decrypt nodes).
};

/// Cost components in USD plus estimated elapsed time.
struct CostBreakdown {
  double cpu_usd = 0;
  double io_usd = 0;
  double net_usd = 0;
  double elapsed_s = 0;

  double total_usd() const { return cpu_usd + io_usd + net_usd; }

  CostBreakdown& operator+=(const CostBreakdown& o) {
    cpu_usd += o.cpu_usd;
    io_usd += o.io_usd;
    net_usd += o.net_usd;
    elapsed_s += o.elapsed_s;
    return *this;
  }
};

/// Cardinality, size and cost estimation.
class CostModel {
 public:
  CostModel(const Catalog* catalog, const PricingTable* prices,
            const Topology* topology, const SchemeMap* schemes)
      : catalog_(catalog),
        prices_(prices),
        topology_(topology),
        schemes_(schemes) {}

  /// Estimates every node of an (annotated) plan, keyed by node id. Works on
  /// both original and extended plans; encrypted attribute sizes follow the
  /// node profiles and the scheme map.
  std::unordered_map<int, NodeEstimate> EstimatePlan(
      const PlanNode* root) const;

  /// Cost of executing node `n` (with estimate `est`, operand estimates
  /// `child_est`) at subject `s`: cpu + local i/o.
  CostBreakdown NodeCost(const PlanNode* n, const NodeEstimate& est,
                         const std::vector<const NodeEstimate*>& child_est,
                         SubjectId s) const;

  /// Cost of shipping `bytes` from `from` to `to` (zero when equal):
  /// sender egress + transfer time.
  CostBreakdown TransferCost(double bytes, SubjectId from, SubjectId to) const;

  /// Cpu cost (USD) at subject `s` of encrypting/decrypting `rows` values of
  /// each attribute in `attrs` (schemes from the scheme map).
  CostBreakdown CryptoCost(const AttrSet& attrs, double rows,
                           SubjectId s) const;

  /// Cpu cost (USD) of `cpu_micros` microseconds of work at subject `s`.
  CostBreakdown CpuCost(double cpu_micros, SubjectId s) const;

  /// Width in bytes of attribute `a` in the given (plaintext/encrypted) form.
  double AttrBytes(AttrId a, bool encrypted) const;

  /// Row width for a relation with `visible` attributes of which `encrypted`
  /// are in ciphertext form (size inflation included).
  double RowBytes(const AttrSet& visible, const AttrSet& encrypted) const;

  const SchemeMap* schemes() const { return schemes_; }
  const PricingTable& prices() const { return *prices_; }
  const Topology& topology() const { return *topology_; }
  const Catalog& catalog() const { return *catalog_; }

 private:
  double EstimateRows(const PlanNode* n,
                      const std::unordered_map<int, NodeEstimate>& done) const;
  double ProfileBytes(const RelationProfile& p) const;
  double OpCpuMicros(const PlanNode* n, double out_rows,
                     const std::vector<const NodeEstimate*>& children) const;

  const Catalog* catalog_;
  const PricingTable* prices_;
  const Topology* topology_;
  const SchemeMap* schemes_;
};

}  // namespace mpq

#endif  // MPQ_ASSIGN_COST_MODEL_H_

#include "assign/assignment.h"

#include <algorithm>
#include <limits>

#include "common/str_util.h"

namespace mpq {

CostBreakdown CostExtendedPlan(const ExtendedPlan& ext,
                               const CostModel& cost_model, SubjectId user) {
  auto est = cost_model.EstimatePlan(ext.plan.get());
  CostBreakdown total;
  for (const PlanNode* n : PostOrder(ext.plan.get())) {
    SubjectId s = ext.assignment.at(n->id);
    std::vector<const NodeEstimate*> child_est;
    for (size_t i = 0; i < n->num_children(); ++i) {
      child_est.push_back(&est.at(n->child(i)->id));
    }
    total += cost_model.NodeCost(n, est.at(n->id), child_est, s);
    // Transfers: each child's output crosses to this node's subject.
    for (size_t i = 0; i < n->num_children(); ++i) {
      SubjectId cs = ext.assignment.at(n->child(i)->id);
      total += cost_model.TransferCost(est.at(n->child(i)->id).bytes, cs, s);
    }
  }
  // Result delivery to the user.
  SubjectId root_s = ext.assignment.at(ext.plan->id);
  total += cost_model.TransferCost(est.at(ext.plan->id).bytes, root_s, user);
  return total;
}

namespace {

constexpr double kSymMicros = 0.1;  // RND/DET-class per-value crypto cost

/// Attributes an operator reads (predicates, grouping, aggregate and udf
/// inputs).
AttrSet OperatorAttrs(const PlanNode* n) {
  AttrSet out = PredicatesAttrs(n->predicates);
  out.InsertAll(n->group_by);
  for (const Aggregate& a : n->aggregates) {
    if (a.attr != kInvalidAttr) out.Insert(a.attr);
  }
  out.InsertAll(n->udf_inputs);
  return out;
}

/// Attributes `n` adds to the implicit component of its result (Fig 2):
/// attr-value selection operands and grouping attributes.
AttrSet ImplicitMaking(const PlanNode* n) {
  AttrSet out;
  switch (n->kind) {
    case OpKind::kSelect:
    case OpKind::kJoin:
      for (const Predicate& p : n->predicates) {
        if (!p.rhs_is_attr) out.Insert(p.lhs);
      }
      break;
    case OpKind::kGroupBy:
      out = n->group_by;
      break;
    default:
      break;
  }
  return out;
}

/// Scheme an attribute must carry to be evaluated *encrypted* by `n`.
EncScheme RequiredSchemeAt(const PlanNode* n, AttrId a) {
  EncScheme need = EncScheme::kDeterministic;
  for (const Predicate& p : n->predicates) {
    if (p.lhs != a && (!p.rhs_is_attr || p.rhs_attr != a)) continue;
    if (!IsEquality(p.op) && p.op != CmpOp::kNe) need = EncScheme::kOpe;
  }
  for (const Aggregate& agg : n->aggregates) {
    if (agg.attr != a) continue;
    if (agg.func == AggFunc::kSum || agg.func == AggFunc::kAvg) {
      return EncScheme::kPaillier;
    }
    if (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax) {
      need = EncScheme::kOpe;
    }
  }
  return need;
}

struct DpCell {
  double cost = std::numeric_limits<double>::infinity();
  // Chosen subject per child.
  std::vector<SubjectId> child_choice;
  // Attributes of this node's output that are encrypted under the chosen
  // subtree assignment (tracks Def 5.4 edge encryption through the DP, so
  // crypto work, decryption and ciphertext size inflation are priced).
  AttrSet enc;
  // Per encrypted attribute: the USD cost of one extra µs-per-value at its
  // encryption site (rows × price there) and the scheme level already paid
  // for. When an ancestor operation must evaluate the attribute encrypted,
  // the DP charges the upgrade to the operation-capable scheme at the true
  // encryption site.
  struct EncInfo {
    double usd_per_micro = 0;
    uint8_t level = 0;  // EncScheme numeric value (0 = RND)
  };
  std::unordered_map<AttrId, EncInfo> enc_info;
  // Implicit plaintext leaks below (Def 5.4(ii) A-term): if an ancestor
  // assignee may only see the attribute encrypted, the deferred cost of
  // having encrypted it at the leak site is charged then.
  std::unordered_map<AttrId, EncInfo> deferred;
};

}  // namespace

Result<AssignmentResult> AssignmentOptimizer::Optimize(
    const PlanNode* root, const CandidatePlan& cp, SubjectId user) const {
  const CostModel& cm = *cost_model_;
  auto est = cm.EstimatePlan(root);

  // dp[node id][subject] = min cost of computing the node's result at that
  // subject, including its subtree, transfers and on-the-fly crypto.
  std::unordered_map<int, std::unordered_map<SubjectId, DpCell>> dp;

  std::vector<const PlanNode*> order = PostOrder(root);
  for (const PlanNode* n : order) {
    const NodeCandidates& nc = cp.at(n->id);
    auto& row = dp[n->id];
    std::vector<SubjectId> cands;
    nc.candidates.ForEach(
        [&](AttrId s) { cands.push_back(static_cast<SubjectId>(s)); });

    if (n->is_leaf() ||
        (n->kind == OpKind::kProject && n->child(0)->kind == OpKind::kBase)) {
      // Leaf (possibly with its folded projection): runs at the owner.
      std::vector<const NodeEstimate*> child_est;
      for (size_t i = 0; i < n->num_children(); ++i) {
        child_est.push_back(&est.at(n->child(i)->id));
      }
      for (SubjectId s : cands) {
        DpCell cell;
        cell.cost = cm.NodeCost(n, est.at(n->id), child_est, s).total_usd();
        for (size_t i = 0; i < n->num_children(); ++i) {
          cell.child_choice.push_back(s);
          cell.cost +=
              cm.NodeCost(n->child(i), est.at(n->child(i)->id), {}, s)
                  .total_usd();
        }
        row[s] = std::move(cell);
      }
      if (row.empty()) {
        return Status::Unauthorized(
            StrFormat("no feasible assignment for node %d", n->id));
      }
      continue;
    }

    const AttrSet n_visible = nc.cascade_profile.Visible();
    std::vector<const NodeEstimate*> child_est;
    for (size_t i = 0; i < n->num_children(); ++i) {
      child_est.push_back(&est.at(n->child(i)->id));
    }

    for (SubjectId s : cands) {
      DpCell cell;
      cell.cost = cm.NodeCost(n, est.at(n->id), child_est, s).total_usd();
      bool feasible = true;
      for (size_t i = 0; i < n->num_children(); ++i) {
        const PlanNode* c = n->child(i);
        auto child_it = dp.find(c->id);
        if (child_it == dp.end() || child_it->second.empty()) {
          feasible = false;
          break;
        }
        const AttrSet child_visible =
            cp.at(c->id).cascade_profile.Visible();
        // Plaintext the operator needs: static requirements plus greedy
        // decrypt-at-operator when s is plaintext-authorized for an operand
        // attribute the operator reads (mirrors plan extension; see
        // extend.cc). Transit encryption is then priced as cheap storage
        // encryption, with per-operator premiums only for attributes that
        // actually remain encrypted under an operation.
        AttrSet ap = PlaintextNeededFromChild(n, child_visible);
        const AttrSet op_attrs = OperatorAttrs(n).Intersect(child_visible);
        ap.InsertAll(op_attrs.Intersect(policy_->PlainView(s)));
        double child_rows = est.at(c->id).rows;

        double best = std::numeric_limits<double>::infinity();
        SubjectId best_s = kInvalidSubject;
        AttrSet best_arrives;
        std::unordered_map<AttrId, DpCell::EncInfo> best_info;
        std::unordered_map<AttrId, DpCell::EncInfo> best_deferred;
        for (const auto& [cs, ccell] : child_it->second) {
          double edge_cost = 0;
          AttrSet arrives = ccell.enc;
          auto info = ccell.enc_info;
          auto deferred = ccell.deferred;

          // Trigger deferred A-term encryptions: s may only see the leaked
          // attribute encrypted, so the leak site must have encrypted it.
          const AttrSet es = policy_->EncView(s);
          for (auto it = deferred.begin(); it != deferred.end();) {
            AttrId a = it->first;
            if (es.Contains(a)) {
              edge_cost += EncSchemeCpuMicros(
                               static_cast<EncScheme>(it->second.level)) *
                           it->second.usd_per_micro;
              if (child_visible.Contains(a)) {
                arrives.Insert(a);
                info[a] = it->second;
              }
              it = deferred.erase(it);
            } else {
              ++it;
            }
          }

          // Def 5.4 edge encryption at cs of what s must not see plaintext.
          AttrSet edge_enc = es.Intersect(child_visible.Difference(arrives));
          double usd_per_micro_here =
              cm.CpuCost(child_rows, cs).total_usd();  // 1 µs per value
          edge_cost +=
              kSymMicros * static_cast<double>(edge_enc.size()) *
              usd_per_micro_here;
          edge_enc.ForEach([&](AttrId a) {
            arrives.Insert(a);
            info[a] = DpCell::EncInfo{usd_per_micro_here, 0};
          });

          // Decryption at s (static Ap plus greedy decrypt-at-operator).
          AttrSet dec = ap.Intersect(arrives);
          edge_cost += kSymMicros * static_cast<double>(dec.size()) *
                       cm.CpuCost(child_rows, s).total_usd();
          dec.ForEach([&](AttrId a) {
            arrives.Erase(a);
            info.erase(a);
          });

          // Scheme upgrades: operand attributes evaluated while encrypted
          // must carry an operation-capable scheme, paid at their true
          // encryption site.
          op_attrs.Intersect(arrives).ForEach([&](AttrId a) {
            uint8_t need =
                static_cast<uint8_t>(RequiredSchemeAt(n, a));
            auto it = info.find(a);
            if (it == info.end() || it->second.level >= need) return;
            edge_cost +=
                (EncSchemeCpuMicros(static_cast<EncScheme>(need)) -
                 EncSchemeCpuMicros(static_cast<EncScheme>(it->second.level))) *
                it->second.usd_per_micro;
            it->second.level = need;
          });

          // New implicit plaintext leaks at this operation (A-term source).
          ImplicitMaking(n).Intersect(child_visible).ForEach([&](AttrId a) {
            if (arrives.Contains(a) || deferred.count(a) > 0) return;
            DpCell::EncInfo leak;
            leak.usd_per_micro = usd_per_micro_here;
            leak.level = static_cast<uint8_t>(RequiredSchemeAt(n, a));
            deferred.emplace(a, leak);
          });

          double bytes = child_rows * cm.RowBytes(child_visible, arrives);
          edge_cost += cm.TransferCost(bytes, cs, s).total_usd();
          double total = ccell.cost + edge_cost;
          if (total < best) {
            best = total;
            best_s = cs;
            best_arrives = arrives;
            best_info = std::move(info);
            best_deferred = std::move(deferred);
          }
        }
        if (best_s == kInvalidSubject) {
          feasible = false;
          break;
        }
        cell.cost += best;
        cell.child_choice.push_back(best_s);
        cell.enc.InsertAll(best_arrives);
        for (auto& [a, ei] : best_info) cell.enc_info.emplace(a, ei);
        for (auto& [a, ei] : best_deferred) cell.deferred.emplace(a, ei);
      }
      if (feasible) {
        cell.enc = cell.enc.Intersect(n_visible);
        for (auto it = cell.enc_info.begin(); it != cell.enc_info.end();) {
          if (!cell.enc.Contains(it->first)) {
            it = cell.enc_info.erase(it);
          } else {
            ++it;
          }
        }
        row[s] = std::move(cell);
      }
    }
    if (row.empty()) {
      return Status::Unauthorized(StrFormat(
          "no feasible assignment for node %d", n->id));
    }
  }

  // Root choice: add delivery to the user (transfer at ciphertext widths
  // plus the user's final decryption of what it may read).
  const AttrSet root_visible = cp.at(root->id).cascade_profile.Visible();
  double best = std::numeric_limits<double>::infinity();
  SubjectId best_root = kInvalidSubject;
  for (const auto& [s, cell] : dp.at(root->id)) {
    double bytes = est.at(root->id).rows * cm.RowBytes(root_visible, cell.enc);
    AttrSet dec = cell.enc.Intersect(policy_->PlainView(user));
    double dec_micros =
        kSymMicros * static_cast<double>(dec.size()) * est.at(root->id).rows;
    double total = cell.cost + cm.TransferCost(bytes, s, user).total_usd() +
                   cm.CpuCost(dec_micros, user).total_usd();
    if (total < best) {
      best = total;
      best_root = s;
    }
  }
  if (best_root == kInvalidSubject) {
    return Status::Unauthorized("no feasible root assignment");
  }

  // Reconstruct λ top-down.
  AssignmentResult result;
  result.dp_cost_usd = best;
  std::vector<std::pair<const PlanNode*, SubjectId>> stack{{root, best_root}};
  while (!stack.empty()) {
    auto [n, s] = stack.back();
    stack.pop_back();
    if (n->is_leaf()) continue;  // leaves stay with their owners
    result.lambda[n->id] = s;
    const DpCell& cell = dp.at(n->id).at(s);
    for (size_t i = 0; i < n->num_children(); ++i) {
      stack.push_back({n->child(i), cell.child_choice[i]});
    }
  }

  MPQ_ASSIGN_OR_RETURN(result, FinishResult(root, std::move(result), user));
  // Sec 7: when the cost-optimal plan exceeds the admitted performance
  // overhead, search Λ exhaustively for the cheapest plan within it.
  if (max_elapsed_s_ > 0 && result.exact_cost.elapsed_s > max_elapsed_s_) {
    return OptimizeExhaustive(root, cp, user);
  }
  return result;
}

Result<AssignmentResult> AssignmentOptimizer::FinishResult(
    const PlanNode* root, AssignmentResult result, SubjectId user) const {
  MPQ_ASSIGN_OR_RETURN(
      result.extended,
      BuildMinimallyExtendedPlan(root, result.lambda, *policy_, user));
  // Exact costing under assignment-aware schemes (Sec 6: assignment and
  // encryption decisions combined).
  result.refined_schemes =
      RefineSchemesForPlan(result.extended, cost_model_->catalog());
  CostModel refined_cm(&cost_model_->catalog(), &cost_model_->prices(),
                       &cost_model_->topology(), &result.refined_schemes);
  result.exact_cost = CostExtendedPlan(result.extended, refined_cm, user);
  return result;
}

Result<AssignmentResult> AssignmentOptimizer::OptimizeExhaustive(
    const PlanNode* root, const CandidatePlan& cp, SubjectId user,
    uint64_t max_combinations) const {
  std::vector<const PlanNode*> internal;
  for (const PlanNode* n : PostOrder(root)) {
    if (!n->is_leaf()) internal.push_back(n);
  }
  std::vector<std::vector<SubjectId>> choices;
  uint64_t combos = 1;
  for (const PlanNode* n : internal) {
    std::vector<SubjectId> cands;
    cp.at(n->id).candidates.ForEach(
        [&](AttrId s) { cands.push_back(static_cast<SubjectId>(s)); });
    if (cands.empty()) {
      return Status::Unauthorized(
          StrFormat("no candidates for node %d", n->id));
    }
    combos *= cands.size();
    if (combos > max_combinations) {
      return Status::InvalidArgument(StrFormat(
          "exhaustive search space too large (> %llu combinations)",
          static_cast<unsigned long long>(max_combinations)));
    }
    choices.push_back(std::move(cands));
  }

  std::optional<AssignmentResult> best;
  std::vector<size_t> idx(internal.size(), 0);
  for (;;) {
    Assignment lambda;
    for (size_t i = 0; i < internal.size(); ++i) {
      lambda[internal[i]->id] = choices[i][idx[i]];
    }
    Result<ExtendedPlan> ext =
        BuildMinimallyExtendedPlan(root, lambda, *policy_, user);
    if (ext.ok()) {
      SchemeMap refined = RefineSchemesForPlan(*ext, cost_model_->catalog());
      CostModel refined_cm(&cost_model_->catalog(), &cost_model_->prices(),
                           &cost_model_->topology(), &refined);
      CostBreakdown cost = CostExtendedPlan(*ext, refined_cm, user);
      bool within_threshold =
          max_elapsed_s_ <= 0 || cost.elapsed_s <= max_elapsed_s_;
      if (within_threshold &&
          (!best.has_value() ||
           cost.total_usd() < best->exact_cost.total_usd())) {
        AssignmentResult r;
        r.lambda = std::move(lambda);
        r.extended = std::move(ext).value();
        r.refined_schemes = std::move(refined);
        r.exact_cost = cost;
        r.dp_cost_usd = cost.total_usd();
        best = std::move(r);
      }
    }
    // Advance the odometer.
    size_t k = 0;
    while (k < idx.size()) {
      if (++idx[k] < choices[k].size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == idx.size()) break;
  }
  if (!best.has_value()) {
    if (max_elapsed_s_ > 0) {
      return Status::NotFound(StrFormat(
          "no authorized assignment within the %.2fs performance threshold",
          max_elapsed_s_));
    }
    return Status::Unauthorized("no authorized assignment exists");
  }
  return std::move(*best);
}

}  // namespace mpq

// Operation requirements and per-attribute scheme selection (Secs 5-6).
//
// DerivePlaintextNeeds fills PlanNode::needs_plaintext (the Ap sets of
// Def 5.2) from the encryption schemes available: an operation an available
// scheme can evaluate over ciphertexts imposes no plaintext requirement;
// anything else must see its attributes in the clear.
//
// AnalyzeSchemes picks, per attribute *cluster* (attributes connected by
// comparisons must share key and scheme), the strongest scheme supporting
// the encrypted operations that remain: HOM (Paillier) for additive
// aggregates, OPE for order comparisons and min/max, DET for equality-only,
// RND when ciphertexts are never operated on.

#ifndef MPQ_ASSIGN_SCHEMES_H_
#define MPQ_ASSIGN_SCHEMES_H_

#include <unordered_map>

#include "algebra/plan.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "crypto/scheme.h"
#include "exec/executor.h"
#include "extend/keys.h"

namespace mpq {

/// Which encrypted-execution techniques the deployment offers.
struct SchemeCaps {
  bool det = true;  ///< Equality / grouping / equi-join on ciphertexts.
  bool ope = true;  ///< Order comparisons and min/max on ciphertexts.
  bool hom = true;  ///< Additive aggregation (sum/avg) on ciphertexts.
  /// Udfs marked with this name-prefix run over ciphertexts; all others
  /// require plaintext inputs.
  std::string enc_udf_prefix = "enc_";
};

/// Per-attribute scheme choice (attributes sharing a comparison cluster get
/// the same scheme).
using SchemeMap = std::unordered_map<AttrId, EncScheme>;

/// Fills needs_plaintext on every node of the plan. Idempotent.
Status DerivePlaintextNeeds(PlanNode* root, const Catalog& catalog,
                            const SchemeCaps& caps = {});

/// Chooses schemes per attribute cluster, consistent with the plaintext
/// requirements DerivePlaintextNeeds derives from the same caps.
SchemeMap AnalyzeSchemes(const PlanNode* root, const Catalog& catalog,
                         const SchemeCaps& caps = {});

/// Assembles the executable CryptoPlan: schemes from `schemes`, key ids from
/// the Def 6.1 key groups.
CryptoPlan MakeCryptoPlan(const SchemeMap& schemes, const PlanKeys& keys);

/// Assignment-aware scheme refinement (Sec 6: the optimizer combines
/// assignment and encryption decisions): given a concrete extended plan,
/// picks per attribute the strongest scheme among those its *actually
/// executed-on-ciphertext* operations require — attributes that only transit
/// encrypted (e.g. through a join that never touches them, decrypted at a
/// plaintext-authorized operator) get cheap RND instead of worst-case
/// HOM/OPE. Attributes in a shared root equivalence class are unified to the
/// strongest member scheme (they share a key, Def 6.1).
SchemeMap RefineSchemesForPlan(const ExtendedPlan& ext, const Catalog& catalog);

}  // namespace mpq

#endif  // MPQ_ASSIGN_SCHEMES_H_

#include "exec/distributed.h"

namespace mpq {

void DistributedRuntime::DistributeKeys(const PlanKeys& keys, SubjectId user,
                                        uint64_t seed) {
  for (const KeyGroup& g : keys.groups) {
    KeyMaterial km = MakeKeyMaterial(seed, g.key_id);
    public_modulus_[g.key_id] = km.paillier.n;
    g.holders.ForEach([&](AttrId s) {
      keyrings_[static_cast<SubjectId>(s)].Add(km);
    });
    dispatcher_keyring_.Add(km);
    keyrings_[user].Add(km);
  }
}

Result<Table> DistributedRuntime::RunNode(const PlanNode* n,
                                          const ExtendedPlan& ext,
                                          DistributedResult* out) {
  SubjectId s = ext.assignment.at(n->id);

  std::vector<Table> inputs;
  inputs.reserve(n->num_children());
  for (size_t i = 0; i < n->num_children(); ++i) {
    const PlanNode* c = n->child(i);
    MPQ_ASSIGN_OR_RETURN(Table t, RunNode(c, ext, out));
    SubjectId cs = ext.assignment.at(c->id);
    if (cs != s) {
      uint64_t bytes = t.ByteSize();
      out->stats[cs].bytes_out += bytes;
      out->stats[s].bytes_in += bytes;
      out->total_transfer_bytes += bytes;
      out->num_messages++;
    }
    inputs.push_back(std::move(t));
  }

  // Execute under the assignee's engine: its keyring only.
  ExecContext ctx;
  ctx.catalog = catalog_;
  for (const auto& [rel, table] : base_tables_) {
    ctx.base_tables[rel] = &table;
  }
  auto kr = keyrings_.find(s);
  static const KeyRing kEmpty;
  ctx.keyring = kr == keyrings_.end() ? &kEmpty : &kr->second;
  ctx.dispatcher_keyring = &dispatcher_keyring_;
  ctx.public_modulus = public_modulus_;
  ctx.crypto = &crypto_;
  ctx.udfs = udfs_;
  ctx.nonce = nonce_;

  MPQ_ASSIGN_OR_RETURN(Table result, ExecuteNodeOnInputs(n, std::move(inputs), &ctx));
  nonce_ = ctx.nonce + 1;

  SubjectStats& st = out->stats[s];
  st.ops_executed++;
  st.rows_produced += result.num_rows();
  return result;
}

Result<DistributedResult> DistributedRuntime::Run(const ExtendedPlan& ext,
                                                  SubjectId user) {
  DistributedResult out;
  MPQ_ASSIGN_OR_RETURN(Table result, RunNode(ext.plan.get(), ext, &out));
  SubjectId root_s = ext.assignment.at(ext.plan->id);
  if (root_s != user) {
    uint64_t bytes = result.ByteSize();
    out.stats[root_s].bytes_out += bytes;
    out.stats[user].bytes_in += bytes;
    out.total_transfer_bytes += bytes;
    out.num_messages++;
  }
  out.result = std::move(result);
  return out;
}

}  // namespace mpq

#include "exec/distributed.h"

#include <chrono>
#include <climits>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "net/channel.h"
#include "obs/trace.h"
#include "storage/segment.h"

namespace mpq {

namespace {

/// Scheduling state of one plan node (one fragment step): where its inputs
/// come from, how many are still missing, and the mailbox they arrive in.
struct NodeState {
  const PlanNode* node = nullptr;
  int parent = -1;              ///< Index into the node vector, -1 for root.
  int slot = 0;                 ///< Operand position at the parent.
  std::vector<int> children;    ///< Indices, in operand order.
  std::atomic<size_t> missing{0};
  Channel inbox;                ///< One slot per child, filled by their tasks.
};

}  // namespace

void DistributedRuntime::DistributeKeys(const PlanKeys& keys, SubjectId user,
                                        uint64_t seed) {
  for (const KeyGroup& g : keys.groups) {
    KeyMaterial km = MakeKeyMaterial(seed, g.key_id);
    (*public_modulus_)[g.key_id] = km.paillier.n;
    g.holders.ForEach([&](AttrId s) {
      keyrings_[static_cast<SubjectId>(s)].Add(km);
    });
    dispatcher_keyring_.Add(km);
    keyrings_[user].Add(km);
  }
}

Result<DistributedResult> DistributedRuntime::Run(const ExtendedPlan& ext,
                                                  SubjectId user,
                                                  QueryTrace* trace,
                                                  uint64_t trace_parent) {
  DistributedResult out;

  // The umbrella span of this run's distributed phase; fragment and
  // transfer spans nest under it.
  Span dispatch;
  if (trace != nullptr) {
    dispatch = trace->StartSpan("dispatch", "exec", trace_parent);
  }
  const uint64_t dispatch_span = dispatch.id();

  // Each Run draws a fresh seed so re-running over changed data never
  // reuses a (key, nonce) pair; within one run, nonces are a deterministic
  // function of (seed, node, attribute) only. The CAS loop preserves the
  // SplitMix64 seed sequence while letting concurrent runs each claim a
  // distinct seed.
  uint64_t run_seed = nonce_seed_.load(std::memory_order_relaxed);
  while (!nonce_seed_.compare_exchange_weak(run_seed, SplitMix64(run_seed),
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
  }

  // Flatten the tree into dependency-edge scheduling state.
  std::vector<std::unique_ptr<NodeState>> nodes;
  std::function<int(const PlanNode*, int)> flatten =
      [&](const PlanNode* n, int parent) {
        int idx = static_cast<int>(nodes.size());
        nodes.push_back(std::make_unique<NodeState>());
        nodes[static_cast<size_t>(idx)]->node = n;
        nodes[static_cast<size_t>(idx)]->parent = parent;
        for (size_t i = 0; i < n->num_children(); ++i) {
          int c = flatten(n->child(i), idx);
          nodes[static_cast<size_t>(idx)]->children.push_back(c);
          nodes[static_cast<size_t>(c)]->slot = static_cast<int>(i);
        }
        nodes[static_cast<size_t>(idx)]->missing = n->num_children();
        return idx;
      };
  flatten(ext.plan.get(), -1);
  // The user's mailbox: the root fragment delivers the final result here.
  Channel user_inbox(1);

  // Shared run state. `mu` guards the stats sink (exact byte accounting),
  // the error slot, and pairs with `cv` for completion. Heap-allocated and
  // captured by value in every task: the final task touches `mu`/`cv` after
  // its `active` decrement, which can race with Run returning — shared
  // ownership keeps them alive for that tail.
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<size_t> active{0};
  };
  auto sync = std::make_shared<SyncState>();
  int error_node = INT_MAX;  // guarded by sync->mu; lowest node id wins
  Status error;              // guarded by sync->mu
  auto shared_udf_mu = std::make_shared<std::mutex>();

  static const KeyRing kEmptyKeyring;
  std::function<void(int)> run_node;
  // The task wrapper owns its copy of `sync`: the post-decrement notify is
  // the only code that may still run while Run() is returning, and it only
  // touches the shared SyncState — never the stack-owned closures, which are
  // guaranteed alive through run_node's body (active > 0 until after it).
  std::function<void(int)> schedule = [&run_node, sync, this](int idx) {
    auto task = [&run_node, sync, idx] {
      run_node(idx);
      if (sync->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(sync->mu);
        sync->cv.notify_all();
      }
    };
    if (pool_ == nullptr || pool_->size() == 0 || !pool_->Submit(task)) {
      // No pool, or Submit rejected (pool shutting down): run inline.
      task();
    }
  };

  // Records the run's first error (lowest plan-node id wins, so the error a
  // caller sees is scheduling-order independent).
  auto record_error = [&](int node_id, const Status& st) {
    std::lock_guard<std::mutex> lock(sync->mu);
    if (node_id < error_node) {
      error_node = node_id;
      error = st;
    }
  };

  run_node = [&](int idx) {
    NodeState& ns = *nodes[static_cast<size_t>(idx)];
    const PlanNode* n = ns.node;
    SubjectId s = ext.assignment.at(n->id);

    // One span per dispatch step, on the assignee's track. Ids derive from
    // the plan node, never from scheduling order.
    Span frag;
    if (trace != nullptr) {
      frag = trace->StartSpan(StrFormat("frag:%s", OpKindName(n->kind)),
                              "frag", dispatch_span, n->id,
                              static_cast<int>(s));
      frag.AnnStr("subject", subjects_->Name(s));
    }

    // The assignee comes on line for this dispatch step; a scheduled crash
    // in the fault plan fires exactly here, independent of thread timing.
    if (net_ != nullptr) {
      Status up = net_->BeginStep(s, n->id);
      if (!up.ok()) {
        frag.AnnInt("crashed", 1);
        frag.AnnStr("error", up.ToString());
        record_error(n->id, up);
        return;
      }
    }

    // Collect operand tables from the inbox; the sending tasks accounted
    // (and, under a SimNet, cleared) each assignee-crossing edge already.
    std::vector<Table> inputs;
    inputs.reserve(ns.children.size());
    for (size_t i = 0; i < ns.children.size(); ++i) {
      std::optional<Envelope> e = ns.inbox.TryRecv(static_cast<int>(i));
      if (!e.has_value()) {
        record_error(n->id, Status::Internal(
                                "operand missing from fragment mailbox"));
        return;
      }
      inputs.push_back(std::move(e->payload));
    }

    // Execute under the assignee's engine: its keyring only. The nonce base
    // is a PRF of the node id, so concurrent scheduling cannot change which
    // nonces a node uses — ciphertexts are bit-identical at any thread count.
    ExecContext ctx;
    ctx.catalog = catalog_;
    for (const auto& [rel, table] : base_tables_) {
      ctx.base_tables[rel] = table;
    }
    auto kr = keyrings_.find(s);
    ctx.keyring = kr == keyrings_.end() ? &kEmptyKeyring : &kr->second;
    ctx.dispatcher_keyring = &dispatcher_keyring_;
    ctx.public_modulus = public_modulus_;
    ctx.crypto = &crypto_;
    ctx.udfs = udfs_;
    ctx.udf_mu = shared_udf_mu;
    ctx.nonce = SplitMix64(run_seed ^ (static_cast<uint64_t>(n->id) + 1) *
                                          0x9e3779b97f4a7c15ull);
    ctx.nonce_seed = run_seed ^
                     (static_cast<uint64_t>(n->id) + 1) * 0x94d049bb133111ebull;
    ctx.pool = pool_;
    ctx.morsels = morsels_;
    ctx.shared_scans = shared_scans_;
    ctx.batch_size = batch_size_ == 0 ? 1 : batch_size_;
    ctx.op_profile = op_profile_;

    // Traced runs record into a fragment-local profile first: its snapshot
    // annotates the span with *this* step's arena bytes and fold counts
    // exactly, then folds into the shared profile so aggregate totals match
    // the untraced path.
    OpProfile local_profile;
    if (trace != nullptr) {
      ctx.op_profile = &local_profile;
      ctx.trace = trace;
      ctx.trace_parent = frag.id();
      ctx.trace_track = static_cast<int>(s);
    }

    Result<Table> result = ExecuteNodeOnInputs(n, std::move(inputs), &ctx);
    if (trace != nullptr) {
      OpProfileSnapshot snap = local_profile.Snapshot();
      const OpCounterSnapshot& c = snap.of(n->kind);
      frag.AnnInt("rows_in", static_cast<int64_t>(c.rows_in));
      frag.AnnInt("rows_out", static_cast<int64_t>(c.rows_out));
      if (c.arena_bytes > 0) {
        frag.AnnInt("arena_bytes", static_cast<int64_t>(c.arena_bytes));
      }
      if (c.hom_folds > 0) {
        frag.AnnInt("hom_folds", static_cast<int64_t>(c.hom_folds));
      }
      if (c.morsels > 0) {
        frag.AnnInt("morsels", static_cast<int64_t>(c.morsels));
      }
      if (op_profile_ != nullptr) op_profile_->Merge(snap);
    }
    if (!result.ok()) {
      frag.AnnStr("error", result.status().ToString());
      record_error(n->id, result.status());
      return;
    }
    {
      std::lock_guard<std::mutex> lock(sync->mu);
      SubjectStats& st = out.stats[s];
      st.ops_executed++;
      st.rows_produced += result->num_rows();
    }

    // Ship the result towards its consumer: the parent fragment, or the
    // user for the root. An assignee-crossing edge is one message — cleared
    // by the simulated network first (which may drop, delay, retry, or
    // refuse it), then accounted exactly under the stats mutex.
    Table t = std::move(result).value();
    SubjectId dst =
        ns.parent >= 0
            ? ext.assignment.at(
                  nodes[static_cast<size_t>(ns.parent)]->node->id)
            : user;
    double delivery_virtual_s = 0;
    if (dst != s) {
      // One span per assignee-crossing edge: the observable the cost
      // model's byte predictions are calibrated against.
      Span xfer;
      if (trace != nullptr) {
        xfer = trace->StartSpan("xfer", "net", frag.id(), n->id,
                                static_cast<int>(s));
        xfer.AnnStr("from", subjects_->Name(s));
        xfer.AnnStr("to", subjects_->Name(dst));
      }
      uint64_t bytes = t.ByteSize();
      if (net_ != nullptr) {
        // The fragment crosses the simulated wire as a compressed column
        // segment (or the plain column-at-a-time serialization when wire
        // compression is disabled): the sender encodes whole columns, the
        // network is charged the encoded size, and the receiver decodes —
        // so the encode/decode round-trip is exercised on every
        // assignee-crossing edge. (SimNet drops or delays whole messages,
        // never flips bytes; decode of corrupt frames is covered by the
        // serde unit tests.)
        std::string wire;
        if (compress_wire_) {
          Result<std::string> enc = EncodeSegment(t);
          if (!enc.ok()) {
            xfer.AnnStr("error", enc.status().ToString());
            record_error(n->id, enc.status());
            return;
          }
          wire = std::move(*enc);
        } else {
          wire = t.SerializeColumns();
        }
        bytes = wire.size();
        Result<DeliveryReport> d =
            net_->Deliver(s, dst, bytes, n->id, net_policy_);
        if (!d.ok()) {
          xfer.AnnInt("bytes", static_cast<int64_t>(bytes));
          xfer.AnnStr("error", d.status().ToString());
          record_error(n->id, d.status());
          return;
        }
        Result<Table> decoded = [&]() -> Result<Table> {
          if (!compress_wire_) return Table::DeserializeColumns(wire);
          Result<SegmentReader> seg = SegmentReader::Open(std::move(wire));
          if (!seg.ok()) return seg.status();
          return seg->Decode();
        }();
        if (!decoded.ok()) {
          record_error(n->id, decoded.status());
          return;
        }
        t = std::move(*decoded);
        delivery_virtual_s = d->virtual_s;
        xfer.AnnInt("attempts", d->attempts);
        xfer.AnnInt("drops", d->attempts - 1);
        xfer.AnnInt("wasted_bytes", static_cast<int64_t>(d->wasted_bytes));
        xfer.AnnDouble("virtual_s", d->virtual_s);
        std::lock_guard<std::mutex> lock(sync->mu);
        out.net.send_attempts += static_cast<uint64_t>(d->attempts);
        out.net.drops += static_cast<uint64_t>(d->attempts - 1);
        out.net.wasted_bytes += d->wasted_bytes;
        out.net.virtual_s += d->virtual_s;
      }
      xfer.AnnInt("bytes", static_cast<int64_t>(bytes));
      std::lock_guard<std::mutex> lock(sync->mu);
      out.stats[s].bytes_out += bytes;
      out.stats[dst].bytes_in += bytes;
      out.total_transfer_bytes += bytes;
      out.num_messages++;
    }
    Envelope env;
    env.slot = ns.slot;
    env.from_node = n->id;
    env.from = s;
    env.payload = std::move(t);
    env.virtual_s = delivery_virtual_s;
    if (ns.parent >= 0) {
      NodeState& ps = *nodes[static_cast<size_t>(ns.parent)];
      // Send before the decrement: the parent's task must observe every
      // operand in its mailbox (acq_rel pairs the two).
      ps.inbox.Send(std::move(env));
      if (ps.missing.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        sync->active.fetch_add(1, std::memory_order_relaxed);
        schedule(ns.parent);
      }
    } else {
      env.slot = 0;
      user_inbox.Send(std::move(env));
    }
  };

  // Seed the run with every dependency-free node (base relations), in plan
  // order. Fragments of subjects that don't feed each other now overlap.
  std::vector<int> ready;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i]->children.empty()) ready.push_back(static_cast<int>(i));
  }
  sync->active.store(ready.size(), std::memory_order_relaxed);
  for (int idx : ready) schedule(idx);

  // Wait for the DAG to drain, helping with queued work instead of idling.
  for (;;) {
    if (sync->active.load(std::memory_order_acquire) == 0) break;
    if (pool_ != nullptr && pool_->TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(sync->mu);
    sync->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return sync->active.load(std::memory_order_acquire) == 0;
    });
  }

  {
    std::lock_guard<std::mutex> lock(sync->mu);
    if (error_node != INT_MAX) return error;
  }
  Span merge;
  if (trace != nullptr) {
    merge = trace->StartSpan("merge", "exec", dispatch_span, ext.plan->id,
                             static_cast<int>(user));
  }
  std::optional<Envelope> final_msg = user_inbox.TryRecv(0);
  if (!final_msg.has_value()) {
    return Status::Internal("root fragment did not deliver a result");
  }
  out.result = std::move(final_msg->payload);
  if (trace != nullptr) {
    merge.AnnInt("rows", static_cast<int64_t>(out.result.num_rows()));
    merge.End();
    dispatch.AnnInt("transfer_bytes",
                    static_cast<int64_t>(out.total_transfer_bytes));
    dispatch.AnnInt("messages", static_cast<int64_t>(out.num_messages));
    dispatch.AnnDouble("net_virtual_s", out.net.virtual_s);
  }
  return out;
}

}  // namespace mpq

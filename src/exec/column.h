// Typed columnar storage: one ColumnData holds every cell of one column of
// an executing relation as a contiguous typed vector (int64/double/string/
// EncValue) plus an optional null mask, with a row-of-Cells fallback for the
// rare heterogeneous column. Operators iterate column-at-a-time and move
// whole columns between tables; selection vectors (row-index arrays) replace
// intermediate row materialization.

#ifndef MPQ_EXEC_COLUMN_H_
#define MPQ_EXEC_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"
#include "common/value.h"
#include "crypto/enc_value.h"

namespace mpq {

/// Row indices selected out of a table (always ascending within one batch).
using SelectionVector = std::vector<uint32_t>;

/// Physical representation of a column's cells.
enum class ColumnRep : uint8_t {
  kInt64,   ///< contiguous int64_t
  kDouble,  ///< contiguous double
  kString,  ///< contiguous std::string
  kEnc,     ///< contiguous EncValue (ciphertext cells)
  kCell,    ///< heterogeneous fallback: materialized Cells
};

const char* ColumnRepName(ColumnRep r);

/// The typed rep a plaintext column of `type` starts in.
ColumnRep RepForType(DataType type);

/// One column of a Table. The rep is a starting point, not a contract:
/// appending a cell the current rep cannot hold demotes the column to the
/// kCell fallback, so any historical row-major content remains expressible.
/// NULL cells of typed reps live in the null mask (one byte per row,
/// allocated lazily); the typed vector holds a default value in masked
/// slots. The kCell rep represents NULLs as null cells and never carries a
/// mask.
class ColumnData {
 public:
  ColumnData() = default;
  explicit ColumnData(ColumnRep rep) : rep_(rep) {}

  ColumnRep rep() const { return rep_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool has_nulls() const { return !nulls_.empty(); }
  bool IsNull(size_t i) const { return !nulls_.empty() && nulls_[i] != 0; }

  /// Typed storage. Valid only for the matching rep.
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  const std::vector<std::string>& str() const { return str_; }
  const std::vector<EncValue>& enc() const { return enc_; }
  const std::vector<Cell>& cells() const { return cells_; }
  std::vector<EncValue>& enc() { return enc_; }
  std::vector<Cell>& cells() { return cells_; }

  void Reserve(size_t n);
  void Clear();

  /// Appends one cell, demoting the rep if it cannot hold it.
  void Append(Cell c);
  void AppendValue(Value v);
  void AppendNull();

  /// Materializes row `i` as a Cell.
  Cell GetCell(size_t i) const;

  /// The ciphertext at row `i`: a direct reference for rep kEnc, the cell
  /// variant's payload on the kCell fallback. Precondition: row `i` holds
  /// an EncValue.
  const EncValue& EncAt(size_t i) const {
    return rep_ == ColumnRep::kEnc ? enc_[i] : cells_[i].enc();
  }

  /// Plaintext view of row `i`; rep must not be kEnc (kCell rows must hold
  /// plain cells).
  Value GetValue(size_t i) const;

  /// Appends row `i` of `src` (any rep combination).
  void AppendFrom(const ColumnData& src, size_t i);

  /// Appends rows [begin, end) of `src`.
  void AppendRange(const ColumnData& src, size_t begin, size_t end);

  /// Gather: appends src rows sel[0..n) in order.
  void AppendSelected(const ColumnData& src, const uint32_t* sel, size_t n);

  /// Appends row `i` of `src` `times` times (cartesian left side).
  void AppendRepeated(const ColumnData& src, size_t i, size_t times);

  /// Splices `src` onto this column, stealing its buffers when possible
  /// (whole-vector move when this column is empty and reps match; otherwise
  /// element moves). `src` is left empty.
  void MoveAppend(ColumnData&& src);

  /// Converts typed storage to the kCell fallback (no-op when already
  /// there).
  void DemoteToCells();

  /// Replaces this column's content with a contiguous ciphertext vector.
  void AdoptEnc(std::vector<EncValue> encs) {
    Clear();
    rep_ = ColumnRep::kEnc;
    enc_ = std::move(encs);
    size_ = enc_.size();
  }

  /// Payload bytes, matching the historical per-Cell accounting: null 1,
  /// int64/double 8, string len+4, ciphertext blob+8.
  uint64_t ByteSize() const;

 private:
  /// Extends the null mask to size_ entries (all zero) if absent.
  void EnsureNulls();
  /// Appends `n` not-null entries to the mask if it exists.
  void GrowNulls(size_t n);

  ColumnRep rep_ = ColumnRep::kCell;
  size_t size_ = 0;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
  std::vector<EncValue> enc_;
  std::vector<Cell> cells_;
  std::vector<uint8_t> nulls_;  ///< empty, or size_ entries (1 = NULL)
};

/// Appends the grouping/join key bytes of row `r` to `out` — the same
/// equality semantics as CellGroupKey: plaintext by canonical serialization,
/// DET/OPE ciphertexts by blob, RND/HOM unsupported.
Status AppendKeyBytes(const ColumnData& col, size_t r, std::string* out);

/// Dictionary encoder over a string or DET/OPE ciphertext column: interns
/// each distinct value (string content, ciphertext blob) into a dense
/// first-occurrence code, so join/group-by keys over variable-width columns
/// become fixed-width words with zero byte copies — values are referenced by
/// the row of their first occurrence. Codes are comparable only within one
/// dictionary; a probe column encoded against a build dictionary maps unseen
/// values to kMiss. RND/HOM ciphertext rows fail with the same kUnsupported
/// status as AppendKeyBytes, preserving key-semantics errors exactly.
class ColumnDict {
 public:
  /// Probe-miss marker (never a valid code: codes are dense row ranks).
  static constexpr uint32_t kMiss = 0xffffffffu;

  /// `col` must outlive the dictionary and stay unmodified.
  explicit ColumnDict(const ColumnData* col) : col_(col) {}

  /// Codes of rows [begin, end) in first-occurrence intern order; null rows
  /// get code 0 (callers track nulls separately, null never reaches the
  /// dictionary). `codes` receives end - begin entries.
  Status EncodeRange(size_t begin, size_t end, uint32_t* codes);

  /// Probe-only encoding of another column's rows against this dictionary:
  /// values absent from it get kMiss, null rows get 0. `probe` must have the
  /// same rep as the dictionary's column. Read-only, safe to call
  /// concurrently once building is done.
  Status ProbeRange(const ColumnData& probe, size_t begin, size_t end,
                    uint32_t* codes) const;

  /// Number of distinct interned values.
  size_t size() const { return rep_rows_.size(); }

  /// Row (in the dictionary's own column) holding code `code`'s value.
  uint32_t RepRow(uint32_t code) const { return rep_rows_[code]; }

 private:
  const ColumnData* col_;
  FlatHashIndex index_;
  std::vector<uint32_t> rep_rows_;  ///< code -> first-occurrence row
};

/// Builds a column from materialized cells, choosing the typed rep from the
/// first non-null cell (heterogeneous content demotes to kCell).
ColumnData ColumnFromCells(std::vector<Cell> cells);

/// Builds a ciphertext column from a contiguous EncValue vector.
ColumnData ColumnFromEnc(std::vector<EncValue> encs);

}  // namespace mpq

#endif  // MPQ_EXEC_COLUMN_H_

// Versioned table storage: MVCC snapshots over the copy-on-write column
// payloads of exec/table.h. Writers mutate a private copy of one relation's
// Table (cloning only the columns they touch, via col_mut) and publish the
// result as a new immutable Snapshot; readers pin the current Snapshot once
// and see a frozen, fully-committed state for the whole query — an in-flight
// query never observes a partial write. Publication is a shared_ptr swap, so
// readers never block on writers and writers never wait for readers.
//
// Hotspot counters: contended numeric cells (quota counters, balances) can
// be detached into MRV counters (exec/mrv.h) keyed by (relation, value
// column, key). Counter updates run outside the writer lock on per-record
// atomics — they do not serialize on one record or on table writes — and
// are folded back into the snapshot-visible cell by FlushCounters() or the
// background maintenance loop.

#ifndef MPQ_EXEC_TABLE_STORE_H_
#define MPQ_EXEC_TABLE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "catalog/catalog.h"
#include "exec/mrv.h"
#include "exec/table.h"
#include "storage/segment.h"

namespace mpq {

/// One immutable published version of every stored relation. Holding the
/// shared_ptr pins every table (and the column payloads inside them) for as
/// long as a reader needs them, independent of later publishes.
struct Snapshot {
  /// Monotonically increasing publication id — the snapshot epoch serving
  /// layers key cached plans by.
  uint64_t id = 0;
  std::map<RelId, std::shared_ptr<const Table>> tables;
  /// Relations demoted to compressed segments (TableStore::MakeCold). A
  /// cold relation has no entry in `tables`; readers decode lazily — Get()
  /// materializes on first touch (memoized, shared across snapshots until
  /// the relation is written again), and segment-aware scans can read the
  /// SegmentedTable directly to skip segments via zone maps.
  std::map<RelId, std::shared_ptr<const SegmentedTable>> cold;

  /// The pinned table of `rel`, or nullptr when the store holds none. Cold
  /// relations decode on first call (cached thereafter).
  const Table* Get(RelId rel) const {
    auto it = tables.find(rel);
    if (it != tables.end()) return it->second.get();
    auto c = cold.find(rel);
    if (c == cold.end()) return nullptr;
    Result<const Table*> t = c->second->Materialize();
    return t.ok() ? *t : nullptr;
  }

  /// The segment-backed form of `rel`, or nullptr when `rel` is hot (or
  /// absent).
  const SegmentedTable* GetCold(RelId rel) const {
    auto c = cold.find(rel);
    return c == cold.end() ? nullptr : c->second.get();
  }
};

/// The store. All methods are thread-safe; reads are wait-free snapshot
/// pins, writes serialize on one writer lock (single-writer commit).
class TableStore {
 public:
  TableStore() = default;
  ~TableStore();

  TableStore(const TableStore&) = delete;
  TableStore& operator=(const TableStore&) = delete;

  /// Registers (or replaces) the data of a base relation and publishes a
  /// new snapshot containing it.
  uint64_t Put(RelId rel, Table data);

  /// The current snapshot (cheap: one shared_ptr copy under a mutex).
  std::shared_ptr<const Snapshot> Current() const;

  /// Id of the current snapshot without pinning it.
  uint64_t snapshot_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Single-writer commit: runs `mutate` on a private copy of `rel`'s table
  /// (column clones are copy-on-write — untouched columns are pointer
  /// copies) and publishes the result as a new snapshot. When `mutate`
  /// fails nothing is published. Returns the new snapshot id.
  Result<uint64_t> Mutate(RelId rel,
                          const std::function<Status(Table*)>& mutate);

  /// Demotes `rel` to compressed segments of `rows_per_segment` rows (zero
  /// means one segment) and publishes a snapshot where the relation is
  /// cold: readers decode lazily via Snapshot::Get / GetCold. Writing the
  /// relation again (Put / Mutate / FlushCounters) warms it back to a
  /// plain table.
  Result<uint64_t> MakeCold(RelId rel, size_t rows_per_segment);

  // ---- MRV hotspot counters -----------------------------------------------

  /// Detaches the int64 cell (`value_col`) of the row where `key_col` ==
  /// `key` into an MRV counter split over `num_records` records, seeded
  /// with the cell's current value. The cell keeps serving its last flushed
  /// value to queries; updates go through MrvAdd/MrvSub.
  Status MrvAttach(RelId rel, int key_col, int64_t key, int value_col,
                   size_t num_records);

  /// Adds `delta` >= 0 to the counter (rel, value_col, key).
  Status MrvAdd(RelId rel, int value_col, int64_t key, int64_t delta);

  /// Subtracts `delta` >= 0; fails without effect when the counter holds
  /// less than `delta` (invariant total >= 0).
  Status MrvSub(RelId rel, int value_col, int64_t key, int64_t delta);

  /// The counter's live total (including updates not yet flushed).
  Result<int64_t> MrvTotal(RelId rel, int value_col, int64_t key) const;

  Result<MrvStats> MrvStatsFor(RelId rel, int value_col, int64_t key) const;

  /// True when some counter is attached to a cell of (rel, col) — such
  /// columns reject plain UPDATEs (the counter API is the write path).
  bool MrvCoversColumn(RelId rel, int col) const;

  /// Folds every counter's current total into its table cell and publishes
  /// the affected relations as new snapshots. Counters whose key row was
  /// deleted are skipped (their value stays readable via MrvTotal).
  Status FlushCounters();

  /// Runs Balance + AdjustStep over every counter once — one background
  /// maintenance round. Exposed for deterministic tests.
  void MaintainCounters();

  /// Starts a background thread running MaintainCounters every `period_ms`
  /// (no flush — snapshot visibility stays explicit). No-op when running.
  void StartMaintenance(int64_t period_ms);
  void StopMaintenance();

 private:
  struct MrvEntry {
    int key_col = -1;
    std::unique_ptr<MrvCounter> counter;
  };
  /// Registry key: (rel, value column, row key).
  using MrvKey = std::tuple<RelId, int, int64_t>;

  uint64_t PublishLocked(RelId rel, std::shared_ptr<const Table> table);
  Result<uint64_t> MutateLocked(RelId rel,
                                const std::function<Status(Table*)>& mutate);
  Result<MrvCounter*> FindCounter(RelId rel, int value_col,
                                  int64_t key) const;

  /// Serializes writers (Put / Mutate / FlushCounters).
  std::mutex writer_mu_;
  /// Guards `current_` (the publication point).
  mutable std::mutex state_mu_;
  std::shared_ptr<const Snapshot> current_ =
      std::make_shared<const Snapshot>();
  std::atomic<uint64_t> epoch_{0};

  /// Counter registry: attach takes the exclusive lock, per-op lookups the
  /// shared one (the counters themselves are lock-free beyond that).
  mutable std::shared_mutex mrv_mu_;
  std::map<MrvKey, MrvEntry> counters_;

  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::thread maint_thread_;
};

}  // namespace mpq

#endif  // MPQ_EXEC_TABLE_STORE_H_

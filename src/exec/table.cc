#include "exec/table.h"

#include <cstring>

namespace mpq {

ColumnRep RepForColumn(const ExecColumn& col) {
  return col.encrypted ? ColumnRep::kEnc : RepForType(col.type);
}

Table::Table(std::vector<ExecColumn> columns) : columns_(std::move(columns)) {
  data_.reserve(columns_.size());
  for (const ExecColumn& c : columns_) {
    data_.push_back(std::make_shared<ColumnData>(RepForColumn(c)));
  }
}

int Table::ColIndex(AttrId attr) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].attr == attr) return static_cast<int>(i);
  }
  return -1;
}

void Table::AddColumn(ExecColumn col, ColumnData d) {
  AddColumn(std::move(col), std::make_shared<ColumnData>(std::move(d)));
}

void Table::AddColumn(ExecColumn col, std::shared_ptr<ColumnData> d) {
  assert((columns_.empty() || d->size() == num_rows_) &&
         "AddColumn: row count mismatch");
  if (columns_.empty()) num_rows_ = d->size();
  columns_.push_back(std::move(col));
  data_.push_back(std::move(d));
}

void Table::AddRow(std::vector<Cell> row) {
  assert(row.size() == columns_.size() && "AddRow: arity mismatch");
  for (size_t c = 0; c < data_.size(); ++c) {
    col_mut(c).Append(std::move(row[c]));
  }
  num_rows_++;
}

std::vector<Cell> Table::row(size_t i) const {
  std::vector<Cell> out;
  out.reserve(data_.size());
  for (const auto& col : data_) out.push_back(col->GetCell(i));
  return out;
}

void Table::AppendRowFrom(const Table& src, size_t r) {
  assert(src.num_columns() == num_columns());
  for (size_t c = 0; c < data_.size(); ++c) {
    col_mut(c).AppendFrom(*src.data_[c], r);
  }
  num_rows_++;
}

void Table::ReserveRows(size_t n) {
  for (size_t c = 0; c < data_.size(); ++c) col_mut(c).Reserve(n);
}

uint64_t Table::ByteSize() const {
  uint64_t total = 0;
  for (const auto& col : data_) total += col->ByteSize();
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns_[i].name;
    if (columns_[i].encrypted) {
      out += "*";
    }
  }
  out += "\n";
  size_t n = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < data_.size(); ++c) {
      if (c > 0) out += " | ";
      out += data_[c]->GetCell(r).ToString();
    }
    out += "\n";
  }
  if (num_rows_ > n) {
    out += "... (" + std::to_string(num_rows_ - n) + " more rows)\n";
  }
  return out;
}

// ------------------------------------------------------------------ serde ---
//
// Column-at-a-time wire format: a small header, then each column's metadata
// followed by its contiguous payload (typed vector, optional null mask).
// Little-endian throughout; strings and blobs are length-prefixed.

namespace {

constexpr char kMagic[4] = {'M', 'P', 'Q', 'C'};
// v2 added the per-string-column encoding byte (plain vs dictionary).
constexpr uint8_t kVersion = 2;

// String-column payload encodings.
constexpr uint8_t kEncodingPlain = 0;
constexpr uint8_t kEncodingDict = 1;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutEnc(std::string* out, const EncValue& ev) {
  PutU8(out, static_cast<uint8_t>(ev.scheme));
  PutU64(out, ev.key_id);
  PutU64(out, static_cast<uint64_t>(ev.aux));
  PutBytes(out, ev.blob);
}

/// Bounds-checked reader over the serialized bytes.
struct Reader {
  const std::string& buf;
  size_t pos = 0;

  bool Take(void* dst, size_t n) {
    if (pos + n > buf.size()) return false;
    std::memcpy(dst, buf.data() + pos, n);
    pos += n;
    return true;
  }
  bool U8(uint8_t* v) { return Take(v, 1); }
  bool U32(uint32_t* v) { return Take(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Take(v, sizeof(*v)); }
  bool Bytes(std::string* s) {
    uint32_t n;
    if (!U32(&n) || pos + n > buf.size()) return false;
    s->assign(buf.data() + pos, n);
    pos += n;
    return true;
  }
  bool Enc(EncValue* ev) {
    uint8_t scheme;
    uint64_t aux;
    if (!U8(&scheme) || scheme > static_cast<uint8_t>(EncScheme::kPaillier) ||
        !U64(&ev->key_id) || !U64(&aux) || !Bytes(&ev->blob)) {
      return false;
    }
    ev->scheme = static_cast<EncScheme>(scheme);
    ev->aux = static_cast<int64_t>(aux);
    return true;
  }
};

Status Corrupt() {
  return Status::InvalidArgument("corrupt serialized table");
}

}  // namespace

std::string Table::SerializeColumns() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU8(&out, kVersion);
  PutU32(&out, static_cast<uint32_t>(columns_.size()));
  PutU64(&out, num_rows_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ExecColumn& col = columns_[c];
    PutU32(&out, col.attr);
    PutBytes(&out, col.name);
    PutU8(&out, static_cast<uint8_t>(col.type));
    PutU8(&out, col.encrypted ? 1 : 0);
    PutU8(&out, static_cast<uint8_t>(col.scheme));
    PutU64(&out, col.key_id);
    PutU8(&out, col.hom_avg ? 1 : 0);

    const ColumnData& d = *data_[c];
    PutU8(&out, static_cast<uint8_t>(d.rep()));
    PutU8(&out, d.has_nulls() ? 1 : 0);
    if (d.has_nulls()) {
      for (size_t r = 0; r < d.size(); ++r) {
        PutU8(&out, d.IsNull(r) ? 1 : 0);
      }
    }
    switch (d.rep()) {
      case ColumnRep::kInt64:
        out.append(reinterpret_cast<const char*>(d.i64().data()), 8 * d.size());
        break;
      case ColumnRep::kDouble:
        out.append(reinterpret_cast<const char*>(d.f64().data()), 8 * d.size());
        break;
      case ColumnRep::kString: {
        // Dictionary-encode when the codes + distinct values are strictly
        // smaller than the plain payload — a deterministic function of the
        // column content, so the frame (and its byte count) is identical at
        // any thread count.
        ColumnDict dict(&d);
        std::vector<uint32_t> codes(d.size());
        uint64_t plain_cost = 0;
        for (const std::string& s : d.str()) plain_cost += 4 + s.size();
        uint64_t dict_cost = 4 + 4 * static_cast<uint64_t>(d.size());
        if (dict.EncodeRange(0, d.size(), codes.data()).ok()) {
          for (uint32_t k = 0; k < dict.size(); ++k) {
            dict_cost += 4 + d.str()[dict.RepRow(k)].size();
          }
        } else {
          dict_cost = plain_cost + 1;  // unreachable for kString; be safe
        }
        if (dict_cost < plain_cost) {
          PutU8(&out, kEncodingDict);
          PutU32(&out, static_cast<uint32_t>(dict.size()));
          for (uint32_t k = 0; k < dict.size(); ++k) {
            PutBytes(&out, d.str()[dict.RepRow(k)]);
          }
          out.append(reinterpret_cast<const char*>(codes.data()),
                     4 * codes.size());
        } else {
          PutU8(&out, kEncodingPlain);
          for (const std::string& s : d.str()) PutBytes(&out, s);
        }
        break;
      }
      case ColumnRep::kEnc:
        for (const EncValue& ev : d.enc()) PutEnc(&out, ev);
        break;
      case ColumnRep::kCell:
        for (const Cell& cell : d.cells()) {
          PutU8(&out, cell.is_encrypted() ? 1 : 0);
          if (cell.is_encrypted()) {
            PutEnc(&out, cell.enc());
          } else {
            PutBytes(&out, cell.plain().Serialize());
          }
        }
        break;
    }
  }
  return out;
}

Result<Table> Table::DeserializeColumns(const std::string& bytes) {
  Reader r{bytes};
  char magic[4];
  uint8_t version;
  uint32_t num_cols;
  uint64_t num_rows;
  if (!r.Take(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 || !r.U8(&version) ||
      version != kVersion || !r.U32(&num_cols) || !r.U64(&num_rows)) {
    return Corrupt();
  }
  // Every row of a materialized column costs at least one payload byte, so
  // a row count beyond the buffer size is corrupt — reject before any
  // row-count-sized allocation or row-count-sized downstream work. (This
  // also caps the degenerate zero-column frame, whose row count nothing
  // else bounds.)
  if (num_rows > bytes.size()) return Corrupt();
  Table t;
  for (uint32_t c = 0; c < num_cols; ++c) {
    ExecColumn col;
    uint8_t type, encrypted, scheme, hom_avg;
    if (!r.U32(&col.attr) || !r.Bytes(&col.name) || !r.U8(&type) ||
        !r.U8(&encrypted) || !r.U8(&scheme) || !r.U64(&col.key_id) ||
        !r.U8(&hom_avg)) {
      return Corrupt();
    }
    // Enum fields must decode to a declared enumerator: a garbage type or
    // scheme byte would otherwise flow into every downstream switch over
    // column metadata.
    if (type > static_cast<uint8_t>(DataType::kString) ||
        scheme > static_cast<uint8_t>(EncScheme::kPaillier)) {
      return Corrupt();
    }
    col.type = static_cast<DataType>(type);
    col.encrypted = encrypted != 0;
    col.scheme = static_cast<EncScheme>(scheme);
    col.hom_avg = hom_avg != 0;

    uint8_t rep, has_nulls;
    if (!r.U8(&rep) || !r.U8(&has_nulls)) return Corrupt();
    std::vector<uint8_t> nulls;
    if (has_nulls) {
      nulls.resize(num_rows);
      if (!r.Take(nulls.data(), num_rows)) return Corrupt();
    }
    ColumnData d(static_cast<ColumnRep>(rep));
    d.Reserve(num_rows);
    auto row_null = [&](uint64_t i) { return has_nulls && nulls[i] != 0; };
    switch (static_cast<ColumnRep>(rep)) {
      case ColumnRep::kInt64:
        for (uint64_t i = 0; i < num_rows; ++i) {
          int64_t v;
          if (!r.Take(&v, sizeof(v))) return Corrupt();
          if (row_null(i)) {
            d.AppendNull();
          } else {
            d.AppendValue(Value(v));
          }
        }
        break;
      case ColumnRep::kDouble:
        for (uint64_t i = 0; i < num_rows; ++i) {
          double v;
          if (!r.Take(&v, sizeof(v))) return Corrupt();
          if (row_null(i)) {
            d.AppendNull();
          } else {
            d.AppendValue(Value(v));
          }
        }
        break;
      case ColumnRep::kString: {
        uint8_t encoding;
        if (!r.U8(&encoding)) return Corrupt();
        if (encoding == kEncodingDict) {
          uint32_t num_values;
          if (!r.U32(&num_values) || num_values > bytes.size()) {
            return Corrupt();
          }
          std::vector<std::string> values(num_values);
          for (uint32_t k = 0; k < num_values; ++k) {
            if (!r.Bytes(&values[k])) return Corrupt();
          }
          for (uint64_t i = 0; i < num_rows; ++i) {
            uint32_t code;
            if (!r.U32(&code)) return Corrupt();
            if (row_null(i)) {
              d.AppendNull();  // the code of a null row is padding
            } else if (code >= num_values) {
              return Corrupt();
            } else {
              d.AppendValue(Value(values[code]));
            }
          }
        } else if (encoding == kEncodingPlain) {
          for (uint64_t i = 0; i < num_rows; ++i) {
            std::string s;
            if (!r.Bytes(&s)) return Corrupt();
            if (row_null(i)) {
              d.AppendNull();
            } else {
              d.AppendValue(Value(std::move(s)));
            }
          }
        } else {
          return Corrupt();
        }
        break;
      }
      case ColumnRep::kEnc:
        for (uint64_t i = 0; i < num_rows; ++i) {
          EncValue ev;
          if (!r.Enc(&ev)) return Corrupt();
          if (row_null(i)) {
            d.AppendNull();
          } else {
            d.Append(Cell(std::move(ev)));
          }
        }
        break;
      case ColumnRep::kCell:
        for (uint64_t i = 0; i < num_rows; ++i) {
          uint8_t is_enc;
          if (!r.U8(&is_enc)) return Corrupt();
          if (is_enc) {
            EncValue ev;
            if (!r.Enc(&ev)) return Corrupt();
            d.Append(Cell(std::move(ev)));
          } else {
            std::string s;
            if (!r.Bytes(&s)) return Corrupt();
            MPQ_ASSIGN_OR_RETURN(Value v, Value::Deserialize(s));
            d.Append(Cell(std::move(v)));
          }
        }
        break;
      default:
        return Corrupt();
    }
    if (d.size() != num_rows) return Corrupt();
    t.AddColumn(std::move(col), std::move(d));
  }
  if (num_cols == 0) t.num_rows_ = num_rows;
  if (r.pos != bytes.size()) return Corrupt();
  return t;
}

}  // namespace mpq

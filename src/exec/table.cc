#include "exec/table.h"

namespace mpq {

int Table::ColIndex(AttrId attr) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].attr == attr) return static_cast<int>(i);
  }
  return -1;
}

uint64_t Table::ByteSize() const {
  uint64_t total = 0;
  for (const auto& row : rows_) {
    for (const Cell& c : row) total += c.ByteSize();
  }
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns_[i].name;
    if (columns_[i].encrypted) {
      out += "*";
    }
  }
  out += "\n";
  size_t n = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows_[r][c].ToString();
    }
    out += "\n";
  }
  if (rows_.size() > n) {
    out += "... (" + std::to_string(rows_.size() - n) + " more rows)\n";
  }
  return out;
}

}  // namespace mpq

// Write executor: applies a bound INSERT / UPDATE / DELETE (sql/binder.h)
// to the versioned store as one atomic snapshot publication. Statement
// authorization reuses the policy machinery: writing is the strongest way
// to "see" an attribute, so the writing subject needs plaintext visibility
// (P_S, Sec 4) over every attribute the statement writes or its filter
// reads — the write-side counterpart of the Def 4.1 read checks.

#ifndef MPQ_EXEC_WRITE_EXECUTOR_H_
#define MPQ_EXEC_WRITE_EXECUTOR_H_

#include "authz/policy.h"
#include "exec/table_store.h"
#include "sql/binder.h"

namespace mpq {

/// Outcome of one committed write statement.
struct WriteResult {
  uint64_t rows_affected = 0;
  /// Snapshot the statement published — queries pinning this id (or later)
  /// see the write, earlier pins do not.
  uint64_t snapshot_id = 0;
};

class WriteExecutor {
 public:
  WriteExecutor(const Policy* policy, TableStore* store)
      : policy_(policy), store_(store) {}

  /// Is `subject` authorized to run `write`? OK, or kUnauthorized naming
  /// the attributes it lacks plaintext visibility over.
  Status CheckAuthorized(const BoundWrite& write, SubjectId subject) const;

  /// Authorizes and commits `write`. All-or-nothing: on any error no
  /// snapshot is published and readers keep seeing the previous state.
  Result<WriteResult> Execute(const BoundWrite& write, SubjectId subject);

 private:
  Status Apply(const BoundWrite& write, Table* table,
               uint64_t* rows_affected) const;

  const Policy* policy_;
  TableStore* store_;
};

}  // namespace mpq

#endif  // MPQ_EXEC_WRITE_EXECUTOR_H_

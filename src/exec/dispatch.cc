#include "exec/dispatch.h"

#include <map>

#include "common/rng.h"
#include "common/str_util.h"

namespace mpq {

namespace {

/// A SQL query block under construction (select/from/where/group/having).
struct QueryBlock {
  std::vector<std::string> select_items;
  std::vector<std::string> from_items;
  std::vector<std::string> join_conds;
  std::vector<std::string> where;
  std::vector<std::string> group_by;
  std::vector<std::string> having;
  bool grouped = false;

  bool trivial_select() const { return select_items.empty(); }

  std::string Render() const {
    std::string out = "SELECT ";
    out += trivial_select() ? "*" : Join(select_items, ", ");
    out += " FROM ";
    out += Join(from_items, " JOIN ");
    if (!join_conds.empty()) {
      out += " ON ";
      out += Join(join_conds, " AND ");
    }
    if (!where.empty()) {
      out += " WHERE ";
      out += Join(where, " AND ");
    }
    if (!group_by.empty()) {
      out += " GROUP BY ";
      out += Join(group_by, ", ");
    }
    if (!having.empty()) {
      out += " HAVING ";
      out += Join(having, " AND ");
    }
    return out;
  }

  /// Collapses this block into a single derived-table from-item.
  void Nest() {
    std::string nested = "(" + Render() + ")";
    *this = QueryBlock{};
    from_items.push_back(nested);
  }
};

struct FragmentBuilder {
  const Catalog* catalog;
  const PlanKeys* keys;
  const ExtendedPlan* ext;
  SubjectId fragment_subject;
  // Output: fragments called by this one.
  std::vector<int>* upstream;
  const std::unordered_map<int, int>* fragment_of;  // node id → fragment id

  std::string AttrName(AttrId a) const { return catalog->attrs().Name(a); }

  std::string KeyName(AttrId a) const {
    const KeyGroup* g = keys->GroupOf(a);
    return g != nullptr ? StrFormat("k%llu",
                                    static_cast<unsigned long long>(g->key_id))
                        : "k?";
  }

  std::string PredText(const Predicate& p) const {
    std::string out = AttrName(p.lhs);
    out += CmpOpName(p.op);
    out += p.rhs_is_attr ? AttrName(p.rhs_attr) : p.rhs_value.ToString();
    return out;
  }

  /// Builds the block for `n`, descending only within the same fragment.
  QueryBlock Build(const PlanNode* n) {
    // Fragment boundary: a child executed by another subject becomes a
    // ⟦req_k⟧ reference.
    auto child_block = [&](const PlanNode* c) -> QueryBlock {
      int cf = fragment_of->at(c->id);
      if (cf != fragment_of->at(n->id)) {
        upstream->push_back(cf);
        QueryBlock qb;
        qb.from_items.push_back(StrFormat("[[req_%d]]", cf));
        return qb;
      }
      return Build(c);
    };

    switch (n->kind) {
      case OpKind::kBase: {
        QueryBlock qb;
        qb.from_items.push_back(catalog->Get(n->rel).name);
        return qb;
      }
      case OpKind::kProject: {
        QueryBlock qb = child_block(n->child(0));
        if (!qb.trivial_select() || qb.grouped) qb.Nest();
        qb.select_items.clear();
        n->attrs.ForEach(
            [&](AttrId a) { qb.select_items.push_back(AttrName(a)); });
        return qb;
      }
      case OpKind::kSelect: {
        QueryBlock qb = child_block(n->child(0));
        for (const Predicate& p : n->predicates) {
          if (qb.grouped) {
            qb.having.push_back(PredText(p));
          } else {
            qb.where.push_back(PredText(p));
          }
        }
        return qb;
      }
      case OpKind::kCartesian:
      case OpKind::kJoin: {
        QueryBlock l = child_block(n->child(0));
        QueryBlock r = child_block(n->child(1));
        if (!l.trivial_select() || l.grouped || !l.where.empty()) l.Nest();
        if (!r.trivial_select() || r.grouped || !r.where.empty()) r.Nest();
        QueryBlock qb;
        qb.from_items = l.from_items;
        qb.from_items.insert(qb.from_items.end(), r.from_items.begin(),
                             r.from_items.end());
        for (const Predicate& p : n->predicates) {
          qb.join_conds.push_back(PredText(p));
        }
        if (n->kind == OpKind::kCartesian && qb.join_conds.empty()) {
          qb.join_conds.push_back("1=1");
        }
        return qb;
      }
      case OpKind::kGroupBy: {
        QueryBlock qb = child_block(n->child(0));
        if (qb.grouped) qb.Nest();
        qb.select_items.clear();
        n->group_by.ForEach(
            [&](AttrId a) { qb.select_items.push_back(AttrName(a)); });
        for (const Aggregate& agg : n->aggregates) {
          std::string item = agg.func == AggFunc::kCountStar
                                 ? std::string("count(*)")
                                 : StrFormat("%s(%s)", AggFuncName(agg.func),
                                             AttrName(agg.attr).c_str());
          item += " AS " + AttrName(agg.out_attr);
          qb.select_items.push_back(item);
        }
        n->group_by.ForEach(
            [&](AttrId a) { qb.group_by.push_back(AttrName(a)); });
        qb.grouped = true;
        return qb;
      }
      case OpKind::kUdf: {
        QueryBlock qb = child_block(n->child(0));
        if (qb.grouped) qb.Nest();
        std::vector<std::string> args;
        n->udf_inputs.ForEach([&](AttrId a) { args.push_back(AttrName(a)); });
        qb.select_items.push_back(StrFormat(
            "%s(%s) AS %s", n->udf_name.c_str(), Join(args, ",").c_str(),
            AttrName(n->udf_output).c_str()));
        return qb;
      }
      case OpKind::kEncrypt:
      case OpKind::kDecrypt: {
        QueryBlock qb = child_block(n->child(0));
        if (qb.grouped && n->kind == OpKind::kDecrypt) {
          // Decryption of an aggregate result folds into the select list.
        }
        const char* fn = n->kind == OpKind::kEncrypt ? "encrypt" : "decrypt";
        n->attrs.ForEach([&](AttrId a) {
          qb.select_items.push_back(
              StrFormat("%s(%s,%s) AS %s", fn, AttrName(a).c_str(),
                        KeyName(a).c_str(), AttrName(a).c_str()));
        });
        return qb;
      }
    }
    return QueryBlock{};
  }
};

}  // namespace

uint64_t SignPayload(SubjectId signer, const std::string& payload) {
  uint64_t priv = SplitMix64(0x5157ull * (signer + 1) + 7);
  uint64_t h = priv;
  for (unsigned char c : payload) h = SplitMix64(h ^ c);
  return h;
}

bool VerifySignature(SubjectId signer, const std::string& payload,
                     uint64_t sig) {
  return SignPayload(signer, payload) == sig;
}

Result<DispatchPlan> BuildDispatch(const ExtendedPlan& ext,
                                   const PlanKeys& keys, const Policy& policy,
                                   SubjectId user) {
  // 1. Fragment the plan: a node starts a new fragment iff its assignee
  // differs from its parent's.
  std::unordered_map<int, int> fragment_of;
  std::vector<std::pair<int, SubjectId>> fragments;  // root node id, subject
  {
    struct Item {
      const PlanNode* node;
      int parent_frag;
    };
    std::vector<Item> work{{ext.plan.get(), -1}};
    while (!work.empty()) {
      auto [n, pf] = work.back();
      work.pop_back();
      SubjectId s = ext.assignment.at(n->id);
      int frag = pf;
      if (pf < 0 || fragments[static_cast<size_t>(pf)].second != s) {
        frag = static_cast<int>(fragments.size());
        fragments.emplace_back(n->id, s);
      }
      fragment_of[n->id] = frag;
      for (const auto& c : n->children) {
        work.push_back({c.get(), frag});
      }
    }
  }

  DispatchPlan plan;
  plan.user = user;

  // 2. Render each fragment.
  for (size_t f = 0; f < fragments.size(); ++f) {
    auto [root_id, subject] = fragments[f];
    const PlanNode* frag_root = FindNode(ext.plan.get(), root_id);
    DispatchMessage msg;
    msg.fragment_id = static_cast<int>(f);
    msg.to = subject;

    FragmentBuilder fb;
    fb.catalog = &policy.catalog();
    fb.keys = &keys;
    fb.ext = &ext;
    fb.fragment_subject = subject;
    fb.upstream = &msg.upstream_fragments;
    fb.fragment_of = &fragment_of;
    msg.sub_query = fb.Build(frag_root).Render();

    // 3. Keys: the subject receives the keys it holds per Def 6.1.
    for (const KeyGroup& g : keys.groups) {
      if (g.holders.Contains(subject)) msg.key_ids.push_back(g.key_id);
    }

    // 4. Sign with the user's (simulated) private key.
    std::string payload = msg.sub_query;
    for (uint64_t k : msg.key_ids) payload += "|" + std::to_string(k);
    msg.signature = SignPayload(user, payload);
    plan.messages.push_back(std::move(msg));
  }
  return plan;
}

std::string DispatchPlan::ToString(const SubjectRegistry& subjects) const {
  std::string out;
  for (const DispatchMessage& m : messages) {
    out += StrFormat("req_%d -> %s", m.fragment_id,
                     subjects.Name(m.to).c_str());
    if (!m.key_ids.empty()) {
      out += " (keys:";
      for (uint64_t k : m.key_ids) out += " k" + std::to_string(k);
      out += ")";
    }
    out += StrFormat(" [sig=%016llx]\n  %s\n",
                     static_cast<unsigned long long>(m.signature),
                     m.sub_query.c_str());
  }
  return out;
}

}  // namespace mpq

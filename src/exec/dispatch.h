// Sub-query dispatch (Sec 6, step 5 / Fig 8): partitions an extended plan
// into per-assignee fragments, renders each fragment as a SQL-style
// sub-query (with encrypt/decrypt calls and references to upstream
// fragments), and wraps each in a signed, sealed envelope carrying the keys
// the recipient needs.
//
// Signatures and sealing are simulated with keyed hashes over a per-subject
// (private, public) pair — protocol structure, not cryptographic strength.

#ifndef MPQ_EXEC_DISPATCH_H_
#define MPQ_EXEC_DISPATCH_H_

#include <string>
#include <vector>

#include "extend/extend.h"
#include "extend/keys.h"

namespace mpq {

/// One dispatched sub-query.
struct DispatchMessage {
  int fragment_id = 0;
  SubjectId to = kInvalidSubject;
  std::string sub_query;                 ///< SQL-style fragment text.
  std::vector<uint64_t> key_ids;         ///< Keys delivered with the request.
  std::vector<int> upstream_fragments;   ///< Fragments this one will call.
  uint64_t signature = 0;                ///< Signed by the dispatching user.
  bool sealed = true;                    ///< Encrypted for the recipient.
};

/// A full dispatch: messages in request order (root fragment first, like the
/// reqY → reqX → reqH/reqI chain of Fig 8).
struct DispatchPlan {
  SubjectId user = kInvalidSubject;
  std::vector<DispatchMessage> messages;

  std::string ToString(const SubjectRegistry& subjects) const;
};

/// Builds the dispatch for an extended plan. Keys are attached per the
/// Def 6.1 holder sets; every message is signed by `user`.
Result<DispatchPlan> BuildDispatch(const ExtendedPlan& ext,
                                   const PlanKeys& keys, const Policy& policy,
                                   SubjectId user);

/// Simulated signature primitives (keyed-hash over the payload).
uint64_t SignPayload(SubjectId signer, const std::string& payload);
bool VerifySignature(SubjectId signer, const std::string& payload,
                     uint64_t sig);

}  // namespace mpq

#endif  // MPQ_EXEC_DISPATCH_H_

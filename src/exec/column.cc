#include "exec/column.h"

#include <cstring>

namespace mpq {

const char* ColumnRepName(ColumnRep r) {
  switch (r) {
    case ColumnRep::kInt64:
      return "int64";
    case ColumnRep::kDouble:
      return "double";
    case ColumnRep::kString:
      return "string";
    case ColumnRep::kEnc:
      return "enc";
    case ColumnRep::kCell:
      return "cell";
  }
  return "unknown";
}

ColumnRep RepForType(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return ColumnRep::kInt64;
    case DataType::kDouble:
      return ColumnRep::kDouble;
    case DataType::kString:
      return ColumnRep::kString;
  }
  return ColumnRep::kCell;
}

void ColumnData::Reserve(size_t n) {
  switch (rep_) {
    case ColumnRep::kInt64:
      i64_.reserve(n);
      break;
    case ColumnRep::kDouble:
      f64_.reserve(n);
      break;
    case ColumnRep::kString:
      str_.reserve(n);
      break;
    case ColumnRep::kEnc:
      enc_.reserve(n);
      break;
    case ColumnRep::kCell:
      cells_.reserve(n);
      break;
  }
}

void ColumnData::Clear() {
  i64_.clear();
  f64_.clear();
  str_.clear();
  enc_.clear();
  cells_.clear();
  nulls_.clear();
  size_ = 0;
}

void ColumnData::EnsureNulls() {
  if (nulls_.empty()) nulls_.assign(size_, 0);
}

void ColumnData::GrowNulls(size_t n) {
  if (!nulls_.empty()) nulls_.insert(nulls_.end(), n, 0);
}

void ColumnData::DemoteToCells() {
  if (rep_ == ColumnRep::kCell) return;
  std::vector<Cell> cells;
  cells.reserve(size_);
  for (size_t i = 0; i < size_; ++i) cells.push_back(GetCell(i));
  cells_ = std::move(cells);
  i64_.clear();
  f64_.clear();
  str_.clear();
  enc_.clear();
  nulls_.clear();
  rep_ = ColumnRep::kCell;
}

void ColumnData::AppendNull() {
  // kCell holds NULLs as actual null cells; the mask exists only for typed
  // reps (kCell appends never grow it, so the two must not mix).
  if (rep_ == ColumnRep::kCell) {
    cells_.push_back(Cell(Value::Null()));
    size_++;
    return;
  }
  EnsureNulls();
  switch (rep_) {
    case ColumnRep::kInt64:
      i64_.push_back(0);
      break;
    case ColumnRep::kDouble:
      f64_.push_back(0);
      break;
    case ColumnRep::kString:
      str_.emplace_back();
      break;
    case ColumnRep::kEnc:
      enc_.emplace_back();
      break;
    case ColumnRep::kCell:
      break;  // handled above
  }
  nulls_.push_back(1);
  size_++;
}

void ColumnData::AppendValue(Value v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (rep_) {
    case ColumnRep::kInt64:
      if (v.is_int()) {
        i64_.push_back(v.AsInt());
        GrowNulls(1);
        size_++;
        return;
      }
      break;
    case ColumnRep::kDouble:
      if (v.is_double()) {
        f64_.push_back(v.AsDouble());
        GrowNulls(1);
        size_++;
        return;
      }
      break;
    case ColumnRep::kString:
      if (v.is_string()) {
        str_.push_back(v.AsString());
        GrowNulls(1);
        size_++;
        return;
      }
      break;
    case ColumnRep::kEnc:
      break;
    case ColumnRep::kCell:
      cells_.push_back(Cell(std::move(v)));
      size_++;
      return;
  }
  DemoteToCells();
  cells_.push_back(Cell(std::move(v)));
  size_++;
}

void ColumnData::Append(Cell c) {
  if (c.is_encrypted()) {
    if (rep_ == ColumnRep::kEnc) {
      enc_.push_back(std::move(c.enc_mut()));
      GrowNulls(1);
      size_++;
      return;
    }
    if (rep_ != ColumnRep::kCell) DemoteToCells();
    cells_.push_back(std::move(c));
    size_++;
    return;
  }
  if (rep_ == ColumnRep::kCell) {
    cells_.push_back(std::move(c));
    size_++;
    return;
  }
  AppendValue(std::move(c.plain_mut()));
}

Cell ColumnData::GetCell(size_t i) const {
  assert(i < size_);
  if (IsNull(i)) return Cell(Value::Null());
  switch (rep_) {
    case ColumnRep::kInt64:
      return Cell(Value(i64_[i]));
    case ColumnRep::kDouble:
      return Cell(Value(f64_[i]));
    case ColumnRep::kString:
      return Cell(Value(str_[i]));
    case ColumnRep::kEnc:
      return Cell(enc_[i]);
    case ColumnRep::kCell:
      return cells_[i];
  }
  return Cell();
}

Value ColumnData::GetValue(size_t i) const {
  assert(i < size_);
  if (IsNull(i)) return Value::Null();
  switch (rep_) {
    case ColumnRep::kInt64:
      return Value(i64_[i]);
    case ColumnRep::kDouble:
      return Value(f64_[i]);
    case ColumnRep::kString:
      return Value(str_[i]);
    case ColumnRep::kEnc:
      assert(false && "GetValue on an encrypted column");
      return Value::Null();
    case ColumnRep::kCell:
      return cells_[i].plain();
  }
  return Value::Null();
}

void ColumnData::AppendFrom(const ColumnData& src, size_t i) {
  if (src.rep_ == rep_ && !src.IsNull(i)) {
    switch (rep_) {
      case ColumnRep::kInt64:
        i64_.push_back(src.i64_[i]);
        break;
      case ColumnRep::kDouble:
        f64_.push_back(src.f64_[i]);
        break;
      case ColumnRep::kString:
        str_.push_back(src.str_[i]);
        break;
      case ColumnRep::kEnc:
        enc_.push_back(src.enc_[i]);
        break;
      case ColumnRep::kCell:
        cells_.push_back(src.cells_[i]);
        size_++;
        return;
    }
    GrowNulls(1);
    size_++;
    return;
  }
  Append(src.GetCell(i));
}

void ColumnData::AppendRange(const ColumnData& src, size_t begin, size_t end) {
  if (src.rep_ == rep_) {
    size_t n = end - begin;
    switch (rep_) {
      case ColumnRep::kInt64:
        i64_.insert(i64_.end(), src.i64_.begin() + static_cast<long>(begin),
                    src.i64_.begin() + static_cast<long>(end));
        break;
      case ColumnRep::kDouble:
        f64_.insert(f64_.end(), src.f64_.begin() + static_cast<long>(begin),
                    src.f64_.begin() + static_cast<long>(end));
        break;
      case ColumnRep::kString:
        str_.insert(str_.end(), src.str_.begin() + static_cast<long>(begin),
                    src.str_.begin() + static_cast<long>(end));
        break;
      case ColumnRep::kEnc:
        enc_.insert(enc_.end(), src.enc_.begin() + static_cast<long>(begin),
                    src.enc_.begin() + static_cast<long>(end));
        break;
      case ColumnRep::kCell:
        cells_.insert(cells_.end(),
                      src.cells_.begin() + static_cast<long>(begin),
                      src.cells_.begin() + static_cast<long>(end));
        size_ += n;
        return;
    }
    if (src.has_nulls()) {
      EnsureNulls();
      nulls_.insert(nulls_.end(),
                    src.nulls_.begin() + static_cast<long>(begin),
                    src.nulls_.begin() + static_cast<long>(end));
    } else {
      GrowNulls(n);
    }
    size_ += n;
    return;
  }
  for (size_t i = begin; i < end; ++i) Append(src.GetCell(i));
}

void ColumnData::AppendSelected(const ColumnData& src, const uint32_t* sel,
                                size_t n) {
  if (src.rep_ == rep_) {
    switch (rep_) {
      case ColumnRep::kInt64: {
        // Gather by direct indexed writes — no per-element capacity check.
        size_t base = i64_.size();
        i64_.resize(base + n);
        int64_t* dst = i64_.data() + base;
        const int64_t* sv = src.i64_.data();
        for (size_t k = 0; k < n; ++k) dst[k] = sv[sel[k]];
        break;
      }
      case ColumnRep::kDouble: {
        size_t base = f64_.size();
        f64_.resize(base + n);
        double* dst = f64_.data() + base;
        const double* sv = src.f64_.data();
        for (size_t k = 0; k < n; ++k) dst[k] = sv[sel[k]];
        break;
      }
      case ColumnRep::kString:
        for (size_t k = 0; k < n; ++k) str_.push_back(src.str_[sel[k]]);
        break;
      case ColumnRep::kEnc:
        for (size_t k = 0; k < n; ++k) enc_.push_back(src.enc_[sel[k]]);
        break;
      case ColumnRep::kCell:
        for (size_t k = 0; k < n; ++k) cells_.push_back(src.cells_[sel[k]]);
        size_ += n;
        return;
    }
    if (src.has_nulls()) {
      EnsureNulls();
      for (size_t k = 0; k < n; ++k) nulls_.push_back(src.nulls_[sel[k]]);
    } else {
      GrowNulls(n);
    }
    size_ += n;
    return;
  }
  for (size_t k = 0; k < n; ++k) Append(src.GetCell(sel[k]));
}

void ColumnData::AppendRepeated(const ColumnData& src, size_t i, size_t times) {
  for (size_t k = 0; k < times; ++k) AppendFrom(src, i);
}

void ColumnData::MoveAppend(ColumnData&& src) {
  if (src.size_ == 0) return;
  if (size_ == 0 && rep_ == src.rep_) {
    *this = std::move(src);
    src.Clear();
    return;
  }
  if (rep_ == src.rep_) {
    size_t n = src.size_;
    switch (rep_) {
      case ColumnRep::kInt64:
        i64_.insert(i64_.end(), src.i64_.begin(), src.i64_.end());
        break;
      case ColumnRep::kDouble:
        f64_.insert(f64_.end(), src.f64_.begin(), src.f64_.end());
        break;
      case ColumnRep::kString:
        str_.insert(str_.end(), std::make_move_iterator(src.str_.begin()),
                    std::make_move_iterator(src.str_.end()));
        break;
      case ColumnRep::kEnc:
        enc_.insert(enc_.end(), std::make_move_iterator(src.enc_.begin()),
                    std::make_move_iterator(src.enc_.end()));
        break;
      case ColumnRep::kCell:
        cells_.insert(cells_.end(),
                      std::make_move_iterator(src.cells_.begin()),
                      std::make_move_iterator(src.cells_.end()));
        size_ += n;
        src.Clear();
        return;
    }
    if (src.has_nulls()) {
      EnsureNulls();
      nulls_.insert(nulls_.end(), src.nulls_.begin(), src.nulls_.end());
    } else {
      GrowNulls(n);
    }
    size_ += n;
    src.Clear();
    return;
  }
  for (size_t i = 0; i < src.size_; ++i) Append(src.GetCell(i));
  src.Clear();
}

uint64_t ColumnData::ByteSize() const {
  uint64_t total = 0;
  switch (rep_) {
    case ColumnRep::kInt64:
    case ColumnRep::kDouble:
      if (has_nulls()) {
        for (size_t i = 0; i < size_; ++i) total += IsNull(i) ? 1 : 8;
      } else {
        total = 8 * size_;
      }
      return total;
    case ColumnRep::kString:
      for (size_t i = 0; i < size_; ++i) {
        total += IsNull(i) ? 1 : str_[i].size() + 4;
      }
      return total;
    case ColumnRep::kEnc:
      for (size_t i = 0; i < size_; ++i) {
        total += IsNull(i) ? 1 : enc_[i].ByteSize();
      }
      return total;
    case ColumnRep::kCell:
      for (const Cell& c : cells_) total += c.ByteSize();
      return total;
  }
  return total;
}

ColumnData ColumnFromCells(std::vector<Cell> cells) {
  ColumnRep rep = ColumnRep::kCell;
  for (const Cell& c : cells) {
    if (c.is_encrypted()) {
      rep = ColumnRep::kEnc;
      break;
    }
    const Value& v = c.plain();
    if (v.is_null()) continue;
    if (v.is_int()) {
      rep = ColumnRep::kInt64;
    } else if (v.is_double()) {
      rep = ColumnRep::kDouble;
    } else {
      rep = ColumnRep::kString;
    }
    break;
  }
  ColumnData out(rep);
  out.Reserve(cells.size());
  for (Cell& c : cells) out.Append(std::move(c));
  return out;
}

ColumnData ColumnFromEnc(std::vector<EncValue> encs) {
  ColumnData out;
  out.AdoptEnc(std::move(encs));
  return out;
}

namespace {

Status KeyUnsupported() {
  return Status::Unsupported(
      "RND/HOM ciphertexts cannot serve as grouping or join keys");
}

bool KeyableEnc(const EncValue& ev) {
  return ev.scheme == EncScheme::kDeterministic || ev.scheme == EncScheme::kOpe;
}

}  // namespace

Status ColumnDict::EncodeRange(size_t begin, size_t end, uint32_t* codes) {
  const ColumnData& c = *col_;
  if (c.rep() == ColumnRep::kString) {
    const std::vector<std::string>& vals = c.str();
    for (size_t r = begin; r < end; ++r) {
      if (c.IsNull(r)) {
        codes[r - begin] = 0;
        continue;
      }
      const std::string& s = vals[r];
      codes[r - begin] = index_.FindOrInsert(
          HashBytes(s.data(), s.size()),
          [&](uint32_t id) { return vals[rep_rows_[id]] == s; },
          [&] {
            rep_rows_.push_back(static_cast<uint32_t>(r));
            return static_cast<uint32_t>(rep_rows_.size() - 1);
          });
    }
    return Status::OK();
  }
  if (c.rep() == ColumnRep::kEnc) {
    const std::vector<EncValue>& vals = c.enc();
    for (size_t r = begin; r < end; ++r) {
      if (c.IsNull(r)) {
        codes[r - begin] = 0;
        continue;
      }
      const EncValue& ev = vals[r];
      if (!KeyableEnc(ev)) return KeyUnsupported();
      codes[r - begin] = index_.FindOrInsert(
          HashBytes(ev.blob.data(), ev.blob.size()),
          [&](uint32_t id) { return vals[rep_rows_[id]].blob == ev.blob; },
          [&] {
            rep_rows_.push_back(static_cast<uint32_t>(r));
            return static_cast<uint32_t>(rep_rows_.size() - 1);
          });
    }
    return Status::OK();
  }
  return Status::Internal("dictionary over a non-string/ciphertext column");
}

Status ColumnDict::ProbeRange(const ColumnData& probe, size_t begin,
                              size_t end, uint32_t* codes) const {
  if (probe.rep() != col_->rep()) {
    return Status::Internal("dictionary probe over a mismatched column rep");
  }
  if (probe.rep() == ColumnRep::kString) {
    const std::vector<std::string>& own = col_->str();
    const std::vector<std::string>& vals = probe.str();
    for (size_t r = begin; r < end; ++r) {
      if (probe.IsNull(r)) {
        codes[r - begin] = 0;
        continue;
      }
      const std::string& s = vals[r];
      codes[r - begin] = index_.Find(
          HashBytes(s.data(), s.size()),
          [&](uint32_t id) { return own[rep_rows_[id]] == s; });
    }
    return Status::OK();
  }
  if (probe.rep() == ColumnRep::kEnc) {
    const std::vector<EncValue>& own = col_->enc();
    const std::vector<EncValue>& vals = probe.enc();
    for (size_t r = begin; r < end; ++r) {
      if (probe.IsNull(r)) {
        codes[r - begin] = 0;
        continue;
      }
      const EncValue& ev = vals[r];
      if (!KeyableEnc(ev)) return KeyUnsupported();
      codes[r - begin] = index_.Find(
          HashBytes(ev.blob.data(), ev.blob.size()),
          [&](uint32_t id) { return own[rep_rows_[id]].blob == ev.blob; });
    }
    return Status::OK();
  }
  return Status::Internal("dictionary over a non-string/ciphertext column");
}

Status AppendKeyBytes(const ColumnData& col, size_t r, std::string* out) {
  if (col.IsNull(r)) {
    out->push_back('N');
    return Status::OK();
  }
  switch (col.rep()) {
    case ColumnRep::kInt64: {
      out->push_back('I');
      int64_t v = col.i64()[r];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return Status::OK();
    }
    case ColumnRep::kDouble: {
      out->push_back('D');
      double v = col.f64()[r];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return Status::OK();
    }
    case ColumnRep::kString:
      out->push_back('S');
      out->append(col.str()[r]);
      return Status::OK();
    case ColumnRep::kEnc: {
      const EncValue& ev = col.enc()[r];
      if (ev.scheme == EncScheme::kDeterministic ||
          ev.scheme == EncScheme::kOpe) {
        out->append(ev.blob);
        return Status::OK();
      }
      return Status::Unsupported(
          "RND/HOM ciphertexts cannot serve as grouping or join keys");
    }
    case ColumnRep::kCell: {
      MPQ_ASSIGN_OR_RETURN(std::string k, CellGroupKey(col.cells()[r]));
      out->append(k);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable column rep");
}

}  // namespace mpq

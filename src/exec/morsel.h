// Morsel-driven scheduling: a single global run registry on top of the
// work-stealing ThreadPool, plus inter-query shared scans.
//
// A "morsel" is a fixed [begin, end) index range over a column batch. The
// scheduler registers each operator loop as a *run* in a global FIFO; pool
// workers pump the oldest unfinished run, while the query that owns a run
// claims its own morsels cooperatively (the caller thread always
// participates, so a run makes progress even when every worker is busy with
// other queries). Morsel boundaries depend only on (n, grain) — never on the
// number of threads or the interleaving — so per-morsel results merged in
// morsel order are bit-identical at 1, 2, or N threads.
//
// SharedScanManager coalesces concurrent same-snapshot scans: the first
// query over a given (payload, n, grain) becomes the *leader*, later
// arrivals *attach* to the in-flight scan from its current position, catch
// up on the prefix they missed themselves, and from then on every claimed
// batch is evaluated once per attached query while it is hot in cache.
// Each participant runs its own callback against its own table, so the
// coalescing key is purely a profitability heuristic — correctness only
// needs equal row count and batch partitioning.

#ifndef MPQ_EXEC_MORSEL_H_
#define MPQ_EXEC_MORSEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace mpq {

/// Global morsel queue. One instance is shared by every query a service (or
/// a distributed runtime) executes; operators call Run() instead of
/// ParallelFor, which makes all concurrent queries draw from one task pool
/// instead of each fanning out independently.
class MorselScheduler {
 public:
  /// `pool` may be null (every Run executes inline, sequentially).
  explicit MorselScheduler(ThreadPool* pool) : pool_(pool) {}

  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  /// Runs `fn(begin, end)` over [0, n) in morsels of `grain` indices.
  /// Registers the run in the global FIFO so pool workers help; the calling
  /// thread claims morsels from its own run first, then pumps other runs
  /// while waiting. Deterministic: morsel boundaries depend only on (n,
  /// grain); on error the Status of the lowest-index failing morsel wins,
  /// and all morsels still execute (same contract as ParallelFor).
  Status Run(size_t n, size_t grain,
             const std::function<Status(size_t, size_t)>& fn);

  /// Morsels executed since construction (inline and pooled).
  uint64_t morsels_executed() const {
    return reg_->executed.load(std::memory_order_relaxed);
  }
  /// Run() invocations since construction.
  uint64_t runs_started() const {
    return reg_->runs.load(std::memory_order_relaxed);
  }
  /// Morsels registered but not yet executed — the queue-depth gauge.
  uint64_t morsels_pending() const {
    return reg_->pending.load(std::memory_order_relaxed);
  }
  /// High-water mark of morsels_pending().
  uint64_t queue_depth_peak() const {
    return reg_->peak.load(std::memory_order_relaxed);
  }

  ThreadPool* pool() const { return pool_; }

 private:
  /// One registered Run(). Pump tasks hold it via shared_ptr so a task
  /// scheduled after the run finished still finds valid (exhausted) state.
  struct RunState {
    size_t n = 0;
    size_t grain = 1;
    size_t num_morsels = 0;
    std::function<Status(size_t, size_t)> fn;
    std::mutex mu;
    std::condition_variable cv;
    size_t next_morsel = 0;          // guarded by mu
    size_t morsels_done = 0;         // guarded by mu
    size_t error_morsel = SIZE_MAX;  // guarded by mu
    Status error;                    // guarded by mu
  };

  /// The global run FIFO plus counters. Shared-owned by pump tasks so a
  /// task that outlives the scheduler (pool drains during shutdown) still
  /// touches valid state.
  struct Registry {
    std::mutex mu;
    std::deque<std::shared_ptr<RunState>> active;  // guarded by mu
    std::atomic<uint64_t> runs{0};
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> pending{0};
    std::atomic<uint64_t> peak{0};
  };

  /// Claims and runs one morsel of `rs`. Returns false when `rs` has no
  /// unclaimed morsels left.
  static bool ClaimAndRunOne(const std::shared_ptr<Registry>& reg,
                             const std::shared_ptr<RunState>& rs);
  /// Claims one morsel from the oldest registered run with work left,
  /// popping exhausted runs off the FIFO. Returns false when the registry
  /// is drained.
  static bool PumpOne(const std::shared_ptr<Registry>& reg);

  ThreadPool* pool_;
  std::shared_ptr<Registry> reg_ = std::make_shared<Registry>();
};

/// Coalesces concurrent scans over the same in-memory column payload onto
/// one batch-claim loop. Thread-safe; one instance per service.
class SharedScanManager {
 public:
  SharedScanManager() = default;
  SharedScanManager(const SharedScanManager&) = delete;
  SharedScanManager& operator=(const SharedScanManager&) = delete;

  /// Scans n rows in batches of `grain`, calling `fn(batch, begin, end)`
  /// once per batch in arbitrary order (callers must make per-batch results
  /// order-independent, e.g. write into a slot indexed by `batch`). `id`
  /// identifies the physical payload being scanned — concurrent Scan calls
  /// with the same (id, n, grain) coalesce: one leads, the rest attach and
  /// only self-scan the prefix the leader already passed. `fn` runs for
  /// every batch exactly once per caller regardless of coalescing. Scan
  /// never runs unrelated pool work while waiting — callers typically hold
  /// an admission slot, and inlining another query's task under it can
  /// deadlock the admission cap.
  Status Scan(const void* id, size_t n, size_t grain,
              const std::function<Status(size_t, size_t, size_t)>& fn);

  /// Scans that started a new shared claim loop.
  uint64_t leads() const { return leads_.load(std::memory_order_relaxed); }
  /// Scans that attached to an in-flight claim loop.
  uint64_t attaches() const {
    return attaches_.load(std::memory_order_relaxed);
  }
  /// Batch evaluations that served >= 2 queries from one claim.
  uint64_t shared_batches() const {
    return shared_batches_.load(std::memory_order_relaxed);
  }

  /// Test hook: makes every new leader park before claiming its first
  /// batch, so a test can deterministically attach a second scan.
  void HoldNewScansForTesting();
  /// Releases scans parked by HoldNewScansForTesting and stops holding.
  void ReleaseHeldScansForTesting();

 private:
  struct Participant {
    std::function<Status(size_t, size_t, size_t)> fn;
    size_t first_batch = 0;  // batches below this are self-scanned
    size_t error_batch = SIZE_MAX;  // guarded by owning ScanState::mu
    Status error;                   // guarded by owning ScanState::mu
  };

  struct ScanState {
    size_t n = 0;
    size_t grain = 1;
    size_t num_batches = 0;
    std::mutex mu;
    std::condition_variable cv;
    size_t next_batch = 0;    // guarded by mu
    size_t batches_done = 0;  // guarded by mu
    bool held = false;        // guarded by mu (test hook)
    std::vector<std::shared_ptr<Participant>> parts;  // guarded by mu
  };

  using Key = std::tuple<const void*, size_t, size_t>;

  std::mutex mu_;
  std::map<Key, std::shared_ptr<ScanState>> active_;  // guarded by mu_
  bool hold_new_ = false;                             // guarded by mu_

  std::atomic<uint64_t> leads_{0};
  std::atomic<uint64_t> attaches_{0};
  std::atomic<uint64_t> shared_batches_{0};
};

}  // namespace mpq

#endif  // MPQ_EXEC_MORSEL_H_

// Distributed query runtime: executes an extended plan with one engine per
// subject, selective key distribution (Def 6.1), and byte-level transfer
// accounting on every assignee-crossing edge.
//
// Everything runs in one process, but each subject's engine only holds the
// keys distributed to it — an operation assigned to a subject without the
// required key fails, which is the enforcement property the paper's key
// distribution provides.
//
// With a ThreadPool attached, per-assignee fragments are scheduled as async
// tasks along the plan's dependency edges: nodes whose subtrees don't feed
// each other run concurrently, modelling subjects computing in parallel.
// Stats are mutex-guarded and every node derives its nonce base from the
// node id, so results and transfer bytes are identical at any thread count.
//
// Fragment results move through per-node Channels (net/channel.h): each task
// Sends its table to its parent's mailbox and a task only runs once every
// operand arrived. With a SimNet attached (SetNetwork), every assignee-
// crossing send is first cleared by the simulated network — which may delay,
// drop (with bounded retries under SetNetPolicy), or refuse it because a
// provider crashed. A send that cannot be completed aborts the run with
// kUnavailable; the failover layer (exec/failover.h) then re-plans around
// the subjects the net recorded as down.
//
// Once configured (tables loaded, keys distributed, crypto plan set), Run may
// be called concurrently from many threads: each call draws a fresh nonce
// seed from an atomic counter and touches only call-local state, which is
// what lets the serving layer execute one cached plan under many sessions.

#ifndef MPQ_EXEC_DISTRIBUTED_H_
#define MPQ_EXEC_DISTRIBUTED_H_

#include <atomic>
#include <map>
#include <memory>

#include "assign/schemes.h"
#include "common/thread_pool.h"
#include "extend/extend.h"
#include "extend/keys.h"
#include "exec/executor.h"
#include "exec/morsel.h"
#include "net/simnet.h"

namespace mpq {

/// Per-subject execution accounting.
struct SubjectStats {
  size_t ops_executed = 0;
  uint64_t rows_produced = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

/// Network-side accounting of one run (all zeros on an ideal network).
struct NetReport {
  uint64_t send_attempts = 0;  ///< Delivery attempts incl. dropped ones.
  uint64_t drops = 0;          ///< Attempts the fault plan dropped.
  uint64_t wasted_bytes = 0;   ///< Bytes of dropped attempts (retransmitted).
  double virtual_s = 0;        ///< Simulated network seconds, summed.
};

/// Output of a distributed run.
struct DistributedResult {
  Table result;
  std::map<SubjectId, SubjectStats> stats;
  uint64_t total_transfer_bytes = 0;
  size_t num_messages = 0;
  NetReport net;
};

/// The runtime. Configure with data, keys and crypto plan, then Run.
class DistributedRuntime {
 public:
  DistributedRuntime(const Catalog* catalog, const SubjectRegistry* subjects)
      : catalog_(catalog), subjects_(subjects) {}

  /// Loads the data of a base relation (held by its owning authority),
  /// taking ownership of a copy.
  void LoadTable(RelId rel, Table table) {
    owned_tables_[rel] = std::move(table);
    base_tables_[rel] = &owned_tables_[rel];
  }

  /// Borrows the data of a base relation. The caller keeps `table` alive and
  /// unchanged for the lifetime of the runtime — the serving layer uses this
  /// so cached plans share one copy of the base data instead of duplicating
  /// it per cache entry.
  void LoadTableRef(RelId rel, const Table* table) {
    base_tables_[rel] = table;
  }

  /// Distributes key material per the plan-key holders; the dispatcher
  /// (`user`) receives every key so it can formulate encrypted constants in
  /// dispatched sub-queries.
  void DistributeKeys(const PlanKeys& keys, SubjectId user, uint64_t seed);

  void SetCryptoPlan(CryptoPlan crypto) { crypto_ = std::move(crypto); }

  void RegisterUdf(const std::string& name, UdfImpl impl) {
    udfs_[name] = std::move(impl);
  }

  /// Attaches a pool: independent fragments then run as concurrent async
  /// tasks, and each engine evaluates operators batch-parallel. Null (the
  /// default) runs everything sequentially. The pool is borrowed, not
  /// owned. Unless SetMorselScheduler injects a shared one, the runtime
  /// lazily creates a private MorselScheduler over the pool so operator
  /// loops run morsel-driven here too.
  void SetThreadPool(ThreadPool* pool) {
    pool_ = pool;
    if (pool != nullptr && morsels_ == nullptr) {
      owned_morsels_ = std::make_unique<MorselScheduler>(pool);
      morsels_ = owned_morsels_.get();
    }
  }

  /// Injects the process-wide morsel scheduler (borrowed): operator loops
  /// then enqueue on it instead of the runtime's private one, so every
  /// concurrent query of a serving process draws from one task queue.
  void SetMorselScheduler(MorselScheduler* morsels) {
    if (morsels != nullptr) morsels_ = morsels;
  }

  /// Attaches the process-wide shared-scan manager (borrowed): concurrent
  /// base-table selects over the same snapshot then coalesce onto one
  /// batch-claim loop. Null (the default) scans privately.
  void SetSharedScans(SharedScanManager* shared_scans) {
    shared_scans_ = shared_scans;
  }

  /// Rows per operator batch (see ExecContext::batch_size).
  void SetBatchSize(size_t batch_size) { batch_size_ = batch_size; }

  /// Attaches a simulated network (borrowed): every assignee-crossing
  /// fragment edge is then delivered through `net` under `SetNetPolicy`'s
  /// retry/deadline budget, subject to its link timing and fault plan. A
  /// failed delivery or a crashed assignee aborts the run with kUnavailable;
  /// the dead subjects are recorded in `net` (SimNet::DownSubjects) for the
  /// failover machinery. Null (the default) is an ideal network.
  void SetNetwork(SimNet* net) { net_ = net; }

  /// Retry and deadline budget applied per fragment edge when a network is
  /// attached.
  void SetNetPolicy(NetPolicy policy) { net_policy_ = policy; }

  /// Whether assignee-crossing transfers cross the wire as compressed
  /// column segments (the default) or as the plain column-at-a-time v2
  /// serialization. Either way the receiver decodes what was sent;
  /// NetReport bytes reflect the chosen encoding's size.
  void SetCompressWire(bool compress) { compress_wire_ = compress; }

  /// Attaches per-operator execution counters (borrowed; typically shared
  /// by every runtime of a serving process). Null (the default) disables
  /// recording.
  void SetOpProfile(OpProfile* profile) { op_profile_ = profile; }

  /// Executes the extended plan; the result is delivered to `user`.
  ///
  /// With a `trace` attached, the run records one "frag" span per dispatch
  /// step (assignee, rows, arena bytes, Paillier fold counts), one "net"
  /// span per assignee-crossing edge (bytes-on-wire, retries, drops,
  /// virtual seconds, crash annotations) and a "merge" span for the final
  /// delivery, all under `trace_parent`. Tracing is observation-only:
  /// execution never reads the trace, so traced runs are bit-identical to
  /// untraced ones at any thread count.
  Result<DistributedResult> Run(const ExtendedPlan& ext, SubjectId user,
                                QueryTrace* trace = nullptr,
                                uint64_t trace_parent = 0);

  /// The keyring held by `subject` (for inspection in tests).
  const KeyRing& keyring(SubjectId subject) const {
    static const KeyRing kEmpty;
    auto it = keyrings_.find(subject);
    return it == keyrings_.end() ? kEmpty : it->second;
  }

 private:
  const Catalog* catalog_;
  const SubjectRegistry* subjects_;
  std::map<RelId, Table> owned_tables_;
  std::map<RelId, const Table*> base_tables_;
  std::map<SubjectId, KeyRing> keyrings_;
  KeyRing dispatcher_keyring_;
  /// Public Paillier moduli, shared into every per-node ExecContext by
  /// pointer (the directory is append-only after DistributeKeys).
  std::shared_ptr<HomKeyDirectory> public_modulus_ =
      std::make_shared<HomKeyDirectory>();
  CryptoPlan crypto_;
  std::unordered_map<std::string, UdfImpl> udfs_;
  /// Seed for per-node nonce bases (each node n encrypts with nonces derived
  /// from SplitMix64(seed, n->id), independent of scheduling order). Atomic:
  /// concurrent Run calls each advance it once, so no two runs — parallel or
  /// sequential — share a (key, nonce) pair.
  std::atomic<uint64_t> nonce_seed_{0x243f6a8885a308d3ull};
  ThreadPool* pool_ = nullptr;
  /// Private scheduler created by SetThreadPool when none is injected, so
  /// standalone runtimes (tests, benches) run morsel-driven too.
  std::unique_ptr<MorselScheduler> owned_morsels_;
  MorselScheduler* morsels_ = nullptr;
  SharedScanManager* shared_scans_ = nullptr;
  size_t batch_size_ = Table::kDefaultBatchSize;
  SimNet* net_ = nullptr;
  NetPolicy net_policy_;
  bool compress_wire_ = true;
  OpProfile* op_profile_ = nullptr;
};

}  // namespace mpq

#endif  // MPQ_EXEC_DISTRIBUTED_H_

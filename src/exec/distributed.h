// Distributed query runtime: executes an extended plan with one engine per
// subject, selective key distribution (Def 6.1), and byte-level transfer
// accounting on every assignee-crossing edge.
//
// Everything runs in one process, but each subject's engine only holds the
// keys distributed to it — an operation assigned to a subject without the
// required key fails, which is the enforcement property the paper's key
// distribution provides.
//
// With a ThreadPool attached, per-assignee fragments are scheduled as async
// tasks along the plan's dependency edges: nodes whose subtrees don't feed
// each other run concurrently, modelling subjects computing in parallel.
// Stats are mutex-guarded and every node derives its nonce base from the
// node id, so results and transfer bytes are identical at any thread count.
//
// Once configured (tables loaded, keys distributed, crypto plan set), Run may
// be called concurrently from many threads: each call draws a fresh nonce
// seed from an atomic counter and touches only call-local state, which is
// what lets the serving layer execute one cached plan under many sessions.

#ifndef MPQ_EXEC_DISTRIBUTED_H_
#define MPQ_EXEC_DISTRIBUTED_H_

#include <atomic>
#include <map>

#include "assign/schemes.h"
#include "common/thread_pool.h"
#include "extend/extend.h"
#include "extend/keys.h"
#include "exec/executor.h"

namespace mpq {

/// Per-subject execution accounting.
struct SubjectStats {
  size_t ops_executed = 0;
  uint64_t rows_produced = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

/// Output of a distributed run.
struct DistributedResult {
  Table result;
  std::map<SubjectId, SubjectStats> stats;
  uint64_t total_transfer_bytes = 0;
  size_t num_messages = 0;
};

/// The runtime. Configure with data, keys and crypto plan, then Run.
class DistributedRuntime {
 public:
  DistributedRuntime(const Catalog* catalog, const SubjectRegistry* subjects)
      : catalog_(catalog), subjects_(subjects) {}

  /// Loads the data of a base relation (held by its owning authority),
  /// taking ownership of a copy.
  void LoadTable(RelId rel, Table table) {
    owned_tables_[rel] = std::move(table);
    base_tables_[rel] = &owned_tables_[rel];
  }

  /// Borrows the data of a base relation. The caller keeps `table` alive and
  /// unchanged for the lifetime of the runtime — the serving layer uses this
  /// so cached plans share one copy of the base data instead of duplicating
  /// it per cache entry.
  void LoadTableRef(RelId rel, const Table* table) {
    base_tables_[rel] = table;
  }

  /// Distributes key material per the plan-key holders; the dispatcher
  /// (`user`) receives every key so it can formulate encrypted constants in
  /// dispatched sub-queries.
  void DistributeKeys(const PlanKeys& keys, SubjectId user, uint64_t seed);

  void SetCryptoPlan(CryptoPlan crypto) { crypto_ = std::move(crypto); }

  void RegisterUdf(const std::string& name, UdfImpl impl) {
    udfs_[name] = std::move(impl);
  }

  /// Attaches a pool: independent fragments then run as concurrent async
  /// tasks, and each engine evaluates operators batch-parallel. Null (the
  /// default) runs everything sequentially. The pool is borrowed, not owned.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  /// Rows per operator batch (see ExecContext::batch_size).
  void SetBatchSize(size_t batch_size) { batch_size_ = batch_size; }

  /// Executes the extended plan; the result is delivered to `user`.
  Result<DistributedResult> Run(const ExtendedPlan& ext, SubjectId user);

  /// The keyring held by `subject` (for inspection in tests).
  const KeyRing& keyring(SubjectId subject) const {
    static const KeyRing kEmpty;
    auto it = keyrings_.find(subject);
    return it == keyrings_.end() ? kEmpty : it->second;
  }

 private:
  const Catalog* catalog_;
  const SubjectRegistry* subjects_;
  std::map<RelId, Table> owned_tables_;
  std::map<RelId, const Table*> base_tables_;
  std::map<SubjectId, KeyRing> keyrings_;
  KeyRing dispatcher_keyring_;
  std::unordered_map<uint64_t, uint64_t> public_modulus_;
  CryptoPlan crypto_;
  std::unordered_map<std::string, UdfImpl> udfs_;
  /// Seed for per-node nonce bases (each node n encrypts with nonces derived
  /// from SplitMix64(seed, n->id), independent of scheduling order). Atomic:
  /// concurrent Run calls each advance it once, so no two runs — parallel or
  /// sequential — share a (key, nonce) pair.
  std::atomic<uint64_t> nonce_seed_{0x243f6a8885a308d3ull};
  ThreadPool* pool_ = nullptr;
  size_t batch_size_ = Table::kDefaultBatchSize;
};

}  // namespace mpq

#endif  // MPQ_EXEC_DISTRIBUTED_H_

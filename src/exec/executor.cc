#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/rng.h"
#include "common/str_util.h"
#include "crypto/cipher.h"

namespace mpq {

namespace {

/// Batch size with the zero value normalized, matching Table::Batch and the
/// ParallelFor grain so `begin / Grain(ctx)` is always a valid batch index.
size_t Grain(const ExecContext* ctx) {
  return ctx->batch_size == 0 ? 1 : ctx->batch_size;
}

Status ColNotFound(const PlanNode* n, AttrId a, const Catalog& catalog) {
  return Status::Internal(StrFormat(
      "node %d (%s): attribute %s not found in operand table", n->id,
      OpKindName(n->kind), catalog.attrs().Name(a).c_str()));
}

/// Encrypts a predicate constant to match an encrypted column, using the
/// dispatcher's keys (conditions arrive pre-encrypted in real dispatch).
Result<Cell> ConstForColumn(const ExecColumn& col, const Value& v,
                            ExecContext* ctx) {
  if (!col.encrypted) return Cell(v);
  if (ctx->dispatcher_keyring == nullptr) {
    return Status::NotFound("no dispatcher keyring to encrypt constants");
  }
  MPQ_ASSIGN_OR_RETURN(KeyMaterial km,
                       ctx->dispatcher_keyring->Get(col.key_id));
  MPQ_ASSIGN_OR_RETURN(
      EncValue ev,
      EncryptValue(v, col.scheme, col.key_id, km, ctx->NextNonce()));
  return Cell(std::move(ev));
}

/// Evaluates one predicate against a row of `table`. Constants for encrypted
/// columns are bound once per operator, then shared read-only by all batches.
struct BoundPredicate {
  CmpOp op;
  int lhs_col;
  int rhs_col = -1;     // >= 0 for attr-attr predicates
  Cell rhs_const;       // used when rhs_col < 0
};

Result<BoundPredicate> BindPredicate(const Predicate& p, const Table& t,
                                     const PlanNode* n, ExecContext* ctx) {
  BoundPredicate bp;
  bp.op = p.op;
  bp.lhs_col = t.ColIndex(p.lhs);
  if (bp.lhs_col < 0) return ColNotFound(n, p.lhs, *ctx->catalog);
  if (p.rhs_is_attr) {
    bp.rhs_col = t.ColIndex(p.rhs_attr);
    if (bp.rhs_col < 0) return ColNotFound(n, p.rhs_attr, *ctx->catalog);
  } else {
    MPQ_ASSIGN_OR_RETURN(
        bp.rhs_const,
        ConstForColumn(t.columns()[static_cast<size_t>(bp.lhs_col)],
                       p.rhs_value, ctx));
  }
  return bp;
}

Result<bool> EvalBound(const BoundPredicate& bp, const std::vector<Cell>& row) {
  const Cell& lhs = row[static_cast<size_t>(bp.lhs_col)];
  const Cell& rhs =
      bp.rhs_col >= 0 ? row[static_cast<size_t>(bp.rhs_col)] : bp.rhs_const;
  return CompareCells(bp.op, lhs, rhs);
}

Result<bool> EvalAllBound(const std::vector<BoundPredicate>& preds,
                          const std::vector<Cell>& row) {
  for (const BoundPredicate& bp : preds) {
    MPQ_ASSIGN_OR_RETURN(bool ok, EvalBound(bp, row));
    if (!ok) return false;
  }
  return true;
}

/// Per-batch output rows, merged into `out` in batch order so the result is
/// identical at any thread count.
void AppendBatchRows(std::vector<std::vector<std::vector<Cell>>> batch_rows,
                     Table* out) {
  size_t total = 0;
  for (const auto& rows : batch_rows) total += rows.size();
  out->ReserveRows(out->num_rows() + total);
  for (auto& rows : batch_rows) {
    for (auto& row : rows) out->AddRow(std::move(row));
  }
}

Result<Table> ExecProject(const PlanNode* n, Table in, ExecContext* ctx) {
  std::vector<int> keep;
  std::vector<ExecColumn> cols;
  for (size_t i = 0; i < in.num_columns(); ++i) {
    if (n->attrs.Contains(in.columns()[i].attr)) {
      keep.push_back(static_cast<int>(i));
      cols.push_back(in.columns()[i]);
    }
  }
  if (keep.size() != n->attrs.size()) {
    AttrSet missing = n->attrs;
    for (const ExecColumn& c : cols) missing.Erase(c.attr);
    return ColNotFound(n, missing.ToVector().front(), *ctx->catalog);
  }
  Table out(std::move(cols));
  std::vector<std::vector<std::vector<Cell>>> batch_rows(
      in.NumBatches(Grain(ctx)));
  MPQ_RETURN_NOT_OK(ParallelFor(
      ctx->pool, in.num_rows(), Grain(ctx),
      [&](size_t begin, size_t end) -> Status {
        auto& local = batch_rows[begin / Grain(ctx)];
        local.reserve(end - begin);
        for (size_t r = begin; r < end; ++r) {
          std::vector<Cell> row;
          row.reserve(keep.size());
          for (int i : keep) row.push_back(in.row(r)[static_cast<size_t>(i)]);
          local.push_back(std::move(row));
        }
        return Status::OK();
      }));
  AppendBatchRows(std::move(batch_rows), &out);
  return out;
}

Result<Table> ExecSelect(const PlanNode* n, Table in, ExecContext* ctx) {
  std::vector<BoundPredicate> preds;
  for (const Predicate& p : n->predicates) {
    MPQ_ASSIGN_OR_RETURN(BoundPredicate bp, BindPredicate(p, in, n, ctx));
    preds.push_back(std::move(bp));
  }
  Table out(in.columns());
  std::vector<std::vector<std::vector<Cell>>> batch_rows(
      in.NumBatches(Grain(ctx)));
  MPQ_RETURN_NOT_OK(ParallelFor(
      ctx->pool, in.num_rows(), Grain(ctx),
      [&](size_t begin, size_t end) -> Status {
        auto& local = batch_rows[begin / Grain(ctx)];
        for (size_t r = begin; r < end; ++r) {
          MPQ_ASSIGN_OR_RETURN(bool keep, EvalAllBound(preds, in.row(r)));
          if (keep) local.push_back(in.row(r));
        }
        return Status::OK();
      }));
  AppendBatchRows(std::move(batch_rows), &out);
  return out;
}

std::vector<ExecColumn> ConcatColumns(const Table& l, const Table& r) {
  std::vector<ExecColumn> cols = l.columns();
  cols.insert(cols.end(), r.columns().begin(), r.columns().end());
  return cols;
}

std::vector<Cell> ConcatRow(const std::vector<Cell>& a,
                            const std::vector<Cell>& b) {
  std::vector<Cell> row = a;
  row.insert(row.end(), b.begin(), b.end());
  return row;
}

Result<Table> ExecCartesian(const PlanNode*, Table l, Table r,
                            ExecContext* ctx) {
  Table out(ConcatColumns(l, r));
  std::vector<std::vector<std::vector<Cell>>> batch_rows(
      l.NumBatches(Grain(ctx)));
  MPQ_RETURN_NOT_OK(ParallelFor(
      ctx->pool, l.num_rows(), Grain(ctx),
      [&](size_t begin, size_t end) -> Status {
        auto& local = batch_rows[begin / Grain(ctx)];
        local.reserve((end - begin) * r.num_rows());
        for (size_t i = begin; i < end; ++i) {
          for (size_t j = 0; j < r.num_rows(); ++j) {
            local.push_back(ConcatRow(l.row(i), r.row(j)));
          }
        }
        return Status::OK();
      }));
  AppendBatchRows(std::move(batch_rows), &out);
  return out;
}

Result<Table> ExecJoin(const PlanNode* n, Table l, Table r, ExecContext* ctx) {
  // Partition predicates into hashable equi-predicates (left attr vs right
  // attr) and residual ones.
  struct EqPair {
    int lcol;
    int rcol;
  };
  std::vector<EqPair> eq_pairs;
  std::vector<Predicate> residual;
  for (const Predicate& p : n->predicates) {
    if (p.rhs_is_attr && p.op == CmpOp::kEq) {
      int ll = l.ColIndex(p.lhs), rr = r.ColIndex(p.rhs_attr);
      if (ll >= 0 && rr >= 0) {
        eq_pairs.push_back({ll, rr});
        continue;
      }
      ll = l.ColIndex(p.rhs_attr);
      rr = r.ColIndex(p.lhs);
      if (ll >= 0 && rr >= 0) {
        eq_pairs.push_back({ll, rr});
        continue;
      }
    }
    residual.push_back(p);
  }

  Table out(ConcatColumns(l, r));

  if (!eq_pairs.empty()) {
    // Hash join: sequential build over the (usually smaller) left side, then
    // a batch-parallel probe over the right side.
    std::unordered_map<std::string, std::vector<size_t>> ht;
    ht.reserve(l.num_rows() * 2);
    for (size_t i = 0; i < l.num_rows(); ++i) {
      std::string key;
      for (const EqPair& ep : eq_pairs) {
        Result<std::string> k =
            CellGroupKey(l.row(i)[static_cast<size_t>(ep.lcol)]);
        if (!k.ok()) return k.status();
        key += *k;
        key += '\x1f';
      }
      ht[key].push_back(i);
    }
    // Bind residual predicates against the concatenated layout.
    std::vector<BoundPredicate> bound_residual;
    for (const Predicate& p : residual) {
      MPQ_ASSIGN_OR_RETURN(BoundPredicate bp, BindPredicate(p, out, n, ctx));
      bound_residual.push_back(std::move(bp));
    }
    std::vector<std::vector<std::vector<Cell>>> batch_rows(
        r.NumBatches(Grain(ctx)));
    MPQ_RETURN_NOT_OK(ParallelFor(
        ctx->pool, r.num_rows(), Grain(ctx),
        [&](size_t begin, size_t end) -> Status {
          auto& local = batch_rows[begin / Grain(ctx)];
          std::string key;
          for (size_t j = begin; j < end; ++j) {
            key.clear();
            for (const EqPair& ep : eq_pairs) {
              MPQ_ASSIGN_OR_RETURN(
                  std::string k,
                  CellGroupKey(r.row(j)[static_cast<size_t>(ep.rcol)]));
              key += k;
              key += '\x1f';
            }
            auto it = ht.find(key);
            if (it == ht.end()) continue;
            for (size_t i : it->second) {
              std::vector<Cell> row = ConcatRow(l.row(i), r.row(j));
              MPQ_ASSIGN_OR_RETURN(bool keep,
                                   EvalAllBound(bound_residual, row));
              if (keep) local.push_back(std::move(row));
            }
          }
          return Status::OK();
        }));
    AppendBatchRows(std::move(batch_rows), &out);
    return out;
  }

  // Nested-loop fallback (non-equi joins), parallel over left-side batches.
  std::vector<BoundPredicate> bound;
  for (const Predicate& p : n->predicates) {
    MPQ_ASSIGN_OR_RETURN(BoundPredicate bp, BindPredicate(p, out, n, ctx));
    bound.push_back(std::move(bp));
  }
  std::vector<std::vector<std::vector<Cell>>> batch_rows(
      l.NumBatches(Grain(ctx)));
  MPQ_RETURN_NOT_OK(ParallelFor(
      ctx->pool, l.num_rows(), Grain(ctx),
      [&](size_t begin, size_t end) -> Status {
        auto& local = batch_rows[begin / Grain(ctx)];
        for (size_t i = begin; i < end; ++i) {
          for (size_t j = 0; j < r.num_rows(); ++j) {
            std::vector<Cell> row = ConcatRow(l.row(i), r.row(j));
            MPQ_ASSIGN_OR_RETURN(bool keep, EvalAllBound(bound, row));
            if (keep) local.push_back(std::move(row));
          }
        }
        return Status::OK();
      }));
  AppendBatchRows(std::move(batch_rows), &out);
  return out;
}

/// Aggregation state for one (group, aggregate) pair.
struct AggState {
  // Plaintext accumulators.
  double sum = 0;
  bool sum_is_double = false;
  int64_t count = 0;
  Cell min_max;  // current min/max cell
  bool has_min_max = false;
  // Homomorphic accumulator.
  bool hom = false;
  uint128 hom_cipher = 0;
  uint64_t hom_n = 0;
  int64_t hom_count = 0;
  EncValue hom_template;
};

/// Folds one input cell into `s`. (`cell` is ignored for kCountStar.)
Status AccumulateCell(const PlanNode* n, const Aggregate& agg, const Cell& cell,
                      ExecContext* ctx, AggState* s) {
  switch (agg.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      s->count++;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (cell.is_plain()) {
        const Value& v = cell.plain();
        if (v.is_null()) return Status::OK();
        s->sum += v.AsDouble();
        if (v.is_double()) s->sum_is_double = true;
        s->count++;
      } else {
        const EncValue& ev = cell.enc();
        if (ev.scheme != EncScheme::kPaillier) {
          return Status::Unsupported(StrFormat(
              "node %d: %s over %s ciphertext requires the HOM scheme",
              n->id, AggFuncName(agg.func), EncSchemeName(ev.scheme)));
        }
        auto pm = ctx->public_modulus.find(ev.key_id);
        if (pm == ctx->public_modulus.end()) {
          return Status::NotFound(StrFormat(
              "node %d: no public modulus for key %llu", n->id,
              static_cast<unsigned long long>(ev.key_id)));
        }
        MPQ_ASSIGN_OR_RETURN(uint128 c, PaillierCipherFromBytes(ev.blob));
        if (!s->hom) {
          s->hom = true;
          s->hom_cipher = c;
          s->hom_n = pm->second;
          s->hom_template = ev;
        } else {
          s->hom_cipher = PaillierAdd(s->hom_n, s->hom_cipher, c);
        }
        s->hom_count += ev.aux;
      }
      return Status::OK();
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      bool better;
      if (!s->has_min_max) {
        better = true;
      } else {
        CmpOp op = agg.func == AggFunc::kMin ? CmpOp::kLt : CmpOp::kGt;
        MPQ_ASSIGN_OR_RETURN(better, CompareCells(op, cell, s->min_max));
      }
      if (better) {
        s->min_max = cell;
        s->has_min_max = true;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable aggregate function");
}

/// Folds a later batch's state `src` into `dst`. Merging in batch order keeps
/// first-occurrence semantics (hom_template, min/max tie-breaks) identical to
/// a sequential row scan over the same batch partition.
Status MergeAggState(const Aggregate& agg, AggState src, AggState* dst) {
  switch (agg.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      dst->count += src.count;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg:
      dst->sum += src.sum;
      dst->sum_is_double = dst->sum_is_double || src.sum_is_double;
      dst->count += src.count;
      if (src.hom) {
        if (!dst->hom) {
          dst->hom = true;
          dst->hom_cipher = src.hom_cipher;
          dst->hom_n = src.hom_n;
          dst->hom_template = std::move(src.hom_template);
        } else {
          dst->hom_cipher =
              PaillierAdd(dst->hom_n, dst->hom_cipher, src.hom_cipher);
        }
        dst->hom_count += src.hom_count;
      }
      return Status::OK();
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (!src.has_min_max) return Status::OK();
      bool better;
      if (!dst->has_min_max) {
        better = true;
      } else {
        CmpOp op = agg.func == AggFunc::kMin ? CmpOp::kLt : CmpOp::kGt;
        MPQ_ASSIGN_OR_RETURN(better,
                             CompareCells(op, src.min_max, dst->min_max));
      }
      if (better) {
        dst->min_max = std::move(src.min_max);
        dst->has_min_max = true;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable aggregate function");
}

/// Hash-aggregated groups of one batch, in first-occurrence order.
struct BatchGroups {
  std::unordered_map<std::string, size_t> index;
  std::vector<std::vector<Cell>> keys;
  std::vector<std::vector<AggState>> states;
};

Result<Table> ExecGroupBy(const PlanNode* n, Table in, ExecContext* ctx) {
  std::vector<int> group_cols;
  std::vector<ExecColumn> out_cols;
  std::vector<AttrId> group_attrs = n->group_by.ToVector();
  for (AttrId a : group_attrs) {
    int idx = in.ColIndex(a);
    if (idx < 0) return ColNotFound(n, a, *ctx->catalog);
    group_cols.push_back(idx);
    out_cols.push_back(in.columns()[static_cast<size_t>(idx)]);
  }

  std::vector<int> agg_cols;
  for (const Aggregate& agg : n->aggregates) {
    ExecColumn col;
    if (agg.func == AggFunc::kCountStar) {
      agg_cols.push_back(-1);
      col.attr = agg.out_attr;
      col.name = ctx->catalog->attrs().Name(agg.out_attr);
      col.type = DataType::kInt64;
      out_cols.push_back(col);
      continue;
    }
    int idx = in.ColIndex(agg.attr);
    if (idx < 0) return ColNotFound(n, agg.attr, *ctx->catalog);
    agg_cols.push_back(idx);
    const ExecColumn& src = in.columns()[static_cast<size_t>(idx)];
    col = src;
    col.attr = agg.out_attr;
    col.name = ctx->catalog->attrs().Name(agg.out_attr);
    switch (agg.func) {
      case AggFunc::kCount:
        col.type = DataType::kInt64;
        col.encrypted = false;
        break;
      case AggFunc::kAvg:
        if (src.encrypted) {
          col.hom_avg = true;  // Paillier sum + aux count
        } else {
          col.type = DataType::kDouble;
        }
        break;
      default:
        break;  // sum/min/max keep the source representation
    }
    out_cols.push_back(col);
  }

  // Phase 1: each batch aggregates its rows into private hash groups.
  std::vector<BatchGroups> batches(in.NumBatches(Grain(ctx)));
  MPQ_RETURN_NOT_OK(ParallelFor(
      ctx->pool, in.num_rows(), Grain(ctx),
      [&](size_t begin, size_t end) -> Status {
        BatchGroups& bg = batches[begin / Grain(ctx)];
        std::string key;
        for (size_t r = begin; r < end; ++r) {
          key.clear();
          for (int gc : group_cols) {
            MPQ_ASSIGN_OR_RETURN(
                std::string k,
                CellGroupKey(in.row(r)[static_cast<size_t>(gc)]));
            key += k;
            key += '\x1f';
          }
          auto [it, inserted] = bg.index.try_emplace(key, bg.keys.size());
          if (inserted) {
            std::vector<Cell> gk;
            for (int gc : group_cols) {
              gk.push_back(in.row(r)[static_cast<size_t>(gc)]);
            }
            bg.keys.push_back(std::move(gk));
            bg.states.emplace_back(n->aggregates.size());
          }
          std::vector<AggState>& st = bg.states[it->second];
          for (size_t ai = 0; ai < n->aggregates.size(); ++ai) {
            if (n->aggregates[ai].func == AggFunc::kCountStar) {
              st[ai].count++;
              continue;
            }
            const Cell& cell = in.row(r)[static_cast<size_t>(agg_cols[ai])];
            MPQ_RETURN_NOT_OK(
                AccumulateCell(n, n->aggregates[ai], cell, ctx, &st[ai]));
          }
        }
        return Status::OK();
      }));

  // Phase 2: merge batch groups in batch order — group order is first
  // occurrence over the whole input, like a sequential scan.
  std::unordered_map<std::string, size_t> group_of;
  std::vector<std::vector<Cell>> group_keys;
  std::vector<std::vector<AggState>> states;
  for (BatchGroups& bg : batches) {
    // Recover this batch's insertion order from the stored indices.
    std::vector<const std::string*> order(bg.keys.size());
    for (const auto& [key, idx] : bg.index) order[idx] = &key;
    for (size_t g = 0; g < bg.keys.size(); ++g) {
      auto [it, inserted] = group_of.try_emplace(*order[g], group_keys.size());
      if (inserted) {
        group_keys.push_back(std::move(bg.keys[g]));
        states.push_back(std::move(bg.states[g]));
        continue;
      }
      std::vector<AggState>& dst = states[it->second];
      for (size_t ai = 0; ai < n->aggregates.size(); ++ai) {
        MPQ_RETURN_NOT_OK(MergeAggState(n->aggregates[ai],
                                        std::move(bg.states[g][ai]),
                                        &dst[ai]));
      }
    }
  }

  // Degenerate global aggregation over an empty input: emit no rows
  // (matching our engine's semantics; SQL would emit one NULL row).
  Table out(out_cols);
  for (size_t g = 0; g < group_keys.size(); ++g) {
    std::vector<Cell> row = group_keys[g];
    for (size_t ai = 0; ai < n->aggregates.size(); ++ai) {
      const Aggregate& agg = n->aggregates[ai];
      const AggState& s = states[g][ai];
      switch (agg.func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          row.push_back(Cell(Value(s.count)));
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg: {
          if (s.hom) {
            EncValue ev = s.hom_template;
            ev.blob = PaillierCipherToBytes(s.hom_cipher);
            ev.aux = s.hom_count;
            row.push_back(Cell(std::move(ev)));
          } else if (agg.func == AggFunc::kAvg) {
            row.push_back(Cell(Value(
                s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0)));
          } else if (s.sum_is_double) {
            row.push_back(Cell(Value(s.sum)));
          } else {
            row.push_back(
                Cell(Value(static_cast<int64_t>(std::llround(s.sum)))));
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          row.push_back(s.has_min_max ? s.min_max : Cell(Value::Null()));
          break;
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Result<Table> ExecUdf(const PlanNode* n, Table in, ExecContext* ctx) {
  std::vector<AttrId> inputs = n->udf_inputs.ToVector();
  std::vector<int> in_cols;
  for (AttrId a : inputs) {
    int idx = in.ColIndex(a);
    if (idx < 0) return ColNotFound(n, a, *ctx->catalog);
    in_cols.push_back(idx);
  }
  int out_src = in.ColIndex(n->udf_output);
  if (out_src < 0) return ColNotFound(n, n->udf_output, *ctx->catalog);

  // Resolve the implementation; fall back to a built-in numeric combiner.
  UdfImpl impl;
  auto it = ctx->udfs.find(n->udf_name);
  if (it != ctx->udfs.end()) {
    impl = it->second;
  } else {
    impl = [](const std::vector<Cell>& cells) -> Result<Cell> {
      // Default udf: over plaintext, a weighted numeric combination; over
      // ciphertexts, an opaque deterministic digest (simulating an
      // encrypted-domain analytic whose output is itself encrypted).
      bool all_plain = true;
      for (const Cell& c : cells) all_plain = all_plain && c.is_plain();
      if (all_plain) {
        double acc = 0;
        double w = 1.0;
        for (const Cell& c : cells) {
          if (!c.plain().is_null() && !c.plain().is_string()) {
            acc += w * c.plain().AsDouble();
          } else if (c.plain().is_string()) {
            acc += w * static_cast<double>(c.plain().AsString().size());
          }
          w *= 0.5;
        }
        return Cell(Value(acc));
      }
      EncValue out;
      uint64_t h = 0x6a09e667f3bcc909ull;
      for (const Cell& c : cells) {
        const std::string& bytes =
            c.is_plain() ? c.plain().Serialize() : c.enc().blob;
        for (unsigned char b : bytes) h = SplitMix64(h ^ b);
        if (c.is_encrypted()) {
          out.scheme = c.enc().scheme;
          out.key_id = c.enc().key_id;
        }
      }
      out.scheme = EncScheme::kDeterministic;
      out.blob.assign(reinterpret_cast<const char*>(&h), 8);
      return Cell(std::move(out));
    };
  }

  // Output layout: child columns minus (inputs \ {output}), with the output
  // column's cells replaced by the udf result. Registered implementations
  // are not required to be thread-safe, so udf rows run sequentially.
  std::vector<ExecColumn> cols;
  std::vector<int> keep;
  for (size_t i = 0; i < in.num_columns(); ++i) {
    AttrId a = in.columns()[i].attr;
    if (n->udf_inputs.Contains(a) && a != n->udf_output) continue;
    keep.push_back(static_cast<int>(i));
    cols.push_back(in.columns()[i]);
  }
  Table out(std::move(cols));
  out.ReserveRows(in.num_rows());
  // Concurrent sibling subtrees may both reach a udf node; serialize the
  // invocation loop so one shared UdfImpl is never entered from two threads.
  std::lock_guard<std::mutex> udf_lock(*ctx->udf_mu);
  for (size_t r = 0; r < in.num_rows(); ++r) {
    std::vector<Cell> args;
    args.reserve(in_cols.size());
    for (int ic : in_cols) args.push_back(in.row(r)[static_cast<size_t>(ic)]);
    MPQ_ASSIGN_OR_RETURN(Cell result, impl(args));
    std::vector<Cell> row;
    row.reserve(keep.size());
    for (int i : keep) {
      if (i == out_src) {
        row.push_back(result);
      } else {
        row.push_back(in.row(r)[static_cast<size_t>(i)]);
      }
    }
    out.AddRow(std::move(row));
  }
  // The output column's representation may have changed (e.g. plaintext
  // result over plaintext inputs): reflect the first row's form.
  if (out.num_rows() > 0) {
    for (size_t i = 0; i < out.num_columns(); ++i) {
      if (out.columns()[i].attr == n->udf_output) {
        const Cell& c = out.row(0)[i];
        out.columns()[i].encrypted = c.is_encrypted();
        if (c.is_encrypted()) {
          out.columns()[i].scheme = c.enc().scheme;
          out.columns()[i].key_id = c.enc().key_id;
        } else if (!c.plain().is_string()) {
          out.columns()[i].type =
              c.plain().is_double() ? DataType::kDouble : DataType::kInt64;
        }
      }
    }
  }
  return out;
}

Result<Table> ExecEncrypt(const PlanNode* n, Table in, ExecContext* ctx) {
  if (ctx->keyring == nullptr) {
    return Status::NotFound("engine holds no keyring");
  }
  std::vector<AttrId> attrs = n->attrs.ToVector();
  for (AttrId a : attrs) {
    int idx = in.ColIndex(a);
    if (idx < 0) return ColNotFound(n, a, *ctx->catalog);
    ExecColumn& col = in.columns()[static_cast<size_t>(idx)];
    if (col.encrypted) {
      return Status::InvalidArgument(StrFormat(
          "node %d: attribute %s is already encrypted", n->id,
          col.name.c_str()));
    }
    EncScheme scheme = ctx->crypto != nullptr ? ctx->crypto->SchemeOf(a)
                                              : EncScheme::kDeterministic;
    uint64_t key_id = ctx->crypto != nullptr ? ctx->crypto->KeyOf(a) : 0;
    MPQ_ASSIGN_OR_RETURN(KeyMaterial km, ctx->keyring->Get(key_id));
    // One PRF-derived nonce range per (node, column): row r uses
    // nonce_base + r, so ciphertexts do not depend on batch scheduling,
    // thread count, or sibling-subtree execution order.
    uint64_t nonce_base = ctx->ColumnNonceBase(n->id, a);
    MPQ_RETURN_NOT_OK(ParallelFor(
        ctx->pool, in.num_rows(), Grain(ctx),
        [&](size_t begin, size_t end) -> Status {
          std::vector<Cell*> cells;
          cells.reserve(end - begin);
          for (size_t r = begin; r < end; ++r) {
            cells.push_back(&in.row(r)[static_cast<size_t>(idx)]);
          }
          return EncryptCellBatch(cells.data(), cells.size(), scheme, key_id,
                                  km, nonce_base + begin);
        }));
    col.encrypted = true;
    col.scheme = scheme;
    col.key_id = key_id;
  }
  return in;
}

Result<Table> ExecDecrypt(const PlanNode* n, Table in, ExecContext* ctx) {
  if (ctx->keyring == nullptr) {
    return Status::NotFound("engine holds no keyring");
  }
  std::vector<AttrId> attrs = n->attrs.ToVector();
  for (AttrId a : attrs) {
    int idx = in.ColIndex(a);
    if (idx < 0) return ColNotFound(n, a, *ctx->catalog);
    ExecColumn& col = in.columns()[static_cast<size_t>(idx)];
    if (!col.encrypted) {
      return Status::InvalidArgument(StrFormat(
          "node %d: attribute %s is not encrypted", n->id, col.name.c_str()));
    }
    MPQ_ASSIGN_OR_RETURN(KeyMaterial km, ctx->keyring->Get(col.key_id));
    bool avg = col.hom_avg;
    MPQ_RETURN_NOT_OK(ParallelFor(
        ctx->pool, in.num_rows(), Grain(ctx),
        [&](size_t begin, size_t end) -> Status {
          std::vector<Cell*> cells;
          cells.reserve(end - begin);
          for (size_t r = begin; r < end; ++r) {
            cells.push_back(&in.row(r)[static_cast<size_t>(idx)]);
          }
          return DecryptCellBatch(cells.data(), cells.size(), km, col.type,
                                  avg);
        }));
    col.encrypted = false;
    if (avg) {
      col.type = DataType::kDouble;
      col.hom_avg = false;
    }
  }
  return in;
}

}  // namespace

Table MakeBaseTable(const RelationDef& rel) {
  std::vector<ExecColumn> cols;
  for (const Column& c : rel.schema.columns()) {
    ExecColumn ec;
    ec.attr = c.attr;
    ec.name = c.name;
    ec.type = c.type;
    cols.push_back(ec);
  }
  return Table(std::move(cols));
}

Result<Table> ExecuteNodeOnInputs(const PlanNode* n, std::vector<Table> inputs,
                                  ExecContext* ctx) {
  if (inputs.size() != n->num_children()) {
    return Status::InvalidArgument(StrFormat(
        "node %d (%s): expected %zu operand tables, got %zu", n->id,
        OpKindName(n->kind), n->num_children(), inputs.size()));
  }
  switch (n->kind) {
    case OpKind::kBase: {
      auto it = ctx->base_tables.find(n->rel);
      if (it == ctx->base_tables.end()) {
        return Status::NotFound(StrFormat(
            "no data loaded for relation %s",
            ctx->catalog->Get(n->rel).name.c_str()));
      }
      return *it->second;  // copy
    }
    case OpKind::kProject:
      return ExecProject(n, std::move(inputs[0]), ctx);
    case OpKind::kSelect:
      return ExecSelect(n, std::move(inputs[0]), ctx);
    case OpKind::kCartesian:
      return ExecCartesian(n, std::move(inputs[0]), std::move(inputs[1]), ctx);
    case OpKind::kJoin:
      return ExecJoin(n, std::move(inputs[0]), std::move(inputs[1]), ctx);
    case OpKind::kGroupBy:
      return ExecGroupBy(n, std::move(inputs[0]), ctx);
    case OpKind::kUdf:
      return ExecUdf(n, std::move(inputs[0]), ctx);
    case OpKind::kEncrypt:
      return ExecEncrypt(n, std::move(inputs[0]), ctx);
    case OpKind::kDecrypt:
      return ExecDecrypt(n, std::move(inputs[0]), ctx);
  }
  return Status::Internal("unreachable operator kind");
}

Result<Table> ExecutePlan(const PlanNode* root, ExecContext* ctx) {
  size_t nc = root->num_children();
  std::vector<Table> inputs;
  inputs.reserve(nc);

  if (ctx->pool != nullptr && ctx->pool->size() > 0 && nc > 1) {
    // Independent subtrees run concurrently: children 1..n-1 go to the pool,
    // child 0 runs on this thread, which then helps drain the pool while
    // waiting (deadlock-free under recursive submission).
    std::vector<std::optional<Result<Table>>> results(nc);
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = nc - 1;
    for (size_t i = 1; i < nc; ++i) {
      ctx->pool->Submit([&, i] {
        Result<Table> r = ExecutePlan(root->child(i), ctx);
        std::lock_guard<std::mutex> lock(mu);
        results[i] = std::move(r);
        if (--remaining == 0) cv.notify_all();
      });
    }
    results[0] = ExecutePlan(root->child(0), ctx);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (remaining == 0) break;
      }
      if (ctx->pool->TryRunOneTask()) continue;
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::milliseconds(1),
                  [&] { return remaining == 0; });
    }
    // Report the lowest-index child error for determinism.
    for (size_t i = 0; i < nc; ++i) {
      if (!results[i]->ok()) return results[i]->status();
    }
    for (size_t i = 0; i < nc; ++i) {
      inputs.push_back(std::move(*results[i]).value());
    }
    return ExecuteNodeOnInputs(root, std::move(inputs), ctx);
  }

  for (size_t i = 0; i < nc; ++i) {
    MPQ_ASSIGN_OR_RETURN(Table t, ExecutePlan(root->child(i), ctx));
    inputs.push_back(std::move(t));
  }
  return ExecuteNodeOnInputs(root, std::move(inputs), ctx);
}

}  // namespace mpq

#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include <unistd.h>

#include "common/flat_hash.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "crypto/cipher.h"
#include "crypto/column_codec.h"
#include "exec/morsel.h"
#include "obs/trace.h"
#include "storage/segment.h"

namespace mpq {

namespace {

/// Batch size with the zero value normalized, matching Table::Batch and the
/// ParallelFor grain so `begin / Grain(ctx)` is always a valid batch index.
size_t Grain(const ExecContext* ctx) {
  return ctx->batch_size == 0 ? 1 : ctx->batch_size;
}

/// The per-batch loop of operator `kind`: routed through the global
/// MorselScheduler when one is attached (all concurrent queries then draw
/// from one task queue), private ParallelFor fan-out otherwise. The (n,
/// grain) morsel partition is identical either way, so results are too.
/// Also accounts the loop's morsel count for the operator profile and for
/// per-operator span attribution.
Status OpParallelFor(ExecContext* ctx, OpKind kind, size_t n,
                     const std::function<Status(size_t, size_t)>& fn) {
  size_t grain = Grain(ctx);
  if (n > 0) {
    uint64_t m = (n + grain - 1) / grain;
    if (ctx->op_profile != nullptr) ctx->op_profile->RecordMorsels(kind, m);
    ctx->op_morsels.fetch_add(m, std::memory_order_relaxed);
  }
  if (ctx->morsels != nullptr) return ctx->morsels->Run(n, grain, fn);
  return ParallelFor(ctx->pool, n, grain, fn);
}

Status ColNotFound(const PlanNode* n, AttrId a, const Catalog& catalog) {
  return Status::Internal(StrFormat(
      "node %d (%s): attribute %s not found in operand table", n->id,
      OpKindName(n->kind), catalog.attrs().Name(a).c_str()));
}

/// Encrypts a predicate constant to match an encrypted column, using the
/// dispatcher's keys (conditions arrive pre-encrypted in real dispatch).
Result<Cell> ConstForColumn(const ExecColumn& col, const Value& v,
                            ExecContext* ctx) {
  if (!col.encrypted) return Cell(v);
  if (ctx->dispatcher_keyring == nullptr) {
    return Status::NotFound("no dispatcher keyring to encrypt constants");
  }
  MPQ_ASSIGN_OR_RETURN(KeyMaterial km,
                       ctx->dispatcher_keyring->Get(col.key_id));
  MPQ_ASSIGN_OR_RETURN(
      EncValue ev,
      EncryptValue(v, col.scheme, col.key_id, km, ctx->NextNonce()));
  return Cell(std::move(ev));
}

/// One predicate bound to column indices of an operand table. Constants for
/// encrypted columns are bound once per operator, then shared read-only by
/// all batches.
struct BoundPredicate {
  CmpOp op;
  int lhs_col;
  int rhs_col = -1;     // >= 0 for attr-attr predicates
  Cell rhs_const;       // used when rhs_col < 0
};

Result<BoundPredicate> BindPredicate(const Predicate& p, const Table& t,
                                     const PlanNode* n, ExecContext* ctx) {
  BoundPredicate bp;
  bp.op = p.op;
  bp.lhs_col = t.ColIndex(p.lhs);
  if (bp.lhs_col < 0) return ColNotFound(n, p.lhs, *ctx->catalog);
  if (p.rhs_is_attr) {
    bp.rhs_col = t.ColIndex(p.rhs_attr);
    if (bp.rhs_col < 0) return ColNotFound(n, p.rhs_attr, *ctx->catalog);
  } else {
    MPQ_ASSIGN_OR_RETURN(
        bp.rhs_const,
        ConstForColumn(t.columns()[static_cast<size_t>(bp.lhs_col)],
                       p.rhs_value, ctx));
  }
  return bp;
}

bool ApplyCmp(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

bool PlainTypedRep(ColumnRep r) {
  return r == ColumnRep::kInt64 || r == ColumnRep::kDouble ||
         r == ColumnRep::kString;
}

/// Value::Compare's type tag: NULL 0, numeric 1, string 2.
int RepClass(ColumnRep r) { return r == ColumnRep::kString ? 2 : 1; }

/// Three-way comparison of plain typed rows `(a, i)` vs `(b, j)`,
/// bit-compatible with Value::Compare (NULL first, numerics compared as
/// double, number-vs-string by type tag).
int CmpPlainRows(const ColumnData& a, size_t i, const ColumnData& b, size_t j) {
  bool an = a.IsNull(i), bn = b.IsNull(j);
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  int ca = RepClass(a.rep()), cb = RepClass(b.rep());
  if (ca != cb) return ca < cb ? -1 : 1;
  if (ca == 2) {
    int c = a.str()[i].compare(b.str()[j]);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  double x = a.rep() == ColumnRep::kInt64 ? static_cast<double>(a.i64()[i])
                                          : a.f64()[i];
  double y = b.rep() == ColumnRep::kInt64 ? static_cast<double>(b.i64()[j])
                                          : b.f64()[j];
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

/// CompareCells over two ciphertext cells, operating on EncValues directly.
Result<bool> CmpEncRows(CmpOp op, const EncValue& ea, const EncValue& eb) {
  if (ea.scheme != eb.scheme || ea.key_id != eb.key_id) {
    return Status::Unsupported(
        "cannot compare ciphertexts under different schemes or keys");
  }
  switch (ea.scheme) {
    case EncScheme::kDeterministic:
      if (op == CmpOp::kEq) return ea.blob == eb.blob;
      if (op == CmpOp::kNe) return ea.blob != eb.blob;
      return Status::Unsupported(
          "deterministic ciphertexts support only equality comparison");
    case EncScheme::kOpe:
      return ApplyCmp(op, ea.blob.compare(eb.blob));
    case EncScheme::kRandom:
      return Status::Unsupported("randomized ciphertexts are not comparable");
    case EncScheme::kPaillier:
      return Status::Unsupported("Paillier ciphertexts are not comparable");
  }
  return Status::Internal("unreachable scheme");
}

/// Refines `sel` (ascending row indices into `t`) down to the rows
/// satisfying `bp`, column-at-a-time. Typed plain and DET/OPE ciphertext
/// columns take branch-light vector paths; anything unusual falls back to
/// materialized CompareCells with identical semantics.
Status FilterSelection(const BoundPredicate& bp, const Table& t,
                       SelectionVector* sel) {
  const ColumnData& lhs = t.col(static_cast<size_t>(bp.lhs_col));
  size_t kept = 0;
  SelectionVector& s = *sel;

  // Attr-attr predicates.
  if (bp.rhs_col >= 0) {
    const ColumnData& rhs = t.col(static_cast<size_t>(bp.rhs_col));
    if (PlainTypedRep(lhs.rep()) && PlainTypedRep(rhs.rep())) {
      for (uint32_t r : s) {
        if (ApplyCmp(bp.op, CmpPlainRows(lhs, r, rhs, r))) s[kept++] = r;
      }
      s.resize(kept);
      return Status::OK();
    }
    if (lhs.rep() == ColumnRep::kEnc && rhs.rep() == ColumnRep::kEnc) {
      for (uint32_t r : s) {
        if (lhs.IsNull(r) || rhs.IsNull(r)) {
          // A plain NULL inside a ciphertext column: defer to the generic
          // cell comparison (mixed plain/encrypted is an error there).
          MPQ_ASSIGN_OR_RETURN(
              bool keep, CompareCells(bp.op, lhs.GetCell(r), rhs.GetCell(r)));
          if (keep) s[kept++] = r;
          continue;
        }
        MPQ_ASSIGN_OR_RETURN(bool keep,
                             CmpEncRows(bp.op, lhs.enc()[r], rhs.enc()[r]));
        if (keep) s[kept++] = r;
      }
      s.resize(kept);
      return Status::OK();
    }
    for (uint32_t r : s) {
      MPQ_ASSIGN_OR_RETURN(
          bool keep, CompareCells(bp.op, lhs.GetCell(r), rhs.GetCell(r)));
      if (keep) s[kept++] = r;
    }
    s.resize(kept);
    return Status::OK();
  }

  // Attr-constant predicates.
  if (bp.rhs_const.is_plain() && PlainTypedRep(lhs.rep())) {
    const Value& v = bp.rhs_const.plain();
    int cclass = v.is_null() ? 0 : (v.is_string() ? 2 : 1);
    double num = cclass == 1 ? v.AsDouble() : 0;
    const std::string* str = cclass == 2 ? &v.AsString() : nullptr;
    int lclass = RepClass(lhs.rep());
    for (uint32_t r : s) {
      int cmp;
      if (lhs.IsNull(r)) {
        cmp = cclass == 0 ? 0 : -1;
      } else if (cclass == 0) {
        cmp = 1;
      } else if (lclass != cclass) {
        cmp = lclass < cclass ? -1 : 1;
      } else if (lclass == 2) {
        int c = lhs.str()[r].compare(*str);
        cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
      } else {
        double x = lhs.rep() == ColumnRep::kInt64
                       ? static_cast<double>(lhs.i64()[r])
                       : lhs.f64()[r];
        cmp = x < num ? -1 : (x > num ? 1 : 0);
      }
      if (ApplyCmp(bp.op, cmp)) s[kept++] = r;
    }
    s.resize(kept);
    return Status::OK();
  }
  if (bp.rhs_const.is_encrypted() && lhs.rep() == ColumnRep::kEnc) {
    const EncValue& ev = bp.rhs_const.enc();
    for (uint32_t r : s) {
      if (lhs.IsNull(r)) {
        MPQ_ASSIGN_OR_RETURN(
            bool keep, CompareCells(bp.op, lhs.GetCell(r), bp.rhs_const));
        if (keep) s[kept++] = r;
        continue;
      }
      MPQ_ASSIGN_OR_RETURN(bool keep, CmpEncRows(bp.op, lhs.enc()[r], ev));
      if (keep) s[kept++] = r;
    }
    s.resize(kept);
    return Status::OK();
  }
  for (uint32_t r : s) {
    MPQ_ASSIGN_OR_RETURN(bool keep,
                         CompareCells(bp.op, lhs.GetCell(r), bp.rhs_const));
    if (keep) s[kept++] = r;
  }
  s.resize(kept);
  return Status::OK();
}

Status FilterAll(const std::vector<BoundPredicate>& preds, const Table& t,
                 SelectionVector* sel) {
  for (const BoundPredicate& bp : preds) {
    if (sel->empty()) return Status::OK();
    MPQ_RETURN_NOT_OK(FilterSelection(bp, t, sel));
  }
  return Status::OK();
}

/// A batch's output columns, merged into the final table in batch order.
using Chunk = std::vector<ColumnData>;

/// An empty chunk whose column reps mirror the actual source columns (not
/// just the metadata), so gathers stay on the typed fast path even for
/// demoted columns.
Chunk ChunkLike(const Table& t) {
  Chunk ch;
  ch.reserve(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    ch.emplace_back(t.col(c).rep());
  }
  return ch;
}

Chunk ChunkLike(const Table& l, const Table& r) {
  Chunk ch;
  ch.reserve(l.num_columns() + r.num_columns());
  for (size_t c = 0; c < l.num_columns(); ++c) {
    ch.emplace_back(l.col(c).rep());
  }
  for (size_t c = 0; c < r.num_columns(); ++c) {
    ch.emplace_back(r.col(c).rep());
  }
  return ch;
}

Table TableFromColumns(std::vector<ExecColumn> cols,
                       std::vector<ColumnData> data) {
  Table t;
  for (size_t i = 0; i < cols.size(); ++i) {
    t.AddColumn(std::move(cols[i]), std::move(data[i]));
  }
  return t;
}

/// Splices per-batch chunks into a table, stealing chunk buffers (batch
/// order, so results are identical at any thread count).
Table MergeChunks(std::vector<ExecColumn> cols, std::vector<Chunk> chunks) {
  std::vector<ColumnData> data(cols.size());
  bool first = true;
  for (Chunk& ch : chunks) {
    if (ch.empty()) continue;  // batch produced nothing (e.g. no matches)
    if (first) {
      data = std::move(ch);
      first = false;
      continue;
    }
    for (size_t c = 0; c < data.size(); ++c) {
      data[c].MoveAppend(std::move(ch[c]));
    }
  }
  return TableFromColumns(std::move(cols), std::move(data));
}

Result<Table> ExecProject(const PlanNode* n, Table in, ExecContext* ctx) {
  std::vector<int> keep;
  for (size_t i = 0; i < in.num_columns(); ++i) {
    if (n->attrs.Contains(in.columns()[i].attr)) {
      keep.push_back(static_cast<int>(i));
    }
  }
  if (keep.size() != n->attrs.size()) {
    AttrSet missing = n->attrs;
    for (int i : keep) missing.Erase(in.columns()[static_cast<size_t>(i)].attr);
    return ColNotFound(n, missing.ToVector().front(), *ctx->catalog);
  }
  // Pure column movement: no per-row work at all — shared payloads, so a
  // projection over a base scan copies zero cells.
  Table out;
  for (int i : keep) {
    size_t c = static_cast<size_t>(i);
    out.AddColumn(std::move(in.columns()[c]), in.ShareCol(c));
  }
  return out;
}

Result<Table> ExecSelect(const PlanNode* n, Table in, ExecContext* ctx) {
  std::vector<BoundPredicate> preds;
  for (const Predicate& p : n->predicates) {
    MPQ_ASSIGN_OR_RETURN(BoundPredicate bp, BindPredicate(p, in, n, ctx));
    preds.push_back(std::move(bp));
  }
  // Phase 1 (parallel): per-batch selection vectors. With a
  // SharedScanManager attached, concurrent selects over the same column
  // payload coalesce onto one batch-claim loop — each query still runs its
  // own predicates per batch, so coalescing is pure scheduling and the
  // per-batch selection vectors are identical either way.
  std::vector<SelectionVector> sels(in.NumBatches(Grain(ctx)));
  auto fill_batch = [&](size_t batch, size_t begin, size_t end) -> Status {
    SelectionVector& sel = sels[batch];
    sel.resize(end - begin);
    for (size_t r = begin; r < end; ++r) {
      sel[r - begin] = static_cast<uint32_t>(r);
    }
    return FilterAll(preds, in, &sel);
  };
  if (ctx->shared_scans != nullptr && in.num_columns() > 0 &&
      in.num_rows() > 0) {
    if (ctx->op_profile != nullptr) {
      ctx->op_profile->RecordMorsels(OpKind::kSelect, sels.size());
    }
    ctx->op_morsels.fetch_add(sels.size(), std::memory_order_relaxed);
    // The first column's payload pointer identifies the physical table:
    // snapshots share column payloads copy-on-write, so two queries over
    // the same snapshot see the same pointer while a mutated or
    // re-materialized table does not (and correctly scans alone).
    MPQ_RETURN_NOT_OK(ctx->shared_scans->Scan(
        in.ShareCol(0).get(), in.num_rows(), Grain(ctx), fill_batch));
  } else {
    MPQ_RETURN_NOT_OK(OpParallelFor(
        ctx, OpKind::kSelect, in.num_rows(),
        [&](size_t begin, size_t end) -> Status {
          return fill_batch(begin / Grain(ctx), begin, end);
        }));
  }
  size_t total = 0;
  for (const SelectionVector& sel : sels) total += sel.size();
  if (total == in.num_rows()) return in;  // nothing filtered: reuse columns

  // Phase 2: gather the survivors column-at-a-time, in batch order.
  std::vector<ColumnData> data;
  data.reserve(in.num_columns());
  for (size_t c = 0; c < in.num_columns(); ++c) {
    ColumnData col(in.col(c).rep());
    col.Reserve(total);
    for (const SelectionVector& sel : sels) {
      col.AppendSelected(in.col(c), sel.data(), sel.size());
    }
    data.push_back(std::move(col));
  }
  return TableFromColumns(in.columns(), std::move(data));
}

// ---------------------------------------------------- join/group-by keys ---

/// How one key column folds into the fixed-width code words of the typed
/// hash path.
enum class KeyKind : uint8_t { kI64, kF64, kStr, kEnc, kBytes };

KeyKind KindOf(const ColumnData& c) {
  switch (c.rep()) {
    case ColumnRep::kInt64:
      return KeyKind::kI64;
    case ColumnRep::kDouble:
      return KeyKind::kF64;
    case ColumnRep::kString:
      return KeyKind::kStr;
    case ColumnRep::kEnc:
      return KeyKind::kEnc;
    case ColumnRep::kCell:
      return KeyKind::kBytes;
  }
  return KeyKind::kBytes;
}

/// Probe rows holding a dictionary value the build side never interned are
/// flagged here in the null word; the bit is never set on a build key, so
/// equality always fails without consulting any dictionary twice.
constexpr uint64_t kProbeMissBit = 1ull << 63;

/// Encodes the key columns of a table over a row range as fixed-width code
/// words: one word per column — raw int64/double bits, or a ColumnDict code
/// for string and DET/OPE ciphertext columns — plus a trailing null/miss
/// word when any key column can hold NULLs (or a probe can miss a
/// dictionary). Word-tuple equality reproduces per-column AppendKeyBytes
/// equality (the caller pairs only same-rep columns for joins): NULL
/// matches NULL, doubles compare bitwise, strings/blobs by content via the
/// dictionary. No key byte is ever materialized.
class TypedKeyCodec {
 public:
  /// The typed path covers every rep except the heterogeneous kCell
  /// fallback (and caps key arity so null bits fit one word).
  static bool Eligible(const Table& t, const std::vector<int>& cols) {
    if (cols.size() >= 62) return false;
    for (int c : cols) {
      if (t.col(static_cast<size_t>(c)).rep() == ColumnRep::kCell) {
        return false;
      }
    }
    return true;
  }

  /// `with_null_word` must be set when any key column (of the build or a
  /// probe table) can hold NULLs, or when dictionary probes can miss; an
  /// empty key always keeps the word so rows have nonzero width.
  void Init(const Table& t, const std::vector<int>& cols,
            bool with_null_word) {
    null_word_ = with_null_word || cols.empty();
    cols_.clear();
    kinds_.clear();
    dicts_.clear();
    for (int c : cols) {
      const ColumnData& col = t.col(static_cast<size_t>(c));
      cols_.push_back(&col);
      KeyKind kind = KindOf(col);
      kinds_.push_back(kind);
      dicts_.push_back(kind == KeyKind::kStr || kind == KeyKind::kEnc
                           ? std::make_unique<ColumnDict>(&col)
                           : nullptr);
    }
  }

  /// Words per row: one per key column, plus the null/miss word if present.
  size_t width() const { return cols_.size() + (null_word_ ? 1 : 0); }

  /// Encodes rows [begin, end) of the Init table into `words` (row-major,
  /// width() words per row), interning new dictionary codes — the build
  /// side, which must run sequentially for deterministic codes.
  Status EncodeBuild(size_t begin, size_t end, std::vector<uint64_t>* words,
                     std::vector<uint32_t>* scratch) {
    return Encode(cols_, /*probe=*/false, begin, end, words, scratch);
  }

  /// Probe-mode encoding of another table's columns (pairwise same KeyKind
  /// as the build columns) against the build dictionaries. Read-only: safe
  /// from concurrent probe batches.
  Status EncodeProbe(const Table& t, const std::vector<int>& probe_cols,
                     size_t begin, size_t end, std::vector<uint64_t>* words,
                     std::vector<uint32_t>* scratch) const {
    std::vector<const ColumnData*> cols;
    cols.reserve(probe_cols.size());
    for (int c : probe_cols) cols.push_back(&t.col(static_cast<size_t>(c)));
    return Encode(cols, /*probe=*/true, begin, end, words, scratch);
  }

 private:
  Status Encode(const std::vector<const ColumnData*>& cols, bool probe,
                size_t begin, size_t end, std::vector<uint64_t>* words,
                std::vector<uint32_t>* scratch) const {
    size_t n = end - begin;
    size_t w = width();
    words->assign(n * w, 0);
    uint64_t* out = words->data();
    for (size_t k = 0; k < cols.size(); ++k) {
      const ColumnData& col = *cols[k];
      switch (kinds_[k]) {
        case KeyKind::kI64: {
          const int64_t* v = col.i64().data();
          for (size_t i = 0; i < n; ++i) {
            out[i * w + k] = static_cast<uint64_t>(v[begin + i]);
          }
          break;
        }
        case KeyKind::kF64: {
          const double* v = col.f64().data();
          for (size_t i = 0; i < n; ++i) {
            uint64_t bits;
            std::memcpy(&bits, &v[begin + i], 8);
            out[i * w + k] = bits;
          }
          break;
        }
        case KeyKind::kStr:
        case KeyKind::kEnc: {
          scratch->resize(n);
          uint32_t* codes = scratch->data();
          if (probe) {
            MPQ_RETURN_NOT_OK(dicts_[k]->ProbeRange(col, begin, end, codes));
          } else {
            MPQ_RETURN_NOT_OK(dicts_[k]->EncodeRange(begin, end, codes));
          }
          for (size_t i = 0; i < n; ++i) {
            if (codes[i] == ColumnDict::kMiss) {
              out[i * w + w - 1] |= kProbeMissBit;  // null_word_ is set
            } else {
              out[i * w + k] = codes[i];
            }
          }
          break;
        }
        case KeyKind::kBytes:
          return Status::Internal("typed key codec over a kCell column");
      }
      if (col.has_nulls()) {
        // Init's with_null_word precondition guarantees the word exists.
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(begin + i)) {
            out[i * w + k] = 0;
            out[i * w + w - 1] |= 1ull << k;
          }
        }
      }
    }
    return Status::OK();
  }

  bool null_word_ = true;
  std::vector<const ColumnData*> cols_;
  std::vector<KeyKind> kinds_;
  std::vector<std::unique_ptr<ColumnDict>> dicts_;
};

/// Whether the typed codec over `cols` of `t` needs the null/miss word.
bool KeyColsNeedNullWord(const Table& t, const std::vector<int>& cols) {
  for (int c : cols) {
    const ColumnData& col = t.col(static_cast<size_t>(c));
    if (col.has_nulls() || col.rep() == ColumnRep::kString ||
        col.rep() == ColumnRep::kEnc) {
      return true;
    }
  }
  return false;
}

/// Byte-key fallback for heterogeneous kCell columns (and cross-rep join
/// pairs): AppendKeyBytes per column, each component closed by its length
/// — an unambiguous (back-to-front parseable) encoding, so concatenated
/// keys can never alias across column boundaries and byte-key equality is
/// exactly per-column byte equality, the same relation the typed code
/// words implement. Stored in a ByteArena behind a FlatHashIndex instead
/// of per-key std::unordered_map nodes.
Status RowKeyBytes(const Table& t, const std::vector<int>& cols, size_t r,
                   std::string* key) {
  key->clear();
  for (int c : cols) {
    size_t start = key->size();
    MPQ_RETURN_NOT_OK(AppendKeyBytes(t.col(static_cast<size_t>(c)), r, key));
    auto len = static_cast<uint32_t>(key->size() - start);
    key->append(reinterpret_cast<const char*>(&len), sizeof(len));
  }
  return Status::OK();
}

std::vector<ExecColumn> ConcatColumns(const Table& l, const Table& r) {
  std::vector<ExecColumn> cols = l.columns();
  cols.insert(cols.end(), r.columns().begin(), r.columns().end());
  return cols;
}

/// Gathers the (left, right) row pairs `(li[k], ri[k])` into a chunk over
/// the concatenated layout.
Chunk GatherPairs(const Table& l, const Table& r, const SelectionVector& li,
                  const SelectionVector& ri) {
  Chunk ch = ChunkLike(l, r);
  for (size_t c = 0; c < l.num_columns(); ++c) {
    ch[c].Reserve(li.size());
    ch[c].AppendSelected(l.col(c), li.data(), li.size());
  }
  for (size_t c = 0; c < r.num_columns(); ++c) {
    ch[l.num_columns() + c].Reserve(ri.size());
    ch[l.num_columns() + c].AppendSelected(r.col(c), ri.data(), ri.size());
  }
  return ch;
}

/// Filters a chunk over `out_cols` by `preds`, rebuilding it only when rows
/// were dropped.
Result<Chunk> FilterChunk(Chunk ch, const std::vector<ExecColumn>& out_cols,
                          const std::vector<BoundPredicate>& preds) {
  if (preds.empty() || ch.empty()) return ch;
  Table probe = TableFromColumns(out_cols, std::move(ch));
  SelectionVector sel(probe.num_rows());
  for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<uint32_t>(i);
  MPQ_RETURN_NOT_OK(FilterAll(preds, probe, &sel));
  Chunk out = ChunkLike(probe);
  for (size_t c = 0; c < probe.num_columns(); ++c) {
    if (sel.size() == probe.num_rows()) {
      out[c] = std::move(probe.col_mut(c));
    } else {
      out[c].Reserve(sel.size());
      out[c].AppendSelected(probe.col(c), sel.data(), sel.size());
    }
  }
  return out;
}

Result<Table> ExecCartesian(const PlanNode*, Table l, Table r,
                            ExecContext* ctx) {
  std::vector<ExecColumn> out_cols = ConcatColumns(l, r);
  std::vector<Chunk> chunks(l.NumBatches(Grain(ctx)));
  MPQ_RETURN_NOT_OK(OpParallelFor(
      ctx, OpKind::kCartesian, l.num_rows(),
      [&](size_t begin, size_t end) -> Status {
        Chunk& ch = chunks[begin / Grain(ctx)];
        ch = ChunkLike(l, r);
        size_t rows = (end - begin) * r.num_rows();
        for (ColumnData& col : ch) col.Reserve(rows);
        for (size_t c = 0; c < l.num_columns(); ++c) {
          for (size_t i = begin; i < end; ++i) {
            ch[c].AppendRepeated(l.col(c), i, r.num_rows());
          }
        }
        for (size_t c = 0; c < r.num_columns(); ++c) {
          for (size_t i = begin; i < end; ++i) {
            ch[l.num_columns() + c].AppendRange(r.col(c), 0, r.num_rows());
          }
        }
        return Status::OK();
      }));
  return MergeChunks(std::move(out_cols), std::move(chunks));
}

Result<Table> ExecJoinInMemory(const PlanNode* n, Table l, Table r,
                               ExecContext* ctx) {
  // Partition predicates into hashable equi-predicates (left attr vs right
  // attr) and residual ones.
  struct EqPair {
    int lcol;
    int rcol;
  };
  std::vector<EqPair> eq_pairs;
  std::vector<Predicate> residual;
  for (const Predicate& p : n->predicates) {
    if (p.rhs_is_attr && p.op == CmpOp::kEq) {
      int ll = l.ColIndex(p.lhs), rr = r.ColIndex(p.rhs_attr);
      if (ll >= 0 && rr >= 0) {
        eq_pairs.push_back({ll, rr});
        continue;
      }
      ll = l.ColIndex(p.rhs_attr);
      rr = r.ColIndex(p.lhs);
      if (ll >= 0 && rr >= 0) {
        eq_pairs.push_back({ll, rr});
        continue;
      }
    }
    residual.push_back(p);
  }

  std::vector<ExecColumn> out_cols = ConcatColumns(l, r);
  // Residual predicates bind against the concatenated layout; a zero-row
  // probe table of that layout carries the binding metadata.
  Table layout = TableFromColumns(out_cols, ChunkLike(l, r));
  std::vector<BoundPredicate> bound;
  for (const Predicate& p : eq_pairs.empty() ? n->predicates : residual) {
    MPQ_ASSIGN_OR_RETURN(BoundPredicate bp, BindPredicate(p, layout, n, ctx));
    bound.push_back(std::move(bp));
  }

  if (!eq_pairs.empty()) {
    // Hash join on the flat-hash engine: a sequential build over the
    // (usually smaller) left side assigns every row a dense key id — via
    // fixed-width typed code words when every key-column pair shares a
    // typed rep, byte keys in a ByteArena otherwise — then row lists per
    // key id are laid out CSR-style and a batch-parallel probe over the
    // right side emits (left, right) pairs in the historical order
    // (ascending left row within ascending right row).
    std::vector<int> lcols, rcols;
    for (const EqPair& ep : eq_pairs) {
      lcols.push_back(ep.lcol);
      rcols.push_back(ep.rcol);
    }
    bool typed =
        TypedKeyCodec::Eligible(l, lcols) && TypedKeyCodec::Eligible(r, rcols);
    if (typed) {
      for (size_t k = 0; k < lcols.size(); ++k) {
        if (KindOf(l.col(static_cast<size_t>(lcols[k]))) !=
            KindOf(r.col(static_cast<size_t>(rcols[k])))) {
          // Cross-rep pairs (say int64 vs double) only ever match on NULLs
          // under byte-key semantics; the byte path preserves that.
          typed = false;
          break;
        }
      }
    }

    // Build state: typed keys live as width() words per key id in
    // `key_words`; byte keys live in the arena addressed by (offset, size)
    // spans.
    FlatHashIndex index(l.num_rows());
    std::vector<uint64_t> key_words;
    ByteArena arena;
    std::vector<std::pair<uint64_t, uint32_t>> spans;
    std::vector<uint32_t> gids(l.num_rows());
    TypedKeyCodec codec;
    size_t width = 0;
    if (typed) {
      codec.Init(l, lcols, KeyColsNeedNullWord(l, lcols) ||
                               KeyColsNeedNullWord(r, rcols));
      width = codec.width();
      std::vector<uint64_t> words;
      std::vector<uint32_t> scratch;
      for (size_t begin = 0; begin < l.num_rows(); begin += Grain(ctx)) {
        size_t end = std::min(begin + Grain(ctx), l.num_rows());
        MPQ_RETURN_NOT_OK(codec.EncodeBuild(begin, end, &words, &scratch));
        for (size_t i = begin; i < end; ++i) {
          const uint64_t* row = words.data() + (i - begin) * width;
          gids[i] = index.FindOrInsert(
              HashWords(row, width),
              [&](uint32_t id) {
                return std::memcmp(key_words.data() + id * width, row,
                                   width * 8) == 0;
              },
              [&] {
                auto id = static_cast<uint32_t>(key_words.size() / width);
                key_words.insert(key_words.end(), row, row + width);
                return id;
              });
        }
      }
    } else {
      std::string key;
      for (size_t i = 0; i < l.num_rows(); ++i) {
        MPQ_RETURN_NOT_OK(RowKeyBytes(l, lcols, i, &key));
        gids[i] = index.FindOrInsert(
            HashBytes(key.data(), key.size()),
            [&](uint32_t id) {
              return arena.View(spans[id].first, spans[id].second) == key;
            },
            [&] {
              spans.emplace_back(arena.Append(key.data(), key.size()),
                                 static_cast<uint32_t>(key.size()));
              return static_cast<uint32_t>(spans.size() - 1);
            });
      }
    }
    // CSR row lists: the rows of each key id, ascending (build order).
    size_t num_keys = index.size();
    std::vector<uint32_t> offsets(num_keys + 1, 0);
    for (uint32_t g : gids) offsets[g + 1]++;
    for (size_t g = 1; g <= num_keys; ++g) offsets[g] += offsets[g - 1];
    std::vector<uint32_t> rows(l.num_rows());
    {
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < l.num_rows(); ++i) {
        rows[cursor[gids[i]]++] = static_cast<uint32_t>(i);
      }
    }

    std::vector<Chunk> chunks(r.NumBatches(Grain(ctx)));
    MPQ_RETURN_NOT_OK(OpParallelFor(
        ctx, OpKind::kJoin, r.num_rows(),
        [&](size_t begin, size_t end) -> Status {
          SelectionVector li, ri;
          auto emit = [&](uint32_t g, size_t j) {
            for (uint32_t k = offsets[g]; k < offsets[g + 1]; ++k) {
              li.push_back(rows[k]);
              ri.push_back(static_cast<uint32_t>(j));
            }
          };
          if (typed) {
            std::vector<uint64_t> words;
            std::vector<uint32_t> scratch;
            MPQ_RETURN_NOT_OK(
                codec.EncodeProbe(r, rcols, begin, end, &words, &scratch));
            // Without the null/miss word the last word holds raw key bits
            // (which may legitimately have bit 63 set, e.g. negative
            // int64); a dictionary miss forces the word to exist.
            bool miss_word = width > rcols.size();
            for (size_t j = begin; j < end; ++j) {
              const uint64_t* row = words.data() + (j - begin) * width;
              if (miss_word && (row[width - 1] & kProbeMissBit)) continue;
              uint32_t g =
                  index.Find(HashWords(row, width), [&](uint32_t id) {
                    return std::memcmp(key_words.data() + id * width, row,
                                       width * 8) == 0;
                  });
              if (g != FlatHashIndex::kNotFound) emit(g, j);
            }
          } else {
            std::string key;
            for (size_t j = begin; j < end; ++j) {
              MPQ_RETURN_NOT_OK(RowKeyBytes(r, rcols, j, &key));
              uint32_t g = index.Find(
                  HashBytes(key.data(), key.size()), [&](uint32_t id) {
                    return arena.View(spans[id].first, spans[id].second) ==
                           key;
                  });
              if (g != FlatHashIndex::kNotFound) emit(g, j);
            }
          }
          MPQ_ASSIGN_OR_RETURN(
              chunks[begin / Grain(ctx)],
              FilterChunk(GatherPairs(l, r, li, ri), out_cols, bound));
          return Status::OK();
        }));
    return MergeChunks(std::move(out_cols), std::move(chunks));
  }

  // Nested-loop fallback (non-equi joins), parallel over left-side batches.
  // Pairs are evaluated cell-at-a-time and only the matches are gathered,
  // so the cross product is never materialized.
  auto pair_cell = [&](int col, size_t i, size_t j) {
    size_t c = static_cast<size_t>(col);
    return c < l.num_columns() ? l.col(c).GetCell(i)
                               : r.col(c - l.num_columns()).GetCell(j);
  };
  std::vector<Chunk> chunks(l.NumBatches(Grain(ctx)));
  MPQ_RETURN_NOT_OK(OpParallelFor(
      ctx, OpKind::kJoin, l.num_rows(),
      [&](size_t begin, size_t end) -> Status {
        SelectionVector li, ri;
        for (size_t i = begin; i < end; ++i) {
          for (size_t j = 0; j < r.num_rows(); ++j) {
            bool keep = true;
            for (const BoundPredicate& bp : bound) {
              Cell lhs = pair_cell(bp.lhs_col, i, j);
              Cell rhs = bp.rhs_col >= 0 ? pair_cell(bp.rhs_col, i, j)
                                         : bp.rhs_const;
              MPQ_ASSIGN_OR_RETURN(keep, CompareCells(bp.op, lhs, rhs));
              if (!keep) break;
            }
            if (keep) {
              li.push_back(static_cast<uint32_t>(i));
              ri.push_back(static_cast<uint32_t>(j));
            }
          }
        }
        chunks[begin / Grain(ctx)] = GatherPairs(l, r, li, ri);
        return Status::OK();
      }));
  return MergeChunks(std::move(out_cols), std::move(chunks));
}

// ------------------------------------------------- out-of-core execution ---

/// Partition fan-out of one spill generation. Eight keeps partition counts
/// (and open files) small while shrinking a generation's working set 8x.
constexpr size_t kSpillFanout = 8;
/// Recursion bound: after this many generations a partition runs in memory
/// regardless of the budget (a single over-represented key never shrinks).
constexpr int kMaxSpillDepth = 4;

/// Raises the generation high-water mark (diagnostic counter only).
void NoteSpillGeneration(ExecContext* ctx, uint64_t gen) {
  uint64_t cur = ctx->spill_generations.load(std::memory_order_relaxed);
  while (cur < gen && !ctx->spill_generations.compare_exchange_weak(
                          cur, gen, std::memory_order_relaxed)) {
  }
}

/// A fresh spill file path under ctx->spill_dir (or the system temp dir).
std::string NextSpillPath(ExecContext* ctx) {
  static std::atomic<uint64_t> counter{0};
  std::filesystem::path dir = ctx->spill_dir.empty()
                                  ? std::filesystem::temp_directory_path()
                                  : std::filesystem::path(ctx->spill_dir);
  return (dir / StrFormat("mpq_spill_%d_%llu.seg", static_cast<int>(getpid()),
                          static_cast<unsigned long long>(counter.fetch_add(
                              1, std::memory_order_relaxed))))
      .string();
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal(StrFormat("cannot open spill file %s",
                                      path.c_str()));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    return Status::Internal(StrFormat("short write to spill file %s",
                                      path.c_str()));
  }
  return Status::OK();
}

/// Reads a spill file back and deletes it (each partition is read once).
Result<Table> ReadSpillSegment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Internal(StrFormat("cannot open spill file %s",
                                      path.c_str()));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::error_code ec;
  std::filesystem::remove(path, ec);  // best effort
  MPQ_ASSIGN_OR_RETURN(SegmentReader sr, SegmentReader::Open(std::move(bytes)));
  return sr.Decode();
}

/// Appends a plain int64 global-row column to `t` (rows 0..n-1). Spilled
/// partitions carry it so results can be restored to the in-memory output
/// order (and group-by can reconstruct global batch boundaries); it never
/// collides with a real attribute.
void AppendRowIdColumn(Table* t) {
  ExecColumn col;
  col.attr = kInvalidAttr;
  col.name = "__spill_row";
  col.type = DataType::kInt64;
  ColumnData d(ColumnRep::kInt64);
  d.Reserve(t->num_rows());
  for (size_t i = 0; i < t->num_rows(); ++i) {
    d.AppendValue(Value(static_cast<int64_t>(i)));
  }
  t->AddColumn(std::move(col), std::move(d));
}

/// Splits `t` into kSpillFanout partitions by salted key-byte hash (equal
/// keys co-partition; the salt decorrelates recursive generations), writing
/// each as one compressed segment file. Sequential and deterministic.
Result<std::vector<std::string>> SpillPartitionTable(
    const Table& t, const std::vector<int>& key_cols, uint64_t salt,
    ExecContext* ctx) {
  std::vector<SelectionVector> sels(kSpillFanout);
  std::string key;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    MPQ_RETURN_NOT_OK(RowKeyBytes(t, key_cols, r, &key));
    uint64_t h = SplitMix64(HashBytes(key.data(), key.size()) ^ salt);
    sels[h % kSpillFanout].push_back(static_cast<uint32_t>(r));
  }
  std::vector<std::string> paths(kSpillFanout);
  for (size_t p = 0; p < kSpillFanout; ++p) {
    Table part;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      ColumnData d(t.col(c).rep());
      d.Reserve(sels[p].size());
      d.AppendSelected(t.col(c), sels[p].data(), sels[p].size());
      part.AddColumn(t.columns()[c], std::move(d));
    }
    MPQ_ASSIGN_OR_RETURN(std::string bytes, EncodeSegment(part));
    paths[p] = NextSpillPath(ctx);
    MPQ_RETURN_NOT_OK(WriteFileBytes(paths[p], bytes));
    ctx->spill_partitions.fetch_add(1, std::memory_order_relaxed);
    ctx->spill_bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
  }
  return paths;
}

/// One spill generation of the partitioned hash join: both (row-id
/// augmented) sides are hash-partitioned on the join key and written to
/// disk, then each partition pair is joined — recursively when it still
/// exceeds the budget — and the outputs are concatenated. Row order within
/// the concatenation is arbitrary; the wrapper restores the in-memory order
/// from the row-id columns.
Result<Table> ExecJoinPartitioned(const PlanNode* n, Table l, Table r,
                                  const std::vector<int>& lcols,
                                  const std::vector<int>& rcols,
                                  ExecContext* ctx, int depth, uint64_t salt) {
  NoteSpillGeneration(ctx, static_cast<uint64_t>(depth) + 1);
  std::vector<ExecColumn> out_cols = ConcatColumns(l, r);
  Chunk empty_like = ChunkLike(l, r);
  MPQ_ASSIGN_OR_RETURN(std::vector<std::string> lpaths,
                       SpillPartitionTable(l, lcols, salt, ctx));
  MPQ_ASSIGN_OR_RETURN(std::vector<std::string> rpaths,
                       SpillPartitionTable(r, rcols, salt, ctx));
  l = Table();
  r = Table();
  std::vector<Chunk> chunks;
  for (size_t p = 0; p < kSpillFanout; ++p) {
    MPQ_ASSIGN_OR_RETURN(Table lp, ReadSpillSegment(lpaths[p]));
    MPQ_ASSIGN_OR_RETURN(Table rp, ReadSpillSegment(rpaths[p]));
    if (lp.num_rows() == 0 || rp.num_rows() == 0) continue;
    Result<Table> joined =
        depth + 1 < kMaxSpillDepth &&
                lp.ByteSize() + rp.ByteSize() > ctx->memory_budget
            ? ExecJoinPartitioned(n, std::move(lp), std::move(rp), lcols,
                                  rcols, ctx, depth + 1,
                                  SplitMix64(salt + p + 1))
            : ExecJoinInMemory(n, std::move(lp), std::move(rp), ctx);
    MPQ_RETURN_NOT_OK(joined.status());
    if (joined->num_rows() == 0) continue;
    Chunk ch;
    ch.reserve(joined->num_columns());
    for (size_t c = 0; c < joined->num_columns(); ++c) {
      ch.push_back(std::move(joined->col_mut(c)));
    }
    chunks.push_back(std::move(ch));
  }
  if (chunks.empty()) {
    return TableFromColumns(std::move(out_cols), std::move(empty_like));
  }
  return MergeChunks(std::move(out_cols), std::move(chunks));
}

Result<Table> ExecJoin(const PlanNode* n, Table l, Table r, ExecContext* ctx) {
  bool spill = ctx->memory_budget != 0 && l.num_rows() > 0 &&
               r.num_rows() > 0 &&
               l.ByteSize() + r.ByteSize() > ctx->memory_budget;
  std::vector<int> lcols, rcols;
  if (spill) {
    // The spill path partitions on the equi-join key; without one (pure
    // theta join) the nested-loop path cannot partition and runs in memory.
    for (const Predicate& p : n->predicates) {
      if (!p.rhs_is_attr || p.op != CmpOp::kEq) continue;
      int ll = l.ColIndex(p.lhs), rr = r.ColIndex(p.rhs_attr);
      if (ll < 0 || rr < 0) {
        ll = l.ColIndex(p.rhs_attr);
        rr = r.ColIndex(p.lhs);
      }
      if (ll >= 0 && rr >= 0) {
        lcols.push_back(ll);
        rcols.push_back(rr);
      }
    }
    spill = !lcols.empty();
  }
  if (!spill) return ExecJoinInMemory(n, std::move(l), std::move(r), ctx);

  size_t ln = l.num_columns(), rn = r.num_columns();
  std::vector<ExecColumn> final_cols = ConcatColumns(l, r);
  AppendRowIdColumn(&l);
  AppendRowIdColumn(&r);
  MPQ_ASSIGN_OR_RETURN(
      Table joined,
      ExecJoinPartitioned(n, std::move(l), std::move(r), lcols, rcols, ctx,
                          /*depth=*/0, /*salt=*/0x9e3779b97f4a7c15ull));
  // Restore the in-memory emit order — ascending (right row, left row);
  // every match pair is emitted by exactly one partition pair, so the
  // sorted outputs are bit-identical to the unspilled join.
  const ColumnData& lrow = joined.col(ln);
  const ColumnData& rrow = joined.col(ln + 1 + rn);
  std::vector<uint32_t> perm(joined.num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<uint32_t>(i);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    if (rrow.i64()[a] != rrow.i64()[b]) return rrow.i64()[a] < rrow.i64()[b];
    return lrow.i64()[a] < lrow.i64()[b];
  });
  Table out;
  for (size_t c = 0; c < final_cols.size(); ++c) {
    size_t src = c < ln ? c : c + 1;  // skip the left row-id column
    ColumnData d(joined.col(src).rep());
    d.Reserve(perm.size());
    d.AppendSelected(joined.col(src), perm.data(), perm.size());
    out.AddColumn(std::move(final_cols[c]), std::move(d));
  }
  return out;
}

/// Aggregation state for one (group, aggregate) pair. Min/max and the
/// Paillier template are tracked as row indices into the operand table
/// (materialized only when the output is built). Trivially copyable, so
/// group states pack into one contiguous arena per batch (stride = number
/// of aggregates) instead of a vector-of-vectors.
struct AggState {
  // Plaintext accumulators.
  double sum = 0;
  bool sum_is_double = false;
  int64_t count = 0;
  size_t best_row = 0;  // current min/max row in the operand table
  bool has_min_max = false;
  // Homomorphic accumulator. On the lazy path (contiguous-ciphertext
  // columns) `hom_cipher` stays zero through phases 1 and 2 — row indices
  // are staged per group instead — and is written exactly once at finalize;
  // the eager kCell fallback folds into it per row as before.
  bool hom = false;
  uint128 hom_cipher = 0;
  /// Fold codec of the ciphertexts' public modulus (owned by the operator
  /// frame; set with `hom`).
  const ColumnCodec* hom_codec = nullptr;
  int64_t hom_count = 0;
  size_t hom_template_row = 0;
};

/// Fold-only codecs per key id, built once per group-by operator from the
/// public moduli so neither the per-row eager fold nor the per-group lazy
/// fold ever re-derives Montgomery reduction constants.
using HomCodecMap = std::unordered_map<uint64_t, ColumnCodec>;

/// Three-way min/max comparison of operand rows `i` vs `j` of `col`,
/// matching CompareCells semantics (strictly-better keeps first occurrence).
Result<bool> RowBetter(const ColumnData& col, CmpOp op, size_t i, size_t j) {
  if (PlainTypedRep(col.rep())) {
    return ApplyCmp(op, CmpPlainRows(col, i, col, j));
  }
  if (col.rep() == ColumnRep::kEnc && !col.IsNull(i) && !col.IsNull(j)) {
    return CmpEncRows(op, col.enc()[i], col.enc()[j]);
  }
  return CompareCells(op, col.GetCell(i), col.GetCell(j));
}

/// Folds operand row `r` of `col` into `s` for `agg`, column-at-a-time.
Status AccumulateRow(const PlanNode* n, const Aggregate& agg,
                     const ColumnData& col, size_t r,
                     const HomCodecMap& hom_codecs, AggState* s) {
  switch (agg.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      s->count++;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (col.IsNull(r)) return Status::OK();
      switch (col.rep()) {
        case ColumnRep::kInt64:
          s->sum += static_cast<double>(col.i64()[r]);
          s->count++;
          return Status::OK();
        case ColumnRep::kDouble:
          s->sum += col.f64()[r];
          s->sum_is_double = true;
          s->count++;
          return Status::OK();
        case ColumnRep::kString:
          return Status::Unsupported(StrFormat(
              "node %d: %s over a string column", n->id,
              AggFuncName(agg.func)));
        case ColumnRep::kCell: {
          const Cell& cell = col.cells()[r];
          if (cell.is_plain()) {
            const Value& v = cell.plain();
            if (v.is_null()) return Status::OK();
            if (v.is_string()) {
              return Status::Unsupported(StrFormat(
                  "node %d: %s over a string column", n->id,
                  AggFuncName(agg.func)));
            }
            s->sum += v.AsDouble();
            if (v.is_double()) s->sum_is_double = true;
            s->count++;
            return Status::OK();
          }
          break;  // ciphertext cell: fall through to the Paillier path
        }
        case ColumnRep::kEnc:
          break;
      }
      const EncValue& ev = col.EncAt(r);
      if (ev.scheme != EncScheme::kPaillier) {
        return Status::Unsupported(StrFormat(
            "node %d: %s over %s ciphertext requires the HOM scheme", n->id,
            AggFuncName(agg.func), EncSchemeName(ev.scheme)));
      }
      auto pm = hom_codecs.find(ev.key_id);
      if (pm == hom_codecs.end()) {
        return Status::NotFound(StrFormat(
            "node %d: no public modulus for key %llu", n->id,
            static_cast<unsigned long long>(ev.key_id)));
      }
      MPQ_ASSIGN_OR_RETURN(uint128 c, PaillierCipherFromBytes(ev.blob));
      if (!s->hom) {
        s->hom = true;
        s->hom_cipher = c;
        s->hom_codec = &pm->second;
        s->hom_template_row = r;
      } else {
        s->hom_cipher = s->hom_codec->HomAdd(s->hom_cipher, c);
      }
      s->hom_count += ev.aux;
      return Status::OK();
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      bool better;
      if (!s->has_min_max) {
        better = true;
      } else {
        CmpOp op = agg.func == AggFunc::kMin ? CmpOp::kLt : CmpOp::kGt;
        MPQ_ASSIGN_OR_RETURN(better, RowBetter(col, op, r, s->best_row));
      }
      if (better) {
        s->best_row = r;
        s->has_min_max = true;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable aggregate function");
}

/// Folds a later batch's state `src` into `dst`. Merging in batch order keeps
/// first-occurrence semantics (hom template, min/max tie-breaks) identical to
/// a sequential row scan over the same batch partition.
Status MergeAggState(const Aggregate& agg, const ColumnData* col,
                     bool lazy_hom, const AggState& src, AggState* dst) {
  switch (agg.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      dst->count += src.count;
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg:
      dst->sum += src.sum;
      dst->sum_is_double = dst->sum_is_double || src.sum_is_double;
      dst->count += src.count;
      if (src.hom) {
        if (!dst->hom) {
          dst->hom = true;
          dst->hom_cipher = src.hom_cipher;
          dst->hom_codec = src.hom_codec;
          dst->hom_template_row = src.hom_template_row;
        } else if (!lazy_hom) {
          // Lazy aggregates carry no per-batch partial cipher to combine:
          // their rows are staged and folded once at finalize.
          dst->hom_cipher =
              dst->hom_codec->HomAdd(dst->hom_cipher, src.hom_cipher);
        }
        dst->hom_count += src.hom_count;
      }
      return Status::OK();
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (!src.has_min_max) return Status::OK();
      bool better;
      if (!dst->has_min_max) {
        better = true;
      } else {
        CmpOp op = agg.func == AggFunc::kMin ? CmpOp::kLt : CmpOp::kGt;
        MPQ_ASSIGN_OR_RETURN(
            better, RowBetter(*col, op, src.best_row, dst->best_row));
      }
      if (better) {
        dst->best_row = src.best_row;
        dst->has_min_max = true;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable aggregate function");
}

/// Hash-aggregated groups of one batch, in first-occurrence order. Group
/// keys are remembered as the global row index of their first occurrence
/// plus, on the typed path, the group's code words (directly mergeable
/// across batches when no batch-local dictionary is involved); states are
/// one contiguous arena, `num_aggs` entries per group.
struct BatchGroups {
  std::vector<size_t> first_row;
  std::vector<uint64_t> key_words;  ///< typed path: width words per group
  std::vector<AggState> states;
  /// Lazy homomorphic staging, one slot per lazy (kEnc-summed) aggregate:
  /// the batch's ciphertext row indices and their batch-local group ids,
  /// appended in row order. Nothing is folded until finalize.
  std::vector<std::vector<uint32_t>> hom_rows;
  std::vector<std::vector<uint32_t>> hom_gids;
};

/// Group-by output schema bound against the operand: group key column
/// indices, aggregate source columns (-1 for count(*)), and the output
/// column metadata — shared by the in-memory and spilled paths so both
/// produce identical layouts.
struct GroupBySchema {
  std::vector<int> group_cols;
  std::vector<int> agg_cols;
  std::vector<ExecColumn> out_cols;
};

Result<GroupBySchema> BindGroupBy(const PlanNode* n, const Table& in,
                                  ExecContext* ctx) {
  GroupBySchema s;
  std::vector<AttrId> group_attrs = n->group_by.ToVector();
  for (AttrId a : group_attrs) {
    int idx = in.ColIndex(a);
    if (idx < 0) return ColNotFound(n, a, *ctx->catalog);
    s.group_cols.push_back(idx);
    s.out_cols.push_back(in.columns()[static_cast<size_t>(idx)]);
  }

  for (const Aggregate& agg : n->aggregates) {
    ExecColumn col;
    if (agg.func == AggFunc::kCountStar) {
      s.agg_cols.push_back(-1);
      col.attr = agg.out_attr;
      col.name = ctx->catalog->attrs().Name(agg.out_attr);
      col.type = DataType::kInt64;
      s.out_cols.push_back(col);
      continue;
    }
    int idx = in.ColIndex(agg.attr);
    if (idx < 0) return ColNotFound(n, agg.attr, *ctx->catalog);
    s.agg_cols.push_back(idx);
    const ExecColumn& src = in.columns()[static_cast<size_t>(idx)];
    col = src;
    col.attr = agg.out_attr;
    col.name = ctx->catalog->attrs().Name(agg.out_attr);
    switch (agg.func) {
      case AggFunc::kCount:
        col.type = DataType::kInt64;
        col.encrypted = false;
        break;
      case AggFunc::kAvg:
        if (src.encrypted) {
          col.hom_avg = true;  // Paillier sum + aux count
        } else {
          col.type = DataType::kDouble;
        }
        break;
      default:
        break;  // sum/min/max keep the source representation
    }
    s.out_cols.push_back(col);
  }
  return s;
}

/// Resolves the fold codecs for homomorphic sums (one per public modulus)
/// and, when `lazy_slot` is given, assigns a lazy staging slot to each
/// contiguous-ciphertext (kEnc) summed aggregate. Plaintext group-bys never
/// pay the setup.
HomCodecMap HomCodecsFor(const PlanNode* n, const Table& in,
                         const std::vector<int>& agg_cols, ExecContext* ctx,
                         std::vector<int>* lazy_slot, size_t* num_lazy) {
  size_t num_aggs = n->aggregates.size();
  HomCodecMap hom_codecs;
  if (lazy_slot != nullptr) lazy_slot->assign(num_aggs, -1);
  if (num_lazy != nullptr) *num_lazy = 0;
  for (size_t ai = 0; ai < num_aggs; ++ai) {
    const Aggregate& agg = n->aggregates[ai];
    if (agg.func != AggFunc::kSum && agg.func != AggFunc::kAvg) continue;
    if (agg_cols[ai] < 0) continue;
    ColumnRep rep = in.col(static_cast<size_t>(agg_cols[ai])).rep();
    if (rep != ColumnRep::kEnc && rep != ColumnRep::kCell) continue;
    if (hom_codecs.empty() && ctx->public_modulus != nullptr) {
      for (const auto& [key_id, modulus] : *ctx->public_modulus) {
        hom_codecs.emplace(key_id, ColumnCodec(key_id, modulus));
      }
    }
    if (rep == ColumnRep::kEnc && lazy_slot != nullptr &&
        num_lazy != nullptr) {
      (*lazy_slot)[ai] = static_cast<int>((*num_lazy)++);
    }
  }
  return hom_codecs;
}

/// Materializes one finished aggregate state as its output cell. `col` is
/// the aggregate's source column (holding `best_row`/`hom_template_row`),
/// null for count(*). Shared by the in-memory and spilled paths.
Result<Cell> AggOutputCell(const Aggregate& agg, const AggState& s,
                           const ColumnData* col) {
  switch (agg.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Cell(Value(s.count));
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (s.hom) {
        EncValue ev = col->EncAt(s.hom_template_row);
        ev.blob = PaillierCipherToBytes(s.hom_cipher);
        ev.aux = s.hom_count;
        return Cell(std::move(ev));
      }
      if (agg.func == AggFunc::kAvg) {
        return Cell(Value(
            s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0));
      }
      if (s.sum_is_double) return Cell(Value(s.sum));
      return Cell(Value(static_cast<int64_t>(std::llround(s.sum))));
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (s.has_min_max) return col->GetCell(s.best_row);
      return Cell(Value::Null());
  }
  return Status::Internal("unreachable aggregate function");
}

Result<Table> ExecGroupByInMemory(const PlanNode* n, Table in,
                                  ExecContext* ctx) {
  MPQ_ASSIGN_OR_RETURN(GroupBySchema schema, BindGroupBy(n, in, ctx));
  std::vector<int>& group_cols = schema.group_cols;
  std::vector<int>& agg_cols = schema.agg_cols;
  std::vector<ExecColumn>& out_cols = schema.out_cols;

  // Fold codecs for homomorphic sums, resolved up front so neither the
  // parallel phase nor finalize re-derives Montgomery constants.
  // Contiguous-ciphertext (kEnc) aggregates fold *lazily*: phase 1 only
  // stages row indices per group, and finalize multiplies each group's
  // ciphertexts in one batch accumulation, touching every ciphertext
  // exactly once. The kCell fallback keeps the eager per-row fold.
  size_t num_aggs = n->aggregates.size();
  std::vector<int> lazy_slot;
  size_t num_lazy = 0;
  HomCodecMap hom_codecs =
      HomCodecsFor(n, in, agg_cols, ctx, &lazy_slot, &num_lazy);

  // Typed vs byte keys is a whole-operator decision (a single table, so
  // reps cannot mismatch; only the kCell fallback forces byte keys). When
  // no key column needs a dictionary, code words are raw value bits —
  // comparable across batches, so the merge phase can skip byte keys too.
  bool typed = TypedKeyCodec::Eligible(in, group_cols);
  bool dict_keys = false;
  bool null_word = group_cols.empty();
  for (int gc : group_cols) {
    const ColumnData& col = in.col(static_cast<size_t>(gc));
    dict_keys = dict_keys || col.rep() == ColumnRep::kString ||
                col.rep() == ColumnRep::kEnc;
    null_word = null_word || col.has_nulls();
  }

  // Phase 1: each batch hash-aggregates its rows into private groups. Group
  // ids come from a batch-local flat-hash table over fixed-width key codes
  // (typed path) or arena-backed byte keys; each aggregate then folds its
  // own column into the contiguous state arena.
  std::vector<BatchGroups> batches(in.NumBatches(Grain(ctx)));
  MPQ_RETURN_NOT_OK(OpParallelFor(
      ctx, OpKind::kGroupBy, in.num_rows(),
      [&](size_t begin, size_t end) -> Status {
        BatchGroups& bg = batches[begin / Grain(ctx)];
        bg.hom_rows.resize(num_lazy);
        bg.hom_gids.resize(num_lazy);
        std::vector<uint32_t> gid(end - begin);
        // Sized for the all-distinct worst case up front: a high-cardinality
        // batch never pays a mid-stream rehash.
        FlatHashIndex index(end - begin);
        if (typed) {
          TypedKeyCodec codec;
          codec.Init(in, group_cols, null_word);
          size_t w = codec.width();
          std::vector<uint64_t> words;
          std::vector<uint32_t> scratch;
          MPQ_RETURN_NOT_OK(codec.EncodeBuild(begin, end, &words, &scratch));
          for (size_t r = begin; r < end; ++r) {
            const uint64_t* row = words.data() + (r - begin) * w;
            gid[r - begin] = index.FindOrInsert(
                HashWords(row, w),
                [&](uint32_t id) {
                  return std::memcmp(bg.key_words.data() + id * w, row,
                                     w * 8) == 0;
                },
                [&] {
                  auto id = static_cast<uint32_t>(bg.first_row.size());
                  bg.key_words.insert(bg.key_words.end(), row, row + w);
                  bg.first_row.push_back(r);
                  bg.states.resize(bg.states.size() + num_aggs);
                  return id;
                });
          }
        } else {
          ByteArena arena;
          std::vector<std::pair<uint64_t, uint32_t>> spans;
          std::string key;
          for (size_t r = begin; r < end; ++r) {
            MPQ_RETURN_NOT_OK(RowKeyBytes(in, group_cols, r, &key));
            gid[r - begin] = index.FindOrInsert(
                HashBytes(key.data(), key.size()),
                [&](uint32_t id) {
                  return arena.View(spans[id].first, spans[id].second) == key;
                },
                [&] {
                  auto id = static_cast<uint32_t>(bg.first_row.size());
                  spans.emplace_back(arena.Append(key.data(), key.size()),
                                     static_cast<uint32_t>(key.size()));
                  bg.first_row.push_back(r);
                  bg.states.resize(bg.states.size() + num_aggs);
                  return id;
                });
          }
        }
        for (size_t ai = 0; ai < num_aggs; ++ai) {
          const Aggregate& agg = n->aggregates[ai];
          AggState* st = bg.states.data();
          // count/count(*) fold every row unconditionally (engine
          // semantics, mirrored by the row oracle).
          if (agg.func == AggFunc::kCountStar ||
              agg.func == AggFunc::kCount) {
            for (size_t r = begin; r < end; ++r) {
              st[gid[r - begin] * num_aggs + ai].count++;
            }
            continue;
          }
          const ColumnData& col = in.col(static_cast<size_t>(agg_cols[ai]));
          // Tight typed loops for the hot aggregate/column shapes; each
          // replicates AccumulateRow's per-row effect exactly (same
          // floating-point op order per state), so results stay
          // bit-identical to the generic path.
          bool sumlike =
              agg.func == AggFunc::kSum || agg.func == AggFunc::kAvg;
          // Lazy homomorphic fold: stage (row, group) pairs; the Montgomery
          // work happens once per group at finalize. Scheme and key checks
          // stay per row so error surfacing matches the eager path, with an
          // inline last-key cache replacing the per-row hash lookup.
          if (sumlike && lazy_slot[ai] >= 0) {
            const std::vector<EncValue>& encs = col.enc();
            auto slot = static_cast<size_t>(lazy_slot[ai]);
            std::vector<uint32_t>& hrows = bg.hom_rows[slot];
            std::vector<uint32_t>& hgids = bg.hom_gids[slot];
            const ColumnCodec* codec = nullptr;
            uint64_t codec_key = 0;
            for (size_t r = begin; r < end; ++r) {
              if (col.IsNull(r)) continue;
              const EncValue& ev = encs[r];
              if (ev.scheme != EncScheme::kPaillier) {
                return Status::Unsupported(StrFormat(
                    "node %d: %s over %s ciphertext requires the HOM scheme",
                    n->id, AggFuncName(agg.func), EncSchemeName(ev.scheme)));
              }
              if (codec == nullptr || ev.key_id != codec_key) {
                auto pm = hom_codecs.find(ev.key_id);
                if (pm == hom_codecs.end()) {
                  return Status::NotFound(StrFormat(
                      "node %d: no public modulus for key %llu", n->id,
                      static_cast<unsigned long long>(ev.key_id)));
                }
                codec = &pm->second;
                codec_key = ev.key_id;
              }
              AggState& s = st[gid[r - begin] * num_aggs + ai];
              if (!s.hom) {
                s.hom = true;
                s.hom_codec = codec;
                s.hom_template_row = r;
              }
              s.hom_count += ev.aux;
              hrows.push_back(static_cast<uint32_t>(r));
              hgids.push_back(gid[r - begin]);
            }
            continue;
          }
          if (sumlike && col.rep() == ColumnRep::kInt64 &&
              !col.has_nulls()) {
            const int64_t* v = col.i64().data();
            for (size_t r = begin; r < end; ++r) {
              AggState& s = st[gid[r - begin] * num_aggs + ai];
              s.sum += static_cast<double>(v[r]);
              s.count++;
            }
            continue;
          }
          if (sumlike && col.rep() == ColumnRep::kDouble &&
              !col.has_nulls()) {
            const double* v = col.f64().data();
            for (size_t r = begin; r < end; ++r) {
              AggState& s = st[gid[r - begin] * num_aggs + ai];
              s.sum += v[r];
              s.sum_is_double = true;
              s.count++;
            }
            continue;
          }
          bool minmax =
              agg.func == AggFunc::kMin || agg.func == AggFunc::kMax;
          if (minmax && col.rep() == ColumnRep::kInt64 && !col.has_nulls()) {
            // CmpPlainRows compares int64 as double; mirror that exactly so
            // ties (beyond 2^53) keep the first occurrence either way.
            const int64_t* v = col.i64().data();
            bool want_less = agg.func == AggFunc::kMin;
            for (size_t r = begin; r < end; ++r) {
              AggState& s = st[gid[r - begin] * num_aggs + ai];
              auto x = static_cast<double>(v[r]);
              auto best = static_cast<double>(v[s.best_row]);
              if (!s.has_min_max || (want_less ? x < best : x > best)) {
                s.best_row = r;
                s.has_min_max = true;
              }
            }
            continue;
          }
          if (minmax && col.rep() == ColumnRep::kDouble && !col.has_nulls()) {
            // NaN never compares better (CmpPlainRows returns 0 for it).
            const double* v = col.f64().data();
            bool want_less = agg.func == AggFunc::kMin;
            for (size_t r = begin; r < end; ++r) {
              AggState& s = st[gid[r - begin] * num_aggs + ai];
              double x = v[r], best = v[s.best_row];
              if (!s.has_min_max || (want_less ? x < best : x > best)) {
                s.best_row = r;
                s.has_min_max = true;
              }
            }
            continue;
          }
          for (size_t r = begin; r < end; ++r) {
            MPQ_RETURN_NOT_OK(
                AccumulateRow(n, agg, col, r, hom_codecs,
                              &st[gid[r - begin] * num_aggs + ai]));
          }
        }
        return Status::OK();
      }));

  // Phase 2: merge batch groups in batch order — group order is first
  // occurrence over the whole input, like a sequential scan. On the typed
  // path without dictionary columns, code words are raw value bits and thus
  // comparable across batches, so unification works on the words directly;
  // otherwise each group's canonical byte key is re-derived from its first
  // row (cheap: per group, not per row). Either equivalence is byte-key
  // equality exactly as before.
  FlatHashIndex gindex;
  ByteArena gkeys;
  std::vector<std::pair<uint64_t, uint32_t>> gspans;
  std::vector<uint64_t> gkey_words;
  std::vector<size_t> group_first_row;
  std::vector<AggState> states;
  bool words_merge = typed && !dict_keys;
  size_t kw = group_cols.size() + (null_word ? 1 : 0);
  // Global lazy staging, one slot per lazy aggregate: batch stages are
  // concatenated in batch order with group ids remapped to global ids, so
  // each group's row list is in ascending row order — identical at any
  // thread count.
  std::vector<std::vector<uint32_t>> hom_rows(num_lazy);
  std::vector<std::vector<uint32_t>> hom_gids(num_lazy);
  {
    std::string key;
    std::vector<uint32_t> remap;
    for (BatchGroups& bg : batches) {
      remap.resize(bg.first_row.size());
      for (size_t g = 0; g < bg.first_row.size(); ++g) {
        uint64_t hash;
        const uint64_t* row = nullptr;
        if (words_merge) {
          row = bg.key_words.data() + g * kw;
          hash = HashWords(row, kw);
        } else {
          MPQ_RETURN_NOT_OK(
              RowKeyBytes(in, group_cols, bg.first_row[g], &key));
          hash = HashBytes(key.data(), key.size());
        }
        bool inserted = false;
        uint32_t idx = gindex.FindOrInsert(
            hash,
            [&](uint32_t id) {
              if (words_merge) {
                return std::memcmp(gkey_words.data() + id * kw, row,
                                   kw * 8) == 0;
              }
              return gkeys.View(gspans[id].first, gspans[id].second) == key;
            },
            [&] {
              auto id = static_cast<uint32_t>(group_first_row.size());
              if (words_merge) {
                gkey_words.insert(gkey_words.end(), row, row + kw);
              } else {
                gspans.emplace_back(gkeys.Append(key.data(), key.size()),
                                    static_cast<uint32_t>(key.size()));
              }
              group_first_row.push_back(bg.first_row[g]);
              auto src = bg.states.begin() + static_cast<long>(g * num_aggs);
              states.insert(states.end(), src,
                            src + static_cast<long>(num_aggs));
              inserted = true;
              return id;
            });
        remap[g] = idx;
        if (inserted) continue;
        for (size_t ai = 0; ai < num_aggs; ++ai) {
          const ColumnData* col = nullptr;
          if (agg_cols[ai] >= 0) {
            col = &in.col(static_cast<size_t>(agg_cols[ai]));
          }
          MPQ_RETURN_NOT_OK(MergeAggState(n->aggregates[ai], col,
                                          lazy_slot[ai] >= 0,
                                          bg.states[g * num_aggs + ai],
                                          &states[idx * num_aggs + ai]));
        }
      }
      for (size_t h = 0; h < num_lazy; ++h) {
        hom_rows[h].insert(hom_rows[h].end(), bg.hom_rows[h].begin(),
                           bg.hom_rows[h].end());
        hom_gids[h].reserve(hom_gids[h].size() + bg.hom_gids[h].size());
        for (uint32_t bgid : bg.hom_gids[h]) {
          hom_gids[h].push_back(remap[bgid]);
        }
      }
    }
  }

  // Finalize lazy homomorphic sums: order each aggregate's staged rows by
  // group (counting sort — batch-ordered stages in, per-group ascending row
  // runs out), then fold every group's ciphertexts in one pass. One
  // reusable accumulation context per key serves all groups; each
  // ciphertext is parsed and reduced exactly once.
  size_t num_groups = group_first_row.size();
  for (size_t ai = 0; ai < num_aggs; ++ai) {
    if (lazy_slot[ai] < 0) continue;
    auto h = static_cast<size_t>(lazy_slot[ai]);
    const std::vector<uint32_t>& rows = hom_rows[h];
    const std::vector<uint32_t>& gids = hom_gids[h];
    const ColumnData& col = in.col(static_cast<size_t>(agg_cols[ai]));
    std::vector<uint32_t> offs(num_groups + 1, 0);
    for (uint32_t g : gids) offs[g + 1]++;
    for (size_t g = 0; g < num_groups; ++g) offs[g + 1] += offs[g];
    std::vector<uint32_t> ordered(rows.size());
    std::vector<uint32_t> cur(offs.begin(), offs.end() - 1);
    for (size_t i = 0; i < rows.size(); ++i) {
      ordered[cur[gids[i]]++] = rows[i];
    }
    ColumnCodec* codec = nullptr;
    uint64_t codec_key = 0;
    for (size_t g = 0; g < num_groups; ++g) {
      size_t b = offs[g], e = offs[g + 1];
      if (b == e) continue;  // no ciphertext rows: plaintext/NULL-only group
      // Fold under the group's first ciphertext key — the same binding the
      // eager path uses; phase 1 already validated every key id.
      uint64_t kid = col.enc()[ordered[b]].key_id;
      if (codec == nullptr || kid != codec_key) {
        codec = &hom_codecs.find(kid)->second;
        codec_key = kid;
      }
      AggState& s = states[g * num_aggs + ai];
      MPQ_ASSIGN_OR_RETURN(
          s.hom_cipher, codec->FoldRows(col, ordered.data() + b, e - b));
    }
  }

  // Observable operator detail: bytes of the merged state/key arenas and
  // the number of ciphertexts the lazy homomorphic folds touched. Counters
  // only — results are unaffected.
  if (ctx->op_profile != nullptr) {
    uint64_t staged = 0;
    for (const std::vector<uint32_t>& rows : hom_rows) staged += rows.size();
    uint64_t arena = states.size() * sizeof(AggState) + gkeys.size() +
                     gkey_words.size() * sizeof(uint64_t);
    ctx->op_profile->RecordDetail(OpKind::kGroupBy, arena, staged);
  }

  // Degenerate global aggregation over an empty input: emit no rows
  // (matching our engine's semantics; SQL would emit one NULL row). The
  // output is built column-at-a-time: group keys gather from the operand,
  // aggregates materialize from their states.
  std::vector<ColumnData> out_data;
  out_data.reserve(out_cols.size());
  for (size_t gc = 0; gc < group_cols.size(); ++gc) {
    const ColumnData& src = in.col(static_cast<size_t>(group_cols[gc]));
    ColumnData col(src.rep());
    col.Reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      col.AppendFrom(src, group_first_row[g]);
    }
    out_data.push_back(std::move(col));
  }
  for (size_t ai = 0; ai < n->aggregates.size(); ++ai) {
    const Aggregate& agg = n->aggregates[ai];
    const ColumnData* src =
        agg_cols[ai] >= 0 ? &in.col(static_cast<size_t>(agg_cols[ai]))
                          : nullptr;
    std::vector<Cell> cells;
    cells.reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      MPQ_ASSIGN_OR_RETURN(
          Cell cell, AggOutputCell(agg, states[g * num_aggs + ai], src));
      cells.push_back(std::move(cell));
    }
    out_data.push_back(ColumnFromCells(std::move(cells)));
  }
  return TableFromColumns(std::move(out_cols), std::move(out_data));
}

/// Out-of-core group-by: rows are hash-partitioned on the group key (each
/// group lands wholly in one partition), spilled as compressed segments,
/// and each partition is aggregated alone with bounded state. Per-group
/// accumulation replays the in-memory algorithm's exact floating-point
/// association: partials are accumulated per *global* batch (recovered from
/// the spilled global-row column) and merged at batch boundaries in
/// ascending order, so results are bit-identical to the unspilled engine at
/// any thread count. Ciphertext sums fold eagerly (modular products are
/// association-independent, so they equal the in-memory lazy fold bit for
/// bit).
Result<Table> ExecGroupBySpill(const PlanNode* n, Table in, ExecContext* ctx) {
  MPQ_ASSIGN_OR_RETURN(GroupBySchema schema, BindGroupBy(n, in, ctx));
  size_t num_aggs = n->aggregates.size();
  HomCodecMap hom_codecs = HomCodecsFor(n, in, schema.agg_cols, ctx,
                                        /*lazy_slot=*/nullptr,
                                        /*num_lazy=*/nullptr);
  NoteSpillGeneration(ctx, 1);
  std::vector<ColumnRep> key_reps;
  for (int gc : schema.group_cols) {
    key_reps.push_back(in.col(static_cast<size_t>(gc)).rep());
  }
  size_t n_in_cols = in.num_columns();
  AppendRowIdColumn(&in);
  MPQ_ASSIGN_OR_RETURN(
      std::vector<std::string> paths,
      SpillPartitionTable(in, schema.group_cols, 0xc2b2ae3d27d4eb4full, ctx));
  in = Table();

  // Surviving per-group outputs: the key row (one row per group in the
  // per-partition key tables), the finalized aggregate cells, and the
  // group's global first-occurrence row for final ordering.
  struct GroupRef {
    uint64_t global_first;
    uint32_t part;
    uint32_t local_gid;
  };
  std::vector<GroupRef> groups;
  std::vector<Table> key_tables(kSpillFanout);
  std::vector<Cell> agg_out;  // stride num_aggs, aligned with `groups`

  size_t grain = Grain(ctx);
  for (size_t p = 0; p < kSpillFanout; ++p) {
    MPQ_ASSIGN_OR_RETURN(Table part, ReadSpillSegment(paths[p]));
    if (part.num_rows() == 0) continue;
    const int64_t* grow = part.col(n_in_cols).i64().data();
    FlatHashIndex index(part.num_rows());
    ByteArena arena;
    std::vector<std::pair<uint64_t, uint32_t>> spans;
    std::vector<uint32_t> local_first;
    std::vector<AggState> merged_states, partials;
    std::vector<uint64_t> cur_batch;
    std::string key;
    for (size_t r = 0; r < part.num_rows(); ++r) {
      MPQ_RETURN_NOT_OK(RowKeyBytes(part, schema.group_cols, r, &key));
      uint64_t batch = static_cast<uint64_t>(grow[r]) / grain;
      uint32_t g = index.FindOrInsert(
          HashBytes(key.data(), key.size()),
          [&](uint32_t id) {
            return arena.View(spans[id].first, spans[id].second) == key;
          },
          [&] {
            auto id = static_cast<uint32_t>(local_first.size());
            spans.emplace_back(arena.Append(key.data(), key.size()),
                               static_cast<uint32_t>(key.size()));
            local_first.push_back(static_cast<uint32_t>(r));
            merged_states.resize(merged_states.size() + num_aggs);
            partials.resize(partials.size() + num_aggs);
            cur_batch.push_back(batch);
            return id;
          });
      if (batch != cur_batch[g]) {
        // Global batch boundary: fold this group's partial into its merged
        // state, in ascending batch order — the in-memory merge order.
        for (size_t ai = 0; ai < num_aggs; ++ai) {
          const ColumnData* col =
              schema.agg_cols[ai] >= 0
                  ? &part.col(static_cast<size_t>(schema.agg_cols[ai]))
                  : nullptr;
          MPQ_RETURN_NOT_OK(MergeAggState(
              n->aggregates[ai], col, /*lazy_hom=*/false,
              partials[g * num_aggs + ai], &merged_states[g * num_aggs + ai]));
          partials[g * num_aggs + ai] = AggState();
        }
        cur_batch[g] = batch;
      }
      for (size_t ai = 0; ai < num_aggs; ++ai) {
        const Aggregate& agg = n->aggregates[ai];
        AggState& s = partials[g * num_aggs + ai];
        if (agg.func == AggFunc::kCountStar || agg.func == AggFunc::kCount) {
          s.count++;  // counts fold every row, column or not
          continue;
        }
        MPQ_RETURN_NOT_OK(AccumulateRow(
            n, agg, part.col(static_cast<size_t>(schema.agg_cols[ai])), r,
            hom_codecs, &s));
      }
    }
    size_t part_groups = local_first.size();
    for (size_t g = 0; g < part_groups; ++g) {
      for (size_t ai = 0; ai < num_aggs; ++ai) {
        const ColumnData* col =
            schema.agg_cols[ai] >= 0
                ? &part.col(static_cast<size_t>(schema.agg_cols[ai]))
                : nullptr;
        MPQ_RETURN_NOT_OK(MergeAggState(
            n->aggregates[ai], col, /*lazy_hom=*/false,
            partials[g * num_aggs + ai], &merged_states[g * num_aggs + ai]));
      }
    }
    // Materialize this partition's outputs before its table is freed: one
    // key row per group (first occurrence) and the finalized cells.
    Table kt;
    for (size_t k = 0; k < schema.group_cols.size(); ++k) {
      const ColumnData& src =
          part.col(static_cast<size_t>(schema.group_cols[k]));
      ColumnData d(src.rep());
      d.Reserve(part_groups);
      d.AppendSelected(src, local_first.data(), part_groups);
      kt.AddColumn(part.columns()[static_cast<size_t>(schema.group_cols[k])],
                   std::move(d));
    }
    key_tables[p] = std::move(kt);
    for (size_t g = 0; g < part_groups; ++g) {
      groups.push_back({static_cast<uint64_t>(grow[local_first[g]]),
                        static_cast<uint32_t>(p), static_cast<uint32_t>(g)});
      for (size_t ai = 0; ai < num_aggs; ++ai) {
        const ColumnData* col =
            schema.agg_cols[ai] >= 0
                ? &part.col(static_cast<size_t>(schema.agg_cols[ai]))
                : nullptr;
        MPQ_ASSIGN_OR_RETURN(
            Cell cell, AggOutputCell(n->aggregates[ai],
                                     merged_states[g * num_aggs + ai], col));
        agg_out.push_back(std::move(cell));
      }
    }
  }

  // Global output order = ascending first occurrence, the in-memory group
  // order (first rows are distinct, so the order is total).
  std::vector<uint32_t> order(groups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return groups[a].global_first < groups[b].global_first;
  });
  std::vector<ColumnData> out_data;
  out_data.reserve(schema.out_cols.size());
  for (size_t k = 0; k < schema.group_cols.size(); ++k) {
    ColumnData col(key_reps[k]);
    col.Reserve(order.size());
    for (uint32_t idx : order) {
      col.AppendFrom(key_tables[groups[idx].part].col(k),
                     groups[idx].local_gid);
    }
    out_data.push_back(std::move(col));
  }
  for (size_t ai = 0; ai < num_aggs; ++ai) {
    std::vector<Cell> cells;
    cells.reserve(order.size());
    for (uint32_t idx : order) {
      cells.push_back(std::move(agg_out[idx * num_aggs + ai]));
    }
    out_data.push_back(ColumnFromCells(std::move(cells)));
  }
  return TableFromColumns(std::move(schema.out_cols), std::move(out_data));
}

Result<Table> ExecGroupBy(const PlanNode* n, Table in, ExecContext* ctx) {
  bool spill = ctx->memory_budget != 0 && in.num_rows() > 0 &&
               !n->group_by.ToVector().empty() &&
               in.ByteSize() > ctx->memory_budget;
  if (spill) {
    // Unresolvable group attributes surface identically from either path;
    // let the in-memory binder report them.
    for (AttrId a : n->group_by.ToVector()) {
      if (in.ColIndex(a) < 0) {
        spill = false;
        break;
      }
    }
  }
  if (!spill) return ExecGroupByInMemory(n, std::move(in), ctx);
  return ExecGroupBySpill(n, std::move(in), ctx);
}

Result<Table> ExecUdf(const PlanNode* n, Table in, ExecContext* ctx) {
  std::vector<AttrId> inputs = n->udf_inputs.ToVector();
  std::vector<int> in_cols;
  for (AttrId a : inputs) {
    int idx = in.ColIndex(a);
    if (idx < 0) return ColNotFound(n, a, *ctx->catalog);
    in_cols.push_back(idx);
  }
  int out_src = in.ColIndex(n->udf_output);
  if (out_src < 0) return ColNotFound(n, n->udf_output, *ctx->catalog);

  // Resolve the implementation; fall back to the built-in combiner.
  UdfImpl impl;
  auto it = ctx->udfs.find(n->udf_name);
  impl = it != ctx->udfs.end() ? it->second : UdfImpl(DefaultUdf);

  // Output layout: child columns minus (inputs \ {output}), with the output
  // column's cells replaced by the udf result. Registered implementations
  // are not required to be thread-safe, so udf rows run sequentially.
  std::vector<Cell> results;
  results.reserve(in.num_rows());
  {
    // Concurrent sibling subtrees may both reach a udf node; serialize the
    // invocation loop so one shared UdfImpl is never entered from two
    // threads.
    std::lock_guard<std::mutex> udf_lock(*ctx->udf_mu);
    std::vector<Cell> args(in_cols.size());
    for (size_t r = 0; r < in.num_rows(); ++r) {
      for (size_t k = 0; k < in_cols.size(); ++k) {
        args[k] = in.col(static_cast<size_t>(in_cols[k])).GetCell(r);
      }
      MPQ_ASSIGN_OR_RETURN(Cell result, impl(args));
      results.push_back(std::move(result));
    }
  }

  Table out;
  for (size_t i = 0; i < in.num_columns(); ++i) {
    AttrId a = in.columns()[i].attr;
    if (n->udf_inputs.Contains(a) && a != n->udf_output) continue;
    if (static_cast<int>(i) == out_src) {
      ExecColumn col = in.columns()[i];
      ColumnData data = ColumnFromCells(std::move(results));
      // The output column's representation may have changed (e.g. plaintext
      // result over plaintext inputs): reflect the first row's form.
      if (data.size() > 0) {
        Cell first = data.GetCell(0);
        col.encrypted = first.is_encrypted();
        if (first.is_encrypted()) {
          col.scheme = first.enc().scheme;
          col.key_id = first.enc().key_id;
        } else if (!first.plain().is_string() && !first.plain().is_null()) {
          col.type = first.plain().is_double() ? DataType::kDouble
                                               : DataType::kInt64;
        }
      }
      out.AddColumn(std::move(col), std::move(data));
    } else {
      out.AddColumn(std::move(in.columns()[i]), in.ShareCol(i));
    }
  }
  return out;
}

Result<Table> ExecEncrypt(const PlanNode* n, Table in, ExecContext* ctx) {
  if (ctx->keyring == nullptr) {
    return Status::NotFound("engine holds no keyring");
  }
  std::vector<AttrId> attrs = n->attrs.ToVector();
  for (AttrId a : attrs) {
    int idx = in.ColIndex(a);
    if (idx < 0) return ColNotFound(n, a, *ctx->catalog);
    ExecColumn& col = in.columns()[static_cast<size_t>(idx)];
    if (col.encrypted) {
      return Status::InvalidArgument(StrFormat(
          "node %d: attribute %s is already encrypted", n->id,
          col.name.c_str()));
    }
    EncScheme scheme = ctx->crypto != nullptr ? ctx->crypto->SchemeOf(a)
                                              : EncScheme::kDeterministic;
    uint64_t key_id = ctx->crypto != nullptr ? ctx->crypto->KeyOf(a) : 0;
    const KeyMaterial* km = ctx->keyring->Find(key_id);
    if (km == nullptr) {
      return Status::NotFound(
          StrFormat("key %llu was not distributed to this subject",
                    static_cast<unsigned long long>(key_id)));
    }
    ColumnCodec codec(*km);
    // One PRF-derived nonce range per (node, column): row r uses
    // nonce_base + r, so ciphertexts do not depend on batch scheduling,
    // thread count, or sibling-subtree execution order. The whole column is
    // encrypted with one key lookup, batch-parallel over its contiguous
    // plaintext vector (EncryptSpan is const and thread-safe).
    uint64_t nonce_base = ctx->ColumnNonceBase(n->id, a);
    const ColumnData& src = in.col(static_cast<size_t>(idx));
    std::vector<EncValue> encs(in.num_rows());
    MPQ_RETURN_NOT_OK(OpParallelFor(
        ctx, OpKind::kEncrypt, in.num_rows(),
        [&](size_t begin, size_t end) -> Status {
          return codec.EncryptSpan(src, begin, end, scheme, nonce_base,
                                   encs.data() + begin);
        }));
    in.SetColumnData(static_cast<size_t>(idx), ColumnFromEnc(std::move(encs)));
    col.encrypted = true;
    col.scheme = scheme;
    col.key_id = key_id;
  }
  return in;
}

Result<Table> ExecDecrypt(const PlanNode* n, Table in, ExecContext* ctx) {
  if (ctx->keyring == nullptr) {
    return Status::NotFound("engine holds no keyring");
  }
  std::vector<AttrId> attrs = n->attrs.ToVector();
  for (AttrId a : attrs) {
    int idx = in.ColIndex(a);
    if (idx < 0) return ColNotFound(n, a, *ctx->catalog);
    ExecColumn& col = in.columns()[static_cast<size_t>(idx)];
    if (!col.encrypted) {
      return Status::InvalidArgument(StrFormat(
          "node %d: attribute %s is not encrypted", n->id, col.name.c_str()));
    }
    const KeyMaterial* km = ctx->keyring->Find(col.key_id);
    if (km == nullptr) {
      return Status::NotFound(
          StrFormat("key %llu was not distributed to this subject",
                    static_cast<unsigned long long>(col.key_id)));
    }
    ColumnCodec codec(*km);
    bool avg = col.hom_avg;
    const ColumnData& src = in.col(static_cast<size_t>(idx));
    std::vector<Cell> cells(in.num_rows());
    // DecryptSpan handles the whole span: ciphertexts decrypt (including the
    // homomorphic-average division), plain NULLs and stray plaintext cells
    // inside a ciphertext column pass through untouched.
    MPQ_RETURN_NOT_OK(OpParallelFor(
        ctx, OpKind::kDecrypt, in.num_rows(),
        [&](size_t begin, size_t end) -> Status {
          return codec.DecryptSpan(src, begin, end, col.type, avg,
                                   cells.data() + begin);
        }));
    in.SetColumnData(static_cast<size_t>(idx),
                     ColumnFromCells(std::move(cells)));
    col.encrypted = false;
    if (avg) {
      col.type = DataType::kDouble;
      col.hom_avg = false;
    }
  }
  return in;
}

}  // namespace

Result<Cell> DefaultUdf(const std::vector<Cell>& cells) {
  // Default udf: over plaintext, a weighted numeric combination; over
  // ciphertexts, an opaque deterministic digest (simulating an
  // encrypted-domain analytic whose output is itself encrypted).
  bool all_plain = true;
  for (const Cell& c : cells) all_plain = all_plain && c.is_plain();
  if (all_plain) {
    double acc = 0;
    double w = 1.0;
    for (const Cell& c : cells) {
      if (!c.plain().is_null() && !c.plain().is_string()) {
        acc += w * c.plain().AsDouble();
      } else if (c.plain().is_string()) {
        acc += w * static_cast<double>(c.plain().AsString().size());
      }
      w *= 0.5;
    }
    return Cell(Value(acc));
  }
  EncValue out;
  uint64_t h = 0x6a09e667f3bcc909ull;
  for (const Cell& c : cells) {
    const std::string& bytes =
        c.is_plain() ? c.plain().Serialize() : c.enc().blob;
    for (unsigned char b : bytes) h = SplitMix64(h ^ b);
    if (c.is_encrypted()) {
      out.scheme = c.enc().scheme;
      out.key_id = c.enc().key_id;
    }
  }
  out.scheme = EncScheme::kDeterministic;
  out.blob.assign(reinterpret_cast<const char*>(&h), 8);
  return Cell(std::move(out));
}

Table MakeBaseTable(const RelationDef& rel) {
  std::vector<ExecColumn> cols;
  for (const Column& c : rel.schema.columns()) {
    ExecColumn ec;
    ec.attr = c.attr;
    ec.name = c.name;
    ec.type = c.type;
    cols.push_back(ec);
  }
  return Table(std::move(cols));
}

namespace {

Result<Table> DispatchNode(const PlanNode* n, std::vector<Table> inputs,
                           ExecContext* ctx) {
  if (inputs.size() != n->num_children()) {
    return Status::InvalidArgument(StrFormat(
        "node %d (%s): expected %zu operand tables, got %zu", n->id,
        OpKindName(n->kind), n->num_children(), inputs.size()));
  }
  switch (n->kind) {
    case OpKind::kBase: {
      auto it = ctx->base_tables.find(n->rel);
      if (it != ctx->base_tables.end()) return *it->second;  // copy
      // Cold relations are published as compressed segments; the first scan
      // decodes (and caches) the whole table.
      auto st = ctx->segment_tables.find(n->rel);
      if (st != ctx->segment_tables.end()) {
        MPQ_ASSIGN_OR_RETURN(const Table* t, st->second->Materialize());
        return *t;  // copy
      }
      return Status::NotFound(StrFormat(
          "no data loaded for relation %s",
          ctx->catalog->Get(n->rel).name.c_str()));
    }
    case OpKind::kProject:
      return ExecProject(n, std::move(inputs[0]), ctx);
    case OpKind::kSelect:
      return ExecSelect(n, std::move(inputs[0]), ctx);
    case OpKind::kCartesian:
      return ExecCartesian(n, std::move(inputs[0]), std::move(inputs[1]), ctx);
    case OpKind::kJoin:
      return ExecJoin(n, std::move(inputs[0]), std::move(inputs[1]), ctx);
    case OpKind::kGroupBy:
      return ExecGroupBy(n, std::move(inputs[0]), ctx);
    case OpKind::kUdf:
      return ExecUdf(n, std::move(inputs[0]), ctx);
    case OpKind::kEncrypt:
      return ExecEncrypt(n, std::move(inputs[0]), ctx);
    case OpKind::kDecrypt:
      return ExecDecrypt(n, std::move(inputs[0]), ctx);
  }
  return Status::Internal("unreachable operator kind");
}

/// Segment-pruned scan for a select directly over a segment-backed base
/// relation: every constant predicate on an unencrypted column is tested
/// against each segment's zone map, and segments that provably contain no
/// qualifying row are never decoded. The surviving concatenation feeds the
/// ordinary select operator, so binding errors and filter semantics are
/// unchanged — pruning only removes rows the filter would drop anyway.
Result<Table> ZoneMapScan(const SegmentedTable& st, const PlanNode* sel,
                          ExecContext* ctx) {
  struct Prunable {
    CmpOp op;
    size_t col;
    const Value* v;
  };
  std::vector<Prunable> preds;
  for (const Predicate& p : sel->predicates) {
    if (!ctx->zone_map_skipping) break;
    if (p.rhs_is_attr) continue;
    for (size_t c = 0; c < st.columns().size(); ++c) {
      if (st.columns()[c].attr == p.lhs && !st.columns()[c].encrypted) {
        preds.push_back({p.op, c, &p.rhs_value});
        break;
      }
    }
  }
  std::vector<Chunk> chunks;
  for (size_t s = 0; s < st.num_segments(); ++s) {
    const SegmentReader& seg = st.segment(s);
    ctx->segments_scanned.fetch_add(1, std::memory_order_relaxed);
    bool may = true;
    for (const Prunable& pr : preds) {
      if (!ZoneMayMatch(seg.zone(pr.col), pr.op, *pr.v)) {
        may = false;
        break;
      }
    }
    if (!may) {
      ctx->segments_skipped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    MPQ_ASSIGN_OR_RETURN(Table part, seg.Decode());
    Chunk ch;
    ch.reserve(part.num_columns());
    for (size_t c = 0; c < part.num_columns(); ++c) {
      ch.push_back(std::move(part.col_mut(c)));
    }
    chunks.push_back(std::move(ch));
  }
  if (chunks.empty()) {
    // Everything pruned: an empty table in the segments' physical reps, the
    // same shape a fully filtered decode would produce.
    Table out;
    for (size_t c = 0; c < st.columns().size(); ++c) {
      out.AddColumn(st.columns()[c], ColumnData(st.segment(0).rep(c)));
    }
    return out;
  }
  return MergeChunks(st.columns(), std::move(chunks));
}

}  // namespace

Result<Table> ExecuteNodeOnInputs(const PlanNode* n, std::vector<Table> inputs,
                                  ExecContext* ctx) {
  if (ctx->op_profile == nullptr && ctx->trace == nullptr) {
    return DispatchNode(n, std::move(inputs), ctx);
  }
  uint64_t rows_in = 0;
  for (const Table& t : inputs) rows_in += t.num_rows();
  Span span;
  if (ctx->trace != nullptr) {
    span = ctx->trace->StartSpan(OpKindName(n->kind), "op", ctx->trace_parent,
                                 n->id, ctx->trace_track);
  }
  uint64_t morsels0 = ctx->op_morsels.load(std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  Result<Table> result = DispatchNode(n, std::move(inputs), ctx);
  auto ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  uint64_t rows_out = result.ok() ? result->num_rows() : 0;
  uint64_t morsels =
      ctx->op_morsels.load(std::memory_order_relaxed) - morsels0;
  if (ctx->op_profile != nullptr) {
    ctx->op_profile->Record(n->kind, ns, rows_in, rows_out);
  }
  if (span) {
    span.AnnInt("rows_in", static_cast<int64_t>(rows_in));
    span.AnnInt("rows_out", static_cast<int64_t>(rows_out));
    if (rows_in > 0) {
      span.AnnDouble("selectivity", static_cast<double>(rows_out) /
                                        static_cast<double>(rows_in));
    }
    span.AnnInt("wall_ns", static_cast<int64_t>(ns));
    if (morsels > 0) span.AnnInt("morsels", static_cast<int64_t>(morsels));
    if (!result.ok()) span.AnnStr("error", result.status().ToString());
  }
  return result;
}

Result<Table> ExecutePlan(const PlanNode* root, ExecContext* ctx) {
  // A select directly over a segment-backed base relation scans via zone
  // maps: whole segments are skipped before any decode.
  if (root->kind == OpKind::kSelect && root->num_children() == 1 &&
      root->child(0)->kind == OpKind::kBase) {
    const PlanNode* base = root->child(0);
    if (ctx->base_tables.find(base->rel) == ctx->base_tables.end()) {
      auto st = ctx->segment_tables.find(base->rel);
      if (st != ctx->segment_tables.end()) {
        MPQ_ASSIGN_OR_RETURN(Table in, ZoneMapScan(*st->second, root, ctx));
        std::vector<Table> one;
        one.push_back(std::move(in));
        return ExecuteNodeOnInputs(root, std::move(one), ctx);
      }
    }
  }
  size_t nc = root->num_children();
  std::vector<Table> inputs;
  inputs.reserve(nc);

  if (ctx->pool != nullptr && ctx->pool->size() > 0 && nc > 1) {
    // Independent subtrees run concurrently: children 1..n-1 go to the pool,
    // child 0 runs on this thread, which then helps drain the pool while
    // waiting (deadlock-free under recursive submission).
    std::vector<std::optional<Result<Table>>> results(nc);
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = nc - 1;
    for (size_t i = 1; i < nc; ++i) {
      auto task = [&, i] {
        Result<Table> r = ExecutePlan(root->child(i), ctx);
        std::lock_guard<std::mutex> lock(mu);
        results[i] = std::move(r);
        if (--remaining == 0) cv.notify_all();
      };
      // Submit only rejects during pool shutdown; run the subtree here
      // then, trading parallelism for the result.
      if (!ctx->pool->Submit(task)) task();
    }
    results[0] = ExecutePlan(root->child(0), ctx);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (remaining == 0) break;
      }
      if (ctx->pool->TryRunOneTask()) continue;
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::milliseconds(1),
                  [&] { return remaining == 0; });
    }
    // Report the lowest-index child error for determinism.
    for (size_t i = 0; i < nc; ++i) {
      if (!results[i]->ok()) return results[i]->status();
    }
    for (size_t i = 0; i < nc; ++i) {
      inputs.push_back(std::move(*results[i]).value());
    }
    return ExecuteNodeOnInputs(root, std::move(inputs), ctx);
  }

  for (size_t i = 0; i < nc; ++i) {
    MPQ_ASSIGN_OR_RETURN(Table t, ExecutePlan(root->child(i), ctx));
    inputs.push_back(std::move(t));
  }
  return ExecuteNodeOnInputs(root, std::move(inputs), ctx);
}

}  // namespace mpq

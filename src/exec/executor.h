// Tuple-at-a-time execution of (extended) query plans, including evaluation
// over ciphertexts: equality on DET, order on OPE, additive aggregation on
// Paillier, and on-the-fly encryption/decryption operators.

#ifndef MPQ_EXEC_EXECUTOR_H_
#define MPQ_EXEC_EXECUTOR_H_

#include <functional>
#include <unordered_map>

#include "algebra/plan.h"
#include "common/status.h"
#include "crypto/keyring.h"
#include "exec/table.h"

namespace mpq {

/// Per-attribute encryption decisions: which scheme and key protect each
/// attribute whenever it is encrypted in the plan.
struct CryptoPlan {
  std::unordered_map<AttrId, EncScheme> scheme_of;
  std::unordered_map<AttrId, uint64_t> key_of;

  EncScheme SchemeOf(AttrId a) const {
    auto it = scheme_of.find(a);
    return it == scheme_of.end() ? EncScheme::kDeterministic : it->second;
  }
  uint64_t KeyOf(AttrId a) const {
    auto it = key_of.find(a);
    return it == key_of.end() ? 0 : it->second;
  }
};

/// A user-defined function: cells of the input attributes (in ascending
/// attribute-id order) to one output cell.
using UdfImpl = std::function<Result<Cell>(const std::vector<Cell>&)>;

/// Execution environment. `keyring` holds the keys available to the engine
/// performing encryption/decryption operators — an engine without a key fails
/// with kNotFound, which is exactly the enforcement property key distribution
/// provides. `dispatcher_keyring` holds the keys of the party that prepared
/// the dispatched sub-queries: predicate *constants* compared against
/// encrypted columns are encrypted with it (the paper dispatches conditions
/// already formulated on encrypted values).
struct ExecContext {
  const Catalog* catalog = nullptr;
  std::unordered_map<RelId, const Table*> base_tables;
  const KeyRing* keyring = nullptr;
  const KeyRing* dispatcher_keyring = nullptr;
  /// Public Paillier moduli per key id (public knowledge; homomorphic
  /// addition needs no private key).
  std::unordered_map<uint64_t, uint64_t> public_modulus;
  const CryptoPlan* crypto = nullptr;
  uint64_t nonce = 0x9e3779b9u;
  std::unordered_map<std::string, UdfImpl> udfs;

  uint64_t NextNonce() { return ++nonce; }
};

/// Executes `root` and returns the resulting table.
Result<Table> ExecutePlan(const PlanNode* root, ExecContext* ctx);

/// Executes exactly one operator over materialized operand tables (children
/// are NOT executed; `inputs` must match the node's arity). Base nodes take
/// no inputs and read from ctx->base_tables. This is the building block of
/// the distributed runtime, which runs each node under its assignee's
/// context.
Result<Table> ExecuteNodeOnInputs(const PlanNode* n, std::vector<Table> inputs,
                                  ExecContext* ctx);

/// Builds the initial table for a base relation from plaintext column data
/// given in schema order.
Table MakeBaseTable(const RelationDef& rel);

}  // namespace mpq

#endif  // MPQ_EXEC_EXECUTOR_H_

// Batch-parallel execution of (extended) query plans, including evaluation
// over ciphertexts: equality on DET, order on OPE, additive aggregation on
// Paillier, and on-the-fly encryption/decryption operators.
//
// Operators process fixed-size RowBatches; when an ExecContext carries a
// ThreadPool, batches of one operator and independent plan subtrees run
// concurrently. Batch boundaries and merge order are thread-count
// independent, so results are deterministic at any pool size.

#ifndef MPQ_EXEC_EXECUTOR_H_
#define MPQ_EXEC_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "algebra/plan.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "crypto/keyring.h"
#include "exec/table.h"
#include "profile/op_stats.h"

namespace mpq {

class MorselScheduler;
class QueryTrace;
class SegmentedTable;
class SharedScanManager;

/// Per-attribute encryption decisions: which scheme and key protect each
/// attribute whenever it is encrypted in the plan.
struct CryptoPlan {
  std::unordered_map<AttrId, EncScheme> scheme_of;
  std::unordered_map<AttrId, uint64_t> key_of;

  EncScheme SchemeOf(AttrId a) const {
    auto it = scheme_of.find(a);
    return it == scheme_of.end() ? EncScheme::kDeterministic : it->second;
  }
  uint64_t KeyOf(AttrId a) const {
    auto it = key_of.find(a);
    return it == key_of.end() ? 0 : it->second;
  }
};

/// A user-defined function: cells of the input attributes (in ascending
/// attribute-id order) to one output cell.
using UdfImpl = std::function<Result<Cell>(const std::vector<Cell>&)>;

/// Public Paillier moduli per key id — the public knowledge a provider
/// needs to aggregate ciphertexts homomorphically without holding any
/// private key. Group-by operators resolve this into fold-only ColumnCodec
/// instances once per operator.
using HomKeyDirectory = std::unordered_map<uint64_t, uint64_t>;

/// Execution environment. `keyring` holds the keys available to the engine
/// performing encryption/decryption operators — an engine without a key fails
/// with kNotFound, which is exactly the enforcement property key distribution
/// provides. `dispatcher_keyring` holds the keys of the party that prepared
/// the dispatched sub-queries: predicate *constants* compared against
/// encrypted columns are encrypted with it (the paper dispatches conditions
/// already formulated on encrypted values).
struct ExecContext {
  const Catalog* catalog = nullptr;
  std::unordered_map<RelId, const Table*> base_tables;
  const KeyRing* keyring = nullptr;
  const KeyRing* dispatcher_keyring = nullptr;
  /// Public Paillier moduli per key id (public knowledge; homomorphic
  /// addition needs no private key). Shared by pointer: a runtime building
  /// one context per plan node resolves the directory once instead of
  /// copying the map into every context. Null means no moduli are known.
  std::shared_ptr<const HomKeyDirectory> public_modulus;
  const CryptoPlan* crypto = nullptr;
  /// Nonce counter for predicate-constant encryption. Atomic so concurrent
  /// subtrees sharing one context can draw from it safely.
  std::atomic<uint64_t> nonce{0x9e3779b9u};
  /// Seed for encryption operators: each (node, attribute) derives its nonce
  /// range as a PRF of this seed, so ciphertexts are bit-identical at any
  /// thread count and across runs. Freshness is per (seed, node, attribute):
  /// callers re-executing a plan over *changed* data under kRandom/Paillier
  /// should change the seed (DistributedRuntime advances it every Run).
  uint64_t nonce_seed = 0x9e3779b97f4a7c15ull;
  std::unordered_map<std::string, UdfImpl> udfs;
  /// Serializes udf invocations across concurrently executing subtrees —
  /// registered implementations are not required to be thread-safe. Shared
  /// so runtimes building one context per plan node can still serialize
  /// every node's udf calls on one mutex.
  std::shared_ptr<std::mutex> udf_mu = std::make_shared<std::mutex>();
  /// When set, operators parallelize per-batch work and ExecutePlan runs
  /// independent subtrees concurrently. Null means fully sequential.
  ThreadPool* pool = nullptr;
  /// When set, operators enqueue their per-batch loops as morsel tasks on
  /// this global scheduler instead of fanning out privately via ParallelFor
  /// — all concurrent queries then draw from one task queue. Morsel
  /// boundaries are the same (n, grain) partition either way, so results
  /// stay bit-identical with or without it.
  MorselScheduler* morsels = nullptr;
  /// When set, base-table selects coalesce with concurrent scans over the
  /// same column payload (see SharedScanManager). Pure scheduling: each
  /// query still evaluates its own predicate per batch.
  SharedScanManager* shared_scans = nullptr;
  /// Morsels this context has enqueued (relaxed; per-operator span
  /// attribution reads the delta around each operator).
  std::atomic<uint64_t> op_morsels{0};
  /// Rows per RowBatch. Also the parallel grain; results do not depend on it
  /// except for floating-point aggregation merge order (fixed per size).
  /// Zero is treated as one.
  size_t batch_size = Table::kDefaultBatchSize;
  /// When set, every executed operator records its wall time and row
  /// volumes here (thread-safe; typically shared by all engines of one
  /// serving process — see profile/op_stats.h).
  OpProfile* op_profile = nullptr;
  /// When set, every executed operator opens an "op" span under
  /// `trace_parent` (rows in/out, selectivity, wall time). Execution never
  /// reads the trace, so traced runs stay bit-identical to untraced ones.
  QueryTrace* trace = nullptr;
  uint64_t trace_parent = 0;  ///< Parent span id for operator spans.
  int trace_track = 0;        ///< Span track (assignee id when distributed).
  /// Byte budget for memory-intensive operators (join builds, group-by
  /// state). When an operator's working set would exceed it, the operator
  /// partitions its inputs by key hash, spills overflow partitions to disk
  /// as compressed segments, and recurses — outputs stay bit-identical to
  /// the in-memory path at any thread count. Zero means unbounded (never
  /// spill).
  uint64_t memory_budget = 0;
  /// Directory for spill segment files; empty means the system temp dir.
  std::string spill_dir;
  /// Segment-backed base relations: kBase scans fall through to these when
  /// the relation has no materialized entry in `base_tables`, decoding
  /// lazily (and skipping whole segments via zone maps when the scan is a
  /// select over constants). Ordered map so iteration order is stable.
  std::map<RelId, const SegmentedTable*> segment_tables;
  /// When false, segment-backed scans decode every segment (zone maps are
  /// consulted but never prune). A/B knob for measuring what skipping buys;
  /// results are identical either way.
  bool zone_map_skipping = true;
  /// Out-of-core / zone-map observability (relaxed; diagnostic only).
  std::atomic<uint64_t> spill_partitions{0};  ///< Partitions written.
  std::atomic<uint64_t> spill_bytes{0};       ///< Encoded bytes spilled.
  std::atomic<uint64_t> spill_generations{0};  ///< Max recursion depth + 1.
  std::atomic<uint64_t> segments_skipped{0};  ///< Segments pruned by zones.
  std::atomic<uint64_t> segments_scanned{0};  ///< Segments considered.

  uint64_t NextNonce() {
    return nonce.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Nonce base for encrypting column `attr` of node `node_id`: row r uses
  /// `base + r`. Deterministic in (seed, node, attribute) — independent of
  /// batch scheduling, thread count, and sibling-subtree execution order.
  uint64_t ColumnNonceBase(int node_id, AttrId attr) const {
    uint64_t h = nonce_seed ^
                 (static_cast<uint64_t>(node_id) + 1) * 0x9e3779b97f4a7c15ull;
    h ^= (static_cast<uint64_t>(attr) + 1) * 0xbf58476d1ce4e5b9ull;
    return SplitMix64(h);
  }
};

/// Executes `root` and returns the resulting table.
Result<Table> ExecutePlan(const PlanNode* root, ExecContext* ctx);

/// Executes exactly one operator over materialized operand tables (children
/// are NOT executed; `inputs` must match the node's arity). Base nodes take
/// no inputs and read from ctx->base_tables. This is the building block of
/// the distributed runtime, which runs each node under its assignee's
/// context.
Result<Table> ExecuteNodeOnInputs(const PlanNode* n, std::vector<Table> inputs,
                                  ExecContext* ctx);

/// Builds the initial table for a base relation from plaintext column data
/// given in schema order.
Table MakeBaseTable(const RelationDef& rel);

/// The built-in udf applied when no implementation is registered: a
/// weighted numeric combination over plaintext cells, an opaque
/// deterministic digest over ciphertexts. Exposed so the row-path reference
/// executor applies the bit-identical function.
Result<Cell> DefaultUdf(const std::vector<Cell>& cells);

}  // namespace mpq

#endif  // MPQ_EXEC_EXECUTOR_H_

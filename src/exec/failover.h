// Authorized failover: when a provider dies mid-query (a SimNet crash, a
// dead link, a blown fragment deadline), re-enter the candidates/assignment
// machinery with the dead subjects excluded, pick the minimum-cost
// *authorized* alternative assignment, re-derive and re-distribute keys, and
// re-execute. The recovered result is the same table the fault-free run
// produces — proved by tests/simnet_test.cc and tests/differential_test.cc.
//
// Recovery always replans under the *current* policy (candidates are
// recomputed and the chosen assignment re-verified per Def 4.2), so a grant
// revoked between the original plan and the failure can never leak into the
// recovery path — there is no stale-policy execution after failover.
//
// Each attempt runs with freshly derived keys (seed advanced per attempt):
// intermediates of the abandoned attempt are ciphertext under keys the new
// assignment never distributes, so a partially-computed fragment at a
// crashed provider is useless to it. The price is re-executing from the base
// relations; the bytes thrown away are accounted as retransfer_bytes.

#ifndef MPQ_EXEC_FAILOVER_H_
#define MPQ_EXEC_FAILOVER_H_

#include <map>
#include <vector>

#include "assign/assignment.h"
#include "exec/distributed.h"
#include "net/pricing.h"
#include "net/simnet.h"

namespace mpq {

/// Knobs of the failover loop.
struct FailoverConfig {
  SchemeCaps caps;               ///< Encrypted-execution capabilities.
  uint64_t key_seed = 2025;      ///< Base seed for per-attempt key material.
  size_t max_failovers = 2;      ///< Re-plan attempts after the first run.
  NetPolicy net_policy;          ///< Per-edge retry/deadline budget.
  bool compress_wire = true;     ///< Segment-encode cross-subject transfers.
  ThreadPool* pool = nullptr;    ///< Borrowed; null = sequential.
  /// Borrowed; when set, attempt runtimes enqueue operator loops on this
  /// process-wide morsel scheduler instead of private fan-out. Null lets
  /// each runtime create its own over `pool`.
  MorselScheduler* morsels = nullptr;
  /// Borrowed; when set, concurrent same-snapshot base scans coalesce.
  SharedScanManager* shared_scans = nullptr;
  size_t batch_size = Table::kDefaultBatchSize;
  OpProfile* op_profile = nullptr;  ///< Borrowed; null = no op counters.
  /// Borrowed; when set, every re-plan attempt records a "failover" span
  /// (excluded subjects, retransfer bytes, recovery latency) and the
  /// recovery runs trace their fragments under it. Null = no tracing.
  QueryTrace* trace = nullptr;
  uint64_t trace_parent = 0;  ///< Parent span id for attempt spans.
};

/// Outcome of a (possibly recovered) execution.
struct FailoverOutcome {
  DistributedResult result;        ///< Of the successful attempt.
  AssignmentResult assignment;     ///< The assignment that produced it.
  size_t failovers = 0;            ///< Re-plans that were needed.
  std::vector<SubjectId> excluded; ///< Subjects the final plan routed around.
  /// Bytes delivered in abandoned attempts — transferred again by the
  /// recovery plan.
  uint64_t retransfer_bytes = 0;
  /// Wall seconds spent after the first failure (re-planning + re-runs).
  double failover_latency_s = 0;
};

/// Executes plans against a SimNet with authorized failover. The referenced
/// catalog/subjects/policy/pricing/topology/net must outlive the executor;
/// base tables are borrowed.
class FailoverExecutor {
 public:
  FailoverExecutor(const Catalog* catalog, const SubjectRegistry* subjects,
                   const Policy* policy, const PricingTable* prices,
                   const Topology* topology, SimNet* net,
                   FailoverConfig config = {})
      : catalog_(catalog),
        subjects_(subjects),
        policy_(policy),
        prices_(prices),
        topology_(topology),
        net_(net),
        config_(config) {}

  /// Borrows the data of a base relation (caller keeps it alive).
  void LoadTable(RelId rel, const Table* data) { tables_[rel] = data; }

  /// Optimize → extend → distribute keys → run, re-planning around dead
  /// subjects up to config.max_failovers times. `plan` must be bound and
  /// profile-annotated (DerivePlaintextNeeds + AnnotatePlan done).
  Result<FailoverOutcome> Execute(const PlanNode* plan, SubjectId user);

  /// Recovery entry for a first attempt that already failed elsewhere (the
  /// serving layer's cached-plan path): goes straight to re-planning with
  /// the net's down subjects excluded.
  Result<FailoverOutcome> Recover(const PlanNode* plan, SubjectId user);

 private:
  /// One planning+execution attempt with the net's current down set
  /// excluded. `attempt` salts the key seed; `parent_span` parents the
  /// recovery run's trace spans (0 = config trace_parent).
  Result<FailoverOutcome> Attempt(const PlanNode* plan, SubjectId user,
                                  size_t attempt, uint64_t parent_span);
  Result<FailoverOutcome> Loop(const PlanNode* plan, SubjectId user,
                               size_t first_attempt);

  const Catalog* catalog_;
  const SubjectRegistry* subjects_;
  const Policy* policy_;
  const PricingTable* prices_;
  const Topology* topology_;
  SimNet* net_;
  FailoverConfig config_;
  std::map<RelId, const Table*> tables_;
};

}  // namespace mpq

#endif  // MPQ_EXEC_FAILOVER_H_

#include "exec/mrv.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <mutex>
#include <thread>

#include "common/rng.h"

namespace mpq {

namespace {

size_t ClampRecords(size_t n) {
  return std::min(std::max<size_t>(n, 1), MrvCounter::kMaxRecords);
}

}  // namespace

MrvCounter::MrvCounter(int64_t initial, size_t num_records, uint64_t seed)
    : records_(kMaxRecords), seed_(seed) {
  assert(initial >= 0 && "MRV invariant: total >= 0");
  size_t n = ClampRecords(num_records);
  active_.store(n, std::memory_order_release);
  // Split the initial value evenly; the remainder lands on record 0.
  int64_t share = initial / static_cast<int64_t>(n);
  int64_t rem = initial - share * static_cast<int64_t>(n);
  for (size_t i = 0; i < n; ++i) {
    records_[i].v.store(share + (i == 0 ? rem : 0),
                        std::memory_order_relaxed);
  }
}

uint64_t MrvCounter::NextHint() const {
  // Per-thread hint stream: no shared state, so concurrent updaters never
  // contend on the randomness source itself.
  static thread_local uint64_t state =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  state += 0x9e3779b97f4a7c15ull;
  return SplitMix64(state ^ seed_);
}

void MrvCounter::Add(int64_t delta) {
  assert(delta >= 0 && "Add takes a non-negative delta; use Sub");
  if (delta == 0) return;
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = active_.load(std::memory_order_acquire);
  size_t slot = static_cast<size_t>(NextHint() % n);
  records_[slot].v.fetch_add(delta, std::memory_order_relaxed);
  adds_.fetch_add(1, std::memory_order_relaxed);
}

Status MrvCounter::Sub(int64_t delta) {
  assert(delta >= 0 && "Sub takes a non-negative delta");
  if (delta == 0) {
    subs_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = active_.load(std::memory_order_acquire);
  size_t start = static_cast<size_t>(NextHint() % n);
  int64_t remaining = delta;
  // What was taken from each visited record, for rollback on failure.
  int64_t taken[kMaxRecords] = {0};
  size_t visited = 0;
  for (size_t step = 0; step < n && remaining > 0; ++step) {
    size_t i = (start + step) % n;
    int64_t cur = records_[i].v.load(std::memory_order_relaxed);
    while (cur > 0) {
      int64_t take = std::min(cur, remaining);
      if (records_[i].v.compare_exchange_weak(cur, cur - take,
                                              std::memory_order_relaxed)) {
        taken[i] = take;
        remaining -= take;
        ++visited;
        break;
      }
      // cur was reloaded by the failed CAS; another updater won the race.
      cas_retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (remaining > 0) {
    // Not enough value across every record: restore what was gathered and
    // reject, keeping the invariant total >= 0 without ever exposing a
    // negative record.
    for (size_t i = 0; i < n; ++i) {
      if (taken[i] > 0) {
        records_[i].v.fetch_add(taken[i], std::memory_order_relaxed);
      }
    }
    sub_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "mrv sub rejected: insufficient value (invariant total >= 0)");
  }
  subs_.fetch_add(1, std::memory_order_relaxed);
  sub_records_.fetch_add(visited, std::memory_order_relaxed);
  return Status::OK();
}

int64_t MrvCounter::Total() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = active_.load(std::memory_order_acquire);
  int64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += records_[i].v.load(std::memory_order_relaxed);
  }
  return total;
}

void MrvCounter::Balance() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t n = active_.load(std::memory_order_acquire);
  int64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += records_[i].v.load(std::memory_order_relaxed);
  }
  int64_t share = total / static_cast<int64_t>(n);
  int64_t rem = total - share * static_cast<int64_t>(n);
  for (size_t i = 0; i < n; ++i) {
    records_[i].v.store(share + (i == 0 ? rem : 0),
                        std::memory_order_relaxed);
  }
}

void MrvCounter::Resize(size_t n) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t target = ClampRecords(n);
  size_t cur = active_.load(std::memory_order_acquire);
  // Deactivated records drain into record 0 so no value is stranded.
  for (size_t i = target; i < cur; ++i) {
    int64_t v = records_[i].v.exchange(0, std::memory_order_relaxed);
    records_[0].v.fetch_add(v, std::memory_order_relaxed);
  }
  active_.store(target, std::memory_order_release);
}

bool MrvCounter::AdjustStep() {
  uint64_t retries = cas_retries_.load(std::memory_order_relaxed);
  uint64_t subs = subs_.load(std::memory_order_relaxed);
  uint64_t sub_records = sub_records_.load(std::memory_order_relaxed);
  uint64_t d_retries = retries - last_retries_;
  uint64_t d_subs = subs - last_subs_;
  uint64_t d_sub_records = sub_records - last_sub_records_;
  last_retries_ = retries;
  last_subs_ = subs;
  last_sub_records_ = sub_records;

  size_t n = active_.load(std::memory_order_acquire);
  if (d_retries > 0 && n < kMaxRecords) {
    // Observed contention: double the record count (the paper's adjust
    // worker grows the MRV under aborts; CAS retries are our analogue).
    Resize(n * 2);
    grows_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (d_retries == 0 && d_subs > 0 && d_sub_records > 2 * d_subs && n > 1) {
    // Subs walk > 2 records on average with zero contention: the value is
    // spread over more records than the workload needs.
    Resize(n / 2);
    Balance();
    shrinks_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

MrvStats MrvCounter::Stats() const {
  MrvStats s;
  s.adds = adds_.load(std::memory_order_relaxed);
  s.subs = subs_.load(std::memory_order_relaxed);
  s.sub_failures = sub_failures_.load(std::memory_order_relaxed);
  s.cas_retries = cas_retries_.load(std::memory_order_relaxed);
  s.sub_records = sub_records_.load(std::memory_order_relaxed);
  s.grows = grows_.load(std::memory_order_relaxed);
  s.shrinks = shrinks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mpq

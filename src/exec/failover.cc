#include "exec/failover.h"

#include <chrono>
#include <optional>

#include "common/rng.h"
#include "common/str_util.h"
#include "obs/trace.h"

namespace mpq {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

Result<FailoverOutcome> FailoverExecutor::Attempt(const PlanNode* plan,
                                                  SubjectId user,
                                                  size_t attempt,
                                                  uint64_t parent_span) {
  // The down set is read fresh every attempt: each failed run grows it.
  SubjectSet excluded;
  for (SubjectId s : net_->DownSubjects()) excluded.Insert(s);

  FailoverOutcome out;
  MPQ_ASSIGN_OR_RETURN(
      CandidatePlan cp,
      ComputeCandidates(plan, *policy_, /*require_nonempty=*/true,
                        excluded.empty() ? nullptr : &excluded));
  SchemeMap schemes = AnalyzeSchemes(plan, *catalog_, config_.caps);
  CostModel cost_model(catalog_, prices_, topology_, &schemes);
  AssignmentOptimizer optimizer(policy_, &cost_model);
  MPQ_ASSIGN_OR_RETURN(out.assignment, optimizer.Optimize(plan, cp, user));
  // Replanning happens under the *current* policy; verifying here makes the
  // no-stale-policy property explicit rather than implied.
  MPQ_RETURN_NOT_OK(
      VerifyAuthorizedAssignment(out.assignment.extended, *policy_));

  PlanKeys keys = DeriveQueryPlanKeys(out.assignment.extended);
  DistributedRuntime rt(catalog_, subjects_);
  for (const auto& [rel, table] : tables_) rt.LoadTableRef(rel, table);
  // A fresh key seed per attempt: nothing the abandoned attempt shipped is
  // decryptable under the recovery plan's keys.
  rt.DistributeKeys(
      keys, user,
      SplitMix64(config_.key_seed ^ (attempt + 1) * 0x9e3779b97f4a7c15ull));
  rt.SetCryptoPlan(MakeCryptoPlan(out.assignment.refined_schemes, keys));
  rt.SetThreadPool(config_.pool);
  rt.SetMorselScheduler(config_.morsels);
  rt.SetSharedScans(config_.shared_scans);
  rt.SetBatchSize(config_.batch_size);
  rt.SetNetwork(net_);
  rt.SetNetPolicy(config_.net_policy);
  rt.SetCompressWire(config_.compress_wire);
  rt.SetOpProfile(config_.op_profile);

  MPQ_ASSIGN_OR_RETURN(
      out.result,
      rt.Run(out.assignment.extended, user, config_.trace,
             parent_span != 0 ? parent_span : config_.trace_parent));
  excluded.ForEach(
      [&](AttrId s) { out.excluded.push_back(static_cast<SubjectId>(s)); });
  return out;
}

Result<FailoverOutcome> FailoverExecutor::Loop(const PlanNode* plan,
                                               SubjectId user,
                                               size_t first_attempt) {
  Status last = Status::Unavailable("no attempt made");
  uint64_t retransfer = 0;
  // Set at the first observed failure; Recover enters with the failure
  // already observed by the caller.
  std::optional<Clock::time_point> first_failure;
  if (first_attempt > 0) first_failure = Clock::now();

  for (size_t attempt = first_attempt; attempt <= config_.max_failovers;
       ++attempt) {
    size_t down_before = net_->DownSubjects().size();
    uint64_t delivered_before = net_->GetStats().bytes_delivered;
    // Recovery attempts (attempt > 0) get their own "failover" span so the
    // re-plan's fragments and transfers nest under the recovery — the
    // fault-free first attempt traces directly under the caller's span.
    Span attempt_span;
    if (config_.trace != nullptr && attempt > 0) {
      attempt_span = config_.trace->StartSpan(
          StrFormat("failover:%zu", attempt), "failover", config_.trace_parent,
          /*node_id=*/-1, /*track=*/-1, /*salt=*/attempt);
    }
    Result<FailoverOutcome> r =
        Attempt(plan, user, attempt,
                attempt_span ? attempt_span.id() : config_.trace_parent);
    if (r.ok()) {
      r->failovers = attempt;
      r->retransfer_bytes = retransfer;
      if (first_failure.has_value()) {
        r->failover_latency_s = SecondsSince(*first_failure);
      }
      if (attempt_span) {
        attempt_span.AnnInt("retransfer_bytes",
                            static_cast<int64_t>(retransfer));
        attempt_span.AnnDouble("failover_latency_s", r->failover_latency_s);
        std::string excluded_names;
        for (SubjectId s : r->excluded) {
          if (!excluded_names.empty()) excluded_names += ",";
          excluded_names += subjects_->Name(s);
        }
        attempt_span.AnnStr("excluded", excluded_names);
      }
      return r;
    }
    last = r.status();
    if (attempt_span) attempt_span.AnnStr("error", last.ToString());
    // Only an unavailability can be cured by excluding more subjects; an
    // authorization or planning error is terminal.
    if (last.code() != StatusCode::kUnavailable) return last;
    // So is an unavailability that brought no new failure information (a
    // down data authority, say): the down set only grows, and an unchanged
    // set would replay the identical plan into the identical failure.
    if (net_->DownSubjects().size() == down_before) return last;
    if (!first_failure.has_value()) first_failure = Clock::now();
    // Bytes the abandoned attempt moved must move again under the recovery
    // plan. Deltas of the shared net counter: with other traffic in flight
    // on the same SimNet this is aggregate, not per-request, attribution
    // (the failed Run's own byte accounting does not survive its error).
    retransfer += net_->GetStats().bytes_delivered - delivered_before;
  }
  return last;
}

Result<FailoverOutcome> FailoverExecutor::Execute(const PlanNode* plan,
                                                  SubjectId user) {
  if (net_ == nullptr) {
    return Status::InvalidArgument(
        "FailoverExecutor requires a SimNet (failure detection lives there)");
  }
  return Loop(plan, user, /*first_attempt=*/0);
}

Result<FailoverOutcome> FailoverExecutor::Recover(const PlanNode* plan,
                                                  SubjectId user) {
  if (net_ == nullptr) {
    return Status::InvalidArgument(
        "FailoverExecutor requires a SimNet (failure detection lives there)");
  }
  return Loop(plan, user, /*first_attempt=*/1);
}

}  // namespace mpq

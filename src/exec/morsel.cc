#include "exec/morsel.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace mpq {

bool MorselScheduler::ClaimAndRunOne(const std::shared_ptr<Registry>& reg,
                                     const std::shared_ptr<RunState>& rs) {
  size_t m;
  {
    std::lock_guard<std::mutex> lock(rs->mu);
    if (rs->next_morsel >= rs->num_morsels) return false;
    m = rs->next_morsel++;
  }
  // Every morsel runs even after a failure elsewhere: that keeps the
  // reported error (lowest failing morsel) deterministic across thread
  // counts, matching the ParallelFor contract.
  size_t begin = m * rs->grain;
  Status st = rs->fn(begin, std::min(begin + rs->grain, rs->n));
  reg->executed.fetch_add(1, std::memory_order_relaxed);
  reg->pending.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(rs->mu);
    if (!st.ok() && m < rs->error_morsel) {
      rs->error_morsel = m;
      rs->error = std::move(st);
    }
    if (++rs->morsels_done == rs->num_morsels) rs->cv.notify_all();
  }
  return true;
}

bool MorselScheduler::PumpOne(const std::shared_ptr<Registry>& reg) {
  for (;;) {
    std::shared_ptr<RunState> rs;
    {
      std::lock_guard<std::mutex> lock(reg->mu);
      while (!reg->active.empty()) {
        rs = reg->active.front();
        bool has_work;
        {
          std::lock_guard<std::mutex> rl(rs->mu);
          has_work = rs->next_morsel < rs->num_morsels;
        }
        if (has_work) break;
        reg->active.pop_front();
        rs.reset();
      }
    }
    if (rs == nullptr) return false;
    // A concurrent claimer may have taken the last morsel between the check
    // and the claim; loop so the exhausted run gets popped and the next one
    // tried, instead of reporting an empty registry early.
    if (ClaimAndRunOne(reg, rs)) return true;
  }
}

Status MorselScheduler::Run(size_t n, size_t grain,
                            const std::function<Status(size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  size_t num_morsels = (n + grain - 1) / grain;
  reg_->runs.fetch_add(1, std::memory_order_relaxed);
  if (pool_ == nullptr || pool_->size() == 0 || num_morsels == 1) {
    for (size_t m = 0; m < num_morsels; ++m) {
      size_t begin = m * grain;
      reg_->executed.fetch_add(1, std::memory_order_relaxed);
      MPQ_RETURN_NOT_OK(fn(begin, std::min(begin + grain, n)));
    }
    return Status::OK();
  }

  auto rs = std::make_shared<RunState>();
  rs->n = n;
  rs->grain = grain;
  rs->num_morsels = num_morsels;
  rs->fn = fn;
  {
    std::lock_guard<std::mutex> lock(reg_->mu);
    reg_->active.push_back(rs);
  }
  uint64_t depth =
      reg_->pending.fetch_add(num_morsels, std::memory_order_relaxed) +
      num_morsels;
  uint64_t peak = reg_->peak.load(std::memory_order_relaxed);
  while (depth > peak &&
         !reg_->peak.compare_exchange_weak(peak, depth,
                                           std::memory_order_relaxed)) {
  }

  // Wake workers via pump tasks. Each pump drains the *global* FIFO, not
  // just this run — an idle worker woken for query A keeps helping query B
  // afterwards, which is what makes the queue shared. Submit may reject
  // during pool shutdown; that only costs parallelism, the caller loop
  // below claims every remaining morsel itself.
  auto reg = reg_;
  size_t num_helpers = std::min(pool_->size(), num_morsels - 1);
  for (size_t i = 0; i < num_helpers; ++i) {
    (void)pool_->Submit([reg] {
      while (PumpOne(reg)) {
      }
    });
  }

  // The caller claims its own morsels first (its run never starves), then
  // helps other runs' morsels while waiting. It deliberately does NOT run
  // arbitrary pool tasks here: this thread may hold an admission slot, and
  // an arbitrary task can be another async query that blocks on admission —
  // nest a few of those and every thread is parked under a suspended query
  // (deadlock). Morsel work never blocks, so pumping is always safe. The
  // timed wait covers the race between the final completion and this
  // thread going to sleep.
  for (;;) {
    if (ClaimAndRunOne(reg_, rs)) continue;
    {
      std::lock_guard<std::mutex> lock(rs->mu);
      if (rs->morsels_done >= rs->num_morsels) break;
    }
    if (PumpOne(reg_)) continue;
    std::unique_lock<std::mutex> lock(rs->mu);
    rs->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return rs->morsels_done >= rs->num_morsels;
    });
    if (rs->morsels_done >= rs->num_morsels) break;
  }

  std::lock_guard<std::mutex> lock(rs->mu);
  return rs->error_morsel == SIZE_MAX ? Status::OK() : rs->error;
}

Status SharedScanManager::Scan(
    const void* id, size_t n, size_t grain,
    const std::function<Status(size_t, size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  size_t num_batches = (n + grain - 1) / grain;

  Key key{id, n, grain};
  std::shared_ptr<ScanState> scan;
  auto self = std::make_shared<Participant>();
  self->fn = fn;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(key);
    if (it != active_.end()) {
      std::lock_guard<std::mutex> sl(it->second->mu);
      // Attach only while batches remain unclaimed; a finished scan offers
      // nothing to share, so start a fresh one instead.
      if (it->second->next_batch < it->second->num_batches) {
        scan = it->second;
        self->first_batch = scan->next_batch;
        scan->parts.push_back(self);
        attaches_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (scan == nullptr) {
      scan = std::make_shared<ScanState>();
      scan->n = n;
      scan->grain = grain;
      scan->num_batches = num_batches;
      scan->held = hold_new_;
      scan->parts.push_back(self);
      active_[key] = scan;
      leader = true;
      leads_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // An attacher missed batches [0, first_batch) — the leader claimed them
  // before we existed. Catch up privately; these were scanned once already,
  // so they are the unshared part of the scan.
  for (size_t b = 0; b < self->first_batch; ++b) {
    size_t begin = b * grain;
    Status st = self->fn(b, begin, std::min(begin + grain, n));
    if (!st.ok()) {
      std::lock_guard<std::mutex> sl(scan->mu);
      if (b < self->error_batch) {
        self->error_batch = b;
        self->error = std::move(st);
      }
    }
  }

  if (leader) {
    // Test hook: park before the first claim so a test can deterministically
    // attach a second query. An attacher may run the whole scan (this
    // participant's callback included) and retire it while the leader is
    // parked — the release hook then cannot find the scan anymore, so the
    // completion notification must wake the leader too.
    std::unique_lock<std::mutex> sl(scan->mu);
    scan->cv.wait(sl, [&] {
      return !scan->held || scan->batches_done >= scan->num_batches;
    });
  }

  // Shared claim loop: claim a batch, snapshot the participant list, then
  // evaluate every eligible participant's callback against the hot batch.
  // Eligibility (first_batch <= b) keeps a late attacher from double-
  // evaluating a batch it also self-scans above.
  for (;;) {
    size_t b;
    std::vector<std::shared_ptr<Participant>> parts;
    {
      std::lock_guard<std::mutex> sl(scan->mu);
      if (scan->next_batch >= scan->num_batches) break;
      b = scan->next_batch++;
      parts = scan->parts;
    }
    size_t begin = b * grain;
    size_t end = std::min(begin + grain, n);
    size_t served = 0;
    for (auto& p : parts) {
      if (p->first_batch > b) continue;
      ++served;
      Status st = p->fn(b, begin, end);
      if (!st.ok()) {
        std::lock_guard<std::mutex> sl(scan->mu);
        if (b < p->error_batch) {
          p->error_batch = b;
          p->error = std::move(st);
        }
      }
    }
    if (served >= 2) shared_batches_.fetch_add(1, std::memory_order_relaxed);
    bool done;
    {
      std::lock_guard<std::mutex> sl(scan->mu);
      done = ++scan->batches_done == scan->num_batches;
      if (done) scan->cv.notify_all();
    }
    if (done) {
      // Last batch claimed and finished: retire the scan so the next query
      // over this payload starts a fresh (joinable) one.
      std::lock_guard<std::mutex> lock(mu_);
      auto it = active_.find(key);
      if (it != active_.end() && it->second == scan) active_.erase(it);
    }
  }

  // All batches claimed; wait for co-scanners still evaluating theirs. As
  // in MorselScheduler::Run, no arbitrary pool task runs here — this thread
  // holds an admission slot, and inlining another query's task under it can
  // deadlock the admission cap. Co-scanners finish their in-flight batch in
  // bounded time, so a short timed wait is all that is needed.
  for (;;) {
    {
      std::lock_guard<std::mutex> sl(scan->mu);
      if (scan->batches_done >= scan->num_batches) break;
    }
    std::unique_lock<std::mutex> sl(scan->mu);
    scan->cv.wait_for(sl, std::chrono::milliseconds(1), [&] {
      return scan->batches_done >= scan->num_batches;
    });
    if (scan->batches_done >= scan->num_batches) break;
  }

  std::lock_guard<std::mutex> sl(scan->mu);
  return self->error_batch == SIZE_MAX ? Status::OK() : self->error;
}

void SharedScanManager::HoldNewScansForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  hold_new_ = true;
}

void SharedScanManager::ReleaseHeldScansForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  hold_new_ = false;
  for (auto& kv : active_) {
    std::lock_guard<std::mutex> sl(kv.second->mu);
    kv.second->held = false;
    kv.second->cv.notify_all();
  }
}

}  // namespace mpq

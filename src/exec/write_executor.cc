#include "exec/write_executor.h"

#include <utility>
#include <vector>

#include "common/str_util.h"

namespace mpq {

namespace {

/// Conjunction of bound predicates over row `r`; NULL on either side never
/// satisfies a term (SQL three-valued logic collapsed to false).
bool RowMatches(const Table& table, size_t r,
                const std::vector<BoundWritePredicate>& where) {
  for (const BoundWritePredicate& p : where) {
    const ColumnData& lcol = table.col(static_cast<size_t>(p.col));
    if (lcol.IsNull(r)) return false;
    Value lhs = lcol.GetValue(r);
    Value rhs;
    if (p.rhs_is_column) {
      const ColumnData& rcol = table.col(static_cast<size_t>(p.rhs_col));
      if (rcol.IsNull(r)) return false;
      rhs = rcol.GetValue(r);
    } else {
      rhs = p.rhs;
    }
    if (lhs.is_null() || rhs.is_null()) return false;
    int c = lhs.Compare(rhs);
    bool pass = false;
    switch (p.op) {
      case CmpOp::kEq: pass = c == 0; break;
      case CmpOp::kNe: pass = c != 0; break;
      case CmpOp::kLt: pass = c < 0; break;
      case CmpOp::kLe: pass = c <= 0; break;
      case CmpOp::kGt: pass = c > 0; break;
      case CmpOp::kGe: pass = c >= 0; break;
    }
    if (!pass) return false;
  }
  return true;
}

/// Write statements evaluate predicates and store literals on plaintext
/// base columns; a store table with encrypted payloads in the touched
/// columns is out of scope for the write path.
Status CheckPlainColumn(const Table& table, int col, const char* what) {
  const ExecColumn& meta = table.columns()[static_cast<size_t>(col)];
  if (meta.encrypted) {
    return Status::Unsupported(StrFormat(
        "write %s over encrypted column '%s'", what, meta.name.c_str()));
  }
  return Status::OK();
}

}  // namespace

Status WriteExecutor::CheckAuthorized(const BoundWrite& write,
                                      SubjectId subject) const {
  AttrSet needed = write.written.Union(write.read);
  AttrSet plain = policy_->PlainView(subject);
  if (!needed.IsSubsetOf(plain)) {
    AttrSet missing = needed.Difference(plain);
    return Status::Unauthorized(StrFormat(
        "%s is not authorized to write: no plaintext visibility over [%s]",
        policy_->subjects().Name(subject).c_str(),
        missing.ToString(policy_->catalog().attrs()).c_str()));
  }
  return Status::OK();
}

Status WriteExecutor::Apply(const BoundWrite& write, Table* table,
                            uint64_t* rows_affected) const {
  for (const BoundWritePredicate& p : write.where) {
    MPQ_RETURN_NOT_OK(CheckPlainColumn(*table, p.col, "predicate"));
    if (p.rhs_is_column) {
      MPQ_RETURN_NOT_OK(CheckPlainColumn(*table, p.rhs_col, "predicate"));
    }
  }
  switch (write.kind) {
    case StatementKind::kInsert: {
      for (const std::vector<Value>& row : write.rows) {
        std::vector<Cell> cells;
        cells.reserve(row.size());
        for (const Value& v : row) cells.emplace_back(v);
        table->AddRow(std::move(cells));
      }
      *rows_affected = write.rows.size();
      return Status::OK();
    }
    case StatementKind::kUpdate: {
      for (const auto& [col, value] : write.sets) {
        (void)value;
        MPQ_RETURN_NOT_OK(CheckPlainColumn(*table, col, "assignment"));
      }
      std::vector<uint8_t> match(table->num_rows(), 0);
      uint64_t n = 0;
      for (size_t r = 0; r < table->num_rows(); ++r) {
        if (RowMatches(*table, r, write.where)) {
          match[r] = 1;
          ++n;
        }
      }
      for (const auto& [col, value] : write.sets) {
        const ColumnData& src = table->col(static_cast<size_t>(col));
        ColumnData next(src.rep());
        next.Reserve(table->num_rows());
        for (size_t r = 0; r < table->num_rows(); ++r) {
          if (match[r]) {
            next.AppendValue(value);
          } else {
            next.AppendFrom(src, r);
          }
        }
        table->SetColumnData(static_cast<size_t>(col), std::move(next));
      }
      *rows_affected = n;
      return Status::OK();
    }
    case StatementKind::kDelete: {
      SelectionVector keep;
      keep.reserve(table->num_rows());
      for (size_t r = 0; r < table->num_rows(); ++r) {
        if (!RowMatches(*table, r, write.where)) {
          keep.push_back(static_cast<uint32_t>(r));
        }
      }
      *rows_affected = table->num_rows() - keep.size();
      Table out;
      for (size_t i = 0; i < table->num_columns(); ++i) {
        ColumnData next(table->col(i).rep());
        next.Reserve(keep.size());
        next.AppendSelected(table->col(i), keep.data(), keep.size());
        out.AddColumn(table->columns()[i], std::move(next));
      }
      *table = std::move(out);
      return Status::OK();
    }
    case StatementKind::kSelect:
      break;
  }
  return Status::Internal("write executor got a non-write statement");
}

Result<WriteResult> WriteExecutor::Execute(const BoundWrite& write,
                                           SubjectId subject) {
  MPQ_RETURN_NOT_OK(CheckAuthorized(write, subject));
  if (write.kind == StatementKind::kUpdate) {
    for (const auto& [col, value] : write.sets) {
      (void)value;
      if (store_->MrvCoversColumn(write.rel, col)) {
        return Status::Unsupported(StrFormat(
            "column %d of relation %d is MRV-managed: update it through "
            "the counter API, not UPDATE",
            col, static_cast<int>(write.rel)));
      }
    }
  }
  uint64_t rows_affected = 0;
  MPQ_ASSIGN_OR_RETURN(
      uint64_t snapshot_id,
      store_->Mutate(write.rel, [&](Table* table) -> Status {
        return Apply(write, table, &rows_affected);
      }));
  return WriteResult{rows_affected, snapshot_id};
}

}  // namespace mpq

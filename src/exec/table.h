// In-memory tables with per-column encryption state, the data representation
// of the execution engine.

#ifndef MPQ_EXEC_TABLE_H_
#define MPQ_EXEC_TABLE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "crypto/enc_value.h"

namespace mpq {

/// A column of an executing relation. `encrypted` columns carry EncValue
/// cells under (`scheme`, `key_id`); `type` is always the plaintext type.
struct ExecColumn {
  AttrId attr = kInvalidAttr;
  std::string name;
  DataType type = DataType::kInt64;
  bool encrypted = false;
  EncScheme scheme = EncScheme::kRandom;
  uint64_t key_id = 0;
  /// True when the column holds a homomorphic average: a Paillier sum whose
  /// `aux` counter is the divisor to apply after decryption.
  bool hom_avg = false;
};

/// A half-open range of row indices [begin, end) of one table — the unit of
/// work batch-oriented operators hand to the thread pool. Batch boundaries
/// depend only on row count and batch size (never on thread count), so
/// per-batch results merged in batch order are deterministic.
struct RowBatch {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Row-major table.
class Table {
 public:
  /// Default number of rows per RowBatch; chosen so a batch of typical rows
  /// stays cache-resident while amortizing per-batch dispatch.
  static constexpr size_t kDefaultBatchSize = 1024;

  Table() = default;
  explicit Table(std::vector<ExecColumn> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ExecColumn>& columns() const { return columns_; }
  std::vector<ExecColumn>& columns() { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }

  /// Index of the column for `attr`, or -1.
  int ColIndex(AttrId attr) const;

  void AddRow(std::vector<Cell> row) { rows_.push_back(std::move(row)); }
  const std::vector<Cell>& row(size_t i) const { return rows_[i]; }
  std::vector<Cell>& row(size_t i) { return rows_[i]; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

  void ReserveRows(size_t n) { rows_.reserve(n); }

  /// Number of RowBatches of `batch_size` rows covering this table.
  size_t NumBatches(size_t batch_size = kDefaultBatchSize) const {
    if (batch_size == 0) batch_size = 1;
    return (rows_.size() + batch_size - 1) / batch_size;
  }

  /// The `i`-th batch (the last one may be short).
  RowBatch Batch(size_t i, size_t batch_size = kDefaultBatchSize) const {
    if (batch_size == 0) batch_size = 1;
    size_t begin = i * batch_size;
    size_t end = begin + batch_size;
    if (end > rows_.size()) end = rows_.size();
    if (begin > end) begin = end;
    return RowBatch{begin, end};
  }

  /// Total payload bytes (used for transfer accounting).
  uint64_t ByteSize() const;

  /// Pretty-prints up to `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<ExecColumn> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace mpq

#endif  // MPQ_EXEC_TABLE_H_

// In-memory tables with per-column encryption state, the data representation
// of the execution engine. Storage is columnar: each column's cells live in
// one contiguous typed ColumnData vector, so operators iterate
// column-at-a-time and whole columns move between tables without touching
// individual cells. The row-oriented helpers (AddRow / row) are a
// convenience layer for loaders and tests, not the execution path.

#ifndef MPQ_EXEC_TABLE_H_
#define MPQ_EXEC_TABLE_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "crypto/enc_value.h"
#include "exec/column.h"

namespace mpq {

/// A column of an executing relation. `encrypted` columns carry EncValue
/// cells under (`scheme`, `key_id`); `type` is always the plaintext type.
struct ExecColumn {
  AttrId attr = kInvalidAttr;
  std::string name;
  DataType type = DataType::kInt64;
  bool encrypted = false;
  EncScheme scheme = EncScheme::kRandom;
  uint64_t key_id = 0;
  /// True when the column holds a homomorphic average: a Paillier sum whose
  /// `aux` counter is the divisor to apply after decryption.
  bool hom_avg = false;
};

/// The physical rep a freshly created `col` column starts in.
ColumnRep RepForColumn(const ExecColumn& col);

/// A half-open range of row indices [begin, end) of one table — the unit of
/// work batch-oriented operators hand to the thread pool. Batch boundaries
/// depend only on row count and batch size (never on thread count), so
/// per-batch results merged in batch order are deterministic.
struct RowBatch {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Columnar table. Column payloads are shared_ptr-held with copy-on-write
/// mutation: copying a Table (the base-scan operator, plan-cache serving)
/// copies column *pointers*, never cell data — a whole-table copy of a
/// million-row relation is a dozen refcount increments. Mutation goes
/// through col_mut()/SetColumnData(), which clone a column only when it is
/// actually shared, so thread-confined intermediate tables pay nothing.
class Table {
 public:
  /// Default number of rows per RowBatch; chosen so a batch of typical rows
  /// stays cache-resident while amortizing per-batch dispatch.
  static constexpr size_t kDefaultBatchSize = 1024;

  Table() = default;
  explicit Table(std::vector<ExecColumn> columns);

  const std::vector<ExecColumn>& columns() const { return columns_; }
  std::vector<ExecColumn>& columns() { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Index of the column for `attr`, or -1.
  int ColIndex(AttrId attr) const;

  /// Column data, by column index (read-only).
  const ColumnData& col(size_t i) const { return *data_[i]; }

  /// Mutable column data: clones the column first when its buffers are
  /// shared with another table (copy-on-write).
  ColumnData& col_mut(size_t i) {
    if (data_[i].use_count() > 1) {
      data_[i] = std::make_shared<ColumnData>(*data_[i]);
    }
    return *data_[i];
  }

  /// The column's shared payload, for zero-copy moves between tables
  /// (project, udf passthrough). Safe to hand to a mutable table: mutation
  /// always goes through the copy-on-write accessors.
  std::shared_ptr<ColumnData> ShareCol(size_t i) const { return data_[i]; }

  /// Replaces column `i`'s data (e.g. with its encrypted form). The new
  /// data must cover every row. Other tables sharing the old payload are
  /// unaffected.
  void SetColumnData(size_t i, ColumnData d) {
    assert(d.size() == num_rows_);
    data_[i] = std::make_shared<ColumnData>(std::move(d));
  }

  /// Appends a column (metadata + data) to the table. Every column must
  /// cover the same number of rows; the first one fixes the row count of an
  /// empty table.
  void AddColumn(ExecColumn col, ColumnData d);

  /// AddColumn sharing an existing payload (no copy; copy-on-write applies
  /// to later mutation through either owner).
  void AddColumn(ExecColumn col, std::shared_ptr<ColumnData> d);

  /// Appends one row given cell-per-column; `row.size()` must equal
  /// `num_columns()`. Loader/test convenience — engine operators append
  /// column-at-a-time.
  void AddRow(std::vector<Cell> row);

  /// Materializes row `i` as cells (copy). Test/diagnostic convenience.
  std::vector<Cell> row(size_t i) const;

  /// Materializes the cell at (`r`, `c`).
  Cell at(size_t r, size_t c) const { return data_[c]->GetCell(r); }

  /// Appends row `r` of `src` (same column layout) column-wise.
  void AppendRowFrom(const Table& src, size_t r);

  void ReserveRows(size_t n);

  /// Number of RowBatches of `batch_size` rows covering this table.
  size_t NumBatches(size_t batch_size = kDefaultBatchSize) const {
    if (batch_size == 0) batch_size = 1;
    return (num_rows_ + batch_size - 1) / batch_size;
  }

  /// The `i`-th batch (the last one may be short). `i` must index a batch
  /// of this table (asserted): a begin past the row count is a caller bug,
  /// not a clampable input, though release builds still degrade to an empty
  /// batch rather than an out-of-range one.
  RowBatch Batch(size_t i, size_t batch_size = kDefaultBatchSize) const {
    if (batch_size == 0) batch_size = 1;
    size_t begin = i * batch_size;
    size_t end = begin + batch_size;
    if (end > num_rows_) end = num_rows_;
    assert((begin <= num_rows_ || num_rows_ == 0) &&
           "Batch(i): batch index out of range");
    if (begin > end) begin = end;
    return RowBatch{begin, end};
  }

  /// Total payload bytes (used for transfer accounting).
  uint64_t ByteSize() const;

  /// Column-at-a-time wire format of the whole table (schema + data), the
  /// unit a fragment result crosses the simulated network as.
  std::string SerializeColumns() const;

  /// Inverse of SerializeColumns.
  static Result<Table> DeserializeColumns(const std::string& bytes);

  /// Pretty-prints up to `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  // The segment codec (storage/segment.h) reconstructs degenerate
  // zero-column frames the same way DeserializeColumns does: by setting the
  // row count directly, since no column carries it.
  friend class SegmentReader;
  friend class SegmentedTable;

  std::vector<ExecColumn> columns_;
  std::vector<std::shared_ptr<ColumnData>> data_;
  size_t num_rows_ = 0;
};

}  // namespace mpq

#endif  // MPQ_EXEC_TABLE_H_

// Multi-Record Values: invariant-preserving parallel updates to contended
// numeric hotspots via randomized record splitting (Faria & Pereira,
// SIGMOD 2023). One logical int64 value is partitioned over N physical
// records; concurrent adds land on random records (commutative, no shared
// cache line beyond the chosen record), subs gather from a random starting
// record and walk as many records as needed, preserving the global
// invariant total >= 0 — a sub that cannot gather its amount rolls back and
// fails instead of driving the total negative. Two background steps keep
// the structure healthy: Balance() redistributes value so subs usually
// complete in one record, and AdjustStep() grows the record count under
// observed contention (CAS retries) and shrinks it when subs walk many
// records without contention.

#ifndef MPQ_EXEC_MRV_H_
#define MPQ_EXEC_MRV_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "common/status.h"

namespace mpq {

/// Point-in-time counter statistics (monotonic op counters).
struct MrvStats {
  uint64_t adds = 0;          ///< Successful Add calls.
  uint64_t subs = 0;          ///< Successful Sub calls.
  uint64_t sub_failures = 0;  ///< Subs rejected to preserve total >= 0.
  uint64_t cas_retries = 0;   ///< Lost CAS races (the contention signal).
  uint64_t sub_records = 0;   ///< Records visited across successful subs.
  uint64_t grows = 0;         ///< AdjustStep record-count increases.
  uint64_t shrinks = 0;       ///< AdjustStep record-count decreases.
};

/// One splittable counter. All methods are thread-safe; Add/Sub take only a
/// shared lock (no writer can be mid-resize) plus per-record atomics, so
/// concurrent updates to different records never serialize on one cache
/// line.
class MrvCounter {
 public:
  static constexpr size_t kMaxRecords = 64;

  /// Splits `initial` (>= 0) over `num_records` records (clamped to
  /// [1, kMaxRecords]). `seed` randomizes record choice deterministically
  /// per counter.
  MrvCounter(int64_t initial, size_t num_records, uint64_t seed);

  /// Adds `delta` >= 0 to one randomly chosen record. Wait-free apart from
  /// the shared resize lock.
  void Add(int64_t delta);

  /// Subtracts `delta` >= 0, gathering from records starting at a random
  /// offset. Fails with kInvalidArgument — and leaves the total unchanged —
  /// when the counter holds less than `delta` (invariant total >= 0).
  Status Sub(int64_t delta);

  /// Current total. Quiescently exact; under concurrent updates it is a
  /// linearization-point-free sum (each record read once).
  int64_t Total() const;

  /// Number of active records.
  size_t num_records() const {
    return active_.load(std::memory_order_acquire);
  }

  /// Redistributes the total evenly over the active records so subsequent
  /// subs complete in one record. Background-worker step; excludes
  /// concurrent Add/Sub for its (short) duration.
  void Balance();

  /// Grows the record count when CAS retries were observed since the last
  /// step, shrinks it when subs walked multiple records without any
  /// contention (value spread too thin). Returns true when the record count
  /// changed.
  bool AdjustStep();

  /// Forces the record count (clamped to [1, kMaxRecords]); deactivated
  /// records drain into record 0. Exposed for tests and sizing policies.
  void Resize(size_t n);

  MrvStats Stats() const;

 private:
  struct alignas(64) Record {
    std::atomic<int64_t> v{0};
  };

  uint64_t NextHint() const;

  /// Guards the active record count: Add/Sub/Total shared, Balance/Resize
  /// exclusive.
  mutable std::shared_mutex mu_;
  std::vector<Record> records_;  ///< fixed kMaxRecords slots
  std::atomic<size_t> active_{1};
  uint64_t seed_;  ///< mixed into the per-thread hint stream

  std::atomic<uint64_t> adds_{0};
  std::atomic<uint64_t> subs_{0};
  std::atomic<uint64_t> sub_failures_{0};
  std::atomic<uint64_t> cas_retries_{0};
  std::atomic<uint64_t> sub_records_{0};
  std::atomic<uint64_t> grows_{0};
  std::atomic<uint64_t> shrinks_{0};
  /// Stats watermarks of the previous AdjustStep.
  uint64_t last_retries_ = 0;
  uint64_t last_subs_ = 0;
  uint64_t last_sub_records_ = 0;
};

}  // namespace mpq

#endif  // MPQ_EXEC_MRV_H_

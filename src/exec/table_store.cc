#include "exec/table_store.h"

#include <chrono>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "common/str_util.h"

namespace mpq {

namespace {

/// Row of `table` whose plaintext int64 cell in `key_col` equals `key`, or
/// -1 when absent.
int64_t FindKeyRow(const Table& table, int key_col, int64_t key) {
  const ColumnData& col = table.col(static_cast<size_t>(key_col));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (col.IsNull(r)) continue;
    Value v = col.GetValue(r);
    if (v.is_int() && v.AsInt() == key) return static_cast<int64_t>(r);
  }
  return -1;
}

Status CheckPlainInt64Column(const Table& table, int col, const char* what) {
  if (col < 0 || static_cast<size_t>(col) >= table.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("mrv: %s column %d out of range", what, col));
  }
  const ExecColumn& meta = table.columns()[static_cast<size_t>(col)];
  if (meta.encrypted || meta.type != DataType::kInt64) {
    return Status::Unsupported(
        StrFormat("mrv: %s column '%s' must be a plaintext int64 column",
                  what, meta.name.c_str()));
  }
  return Status::OK();
}

}  // namespace

TableStore::~TableStore() { StopMaintenance(); }

uint64_t TableStore::PublishLocked(RelId rel,
                                   std::shared_ptr<const Table> table) {
  // Caller holds writer_mu_: the read-copy-update of `current_` is safe
  // because no other writer can publish concurrently.
  auto next = std::make_shared<Snapshot>();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    next->tables = current_->tables;
    next->cold = current_->cold;
  }
  next->id = epoch_.load(std::memory_order_relaxed) + 1;
  next->tables[rel] = std::move(table);
  // Writing a cold relation warms it: the new version is a plain table.
  next->cold.erase(rel);
  std::shared_ptr<const Snapshot> published = std::move(next);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    current_ = published;
  }
  epoch_.store(published->id, std::memory_order_release);
  return published->id;
}

uint64_t TableStore::Put(RelId rel, Table data) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return PublishLocked(rel, std::make_shared<const Table>(std::move(data)));
}

std::shared_ptr<const Snapshot> TableStore::Current() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return current_;
}

Result<uint64_t> TableStore::Mutate(
    RelId rel, const std::function<Status(Table*)>& mutate) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return MutateLocked(rel, mutate);
}

Result<uint64_t> TableStore::MutateLocked(
    RelId rel, const std::function<Status(Table*)>& mutate) {
  // Caller holds writer_mu_.
  std::shared_ptr<const Table> base;
  std::shared_ptr<const SegmentedTable> cold;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    auto it = current_->tables.find(rel);
    if (it != current_->tables.end()) {
      base = it->second;
    } else {
      auto c = current_->cold.find(rel);
      if (c != current_->cold.end()) cold = c->second;
    }
  }
  if (base == nullptr && cold == nullptr) {
    return Status::NotFound(
        StrFormat("table store holds no relation %d", static_cast<int>(rel)));
  }
  // The copy shares every column payload with the published snapshot;
  // mutation clones touched columns via col_mut, so the snapshot every
  // in-flight reader pinned stays bit-identical. A cold relation is
  // decoded first and warmed by the publish below.
  Table working = [&]() -> Table {
    if (base != nullptr) return *base;
    Result<const Table*> t = cold->Materialize();
    return t.ok() ? **t : Table();
  }();
  if (base == nullptr && working.num_columns() == 0 &&
      !cold->columns().empty()) {
    return Status::Internal(
        StrFormat("cold relation %d failed to decode", static_cast<int>(rel)));
  }
  MPQ_RETURN_NOT_OK(mutate(&working));
  return PublishLocked(rel,
                       std::make_shared<const Table>(std::move(working)));
}

Result<uint64_t> TableStore::MakeCold(RelId rel, size_t rows_per_segment) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const Table> base;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    auto it = current_->tables.find(rel);
    if (it != current_->tables.end()) base = it->second;
  }
  if (base == nullptr) {
    // Already cold is a no-op (idempotent); unknown is an error.
    std::lock_guard<std::mutex> state(state_mu_);
    if (current_->cold.count(rel) > 0) return current_->id;
    return Status::NotFound(
        StrFormat("table store holds no relation %d", static_cast<int>(rel)));
  }
  MPQ_ASSIGN_OR_RETURN(SegmentedTable seg,
                       SegmentedTable::FromTable(*base, rows_per_segment));
  auto next = std::make_shared<Snapshot>();
  {
    std::lock_guard<std::mutex> state(state_mu_);
    next->tables = current_->tables;
    next->cold = current_->cold;
  }
  next->id = epoch_.load(std::memory_order_relaxed) + 1;
  next->tables.erase(rel);
  next->cold[rel] = std::make_shared<const SegmentedTable>(std::move(seg));
  std::shared_ptr<const Snapshot> published = std::move(next);
  {
    std::lock_guard<std::mutex> lock2(state_mu_);
    current_ = published;
  }
  epoch_.store(published->id, std::memory_order_release);
  return published->id;
}

Status TableStore::MrvAttach(RelId rel, int key_col, int64_t key,
                             int value_col, size_t num_records) {
  // The writer lock spans reading the seed value and registering the
  // counter: without it a Mutate (or FlushCounters) committing between the
  // two would be lost — the counter would be seeded with the cell's stale
  // pre-commit value. Lock order writer_mu_ -> mrv_mu_ matches
  // FlushCounters.
  std::lock_guard<std::mutex> writer(writer_mu_);
  std::shared_ptr<const Snapshot> snap = Current();
  const Table* table = snap->Get(rel);
  if (table == nullptr) {
    return Status::NotFound(
        StrFormat("table store holds no relation %d", static_cast<int>(rel)));
  }
  MPQ_RETURN_NOT_OK(CheckPlainInt64Column(*table, key_col, "key"));
  MPQ_RETURN_NOT_OK(CheckPlainInt64Column(*table, value_col, "value"));
  int64_t row = FindKeyRow(*table, key_col, key);
  if (row < 0) {
    return Status::NotFound(
        StrFormat("mrv attach: no row with key %lld", (long long)key));
  }
  const ColumnData& vcol = table->col(static_cast<size_t>(value_col));
  if (vcol.IsNull(static_cast<size_t>(row))) {
    return Status::InvalidArgument("mrv attach: cell is NULL");
  }
  int64_t initial = vcol.GetValue(static_cast<size_t>(row)).AsInt();
  if (initial < 0) {
    return Status::InvalidArgument(
        "mrv attach: cell value must be >= 0 (invariant total >= 0)");
  }
  std::unique_lock<std::shared_mutex> lock(mrv_mu_);
  MrvKey k{rel, value_col, key};
  if (counters_.count(k) > 0) {
    return Status::AlreadyExists("mrv counter already attached");
  }
  MrvEntry entry;
  entry.key_col = key_col;
  uint64_t seed = SplitMix64(static_cast<uint64_t>(rel) * 0x100000001ull ^
                             static_cast<uint64_t>(value_col) << 32 ^
                             static_cast<uint64_t>(key));
  entry.counter =
      std::make_unique<MrvCounter>(initial, num_records, seed);
  counters_.emplace(k, std::move(entry));
  return Status::OK();
}

Result<MrvCounter*> TableStore::FindCounter(RelId rel, int value_col,
                                            int64_t key) const {
  // Caller holds mrv_mu_ (shared). The pointee is non-const on purpose:
  // MrvCounter updates are internally synchronized.
  auto it = counters_.find(MrvKey{rel, value_col, key});
  if (it == counters_.end()) {
    return Status::NotFound(
        StrFormat("no mrv counter for relation %d column %d key %lld",
                  static_cast<int>(rel), value_col, (long long)key));
  }
  return it->second.counter.get();
}

Status TableStore::MrvAdd(RelId rel, int value_col, int64_t key,
                          int64_t delta) {
  if (delta < 0) {
    return Status::InvalidArgument("mrv add: delta must be >= 0");
  }
  std::shared_lock<std::shared_mutex> lock(mrv_mu_);
  MPQ_ASSIGN_OR_RETURN(MrvCounter * c, FindCounter(rel, value_col, key));
  c->Add(delta);
  return Status::OK();
}

Status TableStore::MrvSub(RelId rel, int value_col, int64_t key,
                          int64_t delta) {
  if (delta < 0) {
    return Status::InvalidArgument("mrv sub: delta must be >= 0");
  }
  std::shared_lock<std::shared_mutex> lock(mrv_mu_);
  MPQ_ASSIGN_OR_RETURN(MrvCounter * c, FindCounter(rel, value_col, key));
  return c->Sub(delta);
}

Result<int64_t> TableStore::MrvTotal(RelId rel, int value_col,
                                     int64_t key) const {
  std::shared_lock<std::shared_mutex> lock(mrv_mu_);
  MPQ_ASSIGN_OR_RETURN(MrvCounter * c, FindCounter(rel, value_col, key));
  return c->Total();
}

Result<MrvStats> TableStore::MrvStatsFor(RelId rel, int value_col,
                                         int64_t key) const {
  std::shared_lock<std::shared_mutex> lock(mrv_mu_);
  MPQ_ASSIGN_OR_RETURN(MrvCounter * c, FindCounter(rel, value_col, key));
  return c->Stats();
}

bool TableStore::MrvCoversColumn(RelId rel, int col) const {
  std::shared_lock<std::shared_mutex> lock(mrv_mu_);
  auto it = counters_.lower_bound(
      MrvKey{rel, col, std::numeric_limits<int64_t>::min()});
  return it != counters_.end() && std::get<0>(it->first) == rel &&
         std::get<1>(it->first) == col;
}

Status TableStore::FlushCounters() {
  // One writer critical section covers reading every counter's total and
  // publishing the folded cells. Taking totals outside it (as this used
  // to) let two concurrent flushes interleave — the slower one would
  // overwrite a fresher fold with its staler total, un-publishing updates
  // that had already been made visible. Counters keep absorbing updates
  // during the fold: the flushed value is the total at fold time, later
  // updates land in the next flush.
  std::lock_guard<std::mutex> writer(writer_mu_);
  struct Fold {
    RelId rel;
    int key_col;
    int value_col;
    int64_t key;
    int64_t total;
  };
  std::vector<Fold> folds;
  {
    std::shared_lock<std::shared_mutex> lock(mrv_mu_);
    folds.reserve(counters_.size());
    for (const auto& [k, entry] : counters_) {
      folds.push_back(Fold{std::get<0>(k), entry.key_col, std::get<1>(k),
                           std::get<2>(k), entry.counter->Total()});
    }
  }
  for (const Fold& f : folds) {
    Result<uint64_t> r = MutateLocked(f.rel, [&f](Table* table) -> Status {
      int64_t row = FindKeyRow(*table, f.key_col, f.key);
      if (row < 0) return Status::OK();  // key row deleted: skip
      ColumnData& col = table->col_mut(static_cast<size_t>(f.value_col));
      ColumnData next(col.rep());
      next.Reserve(table->num_rows());
      for (size_t r2 = 0; r2 < table->num_rows(); ++r2) {
        if (static_cast<int64_t>(r2) == row) {
          next.AppendValue(Value(f.total));
        } else {
          next.AppendFrom(col, r2);
        }
      }
      table->SetColumnData(static_cast<size_t>(f.value_col),
                           std::move(next));
      return Status::OK();
    });
    MPQ_RETURN_NOT_OK(r.status());
  }
  return Status::OK();
}

void TableStore::MaintainCounters() {
  std::shared_lock<std::shared_mutex> lock(mrv_mu_);
  for (auto& [k, entry] : counters_) {
    (void)k;
    entry.counter->AdjustStep();
    entry.counter->Balance();
  }
}

void TableStore::StartMaintenance(int64_t period_ms) {
  std::lock_guard<std::mutex> lock(maint_mu_);
  if (maint_thread_.joinable()) return;
  maint_stop_ = false;
  maint_thread_ = std::thread([this, period_ms] {
    std::unique_lock<std::mutex> lock(maint_mu_);
    while (!maint_stop_) {
      if (maint_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                             [this] { return maint_stop_; })) {
        break;
      }
      lock.unlock();
      MaintainCounters();
      lock.lock();
    }
  });
}

void TableStore::StopMaintenance() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    if (!maint_thread_.joinable()) return;
    maint_stop_ = true;
    maint_cv_.notify_all();
    t = std::move(maint_thread_);
  }
  t.join();
}

}  // namespace mpq

// Predicate and aggregate model for the paper's operator algebra.
//
// Conditions are conjunctions of basic predicates of the two shapes the paper
// distinguishes (Sec 3.1):
//   `a op value`  — contributes `a` to the implicit attributes of a result;
//   `a op b`      — contributes {a, b} to the equivalence closure R≃.

#ifndef MPQ_ALGEBRA_EXPR_H_
#define MPQ_ALGEBRA_EXPR_H_

#include <string>
#include <vector>

#include "common/attr.h"
#include "common/attr_set.h"
#include "common/value.h"

namespace mpq {

/// Comparison operators of basic predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// True for =, false for <, <=, >, >=, <> (range-like for crypto purposes:
/// every non-equality comparison needs order information).
bool IsEquality(CmpOp op);

/// Evaluates `a op b` on plaintext values.
bool EvalCmp(CmpOp op, const Value& a, const Value& b);

/// A basic predicate: `lhs op rhs` where rhs is a constant or an attribute.
struct Predicate {
  AttrId lhs = kInvalidAttr;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_attr = false;
  AttrId rhs_attr = kInvalidAttr;
  Value rhs_value;

  /// Builds `a op value`.
  static Predicate AttrValue(AttrId a, CmpOp op, Value v);
  /// Builds `a op b`.
  static Predicate AttrAttr(AttrId a, CmpOp op, AttrId b);

  /// All attributes mentioned by the predicate.
  AttrSet Attrs() const;

  std::string ToString(const AttrRegistry& reg) const;
};

/// Aggregate functions supported by γ.
enum class AggFunc { kSum, kAvg, kMin, kMax, kCount, kCountStar };

const char* AggFuncName(AggFunc f);

/// One aggregate term f(a). Following the paper, the output column keeps the
/// name of `attr` (kCountStar has no input attribute and yields a synthetic
/// column that must be named via `out_attr`).
struct Aggregate {
  AggFunc func = AggFunc::kSum;
  AttrId attr = kInvalidAttr;      ///< Input attribute (invalid for count(*)).
  AttrId out_attr = kInvalidAttr;  ///< Output attribute id.

  static Aggregate Make(AggFunc f, AttrId a) { return {f, a, a}; }
  static Aggregate CountStar(AttrId out) {
    return {AggFunc::kCountStar, kInvalidAttr, out};
  }

  std::string ToString(const AttrRegistry& reg) const;
};

/// Attributes referenced by a conjunction of predicates.
AttrSet PredicatesAttrs(const std::vector<Predicate>& preds);

/// Renders a conjunction as "p1 AND p2 AND ...".
std::string PredicatesToString(const std::vector<Predicate>& preds,
                               const AttrRegistry& reg);

}  // namespace mpq

#endif  // MPQ_ALGEBRA_EXPR_H_

// Fluent construction helpers for query plan trees.

#ifndef MPQ_ALGEBRA_PLAN_BUILDER_H_
#define MPQ_ALGEBRA_PLAN_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"

namespace mpq {

/// Free-function builders. These only assemble the tree; call ValidatePlan
/// (and AssignIds / AnnotatePlan) once the full plan is built.
PlanPtr Base(RelId rel);
PlanPtr Project(PlanPtr child, AttrSet attrs);
PlanPtr Select(PlanPtr child, std::vector<Predicate> predicates);
PlanPtr Cartesian(PlanPtr left, PlanPtr right);
PlanPtr Join(PlanPtr left, PlanPtr right, std::vector<Predicate> predicates);
PlanPtr GroupBy(PlanPtr child, AttrSet group_by, std::vector<Aggregate> aggs);
PlanPtr Udf(PlanPtr child, std::string name, AttrSet inputs, AttrId output);
PlanPtr Encrypt(PlanPtr child, AttrSet attrs);
PlanPtr Decrypt(PlanPtr child, AttrSet attrs);

/// Convenience wrapper owning a catalog reference for name-based building;
/// used heavily by tests and the TPC-H query definitions.
class PlanBuilder {
 public:
  explicit PlanBuilder(const Catalog* catalog) : catalog_(catalog) {}

  /// Leaf over the named relation. Aborts on unknown names (builder misuse is
  /// a programming error, not an input error).
  PlanPtr Rel(const std::string& name) const;

  /// Interned id of `attr_name` (must exist).
  AttrId A(const std::string& attr_name) const;

  /// AttrSet from comma-separated names ("S,D,T").
  AttrSet Set(const std::string& csv) const;

  /// Predicate `attr op value`.
  Predicate Pv(const std::string& attr, CmpOp op, Value v) const;

  /// Predicate `attr op attr`.
  Predicate Pa(const std::string& lhs, CmpOp op, const std::string& rhs) const;

  const Catalog& catalog() const { return *catalog_; }

 private:
  const Catalog* catalog_;
};

/// Finalizes a plan: assigns ids and validates. Returns the validated plan.
Result<PlanPtr> FinishPlan(PlanPtr root, const Catalog& catalog);

}  // namespace mpq

#endif  // MPQ_ALGEBRA_PLAN_BUILDER_H_

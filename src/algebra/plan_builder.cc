#include "algebra/plan_builder.h"

#include <cassert>
#include <cstdlib>

#include "common/str_util.h"

namespace mpq {

PlanPtr Base(RelId rel) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kBase;
  n->rel = rel;
  return n;
}

PlanPtr Project(PlanPtr child, AttrSet attrs) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kProject;
  n->attrs = std::move(attrs);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr Select(PlanPtr child, std::vector<Predicate> predicates) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kSelect;
  n->predicates = std::move(predicates);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr Cartesian(PlanPtr left, PlanPtr right) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kCartesian;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanPtr Join(PlanPtr left, PlanPtr right, std::vector<Predicate> predicates) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kJoin;
  n->predicates = std::move(predicates);
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanPtr GroupBy(PlanPtr child, AttrSet group_by, std::vector<Aggregate> aggs) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kGroupBy;
  n->group_by = std::move(group_by);
  n->aggregates = std::move(aggs);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr Udf(PlanPtr child, std::string name, AttrSet inputs, AttrId output) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kUdf;
  n->udf_name = std::move(name);
  n->udf_inputs = std::move(inputs);
  n->udf_output = output;
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr Encrypt(PlanPtr child, AttrSet attrs) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kEncrypt;
  n->attrs = std::move(attrs);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr Decrypt(PlanPtr child, AttrSet attrs) {
  auto n = std::make_unique<PlanNode>();
  n->kind = OpKind::kDecrypt;
  n->attrs = std::move(attrs);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr PlanBuilder::Rel(const std::string& name) const {
  RelId id = catalog_->FindRelation(name);
  assert(id != kInvalidRel && "unknown relation in PlanBuilder::Rel");
  return Base(id);
}

AttrId PlanBuilder::A(const std::string& attr_name) const {
  AttrId id = catalog_->attrs().Find(attr_name);
  assert(id != kInvalidAttr && "unknown attribute in PlanBuilder::A");
  return id;
}

AttrSet PlanBuilder::Set(const std::string& csv) const {
  AttrSet out;
  for (const std::string& part : Split(csv, ',')) {
    std::string name = Trim(part);
    if (!name.empty()) out.Insert(A(name));
  }
  return out;
}

Predicate PlanBuilder::Pv(const std::string& attr, CmpOp op, Value v) const {
  return Predicate::AttrValue(A(attr), op, std::move(v));
}

Predicate PlanBuilder::Pa(const std::string& lhs, CmpOp op,
                          const std::string& rhs) const {
  return Predicate::AttrAttr(A(lhs), op, A(rhs));
}

Result<PlanPtr> FinishPlan(PlanPtr root, const Catalog& catalog) {
  AssignIds(root.get());
  MPQ_RETURN_NOT_OK(ValidatePlan(root.get(), catalog));
  return root;
}

}  // namespace mpq

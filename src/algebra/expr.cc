#include "algebra/expr.h"

namespace mpq {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool IsEquality(CmpOp op) { return op == CmpOp::kEq; }

bool EvalCmp(CmpOp op, const Value& a, const Value& b) {
  int c = a.Compare(b);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

Predicate Predicate::AttrValue(AttrId a, CmpOp op, Value v) {
  Predicate p;
  p.lhs = a;
  p.op = op;
  p.rhs_is_attr = false;
  p.rhs_value = std::move(v);
  return p;
}

Predicate Predicate::AttrAttr(AttrId a, CmpOp op, AttrId b) {
  Predicate p;
  p.lhs = a;
  p.op = op;
  p.rhs_is_attr = true;
  p.rhs_attr = b;
  return p;
}

AttrSet Predicate::Attrs() const {
  AttrSet out;
  out.Insert(lhs);
  if (rhs_is_attr) out.Insert(rhs_attr);
  return out;
}

std::string Predicate::ToString(const AttrRegistry& reg) const {
  std::string out = reg.Name(lhs);
  out += CmpOpName(op);
  out += rhs_is_attr ? reg.Name(rhs_attr) : rhs_value.ToString();
  return out;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kCountStar:
      return "count(*)";
  }
  return "?";
}

std::string Aggregate::ToString(const AttrRegistry& reg) const {
  if (func == AggFunc::kCountStar) return "count(*)";
  std::string out = AggFuncName(func);
  out += "(";
  out += reg.Name(attr);
  out += ")";
  return out;
}

AttrSet PredicatesAttrs(const std::vector<Predicate>& preds) {
  AttrSet out;
  for (const Predicate& p : preds) out.InsertAll(p.Attrs());
  return out;
}

std::string PredicatesToString(const std::vector<Predicate>& preds,
                               const AttrRegistry& reg) {
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out += " AND ";
    out += preds[i].ToString(reg);
  }
  return out;
}

}  // namespace mpq

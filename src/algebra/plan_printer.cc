#include "algebra/plan_printer.h"

#include "common/str_util.h"

namespace mpq {

std::string NodeLabel(const PlanNode* node, const Catalog& catalog) {
  const AttrRegistry& reg = catalog.attrs();
  switch (node->kind) {
    case OpKind::kBase:
      return catalog.Get(node->rel).name;
    case OpKind::kProject:
      return "π " + node->attrs.ToString(reg);
    case OpKind::kSelect:
      return "σ " + PredicatesToString(node->predicates, reg);
    case OpKind::kCartesian:
      return "×";
    case OpKind::kJoin:
      return "⋈ " + PredicatesToString(node->predicates, reg);
    case OpKind::kGroupBy: {
      std::string out = "γ " + node->group_by.ToString(reg);
      for (const Aggregate& a : node->aggregates) {
        out += ",";
        out += a.ToString(reg);
      }
      return out;
    }
    case OpKind::kUdf:
      return "µ " + node->udf_name + "(" + node->udf_inputs.ToString(reg) +
             ")→" + reg.Name(node->udf_output);
    case OpKind::kEncrypt:
      return "ENC " + node->attrs.ToString(reg);
    case OpKind::kDecrypt:
      return "DEC " + node->attrs.ToString(reg);
  }
  return "?";
}

namespace {

void PrintRec(const PlanNode* node, const Catalog& catalog,
              const PrintOptions& opts, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (opts.show_ids) {
    out->append("[");
    out->append(std::to_string(node->id));
    out->append("] ");
  }
  out->append(NodeLabel(node, catalog));
  if (opts.assignment != nullptr && opts.subjects != nullptr) {
    auto it = opts.assignment->find(node->id);
    if (it != opts.assignment->end()) {
      out->append("  @");
      out->append(opts.subjects->Name(it->second));
    }
  }
  if (opts.annotate) {
    std::string extra = opts.annotate(node);
    if (!extra.empty()) {
      out->append("  ");
      out->append(extra);
    }
  }
  if (opts.show_profiles) {
    out->append("   {");
    out->append(node->profile.ToString(catalog.attrs()));
    out->append("}");
  }
  out->append("\n");
  for (const auto& c : node->children) {
    PrintRec(c.get(), catalog, opts, depth + 1, out);
  }
}

void DotRec(const PlanNode* node, const Catalog& catalog,
            const PrintOptions& opts, std::string* out) {
  std::string label = NodeLabel(node, catalog);
  if (opts.show_profiles) {
    label += "\\n";
    label += node->profile.ToString(catalog.attrs());
  }
  if (opts.assignment != nullptr && opts.subjects != nullptr) {
    auto it = opts.assignment->find(node->id);
    if (it != opts.assignment->end()) {
      label += "\\n@" + opts.subjects->Name(it->second);
    }
  }
  out->append(StrFormat("  n%d [label=\"%s\"%s];\n", node->id, label.c_str(),
                        node->kind == OpKind::kEncrypt ||
                                node->kind == OpKind::kDecrypt
                            ? ", style=filled, fillcolor=lightgray"
                            : ""));
  for (const auto& c : node->children) {
    out->append(StrFormat("  n%d -> n%d;\n", node->id, c->id));
    DotRec(c.get(), catalog, opts, out);
  }
}

}  // namespace

std::string PrintPlan(const PlanNode* root, const Catalog& catalog,
                      const PrintOptions& opts) {
  std::string out;
  PrintRec(root, catalog, opts, 0, &out);
  return out;
}

std::string PlanToDot(const PlanNode* root, const Catalog& catalog,
                      const PrintOptions& opts) {
  std::string out = "digraph plan {\n  node [shape=box];\n";
  DotRec(root, catalog, opts, &out);
  out += "}\n";
  return out;
}

}  // namespace mpq

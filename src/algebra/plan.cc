#include "algebra/plan.h"

#include "common/str_util.h"

namespace mpq {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kBase:
      return "base";
    case OpKind::kProject:
      return "project";
    case OpKind::kSelect:
      return "select";
    case OpKind::kCartesian:
      return "cartesian";
    case OpKind::kJoin:
      return "join";
    case OpKind::kGroupBy:
      return "groupby";
    case OpKind::kUdf:
      return "udf";
    case OpKind::kEncrypt:
      return "encrypt";
    case OpKind::kDecrypt:
      return "decrypt";
  }
  return "?";
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto out = std::make_unique<PlanNode>();
  out->kind = kind;
  out->id = id;
  out->rel = rel;
  out->attrs = attrs;
  out->predicates = predicates;
  out->group_by = group_by;
  out->aggregates = aggregates;
  out->udf_inputs = udf_inputs;
  out->udf_output = udf_output;
  out->udf_name = udf_name;
  out->needs_plaintext = needs_plaintext;
  out->profile = profile;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

namespace {

void AssignIdsRec(PlanNode* node, int* next) {
  node->id = (*next)++;
  for (auto& c : node->children) AssignIdsRec(c.get(), next);
}

template <typename NodeT>
void PostOrderRec(NodeT* node, std::vector<NodeT*>* out) {
  for (const auto& c : node->children) PostOrderRec<NodeT>(c.get(), out);
  out->push_back(node);
}

}  // namespace

int AssignIds(PlanNode* root) {
  int next = 0;
  AssignIdsRec(root, &next);
  return next;
}

std::vector<PlanNode*> PostOrder(PlanNode* root) {
  std::vector<PlanNode*> out;
  PostOrderRec(root, &out);
  return out;
}

std::vector<const PlanNode*> PostOrder(const PlanNode* root) {
  std::vector<const PlanNode*> out;
  PostOrderRec(root, &out);
  return out;
}

PlanNode* FindNode(PlanNode* root, int id) {
  if (root->id == id) return root;
  for (auto& c : root->children) {
    if (PlanNode* found = FindNode(c.get(), id)) return found;
  }
  return nullptr;
}

AttrSet VisibleAttrs(const PlanNode* node, const Catalog& catalog) {
  switch (node->kind) {
    case OpKind::kBase:
      return catalog.Get(node->rel).schema.Attrs();
    case OpKind::kProject:
      return node->attrs;
    case OpKind::kSelect:
    case OpKind::kEncrypt:
    case OpKind::kDecrypt:
      return VisibleAttrs(node->child(0), catalog);
    case OpKind::kCartesian:
    case OpKind::kJoin: {
      AttrSet out = VisibleAttrs(node->child(0), catalog);
      out.InsertAll(VisibleAttrs(node->child(1), catalog));
      return out;
    }
    case OpKind::kGroupBy: {
      AttrSet out = node->group_by;
      for (const Aggregate& agg : node->aggregates) out.Insert(agg.out_attr);
      return out;
    }
    case OpKind::kUdf: {
      AttrSet out = VisibleAttrs(node->child(0), catalog);
      out.EraseAll(node->udf_inputs);
      out.Insert(node->udf_output);
      return out;
    }
  }
  return {};
}

namespace {

Status CheckArity(const PlanNode* n, size_t want) {
  if (n->num_children() != want) {
    return Status::InvalidArgument(
        StrFormat("%s node %d: expected %zu children, got %zu",
                  OpKindName(n->kind), n->id, want, n->num_children()));
  }
  return Status::OK();
}

Status CheckVisible(const PlanNode* n, const AttrSet& needed,
                    const AttrSet& visible, const AttrRegistry& reg,
                    const char* what) {
  if (!needed.IsSubsetOf(visible)) {
    AttrSet missing = needed.Difference(visible);
    return Status::InvalidArgument(
        StrFormat("%s node %d: %s references attributes [%s] not visible in "
                  "operand schema",
                  OpKindName(n->kind), n->id, what,
                  missing.ToString(reg).c_str()));
  }
  return Status::OK();
}

Status ValidateRec(const PlanNode* n, const Catalog& catalog) {
  const AttrRegistry& reg = catalog.attrs();
  for (const auto& c : n->children) {
    MPQ_RETURN_NOT_OK(ValidateRec(c.get(), catalog));
  }
  switch (n->kind) {
    case OpKind::kBase: {
      MPQ_RETURN_NOT_OK(CheckArity(n, 0));
      if (n->rel == kInvalidRel || n->rel >= catalog.num_relations()) {
        return Status::InvalidArgument(
            StrFormat("base node %d: invalid relation id", n->id));
      }
      return Status::OK();
    }
    case OpKind::kProject: {
      MPQ_RETURN_NOT_OK(CheckArity(n, 1));
      if (n->attrs.empty()) {
        return Status::InvalidArgument(
            StrFormat("project node %d: empty projection", n->id));
      }
      return CheckVisible(n, n->attrs, VisibleAttrs(n->child(0), catalog), reg,
                          "projection");
    }
    case OpKind::kSelect: {
      MPQ_RETURN_NOT_OK(CheckArity(n, 1));
      if (n->predicates.empty()) {
        return Status::InvalidArgument(
            StrFormat("select node %d: empty condition", n->id));
      }
      return CheckVisible(n, PredicatesAttrs(n->predicates),
                          VisibleAttrs(n->child(0), catalog), reg, "condition");
    }
    case OpKind::kCartesian:
      return CheckArity(n, 2);
    case OpKind::kJoin: {
      MPQ_RETURN_NOT_OK(CheckArity(n, 2));
      if (n->predicates.empty()) {
        return Status::InvalidArgument(
            StrFormat("join node %d: empty join condition", n->id));
      }
      AttrSet both = VisibleAttrs(n->child(0), catalog);
      both.InsertAll(VisibleAttrs(n->child(1), catalog));
      for (const Predicate& p : n->predicates) {
        if (!p.rhs_is_attr) {
          return Status::InvalidArgument(StrFormat(
              "join node %d: join condition must compare attributes", n->id));
        }
      }
      return CheckVisible(n, PredicatesAttrs(n->predicates), both, reg,
                          "join condition");
    }
    case OpKind::kGroupBy: {
      MPQ_RETURN_NOT_OK(CheckArity(n, 1));
      if (n->aggregates.empty() && n->group_by.empty()) {
        return Status::InvalidArgument(
            StrFormat("groupby node %d: no grouping and no aggregates", n->id));
      }
      AttrSet needed = n->group_by;
      for (const Aggregate& a : n->aggregates) {
        if (a.func != AggFunc::kCountStar) needed.Insert(a.attr);
      }
      return CheckVisible(n, needed, VisibleAttrs(n->child(0), catalog), reg,
                          "grouping/aggregates");
    }
    case OpKind::kUdf: {
      MPQ_RETURN_NOT_OK(CheckArity(n, 1));
      if (n->udf_inputs.empty() || n->udf_output == kInvalidAttr) {
        return Status::InvalidArgument(
            StrFormat("udf node %d: missing inputs or output", n->id));
      }
      if (!n->udf_inputs.Contains(n->udf_output)) {
        return Status::InvalidArgument(StrFormat(
            "udf node %d: output attribute must be one of the inputs", n->id));
      }
      return CheckVisible(n, n->udf_inputs, VisibleAttrs(n->child(0), catalog),
                          reg, "udf inputs");
    }
    case OpKind::kEncrypt:
    case OpKind::kDecrypt: {
      MPQ_RETURN_NOT_OK(CheckArity(n, 1));
      if (n->attrs.empty()) {
        return Status::InvalidArgument(StrFormat(
            "%s node %d: empty attribute set", OpKindName(n->kind), n->id));
      }
      return CheckVisible(n, n->attrs, VisibleAttrs(n->child(0), catalog), reg,
                          "crypto attribute set");
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status ValidatePlan(const PlanNode* root, const Catalog& catalog) {
  return ValidateRec(root, catalog);
}

int CountNodes(const PlanNode* root) {
  int n = 1;
  for (const auto& c : root->children) n += CountNodes(c.get());
  return n;
}

}  // namespace mpq

// Query plan trees in the paper's operator algebra.
//
// A plan is a tree T(N) whose leaves are base relations and whose internal
// nodes are operations: π, σ, ×, ⋈, γ, udf (µ), plus the encryption and
// decryption operators that extended plans (Def 5.1) inject on-the-fly.

#ifndef MPQ_ALGEBRA_PLAN_H_
#define MPQ_ALGEBRA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "common/attr_set.h"
#include "common/status.h"
#include "profile/profile.h"

namespace mpq {

/// Operator kinds.
enum class OpKind {
  kBase,       ///< Leaf: a base relation held by its data authority.
  kProject,    ///< π_A
  kSelect,     ///< σ_cond (conjunction of basic predicates)
  kCartesian,  ///< ×
  kJoin,       ///< ⋈_cond
  kGroupBy,    ///< γ_{A, f(a), ...}
  kUdf,        ///< µ_{A, a}
  kEncrypt,    ///< on-the-fly encryption of a set of attributes
  kDecrypt,    ///< on-the-fly decryption of a set of attributes
};

/// Number of OpKind enumerators (kBase..kDecrypt), for dense per-kind
/// counter arrays. The static_assert below keeps it tied to the enum:
/// extend it when adding a kind.
inline constexpr size_t kNumOpKinds = 9;
static_assert(kNumOpKinds == static_cast<size_t>(OpKind::kDecrypt) + 1,
              "kNumOpKinds must cover every OpKind enumerator");

const char* OpKindName(OpKind k);

/// A node of a query plan. Field usage depends on `kind`; unused fields stay
/// default-initialized. Nodes own their children.
struct PlanNode {
  OpKind kind = OpKind::kBase;
  int id = -1;  ///< Stable pre-order id, assigned by AssignIds().
  std::vector<std::unique_ptr<PlanNode>> children;

  // kBase
  RelId rel = kInvalidRel;

  // kProject, kEncrypt, kDecrypt: the attribute set operated on.
  AttrSet attrs;

  // kSelect, kJoin: conjunction of basic predicates.
  std::vector<Predicate> predicates;

  // kGroupBy
  AttrSet group_by;
  std::vector<Aggregate> aggregates;

  // kUdf
  AttrSet udf_inputs;
  AttrId udf_output = kInvalidAttr;
  std::string udf_name;

  /// Operation requirement Ap (Sec 5): attributes of the operands that this
  /// operation must see in plaintext. Derived by the optimizer from the
  /// available encryption schemes (see DerivePlaintextNeeds) or set manually.
  AttrSet needs_plaintext;

  /// Profile of the relation produced by this node (Def 3.1), filled in by
  /// profile::AnnotatePlan. Leaf nodes carry the base-relation profile.
  RelationProfile profile;

  PlanNode* child(size_t i) const { return children[i].get(); }
  size_t num_children() const { return children.size(); }
  bool is_leaf() const { return children.empty(); }

  /// Deep copy (ids, needs_plaintext and profiles included).
  std::unique_ptr<PlanNode> Clone() const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Assigns stable ids in pre-order (root == 0). Returns the node count.
int AssignIds(PlanNode* root);

/// Collects nodes in post-order (children before parents).
std::vector<PlanNode*> PostOrder(PlanNode* root);
std::vector<const PlanNode*> PostOrder(const PlanNode* root);

/// Finds a node by id (nullptr when absent).
PlanNode* FindNode(PlanNode* root, int id);

/// Visible schema attributes of the relation produced by `node`, derived
/// structurally (independent of profile annotation):
///   base → schema; π → attrs; σ/encrypt/decrypt → child;
///   ×/⋈ → union of children; γ → group_by ∪ aggregate outputs;
///   µ → (child \ inputs) ∪ {output}.
AttrSet VisibleAttrs(const PlanNode* node, const Catalog& catalog);

/// Structural validation: arity, predicate/projection attributes visible in
/// operand schemas, udf output drawn from inputs, encrypt/decrypt sets
/// visible. Returns the first violation found.
Status ValidatePlan(const PlanNode* root, const Catalog& catalog);

/// Number of nodes in the tree.
int CountNodes(const PlanNode* root);

}  // namespace mpq

#endif  // MPQ_ALGEBRA_PLAN_H_

// ASCII and Graphviz renderings of (annotated) query plans.

#ifndef MPQ_ALGEBRA_PLAN_PRINTER_H_
#define MPQ_ALGEBRA_PLAN_PRINTER_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "algebra/plan.h"
#include "authz/subject.h"

namespace mpq {

/// Rendering options.
struct PrintOptions {
  bool show_profiles = false;   ///< Append each node's profile tag.
  bool show_ids = true;         ///< Prefix nodes with their id.
  /// Optional assignment λ to display next to each node (node id → subject).
  const std::unordered_map<int, SubjectId>* assignment = nullptr;
  const SubjectRegistry* subjects = nullptr;
  /// Optional per-node suffix (observed rows/bytes/time, calibration…),
  /// appended after the assignment tag. Empty results print nothing; the
  /// EXPLAIN ANALYZE renderer (obs/explain.h) drives this hook.
  std::function<std::string(const PlanNode*)> annotate;
};

/// One-line description of a node's operator ("σ D='stroke'", "⋈ S=C", ...).
std::string NodeLabel(const PlanNode* node, const Catalog& catalog);

/// Indented multi-line tree rendering.
std::string PrintPlan(const PlanNode* root, const Catalog& catalog,
                      const PrintOptions& opts = {});

/// Graphviz dot rendering.
std::string PlanToDot(const PlanNode* root, const Catalog& catalog,
                      const PrintOptions& opts = {});

}  // namespace mpq

#endif  // MPQ_ALGEBRA_PLAN_PRINTER_H_

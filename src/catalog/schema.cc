#include "catalog/schema.h"

#include <cassert>

namespace mpq {

int Schema::IndexOf(AttrId attr) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].attr == attr) return static_cast<int>(i);
  }
  return -1;
}

AttrSet Schema::Attrs() const {
  AttrSet out;
  for (const Column& c : columns_) out.Insert(c.attr);
  return out;
}

const Column& Schema::ColumnFor(AttrId attr) const {
  int idx = IndexOf(attr);
  assert(idx >= 0);
  return columns_[static_cast<size_t>(idx)];
}

double Schema::AvgTupleBytes() const {
  double bytes = 0;
  for (const Column& c : columns_) {
    bytes += (c.type == DataType::kString) ? 16.0 : 8.0;
  }
  return bytes;
}

}  // namespace mpq

// Relation schemas: ordered, typed columns bound to interned attribute ids.

#ifndef MPQ_CATALOG_SCHEMA_H_
#define MPQ_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/attr.h"
#include "common/attr_set.h"
#include "common/value.h"

namespace mpq {

/// A single typed column.
struct Column {
  AttrId attr = kInvalidAttr;
  std::string name;
  DataType type = DataType::kInt64;
};

/// Ordered list of columns forming a relation schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of the column carrying `attr`, or -1.
  int IndexOf(AttrId attr) const;

  /// The set of attribute ids in this schema.
  AttrSet Attrs() const;

  /// Column by attr. Precondition: IndexOf(attr) >= 0.
  const Column& ColumnFor(AttrId attr) const;

  /// Appends a column.
  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Average tuple width in bytes (fixed 8B numerics, 16B avg strings);
  /// used by the cost model's size estimation.
  double AvgTupleBytes() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace mpq

#endif  // MPQ_CATALOG_SCHEMA_H_

// Catalog of base relations: schema, owning data authority, and base
// cardinality (seed for the cost model's estimator).

#ifndef MPQ_CATALOG_CATALOG_H_
#define MPQ_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "authz/subject.h"
#include "catalog/schema.h"
#include "common/attr.h"
#include "common/status.h"

namespace mpq {

/// Dense identifier of a registered base relation.
using RelId = uint32_t;

inline constexpr RelId kInvalidRel = static_cast<RelId>(-1);

/// A registered base relation.
struct RelationDef {
  RelId id = kInvalidRel;
  std::string name;
  Schema schema;
  SubjectId owner = kInvalidSubject;  ///< Data authority storing it.
  double base_rows = 0;               ///< Cardinality hint for costing.
};

/// Catalog shared by the planner, authorization layer and executor. Holds the
/// attribute registry so that all modules agree on attribute ids.
class Catalog {
 public:
  Catalog() = default;

  AttrRegistry& attrs() { return attrs_; }
  const AttrRegistry& attrs() const { return attrs_; }

  /// Registers a relation whose columns are (name, type) pairs; column names
  /// are interned as attributes. Fails on duplicate relation or attribute
  /// name (attribute names are global in the paper's model).
  Result<RelId> AddRelation(
      const std::string& name,
      const std::vector<std::pair<std::string, DataType>>& cols,
      SubjectId owner, double base_rows);

  /// Heterogeneous: a string_view (or literal) probes without constructing
  /// a std::string.
  RelId FindRelation(std::string_view name) const;
  const RelationDef& Get(RelId id) const;

  /// Monotonically increasing schema version; starts at 1 and advances on
  /// every successful AddRelation. Serving layers key cached plans by it so
  /// a schema change invalidates all plans bound against the old catalog.
  /// Registration is not thread-safe — mutate the catalog only while no
  /// queries are being planned against it, or under external synchronization.
  uint64_t version() const { return version_; }

  /// Relation owning attribute `a`, or kInvalidRel.
  RelId RelationOf(AttrId a) const;

  size_t num_relations() const { return rels_.size(); }
  const std::vector<RelationDef>& relations() const { return rels_; }

 private:
  AttrRegistry attrs_;
  uint64_t version_ = 1;
  std::vector<RelationDef> rels_;
  /// Transparent comparator: lookups take string_view without a copy.
  std::map<std::string, RelId, std::less<>> by_name_;
  std::unordered_map<AttrId, RelId> rel_of_attr_;
};

}  // namespace mpq

#endif  // MPQ_CATALOG_CATALOG_H_

#include "catalog/catalog.h"

#include <cassert>

namespace mpq {

Result<RelId> Catalog::AddRelation(
    const std::string& name,
    const std::vector<std::pair<std::string, DataType>>& cols, SubjectId owner,
    double base_rows) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("relation already registered: " + name);
  }
  Schema schema;
  for (const auto& [col_name, type] : cols) {
    if (attrs_.Find(col_name) != kInvalidAttr) {
      return Status::AlreadyExists("attribute name already used: " + col_name);
    }
    AttrId a = attrs_.Intern(col_name);
    schema.AddColumn(Column{a, col_name, type});
  }
  RelId id = static_cast<RelId>(rels_.size());
  for (const Column& c : schema.columns()) rel_of_attr_[c.attr] = id;
  rels_.push_back(RelationDef{id, name, std::move(schema), owner, base_rows});
  by_name_.emplace(name, id);
  ++version_;
  return id;
}

RelId Catalog::FindRelation(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidRel : it->second;
}

const RelationDef& Catalog::Get(RelId id) const {
  assert(id < rels_.size());
  return rels_[id];
}

RelId Catalog::RelationOf(AttrId a) const {
  auto it = rel_of_attr_.find(a);
  return it == rel_of_attr_.end() ? kInvalidRel : it->second;
}

}  // namespace mpq

// Reproduces Figure 10: cumulative normalized cost of evaluating the 22
// TPC-H queries under the three scenarios, plus the headline savings
// percentages (paper: UAPenc saves 54.2% vs UA, UAPmix saves 71.3%).

#include <cstdio>

#include "tpch_cost_common.h"

using namespace mpq;
using mpq::bench::QueryCost;

int main() {
  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/3);

  std::printf("Figure 10 — cumulative normalized cost (per-query UA = 1.0)\n");
  std::printf("%-6s %10s %10s %10s\n", "query", "UA", "UAPenc", "UAPmix");
  double cum_ua = 0, cum_enc = 0, cum_mix = 0;
  for (int q = 1; q <= NumTpchQueries(); ++q) {
    Result<double> ua = QueryCost(env, q, AuthScenario::kUA);
    Result<double> enc = QueryCost(env, q, AuthScenario::kUAPenc);
    Result<double> mix = QueryCost(env, q, AuthScenario::kUAPmix);
    if (!ua.ok() || !enc.ok() || !mix.ok()) {
      std::printf("%-6d error\n", q);
      continue;
    }
    // Normalize each query by its UA cost, as in Fig 9/10.
    cum_ua += 1.0;
    cum_enc += *enc / *ua;
    cum_mix += *mix / *ua;
    std::printf("%-6d %10.3f %10.3f %10.3f\n", q, cum_ua, cum_enc, cum_mix);
  }
  std::printf("\ntotal savings vs UA: UAPenc %.1f%% (paper: 54.2%%), "
              "UAPmix %.1f%% (paper: 71.3%%)\n",
              100.0 * (1.0 - cum_enc / cum_ua),
              100.0 * (1.0 - cum_mix / cum_ua));
  return 0;
}

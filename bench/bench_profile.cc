// Microbenchmark: profile propagation (Fig 2) and Def 4.1 authorization
// checks over random plans of growing size — the per-query overhead the
// authorization machinery adds at planning time.

#include <benchmark/benchmark.h>

#include "profile/propagate.h"
#include "testing/random_plan.h"

namespace mpq {
namespace {

void BM_AnnotatePlan(benchmark::State& state) {
  RandomPlanOptions opts;
  opts.num_relations = static_cast<int>(state.range(0));
  opts.num_extra_ops = static_cast<int>(state.range(0)) * 2;
  auto sc = MakeRandomScenario(7, opts);
  if (!sc.ok()) {
    state.SkipWithError(sc.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Status st = AnnotatePlan(sc->plan.get(), *sc->catalog);
    benchmark::DoNotOptimize(st);
  }
  state.counters["nodes"] = CountNodes(sc->plan.get());
}
BENCHMARK(BM_AnnotatePlan)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_AuthorizedCheck(benchmark::State& state) {
  auto sc = MakeRandomScenario(11);
  if (!sc.ok()) {
    state.SkipWithError(sc.status().ToString().c_str());
    return;
  }
  const RelationProfile& prof = sc->plan->profile;
  for (auto _ : state) {
    for (const Subject& s : sc->subjects->subjects()) {
      bool ok = sc->policy->IsAuthorized(s.id, prof);
      benchmark::DoNotOptimize(ok);
    }
  }
}
BENCHMARK(BM_AuthorizedCheck);

void BM_ProfileMonotonicityCheck(benchmark::State& state) {
  auto sc = MakeRandomScenario(13);
  if (!sc.ok()) {
    state.SkipWithError(sc.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Status st = CheckProfileMonotonicity(sc->plan.get(), *sc->catalog);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_ProfileMonotonicityCheck);

}  // namespace
}  // namespace mpq

BENCHMARK_MAIN();

// Microbenchmark + quality check: the DP assignment optimizer vs exhaustive
// enumeration on the paper's running-example-scale plans, and DP scaling on
// TPC-H queries.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "assign/assignment.h"
#include "profile/propagate.h"
#include "testing/random_plan.h"
#include "tpch/queries.h"
#include "tpch/scenarios.h"

namespace mpq {
namespace {

struct TpchFixture {
  TpchEnv env = MakeTpchEnv(1.0, 3);
  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);
};

TpchFixture& Fx() {
  static TpchFixture fx;
  return fx;
}

void BM_DpOptimizeTpch(benchmark::State& state) {
  TpchFixture& fx = Fx();
  int q = static_cast<int>(state.range(0));
  auto plan = BuildTpchQuery(q, fx.env);
  if (!plan.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  (void)DerivePlaintextNeeds(plan->get(), fx.env.catalog, SchemeCaps{});
  (void)AnnotatePlan(plan->get(), fx.env.catalog);
  auto policy = MakeScenarioPolicy(fx.env, AuthScenario::kUAPenc);
  auto cp = ComputeCandidates(plan->get(), *policy);
  if (!cp.ok()) {
    state.SkipWithError("no candidates");
    return;
  }
  SchemeMap schemes = AnalyzeSchemes(plan->get(), fx.env.catalog, SchemeCaps{});
  CostModel cm(&fx.env.catalog, &fx.prices, &fx.topo, &schemes);
  AssignmentOptimizer opt(&*policy, &cm);
  for (auto _ : state) {
    auto r = opt.Optimize(plan->get(), *cp, fx.env.user);
    benchmark::DoNotOptimize(r);
  }
  state.counters["nodes"] = CountNodes(plan->get());
}
BENCHMARK(BM_DpOptimizeTpch)->Arg(1)->Arg(3)->Arg(5)->Arg(8)->Arg(21);

void BM_DpVsExhaustiveQuality(benchmark::State& state) {
  // Measures DP runtime; reports the DP/exhaustive cost ratio as a counter
  // (1.0 == DP found the optimum).
  auto sc = MakeRandomScenario(static_cast<uint64_t>(state.range(0)));
  if (!sc.ok()) {
    state.SkipWithError(sc.status().ToString().c_str());
    return;
  }
  PricingTable prices = PricingTable::PaperDefaults(*sc->subjects);
  Topology topo = Topology::PaperDefaults(*sc->subjects);
  SchemeMap schemes;
  CostModel cm(sc->catalog.get(), &prices, &topo, &schemes);
  auto cp = ComputeCandidates(sc->plan.get(), *sc->policy,
                              /*require_nonempty=*/false);
  if (!cp.ok()) {
    state.SkipWithError("candidates failed");
    return;
  }
  AssignmentOptimizer opt(sc->policy.get(), &cm);
  Result<AssignmentResult> dp = opt.Optimize(sc->plan.get(), *cp, sc->user);
  if (!dp.ok()) {
    state.SkipWithError("infeasible");
    return;
  }
  auto ex = opt.OptimizeExhaustive(sc->plan.get(), *cp, sc->user, 200000);
  if (ex.ok() && ex->exact_cost.total_usd() > 0) {
    state.counters["dp_over_opt"] =
        dp->exact_cost.total_usd() / ex->exact_cost.total_usd();
  }
  for (auto _ : state) {
    auto r = opt.Optimize(sc->plan.get(), *cp, sc->user);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DpVsExhaustiveQuality)->Arg(3)->Arg(5)->Arg(9);

}  // namespace
}  // namespace mpq

BENCHMARK_MAIN();

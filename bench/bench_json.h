// Shared helper for benchmark drivers that emit machine-readable results:
// a `--json <path>` flag plus a write-to-file wrapper around JsonWriter.
// Every bench keeps its human-readable stdout report; the JSON file is what
// seeds the perf trajectory across PRs.

#ifndef MPQ_BENCH_BENCH_JSON_H_
#define MPQ_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json_util.h"

namespace mpq::bench {

/// Extracts `--json <path>` from the argument list (removing both tokens);
/// returns `default_path` when the flag is absent. The remaining positional
/// arguments are left in argc/argv order for the bench's own parsing.
inline std::string ParseJsonFlag(int* argc, char** argv,
                                 const std::string& default_path) {
  std::string path = default_path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 < *argc) {
        path = argv[i + 1];
        ++i;
      } else {
        std::fprintf(stderr,
                     "warning: --json requires a path; using default %s\n",
                     default_path.c_str());
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return path;
}

/// Stamps the open JSON object in `w` with run metadata — hardware
/// concurrency, build type, and the git sha baked in at configure time — so
/// every BENCH_*.json records what machine and build produced it.
inline void WriteRunMeta(JsonWriter* w) {
#ifdef MPQ_GIT_SHA
  const char* sha = MPQ_GIT_SHA;
#else
  const char* sha = "unknown";
#endif
#ifdef NDEBUG
  const char* build = "release";
#else
  const char* build = "debug";
#endif
  w->Key("run_meta")
      .BeginObject()
      .Key("hardware_concurrency")
      .UInt(std::thread::hardware_concurrency())
      .Key("build_type")
      .String(build)
      .Key("git_sha")
      .String(sha)
      .EndObject();
}

/// True when a measurement at `threads` worker threads oversubscribes this
/// machine (threads > hardware_concurrency). Oversubscribed timings measure
/// scheduler churn, not parallel speedup, so benches mark such rows
/// `oversubscribed: true` and exclude them from speedup-floor gating.
/// Unknown concurrency (hardware_concurrency() == 0) is treated as not
/// oversubscribed: better to gate on a noisy row than to skip silently.
inline bool Oversubscribed(size_t threads) {
  unsigned hc = std::thread::hardware_concurrency();
  return hc != 0 && threads > hc;
}

/// Writes `document` to `path`; reports to stderr on failure.
inline bool WriteJsonFile(const std::string& path,
                          const std::string& document) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(document.data(), 1, document.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace mpq::bench

#endif  // MPQ_BENCH_BENCH_JSON_H_

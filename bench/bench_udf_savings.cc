// Reproduces the Sec 7 observation on udf-heavy queries: because udfs
// dominate cpu cost, delegating them to cheap providers amplifies savings
// beyond the plain TPC-H numbers. Compares the udf-extended analytics query
// against Q1 (a similar scan+aggregate shape without the udf).

#include <cstdio>

#include "assign/assignment.h"
#include "profile/propagate.h"
#include "tpch/queries.h"
#include "tpch/scenarios.h"

using namespace mpq;

namespace {

Result<double> CostOf(const TpchEnv& env, const PlanPtr& plan,
                      AuthScenario scenario) {
  MPQ_ASSIGN_OR_RETURN(Policy policy, MakeScenarioPolicy(env, scenario));
  MPQ_ASSIGN_OR_RETURN(CandidatePlan cp,
                       ComputeCandidates(plan.get(), policy));
  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);
  SchemeMap schemes = AnalyzeSchemes(plan.get(), env.catalog, SchemeCaps{});
  CostModel cm(&env.catalog, &prices, &topo, &schemes);
  AssignmentOptimizer opt(&policy, &cm);
  MPQ_ASSIGN_OR_RETURN(AssignmentResult r,
                       opt.Optimize(plan.get(), cp, env.user));
  return r.exact_cost.total_usd();
}

void Report(const char* name, const TpchEnv& env, const PlanPtr& plan) {
  Result<double> ua = CostOf(env, plan, AuthScenario::kUA);
  Result<double> enc = CostOf(env, plan, AuthScenario::kUAPenc);
  Result<double> mix = CostOf(env, plan, AuthScenario::kUAPmix);
  if (!ua.ok() || !enc.ok() || !mix.ok()) {
    std::printf("%-24s error\n", name);
    return;
  }
  std::printf(
      "%-24s UA=%.5f UAPenc=%.5f (%.1f%% saved) UAPmix=%.5f (%.1f%% saved)\n",
      name, *ua, *enc, 100.0 * (1.0 - *enc / *ua), *mix,
      100.0 * (1.0 - *mix / *ua));
}

}  // namespace

int main() {
  TpchEnv env = MakeTpchEnv(1.0, 3);
  std::printf("UDF delegation savings (Sec 7 observation)\n");

  auto q1 = BuildTpchQuery(1, env);
  if (q1.ok()) {
    (void)DerivePlaintextNeeds(q1->get(), env.catalog, SchemeCaps{});
    (void)AnnotatePlan(q1->get(), env.catalog);
    Report("Q1 (no udf)", env, *q1);
  }

  auto udf = BuildUdfQuery(env);
  if (udf.ok()) {
    (void)DerivePlaintextNeeds(udf->get(), env.catalog, SchemeCaps{});
    (void)AnnotatePlan(udf->get(), env.catalog);
    Report("udf analytics query", env, *udf);
  }
  std::printf(
      "\nexpected shape: under UAPenc the udf query saves at least as much as "
      "the plain query (udf cpu dominates and is delegated to the cheapest "
      "provider with encrypted visibility). Under UAPmix the udf's "
      "equivalence class mixes plaintext and encrypted grants, so uniform "
      "visibility (Def 4.1 condition 3) excludes providers — the paper's "
      "counterintuitive effect where MORE plaintext visibility removes a "
      "candidate.\n");
  return 0;
}

// Ablation (Sec 5 discussion): minimally extended plans vs the
// "minimize visibility" strategy that encrypts every attribute at the source
// and decrypts on demand. Reports encrypted-attribute counts and economic
// cost under UAPenc for each TPC-H query.
//
// Expected shape: the minimal strategy never encrypts more attributes than
// the encrypt-everything strategy and is never more expensive.

#include <cstdio>

#include "assign/assignment.h"
#include "profile/propagate.h"
#include "tpch/queries.h"
#include "tpch/scenarios.h"

using namespace mpq;

namespace {

/// Cost of the chosen assignment when every leaf attribute is encrypted at
/// the source and operations decrypt on demand — approximated by charging
/// full-relation encryption at the leaves on top of the minimal plan's cost.
Result<double> MaxEncCost(const TpchEnv& env, const AssignmentResult& r,
                          const CostModel& cm) {
  double extra = 0;
  for (const PlanNode* n : PostOrder(r.extended.plan.get())) {
    if (n->kind != OpKind::kBase) continue;
    const RelationDef& rel = env.catalog.Get(n->rel);
    AttrSet all = rel.schema.Attrs();
    AttrSet not_yet = all.Difference(r.extended.encrypted_attrs);
    extra += cm.CryptoCost(not_yet, rel.base_rows, rel.owner).total_usd();
  }
  return r.exact_cost.total_usd() + extra;
}

}  // namespace

int main() {
  TpchEnv env = MakeTpchEnv(1.0, 3);
  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);

  std::printf(
      "Ablation — minimal vs encrypt-everything (UAPenc)\n"
      "%-6s %14s %14s %12s %12s\n",
      "query", "min enc attrs", "max enc attrs", "min cost", "max cost");
  for (int q = 1; q <= NumTpchQueries(); ++q) {
    auto plan = BuildTpchQuery(q, env);
    if (!plan.ok()) continue;
    (void)DerivePlaintextNeeds(plan->get(), env.catalog, SchemeCaps{});
    (void)AnnotatePlan(plan->get(), env.catalog);
    auto policy = MakeScenarioPolicy(env, AuthScenario::kUAPenc);
    if (!policy.ok()) continue;
    auto cp = ComputeCandidates(plan->get(), *policy);
    if (!cp.ok()) continue;
    SchemeMap schemes = AnalyzeSchemes(plan->get(), env.catalog, SchemeCaps{});
    CostModel cm(&env.catalog, &prices, &topo, &schemes);
    AssignmentOptimizer opt(&*policy, &cm);
    auto r = opt.Optimize(plan->get(), *cp, env.user);
    if (!r.ok()) continue;

    // Attributes touched by the query at the leaves (max strategy scope).
    AttrSet leaf_attrs;
    for (const PlanNode* n : PostOrder(plan->get())) {
      if (n->kind == OpKind::kProject &&
          n->child(0)->kind == OpKind::kBase) {
        leaf_attrs.InsertAll(n->attrs);
      } else if (n->kind == OpKind::kBase) {
        leaf_attrs.InsertAll(env.catalog.Get(n->rel).schema.Attrs());
      }
    }
    auto max_cost = MaxEncCost(env, *r, cm);
    std::printf("%-6d %14zu %14zu %12.5f %12.5f\n", q,
                r->extended.encrypted_attrs.size(), leaf_attrs.size(),
                r->exact_cost.total_usd(), max_cost.value_or(0));
  }
  return 0;
}

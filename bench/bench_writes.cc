// Write-path benchmark: MRV hotspot counters vs a single-record counter
// under 1/2/4/8 writer threads, and reader latency through the service
// while writers churn snapshots.
//
// The counter half measures the MRV claim directly (Faria & Pereira,
// SIGMOD 2023): the same add/sub stream applied to a counter split over 16
// records vs the degenerate 1-record split (every updater serializing on
// one cache line). Totals are verified exact after every run. The gate
// requires MRV to beat the single record at >= 4 writer threads — on rows
// that actually have that many cores; oversubscribed rows are marked and
// excluded (bench_json.h Oversubscribed).
//
// The reader half runs a group-by query through a QueryService pinned to a
// TableStore while writer threads commit insert/delete pairs, reporting
// p50/p95 against the idle baseline, and checks snapshot visibility: a
// reader may only ever see fully committed writes.
//
// Emits BENCH_writes.json (override with --json <path>).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "authz/policy.h"
#include "bench_json.h"
#include "exec/executor.h"
#include "exec/mrv.h"
#include "exec/table_store.h"
#include "net/pricing.h"
#include "net/topology.h"
#include "service/query_service.h"

using namespace mpq;

namespace {

using Clock = std::chrono::steady_clock;

// ---- counter microbench ----------------------------------------------------

/// One timed run: `threads` workers each apply `ops` alternating Add(1) /
/// Sub(1) calls to a counter with `num_records` records. Per thread every
/// Add precedes the matching Sub, so the total never dips below `initial`
/// and a spurious gather miss (value mid-flight between records) is safely
/// retried. Verifies the final total is exactly `initial`.
double RunCounter(size_t threads, size_t num_records, int64_t initial,
                  int ops, bool* totals_ok) {
  MrvCounter c(initial, num_records, /*seed=*/42 + threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  auto t0 = Clock::now();
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&c, ops] {
      for (int i = 0; i < ops; ++i) {
        if ((i & 1) == 0) {
          c.Add(1);
        } else {
          while (!c.Sub(1).ok()) {
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  auto t1 = Clock::now();
  *totals_ok = *totals_ok && c.Total() == initial;
  return std::chrono::duration<double>(t1 - t0).count();
}

double BestCounter(int reps, size_t threads, size_t num_records,
                   int64_t initial, int ops, bool* totals_ok) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    best = std::min(best,
                    RunCounter(threads, num_records, initial, ops, totals_ok));
  }
  return best;
}

// ---- reader-under-write fixture --------------------------------------------

/// A minimal authorized environment: Acct(K,V,G) owned by authority A, all
/// attributes plaintext-visible to everyone (GrantAny), reader R, two
/// providers. Heap-allocated so Policy's internal catalog/subject pointers
/// stay valid (same pattern as tests/paper_example.h).
struct WriteEnv {
  Catalog catalog;
  SubjectRegistry subjects;
  std::unique_ptr<Policy> policy;
  SubjectId owner, reader;
  RelId acct;
};

std::unique_ptr<WriteEnv> MakeWriteEnv() {
  auto env = std::make_unique<WriteEnv>();
  WriteEnv& e = *env;
  e.owner = *e.subjects.Register("A", SubjectKind::kAuthority);
  e.reader = *e.subjects.Register("R", SubjectKind::kUser);
  (void)e.subjects.Register("P1", SubjectKind::kProvider);
  (void)e.subjects.Register("P2", SubjectKind::kProvider);
  using C = std::pair<std::string, DataType>;
  e.acct = *e.catalog.AddRelation(
      "Acct",
      {C{"K", DataType::kInt64}, C{"V", DataType::kInt64},
       C{"G", DataType::kInt64}},
      e.owner, 4096);
  e.policy = std::make_unique<Policy>(&e.catalog, &e.subjects);
  AttrSet all;
  for (const char* n : {"K", "V", "G"}) {
    all.Insert(e.catalog.attrs().Find(n));
  }
  (void)e.policy->Grant(e.acct, e.owner, all, {});
  (void)e.policy->Grant(e.acct, e.reader, all, {});
  (void)e.policy->GrantAny(e.acct, all, {});
  return env;
}

Table AcctData(const WriteEnv& e, int rows) {
  Table t = MakeBaseTable(e.catalog.Get(e.acct));
  for (int i = 0; i < rows; ++i) {
    t.AddRow({Cell(Value(int64_t{i})), Cell(Value(int64_t{i % 97})),
              Cell(Value(int64_t{i % 8}))});
  }
  return t;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      bench::ParseJsonFlag(&argc, argv, "BENCH_writes.json");
  int ops_per_thread = argc > 1 ? std::atoi(argv[1]) : 200000;
  int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  if (ops_per_thread < 2) ops_per_thread = 2;
  ops_per_thread &= ~1;  // even: adds == subs, totals check exact
  if (reps < 1) reps = 1;

  constexpr size_t kMrvRecords = 16;
  const int64_t initial = 1 << 20;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("writes");
  w.Key("ops_per_thread").Int(ops_per_thread);
  w.Key("mrv_records").UInt(kMrvRecords);
  bench::WriteRunMeta(&w);

  std::printf(
      "MRV (%zu records) vs single-record counter, %d ops/thread, "
      "best of %d reps\n\n",
      kMrvRecords, ops_per_thread, reps);
  std::printf("%8s %14s %14s %10s %8s\n", "writers", "single(Mops/s)",
              "mrv(Mops/s)", "mrv/single", "oversub");

  bool totals_ok = true;
  bool mrv_floor_ok = true;
  w.Key("counter_rows").BeginArray();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    double single_s = BestCounter(reps, threads, /*num_records=*/1, initial,
                                  ops_per_thread, &totals_ok);
    double mrv_s = BestCounter(reps, threads, kMrvRecords, initial,
                               ops_per_thread, &totals_ok);
    double total_ops =
        static_cast<double>(threads) * static_cast<double>(ops_per_thread);
    double single_mops = total_ops / single_s / 1e6;
    double mrv_mops = total_ops / mrv_s / 1e6;
    double ratio = single_s / mrv_s;
    bool oversub = bench::Oversubscribed(threads);
    // The MRV claim only holds when the writers really run in parallel:
    // gate non-oversubscribed rows at >= 4 writers.
    if (!oversub && threads >= 4 && ratio < 1.0) mrv_floor_ok = false;
    std::printf("%8zu %14.2f %14.2f %9.2fx %8s\n", threads, single_mops,
                mrv_mops, ratio, oversub ? "yes" : "no");
    w.BeginObject();
    w.Key("threads").UInt(threads);
    w.Key("single_mops").Double(single_mops);
    w.Key("mrv_mops").Double(mrv_mops);
    w.Key("mrv_over_single").Double(ratio);
    w.Key("oversubscribed").Bool(oversub);
    w.EndObject();
  }
  w.EndArray();
  w.Key("counter_totals_ok").Bool(totals_ok);
  w.Key("mrv_floor_ok").Bool(mrv_floor_ok);

  // ---- reader p50 under write load ----------------------------------------

  auto env = MakeWriteEnv();
  constexpr int kBaseRows = 4096;
  constexpr size_t kWriters = 2;
  constexpr int kReads = 200;

  TableStore store;
  store.Put(env->acct, AcctData(*env, kBaseRows));
  PricingTable prices = PricingTable::PaperDefaults(env->subjects);
  Topology topo = Topology::PaperDefaults(env->subjects);
  ServiceConfig config;
  config.store = &store;
  QueryService service(&env->catalog, &env->subjects, env->policy.get(),
                       &prices, &topo, config);
  Session reader = *service.OpenSession(env->reader);
  Session writer = *service.OpenSession(env->owner);

  const std::string read_sql = "select G, sum(V) from Acct group by G";
  // Writers insert into group 9 (absent from the seed data), so this query
  // counts exactly the in-flight rows: snapshot atomicity bounds it by the
  // writer count.
  const std::string probe_sql = "select K from Acct where G = 9";

  auto timed_reads = [&](std::vector<double>* out, bool* visible_ok) {
    for (int i = 0; i < kReads; ++i) {
      auto t0 = Clock::now();
      Result<QueryResponse> r = service.ExecuteSql(read_sql, reader);
      auto t1 = Clock::now();
      if (!r.ok()) {
        std::printf("read error: %s\n", r.status().ToString().c_str());
        *visible_ok = false;
        return;
      }
      out->push_back(std::chrono::duration<double>(t1 - t0).count() * 1e3);
      if (i % 8 == 0) {
        Result<QueryResponse> p = service.ExecuteSql(probe_sql, reader);
        bool ok = p.ok() && p->table.num_rows() <= kWriters;
        if (!ok) *visible_ok = false;
      }
    }
  };

  bool visible_ok = true;
  std::vector<double> idle_ms;
  timed_reads(&idle_ms, &visible_ok);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      int64_t seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        int64_t k =
            1000000 + static_cast<int64_t>(t) * 1000000 + seq++;
        std::string ks = std::to_string(k);
        Result<WriteResult> ins = service.ExecuteWrite(
            "insert into Acct (K, V, G) values (" + ks + ", 0, 9)", writer);
        Result<WriteResult> del = service.ExecuteWrite(
            "delete from Acct where K = " + ks, writer);
        if (ins.ok() && del.ok()) commits.fetch_add(2);
      }
    });
  }
  std::vector<double> busy_ms;
  timed_reads(&busy_ms, &visible_ok);
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();

  double idle_p50 = Percentile(idle_ms, 0.50);
  double idle_p95 = Percentile(idle_ms, 0.95);
  double busy_p50 = Percentile(busy_ms, 0.50);
  double busy_p95 = Percentile(busy_ms, 0.95);
  std::printf(
      "\nreader (%d group-by queries, %zu writer threads churning "
      "snapshots):\n",
      kReads, kWriters);
  std::printf("  idle        p50 %.3f ms  p95 %.3f ms\n", idle_p50, idle_p95);
  std::printf("  under write p50 %.3f ms  p95 %.3f ms  (%llu commits)\n",
              busy_p50, busy_p95,
              static_cast<unsigned long long>(commits.load()));
  std::printf("  snapshot visibility (reader sees only committed writes): "
              "%s\n",
              visible_ok ? "ok" : "VIOLATED");

  w.Key("reader").BeginObject();
  w.Key("queries").Int(kReads);
  w.Key("writer_threads").UInt(kWriters);
  w.Key("writers_oversubscribed")
      .Bool(bench::Oversubscribed(kWriters + 1));  // writers + the reader
  w.Key("idle_p50_ms").Double(idle_p50);
  w.Key("idle_p95_ms").Double(idle_p95);
  w.Key("under_write_p50_ms").Double(busy_p50);
  w.Key("under_write_p95_ms").Double(busy_p95);
  w.Key("write_commits").UInt(commits.load());
  w.Key("snapshot_epoch").UInt(store.snapshot_epoch());
  w.Key("visibility_ok").Bool(visible_ok);
  w.EndObject();

  bool all_ok = totals_ok && mrv_floor_ok && visible_ok;
  w.Key("all_ok").Bool(all_ok);
  w.EndObject();
  bench::WriteJsonFile(json_path, w.TakeString());

  std::printf("counter totals exact: %s\n", totals_ok ? "yes" : "NO");
  std::printf("mrv >= single-record at >=4 real-core writers: %s\n",
              mrv_floor_ok ? "ok" : "BELOW FLOOR");
  std::printf("wrote %s\n", json_path.c_str());
  return all_ok ? 0 : 1;
}

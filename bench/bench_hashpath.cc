// Join/group-by hash-path benchmark: the flat-hash engine (typed key codes,
// dictionary-encoded string/DET keys, CSR probe lists, contiguous aggregate
// arenas, Paillier Montgomery precompute) against the retained row-major
// oracle, on the workloads PR 4 left slow — the Q3-style probe mix and
// high-cardinality group-bys — plus a dictionary-keyed group-by and a
// Paillier homomorphic-sum aggregation.
//
// The homomorphic workloads run over a base table encrypted once outside
// every timed region — the steady state the paper models, where ciphertexts
// already live at the provider and a query pays for ciphertext aggregation
// plus result decryption, not for re-encrypting the base data.
//
// Every workload is verified before timing: the engine result must
// canonicalize identically to the oracle's, and the engine's own output
// must be bit-identical (serialized bytes) at 1, 2, and 8 threads. A
// mismatch fails the process, as does any workload — encrypted ones
// included — running slower than the row oracle (speedup_1t < 1). Both are
// the CI gate.
//
// Emits BENCH_hashpath.json (override with --json <path>). Compare the
// hash_1t_ms column against the columnar_ms column of the committed PR 4
// BENCH_columnar.json (same scale factor, same best-of-N methodology) for
// the speedup over the previous engine.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "algebra/plan_builder.h"
#include "bench_json.h"
#include "common/flat_hash.h"
#include "common/thread_pool.h"
#include "crypto/keyring.h"
#include "exec/executor.h"
#include "obs/trace.h"
#include "testing/reference_exec.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace mpq;

namespace {

using Clock = std::chrono::steady_clock;

struct Workload {
  std::string name;
  PlanPtr plan;         ///< Executed by the engine.
  PlanPtr oracle_plan;  ///< Executed by the row oracle (defaults to `plan`).
  /// Encrypted pipeline: verified against the plaintext oracle plan but
  /// excluded from the speedup geomean (it measures ciphertext work the
  /// oracle never does). Still subject to the ≥1x floor gate.
  bool encrypted = false;
  /// Executes over the pre-encrypted lineitem table (ciphertext at rest).
  bool use_enc_lineitem = false;
};

double BestOf(int reps, const std::function<double()>& run) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, run());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      bench::ParseJsonFlag(&argc, argv, "BENCH_hashpath.json");
  // `--trace <path>` re-runs every workload with span tracing attached,
  // gates the traced output bytes identical to the untraced ones at 1/2/8
  // threads, gates the tracing-OFF overhead on Q3, and writes a
  // chrome://tracing document to <path>.
  std::string trace_path;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
        trace_path = argv[i + 1];
        ++i;
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
  }
  double data_sf = argc > 1 ? std::atof(argv[1]) : 0.02;
  int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  if (data_sf <= 0) data_sf = 0.02;
  if (reps < 1) reps = 1;

  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/3);
  TpchData db = GenerateTpch(env, data_sf, /*seed=*/5);
  std::printf(
      "Flat-hash join/group-by engine vs row oracle, TPC-H data_sf=%.4g "
      "(lineitem rows: %zu), best of %d reps\n\n",
      data_sf, db.at(env.lineitem).num_rows(), reps);

  // Key material for the encrypted workload: one key (id 0) held by the
  // engine and the dispatcher alike.
  KeyRing keyring;
  keyring.Add(MakeKeyMaterial(/*seed=*/1, /*key_id=*/0));
  CryptoPlan crypto;
  uint64_t paillier_n = (*keyring.Get(0)).paillier.n;

  // Every workload registered here must build, verify, and be measured;
  // `expected` vs `completed` turns a silently-skipped workload (e.g. a
  // planner regression breaking Q3) into a failing exit status.
  size_t expected = 0;
  std::vector<Workload> workloads;
  {
    // The PR 4 laggards: the customer⋈orders⋈lineitem probe mix and the
    // high-cardinality (one group per few rows) aggregation.
    expected++;
    Result<PlanPtr> q3 = BuildTpchQuery(3, env);
    if (q3.ok()) {
      Workload w;
      w.name = "Q3";
      w.plan = std::move(*q3);
      workloads.push_back(std::move(w));
    } else {
      std::printf("Q3 build error: %s\n", q3.status().ToString().c_str());
    }
  }
  {
    PlanBuilder b(&env.catalog);
    PlanPtr p = Select(b.Rel("lineitem"),
                       {b.Pv("l_quantity", CmpOp::kLe, Value(25.0)),
                        b.Pv("l_shipdate", CmpOp::kGt, Value(int64_t{800}))});
    p = GroupBy(std::move(p), b.Set("l_partkey"),
                {Aggregate::Make(AggFunc::kSum, b.A("l_extendedprice")),
                 Aggregate::Make(AggFunc::kMax, b.A("l_discount"))});
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);
    expected++;
    if (fp.ok()) {
      Workload w;
      w.name = "groupby-hi";
      w.plan = std::move(*fp);
      workloads.push_back(std::move(w));
    } else {
      std::printf("groupby-hi build error: %s\n",
                  fp.status().ToString().c_str());
    }
  }
  {
    // Join-heavy: a selective orders build side probed by every lineitem
    // row; the residual projection keeps the join the dominant cost.
    PlanBuilder b(&env.catalog);
    PlanPtr o = Select(b.Rel("orders"), {b.Pv("o_orderdate", CmpOp::kLt,
                                              Value(int64_t{1200}))});
    PlanPtr p = Join(std::move(o), b.Rel("lineitem"),
                     {b.Pa("o_orderkey", CmpOp::kEq, "l_orderkey")});
    p = Project(std::move(p),
                b.Set("o_orderkey,o_totalprice,l_extendedprice"));
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);
    expected++;
    if (fp.ok()) {
      Workload w;
      w.name = "join-probe";
      w.plan = std::move(*fp);
      workloads.push_back(std::move(w));
    } else {
      std::printf("join-probe build error: %s\n",
                  fp.status().ToString().c_str());
    }
  }
  {
    // Dictionary-keyed aggregation: string group keys become dense codes.
    PlanBuilder b(&env.catalog);
    PlanPtr p = GroupBy(b.Rel("lineitem"), b.Set("l_shipmode,l_returnflag"),
                        {Aggregate::Make(AggFunc::kSum, b.A("l_quantity")),
                         Aggregate::Make(AggFunc::kCount, b.A("l_orderkey"))});
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);
    expected++;
    if (fp.ok()) {
      Workload w;
      w.name = "groupby-str";
      w.plan = std::move(*fp);
      workloads.push_back(std::move(w));
    } else {
      std::printf("groupby-str build error: %s\n",
                  fp.status().ToString().c_str());
    }
  }
  {
    // Paillier homomorphic sum grouped by a DET-encrypted string key, over
    // the pre-encrypted base (see below); the oracle runs the plaintext
    // equivalent over the plaintext table, so verification proves the
    // ciphertext-aggregate → decrypt pipeline end to end.
    PlanBuilder b(&env.catalog);
    PlanPtr p = GroupBy(b.Rel("lineitem"), b.Set("l_returnflag"),
                        {Aggregate::Make(AggFunc::kSum, b.A("l_suppkey"))});
    p = Decrypt(std::move(p), b.Set("l_suppkey,l_returnflag"));
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);

    PlanBuilder ob(&env.catalog);
    PlanPtr op = GroupBy(ob.Rel("lineitem"), ob.Set("l_returnflag"),
                         {Aggregate::Make(AggFunc::kSum, ob.A("l_suppkey"))});
    Result<PlanPtr> ofp = FinishPlan(std::move(op), env.catalog);
    expected++;
    if (fp.ok() && ofp.ok()) {
      Workload w;
      w.name = "groupby-hom";
      w.plan = std::move(*fp);
      w.oracle_plan = std::move(*ofp);
      w.encrypted = true;
      w.use_enc_lineitem = true;
      workloads.push_back(std::move(w));
    } else {
      std::printf("groupby-hom build error: %s\n",
                  (fp.ok() ? ofp.status() : fp.status()).ToString().c_str());
    }
  }
  {
    // High-cardinality homomorphic variant: ~part-count groups (one per
    // DET-encrypted l_partkey, ≈4k at sf 0.02), each folding a handful of
    // Paillier ciphertexts — the shape where per-group overhead dominates.
    PlanBuilder b(&env.catalog);
    PlanPtr p = GroupBy(b.Rel("lineitem"), b.Set("l_partkey"),
                        {Aggregate::Make(AggFunc::kSum, b.A("l_suppkey"))});
    p = Decrypt(std::move(p), b.Set("l_suppkey,l_partkey"));
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);

    PlanBuilder ob(&env.catalog);
    PlanPtr op = GroupBy(ob.Rel("lineitem"), ob.Set("l_partkey"),
                         {Aggregate::Make(AggFunc::kSum, ob.A("l_suppkey"))});
    Result<PlanPtr> ofp = FinishPlan(std::move(op), env.catalog);
    expected++;
    if (fp.ok() && ofp.ok()) {
      Workload w;
      w.name = "groupby-hom-hi";
      w.plan = std::move(*fp);
      w.oracle_plan = std::move(*ofp);
      w.encrypted = true;
      w.use_enc_lineitem = true;
      workloads.push_back(std::move(w));
    } else {
      std::printf("groupby-hom-hi build error: %s\n",
                  (fp.ok() ? ofp.status() : fp.status()).ToString().c_str());
    }
  }
  crypto.scheme_of[env.catalog.attrs().Find("l_suppkey")] =
      EncScheme::kPaillier;
  crypto.scheme_of[env.catalog.attrs().Find("l_returnflag")] =
      EncScheme::kDeterministic;
  crypto.scheme_of[env.catalog.attrs().Find("l_partkey")] =
      EncScheme::kDeterministic;

  ReferenceExecutor row_engine(&env.catalog);
  for (const auto& [rel, t] : db.tables) row_engine.LoadTable(rel, &t);

  ThreadPool pool2(2);
  ThreadPool pool8(8);
  TraceSink trace_sink(16);
  double q3_plain_s = 0, q3_traceoff_s = 0;
  bool trace_overhead_ok = true;

  auto modulus_dir = std::make_shared<HomKeyDirectory>(
      HomKeyDirectory{{0, paillier_n}});
  auto make_ctx = [&](ExecContext* ctx, ThreadPool* pool) {
    ctx->catalog = &env.catalog;
    for (const auto& [rel, t] : db.tables) ctx->base_tables[rel] = &t;
    ctx->keyring = &keyring;
    ctx->dispatcher_keyring = &keyring;
    ctx->crypto = &crypto;
    ctx->public_modulus = modulus_dir;
    ctx->pool = pool;
  };

  // One-time base-table encryption for the homomorphic workloads, outside
  // every timed region. The cost is reported for context but is not part of
  // any workload's measurement.
  Table enc_lineitem;
  double encrypt_ms = 0;
  {
    PlanBuilder b(&env.catalog);
    Result<PlanPtr> ep = FinishPlan(
        Encrypt(b.Rel("lineitem"), b.Set("l_suppkey,l_returnflag,l_partkey")),
        env.catalog);
    if (!ep.ok()) {
      std::printf("lineitem encrypt build error: %s\n",
                  ep.status().ToString().c_str());
      return 1;
    }
    ExecContext ctx;
    make_ctx(&ctx, nullptr);
    auto t0 = Clock::now();
    Result<Table> enc = ExecutePlan((*ep).get(), &ctx);
    auto t1 = Clock::now();
    if (!enc.ok()) {
      std::printf("lineitem encrypt error: %s\n",
                  enc.status().ToString().c_str());
      return 1;
    }
    enc_lineitem = std::move(*enc);
    encrypt_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
    std::printf("lineitem encrypted once in %.1f ms (untimed setup)\n\n",
                encrypt_ms);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("hashpath");
  w.Key("data_sf").Double(data_sf);
  w.Key("lineitem_rows").UInt(db.at(env.lineitem).num_rows());
  w.Key("lineitem_encrypt_ms").Double(encrypt_ms);
  bench::WriteRunMeta(&w);
  w.Key("workloads").BeginArray();

  std::printf("%-12s %9s %9s %9s %9s %7s   %s\n", "workload", "row(ms)",
              "1t(ms)", "2t(ms)", "8t(ms)", "spd", "rows");
  double geomean_log = 0;
  size_t measured = 0;
  size_t completed = 0;
  bool all_verified = true;
  double min_speedup = 1e300;
  std::string min_speedup_name;
  for (const Workload& wl : workloads) {
    const PlanNode* oracle_plan =
        wl.oracle_plan != nullptr ? wl.oracle_plan.get() : wl.plan.get();
    auto setup_ctx = [&](ExecContext* ctx, ThreadPool* pool) {
      make_ctx(ctx, pool);
      if (wl.use_enc_lineitem) ctx->base_tables[env.lineitem] = &enc_lineitem;
    };
    Result<Table> row_result = row_engine.Run(oracle_plan);
    if (!row_result.ok()) {
      std::printf("%-12s row engine error: %s\n", wl.name.c_str(),
                  row_result.status().ToString().c_str());
      all_verified = false;
      continue;
    }
    // Verification: engine ≡ oracle (canonical rows), and the engine's own
    // result bytes identical at 1, 2, and 8 threads.
    bool verified = true;
    std::string wire1;
    {
      ExecContext ctx1;
      setup_ctx(&ctx1, nullptr);
      Result<Table> r1 = ExecutePlan(wl.plan.get(), &ctx1);
      if (!r1.ok()) {
        std::printf("%-12s engine error: %s\n", wl.name.c_str(),
                    r1.status().ToString().c_str());
        all_verified = false;
        continue;
      }
      verified = CanonicalRows(*row_result) == CanonicalRows(*r1);
      wire1 = r1->SerializeColumns();
    }
    for (ThreadPool* pool : {&pool2, &pool8}) {
      ExecContext ctx;
      setup_ctx(&ctx, pool);
      Result<Table> r = ExecutePlan(wl.plan.get(), &ctx);
      verified = verified && r.ok() && r->SerializeColumns() == wire1;
    }
    // Traced re-runs at 1, 2 and 8 threads: tracing is observation-only, so
    // the serialized result bytes must equal the untraced run's exactly.
    bool traced_identical = true;
    if (!trace_path.empty()) {
      for (ThreadPool* pool :
           {static_cast<ThreadPool*>(nullptr), &pool2, &pool8}) {
        auto qtrace = std::make_shared<QueryTrace>(
            MakeTraceId(/*session_id=*/1, HashBytes(wl.name),
                        /*attempt=*/pool == &pool8 ? 8 : (pool ? 2 : 1)),
            nullptr);
        ExecContext ctx;
        setup_ctx(&ctx, pool);
        ctx.trace = qtrace.get();
        Result<Table> r = ExecutePlan(wl.plan.get(), &ctx);
        traced_identical =
            traced_identical && r.ok() && r->SerializeColumns() == wire1;
        if (pool == &pool8) trace_sink.Add(qtrace);
      }
      verified = verified && traced_identical;
      if (!traced_identical) {
        std::printf("%-12s TRACED RUN DIFFERS FROM UNTRACED\n",
                    wl.name.c_str());
      }
    }
    all_verified = all_verified && verified;
    if (!verified) {
      std::printf("%-12s RESULT MISMATCH\n", wl.name.c_str());
      continue;
    }

    double row_s = BestOf(reps, [&] {
      auto t0 = Clock::now();
      Result<Table> t = row_engine.Run(oracle_plan);
      auto t1 = Clock::now();
      if (!t.ok()) return 1e300;
      return std::chrono::duration<double>(t1 - t0).count();
    });
    size_t rows = 0;
    auto time_engine = [&](ThreadPool* pool) {
      return BestOf(reps, [&] {
        ExecContext ctx;
        setup_ctx(&ctx, pool);
        auto t0 = Clock::now();
        Result<Table> t = ExecutePlan(wl.plan.get(), &ctx);
        auto t1 = Clock::now();
        if (!t.ok()) return 1e300;
        rows = t->num_rows();
        return std::chrono::duration<double>(t1 - t0).count();
      });
    };
    double s1 = time_engine(nullptr);
    double s2 = time_engine(&pool2);
    double s8 = time_engine(&pool8);

    // Tracing-off overhead gate (Q3): with the tracer disabled, an Execute
    // pays one predictable branch per query. Each iteration times a plain
    // run and a tracer-off run back to back and the gate passes if ANY pair
    // lands within the ≤3% ratio (plus a small absolute slack for
    // sub-millisecond jitter): a genuine overhead shows up in every pair,
    // while a load burst on a shared runner dirties some pairs but not all,
    // so one clean pair is enough to prove the disabled tracer free.
    if (!trace_path.empty() && wl.name == "Q3") {
      Tracer off_tracer(TraceConfig{}, nullptr, nullptr);
      int n = std::max(reps, 5);
      q3_plain_s = 1e300;
      q3_traceoff_s = 1e300;
      trace_overhead_ok = false;
      for (int i = 0; i < n; ++i) {
        double plain_i = 1e300;
        double off_i = 1e300;
        {
          ExecContext ctx;
          setup_ctx(&ctx, nullptr);
          auto t0 = Clock::now();
          Result<Table> t = ExecutePlan(wl.plan.get(), &ctx);
          auto t1 = Clock::now();
          if (t.ok()) plain_i = std::chrono::duration<double>(t1 - t0).count();
        }
        {
          ExecContext ctx;
          setup_ctx(&ctx, nullptr);
          auto t0 = Clock::now();
          std::shared_ptr<QueryTrace> qt =
              off_tracer.MaybeStart(1, HashBytes(wl.name));
          ctx.trace = qt.get();  // null: the tracer is disabled
          Result<Table> t = ExecutePlan(wl.plan.get(), &ctx);
          auto t1 = Clock::now();
          if (t.ok()) off_i = std::chrono::duration<double>(t1 - t0).count();
        }
        if (off_i <= plain_i * 1.03 + 5e-4) trace_overhead_ok = true;
        q3_plain_s = std::min(q3_plain_s, plain_i);
        q3_traceoff_s = std::min(q3_traceoff_s, off_i);
      }
      std::printf(
          "%-12s tracing-off overhead: plain %.3f ms, tracer-off %.3f ms "
          "(%+.1f%%): %s\n",
          wl.name.c_str(), q3_plain_s * 1e3, q3_traceoff_s * 1e3,
          (q3_traceoff_s / q3_plain_s - 1) * 100,
          trace_overhead_ok ? "ok" : "ABOVE 3% GATE");
    }

    double spd = row_s / s1;
    std::printf("%-12s %9.2f %9.2f %9.2f %9.2f %6.2fx%s  %zu\n",
                wl.name.c_str(), row_s * 1e3, s1 * 1e3, s2 * 1e3, s8 * 1e3,
                spd, wl.encrypted ? "*" : " ", rows);
    if (!wl.encrypted) {
      geomean_log += std::log(spd);
      measured++;
    }
    // Floor tracking: every measurement taken on real cores participates.
    // A thread count above hardware_concurrency() times scheduler churn,
    // not the engine, so oversubscribed rows are marked in the JSON and
    // excluded from the speedup-floor gate.
    auto track_floor = [&](double secs, const char* tag, bool oversub) {
      if (oversub || secs <= 0) return;
      double v = row_s / secs;
      if (v < min_speedup) {
        min_speedup = v;
        min_speedup_name = wl.name + tag;
      }
    };
    bool over2 = bench::Oversubscribed(2);
    bool over8 = bench::Oversubscribed(8);
    track_floor(s1, "", false);
    track_floor(s2, "@2t", over2);
    track_floor(s8, "@8t", over8);
    completed++;

    w.BeginObject();
    w.Key("name").String(wl.name);
    w.Key("row_ms").Double(row_s * 1e3);
    w.Key("hash_1t_ms").Double(s1 * 1e3);
    w.Key("hash_2t_ms").Double(s2 * 1e3);
    w.Key("hash_8t_ms").Double(s8 * 1e3);
    w.Key("speedup_1t").Double(spd);
    w.Key("oversubscribed_2t").Bool(over2);
    w.Key("oversubscribed_8t").Bool(over8);
    w.Key("rows").UInt(rows);
    w.Key("verified").Bool(verified);
    if (!trace_path.empty()) {
      w.Key("traced_identical").Bool(traced_identical);
    }
    w.EndObject();
  }
  w.EndArray();
  double geomean = measured > 0 ? std::exp(geomean_log / measured) : 0;
  w.Key("geomean_speedup_1t").Double(geomean);
  // Floor gate: no workload — encrypted ones included — may run slower
  // than the row oracle at any non-oversubscribed thread count.
  bool floor_ok = completed > 0 && min_speedup >= 1.0;
  w.Key("min_speedup_1t").Double(completed > 0 ? min_speedup : 0);
  w.Key("min_speedup_workload").String(min_speedup_name);
  w.Key("speedup_floor_ok").Bool(floor_ok);

  // Paillier fixed-window precompute vs the schoolbook PowMod ladder, on
  // identical inputs (outputs asserted equal) — the crypto half of the
  // hash-path satellite, measured directly.
  {
    KeyMaterial km = *keyring.Get(0);
    const PaillierPrecomp& pre = *km.hom_precomp;
    constexpr int kN = 2000;
    bool equal = true;
    auto t0 = Clock::now();
    for (int i = 0; i < kN; ++i) {
      uint128 c = PaillierEncrypt(km.paillier, static_cast<uint64_t>(i),
                                  static_cast<uint64_t>(i) | 1);
      equal = equal && c != 0;
    }
    auto t1 = Clock::now();
    for (int i = 0; i < kN; ++i) {
      uint128 c = pre.Encrypt(static_cast<uint64_t>(i),
                              static_cast<uint64_t>(i) | 1);
      equal = equal &&
              c == PaillierEncrypt(km.paillier, static_cast<uint64_t>(i),
                                   static_cast<uint64_t>(i) | 1);
    }
    auto t2 = Clock::now();
    // t1..t2 ran both paths; isolate the precompute path.
    auto t3 = Clock::now();
    for (int i = 0; i < kN; ++i) {
      uint128 c = pre.Encrypt(static_cast<uint64_t>(i),
                              static_cast<uint64_t>(i) | 1);
      equal = equal && c != 0;
    }
    auto t4 = Clock::now();
    (void)t2;
    double legacy_us =
        std::chrono::duration<double>(t1 - t0).count() * 1e6 / kN;
    double fast_us =
        std::chrono::duration<double>(t4 - t3).count() * 1e6 / kN;
    all_verified = all_verified && equal;
    std::printf(
        "\nPaillier encrypt: schoolbook %.2f us/op, precomputed %.2f us/op "
        "(%.1fx, ciphertexts %s)\n",
        legacy_us, fast_us, legacy_us / fast_us,
        equal ? "identical" : "DIFFER");
    w.Key("paillier_legacy_us_per_op").Double(legacy_us);
    w.Key("paillier_precomp_us_per_op").Double(fast_us);
    w.Key("paillier_precomp_speedup").Double(legacy_us / fast_us);
  }

  if (!trace_path.empty()) {
    w.Key("trace_path").String(trace_path);
    w.Key("q3_plain_ms").Double(q3_plain_s * 1e3);
    w.Key("q3_traceoff_ms").Double(q3_traceoff_s * 1e3);
    w.Key("trace_overhead_ok").Bool(trace_overhead_ok);
    bench::WriteJsonFile(trace_path, trace_sink.ToChromeJson());
    std::printf("wrote %zu traces to %s\n", trace_sink.size(),
                trace_path.c_str());
  }
  w.Key("all_verified").Bool(all_verified);
  w.EndObject();
  bench::WriteJsonFile(json_path, w.TakeString());

  std::printf(
      "\ngeomean single-thread speedup over the row oracle (plaintext "
      "workloads): %.2fx\n",
      geomean);
  std::printf("slowest workload vs oracle: %s at %.2fx (floor 1.00x): %s\n",
              min_speedup_name.c_str(), completed > 0 ? min_speedup : 0,
              floor_ok ? "ok" : "BELOW FLOOR");
  std::printf("results verified (oracle ≡ engine, 1t ≡ 2t ≡ 8t): %s\n",
              all_verified ? "yes" : "NO");
  std::printf("wrote %s\n", json_path.c_str());
  return all_verified && completed == expected && floor_ok &&
                 trace_overhead_ok
             ? 0
             : 1;
}

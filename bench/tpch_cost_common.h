// Shared helper for the Fig 9 / Fig 10 reproductions: optimize one TPC-H
// query under one authorization scenario and return its economic cost.

#ifndef MPQ_BENCH_TPCH_COST_COMMON_H_
#define MPQ_BENCH_TPCH_COST_COMMON_H_

#include "assign/assignment.h"
#include "profile/propagate.h"
#include "tpch/queries.h"
#include "tpch/scenarios.h"

namespace mpq::bench {

/// Economic cost (USD) of the optimizer's best plan for query `q` under
/// `scenario`, or an error when no authorized assignment exists.
inline Result<double> QueryCost(const TpchEnv& env, int q,
                                AuthScenario scenario) {
  MPQ_ASSIGN_OR_RETURN(PlanPtr plan, BuildTpchQuery(q, env));
  MPQ_RETURN_NOT_OK(
      DerivePlaintextNeeds(plan.get(), env.catalog, SchemeCaps{}));
  MPQ_RETURN_NOT_OK(AnnotatePlan(plan.get(), env.catalog));
  MPQ_ASSIGN_OR_RETURN(Policy policy, MakeScenarioPolicy(env, scenario));
  MPQ_ASSIGN_OR_RETURN(CandidatePlan cp, ComputeCandidates(plan.get(), policy));
  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);
  SchemeMap schemes = AnalyzeSchemes(plan.get(), env.catalog, SchemeCaps{});
  CostModel cm(&env.catalog, &prices, &topo, &schemes);
  AssignmentOptimizer opt(&policy, &cm);
  MPQ_ASSIGN_OR_RETURN(AssignmentResult r,
                       opt.Optimize(plan.get(), cp, env.user));
  return r.exact_cost.total_usd();
}

}  // namespace mpq::bench

#endif  // MPQ_BENCH_TPCH_COST_COMMON_H_

// Batch-parallel executor scaling on the TPC-H cost workload: wall-clock of
// the single-threaded executor vs thread pools of 1/2/4/8 workers, on
// (a) plaintext scan-join-aggregate queries and (b) an encryption-heavy
// extended plan (DET select + OPE range + Paillier aggregation), whose
// per-row crypto is the paper's dominant runtime cost and parallelizes
// near-linearly.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "algebra/plan_builder.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace mpq;

namespace {

using Clock = std::chrono::steady_clock;

double TimedRun(const PlanNode* plan, ExecContext* ctx, int reps,
                size_t* out_rows) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto t0 = Clock::now();
    Result<Table> t = ExecutePlan(plan, ctx);
    auto t1 = Clock::now();
    if (!t.ok()) {
      std::printf("  error: %s\n", t.status().ToString().c_str());
      return -1;
    }
    *out_rows = t->num_rows();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Workload {
  std::string name;
  PlanPtr plan;
};

}  // namespace

int main(int argc, char** argv) {
  double data_sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  if (data_sf <= 0) data_sf = 0.01;
  if (reps < 1) reps = 1;

  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/3);
  TpchData db = GenerateTpch(env, data_sf, /*seed=*/5);
  std::printf("TPC-H data_sf=%.4g (lineitem rows: %zu), best of %d reps\n\n",
              data_sf, db.at(env.lineitem).num_rows(), reps);

  std::vector<Workload> workloads;
  for (int q : {1, 3, 6, 12}) {
    Result<PlanPtr> p = BuildTpchQuery(q, env);
    if (!p.ok()) {
      std::printf("Q%d build error: %s\n", q, p.status().ToString().c_str());
      continue;
    }
    workloads.push_back({"Q" + std::to_string(q), std::move(*p)});
  }

  // Encryption-heavy workload: encrypt lineitem columns under the schemes
  // the paper's assignments use, filter on the DET column, range on OPE,
  // Paillier-sum the price, then decrypt the aggregate.
  CryptoPlan crypto;
  {
    PlanBuilder b(&env.catalog);
    crypto.scheme_of[b.A("l_returnflag")] = EncScheme::kDeterministic;
    crypto.scheme_of[b.A("l_shipdate")] = EncScheme::kOpe;
    crypto.scheme_of[b.A("l_extendedprice")] = EncScheme::kPaillier;
    PlanPtr p = Project(b.Rel("lineitem"),
                        b.Set("l_returnflag,l_shipdate,l_extendedprice"));
    p = Encrypt(std::move(p),
                b.Set("l_returnflag,l_shipdate,l_extendedprice"));
    p = Select(std::move(p), {b.Pv("l_returnflag", CmpOp::kEq,
                                   Value(std::string("R")))});
    p = Select(std::move(p), {b.Pv("l_shipdate", CmpOp::kGt,
                                   Value(int64_t{1204}))});
    p = GroupBy(std::move(p), {},
                {Aggregate::Make(AggFunc::kSum, b.A("l_extendedprice"))});
    p = Decrypt(std::move(p), b.Set("l_extendedprice"));
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);
    if (fp.ok()) {
      workloads.push_back({"enc-sum", std::move(*fp)});
    } else {
      std::printf("enc-sum build error: %s\n", fp.status().ToString().c_str());
    }
  }

  KeyRing ring;
  ring.Add(MakeKeyMaterial(/*seed=*/7, /*key_id=*/0));

  const size_t kThreadCounts[] = {1, 2, 4, 8};
  std::printf("%-10s %12s", "workload", "seq(ms)");
  for (size_t n : kThreadCounts) std::printf("   %zut(ms) spd", n);
  std::printf("   rows\n");

  for (const Workload& w : workloads) {
    auto make_ctx = [&](ExecContext* ctx) {
      ctx->catalog = &env.catalog;
      for (const auto& [rel, t] : db.tables) ctx->base_tables[rel] = &t;
      ctx->keyring = &ring;
      ctx->dispatcher_keyring = &ring;
      ctx->crypto = &crypto;
      KeyMaterial km = *ring.Get(0);
      ctx->public_modulus = std::make_shared<HomKeyDirectory>(
          HomKeyDirectory{{0, km.paillier.n}});
    };

    size_t rows = 0;
    ExecContext seq_ctx;
    make_ctx(&seq_ctx);
    double seq = TimedRun(w.plan.get(), &seq_ctx, reps, &rows);
    if (seq < 0) continue;
    std::printf("%-10s %12.2f", w.name.c_str(), seq * 1e3);
    for (size_t n : kThreadCounts) {
      ThreadPool pool(n);
      ExecContext ctx;
      make_ctx(&ctx);
      ctx.pool = &pool;
      double t = TimedRun(w.plan.get(), &ctx, reps, &rows);
      if (t < 0) break;
      std::printf("   %7.2f %4.2f", t * 1e3, seq / t);
    }
    std::printf("   %zu\n", rows);
  }
  std::printf(
      "\nspd = single-threaded time / pooled time (>1 is a speedup).\n");
  return 0;
}

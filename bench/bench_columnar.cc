// Columnar vs row-major execution on the TPC-H filter/groupby mix: the
// layout differential as a benchmark. The row engine is the retained
// row-path oracle in testing/reference_exec (the pre-columnar
// vector<vector<Cell>> execution style); the columnar engine is the
// production executor, measured single-threaded for a pure layout
// comparison and at 8 threads for the combined layout+parallelism win.
// Every workload's results are verified bit-identical (CanonicalRows)
// between the two engines before timing is reported.
//
// Emits BENCH_columnar.json (override with --json <path>).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "algebra/plan_builder.h"
#include "bench_json.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "testing/reference_exec.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace mpq;

namespace {

using Clock = std::chrono::steady_clock;

struct Workload {
  std::string name;
  PlanPtr plan;
};

double BestOf(int reps, const std::function<double()>& run) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, run());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      bench::ParseJsonFlag(&argc, argv, "BENCH_columnar.json");
  double data_sf = argc > 1 ? std::atof(argv[1]) : 0.02;
  int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  if (data_sf <= 0) data_sf = 0.02;
  if (reps < 1) reps = 1;

  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/3);
  TpchData db = GenerateTpch(env, data_sf, /*seed=*/5);
  std::printf(
      "Columnar vs row-major layout, TPC-H data_sf=%.4g "
      "(lineitem rows: %zu), best of %d reps\n\n",
      data_sf, db.at(env.lineitem).num_rows(), reps);

  // The filter/groupby mix: Q1 (scan + wide groupby), Q6 (selective filter
  // + global aggregate), a high-cardinality groupby, and a filter-heavy
  // scan; Q3 and Q12 add join coverage.
  std::vector<Workload> workloads;
  for (int q : {1, 6, 3, 12}) {
    Result<PlanPtr> p = BuildTpchQuery(q, env);
    if (!p.ok()) {
      std::printf("Q%d build error: %s\n", q, p.status().ToString().c_str());
      continue;
    }
    workloads.push_back({"Q" + std::to_string(q), std::move(*p)});
  }
  {
    PlanBuilder b(&env.catalog);
    PlanPtr p = Select(b.Rel("lineitem"),
                       {b.Pv("l_quantity", CmpOp::kLe, Value(25.0)),
                        b.Pv("l_shipdate", CmpOp::kGt, Value(int64_t{800}))});
    p = GroupBy(std::move(p), b.Set("l_partkey"),
                {Aggregate::Make(AggFunc::kSum, b.A("l_extendedprice")),
                 Aggregate::Make(AggFunc::kMax, b.A("l_discount"))});
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);
    if (fp.ok()) workloads.push_back({"groupby-hi", std::move(*fp)});
  }
  {
    PlanBuilder b(&env.catalog);
    PlanPtr p = Select(b.Rel("lineitem"),
                       {b.Pv("l_returnflag", CmpOp::kEq,
                             Value(std::string("N"))),
                        b.Pv("l_quantity", CmpOp::kLt, Value(30.0)),
                        b.Pv("l_discount", CmpOp::kGe, Value(0.02))});
    p = Project(std::move(p), b.Set("l_orderkey,l_extendedprice"));
    Result<PlanPtr> fp = FinishPlan(std::move(p), env.catalog);
    if (fp.ok()) workloads.push_back({"filter-scan", std::move(*fp)});
  }

  // Row engine: the row-path oracle, base tables converted at load time.
  ReferenceExecutor row_engine(&env.catalog);
  for (const auto& [rel, t] : db.tables) row_engine.LoadTable(rel, &t);

  ThreadPool pool8(8);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("columnar");
  w.Key("data_sf").Double(data_sf);
  w.Key("lineitem_rows").UInt(db.at(env.lineitem).num_rows());
  bench::WriteRunMeta(&w);
  w.Key("workloads").BeginArray();

  std::printf("%-12s %10s %10s %8s %10s %8s   %s\n", "workload", "row(ms)",
              "col(ms)", "spd", "col8(ms)", "spd8", "rows");
  double geomean_log = 0;
  size_t measured = 0;
  bool all_match = true;
  for (const Workload& wl : workloads) {
    Result<Table> row_result = row_engine.Run(wl.plan.get());
    if (!row_result.ok()) {
      std::printf("%-12s row engine error: %s\n", wl.name.c_str(),
                  row_result.status().ToString().c_str());
      all_match = false;  // an unverifiable workload fails the gate
      continue;
    }
    ExecContext ctx;
    ctx.catalog = &env.catalog;
    for (const auto& [rel, t] : db.tables) ctx.base_tables[rel] = &t;
    Result<Table> col_result = ExecutePlan(wl.plan.get(), &ctx);
    if (!col_result.ok()) {
      std::printf("%-12s columnar error: %s\n", wl.name.c_str(),
                  col_result.status().ToString().c_str());
      all_match = false;  // an unverifiable workload fails the gate
      continue;
    }
    bool match = CanonicalRows(*row_result) == CanonicalRows(*col_result);
    all_match = all_match && match;
    if (!match) {
      std::printf("%-12s RESULT MISMATCH row vs columnar\n", wl.name.c_str());
      continue;
    }

    double row_s = BestOf(reps, [&] {
      auto t0 = Clock::now();
      Result<Table> t = row_engine.Run(wl.plan.get());
      auto t1 = Clock::now();
      if (!t.ok()) return 1e300;
      return std::chrono::duration<double>(t1 - t0).count();
    });
    double col_s = BestOf(reps, [&] {
      ExecContext c;
      c.catalog = &env.catalog;
      for (const auto& [rel, t] : db.tables) c.base_tables[rel] = &t;
      auto t0 = Clock::now();
      Result<Table> t = ExecutePlan(wl.plan.get(), &c);
      auto t1 = Clock::now();
      if (!t.ok()) return 1e300;
      return std::chrono::duration<double>(t1 - t0).count();
    });
    double col8_s = BestOf(reps, [&] {
      ExecContext c;
      c.catalog = &env.catalog;
      for (const auto& [rel, t] : db.tables) c.base_tables[rel] = &t;
      c.pool = &pool8;
      auto t0 = Clock::now();
      Result<Table> t = ExecutePlan(wl.plan.get(), &c);
      auto t1 = Clock::now();
      if (!t.ok()) return 1e300;
      return std::chrono::duration<double>(t1 - t0).count();
    });

    double spd = row_s / col_s;
    std::printf("%-12s %10.2f %10.2f %7.2fx %10.2f %7.2fx   %zu\n",
                wl.name.c_str(), row_s * 1e3, col_s * 1e3, spd, col8_s * 1e3,
                row_s / col8_s, col_result->num_rows());
    geomean_log += std::log(spd);
    measured++;

    w.BeginObject();
    w.Key("name").String(wl.name);
    w.Key("row_ms").Double(row_s * 1e3);
    w.Key("columnar_ms").Double(col_s * 1e3);
    w.Key("columnar_8t_ms").Double(col8_s * 1e3);
    w.Key("speedup_1t").Double(spd);
    w.Key("speedup_8t").Double(row_s / col8_s);
    w.Key("rows").UInt(col_result->num_rows());
    w.Key("verified").Bool(match);
    w.EndObject();
  }
  w.EndArray();
  double geomean = measured > 0 ? std::exp(geomean_log / measured) : 0;
  w.Key("geomean_speedup_1t").Double(geomean);
  w.Key("all_verified").Bool(all_match);
  w.EndObject();
  bench::WriteJsonFile(json_path, w.TakeString());

  std::printf(
      "\ngeomean single-thread speedup (columnar over row-major): %.2fx\n",
      geomean);
  std::printf("results verified bit-identical: %s\n", all_match ? "yes" : "NO");
  std::printf("wrote %s\n", json_path.c_str());
  // Gate: every workload must have been measured AND verified identical.
  return all_match && measured == workloads.size() ? 0 : 1;
}

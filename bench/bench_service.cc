// QueryService serving benchmark, four sections over one TPC-H UAPenc mix:
//
//   closed_loop     — N clients, cold vs warm plan-cache latency; raw
//                     percentiles plus coordinated-omission-corrected ones.
//   async_burst     — deterministic ExecuteAsync burst against a parked
//                     pool: queue-depth shedding accounting and response
//                     identity against the synchronous path.
//   open_loop       — >= 1000 simulated sessions arriving on a lognormal
//                     schedule over virtual time (service/loadgen.h), swept
//                     at 0.5/1/2x the measured warm capacity: saturation
//                     throughput, shed rate, cache hit ratio, p99/p99.9.
//   open_loop_crash — the same harness with a seeded provider crash plan
//                     re-armed throughout the run (failover under load).
//
// The exit gate is accounting and correctness only — result mismatches,
// shed bookkeeping, failovers observed, plus the plan-cache speedup floor on
// non-oversubscribed rows — never raw wall clock, so it holds on a 1-core CI
// host. Emits BENCH_service.json (override with --json <path>).
//
//   bench_service [data_sf] [warm_iters] [sessions] [--json path]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "exec/failover.h"
#include "net/simnet.h"
#include "profile/propagate.h"
#include "service/loadgen.h"
#include "service/query_service.h"
#include "sql/binder.h"
#include "tpch/dbgen.h"
#include "tpch/scenarios.h"

using namespace mpq;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = p * static_cast<double>(samples.size());
  size_t idx = rank <= 1 ? 0 : static_cast<size_t>(rank + 0.5) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

// Coordinated-omission correction (HdrHistogram style): a closed-loop client
// that intended to issue every `interval_ms` but observed latency L > interval
// silently omitted the samples it would have taken while stalled; re-insert
// them as L - interval, L - 2*interval, ... so percentiles reflect what an
// arrival during the stall would have experienced.
std::vector<double> CorrectCoordinatedOmission(const std::vector<double>& raw,
                                               double interval_ms) {
  std::vector<double> corrected = raw;
  if (interval_ms <= 0) return corrected;
  for (double l : raw) {
    for (double missed = l - interval_ms; missed > 0; missed -= interval_ms) {
      corrected.push_back(missed);
    }
  }
  return corrected;
}

/// Strict byte identity between two response tables (schema, plaintext, and
/// ciphertext bytes) — the async-vs-sync identity check.
bool TablesIdentical(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns() || a.num_rows() != b.num_rows()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.columns()[c].attr != b.columns()[c].attr ||
        a.columns()[c].encrypted != b.columns()[c].encrypted) {
      return false;
    }
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    // row() materializes a fresh vector; keep both alive across the cell
    // comparisons instead of holding references into temporaries.
    const std::vector<Cell> ra = a.row(r);
    const std::vector<Cell> rb = b.row(r);
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const Cell& x = ra[c];
      const Cell& y = rb[c];
      if (x.is_plain() != y.is_plain()) return false;
      if (x.is_plain() ? !(x.plain() == y.plain()) : !(x.enc() == y.enc())) {
        return false;
      }
    }
  }
  return true;
}

void WriteLoadGenRow(JsonWriter* w, const LoadGenReport& r) {
  w->Key("offered")
      .UInt(r.offered)
      .Key("completed")
      .UInt(r.completed)
      .Key("shed")
      .UInt(r.shed)
      .Key("errors")
      .UInt(r.errors)
      .Key("mismatches")
      .UInt(r.mismatches)
      .Key("virtual_duration_s")
      .Double(r.virtual_duration_s)
      .Key("throughput_qps")
      .Double(r.throughput_qps)
      .Key("shed_rate")
      .Double(r.shed_rate)
      .Key("p50_ms")
      .Double(r.p50_ms)
      .Key("p99_ms")
      .Double(r.p99_ms)
      .Key("p999_ms")
      .Double(r.p999_ms)
      .Key("hit_rate")
      .Double(r.hit_rate)
      .Key("failovers")
      .UInt(r.failovers);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      mpq::bench::ParseJsonFlag(&argc, argv, "BENCH_service.json");
  // Default scale keeps the per-query working set small relative to the
  // front half (parse → authorize → optimize): the regime where a serving
  // layer's plan cache is the dominant lever. Execution-side data scaling
  // is bench_parallel_exec's subject.
  double data_sf = argc > 1 ? std::atof(argv[1]) : 5e-5;
  int warm_iters = argc > 2 ? std::atoi(argv[2]) : 20;
  size_t sessions = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 2000;
  if (data_sf <= 0) data_sf = 5e-5;
  if (warm_iters < 1) warm_iters = 1;
  if (sessions < 1000) sessions = 1000;

  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/8);
  TpchData db = GenerateTpch(env, data_sf, /*seed=*/17);
  Result<Policy> policy = MakeScenarioPolicy(env, AuthScenario::kUAPenc);
  if (!policy.ok()) {
    std::printf("policy error: %s\n", policy.status().ToString().c_str());
    return 1;
  }
  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);

  // The scenario mix: the supported dialect's renderings of a TPC-H
  // cross-section — selection-heavy (Q6), join chains (Q3, Q10), an
  // attr-attr predicate (Q12) and a HAVING aggregate (Q18 shape) — matching
  // the shapes of src/tpch/queries.cc.
  const std::vector<std::string> statements = {
      // Q6: forecasting revenue change.
      "select sum(l_extendedprice) from lineitem "
      "where l_shipdate >= 730 and l_shipdate < 1095 "
      "and l_discount >= 0.05 and l_discount <= 0.07 and l_quantity < 24.0",
      // Q3: shipping priority.
      "select o_orderkey, o_orderdate, o_shippriority, sum(l_extendedprice) "
      "from customer join orders on c_custkey = o_custkey "
      "join lineitem on o_orderkey = l_orderkey "
      "where c_mktsegment = 'BUILDING' and o_orderdate < 1204 "
      "and l_shipdate > 1204 "
      "group by o_orderkey, o_orderdate, o_shippriority",
      // Q10: returned item reporting.
      "select c_custkey, c_name, n_name, sum(l_extendedprice) "
      "from customer join orders on c_custkey = o_custkey "
      "join lineitem on o_orderkey = l_orderkey "
      "join nation on c_nationkey = n_nationkey "
      "where o_orderdate >= 640 and o_orderdate < 730 "
      "and l_returnflag = 'R' group by c_custkey, c_name, n_name",
      // Q12: shipping modes (attr-attr comparison).
      "select l_shipmode, count(*) from orders "
      "join lineitem on o_orderkey = l_orderkey "
      "where l_shipmode = 'MAIL' and l_receiptdate >= 730 "
      "and l_receiptdate < 1095 and l_commitdate < l_receiptdate "
      "group by l_shipmode",
      // Q18 shape: large-volume customers via HAVING.
      "select o_custkey, sum(l_extendedprice) from orders "
      "join lineitem on o_orderkey = l_orderkey "
      "group by o_custkey having sum(l_extendedprice) > 1000.0",
  };

  std::printf(
      "QueryService serving bench: TPC-H UAPenc mix {Q6,Q3,Q10,Q12,Q18}, "
      "data_sf=%.4g (lineitem rows: %zu), %d warm iters/client, "
      "%zu open-loop sessions\n",
      data_sf, db.at(env.lineitem).num_rows(), warm_iters, sessions);

  JsonWriter w;
  w.BeginObject()
      .Key("bench")
      .String("service")
      .Key("scenario")
      .String("UAPenc")
      .Key("data_sf")
      .Double(data_sf)
      .Key("warm_iters")
      .Int(warm_iters)
      .Key("sessions")
      .UInt(sessions);
  mpq::bench::WriteRunMeta(&w);
  w.Key("query_mix").BeginArray();
  for (const char* q : {"Q6", "Q3", "Q10", "Q12", "Q18"}) w.String(q);
  w.EndArray();

  bool ok = true;

  // ---------------------------------------------------------------- section
  // Closed loop: N clients hammering the cached mix. Raw percentiles are
  // coordinated-omission biased (a slow response delays that client's next
  // request), so we also report corrected ones assuming each client intended
  // a steady interval equal to its mean observed latency.
  std::printf("\n[closed_loop]\n");
  std::printf("%8s %12s %12s %12s %12s %14s %10s %8s\n", "clients", "cold_p50",
              "warm_p50", "warm_p99", "co_p99", "cold/warm", "hit_rate",
              "qps");
  w.Key("closed_loop_note")
      .String(
          "raw percentiles understate tail latency under overload "
          "(coordinated omission: a stalled client stops sampling); "
          "corrected_* re-inserts the omitted samples assuming each client "
          "intended a steady interval equal to its mean observed latency");
  w.Key("closed_loop").BeginArray();
  for (size_t clients : {1u, 4u, 8u}) {
    ServiceConfig config;
    // Inline execution: closed-loop throughput comes from inter-query
    // parallelism across client threads; intra-query parallelism (a shared
    // exec pool) is the open-loop sections' subject and would only make the
    // clients convoy on pool workers here.
    config.exec_threads = 0;
    config.max_in_flight = 2 * clients;
    QueryService service(&env.catalog, &env.subjects, &*policy, &prices,
                         &topo, config);
    for (const auto& [rel, t] : db.tables) service.LoadTable(rel, &t);

    auto session = service.OpenSession(env.user);
    if (!session.ok()) {
      std::printf("session error: %s\n", session.status().ToString().c_str());
      return 1;
    }

    // Cold: every statement's first execution pays the whole front half.
    std::vector<double> cold_ms;
    for (const std::string& sql : statements) {
      auto t0 = Clock::now();
      auto r = service.ExecuteSql(sql, *session);
      if (!r.ok()) {
        std::printf("cold error: %s\n", r.status().ToString().c_str());
        return 1;
      }
      cold_ms.push_back(MsSince(t0));
    }

    // Warm: closed-loop clients hammering the cached mix.
    std::mutex merge_mu;
    std::vector<double> warm_ms;
    std::vector<std::thread> threads;
    bool failed = false;
    auto wall0 = Clock::now();
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto my_session = service.OpenSession(env.user);
        if (!my_session.ok()) return;
        std::vector<double> local;
        local.reserve(statements.size() * static_cast<size_t>(warm_iters));
        for (int i = 0; i < warm_iters; ++i) {
          for (size_t s = 0; s < statements.size(); ++s) {
            // Stagger start points so clients don't convoy on one statement.
            const std::string& sql = statements[(s + c) % statements.size()];
            auto t0 = Clock::now();
            auto r = service.ExecuteSql(sql, *my_session);
            if (!r.ok()) {
              std::lock_guard<std::mutex> lock(merge_mu);
              failed = true;
              return;
            }
            local.push_back(MsSince(t0));
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        warm_ms.insert(warm_ms.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
    double wall_s = MsSince(wall0) / 1e3;
    if (failed) {
      std::printf("warm execution failed at %zu clients\n", clients);
      return 1;
    }

    double mean_ms = 0;
    for (double l : warm_ms) mean_ms += l;
    mean_ms =
        warm_ms.empty() ? 0 : mean_ms / static_cast<double>(warm_ms.size());
    std::vector<double> co_ms = CorrectCoordinatedOmission(warm_ms, mean_ms);

    ServiceMetrics m = service.Metrics();
    bool oversub = mpq::bench::Oversubscribed(clients);
    double cold_p50 = PercentileMs(cold_ms, 0.50);
    double warm_p50 = PercentileMs(warm_ms, 0.50);
    double warm_p99 = PercentileMs(warm_ms, 0.99);
    double co_p99 = PercentileMs(co_ms, 0.99);
    double speedup = warm_p50 > 0 ? cold_p50 / warm_p50 : 0;
    double qps = wall_s > 0 ? static_cast<double>(warm_ms.size()) / wall_s : 0;
    // The plan-cache floor gates only rows this machine can actually run in
    // parallel; oversubscribed rows measure scheduler churn, not caching.
    if (!oversub) ok = ok && speedup >= 5.0;

    std::printf("%8zu %10.3fms %10.3fms %10.3fms %10.3fms %13.1fx %9.1f%% "
                "%8.0f%s\n",
                clients, cold_p50, warm_p50, warm_p99, co_p99, speedup,
                m.hit_rate * 100, qps, oversub ? "  (oversubscribed)" : "");

    w.BeginObject()
        .Key("clients")
        .UInt(clients)
        .Key("oversubscribed")
        .Bool(oversub)
        .Key("cold_p50_ms")
        .Double(cold_p50)
        .Key("cold_p95_ms")
        .Double(PercentileMs(cold_ms, 0.95))
        .Key("warm_p50_ms")
        .Double(warm_p50)
        .Key("warm_p95_ms")
        .Double(PercentileMs(warm_ms, 0.95))
        .Key("warm_p99_ms")
        .Double(warm_p99)
        .Key("corrected_p50_ms")
        .Double(PercentileMs(co_ms, 0.50))
        .Key("corrected_p99_ms")
        .Double(co_p99)
        .Key("corrected_p999_ms")
        .Double(PercentileMs(co_ms, 0.999))
        .Key("intended_interval_ms")
        .Double(mean_ms)
        .Key("cold_over_warm_p50")
        .Double(speedup)
        .Key("hit_rate")
        .Double(m.hit_rate)
        .Key("qps")
        .Double(qps)
        .Key("queries")
        .UInt(m.queries)
        .Key("admission_waits")
        .UInt(m.admission_waits)
        .EndObject();
  }
  w.EndArray();

  // ---------------------------------------------------------------- section
  // Async burst: park every pool worker behind a gate, submit a burst of
  // ExecuteAsync calls against a small queue-depth cap, and check the
  // accounting exactly: accepted == cap, shed == burst - cap, and every
  // accepted response byte-identical to the synchronous warm execution.
  {
    ServiceConfig config;
    config.exec_threads = 2;
    config.max_in_flight = 4;
    config.max_queue_depth = 16;
    QueryService service(&env.catalog, &env.subjects, &*policy, &prices,
                         &topo, config);
    for (const auto& [rel, t] : db.tables) service.LoadTable(rel, &t);
    auto session = service.OpenSession(env.user);
    if (!session.ok()) return 1;

    std::vector<StatementHandle> handles;
    std::vector<Table> refs;
    for (const std::string& sql : statements) {
      auto h = service.Prepare(sql);
      if (!h.ok()) return 1;
      if (!service.Execute(*h, *session).ok()) return 1;  // cold
      auto warm = service.Execute(*h, *session);           // warm reference
      if (!warm.ok()) return 1;
      handles.push_back(*h);
      refs.push_back(std::move(warm->table));
    }
    ServiceMetrics m0 = service.Metrics();

    // Park both workers so no async task can start before the whole burst
    // is submitted — the shed decision then depends only on the cap.
    std::atomic<int> entered{0};
    std::atomic<bool> release{false};
    for (size_t i = 0; i < config.exec_threads; ++i) {
      while (!service.pool()->Submit([&entered, &release] {
        entered.fetch_add(1);
        while (!release.load()) std::this_thread::yield();
      })) {
      }
    }
    while (entered.load() < static_cast<int>(config.exec_threads)) {
      std::this_thread::yield();
    }

    const size_t kBurst = 64;
    std::vector<std::shared_ptr<AsyncQuery>> accepted;
    std::vector<size_t> accepted_stmt;
    size_t shed = 0;
    for (size_t i = 0; i < kBurst; ++i) {
      auto r = service.ExecuteAsync(handles[i % handles.size()], *session);
      if (r.ok()) {
        accepted.push_back(*r);
        accepted_stmt.push_back(i % handles.size());
      } else {
        ++shed;
      }
    }
    release.store(true);

    size_t identical = 0;
    size_t failures = 0;
    for (size_t i = 0; i < accepted.size(); ++i) {
      const Result<QueryResponse>& r = accepted[i]->Wait();
      if (!r.ok()) {
        ++failures;
        continue;
      }
      if (TablesIdentical(r->table, refs[accepted_stmt[i]])) ++identical;
    }

    ServiceMetrics m1 = service.Metrics();
    bool burst_ok = accepted.size() == config.max_queue_depth &&
                    shed == kBurst - config.max_queue_depth &&
                    m1.sheds - m0.sheds == shed &&
                    m1.async_queries - m0.async_queries == accepted.size() &&
                    failures == 0 && identical == accepted.size();
    ok = ok && burst_ok;

    std::printf(
        "\n[async_burst] submitted=%zu cap=%zu accepted=%zu shed=%zu "
        "identical=%zu/%zu morsels=%llu scan_attaches=%llu  %s\n",
        kBurst, config.max_queue_depth, accepted.size(), shed, identical,
        accepted.size(),
        static_cast<unsigned long long>(m1.morsels_executed),
        static_cast<unsigned long long>(m1.scan_attaches),
        burst_ok ? "OK" : "FAIL");

    w.Key("async_burst")
        .BeginObject()
        .Key("oversubscribed")
        .Bool(mpq::bench::Oversubscribed(config.exec_threads))
        .Key("submitted")
        .UInt(kBurst)
        .Key("queue_depth_cap")
        .UInt(config.max_queue_depth)
        .Key("accepted")
        .UInt(accepted.size())
        .Key("shed")
        .UInt(shed)
        .Key("sheds_metric")
        .UInt(m1.sheds - m0.sheds)
        .Key("identical_responses")
        .UInt(identical)
        .Key("queue_depth_peak")
        .UInt(m1.queue_depth_peak)
        .Key("morsels_executed")
        .UInt(m1.morsels_executed)
        .Key("scan_leads")
        .UInt(m1.scan_leads)
        .Key("scan_attaches")
        .UInt(m1.scan_attaches)
        .Key("scan_shared_batches")
        .UInt(m1.scan_shared_batches)
        .Key("pass")
        .Bool(burst_ok)
        .EndObject();
  }

  // ---------------------------------------------------------------- section
  // Open loop: measure the service's warm capacity (virtual servers / mean
  // warm service time), then sweep offered load at 0.5/1/2x capacity with
  // >= 1000 lognormal-arrival sessions on the virtual clock. Gates:
  // zero mismatches, exact offered == completed + shed + errors accounting,
  // and non-zero shedding in the 2x (overload) run.
  {
    ServiceConfig config;
    config.exec_threads = 2;  // morsel scheduler + shared scans active
    QueryService service(&env.catalog, &env.subjects, &*policy, &prices,
                         &topo, config);
    for (const auto& [rel, t] : db.tables) service.LoadTable(rel, &t);
    auto session = service.OpenSession(env.user);
    if (!session.ok()) return 1;

    // Warm the cache, then measure mean warm service time over the mix.
    for (const std::string& sql : statements) {
      if (!service.ExecuteSql(sql, *session).ok()) return 1;
    }
    double sum_service_s = 0;
    for (const std::string& sql : statements) {
      auto r = service.ExecuteSql(sql, *session);
      if (!r.ok()) return 1;
      sum_service_s += r->stats.total_s + r->stats.net_virtual_s;
    }
    double mean_service_s =
        sum_service_s / static_cast<double>(statements.size());
    const size_t kServers = 8;
    double capacity_qps =
        mean_service_s > 0 ? static_cast<double>(kServers) / mean_service_s
                           : 1e6;

    std::printf(
        "\n[open_loop] %zu sessions, lognormal arrivals (sigma=1.5), "
        "%zu virtual servers, capacity ~%.0f qps\n",
        sessions, kServers, capacity_qps);
    std::printf("%8s %9s %10s %8s %8s %11s %10s %10s %10s %10s\n", "lambda",
                "offered", "completed", "shed", "errors", "mismatch", "qps",
                "shed_rate", "p99_ms", "p999_ms");

    w.Key("open_loop")
        .BeginObject()
        .Key("virtual_servers")
        .UInt(kServers)
        .Key("capacity_qps")
        .Double(capacity_qps)
        .Key("mean_service_ms")
        .Double(mean_service_s * 1e3)
        .Key("runs")
        .BeginArray();
    for (double mult : {0.5, 1.0, 2.0}) {
      LoadGenConfig lc;
      lc.sessions = sessions;
      lc.mean_interarrival_s = 1.0 / (mult * capacity_qps);
      lc.sigma = 1.5;
      lc.servers = kServers;
      lc.queue_cap = 2 * kServers;
      lc.seed = 17 + static_cast<uint64_t>(mult * 10);
      auto rep = RunOpenLoopLoad(&service, *session, statements, lc);
      if (!rep.ok()) {
        std::printf("open-loop run failed: %s\n",
                    rep.status().ToString().c_str());
        return 1;
      }
      bool run_ok = rep->mismatches == 0 && rep->errors == 0 &&
                    rep->completed + rep->shed + rep->errors == rep->offered;
      if (mult >= 2.0) run_ok = run_ok && rep->shed > 0;
      ok = ok && run_ok;

      std::printf("%7.1fx %9zu %10zu %8zu %8zu %11zu %10.0f %9.1f%% %10.2f "
                  "%10.2f%s\n",
                  mult, rep->offered, rep->completed, rep->shed, rep->errors,
                  rep->mismatches, rep->throughput_qps, rep->shed_rate * 100,
                  rep->p99_ms, rep->p999_ms, run_ok ? "" : "  FAIL");

      w.BeginObject().Key("lambda_over_capacity").Double(mult);
      WriteLoadGenRow(&w, *rep);
      w.Key("pass").Bool(run_ok).EndObject();
    }
    w.EndArray();
    ServiceMetrics m = service.Metrics();
    w.Key("morsels_executed")
        .UInt(m.morsels_executed)
        .Key("queue_depth_peak")
        .UInt(m.queue_depth_peak)
        .EndObject();
  }

  // ---------------------------------------------------------------- section
  // Open loop under a seeded provider crash: probe statement 0's
  // minimum-cost assignment for a provider step to kill, arm the fault plan,
  // and keep restoring the victim during the run so the crash re-fires —
  // saturation behavior while the failover path is exercised repeatedly.
  // Ciphertext comparison is length-only here (failover re-keys attempts).
  {
    SimNet net(&env.subjects);
    net.ConfigureFromTopology(topo, env.subjects, 0);
    ServiceConfig config;
    config.exec_threads = 2;
    config.net = &net;
    QueryService service(&env.catalog, &env.subjects, &*policy, &prices,
                         &topo, config);
    for (const auto& [rel, t] : db.tables) service.LoadTable(rel, &t);
    auto session = service.OpenSession(env.user);
    if (!session.ok()) return 1;
    for (const std::string& sql : statements) {
      if (!service.ExecuteSql(sql, *session).ok()) return 1;
    }

    // Probe statement 0's minimum-cost assignment for a provider step to
    // kill (the service chose the same plan over the same inputs).
    int crash_step = -1;
    SubjectId victim = kInvalidSubject;
    {
      auto plan = PlanFromSql(statements[0], env.catalog);
      if (!plan.ok() ||
          !DerivePlaintextNeeds(plan->get(), env.catalog, SchemeCaps{}).ok() ||
          !AnnotatePlan(plan->get(), env.catalog).ok()) {
        return 1;
      }
      SimNet probe_net(&env.subjects);
      FailoverExecutor probe(&env.catalog, &env.subjects, &*policy, &prices,
                             &topo, &probe_net, FailoverConfig{});
      for (const auto& [rel, t] : db.tables) probe.LoadTable(rel, &t);
      auto probed = probe.Execute(plan->get(), env.user);
      if (probed.ok()) {
        for (const auto& [node_id, subject] :
             probed->assignment.extended.assignment) {
          if (env.subjects.Get(subject).kind == SubjectKind::kProvider) {
            crash_step = node_id;
            victim = subject;
            break;
          }
        }
      }
    }
    if (victim != kInvalidSubject) {
      FaultPlan faults;
      faults.crash_at_step[victim] = crash_step;
      net.SetFaultPlan(faults);
    }

    LoadGenConfig lc;
    lc.sessions = std::max<size_t>(200, sessions / 10);
    // Offer load at this service's own capacity, sampled with the plan
    // armed: the first sample crashes the victim once (recovered result),
    // the rest run re-planned around the outage — both are service times
    // the run will actually see.
    {
      double sum_s = 0;
      for (const std::string& sql : statements) {
        auto r = service.ExecuteSql(sql, *session);
        if (!r.ok()) return 1;
        sum_s += r->stats.total_s + r->stats.net_virtual_s;
      }
      lc.mean_interarrival_s =
          (sum_s / static_cast<double>(statements.size())) / 8.0;
    }
    lc.sigma = 1.5;
    lc.servers = 8;
    lc.queue_cap = 16;
    lc.seed = 23;
    lc.strict_enc_compare = false;
    // Re-arm the crash throughout the run: the fault plan stays set, so
    // restoring the victim lets the next plan that assigns it crash again.
    lc.on_progress = [&](size_t n) {
      if (victim != kInvalidSubject && n % 40 == 0) net.Restore(victim);
    };
    auto rep = RunOpenLoopLoad(&service, *session, statements, lc);
    if (!rep.ok()) {
      std::printf("crash open-loop run failed: %s\n",
                  rep.status().ToString().c_str());
      return 1;
    }
    bool crash_ok = victim != kInvalidSubject && rep->mismatches == 0 &&
                    rep->errors == 0 && rep->failovers > 0 &&
                    rep->completed + rep->shed + rep->errors == rep->offered;
    ok = ok && crash_ok;

    std::printf(
        "\n[open_loop_crash] %zu sessions, provider %d killed at step %d, "
        "restored every 40 queries: completed=%zu shed=%zu mismatches=%zu "
        "failovers=%llu p99=%.2fms  %s\n",
        rep->offered, static_cast<int>(victim), crash_step, rep->completed,
        rep->shed, rep->mismatches,
        static_cast<unsigned long long>(rep->failovers), rep->p99_ms,
        crash_ok ? "OK" : "FAIL");

    w.Key("open_loop_crash").BeginObject();
    w.Key("victim")
        .Int(victim == kInvalidSubject ? -1 : static_cast<int>(victim))
        .Key("crash_step")
        .Int(crash_step)
        .Key("restore_every")
        .UInt(40);
    WriteLoadGenRow(&w, *rep);
    w.Key("pass").Bool(crash_ok).EndObject();
  }

  w.Key("pass").Bool(ok);
  w.EndObject();

  mpq::bench::WriteJsonFile(json_path, w.TakeString());
  std::printf(
      "\ngates: plan-cache >= 5x on non-oversubscribed rows, async-burst "
      "shed accounting + response identity, open-loop zero mismatches + "
      "exact accounting + overload shedding, crash run failovers > 0. "
      "JSON: %s%s\n",
      json_path.c_str(), ok ? "" : "  [GATE FAILED]");
  return ok ? 0 : 1;
}

// QueryService serving benchmark: closed-loop multi-threaded clients over a
// TPC-H scenario mix, cold (first execution: parse → authorize → optimize →
// execute) vs warm (sharded plan-cache hit → execute) at 1/4/8 client
// threads. Emits BENCH_service.json (override with --json <path>) seeding
// the perf trajectory with latency percentiles and cache hit rate.
//
//   bench_service [data_sf] [warm_iters] [--json path]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "service/query_service.h"
#include "tpch/dbgen.h"
#include "tpch/scenarios.h"

using namespace mpq;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = p * static_cast<double>(samples.size());
  size_t idx = rank <= 1 ? 0 : static_cast<size_t>(rank + 0.5) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      mpq::bench::ParseJsonFlag(&argc, argv, "BENCH_service.json");
  // Default scale keeps the per-query working set small relative to the
  // front half (parse → authorize → optimize): the regime where a serving
  // layer's plan cache is the dominant lever. Execution-side data scaling
  // is bench_parallel_exec's subject.
  double data_sf = argc > 1 ? std::atof(argv[1]) : 5e-5;
  int warm_iters = argc > 2 ? std::atoi(argv[2]) : 20;
  if (data_sf <= 0) data_sf = 5e-5;
  if (warm_iters < 1) warm_iters = 1;

  TpchEnv env = MakeTpchEnv(/*costing_sf=*/1.0, /*num_providers=*/8);
  TpchData db = GenerateTpch(env, data_sf, /*seed=*/17);
  Result<Policy> policy = MakeScenarioPolicy(env, AuthScenario::kUAPenc);
  if (!policy.ok()) {
    std::printf("policy error: %s\n", policy.status().ToString().c_str());
    return 1;
  }
  PricingTable prices = MakeScenarioPricing(env);
  Topology topo = MakeScenarioTopology(env);

  // The scenario mix: the supported dialect's renderings of a TPC-H
  // cross-section — selection-heavy (Q6), join chains (Q3, Q10), an
  // attr-attr predicate (Q12) and a HAVING aggregate (Q18 shape) — matching
  // the shapes of src/tpch/queries.cc.
  const std::vector<std::string> statements = {
      // Q6: forecasting revenue change.
      "select sum(l_extendedprice) from lineitem "
      "where l_shipdate >= 730 and l_shipdate < 1095 "
      "and l_discount >= 0.05 and l_discount <= 0.07 and l_quantity < 24.0",
      // Q3: shipping priority.
      "select o_orderkey, o_orderdate, o_shippriority, sum(l_extendedprice) "
      "from customer join orders on c_custkey = o_custkey "
      "join lineitem on o_orderkey = l_orderkey "
      "where c_mktsegment = 'BUILDING' and o_orderdate < 1204 "
      "and l_shipdate > 1204 "
      "group by o_orderkey, o_orderdate, o_shippriority",
      // Q10: returned item reporting.
      "select c_custkey, c_name, n_name, sum(l_extendedprice) "
      "from customer join orders on c_custkey = o_custkey "
      "join lineitem on o_orderkey = l_orderkey "
      "join nation on c_nationkey = n_nationkey "
      "where o_orderdate >= 640 and o_orderdate < 730 "
      "and l_returnflag = 'R' group by c_custkey, c_name, n_name",
      // Q12: shipping modes (attr-attr comparison).
      "select l_shipmode, count(*) from orders "
      "join lineitem on o_orderkey = l_orderkey "
      "where l_shipmode = 'MAIL' and l_receiptdate >= 730 "
      "and l_receiptdate < 1095 and l_commitdate < l_receiptdate "
      "group by l_shipmode",
      // Q18 shape: large-volume customers via HAVING.
      "select o_custkey, sum(l_extendedprice) from orders "
      "join lineitem on o_orderkey = l_orderkey "
      "group by o_custkey having sum(l_extendedprice) > 1000.0",
  };

  std::printf(
      "QueryService closed-loop bench: TPC-H UAPenc mix {Q6,Q3,Q10,Q12,Q18}, "
      "data_sf=%.4g (lineitem rows: %zu), %d warm iters/client\n\n",
      data_sf, db.at(env.lineitem).num_rows(), warm_iters);
  std::printf("%8s %12s %12s %12s %12s %10s %8s\n", "clients", "cold_p50",
              "warm_p50", "warm_p95", "cold/warm", "hit_rate", "qps");

  JsonWriter w;
  w.BeginObject()
      .Key("bench")
      .String("service")
      .Key("scenario")
      .String("UAPenc")
      .Key("data_sf")
      .Double(data_sf)
      .Key("warm_iters")
      .Int(warm_iters);
  mpq::bench::WriteRunMeta(&w);
  w.Key("query_mix").BeginArray();
  for (const char* q : {"Q6", "Q3", "Q10", "Q12", "Q18"}) w.String(q);
  w.EndArray();
  w.Key("runs").BeginArray();

  bool ok = true;
  for (size_t clients : {1u, 4u, 8u}) {
    ServiceConfig config;
    // Inline execution: closed-loop throughput comes from inter-query
    // parallelism across client threads; intra-query parallelism (a shared
    // exec pool) is bench_parallel_exec's subject and would only make the
    // clients convoy on pool workers here.
    config.exec_threads = 0;
    config.max_in_flight = 2 * clients;
    QueryService service(&env.catalog, &env.subjects, &*policy, &prices,
                         &topo, config);
    for (const auto& [rel, t] : db.tables) service.LoadTable(rel, &t);

    auto session = service.OpenSession(env.user);
    if (!session.ok()) {
      std::printf("session error: %s\n", session.status().ToString().c_str());
      return 1;
    }

    // Cold: every statement's first execution pays the whole front half.
    std::vector<double> cold_ms;
    for (const std::string& sql : statements) {
      auto t0 = Clock::now();
      auto r = service.ExecuteSql(sql, *session);
      if (!r.ok()) {
        std::printf("cold error: %s\n", r.status().ToString().c_str());
        return 1;
      }
      cold_ms.push_back(MsSince(t0));
    }

    // Warm: closed-loop clients hammering the cached mix.
    std::mutex merge_mu;
    std::vector<double> warm_ms;
    std::vector<std::thread> threads;
    bool failed = false;
    auto wall0 = Clock::now();
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto my_session = service.OpenSession(env.user);
        if (!my_session.ok()) return;
        std::vector<double> local;
        local.reserve(statements.size() * static_cast<size_t>(warm_iters));
        for (int i = 0; i < warm_iters; ++i) {
          for (size_t s = 0; s < statements.size(); ++s) {
            // Stagger start points so clients don't convoy on one statement.
            const std::string& sql =
                statements[(s + c) % statements.size()];
            auto t0 = Clock::now();
            auto r = service.ExecuteSql(sql, *my_session);
            if (!r.ok()) {
              std::lock_guard<std::mutex> lock(merge_mu);
              failed = true;
              return;
            }
            local.push_back(MsSince(t0));
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        warm_ms.insert(warm_ms.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
    double wall_s = MsSince(wall0) / 1e3;
    if (failed) {
      std::printf("warm execution failed at %zu clients\n", clients);
      return 1;
    }

    ServiceMetrics m = service.Metrics();
    double cold_p50 = PercentileMs(cold_ms, 0.50);
    double warm_p50 = PercentileMs(warm_ms, 0.50);
    double warm_p95 = PercentileMs(warm_ms, 0.95);
    double speedup = warm_p50 > 0 ? cold_p50 / warm_p50 : 0;
    double qps = wall_s > 0 ? static_cast<double>(warm_ms.size()) / wall_s : 0;
    ok = ok && speedup >= 5.0;

    std::printf("%8zu %10.3fms %10.3fms %10.3fms %11.1fx %9.1f%% %8.0f\n",
                clients, cold_p50, warm_p50, warm_p95, speedup,
                m.hit_rate * 100, qps);

    w.BeginObject()
        .Key("clients")
        .UInt(clients)
        .Key("cold_p50_ms")
        .Double(cold_p50)
        .Key("cold_p95_ms")
        .Double(PercentileMs(cold_ms, 0.95))
        .Key("warm_p50_ms")
        .Double(warm_p50)
        .Key("warm_p95_ms")
        .Double(warm_p95)
        .Key("warm_p99_ms")
        .Double(PercentileMs(warm_ms, 0.99))
        .Key("cold_over_warm_p50")
        .Double(speedup)
        .Key("hit_rate")
        .Double(m.hit_rate)
        .Key("qps")
        .Double(qps)
        .Key("queries")
        .UInt(m.queries)
        .Key("admission_waits")
        .UInt(m.admission_waits)
        .EndObject();
  }
  w.EndArray();
  w.Key("warm_p50_speedup_target").Double(5.0).Key("pass").Bool(ok);
  w.EndObject();

  mpq::bench::WriteJsonFile(json_path, w.TakeString());
  std::printf(
      "\ncold/warm = cold p50 / warm p50 (plan-cache amortization). "
      "JSON: %s%s\n",
      json_path.c_str(), ok ? "" : "  [BELOW 5x TARGET]");
  return ok ? 0 : 1;
}

// Microbenchmark: end-to-end execution throughput — plaintext vs encrypted
// extended plans on the running example and TPC-H queries at small scale.
// Quantifies the runtime price of on-the-fly encryption (DET/OPE cheap,
// Paillier aggregation dominant).

#include <benchmark/benchmark.h>

#include "assign/assignment.h"
#include "exec/distributed.h"
#include "profile/propagate.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/scenarios.h"

namespace mpq {
namespace {

struct ExecFixture {
  TpchEnv env = MakeTpchEnv(1.0, 3);
  TpchData db = GenerateTpch(env, /*data_sf=*/0.002, /*seed=*/5);
};

ExecFixture& Fx() {
  static ExecFixture fx;
  return fx;
}

void BM_PlaintextTpch(benchmark::State& state) {
  ExecFixture& fx = Fx();
  int q = static_cast<int>(state.range(0));
  auto plan = BuildTpchQuery(q, fx.env);
  if (!plan.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  KeyRing ring;
  CryptoPlan crypto;
  ExecContext ctx;
  ctx.catalog = &fx.env.catalog;
  for (const auto& [rel, t] : fx.db.tables) ctx.base_tables[rel] = &t;
  ctx.keyring = &ring;
  ctx.crypto = &crypto;
  size_t rows = 0;
  for (auto _ : state) {
    auto t = ExecutePlan(plan->get(), &ctx);
    if (!t.ok()) {
      state.SkipWithError(t.status().ToString().c_str());
      return;
    }
    rows = t->num_rows();
    benchmark::DoNotOptimize(t);
  }
  state.counters["out_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_PlaintextTpch)->Arg(1)->Arg(3)->Arg(6)->Arg(12);

void BM_EncryptedDistributedTpch(benchmark::State& state) {
  ExecFixture& fx = Fx();
  int q = static_cast<int>(state.range(0));
  auto plan = BuildTpchQuery(q, fx.env);
  if (!plan.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  (void)DerivePlaintextNeeds(plan->get(), fx.env.catalog, SchemeCaps{});
  (void)AnnotatePlan(plan->get(), fx.env.catalog);
  auto policy = MakeScenarioPolicy(fx.env, AuthScenario::kUAPenc);
  auto cp = ComputeCandidates(plan->get(), *policy);
  if (!cp.ok()) {
    state.SkipWithError("no candidates");
    return;
  }
  PricingTable prices = MakeScenarioPricing(fx.env);
  Topology topo = MakeScenarioTopology(fx.env);
  SchemeMap schemes = AnalyzeSchemes(plan->get(), fx.env.catalog, SchemeCaps{});
  CostModel cm(&fx.env.catalog, &prices, &topo, &schemes);
  AssignmentOptimizer opt(&*policy, &cm);
  auto r = opt.Optimize(plan->get(), *cp, fx.env.user);
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return;
  }
  PlanKeys keys = DeriveQueryPlanKeys(r->extended);

  DistributedRuntime rt(&fx.env.catalog, &fx.env.subjects);
  for (const auto& [rel, t] : fx.db.tables) rt.LoadTable(rel, t);
  rt.DistributeKeys(keys, fx.env.user, 77);
  rt.SetCryptoPlan(MakeCryptoPlan(schemes, keys));

  uint64_t transfer = 0;
  for (auto _ : state) {
    auto res = rt.Run(r->extended, fx.env.user);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    transfer = res->total_transfer_bytes;
    benchmark::DoNotOptimize(res);
  }
  state.counters["transfer_bytes"] = static_cast<double>(transfer);
  state.counters["enc_attrs"] =
      static_cast<double>(r->extended.encrypted_attrs.size());
}
BENCHMARK(BM_EncryptedDistributedTpch)->Arg(1)->Arg(3)->Arg(6)->Arg(12);

}  // namespace
}  // namespace mpq

BENCHMARK_MAIN();
